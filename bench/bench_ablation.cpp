// Ablations of Sphinx's design choices (DESIGN.md A1-A4):
//
//   A1  Succinct Filter Cache on/off. Off = the paper's base INHT
//       mechanism: read the hash entries of all Theta(L) prefixes in one
//       doorbell-batched round trip. Same round trips, far more messages
//       and bandwidth -- the SFC's whole point (Sec. III-B).
//   A2  Doorbell batching on/off, for Sphinx's multi-entry reads and scans
//       (Sec. III-A, Fig. 4E discussion).
//   A3  Filter budget sweep: hotness-bit second-chance eviction under
//       pressure (Sec. III-B's "dataset larger than the filter" case).
//   A4  Two-tier CN cache split: SFC only (existence) vs PEC only
//       (location) vs both, at a fixed total byte budget. Shows the PEC's
//       3 RTT -> 2 RTT saving and why the tiers compose (DESIGN.md,
//       "Two-tier CN cache").
//
// Usage: bench_ablation [--keys=500000] [--ops=400] [--workers=96]
#include <iostream>

#include "bench_common.h"
#include "core/sphinx_index.h"

namespace sphinx::bench {
namespace {

ycsb::RunResult run_one(ycsb::SystemKind kind, uint64_t keys_n,
                        const std::vector<std::string>& keys, char workload,
                        uint32_t workers, uint64_t ops, bool batching,
                        uint64_t cache_budget,
                        uint64_t pec_budget = ycsb::kAutoPecBudget) {
  auto cluster = make_cluster(keys_n, batching);
  ycsb::SystemSetup setup(kind, *cluster, cache_budget, pec_budget);
  ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
  runner.load(keys_n, 64);
  ycsb::RunOptions warm;
  warm.workers = workers;
  warm.ops_per_worker = 300;
  runner.run(ycsb::standard_workload('C'), warm);
  ycsb::RunOptions options;
  options.workers = workers;
  options.ops_per_worker = ops;
  return runner.run(ycsb::standard_workload(workload), options);
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t num_keys = flags.get_u64("keys", 500000);
  const uint64_t ops = flags.get_u64("ops", 400);
  const uint32_t workers = static_cast<uint32_t>(flags.get_u64("workers", 96));
  const uint64_t budget = cache_budget_for(ycsb::SystemKind::kSphinx,
                                           num_keys);
  const auto keys = ycsb::generate_keys(ycsb::DatasetKind::kEmail,
                                        num_keys + 1024, 1);

  std::cout << "# Ablations (email dataset, " << num_keys << " keys, "
            << workers << " workers)\n\n";

  {
    std::cout << "## A1 -- succinct filter cache on/off (YCSB-C)\n";
    TablePrinter table({"variant", "throughput", "rtts/op", "msgs/op",
                        "read-B/op"});
    for (const auto& [name, kind] :
         {std::pair<const char*, ycsb::SystemKind>{
              "Sphinx (SFC on)", ycsb::SystemKind::kSphinx},
          {"Sphinx-NoSFC (parallel INHT reads)",
           ycsb::SystemKind::kSphinxNoFilter}}) {
      const ycsb::RunResult r =
          run_one(kind, num_keys, keys, 'C', workers, ops, true, budget);
      table.add_row(
          {name, TablePrinter::fmt_mops(r.ops_per_sec),
           TablePrinter::fmt_double(r.rtts_per_op),
           TablePrinter::fmt_double(static_cast<double>(r.net.messages) /
                                    static_cast<double>(r.total_ops)),
           TablePrinter::fmt_double(r.read_bytes_per_op, 0)});
    }
    table.print();
    std::cout << "\n";
  }

  {
    std::cout << "## A2 -- doorbell batching on/off (Sphinx, YCSB-C and E)\n";
    TablePrinter table({"workload", "batching", "throughput", "rtts/op",
                        "mean-latency"});
    for (char w : {'C', 'E'}) {
      for (bool batching : {true, false}) {
        const ycsb::RunResult r =
            run_one(ycsb::SystemKind::kSphinx, num_keys, keys, w, workers,
                    w == 'E' ? std::max<uint64_t>(ops / 10, 40) : ops,
                    batching, budget);
        table.add_row({ycsb::standard_workload(w).name,
                       batching ? "on" : "off",
                       TablePrinter::fmt_mops(r.ops_per_sec),
                       TablePrinter::fmt_double(r.rtts_per_op),
                       TablePrinter::fmt_us(r.mean_latency_ns)});
      }
    }
    table.print();
    std::cout << "\n";
  }

  {
    std::cout << "## A3 -- filter budget sweep (Sphinx, YCSB-C; hotness "
                 "eviction under pressure)\n";
    TablePrinter table({"filter budget", "throughput", "rtts/op",
                        "msgs/op"});
    for (double fraction : {1.0, 0.5, 0.25, 0.1, 0.05}) {
      const uint64_t b = std::max<uint64_t>(
          static_cast<uint64_t>(static_cast<double>(budget) * fraction),
          16 << 10);
      const ycsb::RunResult r = run_one(ycsb::SystemKind::kSphinx, num_keys,
                                        keys, 'C', workers, ops, true, b);
      table.add_row(
          {TablePrinter::fmt_bytes(b), TablePrinter::fmt_mops(r.ops_per_sec),
           TablePrinter::fmt_double(r.rtts_per_op),
           TablePrinter::fmt_double(static_cast<double>(r.net.messages) /
                                    static_cast<double>(r.total_ops))});
    }
    table.print();
    std::cout << "\n";
  }

  {
    std::cout << "## A4 -- two-tier CN cache split at a fixed byte budget "
                 "(YCSB-C)\n";
    TablePrinter table({"variant", "throughput", "rtts/op", "msgs/op",
                        "read-B/op"});
    struct Variant {
      const char* name;
      ycsb::SystemKind kind;
      uint64_t pec_budget;
    };
    // All three variants spend the same total CN budget; what differs is
    // the carve-up between the existence tier (SFC) and the location tier
    // (PEC). 95% matches the SFC's share in the seed configuration.
    const Variant variants[] = {
        {"SFC only (existence tier)", ycsb::SystemKind::kSphinx, 0},
        {"PEC only (location tier)", ycsb::SystemKind::kSphinxNoFilter,
         budget * 95 / 100},
        {"SFC + PEC (70% / 25%)", ycsb::SystemKind::kSphinx,
         ycsb::kAutoPecBudget},
    };
    for (const Variant& v : variants) {
      const ycsb::RunResult r = run_one(v.kind, num_keys, keys, 'C', workers,
                                        ops, true, budget, v.pec_budget);
      table.add_row(
          {v.name, TablePrinter::fmt_mops(r.ops_per_sec),
           TablePrinter::fmt_double(r.rtts_per_op),
           TablePrinter::fmt_double(static_cast<double>(r.net.messages) /
                                    static_cast<double>(r.total_ops)),
           TablePrinter::fmt_double(r.read_bytes_per_op, 0)});
    }
    table.print();
    std::cout << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace sphinx::bench

int main(int argc, char** argv) { return sphinx::bench::run(argc, argv); }
