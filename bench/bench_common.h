// Shared plumbing for the benchmark harnesses: cluster sizing, system
// construction, standard flag handling and row formatting.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table_printer.h"
#include "memnode/cluster.h"
#include "rdma/fault_injector.h"
#include "rdma/network_config.h"
#include "ycsb/dataset.h"
#include "ycsb/runner.h"
#include "ycsb/systems.h"
#include "ycsb/workload.h"

namespace sphinx::bench {

// Sizes each MN region so `keys` fit with headroom for the most
// memory-hungry system (SMART's homogeneous nodes) plus fragmentation.
inline uint64_t mn_bytes_for_keys(uint64_t keys, uint32_t num_mns) {
  // Leaf (128 B) + inner-node share with SMART's homogeneous Node-256
  // blowup (email trees run ~0.4 inner nodes per key x 2112 B) + allocator
  // chunk leases for hundreds of workers.
  const uint64_t per_key = 1600;
  const uint64_t per_mn = keys * per_key / num_mns + (128ull << 20);
  return per_mn;
}

// `mn_bytes_override` (--mem-budget) replaces the per-MN auto-sizing; a
// deliberately small budget drives the allocator into degraded mode
// (alloc_failures / alloc_degraded_ops instead of crashes).
inline std::unique_ptr<mem::Cluster> make_cluster(
    uint64_t keys, bool batching = true, uint64_t mn_bytes_override = 0) {
  rdma::NetworkConfig config;  // paper testbed: 3 CNs, 3 MNs
  config.doorbell_batching = batching;
  const uint64_t mn_bytes = mn_bytes_override > 0
                                ? mn_bytes_override
                                : mn_bytes_for_keys(keys, config.num_mns);
  return std::make_unique<mem::Cluster>(config, mn_bytes);
}

inline ycsb::SystemKind parse_system(const std::string& name) {
  if (name == "sphinx" || name == "Sphinx") return ycsb::SystemKind::kSphinx;
  if (name == "sphinx-nosfc") return ycsb::SystemKind::kSphinxNoFilter;
  if (name == "smart" || name == "SMART") return ycsb::SystemKind::kSmart;
  if (name == "smart+c" || name == "smartc") return ycsb::SystemKind::kSmartC;
  return ycsb::SystemKind::kArt;
}

// The four systems of the paper's evaluation, in figure order.
inline std::vector<ycsb::SystemKind> paper_systems() {
  return {ycsb::SystemKind::kSphinx, ycsb::SystemKind::kSmart,
          ycsb::SystemKind::kSmartC, ycsb::SystemKind::kArt};
}

// Standard background fault schedule for `--faults=<rate>` bench runs:
// `rate` scales the per-verb probability of a congestion delay, with
// proportionally rarer stalls and CAS race losses (tagged sites only).
// `crash_rate` (--crash-rate) additionally kills clients: any tagged
// protocol verb crashes its endpoint with that probability, exercising the
// lease-reclamation paths (the runner reincarnates crashed workers).
// Deterministic under `seed`; see rdma/fault_injector.h and
// EXPERIMENTS.md ("Fault injection & stress testing").
inline std::unique_ptr<rdma::FaultInjector> make_fault_injector(
    double rate, uint64_t seed, double crash_rate = 0.0) {
  auto injector = std::make_unique<rdma::FaultInjector>(seed);
  if (rate > 0.0) {
    rdma::FaultRule delay;
    delay.kind = rdma::FaultKind::kDelay;
    delay.probability = rate;
    delay.delay_ns = 400;
    injector->add_rule(delay);
    rdma::FaultRule stall;
    stall.kind = rdma::FaultKind::kStall;
    stall.probability = rate / 5.0;
    stall.delay_ns = 2000;
    injector->add_rule(stall);
    rdma::FaultRule casfail;
    casfail.kind = rdma::FaultKind::kCasFail;
    casfail.probability = rate / 2.0;
    casfail.site = rdma::FaultSite::kAny;
    injector->add_rule(casfail);
  }
  if (crash_rate > 0.0) {
    rdma::FaultRule crash;
    crash.kind = rdma::FaultKind::kClientCrash;
    crash.probability = crash_rate;
    crash.site = rdma::FaultSite::kAny;
    injector->add_rule(crash);
  }
  return injector;
}

inline std::string fault_summary(const rdma::FaultStats& stats) {
  return "faults: " + std::to_string(stats.delays) + " delays, " +
         std::to_string(stats.stalls) + " stalls, " +
         std::to_string(stats.cas_failures) + " cas-losses, " +
         std::to_string(stats.offline_rejects) + " offline-rejects, " +
         std::to_string(stats.client_crashes) + " client-crashes (" +
         std::to_string(stats.verbs_inspected) + " verbs inspected)";
}

// CN cache budget for `kind`, scaled from the paper's 20 MB / 200 MB @60M
// keys down to the bench's key count (see ycsb::scaled_cache_budget).
inline uint64_t cache_budget_for(ycsb::SystemKind kind, uint64_t keys) {
  const uint64_t paper_budget = kind == ycsb::SystemKind::kSmartC
                                    ? ycsb::kLargeCacheBudget
                                    : ycsb::kDefaultCacheBudget;
  return ycsb::scaled_cache_budget(paper_budget, keys);
}

}  // namespace sphinx::bench
