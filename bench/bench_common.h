// Shared plumbing for the benchmark harnesses: cluster sizing, system
// construction, standard flag handling and row formatting.
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table_printer.h"
#include "memnode/cluster.h"
#include "rdma/fault_injector.h"
#include "rdma/network_config.h"
#include "ycsb/dataset.h"
#include "ycsb/runner.h"
#include "ycsb/systems.h"
#include "ycsb/workload.h"

namespace sphinx::bench {

// Sizes each MN region so `keys` fit with headroom for the most
// memory-hungry system (SMART's homogeneous nodes) plus fragmentation.
inline uint64_t mn_bytes_for_keys(uint64_t keys, uint32_t num_mns) {
  // Leaf (128 B) + inner-node share with SMART's homogeneous Node-256
  // blowup (email trees run ~0.4 inner nodes per key x 2112 B) + allocator
  // chunk leases for hundreds of workers.
  const uint64_t per_key = 1600;
  const uint64_t per_mn = keys * per_key / num_mns + (128ull << 20);
  return per_mn;
}

// Builds a cluster from an explicit fabric topology (--mns/--cns/--vnodes
// sweeps). `mn_bytes_override` (--mem-budget) replaces the per-MN
// auto-sizing; a deliberately small budget drives the allocator into
// degraded mode (alloc_failures / alloc_degraded_ops instead of crashes).
inline std::unique_ptr<mem::Cluster> make_cluster_with_config(
    rdma::NetworkConfig config, uint64_t keys, uint64_t mn_bytes_override = 0) {
  const uint64_t mn_bytes = mn_bytes_override > 0
                                ? mn_bytes_override
                                : mn_bytes_for_keys(keys, config.num_mns);
  return std::make_unique<mem::Cluster>(config, mn_bytes);
}

inline std::unique_ptr<mem::Cluster> make_cluster(
    uint64_t keys, bool batching = true, uint64_t mn_bytes_override = 0) {
  rdma::NetworkConfig config;  // paper testbed: 3 CNs, 3 MNs
  config.doorbell_batching = batching;
  return make_cluster_with_config(config, keys, mn_bytes_override);
}

inline ycsb::SystemKind parse_system(const std::string& name) {
  if (name == "sphinx" || name == "Sphinx") return ycsb::SystemKind::kSphinx;
  if (name == "sphinx-nosfc") return ycsb::SystemKind::kSphinxNoFilter;
  if (name == "smart" || name == "SMART") return ycsb::SystemKind::kSmart;
  if (name == "smart+c" || name == "smartc") return ycsb::SystemKind::kSmartC;
  return ycsb::SystemKind::kArt;
}

// Validating variant: rejects unknown names instead of silently mapping
// them to ART (parse_system's fallthrough has bitten sweep scripts that
// typo a system and then benchmark the wrong baseline all night).
inline bool parse_system_checked(const std::string& name,
                                 ycsb::SystemKind* out) {
  if (name == "sphinx" || name == "Sphinx") {
    *out = ycsb::SystemKind::kSphinx;
  } else if (name == "sphinx-nosfc") {
    *out = ycsb::SystemKind::kSphinxNoFilter;
  } else if (name == "smart" || name == "SMART") {
    *out = ycsb::SystemKind::kSmart;
  } else if (name == "smart+c" || name == "smartc") {
    *out = ycsb::SystemKind::kSmartC;
  } else if (name == "art" || name == "ART") {
    *out = ycsb::SystemKind::kArt;
  } else {
    return false;
  }
  return true;
}

// Parses a csv of positive integers ("6,12,24"). Returns false -- with a
// "--<flag>: ..." diagnostic on stderr -- on empty tokens, non-numeric
// garbage, trailing junk ("12x"), zeros, or an empty list, instead of
// letting std::stoul throw (or worse, parse "12x" as 12).
inline bool parse_u32_list(const std::string& flag, const std::string& spec,
                           std::vector<uint32_t>* out) {
  out->clear();
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    uint64_t v = 0;
    size_t pos = 0;
    try {
      v = std::stoul(token, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (token.empty() || pos != token.size() || v == 0 || v > UINT32_MAX) {
      std::cerr << "--" << flag << ": expected a csv of positive integers, "
                << "got '" << spec << "' (bad token '" << token << "')\n";
      return false;
    }
    out->push_back(static_cast<uint32_t>(v));
  }
  if (out->empty()) {
    std::cerr << "--" << flag << ": empty list\n";
    return false;
  }
  return true;
}

// Parses --datasets as exact comma-separated tokens ("u64,email"). Exact
// match, not substring: the old `spec.find(name) != npos` test meant
// --datasets=u or any typo containing 'u' silently selected u64 (and
// "email" contains no dataset name it doesn't own, but "u64,emial" kept
// u64 and dropped email without a word). Unknown tokens are errors.
inline bool parse_datasets(const std::string& spec,
                           std::vector<ycsb::DatasetKind>* out) {
  out->clear();
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token == ycsb::dataset_name(ycsb::DatasetKind::kU64)) {
      out->push_back(ycsb::DatasetKind::kU64);
    } else if (token == ycsb::dataset_name(ycsb::DatasetKind::kEmail)) {
      out->push_back(ycsb::DatasetKind::kEmail);
    } else {
      std::cerr << "--datasets: unknown dataset '" << token
                << "' (expected u64, email)\n";
      return false;
    }
  }
  if (out->empty()) {
    std::cerr << "--datasets: empty list\n";
    return false;
  }
  return true;
}

// The four systems of the paper's evaluation, in figure order.
inline std::vector<ycsb::SystemKind> paper_systems() {
  return {ycsb::SystemKind::kSphinx, ycsb::SystemKind::kSmart,
          ycsb::SystemKind::kSmartC, ycsb::SystemKind::kArt};
}

// Standard background fault schedule for `--faults=<rate>` bench runs:
// `rate` scales the per-verb probability of a congestion delay, with
// proportionally rarer stalls and CAS race losses (tagged sites only).
// `crash_rate` (--crash-rate) additionally kills clients: any tagged
// protocol verb crashes its endpoint with that probability, exercising the
// lease-reclamation paths (the runner reincarnates crashed workers).
// Deterministic under `seed`; see rdma/fault_injector.h and
// EXPERIMENTS.md ("Fault injection & stress testing").
inline std::unique_ptr<rdma::FaultInjector> make_fault_injector(
    double rate, uint64_t seed, double crash_rate = 0.0) {
  auto injector = std::make_unique<rdma::FaultInjector>(seed);
  if (rate > 0.0) {
    rdma::FaultRule delay;
    delay.kind = rdma::FaultKind::kDelay;
    delay.probability = rate;
    delay.delay_ns = 400;
    injector->add_rule(delay);
    rdma::FaultRule stall;
    stall.kind = rdma::FaultKind::kStall;
    stall.probability = rate / 5.0;
    stall.delay_ns = 2000;
    injector->add_rule(stall);
    rdma::FaultRule casfail;
    casfail.kind = rdma::FaultKind::kCasFail;
    casfail.probability = rate / 2.0;
    casfail.site = rdma::FaultSite::kAny;
    injector->add_rule(casfail);
  }
  if (crash_rate > 0.0) {
    rdma::FaultRule crash;
    crash.kind = rdma::FaultKind::kClientCrash;
    crash.probability = crash_rate;
    crash.site = rdma::FaultSite::kAny;
    injector->add_rule(crash);
  }
  return injector;
}

inline std::string fault_summary(const rdma::FaultStats& stats) {
  return "faults: " + std::to_string(stats.delays) + " delays, " +
         std::to_string(stats.stalls) + " stalls, " +
         std::to_string(stats.cas_failures) + " cas-losses, " +
         std::to_string(stats.offline_rejects) + " offline-rejects, " +
         std::to_string(stats.client_crashes) + " client-crashes (" +
         std::to_string(stats.verbs_inspected) + " verbs inspected)";
}

// CN cache budget for `kind`, scaled from the paper's 20 MB / 200 MB @60M
// keys down to the bench's key count (see ycsb::scaled_cache_budget).
inline uint64_t cache_budget_for(ycsb::SystemKind kind, uint64_t keys) {
  const uint64_t paper_budget = kind == ycsb::SystemKind::kSmartC
                                    ? ycsb::kLargeCacheBudget
                                    : ycsb::kDefaultCacheBudget;
  return ycsb::scaled_cache_budget(paper_budget, keys);
}

}  // namespace sphinx::bench
