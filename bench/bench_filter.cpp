// Experiment E5: succinct filter cache characteristics.
//
// Part 1 (google-benchmark): raw cuckoo-filter operation costs -- the
// CN-local work Sphinx adds per index operation.
// Part 2: false-positive-rate sweep vs occupancy (paper Sec. III-B: ~12-bit
// fingerprints keep fp < 1%).
// Part 3: end-to-end Sphinx counters -- how often the filter's verdict was
// wrong and had to be recovered (paper: fp-triggered retries < 0.01%... the
// hash-entry fingerprint and node prefix hash absorb nearly all of them).
//
// Usage: bench_filter [--benchmark_filter=...] (google-benchmark flags ok)
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/sphinx_index.h"
#include "filter/cuckoo_filter.h"

namespace sphinx::bench {
namespace {

void BM_FilterContainsHit(benchmark::State& state) {
  filter::CuckooFilter filter(1 << 16);
  for (uint64_t i = 0; i < 200000; ++i) filter.insert(splitmix64(i));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.contains(splitmix64(i++ % 200000)));
  }
}
BENCHMARK(BM_FilterContainsHit);

void BM_FilterContainsMiss(benchmark::State& state) {
  filter::CuckooFilter filter(1 << 16);
  for (uint64_t i = 0; i < 200000; ++i) filter.insert(splitmix64(i));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        filter.contains(splitmix64(0xdead000000ull + i++)));
  }
}
BENCHMARK(BM_FilterContainsMiss);

void BM_FilterInsert(benchmark::State& state) {
  filter::CuckooFilter filter(1 << 20);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.insert(splitmix64(i++)));
  }
}
BENCHMARK(BM_FilterInsert);

void BM_PrefixHashing(benchmark::State& state) {
  // The per-operation hashing Sphinx does: one hash per prefix of an
  // average ~19-byte email key.
  const std::string key = "jennifer.smith42@gmail.com";
  for (auto _ : state) {
    for (size_t l = 1; l < key.size(); ++l) {
      benchmark::DoNotOptimize(
          art::prefix_hash(Slice(key.data(), l)));
    }
  }
}
BENCHMARK(BM_PrefixHashing);

void fp_rate_sweep() {
  std::cout << "\n# E5 -- false-positive rate vs occupancy "
            << "(12-bit fingerprints; paper: <1%)\n";
  TablePrinter table({"occupancy", "fp-rate"});
  filter::CuckooFilter filter(1 << 14);  // 65536 slots
  const uint64_t capacity = filter.capacity();
  uint64_t inserted = 0;
  for (double target : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    const uint64_t want = static_cast<uint64_t>(
        static_cast<double>(capacity) * target);
    while (inserted < want) filter.insert(splitmix64(inserted++));
    uint64_t fp = 0;
    const uint64_t probes = 400000;
    for (uint64_t i = 0; i < probes; ++i) {
      if (filter.contains_cold(splitmix64(0x5eed00000000ull + i))) fp++;
    }
    table.add_row({TablePrinter::fmt_percent(target),
                   TablePrinter::fmt_percent(static_cast<double>(fp) /
                                             static_cast<double>(probes))});
  }
  table.print();
}

void end_to_end_counters(uint64_t num_keys) {
  std::cout << "\n# E5 -- end-to-end Sphinx filter behaviour (" << num_keys
            << " email keys, warm filter)\n";
  auto cluster = make_cluster(num_keys);
  ycsb::SystemSetup setup(ycsb::SystemKind::kSphinx, *cluster,
                          cache_budget_for(ycsb::SystemKind::kSphinx,
                                           num_keys));
  const auto keys = ycsb::generate_keys(ycsb::DatasetKind::kEmail, num_keys,
                                        1);
  ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
  runner.load(num_keys, 64);

  core::SphinxStats totals;
  runner.set_per_worker_hook([&totals](KvIndex& index, uint32_t) {
    auto& sphinx_index = dynamic_cast<core::SphinxIndex&>(index);
    totals += sphinx_index.sphinx_stats();
  });
  ycsb::RunOptions warm;
  warm.workers = 24;
  warm.ops_per_worker = 500;
  runner.run(ycsb::standard_workload('C'), warm);
  totals = core::SphinxStats();  // keep only the measured pass
  ycsb::RunOptions options;
  options.workers = 24;
  options.ops_per_worker = 2000;
  const ycsb::RunResult r = runner.run(ycsb::standard_workload('C'), options);

  TablePrinter table({"counter", "value", "per-op"});
  auto row = [&](const char* name, uint64_t v) {
    table.add_row({name, std::to_string(v),
                   TablePrinter::fmt_double(
                       static_cast<double>(v) /
                       static_cast<double>(r.total_ops), 4)});
  };
  row("ops", r.total_ops);
  row("filter hits", totals.filter_hits);
  row("fp rejects (recovered)", totals.fp_rejects);
  row("jump-starts adopted", totals.start_successes);
  row("parallel INHT fallbacks", totals.parallel_fallbacks);
  row("root-traversal fallbacks", totals.root_fallbacks);
  table.print();
  std::cout << "fp-reject rate: "
            << TablePrinter::fmt_percent(
                   totals.filter_hits
                       ? static_cast<double>(totals.fp_rejects) /
                             static_cast<double>(totals.filter_hits)
                       : 0.0)
            << " of filter hits (paper: <1% filter fp, <0.01% reaching the "
               "leaf check)\n";
}

}  // namespace
}  // namespace sphinx::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sphinx::Flags flags(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sphinx::bench::fp_rate_sweep();
  sphinx::bench::end_to_end_counters(flags.get_u64("keys", 300000));
  return 0;
}
