// Reproduces Fig. 6 of the paper: MN-side memory usage across datasets
// after loading the index, for ART, Sphinx (= ART + inner node hash table)
// and SMART (homogeneous preallocated Node-256).
//
// The paper loads 60 M keys; memory *ratios* are size-independent, so the
// default loads 1 M keys per dataset and reports both absolute bytes and
// the two headline ratios:
//   * the INHT's overhead over the plain ART   (paper: +3.3% u64, +4.9% email)
//   * SMART's blowup over the plain ART        (paper: 2.1-3.0x)
//
// Usage: bench_memory [--keys=1000000] [--datasets=u64,email]
#include <iostream>

#include "bench_common.h"

namespace sphinx::bench {
namespace {

struct MemoryRow {
  uint64_t inner = 0;
  uint64_t leaf = 0;
  uint64_t table = 0;
  uint64_t total() const { return inner + leaf + table; }
};

MemoryRow measure(ycsb::SystemKind kind, const std::vector<std::string>& keys,
                  uint64_t count) {
  auto cluster = make_cluster(count);
  ycsb::SystemSetup setup(kind, *cluster,
                          cache_budget_for(kind, count));
  ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
  runner.load(count, 64);
  MemoryRow row;
  const mem::AllocStats& stats = cluster->alloc_stats();
  row.inner = stats.requested_bytes(mem::AllocTag::kInnerNode);
  row.leaf = stats.requested_bytes(mem::AllocTag::kLeaf);
  row.table = stats.requested_bytes(mem::AllocTag::kHashTable);
  return row;
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t num_keys = flags.get_u64("keys", 1000000);
  const std::string datasets = flags.get_string("datasets", "u64,email");

  std::cout << "# Fig. 6 -- MN-side memory usage after loading " << num_keys
            << " key-value pairs (64 B values)\n\n";

  for (const ycsb::DatasetKind dataset :
       {ycsb::DatasetKind::kU64, ycsb::DatasetKind::kEmail}) {
    if (datasets.find(ycsb::dataset_name(dataset)) == std::string::npos) {
      continue;
    }
    const auto keys = ycsb::generate_keys(dataset, num_keys, 1);

    const MemoryRow art = measure(ycsb::SystemKind::kArt, keys, num_keys);
    const MemoryRow sphinx = measure(ycsb::SystemKind::kSphinx, keys,
                                     num_keys);
    const MemoryRow smart = measure(ycsb::SystemKind::kSmart, keys, num_keys);

    TablePrinter table({"system", "inner-nodes", "leaves", "hash-table",
                        "total", "vs-ART"});
    const double art_total = static_cast<double>(art.total());
    auto add = [&](const char* name, const MemoryRow& row) {
      table.add_row({name, TablePrinter::fmt_bytes(row.inner),
                     TablePrinter::fmt_bytes(row.leaf),
                     TablePrinter::fmt_bytes(row.table),
                     TablePrinter::fmt_bytes(row.total()),
                     TablePrinter::fmt_ratio(
                         static_cast<double>(row.total()) / art_total)});
    };
    add("ART", art);
    add("Sphinx", sphinx);
    add("SMART", smart);

    std::cout << "## dataset: " << ycsb::dataset_name(dataset) << "\n";
    table.print();
    std::cout << "inner-node-hash-table overhead vs ART: "
              << TablePrinter::fmt_percent(
                     static_cast<double>(sphinx.total()) / art_total - 1.0)
              << "  (paper: +3.3% u64 / +4.9% email)\n";
    std::cout << "SMART blowup vs ART: "
              << TablePrinter::fmt_ratio(
                     static_cast<double>(smart.total()) / art_total)
              << "  (paper: 2.1-3.0x)\n\n";
  }
  return 0;
}

}  // namespace
}  // namespace sphinx::bench

int main(int argc, char** argv) { return sphinx::bench::run(argc, argv); }
