// Experiment E6: network round trips and bytes per index operation, per
// system and dataset -- the quantities behind the paper's core analysis:
//
//   * Sec. III-B / IV: a warm Sphinx search costs ~3 round trips (hash
//     entry, inner node, leaf);
//   * tree traversal costs one round trip per level for ART;
//   * SMART trades round trips for large cached/fetched Node-256 images.
//
// Usage: bench_rtt [--keys=500000] [--ops=400] [--workers=24]
#include <iostream>

#include "bench_common.h"

namespace sphinx::bench {
namespace {

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t num_keys = flags.get_u64("keys", 500000);
  const uint64_t ops_per_worker = flags.get_u64("ops", 400);
  const uint32_t workers = static_cast<uint32_t>(flags.get_u64("workers", 24));

  std::cout << "# E6 -- round trips and bytes per operation (warm caches)\n"
            << "# paper claims: Sphinx ~3 RTTs/op; ART ~1 RTT per tree level"
            << "\n\n";

  for (const ycsb::DatasetKind dataset :
       {ycsb::DatasetKind::kU64, ycsb::DatasetKind::kEmail}) {
    const uint64_t pool = num_keys + workers * ops_per_worker + 1024;
    const auto keys = ycsb::generate_keys(dataset, pool, 1);
    TablePrinter table({"system", "workload", "rtts/op", "read-B/op",
                        "wire-msgs/op", "mean-latency"});

    for (const ycsb::SystemKind kind : paper_systems()) {
      auto cluster = make_cluster(pool);
      ycsb::SystemSetup setup(kind, *cluster,
                              cache_budget_for(kind, num_keys));
      ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
      runner.load(num_keys, 64);
      {
        ycsb::RunOptions warm;
        warm.workers = workers;
        warm.ops_per_worker = 400;
        runner.run(ycsb::standard_workload('C'), warm);
      }
      for (char w : {'C', 'A', 'L'}) {
        ycsb::RunOptions options;
        options.workers = workers;
        options.ops_per_worker = ops_per_worker;
        const ycsb::RunResult r =
            runner.run(ycsb::standard_workload(w), options);
        table.add_row(
            {setup.name(), ycsb::standard_workload(w).name,
             TablePrinter::fmt_double(r.rtts_per_op),
             TablePrinter::fmt_double(r.read_bytes_per_op, 0),
             TablePrinter::fmt_double(
                 static_cast<double>(r.net.messages) /
                 static_cast<double>(r.total_ops)),
             TablePrinter::fmt_us(r.mean_latency_ns)});
      }
    }
    std::cout << "## dataset: " << ycsb::dataset_name(dataset) << "\n";
    table.print();
    std::cout << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace sphinx::bench

int main(int argc, char** argv) { return sphinx::bench::run(argc, argv); }
