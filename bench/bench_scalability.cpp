// Saturation-scale knee study (extends Fig. 5 of the paper): ops/s versus
// *effective* latency as workers grow, per system, per dataset, across
// cluster widths. The sweep emits one knee-curve JSON record per
// (system, dataset, workload, num_mns, vnodes, depth, workers) point with
// the per-NIC utilization vectors and the per-MN message-balance ratio, so
// tools/find_knee.py can locate the knee (first worker count whose
// latency_stretch exceeds 1.05) and distinguish capacity exhaustion from
// placement skew (a hot MN shows balance >> 1 with one mn_utilization
// entry far above the rest).
//
// The paper's claim this reproduces: Sphinx scales to higher throughput at
// lower latency because its operations put fewer messages and bytes on the
// fabric, delaying NIC saturation -- so its knee sits at a higher worker
// count than SMART's or ART's on the same cluster.
//
// Usage:
//   bench_scalability [--keys=1000000] [--ops=600]
//                     [--workers=6,12,24,48,96,192] [--datasets=u64,email]
//                     [--systems=sphinx,sphinx-nosfc,smart,smart+c,art]
//                     [--workload=A] [--mns=3] [--cns=3] [--vnodes=128]
//                     [--pipeline-depth=1] [--root-replicas=1]
//                     [--json=out.json] [--mem-budget=<bytes per MN>]
//
// --mns takes a csv to sweep cluster widths in one invocation (the per-MN
// heap is re-sized per width so the dataset always fits). --vnodes sets
// the consistent-hash ring's virtual nodes per MN -- sweep it to measure
// placement-balance sensitivity. --workload accepts one standard letter
// (A-F, L) or "churn". --root-replicas=0 disables replica-routed root
// reads in ART and Sphinx (the pre-replication hot-root behavior) for the
// before/after knee comparison of DESIGN.md Sec. 15.
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "common/metrics.h"

namespace sphinx::bench {
namespace {

// One knee-curve point. The schema is validated by
// tools/check_bench_regression.py --knee-schema and consumed by
// tools/find_knee.py.
struct KneePoint {
  std::string system;
  std::string dataset;
  uint32_t num_cns = 0;
  uint32_t num_mns = 0;
  uint32_t vnodes = 0;
  uint32_t depth = 1;
  uint32_t workers = 0;
  ycsb::RunResult result;
};

std::string double_vec_json(const std::vector<double>& v) {
  std::ostringstream os;
  os.precision(10);
  os << "[";
  for (size_t i = 0; i < v.size(); ++i) os << (i > 0 ? ", " : "") << v[i];
  os << "]";
  return os.str();
}

void write_json(const std::string& path, const std::vector<KneePoint>& pts) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open --json path: " << path << "\n";
    return;
  }
  out.precision(10);
  out << "[\n";
  for (size_t i = 0; i < pts.size(); ++i) {
    const KneePoint& p = pts[i];
    const ycsb::RunResult& r = p.result;
    out << "  ";
    metrics::JsonObjectWriter w(out);
    w.field("system", p.system);
    w.field("dataset", p.dataset);
    w.field("workload", r.workload);
    w.field("num_cns", static_cast<uint64_t>(p.num_cns));
    w.field("num_mns", static_cast<uint64_t>(p.num_mns));
    w.field("vnodes_per_mn", static_cast<uint64_t>(p.vnodes));
    w.field("pipeline_depth", static_cast<uint64_t>(p.depth));
    w.field("workers", static_cast<uint64_t>(p.workers));
    w.field("total_ops", r.total_ops);
    w.field("ops_per_sec", r.ops_per_sec);
    // Effective (queueing-adjusted) latency view: the mean is Little's-law
    // consistent with ops_per_sec; percentiles come from the per-NIC
    // stretched distribution. The unloaded view rides along so the curves
    // can show how far queueing has pushed each point.
    w.field("mean_latency_ns", r.mean_latency_ns);
    w.field("mean_unloaded_latency_ns", r.mean_unloaded_latency_ns);
    w.field("p50_effective_ns", r.effective_percentile_ns(50));
    w.field("p99_effective_ns", r.effective_percentile_ns(99));
    w.field("p50_unloaded_ns",
            static_cast<double>(r.latency.percentile_ns(50)));
    w.field("p99_unloaded_ns",
            static_cast<double>(r.latency.percentile_ns(99)));
    w.field("latency_stretch", r.latency_stretch);
    w.field("nic_utilization", r.nic_utilization);
    w.raw_field("cn_utilization", double_vec_json(r.cn_utilization));
    w.raw_field("mn_utilization", double_vec_json(r.mn_utilization));
    w.field("mn_msg_balance", r.mn_msg_balance);
    w.field("rtts_per_op", r.rtts_per_op);
    w.field("read_bytes_per_op", r.read_bytes_per_op);
    // Loss counters: all must be zero in a fault-free, memory-ample sweep
    // (the CI smoke asserts it). A nonzero here means the knee curve is
    // contaminated by failures, not pure queueing.
    w.field("misses", r.misses);
    w.field("insert_failures", r.insert_failures);
    w.field("alloc_failures", r.alloc_failures);
    w.field("alloc_underflows", r.alloc_underflows);
    w.field("client_crashes", r.client_crashes);
    w.close();
    out << (i + 1 < pts.size() ? ",\n" : "\n");
  }
  out << "]\n";
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t num_keys = flags.get_u64("keys", 1000000);
  const uint64_t ops_per_worker = flags.get_u64("ops", 600);
  const uint64_t mem_budget = flags.get_u64("mem-budget", 0);
  const uint32_t num_cns =
      static_cast<uint32_t>(flags.get_u64("cns", 3));
  const uint32_t vnodes =
      static_cast<uint32_t>(flags.get_u64("vnodes", 128));
  const uint32_t depth =
      static_cast<uint32_t>(flags.get_u64("pipeline-depth", 1));
  const bool root_replicas = flags.get_u64("root-replicas", 1) != 0;
  const std::string json_path = flags.get_string("json", "");

  std::vector<uint32_t> worker_counts;
  if (!parse_u32_list("workers",
                      flags.get_string("workers", "6,12,24,48,96,192"),
                      &worker_counts)) {
    return 2;
  }
  std::vector<uint32_t> mn_counts;
  if (!parse_u32_list("mns", flags.get_string("mns", "3"), &mn_counts)) {
    return 2;
  }
  std::vector<ycsb::DatasetKind> datasets;
  if (!parse_datasets(flags.get_string("datasets", "u64,email"), &datasets)) {
    return 2;
  }
  // Systems: default is all five evaluated configurations (the four of the
  // paper's figures plus the SFC-ablated Sphinx).
  std::vector<ycsb::SystemKind> systems;
  {
    const std::string spec =
        flags.get_string("systems", "sphinx,sphinx-nosfc,smart,smart+c,art");
    std::stringstream ss(spec);
    std::string token;
    while (std::getline(ss, token, ',')) {
      ycsb::SystemKind kind;
      if (!parse_system_checked(token, &kind)) {
        std::cerr << "--systems: unknown system '" << token
                  << "' (expected sphinx, sphinx-nosfc, smart, smart+c, "
                  << "art)\n";
        return 2;
      }
      systems.push_back(kind);
    }
    if (systems.empty()) {
      std::cerr << "--systems: empty list\n";
      return 2;
    }
  }
  const std::string workload_tok = flags.get_string("workload", "A");
  if (workload_tok != "churn" &&
      (workload_tok.size() != 1 ||
       std::string("ABCDEFLabcdefl").find(workload_tok[0]) ==
           std::string::npos)) {
    std::cerr << "--workload: unknown token '" << workload_tok << "'\n";
    return 2;
  }
  const ycsb::WorkloadSpec spec = workload_tok == "churn"
                                      ? ycsb::churn_workload()
                                      : ycsb::standard_workload(
                                            workload_tok[0]);

  std::cout << "# Knee study -- workload " << spec.name << ", " << num_keys
            << " keys, workers swept over " << num_cns << " CNs";
  if (mn_counts.size() > 1) std::cout << ", MN widths swept";
  std::cout << "\n\n";

  std::vector<KneePoint> points;
  bool losses_seen = false;

  for (const ycsb::DatasetKind dataset : datasets) {
    // Key pool: loaded keys + headroom for insert-drawing workloads at the
    // widest concurrency.
    const uint64_t pool =
        num_keys + worker_counts.back() * ops_per_worker + 1024;
    const auto keys = ycsb::generate_keys(dataset, pool, 1);
    std::cout << "## dataset: " << ycsb::dataset_name(dataset) << "\n";

    for (const uint32_t num_mns : mn_counts) {
      if (mn_counts.size() > 1) std::cout << "### mns=" << num_mns << "\n";

      for (const ycsb::SystemKind kind : systems) {
        rdma::NetworkConfig config;
        config.num_cns = num_cns;
        config.num_mns = num_mns;
        config.vnodes_per_mn = vnodes;
        auto cluster = make_cluster_with_config(config, pool, mem_budget);
        ycsb::SystemSetup setup(kind, *cluster,
                                cache_budget_for(kind, num_keys));
        setup.set_root_replicas(root_replicas);
        ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
        runner.load(num_keys, 64);

        // Warm CN-side caches once at full concurrency.
        {
          ycsb::RunOptions warm;
          warm.workers = worker_counts.back();
          warm.ops_per_worker = 200;
          runner.run(ycsb::standard_workload('C'), warm);
        }

        TablePrinter table({"workers", "throughput", "eff-mean", "eff-p50",
                            "eff-p99", "stretch", "balance"});
        for (uint32_t workers : worker_counts) {
          ycsb::RunOptions options;
          options.workers = workers;
          options.ops_per_worker = ops_per_worker;
          options.pipeline_depth = depth;
          const ycsb::RunResult r = runner.run(spec, options);
          table.add_row(
              {std::to_string(workers), TablePrinter::fmt_mops(r.ops_per_sec),
               TablePrinter::fmt_us(r.mean_latency_ns),
               TablePrinter::fmt_us(r.effective_percentile_ns(50)),
               TablePrinter::fmt_us(r.effective_percentile_ns(99)),
               TablePrinter::fmt_double(r.latency_stretch),
               TablePrinter::fmt_double(r.mn_msg_balance)});
          if (r.insert_failures > 0 || r.alloc_failures > 0 ||
              r.alloc_underflows > 0 || r.client_crashes > 0) {
            losses_seen = true;
          }
          points.push_back({std::string(setup.name()),
                            ycsb::dataset_name(dataset), num_cns, num_mns,
                            vnodes, depth, workers, r});
        }
        std::cout << "#### " << setup.name() << "\n";
        table.print();
        std::cout << "\n";
      }
    }
  }
  if (!json_path.empty()) {
    write_json(json_path, points);
    std::cerr << "wrote " << points.size() << " knee points to " << json_path
              << "\n";
  }
  if (losses_seen) {
    std::cerr << "WARNING: loss counters nonzero -- curves include failure "
              << "noise, not pure queueing\n";
  }
  return 0;
}

}  // namespace
}  // namespace sphinx::bench

int main(int argc, char** argv) { return sphinx::bench::run(argc, argv); }
