// Reproduces Fig. 5 of the paper: throughput-latency curves under the
// write-intensive YCSB-A workload (50% read / 50% update, zipfian 0.99) as
// the number of workers grows from 6 to 192, evenly spread across 3 CNs,
// on both the u64 and email datasets.
//
// Each printed series is one system; each row is one worker count with the
// resulting throughput and mean latency. The paper's claim: Sphinx scales
// to higher throughput at lower latency because its operations put fewer
// messages and bytes on the fabric, delaying NIC saturation.
//
// Usage:
//   bench_scalability [--keys=1000000] [--ops=600]
//                     [--workers=6,12,24,48,96,192] [--datasets=u64,email]
#include <iostream>
#include <sstream>

#include "bench_common.h"

namespace sphinx::bench {
namespace {

std::vector<uint32_t> parse_worker_list(const std::string& spec) {
  std::vector<uint32_t> workers;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    workers.push_back(static_cast<uint32_t>(std::stoul(token)));
  }
  return workers;
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t num_keys = flags.get_u64("keys", 1000000);
  const uint64_t ops_per_worker = flags.get_u64("ops", 600);
  const std::vector<uint32_t> worker_counts =
      parse_worker_list(flags.get_string("workers", "6,12,24,48,96,192"));
  const std::string datasets = flags.get_string("datasets", "u64,email");

  std::cout << "# Fig. 5 -- YCSB-A throughput-latency scalability, "
            << num_keys << " keys, workers swept over 3 CNs\n\n";

  for (const ycsb::DatasetKind dataset :
       {ycsb::DatasetKind::kU64, ycsb::DatasetKind::kEmail}) {
    if (datasets.find(ycsb::dataset_name(dataset)) == std::string::npos) {
      continue;
    }
    const uint64_t pool = num_keys + 1024;
    const auto keys = ycsb::generate_keys(dataset, pool, 1);
    std::cout << "## dataset: " << ycsb::dataset_name(dataset) << "\n";

    for (const ycsb::SystemKind kind : paper_systems()) {
      auto cluster = make_cluster(pool);
      ycsb::SystemSetup setup(kind, *cluster, cache_budget_for(kind,
                                                               num_keys));
      ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
      runner.load(num_keys, 64);

      // Warm CN-side caches once at full concurrency.
      {
        ycsb::RunOptions warm;
        warm.workers = worker_counts.back();
        warm.ops_per_worker = 200;
        runner.run(ycsb::standard_workload('C'), warm);
      }

      TablePrinter table(
          {"workers", "throughput", "mean-latency", "p50", "p99(unloaded)",
           "nic-util"});
      for (uint32_t workers : worker_counts) {
        ycsb::RunOptions options;
        options.workers = workers;
        options.ops_per_worker = ops_per_worker;
        const ycsb::RunResult r =
            runner.run(ycsb::standard_workload('A'), options);
        table.add_row({std::to_string(workers),
                       TablePrinter::fmt_mops(r.ops_per_sec),
                       TablePrinter::fmt_us(r.mean_latency_ns),
                       TablePrinter::fmt_us(
                           static_cast<double>(r.latency.percentile_ns(50))),
                       TablePrinter::fmt_us(
                           static_cast<double>(r.latency.percentile_ns(99))),
                       TablePrinter::fmt_double(r.nic_utilization)});
      }
      std::cout << "### " << setup.name() << "\n";
      table.print();
      std::cout << "\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace sphinx::bench

int main(int argc, char** argv) { return sphinx::bench::run(argc, argv); }
