// Design-space sweeps beyond the paper's figures:
//
//   S1  memory-node count: consistent hashing spreads nodes and INHT
//       entries across MNs; more MNs = more aggregate NIC capacity.
//   S2  zipfian skew: how each system's caches respond as the workload
//       moves from uniform to heavily skewed.
//   S3  value size: leaf size (64 B units) vs throughput, and where the
//       in-place update path stops fitting.
//   S4  B+ tree head-to-head (u64 only): the extra Sherman-style baseline
//       vs Sphinx on point ops and scans -- and why the paper's
//       variable-length-key motivation rules it out for the email dataset.
//
// Usage: bench_sweeps [--keys=300000] [--ops=400] [--workers=96]
#include <iostream>

#include "bench_common.h"

namespace sphinx::bench {
namespace {

ycsb::RunResult run_cell(mem::Cluster& cluster, ycsb::SystemSetup& setup,
                         const std::vector<std::string>& keys,
                         uint64_t loaded, const ycsb::WorkloadSpec& spec,
                         uint32_t workers, uint64_t ops) {
  ycsb::YcsbRunner runner(cluster, setup.factory(), keys);
  runner.load(loaded, spec.value_size);
  ycsb::RunOptions warm;
  warm.workers = workers;
  warm.ops_per_worker = 200;
  runner.run(ycsb::standard_workload('C'), warm);
  ycsb::RunOptions options;
  options.workers = workers;
  options.ops_per_worker = ops;
  return runner.run(spec, options);
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t num_keys = flags.get_u64("keys", 300000);
  const uint64_t ops = flags.get_u64("ops", 400);
  const uint32_t workers = static_cast<uint32_t>(flags.get_u64("workers", 96));

  {
    std::cout << "## S1 -- memory-node count (Sphinx, YCSB-C, email)\n";
    TablePrinter table({"MNs", "throughput", "rtts/op", "nic-util"});
    const auto keys =
        ycsb::generate_keys(ycsb::DatasetKind::kEmail, num_keys, 1);
    for (uint32_t mns : {1u, 2u, 3u, 4u, 6u}) {
      rdma::NetworkConfig net;
      net.num_mns = mns;
      mem::Cluster cluster(net, mn_bytes_for_keys(num_keys, mns));
      ycsb::SystemSetup setup(
          ycsb::SystemKind::kSphinx, cluster,
          cache_budget_for(ycsb::SystemKind::kSphinx, num_keys));
      const ycsb::RunResult r =
          run_cell(cluster, setup, keys, num_keys,
                   ycsb::standard_workload('C'), workers, ops);
      table.add_row({std::to_string(mns),
                     TablePrinter::fmt_mops(r.ops_per_sec),
                     TablePrinter::fmt_double(r.rtts_per_op),
                     TablePrinter::fmt_double(r.nic_utilization)});
    }
    table.print();
    std::cout << "\n";
  }

  {
    std::cout << "## S2 -- zipfian skew sweep (YCSB-C, email)\n";
    TablePrinter table({"theta", "Sphinx", "SMART", "ART"});
    const auto keys =
        ycsb::generate_keys(ycsb::DatasetKind::kEmail, num_keys, 1);
    for (double theta : {0.0, 0.5, 0.8, 0.99, 1.1}) {
      std::vector<std::string> row = {TablePrinter::fmt_double(theta, 2)};
      for (ycsb::SystemKind kind :
           {ycsb::SystemKind::kSphinx, ycsb::SystemKind::kSmart,
            ycsb::SystemKind::kArt}) {
        auto cluster = make_cluster(num_keys);
        ycsb::SystemSetup setup(kind, *cluster,
                                cache_budget_for(kind, num_keys));
        ycsb::WorkloadSpec spec = ycsb::standard_workload('C');
        if (theta == 0.0) {
          spec.dist = ycsb::RequestDist::kUniform;
        } else {
          spec.zipf_theta = theta;
        }
        const ycsb::RunResult r =
            run_cell(*cluster, setup, keys, num_keys, spec, workers, ops);
        row.push_back(TablePrinter::fmt_mops(r.ops_per_sec));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::cout << "\n";
  }

  {
    std::cout << "## S3 -- value-size sweep (Sphinx, YCSB-A, u64)\n";
    TablePrinter table({"value", "throughput", "read-B/op", "mean-latency"});
    const auto keys = ycsb::generate_keys(ycsb::DatasetKind::kU64, num_keys,
                                          1);
    for (uint32_t value_size : {16u, 64u, 256u, 1024u, 3072u}) {
      auto cluster = make_cluster(num_keys * (1 + value_size / 256));
      ycsb::SystemSetup setup(
          ycsb::SystemKind::kSphinx, *cluster,
          cache_budget_for(ycsb::SystemKind::kSphinx, num_keys));
      ycsb::WorkloadSpec spec = ycsb::standard_workload('A');
      spec.value_size = value_size;
      const ycsb::RunResult r =
          run_cell(*cluster, setup, keys, num_keys, spec, workers, ops);
      table.add_row({TablePrinter::fmt_bytes(value_size),
                     TablePrinter::fmt_mops(r.ops_per_sec),
                     TablePrinter::fmt_double(r.read_bytes_per_op, 0),
                     TablePrinter::fmt_us(r.mean_latency_ns)});
    }
    table.print();
    std::cout << "\n";
  }

  {
    std::cout << "## S4 -- Sphinx vs the Sherman-style B+ tree "
                 "(u64 only; the B+ tree cannot index variable-length "
                 "keys)\n";
    TablePrinter table({"system", "workload", "throughput", "rtts/op",
                        "mean-latency"});
    const auto keys = ycsb::generate_keys(ycsb::DatasetKind::kU64, num_keys,
                                          1);
    for (ycsb::SystemKind kind :
         {ycsb::SystemKind::kSphinx, ycsb::SystemKind::kBpTree}) {
      for (char w : {'C', 'A', 'E'}) {
        auto cluster = make_cluster(num_keys);
        ycsb::SystemSetup setup(kind, *cluster,
                                cache_budget_for(kind, num_keys));
        const ycsb::RunResult r = run_cell(
            *cluster, setup, keys, num_keys, ycsb::standard_workload(w),
            workers, w == 'E' ? std::max<uint64_t>(ops / 10, 40) : ops);
        table.add_row({setup.name(), ycsb::standard_workload(w).name,
                       TablePrinter::fmt_mops(r.ops_per_sec),
                       TablePrinter::fmt_double(r.rtts_per_op),
                       TablePrinter::fmt_us(r.mean_latency_ns)});
      }
    }
    table.print();
    std::cout << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace sphinx::bench

int main(int argc, char** argv) { return sphinx::bench::run(argc, argv); }
