// Reproduces Fig. 4 of the paper: YCSB throughput (workloads A, B, C, D, E,
// F and LOAD) on the u64 and email datasets for Sphinx, SMART (20 MB cache),
// SMART+C (200 MB cache) and the ART baseline. --workloads also accepts a
// csv mixing letters with "churn" (20/40/40 read/insert/remove), the
// epoch-reclamation stress mix; --mem-budget shrinks the per-MN heap to
// drive the allocator into degraded mode instead of crashing.
//
// The paper loads 60 M keys on a 3x128 GB testbed; the default here is a
// proportional scale-down that regenerates the figure's *shape* (who wins,
// by what factor) in minutes. Scale with --keys / --ops.
//
// Usage:
//   bench_ycsb [--keys=1000000] [--ops=600] [--workers=192]
//              [--datasets=u64,email] [--workloads=ABCDEL] [--warmup=1]
//              [--mem-budget=<bytes per MN>]
//              [--faults=0.02] [--crash-rate=0.0001] [--fault-seed=42]
//              [--json=out.json] [--trace=out.trace.json]
//              [--pec-budget=<bytes>] [--no-pec]
//              [--lac-budget=<bytes>] [--no-lac] [--no-scan-jump]
//
// --faults=<rate> installs the standard background fault schedule
// (rdma/fault_injector.h) on the fabric for the measured phases: per-verb
// congestion delays with probability <rate>, plus proportionally rarer
// stalls and CAS race losses. Load and warmup stay fault-free. Per-fault
// counters are reported per system; --fault-seed makes a run replayable.
//
// --crash-rate=<p> kills clients: every tagged protocol verb crashes its
// endpoint with probability p. The runner reincarnates crashed workers;
// orphaned locks are reclaimed by survivors via the lease watch, and the
// recovery counters (lock reclaims, lease expiries, retry timeouts, backoff
// histogram) are reported per workload and emitted in --json records.
//
// --json=<path> additionally writes one machine-readable record per
// (system, dataset, workload) -- throughput, RTTs/op, read bytes/op, mean
// latency, per-phase RTT/byte attribution, crash/recovery counters -- for
// regression tracking (see BENCH_seed.json and
// tools/check_bench_regression.py).
// --trace=<path> records sampled per-op trace spans (1 in 32 ops) during
// every measured phase and writes a Chrome trace_event JSON on exit; open
// it in chrome://tracing or Perfetto. One trace process per
// (system, dataset, workload).
// --pec-budget=<bytes> overrides the Sphinx prefix-entry-cache budget
// (default: 25% of the CN cache budget); --no-pec disables the PEC,
// reproducing the seed SFC-only configuration.
// --lac-budget=<bytes> overrides the Sphinx leaf-address-cache budget
// (default: 5% of the CN cache budget, carved from the filter's share);
// --no-lac disables the LAC, reproducing the two-tier SFC+PEC
// configuration bit for bit.
// --pipeline-depth=<csv> runs every workload once per listed depth (e.g.
// "1,8"). Depth 1 is the serial client, bit-identical to before pipelining
// existed; deeper runs keep N point ops in flight per worker
// (ycsb::RunOptions::pipeline_depth) and report under the workload name
// suffixed ":p<depth>" so JSON records and the regression gate keep
// distinct keys. The Fig. 4 table shows the depth-1 (paper-comparable)
// numbers; pipelined rows go to stderr and --json.
#include <deque>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

#include "art/remote_tree.h"
#include "bench_common.h"
#include "common/metrics.h"
#include "core/sphinx_index.h"
#include "rdma/trace.h"

namespace sphinx::bench {
namespace {

// One --json record. Fields mirror the stderr per-workload lines so the
// two outputs can be cross-checked.
struct JsonRecord {
  std::string system;
  std::string dataset;
  ycsb::RunResult result;
  rdma::RecoveryStats recovery;
  rdma::BackoffHistogram backoff;
  // Scan breakdown (workload E; zero elsewhere). scan_subtree_skips and
  // scan_leaf_drops must be zero in any fault-free run -- CI asserts it.
  rdma::ScanStats scan;
  // Sphinx cache-tier counters (zero for other systems). lac_wrong_value
  // must be zero in *every* run, faulted or not -- CI asserts it.
  core::SphinxStats sphinx;
};

// Sums the crash-recovery counters of every worker's index client (tree
// lock recovery + INHT lock recovery for Sphinx). Fed by the runner's
// per-worker hook, which also fires for each crashed incarnation.
struct RecoveryAgg {
  std::mutex mu;
  rdma::RecoveryStats recovery;
  rdma::BackoffHistogram backoff;
  rdma::ScanStats scan;
  core::SphinxStats sphinx_stats;

  void add(KvIndex& index) {
    std::lock_guard<std::mutex> lock(mu);
    if (auto* tree = dynamic_cast<art::RemoteTree*>(&index)) {
      recovery += tree->tree_stats().recovery;
      backoff += tree->tree_stats().backoff;
      scan += tree->tree_stats().scan;
    }
    if (auto* sphinx = dynamic_cast<core::SphinxIndex*>(&index)) {
      const race::RaceStats inht = sphinx->inht().aggregated_stats();
      recovery += inht.recovery;
      backoff += inht.backoff;
      sphinx_stats += sphinx->sphinx_stats();
    }
  }

  void reset() {
    recovery = rdma::RecoveryStats();
    backoff = rdma::BackoffHistogram();
    scan = rdma::ScanStats();
    sphinx_stats = core::SphinxStats();
  }
};

// Serializes one per-phase array as a nested JSON object, keyed by phase
// name, dropping zero entries (workloads exercise few phases each).
std::string phase_breakdown_json(
    const std::array<uint64_t, rdma::kNumPhases>& by_phase) {
  std::ostringstream os;
  metrics::JsonObjectWriter w(os);
  for (uint32_t p = 0; p < rdma::kNumPhases; ++p) {
    if (by_phase[p] == 0) continue;
    w.field(rdma::phase_name(static_cast<rdma::Phase>(p)), by_phase[p]);
  }
  w.close();
  return os.str();
}

void write_json(const std::string& path, const std::vector<JsonRecord>& recs) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open --json path: " << path << "\n";
    return;
  }
  out.precision(10);
  out << "[\n";
  for (size_t i = 0; i < recs.size(); ++i) {
    const JsonRecord& r = recs[i];
    const ycsb::RunResult& res = r.result;
    out << "  ";
    metrics::JsonObjectWriter w(out);
    w.field("system", r.system);
    w.field("dataset", r.dataset);
    w.field("workload", res.workload);
    w.field("ops_per_sec", res.ops_per_sec);
    w.field("rtts_per_op", res.rtts_per_op);
    w.field("read_bytes_per_op", res.read_bytes_per_op);
    // Dual latency view: effective (queueing-adjusted, consistent with
    // ops_per_sec) alongside the unloaded histogram mean, with the stretch
    // factor that relates them. Percentiles are effective, like the mean.
    w.field("mean_latency_ns", res.mean_latency_ns);
    w.field("mean_unloaded_latency_ns", res.mean_unloaded_latency_ns);
    w.field("latency_stretch", res.latency_stretch);
    w.field("p50_ns", res.effective_percentile_ns(50));
    w.field("p99_ns", res.effective_percentile_ns(99));
    w.field("nic_utilization", res.nic_utilization);
    w.field("total_ops", res.total_ops);
    w.field("round_trips", res.net.round_trips);
    w.field("misses", res.misses);
    w.field("insert_failures", res.insert_failures);
    w.field("client_crashes", res.client_crashes);
    // Churn/RMW op breakdown (nonzero only for workloads with remove/rmw
    // shares). remove_misses must be zero in fault-free, memory-ample runs.
    w.field("remove_ops", res.remove_ops);
    w.field("remove_misses", res.remove_misses);
    w.field("remove_underflow", res.remove_underflow);
    w.field("reused_key_inserts", res.reused_key_inserts);
    w.field("rmw_ops", res.rmw_ops);
    w.field("rmw_misses", res.rmw_misses);
    // Epoch-reclamation flow and degraded-mode counters (cluster-wide
    // deltas for this phase). The gate requires churn rows to actually
    // recycle (reclaimed_blocks > 0) with bounded retired_bytes_outstanding,
    // and alloc_underflows to be zero everywhere.
    w.field("alloc_failures", res.alloc_failures);
    w.field("alloc_degraded_ops", res.alloc_degraded_ops);
    w.field("reclaimed_blocks", res.reclaimed_blocks);
    w.field("retired_bytes_total", res.retired_bytes_total);
    w.field("retired_bytes_outstanding", res.retired_bytes_outstanding);
    w.field("leaked_bytes", res.leaked_bytes);
    w.field("alloc_underflows", res.alloc_underflows);
    w.field("epoch_advances", res.epoch_advances);
    w.field("expired_epoch_slots", res.expired_epoch_slots);
    // Per-phase RTT/byte attribution; entries sum exactly to round_trips /
    // bytes_read+bytes_written (verified after every run).
    w.raw_field("phase_rtts", phase_breakdown_json(res.net.rtts_by_phase));
    w.raw_field("phase_bytes", phase_breakdown_json(res.net.bytes_by_phase));
    metrics::write_fields(w, r.recovery, rdma::kRecoveryStatsFields);
    w.field("scan_ops", res.scan_ops);
    w.field("scan_rtts_per_op", res.scan_rtts_per_op);
    w.field("scan_truncated_ops", res.scan_truncated);
    metrics::write_fields(w, r.scan, rdma::kScanStatsFields, "scan_");
    // Cache-tier counters (all zero for non-Sphinx systems). The regression
    // gate keys on lac_wrong_value: a 1-RTT speculative read that returned
    // a wrong value past validation -- must be zero in every run.
    metrics::write_fields(w, r.sphinx, core::kSphinxStatsFields);
    w.field("backoff_waits", r.backoff.waits);
    w.field("backoff_wait_ns", r.backoff.wait_ns);
    {
      std::ostringstream hist;
      hist << "[";
      for (uint32_t b = 0; b < rdma::BackoffHistogram::kBuckets; ++b) {
        hist << (b > 0 ? ", " : "") << r.backoff.buckets[b];
      }
      hist << "]";
      w.raw_field("backoff_hist", hist.str());
    }
    w.close();
    out << (i + 1 < recs.size() ? ",\n" : "\n");
  }
  out << "]\n";
}

int run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t num_keys = flags.get_u64("keys", 1000000);
  const uint64_t ops_per_worker = flags.get_u64("ops", 600);
  const uint32_t workers = static_cast<uint32_t>(flags.get_u64("workers", 192));
  const std::string datasets = flags.get_string("datasets", "u64,email");
  // Workloads: either the legacy letter string ("ABCDEL") or a csv of
  // tokens mixing letters with named mixes ("A,B,churn"). Letters map to
  // standard_workload; "churn" is the reclamation-stress mix.
  const std::string workloads_flag = flags.get_string("workloads", "ABCDEL");
  std::vector<std::string> workload_tokens;
  if (workloads_flag.find(',') == std::string::npos &&
      workloads_flag.find("churn") == std::string::npos) {
    for (char c : workloads_flag) workload_tokens.emplace_back(1, c);
  } else {
    std::stringstream ws(workloads_flag);
    std::string tok;
    while (std::getline(ws, tok, ',')) {
      if (!tok.empty()) workload_tokens.push_back(tok);
    }
  }
  for (const std::string& tok : workload_tokens) {
    if (tok != "churn" &&
        (tok.size() != 1 ||
         std::string("ABCDEFLabcdefl").find(tok[0]) == std::string::npos)) {
      std::cerr << "--workloads: unknown token '" << tok << "'\n";
      return 2;
    }
  }
  auto spec_for = [](const std::string& tok) {
    return tok == "churn" ? ycsb::churn_workload()
                          : ycsb::standard_workload(tok[0]);
  };
  // --mem-budget=<bytes>: per-MN region size override. Small budgets make
  // run-phase allocations fail; the expected outcome is degraded ops, not
  // crashes (the degraded-mode smoke asserts exactly that).
  const uint64_t mem_budget = flags.get_u64("mem-budget", 0);
  const bool warmup = flags.get_bool("warmup", true);
  const double fault_rate = flags.get_double("faults", 0.0);
  const double crash_rate = flags.get_double("crash-rate", 0.0);
  const uint64_t fault_seed = flags.get_u64("fault-seed", 42);
  const std::string json_path = flags.get_string("json", "");
  const std::string trace_path = flags.get_string("trace", "");
  // A/B switch: run Sphinx scans without the SFC/PEC entry jump (root
  // descents, like the baselines). Point ops keep their caches.
  const bool scan_jump = !flags.get_bool("no-scan-jump", false);
  // PEC sizing: --no-pec wins, then an explicit --pec-budget in bytes,
  // else the default 25% carve-out (ycsb::SystemSetup).
  const uint64_t pec_budget =
      flags.get_bool("no-pec", false)
          ? 0
          : flags.has("pec-budget") ? flags.get_u64("pec-budget", 0)
                                    : ycsb::kAutoPecBudget;
  // LAC sizing, same precedence: --no-lac wins, then --lac-budget, else
  // the default 25% carve-out.
  const uint64_t lac_budget =
      flags.get_bool("no-lac", false)
          ? 0
          : flags.has("lac-budget") ? flags.get_u64("lac-budget", 0)
                                    : ycsb::kAutoLacBudget;
  // Pipeline depths to sweep, comma-separated (default: serial only).
  std::vector<uint32_t> depths;
  {
    const std::string spec = flags.get_string("pipeline-depth", "1");
    std::stringstream ds(spec);
    std::string tok;
    while (std::getline(ds, tok, ',')) {
      if (tok.empty()) continue;
      uint64_t v = 0;
      try {
        size_t pos = 0;
        v = std::stoul(tok, &pos);
        if (pos != tok.size() || v == 0) throw std::invalid_argument(tok);
      } catch (const std::exception&) {
        std::cerr << "--pipeline-depth: expected a csv of positive "
                  << "integers, got '" << spec << "'\n";
        return 2;
      }
      depths.push_back(static_cast<uint32_t>(v));
    }
    if (depths.empty()) depths.push_back(1);
  }
  std::vector<JsonRecord> json_records;
  // One recorder per measured (system, dataset, workload) phase; deque for
  // stable addresses (TraceProcess keeps pointers into it).
  std::deque<rdma::TraceRecorder> trace_recorders;
  std::vector<rdma::TraceProcess> trace_processes;
  bool attribution_ok = true;

  std::cout << "# Fig. 4 -- YCSB throughput, " << num_keys
            << " loaded keys, " << workers << " workers x " << ops_per_worker
            << " ops, zipfian 0.99, 64 B values\n";
  if (fault_rate > 0.0 || crash_rate > 0.0) {
    std::cout << "# fault injection on: rate=" << fault_rate
              << " crash-rate=" << crash_rate << " seed=" << fault_seed
              << "\n";
  }
  std::cout << "\n";

  for (const ycsb::DatasetKind dataset :
       {ycsb::DatasetKind::kU64, ycsb::DatasetKind::kEmail}) {
    if (datasets.find(ycsb::dataset_name(dataset)) == std::string::npos) {
      continue;
    }
    // Key pool: loaded keys + headroom for insert-heavy workloads.
    const uint64_t pool = num_keys + workers * ops_per_worker + 1024;
    const auto keys = ycsb::generate_keys(dataset, pool, 1);

    TablePrinter table({"workload", "Sphinx", "SMART", "SMART+C", "ART",
                        "best-vs-ART"});
    std::vector<std::vector<double>> tput(workload_tokens.size(),
                                          std::vector<double>(4, 0.0));

    int sys_col = 0;
    for (const ycsb::SystemKind kind : paper_systems()) {
      auto cluster = make_cluster(pool, /*batching=*/true, mem_budget);
      ycsb::SystemSetup setup(kind, *cluster, cache_budget_for(kind, num_keys),
                              pec_budget, lac_budget);
      setup.set_scan_jump(scan_jump);
      ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
      runner.load(num_keys, 64);
      std::cerr << "[" << ycsb::dataset_name(dataset) << "] loaded "
                << setup.name() << "\n";

      if (warmup) {
        // One short pass so CN-side caches (filter / node cache) reach
        // steady state before measurement, as in the paper's methodology.
        ycsb::RunOptions warm;
        warm.workers = workers;
        warm.ops_per_worker = std::max<uint64_t>(ops_per_worker / 4, 200);
        runner.run(ycsb::standard_workload('C'), warm);
      }

      // Faults perturb only the measured phases; loading and warmup ran
      // clean so every system starts from an identical healthy state.
      std::unique_ptr<rdma::FaultInjector> injector;
      if (fault_rate > 0.0 || crash_rate > 0.0) {
        injector = make_fault_injector(fault_rate, fault_seed, crash_rate);
        cluster->fabric().set_fault_injector(injector.get());
      }

      // Crash-recovery counters, summed over every worker incarnation of
      // the current workload (reset between workloads).
      RecoveryAgg recovery_agg;
      runner.set_per_worker_hook(
          [&recovery_agg](KvIndex& index, uint32_t) { recovery_agg.add(index); });

      int row = 0;
      for (const std::string& wtok : workload_tokens) {
        for (const uint32_t depth : depths) {
        recovery_agg.reset();
        ycsb::RunOptions options;
        options.workers = workers;
        options.pipeline_depth = depth;
        options.ops_per_worker =
            (wtok == "E" || wtok == "e")
                ? std::max<uint64_t>(ops_per_worker / 10, 50)
                : ops_per_worker;
        if (!trace_path.empty()) {
          trace_recorders.emplace_back();
          options.trace = &trace_recorders.back();
        }
        ycsb::RunResult result = runner.run(spec_for(wtok), options);
        // Pipelined rows keep distinct (system, dataset, workload) keys in
        // the JSON records and the regression gate.
        if (depth > 1) result.workload += ":p" + std::to_string(depth);
        if (options.trace != nullptr) {
          trace_processes.push_back(
              {std::string(setup.name()) + "/" +
                   ycsb::dataset_name(dataset) + "/" + result.workload,
               options.trace});
        }
        // Attribution invariant: every round trip (and byte) carries exactly
        // one phase tag. A mismatch means a stats bump site bypassed the
        // phase accounting -- fail the whole bench run.
        if (result.net.rtts_sum_by_phase() != result.net.round_trips ||
            result.net.bytes_sum_by_phase() != result.net.bytes_total()) {
          std::cerr << "ERROR: phase attribution mismatch for "
                    << setup.name() << "/" << ycsb::dataset_name(dataset)
                    << "/" << result.workload << ": sum(phase_rtts)="
                    << result.net.rtts_sum_by_phase()
                    << " round_trips=" << result.net.round_trips
                    << " sum(phase_bytes)=" << result.net.bytes_sum_by_phase()
                    << " bytes_total=" << result.net.bytes_total() << "\n";
          attribution_ok = false;
        }
        // The Fig. 4 comparison table keeps the first-listed depth
        // (normally 1, the paper-comparable serial client).
        if (depth == depths.front()) {
          tput[static_cast<size_t>(row)][static_cast<size_t>(sys_col)] =
              result.ops_per_sec;
        }
        std::cerr << "  " << result.workload << ": "
                  << TablePrinter::fmt_mops(result.ops_per_sec) << " ("
                  << TablePrinter::fmt_double(result.rtts_per_op) << " rtt/op, "
                  << result.latency.summary() << ")\n";
        if (result.scan_ops > 0) {
          std::cerr << "    scans: " << result.scan_ops << " ("
                    << TablePrinter::fmt_double(result.scan_rtts_per_op)
                    << " rtt/scan, " << recovery_agg.scan.jump_starts
                    << " jump starts, " << recovery_agg.scan.widen_resumes
                    << " widen-resumes, " << recovery_agg.scan.stale_retries
                    << " stale retries, " << recovery_agg.scan.subtree_skips
                    << " subtree skips, " << recovery_agg.scan.leaf_drops
                    << " leaf drops, " << result.scan_truncated
                    << " truncated)\n";
        }
        if (result.remove_ops > 0 || result.rmw_ops > 0) {
          std::cerr << "    churn: " << result.remove_ops << " removes ("
                    << result.remove_misses << " misses), "
                    << result.reused_key_inserts << " reused-key inserts, "
                    << result.rmw_ops << " rmw (" << result.rmw_misses
                    << " misses)\n";
        }
        if (result.retired_bytes_total > 0 || result.alloc_failures > 0) {
          std::cerr << "    reclaim: " << result.reclaimed_blocks
                    << " blocks recycled, "
                    << (result.retired_bytes_total >> 10) << " KiB retired ("
                    << (result.retired_bytes_outstanding >> 10)
                    << " KiB outstanding, " << (result.leaked_bytes >> 10)
                    << " KiB leaked), " << result.epoch_advances
                    << " epoch advances, " << result.expired_epoch_slots
                    << " slots expired, " << result.alloc_failures
                    << " alloc failures -> " << result.alloc_degraded_ops
                    << " degraded ops, " << result.alloc_underflows
                    << " accounting underflows\n";
        }
        if (result.client_crashes > 0 ||
            recovery_agg.recovery.lock_reclaims > 0) {
          std::cerr << "    crashes: " << result.client_crashes
                    << ", lock reclaims: "
                    << recovery_agg.recovery.lock_reclaims << " ("
                    << recovery_agg.recovery.lock_rollforwards
                    << " roll-forward), lease expiries: "
                    << recovery_agg.recovery.lease_expiries_observed
                    << ", retry timeouts: "
                    << recovery_agg.recovery.retry_timeouts << "\n";
        }
        if (!json_path.empty()) {
          json_records.push_back({setup.name(), ycsb::dataset_name(dataset),
                                  result, recovery_agg.recovery,
                                  recovery_agg.backoff, recovery_agg.scan,
                                  recovery_agg.sphinx_stats});
        }
        }
        row++;
      }
      runner.set_per_worker_hook(nullptr);
      if (injector) {
        std::cerr << "  " << fault_summary(injector->stats()) << "\n";
        cluster->fabric().set_fault_injector(nullptr);
      }
      sys_col++;
    }

    int row = 0;
    for (const std::string& wtok : workload_tokens) {
      const auto& r = tput[static_cast<size_t>(row)];
      const double best = std::max({r[0], r[1], r[2]});
      table.add_row({spec_for(wtok).name,
                     TablePrinter::fmt_mops(r[0]), TablePrinter::fmt_mops(r[1]),
                     TablePrinter::fmt_mops(r[2]), TablePrinter::fmt_mops(r[3]),
                     r[3] > 0 ? TablePrinter::fmt_ratio(best / r[3]) : "-"});
      row++;
    }
    std::cout << "## dataset: " << ycsb::dataset_name(dataset) << "\n";
    table.print();
    std::cout << "\n";
  }
  if (!json_path.empty()) {
    write_json(json_path, json_records);
    std::cerr << "wrote " << json_records.size() << " records to "
              << json_path << "\n";
  }
  if (!trace_path.empty()) {
    std::ofstream tout(trace_path);
    if (!tout) {
      std::cerr << "cannot open --trace path: " << trace_path << "\n";
    } else {
      rdma::write_chrome_trace(tout, trace_processes);
      uint64_t events = 0;
      uint64_t dropped = 0;
      for (const rdma::TraceRecorder& rec : trace_recorders) {
        events += rec.events().size();
        dropped += rec.dropped();
      }
      std::cerr << "wrote " << events << " trace events ("
                << dropped << " dropped at buffer capacity) to "
                << trace_path << "\n";
    }
  }
  if (!attribution_ok) {
    std::cerr << "phase attribution check FAILED\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sphinx::bench

int main(int argc, char** argv) { return sphinx::bench::run(argc, argv); }
