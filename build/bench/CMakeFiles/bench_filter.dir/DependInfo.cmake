
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_filter.cpp" "bench/CMakeFiles/bench_filter.dir/bench_filter.cpp.o" "gcc" "bench/CMakeFiles/bench_filter.dir/bench_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ycsb/CMakeFiles/sphinx_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sphinx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bptree/CMakeFiles/sphinx_bptree.dir/DependInfo.cmake"
  "/root/repo/build/src/art/CMakeFiles/sphinx_art.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/sphinx_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/racehash/CMakeFiles/sphinx_racehash.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/sphinx_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sphinx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
