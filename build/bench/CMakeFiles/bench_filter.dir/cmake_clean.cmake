file(REMOVE_RECURSE
  "CMakeFiles/bench_filter.dir/bench_filter.cpp.o"
  "CMakeFiles/bench_filter.dir/bench_filter.cpp.o.d"
  "bench_filter"
  "bench_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
