file(REMOVE_RECURSE
  "CMakeFiles/bench_rtt.dir/bench_rtt.cpp.o"
  "CMakeFiles/bench_rtt.dir/bench_rtt.cpp.o.d"
  "bench_rtt"
  "bench_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
