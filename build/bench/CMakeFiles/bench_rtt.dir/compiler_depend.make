# Empty compiler generated dependencies file for bench_rtt.
# This may be replaced when dependencies are built.
