file(REMOVE_RECURSE
  "CMakeFiles/bench_sweeps.dir/bench_sweeps.cpp.o"
  "CMakeFiles/bench_sweeps.dir/bench_sweeps.cpp.o.d"
  "bench_sweeps"
  "bench_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
