# Empty dependencies file for bench_sweeps.
# This may be replaced when dependencies are built.
