file(REMOVE_RECURSE
  "CMakeFiles/bench_ycsb.dir/bench_ycsb.cpp.o"
  "CMakeFiles/bench_ycsb.dir/bench_ycsb.cpp.o.d"
  "bench_ycsb"
  "bench_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
