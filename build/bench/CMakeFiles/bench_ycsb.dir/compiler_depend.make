# Empty compiler generated dependencies file for bench_ycsb.
# This may be replaced when dependencies are built.
