file(REMOVE_RECURSE
  "CMakeFiles/email_directory.dir/email_directory.cpp.o"
  "CMakeFiles/email_directory.dir/email_directory.cpp.o.d"
  "email_directory"
  "email_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/email_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
