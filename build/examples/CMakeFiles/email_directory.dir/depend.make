# Empty dependencies file for email_directory.
# This may be replaced when dependencies are built.
