file(REMOVE_RECURSE
  "CMakeFiles/order_index.dir/order_index.cpp.o"
  "CMakeFiles/order_index.dir/order_index.cpp.o.d"
  "order_index"
  "order_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
