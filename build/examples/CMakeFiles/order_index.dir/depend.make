# Empty dependencies file for order_index.
# This may be replaced when dependencies are built.
