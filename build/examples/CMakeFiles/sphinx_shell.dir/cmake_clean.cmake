file(REMOVE_RECURSE
  "CMakeFiles/sphinx_shell.dir/sphinx_shell.cpp.o"
  "CMakeFiles/sphinx_shell.dir/sphinx_shell.cpp.o.d"
  "sphinx_shell"
  "sphinx_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphinx_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
