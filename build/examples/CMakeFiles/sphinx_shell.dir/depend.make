# Empty dependencies file for sphinx_shell.
# This may be replaced when dependencies are built.
