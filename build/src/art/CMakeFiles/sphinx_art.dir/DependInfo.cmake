
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/art/node_image.cpp" "src/art/CMakeFiles/sphinx_art.dir/node_image.cpp.o" "gcc" "src/art/CMakeFiles/sphinx_art.dir/node_image.cpp.o.d"
  "/root/repo/src/art/remote_tree.cpp" "src/art/CMakeFiles/sphinx_art.dir/remote_tree.cpp.o" "gcc" "src/art/CMakeFiles/sphinx_art.dir/remote_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdma/CMakeFiles/sphinx_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sphinx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
