file(REMOVE_RECURSE
  "CMakeFiles/sphinx_art.dir/node_image.cpp.o"
  "CMakeFiles/sphinx_art.dir/node_image.cpp.o.d"
  "CMakeFiles/sphinx_art.dir/remote_tree.cpp.o"
  "CMakeFiles/sphinx_art.dir/remote_tree.cpp.o.d"
  "libsphinx_art.a"
  "libsphinx_art.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphinx_art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
