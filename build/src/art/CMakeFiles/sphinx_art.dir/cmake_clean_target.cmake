file(REMOVE_RECURSE
  "libsphinx_art.a"
)
