# Empty compiler generated dependencies file for sphinx_art.
# This may be replaced when dependencies are built.
