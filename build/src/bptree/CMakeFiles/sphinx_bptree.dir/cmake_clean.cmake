file(REMOVE_RECURSE
  "CMakeFiles/sphinx_bptree.dir/bptree.cpp.o"
  "CMakeFiles/sphinx_bptree.dir/bptree.cpp.o.d"
  "libsphinx_bptree.a"
  "libsphinx_bptree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphinx_bptree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
