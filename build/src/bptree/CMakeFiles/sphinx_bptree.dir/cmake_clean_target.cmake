file(REMOVE_RECURSE
  "libsphinx_bptree.a"
)
