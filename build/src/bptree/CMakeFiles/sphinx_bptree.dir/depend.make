# Empty dependencies file for sphinx_bptree.
# This may be replaced when dependencies are built.
