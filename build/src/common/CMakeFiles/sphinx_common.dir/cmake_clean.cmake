file(REMOVE_RECURSE
  "CMakeFiles/sphinx_common.dir/dist.cpp.o"
  "CMakeFiles/sphinx_common.dir/dist.cpp.o.d"
  "CMakeFiles/sphinx_common.dir/hash.cpp.o"
  "CMakeFiles/sphinx_common.dir/hash.cpp.o.d"
  "CMakeFiles/sphinx_common.dir/histogram.cpp.o"
  "CMakeFiles/sphinx_common.dir/histogram.cpp.o.d"
  "CMakeFiles/sphinx_common.dir/table_printer.cpp.o"
  "CMakeFiles/sphinx_common.dir/table_printer.cpp.o.d"
  "libsphinx_common.a"
  "libsphinx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphinx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
