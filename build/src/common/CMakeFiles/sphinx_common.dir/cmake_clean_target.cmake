file(REMOVE_RECURSE
  "libsphinx_common.a"
)
