# Empty dependencies file for sphinx_common.
# This may be replaced when dependencies are built.
