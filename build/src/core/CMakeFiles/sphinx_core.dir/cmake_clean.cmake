file(REMOVE_RECURSE
  "CMakeFiles/sphinx_core.dir/inht.cpp.o"
  "CMakeFiles/sphinx_core.dir/inht.cpp.o.d"
  "CMakeFiles/sphinx_core.dir/sphinx_index.cpp.o"
  "CMakeFiles/sphinx_core.dir/sphinx_index.cpp.o.d"
  "libsphinx_core.a"
  "libsphinx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphinx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
