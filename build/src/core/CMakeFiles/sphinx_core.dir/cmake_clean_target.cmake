file(REMOVE_RECURSE
  "libsphinx_core.a"
)
