# Empty compiler generated dependencies file for sphinx_core.
# This may be replaced when dependencies are built.
