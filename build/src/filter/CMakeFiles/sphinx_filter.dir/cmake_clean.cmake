file(REMOVE_RECURSE
  "CMakeFiles/sphinx_filter.dir/cuckoo_filter.cpp.o"
  "CMakeFiles/sphinx_filter.dir/cuckoo_filter.cpp.o.d"
  "libsphinx_filter.a"
  "libsphinx_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphinx_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
