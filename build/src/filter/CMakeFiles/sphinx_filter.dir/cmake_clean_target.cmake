file(REMOVE_RECURSE
  "libsphinx_filter.a"
)
