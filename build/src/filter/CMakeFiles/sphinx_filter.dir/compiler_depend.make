# Empty compiler generated dependencies file for sphinx_filter.
# This may be replaced when dependencies are built.
