file(REMOVE_RECURSE
  "CMakeFiles/sphinx_racehash.dir/race_table.cpp.o"
  "CMakeFiles/sphinx_racehash.dir/race_table.cpp.o.d"
  "libsphinx_racehash.a"
  "libsphinx_racehash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphinx_racehash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
