file(REMOVE_RECURSE
  "libsphinx_racehash.a"
)
