# Empty dependencies file for sphinx_racehash.
# This may be replaced when dependencies are built.
