file(REMOVE_RECURSE
  "CMakeFiles/sphinx_rdma.dir/endpoint.cpp.o"
  "CMakeFiles/sphinx_rdma.dir/endpoint.cpp.o.d"
  "libsphinx_rdma.a"
  "libsphinx_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphinx_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
