file(REMOVE_RECURSE
  "libsphinx_rdma.a"
)
