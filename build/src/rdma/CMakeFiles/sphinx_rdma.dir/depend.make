# Empty dependencies file for sphinx_rdma.
# This may be replaced when dependencies are built.
