file(REMOVE_RECURSE
  "CMakeFiles/sphinx_ycsb.dir/dataset.cpp.o"
  "CMakeFiles/sphinx_ycsb.dir/dataset.cpp.o.d"
  "CMakeFiles/sphinx_ycsb.dir/runner.cpp.o"
  "CMakeFiles/sphinx_ycsb.dir/runner.cpp.o.d"
  "CMakeFiles/sphinx_ycsb.dir/systems.cpp.o"
  "CMakeFiles/sphinx_ycsb.dir/systems.cpp.o.d"
  "libsphinx_ycsb.a"
  "libsphinx_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphinx_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
