file(REMOVE_RECURSE
  "libsphinx_ycsb.a"
)
