# Empty compiler generated dependencies file for sphinx_ycsb.
# This may be replaced when dependencies are built.
