
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_art.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_art.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_art.cpp.o.d"
  "/root/repo/tests/test_bptree.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_bptree.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_bptree.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_concurrency.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_concurrency.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_concurrency.cpp.o.d"
  "/root/repo/tests/test_filter.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_filter.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_filter.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_memnode.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_memnode.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_memnode.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_racehash.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_racehash.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_racehash.cpp.o.d"
  "/root/repo/tests/test_rdma.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_rdma.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_rdma.cpp.o.d"
  "/root/repo/tests/test_smart.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_smart.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_smart.cpp.o.d"
  "/root/repo/tests/test_sphinx.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_sphinx.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_sphinx.cpp.o.d"
  "/root/repo/tests/test_ycsb.cpp" "tests/CMakeFiles/sphinx_tests.dir/test_ycsb.cpp.o" "gcc" "tests/CMakeFiles/sphinx_tests.dir/test_ycsb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ycsb/CMakeFiles/sphinx_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/bptree/CMakeFiles/sphinx_bptree.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sphinx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/art/CMakeFiles/sphinx_art.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/sphinx_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/racehash/CMakeFiles/sphinx_racehash.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/sphinx_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sphinx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
