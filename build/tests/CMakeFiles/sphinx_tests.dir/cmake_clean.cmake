file(REMOVE_RECURSE
  "CMakeFiles/sphinx_tests.dir/test_art.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_art.cpp.o.d"
  "CMakeFiles/sphinx_tests.dir/test_bptree.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_bptree.cpp.o.d"
  "CMakeFiles/sphinx_tests.dir/test_common.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/sphinx_tests.dir/test_concurrency.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_concurrency.cpp.o.d"
  "CMakeFiles/sphinx_tests.dir/test_filter.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_filter.cpp.o.d"
  "CMakeFiles/sphinx_tests.dir/test_integration.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_integration.cpp.o.d"
  "CMakeFiles/sphinx_tests.dir/test_memnode.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_memnode.cpp.o.d"
  "CMakeFiles/sphinx_tests.dir/test_properties.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/sphinx_tests.dir/test_racehash.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_racehash.cpp.o.d"
  "CMakeFiles/sphinx_tests.dir/test_rdma.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_rdma.cpp.o.d"
  "CMakeFiles/sphinx_tests.dir/test_smart.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_smart.cpp.o.d"
  "CMakeFiles/sphinx_tests.dir/test_sphinx.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_sphinx.cpp.o.d"
  "CMakeFiles/sphinx_tests.dir/test_ycsb.cpp.o"
  "CMakeFiles/sphinx_tests.dir/test_ycsb.cpp.o.d"
  "sphinx_tests"
  "sphinx_tests.pdb"
  "sphinx_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphinx_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
