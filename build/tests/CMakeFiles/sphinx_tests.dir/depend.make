# Empty dependencies file for sphinx_tests.
# This may be replaced when dependencies are built.
