// Email directory on disaggregated memory -- the paper's motivating
// variable-length-key scenario.
//
// Builds a directory mapping email addresses to profile records, serves
// point lookups from several concurrent clients across the cluster's
// compute nodes, and runs alphabetical range scans ("the 20 addresses
// after X"). Prints per-operation network costs, demonstrating the ~3
// round-trip searches the succinct filter cache enables on deep
// variable-length-key trees.
//
// Usage: email_directory [--users=200000] [--lookups=30000] [--clients=6]
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "core/sphinx_index.h"
#include "memnode/remote_allocator.h"
#include "ycsb/dataset.h"

using namespace sphinx;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t users = flags.get_u64("users", 200000);
  const uint64_t lookups = flags.get_u64("lookups", 30000);
  const uint32_t clients = static_cast<uint32_t>(flags.get_u64("clients", 6));

  rdma::NetworkConfig net;
  mem::Cluster cluster(net, 512ull << 20);
  core::SphinxRefs refs = core::create_sphinx(cluster);

  // One filter cache per compute node, shared by that CN's clients.
  std::vector<std::unique_ptr<filter::CuckooFilter>> filters;
  for (uint32_t cn = 0; cn < net.num_cns; ++cn) {
    filters.push_back(filter::CuckooFilter::with_budget(2ull << 20));
  }

  std::cout << "generating " << users << " email addresses...\n";
  const auto emails = ycsb::generate_email_keys(users, 7);
  std::cout << "mean address length: " << ycsb::mean_key_length(emails)
            << " bytes (paper's corpus: 18.93)\n";

  // Bulk load with an unmetered client (loading is setup, not workload).
  {
    rdma::Endpoint loader = cluster.make_loader_endpoint();
    mem::RemoteAllocator alloc(cluster, loader);
    core::SphinxIndex index(cluster, loader, alloc, refs, filters[0].get());
    for (uint64_t i = 0; i < users; ++i) {
      index.insert(emails[i], "profile#" + std::to_string(i));
    }
  }
  std::cout << "loaded.\n";

  // Concurrent point lookups from every compute node.
  std::vector<std::thread> threads;
  std::vector<rdma::EndpointStats> stats(clients);
  std::vector<uint64_t> clocks(clients, 0);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const uint32_t cn = c % net.num_cns;
      rdma::Endpoint endpoint = cluster.make_endpoint(cn);
      mem::RemoteAllocator alloc(cluster, endpoint);
      core::SphinxIndex index(cluster, endpoint, alloc, refs,
                              filters[cn].get());
      Rng rng(c + 1);
      std::string value;
      uint64_t found = 0;
      for (uint64_t i = 0; i < lookups; ++i) {
        if (index.search(emails[rng.next_below(users)], &value)) found++;
      }
      if (found != lookups) {
        std::cerr << "client " << c << ": " << (lookups - found)
                  << " lookups missed!\n";
      }
      stats[c] = endpoint.stats();
      clocks[c] = endpoint.clock_ns();
    });
  }
  for (auto& t : threads) t.join();

  rdma::EndpointStats total;
  uint64_t max_clock = 0;
  for (uint32_t c = 0; c < clients; ++c) {
    total += stats[c];
    max_clock = std::max(max_clock, clocks[c]);
  }
  const double ops = static_cast<double>(lookups) * clients;
  std::printf("\n%u clients x %llu lookups:\n", clients,
              static_cast<unsigned long long>(lookups));
  std::printf("  %.2f round trips / lookup (paper: ~3)\n",
              static_cast<double>(total.round_trips) / ops);
  std::printf("  %.0f bytes read / lookup\n",
              static_cast<double>(total.bytes_read) / ops);
  std::printf("  %.2f M lookups/s aggregate (simulated)\n",
              ops / static_cast<double>(max_clock) * 1e3);

  // Alphabetical range scans.
  rdma::Endpoint endpoint = cluster.make_endpoint(0);
  mem::RemoteAllocator alloc(cluster, endpoint);
  core::SphinxIndex index(cluster, endpoint, alloc, refs, filters[0].get());
  std::vector<std::pair<std::string, std::string>> page;
  index.scan("karen", 10, &page);
  std::cout << "\nfirst 10 addresses at or after 'karen':\n";
  for (const auto& [email, profile] : page) {
    std::cout << "  " << email << "  (" << profile << ")\n";
  }
  return 0;
}
