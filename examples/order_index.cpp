// Order-event index: fixed-length integer keys with heavy range scans --
// the classic "recent orders" pattern of transaction-processing systems
// the paper's introduction motivates.
//
// Order IDs are 64-bit integers encoded big-endian (encode_u64_key), so
// lexicographic order in the tree equals numeric order and a scan from
// any order ID walks forward in time. The demo ingests a stream of orders,
// updates their status in place (the paper's checksummed single-WRITE
// update), and pages through windows of consecutive orders.
//
// Usage: order_index [--orders=100000] [--pages=2000]
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "core/sphinx_index.h"
#include "memnode/remote_allocator.h"

using namespace sphinx;

namespace {

std::string make_status(const char* state, uint64_t ts) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"state\":\"%s\",\"ts\":%llu}", state,
                static_cast<unsigned long long>(ts));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t num_orders = flags.get_u64("orders", 100000);
  const uint64_t pages = flags.get_u64("pages", 2000);

  rdma::NetworkConfig net;
  mem::Cluster cluster(net, 512ull << 20);
  core::SphinxRefs refs = core::create_sphinx(cluster);
  auto filter = filter::CuckooFilter::with_budget(1ull << 20);

  rdma::Endpoint endpoint = cluster.make_endpoint(0);
  mem::RemoteAllocator allocator(cluster, endpoint);
  core::SphinxIndex index(cluster, endpoint, allocator, refs, filter.get());

  // Ingest: order IDs arrive roughly increasing but interleaved (several
  // frontends allocating from ranges), the worst case for naive
  // append-only structures and a natural one for a radix tree.
  std::cout << "ingesting " << num_orders << " orders...\n";
  Rng rng(11);
  std::vector<uint64_t> ids;
  ids.reserve(num_orders);
  for (uint64_t i = 0; i < num_orders; ++i) {
    const uint64_t id = i * 10 + rng.next_below(10);  // interleaved ranges
    ids.push_back(id);
    index.insert(encode_u64_key(id), make_status("placed", i));
  }

  // Status updates: in-place (value fits), one CAS + one WRITE each.
  const rdma::EndpointStats before_updates = endpoint.stats();
  for (uint64_t i = 0; i < num_orders / 10; ++i) {
    const uint64_t id = ids[rng.next_below(ids.size())];
    index.update(encode_u64_key(id), make_status("shipped", num_orders + i));
  }
  const rdma::EndpointStats update_cost =
      endpoint.stats() - before_updates;
  std::printf("status updates: %.2f round trips each "
              "(search + lock CAS + combined release/value WRITE)\n",
              static_cast<double>(update_cost.round_trips) /
                  static_cast<double>(num_orders / 10));

  // Paging: "50 consecutive orders starting at X".
  const rdma::EndpointStats before_scans = endpoint.stats();
  std::vector<std::pair<std::string, std::string>> window;
  uint64_t rows = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    const uint64_t start = ids[rng.next_below(ids.size())];
    index.scan(encode_u64_key(start), 50, &window);
    rows += window.size();
    // Verify the page is sorted and starts at or after the request.
    uint64_t prev = start;
    for (const auto& [k, v] : window) {
      const uint64_t id = decode_u64_key(Slice(k));
      if (id < prev) {
        std::cerr << "scan order violation!\n";
        return 1;
      }
      prev = id;
    }
  }
  const rdma::EndpointStats scan_cost = endpoint.stats() - before_scans;
  std::printf("paging: %llu pages, %.1f rows/page, %.1f round trips/page "
              "(doorbell-batched leaf runs)\n",
              static_cast<unsigned long long>(pages),
              static_cast<double>(rows) / static_cast<double>(pages),
              static_cast<double>(scan_cost.round_trips) /
                  static_cast<double>(pages));

  std::printf("total simulated time: %.2f ms\n",
              static_cast<double>(endpoint.clock_ns()) / 1e6);
  return 0;
}
