// Quickstart: bring up a simulated disaggregated-memory cluster, create a
// Sphinx index, and run the basic operations.
//
//   $ ./quickstart
//
// Walks through: cluster bootstrap, per-client endpoint/allocator, the
// Sphinx client, insert / search / update / scan / remove, and the traffic
// statistics that show what each operation cost on the (simulated) wire.
#include <cstdio>
#include <iostream>

#include "core/sphinx_index.h"
#include "memnode/remote_allocator.h"

using namespace sphinx;

int main() {
  // 1. A disaggregated-memory "cluster": 3 compute nodes, 3 memory nodes,
  //    256 MiB per MN, connected by the simulated RDMA fabric.
  rdma::NetworkConfig net;  // defaults model the paper's testbed
  mem::Cluster cluster(net, /*mn_size_bytes=*/256ull << 20);

  // 2. Create the shared remote structures once (any node can do this):
  //    the ART plus one inner-node hash table per MN.
  core::SphinxRefs refs = core::create_sphinx(cluster);

  // 3. Each compute node hosts one succinct filter cache, shared by all of
  //    its worker threads. 1 MiB is plenty for this demo.
  auto filter = filter::CuckooFilter::with_budget(1ull << 20);

  // 4. A client: an RDMA endpoint (virtual clock + stats), a remote
  //    allocator, and the Sphinx index handle.
  rdma::Endpoint endpoint = cluster.make_endpoint(/*cn=*/0);
  mem::RemoteAllocator allocator(cluster, endpoint);
  core::SphinxIndex index(cluster, endpoint, allocator, refs, filter.get());

  // 5. Basic operations.
  index.insert("apple", "fruit");
  index.insert("apricot", "also fruit");
  index.insert("avocado", "berry, botanically");
  index.insert("banana", "herb, botanically");

  std::string value;
  if (index.search("apricot", &value)) {
    std::cout << "apricot -> " << value << "\n";
  }

  index.update("banana", "still a herb");
  index.remove("apple");

  std::cout << "\nrange scan from 'a', up to 10 entries:\n";
  std::vector<std::pair<std::string, std::string>> range;
  index.scan("a", 10, &range);
  for (const auto& [k, v] : range) {
    std::cout << "  " << k << " -> " << v << "\n";
  }

  // 6. What did that cost on the wire?
  const rdma::EndpointStats& stats = endpoint.stats();
  std::printf(
      "\nwire traffic: %llu round trips, %llu verbs "
      "(%llu reads / %llu writes / %llu CAS), %llu bytes read\n",
      static_cast<unsigned long long>(stats.round_trips),
      static_cast<unsigned long long>(stats.verbs()),
      static_cast<unsigned long long>(stats.reads),
      static_cast<unsigned long long>(stats.writes),
      static_cast<unsigned long long>(stats.cas),
      static_cast<unsigned long long>(stats.bytes_read));
  std::printf("virtual time elapsed: %.2f us\n",
              static_cast<double>(endpoint.clock_ns()) / 1000.0);
  return 0;
}
