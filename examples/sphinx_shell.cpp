// Interactive shell over a Sphinx index -- a minimal redis-cli-style REPL
// for poking at the index and watching per-command wire costs.
//
//   $ ./sphinx_shell
//   sphinx> put apple fruit
//   OK            (5 rtts, 13 us)
//   sphinx> get apple
//   "fruit"       (3 rtts, 7 us)
//   sphinx> scan a 10
//   ...
//
// Commands: put <k> <v> | get <k> | del <k> | update <k> <v>
//           scan <start> <n> | range <lo> <hi> | stats | help | quit
#include <iostream>
#include <sstream>
#include <string>

#include "core/sphinx_index.h"
#include "memnode/remote_allocator.h"

using namespace sphinx;

namespace {

void print_help() {
  std::cout <<
      "commands:\n"
      "  put <key> <value>     insert a new key\n"
      "  update <key> <value>  change an existing key's value\n"
      "  get <key>             point lookup\n"
      "  del <key>             delete\n"
      "  scan <start> <n>      n entries from start, in order\n"
      "  range <lo> <hi>       all entries in [lo, hi]\n"
      "  stats                 wire-traffic and index statistics\n"
      "  help | quit\n";
}

}  // namespace

int main() {
  rdma::NetworkConfig net;
  mem::Cluster cluster(net, 256ull << 20);
  core::SphinxRefs refs = core::create_sphinx(cluster);
  auto filter = filter::CuckooFilter::with_budget(1ull << 20);
  rdma::Endpoint endpoint = cluster.make_endpoint(0);
  mem::RemoteAllocator allocator(cluster, endpoint);
  core::SphinxIndex index(cluster, endpoint, allocator, refs, filter.get());

  std::cout << "Sphinx on a simulated 3-CN/3-MN disaggregated-memory "
               "cluster. 'help' for commands.\n";

  std::string line;
  while (std::cout << "sphinx> " << std::flush &&
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;

    const rdma::EndpointStats before = endpoint.stats();
    const uint64_t t0 = endpoint.clock_ns();
    std::ostringstream reply;

    if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "help") {
      print_help();
      continue;
    } else if (cmd == "put" || cmd == "update") {
      std::string k, v;
      in >> k >> v;
      if (k.empty() || v.empty()) {
        std::cout << "usage: " << cmd << " <key> <value>\n";
        continue;
      }
      const bool ok =
          cmd == "put" ? index.insert(k, v) : index.update(k, v);
      reply << (ok ? "OK"
                   : (cmd == "put" ? "(exists -- use update)"
                                   : "(not found -- use put)"));
    } else if (cmd == "get") {
      std::string k, v;
      in >> k;
      reply << (index.search(k, &v) ? "\"" + v + "\"" : "(nil)");
    } else if (cmd == "del") {
      std::string k;
      in >> k;
      reply << (index.remove(k) ? "OK" : "(nil)");
    } else if (cmd == "scan") {
      std::string start;
      size_t n = 10;
      in >> start >> n;
      std::vector<std::pair<std::string, std::string>> out;
      index.scan(start, n, &out);
      for (const auto& [k, v] : out) {
        std::cout << "  " << k << " = " << v << "\n";
      }
      reply << out.size() << " entries";
    } else if (cmd == "range") {
      std::string lo, hi;
      in >> lo >> hi;
      std::vector<std::pair<std::string, std::string>> out;
      index.scan_range(lo, hi, 1000, &out);
      for (const auto& [k, v] : out) {
        std::cout << "  " << k << " = " << v << "\n";
      }
      reply << out.size() << " entries";
    } else if (cmd == "stats") {
      const rdma::EndpointStats& s = endpoint.stats();
      const core::SphinxStats& ss = index.sphinx_stats();
      std::cout << "  round trips: " << s.round_trips
                << "  verbs: " << s.verbs() << " (r " << s.reads << " / w "
                << s.writes << " / cas " << s.cas << ")\n"
                << "  bytes: " << s.bytes_read << " read / "
                << s.bytes_written << " written\n"
                << "  filter: " << filter->size() << " prefixes, "
                << ss.filter_hits << " hits, " << ss.fp_rejects
                << " fp-rejects, " << ss.parallel_fallbacks
                << " parallel fallbacks\n"
                << "  virtual time: "
                << static_cast<double>(endpoint.clock_ns()) / 1e3 << " us\n";
      continue;
    } else {
      std::cout << "unknown command '" << cmd << "' -- try 'help'\n";
      continue;
    }

    const rdma::EndpointStats delta = endpoint.stats() - before;
    std::printf("%-24s (%llu rtts, %.1f us)\n", reply.str().c_str(),
                static_cast<unsigned long long>(delta.round_trips),
                static_cast<double>(endpoint.clock_ns() - t0) / 1e3);
  }
  return 0;
}
