// Side-by-side comparison of the four systems on two small workloads --
// a two-minute, self-contained demonstration of the paper's headline
// result (Sphinx vs SMART / SMART+C / ART under read-only YCSB-C and
// read-mostly YCSB-B).
//
// Usage: system_comparison [--keys=200000] [--ops=400] [--workers=48]
#include <iostream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "ycsb/dataset.h"
#include "ycsb/runner.h"
#include "ycsb/systems.h"

using namespace sphinx;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t num_keys = flags.get_u64("keys", 200000);
  const uint64_t ops = flags.get_u64("ops", 400);
  const uint32_t workers = static_cast<uint32_t>(flags.get_u64("workers", 48));

  const auto keys =
      ycsb::generate_keys(ycsb::DatasetKind::kEmail, num_keys, 1);
  std::cout << num_keys << " email keys, " << workers
            << " workers, zipfian requests:\n\n";

  // One table per workload: C (100% reads) shows the cache-tier fast path
  // at its best; B (95/5 read/update) shows it surviving a write mix that
  // continuously moves and relocks leaves; F (50/50 read/RMW) doubles the
  // write pressure and chains every write behind a dependent read.
  const char kWorkloads[] = {'C', 'B', 'F'};
  constexpr size_t kNumWorkloads = sizeof(kWorkloads) / sizeof(kWorkloads[0]);
  TablePrinter tables[] = {
      TablePrinter({"system", "CN cache", "throughput", "rtts/op",
                    "read-B/op", "mean-latency"}),
      TablePrinter({"system", "CN cache", "throughput", "rtts/op",
                    "read-B/op", "mean-latency"}),
      TablePrinter({"system", "CN cache", "throughput", "rtts/op",
                    "read-B/op", "mean-latency"})};

  for (ycsb::SystemKind kind :
       {ycsb::SystemKind::kSphinx, ycsb::SystemKind::kSmart,
        ycsb::SystemKind::kSmartC, ycsb::SystemKind::kArt}) {
    rdma::NetworkConfig net;
    mem::Cluster cluster(net, 768ull << 20);
    const uint64_t budget = ycsb::scaled_cache_budget(
        kind == ycsb::SystemKind::kSmartC ? ycsb::kLargeCacheBudget
                                          : ycsb::kDefaultCacheBudget,
        num_keys);
    ycsb::SystemSetup setup(kind, cluster, budget);
    ycsb::YcsbRunner runner(cluster, setup.factory(), keys);
    runner.load(num_keys, 64);

    ycsb::RunOptions warm;
    warm.workers = workers;
    warm.ops_per_worker = 200;
    runner.run(ycsb::standard_workload('C'), warm);

    for (size_t t = 0; t < kNumWorkloads; ++t) {
      ycsb::RunOptions options;
      options.workers = workers;
      options.ops_per_worker = ops;
      const ycsb::RunResult r =
          runner.run(ycsb::standard_workload(kWorkloads[t]), options);
      tables[t].add_row(
          {setup.name(),
           kind == ycsb::SystemKind::kArt
               ? "-"
               : TablePrinter::fmt_bytes(budget),
           TablePrinter::fmt_mops(r.ops_per_sec),
           TablePrinter::fmt_double(r.rtts_per_op),
           TablePrinter::fmt_double(r.read_bytes_per_op, 0),
           TablePrinter::fmt_us(r.mean_latency_ns)});
    }
  }
  for (size_t t = 0; t < kNumWorkloads; ++t) {
    std::cout << "## " << ycsb::standard_workload(kWorkloads[t]).name
              << (kWorkloads[t] == 'C'   ? " (zipfian reads)"
                  : kWorkloads[t] == 'B' ? " (95% reads / 5% updates)"
                                         : " (50% reads / 50% RMW)")
              << "\n";
    tables[t].print();
    std::cout << "\n";
  }
  std::cout << "the paper's result: fewer round trips and far fewer bytes "
               "let Sphinx outperform node-caching designs even when its "
               "filter cache is a tenth of their size -- and the advantage "
               "holds once a write mix starts moving leaves.\n";
  return 0;
}
