// The "ART" baseline of the paper: the original adaptive radix tree ported
// to disaggregated memory. Pure sequential tree traversal over one-sided
// READs (one round trip per level), adaptive node types, no CN-side cache,
// no doorbell-batched scans.
#pragma once

#include "art/remote_tree.h"

namespace sphinx::art {

class ArtIndex final : public RemoteTree {
 public:
  // `config` defaults to the paper-faithful baseline; bench A/B knobs
  // (e.g. --root-replicas) hand in a tweaked copy of baseline_config().
  ArtIndex(mem::Cluster& cluster, rdma::Endpoint& endpoint,
           mem::RemoteAllocator& allocator, const TreeRef& ref,
           const TreeConfig& config = baseline_config())
      : RemoteTree(cluster, endpoint, allocator, ref, config) {}

  const char* name() const override { return "ART"; }

  static TreeConfig baseline_config() {
    TreeConfig config;
    config.batched_scan = false;      // Fig. 4E: ART lacks doorbell batching
    config.homogeneous_nodes = false;
    config.cache_scan_root = false;   // plain ART models no CN-side caching
    return config;
  }
};

}  // namespace sphinx::art
