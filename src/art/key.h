// Terminated keys. The index stores variable-length byte-string keys; to
// guarantee the prefix-free property ART's leaf placement needs, every user
// key is stored with a trailing 0x00 terminator. Callers must supply keys
// that are either NUL-free (e.g. email addresses) or all of equal length
// (e.g. 8-byte big-endian integers) -- both of the paper's datasets qualify.
#pragma once

#include <cassert>
#include <string>

#include "common/hash.h"
#include "common/slice.h"
#include "art/node_layout.h"

namespace sphinx::art {

// Seed for all prefix-placement hashing; shared by the tree, the INHT and
// the succinct filter cache so they agree on every prefix's identity.
constexpr uint64_t kPrefixHashSeed = 0x53504858ULL;  // "SPHX"

inline uint64_t prefix_hash(Slice prefix) {
  return xxhash64(prefix.data(), prefix.size(), kPrefixHashSeed);
}

class TerminatedKey {
 public:
  explicit TerminatedKey(Slice user_key) {
    assert(user_key.size() + 1 <= kMaxKeyLen);
    bytes_.reserve(user_key.size() + 1);
    bytes_.assign(user_key.data(), user_key.size());
    bytes_.push_back('\0');
  }

  // Full terminated length (user key + 1).
  uint32_t size() const { return static_cast<uint32_t>(bytes_.size()); }
  uint8_t byte(uint32_t i) const {
    assert(i < bytes_.size());
    return static_cast<uint8_t>(bytes_[i]);
  }
  Slice full() const { return Slice(bytes_); }
  Slice prefix(uint32_t len) const { return Slice(bytes_.data(), len); }
  Slice user_key() const { return Slice(bytes_.data(), bytes_.size() - 1); }

  uint64_t hash_of_prefix(uint32_t len) const {
    return prefix_hash(prefix(len));
  }

 private:
  std::string bytes_;
};

}  // namespace sphinx::art
