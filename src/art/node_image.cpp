#include "art/node_image.h"

#include <algorithm>

namespace sphinx::art {

void InnerImage::sorted_slots(std::vector<uint64_t>& out) const {
  out.clear();
  const uint32_t cap = capacity();
  for (uint32_t i = 0; i < cap; ++i) {
    if (slot_valid(slot(i))) out.push_back(slot(i));
  }
  if (type() != NodeType::kN256) {
    std::sort(out.begin(), out.end(), [](uint64_t a, uint64_t b) {
      return slot_pkey(a) < slot_pkey(b);
    });
  }
}

bool InnerImage::frag_consistent(const TerminatedKey& key,
                                 uint32_t parent_depth) const {
  const uint32_t d = depth();
  if (d > key.size()) return false;  // node deeper than the key itself
  const uint32_t flen = frag_len(frag_word());
  const uint32_t frag_start = d - flen;
  // Verified window: bytes the fragment covers that lie past the branch
  // byte consumed at the parent.
  const uint32_t from = std::max(parent_depth + 1, frag_start);
  for (uint32_t i = from; i < d; ++i) {
    if (frag_byte(frag_word(), i - frag_start) != key.byte(i)) return false;
  }
  return true;
}

InnerImage InnerImage::grown_copy(NodeType new_type) const {
  InnerImage out;
  // The hash comes from word 1, not the header: while the source node is
  // locked its header's hash42 bits carry the lock lease instead.
  out.words_[0] = pack_inner_header(NodeStatus::kIdle, new_type, depth(),
                                    words_[1] & ((1ULL << 42) - 1));
  out.words_[1] = words_[1];
  out.words_[2] = words_[2];
  for (uint32_t i = 0; i < node_capacity(new_type); ++i) out.words_[3 + i] = 0;

  const uint32_t cap = capacity();
  uint32_t next = 0;
  for (uint32_t i = 0; i < cap; ++i) {
    const uint64_t s = slot(i);
    if (!slot_valid(s)) continue;
    if (new_type == NodeType::kN256) {
      out.words_[3 + slot_pkey(s)] = s;
    } else {
      out.words_[3 + next++] = s;
    }
  }
  return out;
}

namespace {

// CRC over the lease-neutral header plus the key/value region described by
// (klen, vlen). Both the builder and every validator use exactly this.
uint32_t leaf_crc(const uint8_t* buf, uint32_t units, uint32_t klen,
                  uint32_t vlen) {
  const uint64_t neutral =
      leaf_crc_neutral(pack_leaf_header(NodeStatus::kIdle, units, klen, vlen));
  uint32_t crc = crc32c(&neutral, 8);
  return crc32c(buf + 8, pad8(klen) + pad8(vlen), crc);
}

void write_trailer(uint8_t* buf, uint32_t units, uint32_t klen,
                   uint32_t vlen) {
  const uint64_t t =
      pack_leaf_trailer(leaf_crc(buf, units, klen, vlen), klen, vlen);
  std::memcpy(buf + leaf_trailer_offset(units), &t, 8);
}

}  // namespace

LeafImage LeafImage::build(Slice terminated_key, Slice value, uint32_t units) {
  LeafImage img;
  const uint32_t klen = static_cast<uint32_t>(terminated_key.size());
  const uint32_t vlen = static_cast<uint32_t>(value.size());
  assert(units >= leaf_units_for(klen, vlen) && units < 64);
  img.buf_.assign(units * kLeafUnitBytes, 0);
  const uint64_t header = pack_leaf_header(NodeStatus::kIdle, units, klen,
                                           vlen);
  std::memcpy(img.buf_.data(), &header, 8);
  std::memcpy(img.buf_.data() + 8, terminated_key.data(), klen);
  std::memcpy(img.buf_.data() + 8 + pad8(klen), value.data(), vlen);
  write_trailer(img.buf_.data(), units, klen, vlen);
  return img;
}

bool LeafImage::checksum_ok() const {
  if (buf_.size() < kLeafUnitBytes) return false;
  const uint64_t h = header();
  const uint32_t u = leaf_units(h);
  const uint32_t klen = leaf_key_len(h);
  const uint32_t vlen = leaf_val_len(h);
  if (u * kLeafUnitBytes > buf_.size() || u == 0) return false;
  if (leaf_units_for(klen, vlen) > u) return false;
  uint64_t t;
  std::memcpy(&t, buf_.data() + leaf_trailer_offset(u), 8);
  return leaf_trailer_key_len(t) == klen && leaf_trailer_val_len(t) == vlen &&
         leaf_trailer_crc(t) == leaf_crc(buf_.data(), u, klen, vlen);
}

LeafImage::Revalidate LeafImage::revalidate() {
  if (buf_.size() >= 8) raw_header_ = header();
  if (checksum_ok()) return Revalidate::kOk;
  if (buf_.size() < kLeafUnitBytes) return Revalidate::kBad;
  const uint64_t h = header();
  const uint32_t u = leaf_units(h);
  if (u == 0 || u * kLeafUnitBytes > buf_.size()) return Revalidate::kBad;
  // The header's lengths do not match the body: if a crashed in-place
  // updater wrote the new body + trailer but never republished the header,
  // the trailer's redundant lengths reconstruct the new image.
  uint64_t t;
  std::memcpy(&t, buf_.data() + leaf_trailer_offset(u), 8);
  const uint32_t klen = leaf_trailer_key_len(t);
  const uint32_t vlen = leaf_trailer_val_len(t);
  if (klen == 0 || klen >= (1u << kLeafKeyLenBits) ||
      vlen >= (1u << kLeafValLenBits) || leaf_units_for(klen, vlen) > u) {
    return Revalidate::kBad;
  }
  if (leaf_trailer_crc(t) != leaf_crc(buf_.data(), u, klen, vlen)) {
    return Revalidate::kBad;
  }
  // Patch the *local* header's lengths, keeping the remote status + lease
  // bits so callers still see who holds the (orphaned) lock.
  const uint64_t patched =
      (h & ~kLeafFieldsMask) |
      leaf_crc_neutral(pack_leaf_header(NodeStatus::kIdle, u, klen, vlen));
  std::memcpy(buf_.data(), &patched, 8);
  return Revalidate::kPatched;
}

void LeafImage::replace_value(Slice new_value) {
  const uint64_t h = header();
  const uint32_t klen = leaf_key_len(h);
  const uint32_t u = leaf_units(h);
  assert(leaf_units_for(klen, static_cast<uint32_t>(new_value.size())) <= u);
  const uint32_t vlen = static_cast<uint32_t>(new_value.size());
  const uint64_t new_header =
      pack_leaf_header(NodeStatus::kIdle, u, klen, vlen);
  std::memcpy(buf_.data(), &new_header, 8);
  std::memset(buf_.data() + 8 + pad8(klen), 0, buf_.size() - 8 - pad8(klen));
  std::memcpy(buf_.data() + 8 + pad8(klen), new_value.data(), vlen);
  write_trailer(buf_.data(), u, klen, vlen);
}

}  // namespace sphinx::art
