#include "art/node_image.h"

#include <algorithm>

namespace sphinx::art {

void InnerImage::sorted_slots(std::vector<uint64_t>& out) const {
  out.clear();
  const uint32_t cap = capacity();
  for (uint32_t i = 0; i < cap; ++i) {
    if (slot_valid(slot(i))) out.push_back(slot(i));
  }
  if (type() != NodeType::kN256) {
    std::sort(out.begin(), out.end(), [](uint64_t a, uint64_t b) {
      return slot_pkey(a) < slot_pkey(b);
    });
  }
}

bool InnerImage::frag_consistent(const TerminatedKey& key,
                                 uint32_t parent_depth) const {
  const uint32_t d = depth();
  if (d > key.size()) return false;  // node deeper than the key itself
  const uint32_t flen = frag_len(frag_word());
  const uint32_t frag_start = d - flen;
  // Verified window: bytes the fragment covers that lie past the branch
  // byte consumed at the parent.
  const uint32_t from = std::max(parent_depth + 1, frag_start);
  for (uint32_t i = from; i < d; ++i) {
    if (frag_byte(frag_word(), i - frag_start) != key.byte(i)) return false;
  }
  return true;
}

InnerImage InnerImage::grown_copy(NodeType new_type) const {
  InnerImage out;
  out.words_[0] = pack_inner_header(NodeStatus::kIdle, new_type, depth(),
                                    header_prefix_hash42(header()));
  out.words_[1] = words_[1];
  out.words_[2] = words_[2];
  for (uint32_t i = 0; i < node_capacity(new_type); ++i) out.words_[3 + i] = 0;

  const uint32_t cap = capacity();
  uint32_t next = 0;
  for (uint32_t i = 0; i < cap; ++i) {
    const uint64_t s = slot(i);
    if (!slot_valid(s)) continue;
    if (new_type == NodeType::kN256) {
      out.words_[3 + slot_pkey(s)] = s;
    } else {
      out.words_[3 + next++] = s;
    }
  }
  return out;
}

LeafImage LeafImage::build(Slice terminated_key, Slice value, uint32_t units) {
  LeafImage img;
  const uint32_t klen = static_cast<uint32_t>(terminated_key.size());
  const uint32_t vlen = static_cast<uint32_t>(value.size());
  assert(units >= leaf_units_for(klen, vlen) && units < 64);
  img.buf_.assign(units * kLeafUnitBytes, 0);
  const uint64_t header = pack_leaf_header(NodeStatus::kIdle, units, klen,
                                           vlen);
  std::memcpy(img.buf_.data(), &header, 8);
  std::memcpy(img.buf_.data() + 8, terminated_key.data(), klen);
  std::memcpy(img.buf_.data() + 8 + pad8(klen), value.data(), vlen);
  const uint32_t crc_off = crc_offset(klen, vlen);
  // Checksum over the image with status zeroed, so lock transitions on the
  // header word never invalidate it.
  const uint64_t neutral = header & ~0x3ULL;
  uint32_t crc = crc32c(&neutral, 8);
  crc = crc32c(img.buf_.data() + 8, crc_off - 8, crc);
  std::memcpy(img.buf_.data() + crc_off, &crc, 4);
  return img;
}

bool LeafImage::checksum_ok() const {
  if (buf_.size() < kLeafUnitBytes) return false;
  const uint64_t h = header();
  const uint32_t klen = leaf_key_len(h);
  const uint32_t vlen = leaf_val_len(h);
  const uint32_t crc_off = crc_offset(klen, vlen);
  if (crc_off + 4 > buf_.size()) return false;
  const uint64_t neutral = h & ~0x3ULL;
  uint32_t crc = crc32c(&neutral, 8);
  crc = crc32c(buf_.data() + 8, crc_off - 8, crc);
  uint32_t stored;
  std::memcpy(&stored, buf_.data() + crc_off, 4);
  return stored == crc;
}

void LeafImage::replace_value(Slice new_value) {
  const uint64_t h = header();
  const uint32_t klen = leaf_key_len(h);
  const uint32_t u = leaf_units(h);
  assert(leaf_units_for(klen, static_cast<uint32_t>(new_value.size())) <= u);
  const uint32_t vlen = static_cast<uint32_t>(new_value.size());
  const uint64_t new_header =
      pack_leaf_header(NodeStatus::kIdle, u, klen, vlen);
  std::memcpy(buf_.data(), &new_header, 8);
  std::memset(buf_.data() + 8 + pad8(klen), 0, buf_.size() - 8 - pad8(klen));
  std::memcpy(buf_.data() + 8 + pad8(klen), new_value.data(), vlen);
  const uint32_t crc_off = crc_offset(klen, vlen);
  const uint64_t neutral = new_header & ~0x3ULL;
  uint32_t crc = crc32c(&neutral, 8);
  crc = crc32c(buf_.data() + 8, crc_off - 8, crc);
  std::memcpy(buf_.data() + crc_off, &crc, 4);
}

}  // namespace sphinx::art
