// Local (CN-side) working images of remote nodes: parsing, validation and
// construction helpers over the raw word layout in node_layout.h.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "art/key.h"
#include "art/node_layout.h"
#include "common/hash.h"
#include "common/slice.h"

namespace sphinx::art {

// A fetched inner node. Holds up to the largest node (N256); `type`
// determines how many slot words are meaningful.
class InnerImage {
 public:
  InnerImage() = default;

  // Builds a fresh node image (status Idle) for the given full prefix.
  static InnerImage create(NodeType type, Slice full_prefix) {
    InnerImage img;
    const uint8_t depth = static_cast<uint8_t>(full_prefix.size());
    const uint64_t hash = prefix_hash(full_prefix);
    img.words_[0] = pack_inner_header(NodeStatus::kIdle, type, depth,
                                      hash & ((1ULL << 42) - 1));
    img.words_[1] = hash;
    const uint32_t flen =
        full_prefix.size() < kMaxFragBytes
            ? static_cast<uint32_t>(full_prefix.size())
            : kMaxFragBytes;
    img.words_[2] =
        pack_frag(full_prefix.bytes() + full_prefix.size() - flen, flen);
    for (uint32_t i = 0; i < node_capacity(type); ++i) img.words_[3 + i] = 0;
    return img;
  }

  uint64_t* raw() { return words_.data(); }
  const uint64_t* raw() const { return words_.data(); }

  uint64_t header() const { return words_[0]; }
  void set_header(uint64_t w) { words_[0] = w; }
  NodeStatus status() const { return header_status(words_[0]); }
  NodeType type() const { return header_type(words_[0]); }
  uint8_t depth() const { return header_depth(words_[0]); }
  uint64_t prefix_hash_full() const { return words_[1]; }
  uint64_t frag_word() const { return words_[2]; }

  uint32_t capacity() const { return node_capacity(type()); }
  uint32_t size_bytes() const { return inner_node_bytes(type()); }

  uint64_t slot(uint32_t i) const { return words_[3 + i]; }
  void set_slot(uint32_t i, uint64_t w) { words_[3 + i] = w; }

  // Index of the slot matching branch byte `pkey`, or -1. N256 is
  // direct-indexed; the other types are scanned linearly.
  int find_pkey(uint8_t pkey) const {
    if (type() == NodeType::kN256) {
      return slot_valid(slot(pkey)) ? static_cast<int>(pkey) : -1;
    }
    const uint32_t cap = capacity();
    for (uint32_t i = 0; i < cap; ++i) {
      if (slot_valid(slot(i)) && slot_pkey(slot(i)) == pkey) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  // Index of a free slot for `pkey`, or -1 when the node is full. For
  // N256 the pkey's own slot is the only candidate.
  int find_free(uint8_t pkey) const {
    if (type() == NodeType::kN256) {
      return slot_valid(slot(pkey)) ? -1 : static_cast<int>(pkey);
    }
    const uint32_t cap = capacity();
    for (uint32_t i = 0; i < cap; ++i) {
      if (!slot_valid(slot(i))) return static_cast<int>(i);
    }
    return -1;
  }

  uint32_t valid_slot_count() const {
    uint32_t n = 0;
    const uint32_t cap = capacity();
    for (uint32_t i = 0; i < cap; ++i) {
      if (slot_valid(slot(i))) ++n;
    }
    return n;
  }

  // Valid slot words sorted by branch byte (for ordered scans).
  void sorted_slots(std::vector<uint64_t>& out) const;

  // Checks the stored prefix fragment against `key` given the parent's
  // depth: returns false when a byte in the verified window differs
  // (definite prefix mismatch).
  bool frag_consistent(const TerminatedKey& key, uint32_t parent_depth) const;

  // Copies this node's slots into a larger-type image (N48 -> N256
  // re-indexes by branch byte).
  InnerImage grown_copy(NodeType new_type) const;

 private:
  // Deliberately not zero-initialized: a default-constructed image is
  // always filled by a fetch or by create()/grown_copy() (which zero
  // exactly the slots their type uses) before any accessor runs, and
  // zeroing 2 KiB per fetched node dominated the host-side hot path.
  std::array<uint64_t, 3 + 256> words_;
};

// A fetched leaf. buf_ holds units * 64 bytes.
class LeafImage {
 public:
  LeafImage() = default;

  // Builds a leaf image with status Idle and a valid checksum. `units`
  // must be >= leaf_units_for(key.size(), value.size()).
  static LeafImage build(Slice terminated_key, Slice value, uint32_t units);

  std::vector<uint8_t>& buf() { return buf_; }
  const std::vector<uint8_t>& buf() const { return buf_; }
  void resize(uint32_t units) { buf_.assign(units * kLeafUnitBytes, 0); }

  uint64_t header() const {
    uint64_t w;
    std::memcpy(&w, buf_.data(), 8);
    return w;
  }
  NodeStatus status() const { return header_status(header()); }
  uint32_t units() const { return leaf_units(header()); }
  uint32_t key_len() const { return leaf_key_len(header()); }
  uint32_t val_len() const { return leaf_val_len(header()); }

  Slice key() const {  // terminated key
    return Slice(reinterpret_cast<const char*>(buf_.data() + 8), key_len());
  }
  Slice value() const {
    return Slice(
        reinterpret_cast<const char*>(buf_.data() + 8 + pad8(key_len())),
        val_len());
  }

  // Verifies the fixed-position trailer (CRC computed with the status and
  // lease bits zeroed) against the header's lengths.
  bool checksum_ok() const;

  // checksum_ok(), with a fallback for images left by a crashed in-place
  // updater: when the header's lengths do not match the body but the
  // trailer's redundant lengths + CRC describe a complete new image, the
  // local header's length fields are patched (status and lease bits are
  // preserved) and kPatched is returned. kBad means a torn read.
  enum class Revalidate { kOk, kPatched, kBad };
  Revalidate revalidate();

  // The header word exactly as it sat in remote memory at the last
  // revalidate() -- i.e. before any local length patching. A lease watch
  // (and its reclaim CAS) must be keyed on this word, never on header():
  // a patched header exists only locally, so a CAS expecting it can never
  // succeed against the orphaned lock word.
  uint64_t raw_header() const { return raw_header_; }

  // Rewrites the value in place (must fit in the current units), refreshing
  // header and trailer; used by the in-place update path.
  void replace_value(Slice new_value);

 private:
  std::vector<uint8_t> buf_;
  uint64_t raw_header_ = 0;
};

}  // namespace sphinx::art
