// On-MN byte layout of ART nodes (paper Fig. 3), shared by the ART
// baseline, SMART, and Sphinx.
//
// Inner node:
//   word 0  header : status:2 | type:3 | depth:8 | prefix_hash42:42
//   word 1  full 64-bit prefix hash (placement hash; also used by the
//           INHT segment-split rehash and by clients to reject
//           fingerprint collisions)
//   word 2  prefix fragment: frag_len:8 | up to 6 trailing prefix bytes
//   word 3+ slots (8 B each; capacity 4 / 16 / 48 / 256 by node type)
//
// The fragment always holds the *last* min(6, depth) bytes of the node's
// full prefix ([depth - frag_len, depth)), a parent-independent invariant:
// splicing a new inner node above this one never requires rewriting the
// fragment. Gaps longer than the fragment are verified optimistically at
// the leaf (standard hybrid path compression).
//
// Slot word: valid:1 | is_leaf:1 | meta:6 | partial_key:8 | addr:48
//   meta = child node type for inner children, leaf size in 64 B units for
//   leaf children -- so a parent read tells the client exactly how many
//   bytes to fetch next, in one round trip.
//
// Leaf:
//   word 0  header : status:2 | units:8 | key_len:9 | val_len:14 |
//                    lease owner:8 | lease stamp:23
//   terminated key bytes (padded to 8), value bytes (padded to 8), and --
//   in the last 8 bytes of the last unit, at a *fixed* offset -- a trailer
//   word crc32c:32 | key_len:16 | val_len:16. The checksum is computed
//   with the status and lease bits zeroed, so a reader can validate an
//   image regardless of lock state; the fixed trailer position plus the
//   redundant lengths let a reclaimer locate and verify the image of a
//   crashed in-place update whose header was never rewritten.
//
// Lock leases: while a node is Locked or Reclaiming, its header carries a
// lease {owner client_id:8 | stamp:23}. For inner nodes the lease lives in
// the prefix_hash42 bit range (word 1 still holds the full hash, from which
// the idle header is rebuilt); for leaves it lives in the 31 bits freed by
// the narrowed length fields. type/depth (inner) and units/key_len/val_len
// (leaf) survive locking so lock-free readers parse headers mid-descent.
// Expiry is detected by *watching* the lock word stay bit-identical for a
// full lease (rdma/retry_policy.h), never by comparing stamps across
// clients, so clock skew cannot forge an expiry; the stamp is a uniquifier
// (two lock acquisitions by one owner always differ in it) and diagnostic.
#pragma once

#include <cassert>
#include <cstdint>

#include "rdma/global_addr.h"

namespace sphinx::art {

enum class NodeStatus : uint8_t {
  kIdle = 0,
  kLocked = 1,
  kInvalid = 2,
  // A waiter observed the lock lease expired and is restoring the node; the
  // header carries the *reclaimer's* lease, so a crashed reclaimer is
  // itself reclaimable. Readers treat it like kLocked.
  kReclaiming = 3,
};

enum class NodeType : uint8_t { kN4 = 0, kN16 = 1, kN48 = 2, kN256 = 3 };

constexpr uint32_t node_capacity(NodeType t) {
  switch (t) {
    case NodeType::kN4:
      return 4;
    case NodeType::kN16:
      return 16;
    case NodeType::kN48:
      return 48;
    case NodeType::kN256:
      return 256;
  }
  return 0;
}

constexpr NodeType next_node_type(NodeType t) {
  switch (t) {
    case NodeType::kN4:
      return NodeType::kN16;
    case NodeType::kN16:
      return NodeType::kN48;
    case NodeType::kN48:
    case NodeType::kN256:
      return NodeType::kN256;
  }
  return NodeType::kN256;
}

constexpr uint32_t kInnerHeaderBytes = 24;  // words 0..2

constexpr uint32_t inner_node_bytes(NodeType t) {
  return kInnerHeaderBytes + node_capacity(t) * 8;
}

constexpr uint32_t kMaxInnerNodeBytes = inner_node_bytes(NodeType::kN256);

// Maximum key length (terminated) the 8-bit depth field supports.
constexpr uint32_t kMaxKeyLen = 255;

constexpr uint32_t kMaxFragBytes = 6;

// ---- inner header word -----------------------------------------------------

inline uint64_t pack_inner_header(NodeStatus status, NodeType type,
                                  uint8_t depth, uint64_t prefix_hash) {
  return static_cast<uint64_t>(status) |
         (static_cast<uint64_t>(type) << 2) |
         (static_cast<uint64_t>(depth) << 5) |
         ((prefix_hash & ((1ULL << 42) - 1)) << 13);
}

inline NodeStatus header_status(uint64_t w) {
  return static_cast<NodeStatus>(w & 0x3);
}
inline NodeType header_type(uint64_t w) {
  return static_cast<NodeType>((w >> 2) & 0x7);
}
inline uint8_t header_depth(uint64_t w) {
  return static_cast<uint8_t>((w >> 5) & 0xff);
}
inline uint64_t header_prefix_hash42(uint64_t w) {
  return (w >> 13) & ((1ULL << 42) - 1);
}
inline uint64_t with_status(uint64_t w, NodeStatus s) {
  return (w & ~0x3ULL) | static_cast<uint64_t>(s);
}

// ---- lock leases -----------------------------------------------------------

constexpr uint32_t kLeaseOwnerBits = 8;
constexpr uint32_t kLeaseStampBits = 23;
constexpr uint32_t kLeaseStampMask = (1u << kLeaseStampBits) - 1;
// Stamps tick in 1 us of the stamping endpoint's virtual clock (every verb
// charges >= 2 us, so consecutive acquisitions by one owner always differ).
constexpr uint32_t kLeaseStampShift = 10;

inline uint32_t lease_stamp(uint64_t clock_ns) {
  return static_cast<uint32_t>(clock_ns >> kLeaseStampShift) & kLeaseStampMask;
}

// Inner lease: owner/stamp overlay the prefix_hash42 bit range while the
// node is Locked/Reclaiming; type and depth are preserved.
inline uint64_t pack_inner_lease(uint64_t header, NodeStatus status,
                                 uint8_t owner, uint32_t stamp) {
  assert(status == NodeStatus::kLocked || status == NodeStatus::kReclaiming);
  return (header & 0x1ffcULL) |  // keep type:3 | depth:8
         static_cast<uint64_t>(status) |
         (static_cast<uint64_t>(owner) << 13) |
         (static_cast<uint64_t>(stamp & kLeaseStampMask) << 21);
}
inline uint8_t inner_lease_owner(uint64_t w) {
  return static_cast<uint8_t>((w >> 13) & 0xff);
}
inline uint32_t inner_lease_stamp(uint64_t w) {
  return static_cast<uint32_t>((w >> 21) & kLeaseStampMask);
}

// ---- prefix fragment word ----------------------------------------------------

inline uint64_t pack_frag(const uint8_t* bytes, uint32_t len) {
  assert(len <= kMaxFragBytes);
  uint64_t w = len;
  for (uint32_t i = 0; i < len; ++i) {
    w |= static_cast<uint64_t>(bytes[i]) << (8 * (i + 1));
  }
  return w;
}

inline uint32_t frag_len(uint64_t w) {
  return static_cast<uint32_t>(w & 0xff);
}
inline uint8_t frag_byte(uint64_t w, uint32_t i) {
  return static_cast<uint8_t>((w >> (8 * (i + 1))) & 0xff);
}

// ---- slot word ---------------------------------------------------------------

constexpr uint64_t kSlotValidBit = 1ULL << 63;
constexpr uint64_t kSlotLeafBit = 1ULL << 62;

inline uint64_t pack_inner_slot(uint8_t pkey, NodeType child_type,
                                rdma::GlobalAddr addr) {
  return kSlotValidBit | (static_cast<uint64_t>(child_type) << 56) |
         (static_cast<uint64_t>(pkey) << 48) | addr.to48();
}

inline uint64_t pack_leaf_slot(uint8_t pkey, uint32_t leaf_units,
                               rdma::GlobalAddr addr) {
  assert(leaf_units >= 1 && leaf_units < 64);
  return kSlotValidBit | kSlotLeafBit |
         (static_cast<uint64_t>(leaf_units) << 56) |
         (static_cast<uint64_t>(pkey) << 48) | addr.to48();
}

inline bool slot_valid(uint64_t s) { return (s & kSlotValidBit) != 0; }
inline bool slot_is_leaf(uint64_t s) { return (s & kSlotLeafBit) != 0; }
inline uint8_t slot_pkey(uint64_t s) {
  return static_cast<uint8_t>((s >> 48) & 0xff);
}
inline uint8_t slot_meta(uint64_t s) {
  return static_cast<uint8_t>((s >> 56) & 0x3f);
}
inline NodeType slot_child_type(uint64_t s) {
  return static_cast<NodeType>(slot_meta(s) & 0x7);
}
inline uint32_t slot_leaf_units(uint64_t s) { return slot_meta(s); }
inline rdma::GlobalAddr slot_addr(uint64_t s) {
  return rdma::GlobalAddr::from48(s & ((1ULL << 48) - 1));
}

// ---- leaf header / checksum ---------------------------------------------------

constexpr uint32_t kLeafUnitBytes = 64;

// key_len:9 covers terminated keys up to kMaxKeyLen (255) + 1; val_len:14
// covers the largest leaf a slot can describe (units < 64 -> payload
// < 4096 B). The 31 bits this frees (vs the former 16|16 split) hold the
// lock lease.
constexpr uint32_t kLeafKeyLenBits = 9;
constexpr uint32_t kLeafValLenBits = 14;
// units | key_len | val_len (bits 2..32): everything but status + lease.
constexpr uint64_t kLeafFieldsMask = 0x1fffffffcULL;

inline uint64_t pack_leaf_header(NodeStatus status, uint32_t units,
                                 uint32_t key_len, uint32_t val_len) {
  assert(units < 256 && key_len < (1u << kLeafKeyLenBits) &&
         val_len < (1u << kLeafValLenBits));
  return static_cast<uint64_t>(status) |
         (static_cast<uint64_t>(units) << 2) |
         (static_cast<uint64_t>(key_len) << 10) |
         (static_cast<uint64_t>(val_len) << 19);
}

inline uint32_t leaf_units(uint64_t w) {
  return static_cast<uint32_t>((w >> 2) & 0xff);
}
inline uint32_t leaf_key_len(uint64_t w) {
  return static_cast<uint32_t>((w >> 10) & ((1u << kLeafKeyLenBits) - 1));
}
inline uint32_t leaf_val_len(uint64_t w) {
  return static_cast<uint32_t>((w >> 19) & ((1u << kLeafValLenBits) - 1));
}

// Leaf lease: owner/stamp live above the length fields while the leaf is
// Locked/Reclaiming; units/key_len/val_len are preserved.
inline uint64_t pack_leaf_lease(uint64_t header, NodeStatus status,
                                uint8_t owner, uint32_t stamp) {
  assert(status == NodeStatus::kLocked || status == NodeStatus::kReclaiming);
  return (header & kLeafFieldsMask) | static_cast<uint64_t>(status) |
         (static_cast<uint64_t>(owner) << 33) |
         (static_cast<uint64_t>(stamp & kLeaseStampMask) << 41);
}
inline uint8_t leaf_lease_owner(uint64_t w) {
  return static_cast<uint8_t>((w >> 33) & 0xff);
}
inline uint32_t leaf_lease_stamp(uint64_t w) {
  return static_cast<uint32_t>((w >> 41) & kLeaseStampMask);
}

// The CRC input header: status and lease bits zeroed, lengths kept.
inline uint64_t leaf_crc_neutral(uint64_t header) {
  return header & kLeafFieldsMask;
}

inline uint32_t pad8(uint32_t n) { return (n + 7) & ~7u; }

// Bytes a leaf image needs for a (terminated) key and value, before
// rounding up to 64 B units.
inline uint32_t leaf_payload_bytes(uint32_t key_len, uint32_t val_len) {
  return 8 + pad8(key_len) + pad8(val_len) + 8;  // header + key + val + trailer
}

// ---- leaf trailer ----------------------------------------------------------
// The last 8 bytes of the last unit: crc32c:32 | key_len:16 | val_len:16.
// Fixed position (independent of the lengths) so a reclaimer that finds a
// crashed in-place update can locate the checksum of the *new* image even
// though the header still describes the old one; the redundant lengths let
// it rebuild the header and roll the leaf forward.
inline uint32_t leaf_trailer_offset(uint32_t units) {
  return units * kLeafUnitBytes - 8;
}
inline uint64_t pack_leaf_trailer(uint32_t crc, uint32_t key_len,
                                  uint32_t val_len) {
  return static_cast<uint64_t>(crc) |
         (static_cast<uint64_t>(key_len & 0xffff) << 32) |
         (static_cast<uint64_t>(val_len & 0xffff) << 48);
}
inline uint32_t leaf_trailer_crc(uint64_t w) {
  return static_cast<uint32_t>(w & 0xffffffffu);
}
inline uint32_t leaf_trailer_key_len(uint64_t w) {
  return static_cast<uint32_t>((w >> 32) & 0xffff);
}
inline uint32_t leaf_trailer_val_len(uint64_t w) {
  return static_cast<uint32_t>((w >> 48) & 0xffff);
}

inline uint32_t leaf_units_for(uint32_t key_len, uint32_t val_len) {
  return (leaf_payload_bytes(key_len, val_len) + kLeafUnitBytes - 1) /
         kLeafUnitBytes;
}

}  // namespace sphinx::art
