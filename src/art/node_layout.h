// On-MN byte layout of ART nodes (paper Fig. 3), shared by the ART
// baseline, SMART, and Sphinx.
//
// Inner node:
//   word 0  header : status:2 | type:3 | depth:8 | prefix_hash42:42
//   word 1  full 64-bit prefix hash (placement hash; also used by the
//           INHT segment-split rehash and by clients to reject
//           fingerprint collisions)
//   word 2  prefix fragment: frag_len:8 | up to 6 trailing prefix bytes
//   word 3+ slots (8 B each; capacity 4 / 16 / 48 / 256 by node type)
//
// The fragment always holds the *last* min(6, depth) bytes of the node's
// full prefix ([depth - frag_len, depth)), a parent-independent invariant:
// splicing a new inner node above this one never requires rewriting the
// fragment. Gaps longer than the fragment are verified optimistically at
// the leaf (standard hybrid path compression).
//
// Slot word: valid:1 | is_leaf:1 | meta:6 | partial_key:8 | addr:48
//   meta = child node type for inner children, leaf size in 64 B units for
//   leaf children -- so a parent read tells the client exactly how many
//   bytes to fetch next, in one round trip.
//
// Leaf:
//   word 0  header : status:2 | units:8 | key_len:16 | val_len:16
//   terminated key bytes (padded to 8), value bytes (padded to 8),
//   trailing CRC32C word. The checksum is computed with the status field
//   zeroed, so a reader can validate an image regardless of lock state.
#pragma once

#include <cassert>
#include <cstdint>

#include "rdma/global_addr.h"

namespace sphinx::art {

enum class NodeStatus : uint8_t { kIdle = 0, kLocked = 1, kInvalid = 2 };

enum class NodeType : uint8_t { kN4 = 0, kN16 = 1, kN48 = 2, kN256 = 3 };

constexpr uint32_t node_capacity(NodeType t) {
  switch (t) {
    case NodeType::kN4:
      return 4;
    case NodeType::kN16:
      return 16;
    case NodeType::kN48:
      return 48;
    case NodeType::kN256:
      return 256;
  }
  return 0;
}

constexpr NodeType next_node_type(NodeType t) {
  switch (t) {
    case NodeType::kN4:
      return NodeType::kN16;
    case NodeType::kN16:
      return NodeType::kN48;
    case NodeType::kN48:
    case NodeType::kN256:
      return NodeType::kN256;
  }
  return NodeType::kN256;
}

constexpr uint32_t kInnerHeaderBytes = 24;  // words 0..2

constexpr uint32_t inner_node_bytes(NodeType t) {
  return kInnerHeaderBytes + node_capacity(t) * 8;
}

constexpr uint32_t kMaxInnerNodeBytes = inner_node_bytes(NodeType::kN256);

// Maximum key length (terminated) the 8-bit depth field supports.
constexpr uint32_t kMaxKeyLen = 255;

constexpr uint32_t kMaxFragBytes = 6;

// ---- inner header word -----------------------------------------------------

inline uint64_t pack_inner_header(NodeStatus status, NodeType type,
                                  uint8_t depth, uint64_t prefix_hash) {
  return static_cast<uint64_t>(status) |
         (static_cast<uint64_t>(type) << 2) |
         (static_cast<uint64_t>(depth) << 5) |
         ((prefix_hash & ((1ULL << 42) - 1)) << 13);
}

inline NodeStatus header_status(uint64_t w) {
  return static_cast<NodeStatus>(w & 0x3);
}
inline NodeType header_type(uint64_t w) {
  return static_cast<NodeType>((w >> 2) & 0x7);
}
inline uint8_t header_depth(uint64_t w) {
  return static_cast<uint8_t>((w >> 5) & 0xff);
}
inline uint64_t header_prefix_hash42(uint64_t w) {
  return (w >> 13) & ((1ULL << 42) - 1);
}
inline uint64_t with_status(uint64_t w, NodeStatus s) {
  return (w & ~0x3ULL) | static_cast<uint64_t>(s);
}

// ---- prefix fragment word ----------------------------------------------------

inline uint64_t pack_frag(const uint8_t* bytes, uint32_t len) {
  assert(len <= kMaxFragBytes);
  uint64_t w = len;
  for (uint32_t i = 0; i < len; ++i) {
    w |= static_cast<uint64_t>(bytes[i]) << (8 * (i + 1));
  }
  return w;
}

inline uint32_t frag_len(uint64_t w) {
  return static_cast<uint32_t>(w & 0xff);
}
inline uint8_t frag_byte(uint64_t w, uint32_t i) {
  return static_cast<uint8_t>((w >> (8 * (i + 1))) & 0xff);
}

// ---- slot word ---------------------------------------------------------------

constexpr uint64_t kSlotValidBit = 1ULL << 63;
constexpr uint64_t kSlotLeafBit = 1ULL << 62;

inline uint64_t pack_inner_slot(uint8_t pkey, NodeType child_type,
                                rdma::GlobalAddr addr) {
  return kSlotValidBit | (static_cast<uint64_t>(child_type) << 56) |
         (static_cast<uint64_t>(pkey) << 48) | addr.to48();
}

inline uint64_t pack_leaf_slot(uint8_t pkey, uint32_t leaf_units,
                               rdma::GlobalAddr addr) {
  assert(leaf_units >= 1 && leaf_units < 64);
  return kSlotValidBit | kSlotLeafBit |
         (static_cast<uint64_t>(leaf_units) << 56) |
         (static_cast<uint64_t>(pkey) << 48) | addr.to48();
}

inline bool slot_valid(uint64_t s) { return (s & kSlotValidBit) != 0; }
inline bool slot_is_leaf(uint64_t s) { return (s & kSlotLeafBit) != 0; }
inline uint8_t slot_pkey(uint64_t s) {
  return static_cast<uint8_t>((s >> 48) & 0xff);
}
inline uint8_t slot_meta(uint64_t s) {
  return static_cast<uint8_t>((s >> 56) & 0x3f);
}
inline NodeType slot_child_type(uint64_t s) {
  return static_cast<NodeType>(slot_meta(s) & 0x7);
}
inline uint32_t slot_leaf_units(uint64_t s) { return slot_meta(s); }
inline rdma::GlobalAddr slot_addr(uint64_t s) {
  return rdma::GlobalAddr::from48(s & ((1ULL << 48) - 1));
}

// ---- leaf header / checksum ---------------------------------------------------

constexpr uint32_t kLeafUnitBytes = 64;

inline uint64_t pack_leaf_header(NodeStatus status, uint32_t units,
                                 uint32_t key_len, uint32_t val_len) {
  assert(units < 256 && key_len < (1u << 16) && val_len < (1u << 16));
  return static_cast<uint64_t>(status) |
         (static_cast<uint64_t>(units) << 2) |
         (static_cast<uint64_t>(key_len) << 10) |
         (static_cast<uint64_t>(val_len) << 26);
}

inline uint32_t leaf_units(uint64_t w) {
  return static_cast<uint32_t>((w >> 2) & 0xff);
}
inline uint32_t leaf_key_len(uint64_t w) {
  return static_cast<uint32_t>((w >> 10) & 0xffff);
}
inline uint32_t leaf_val_len(uint64_t w) {
  return static_cast<uint32_t>((w >> 26) & 0xffff);
}

inline uint32_t pad8(uint32_t n) { return (n + 7) & ~7u; }

// Bytes a leaf image needs for a (terminated) key and value, before
// rounding up to 64 B units.
inline uint32_t leaf_payload_bytes(uint32_t key_len, uint32_t val_len) {
  return 8 + pad8(key_len) + pad8(val_len) + 8;  // header + key + val + crc
}

inline uint32_t leaf_units_for(uint32_t key_len, uint32_t val_len) {
  return (leaf_payload_bytes(key_len, val_len) + kLeafUnitBytes - 1) /
         kLeafUnitBytes;
}

}  // namespace sphinx::art
