#include "art/remote_tree.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

namespace sphinx::art {

namespace {

// Rewrites the branch byte of a slot word, keeping valid/leaf/meta/addr.
uint64_t slot_with_pkey(uint64_t slot_word, uint8_t pkey) {
  return (slot_word & ~(0xffULL << 48)) | (static_cast<uint64_t>(pkey) << 48);
}

bool header_busy(uint64_t header) {
  const NodeStatus s = header_status(header);
  return s == NodeStatus::kLocked || s == NodeStatus::kReclaiming;
}

}  // namespace

TreeRef create_tree(mem::Cluster& cluster) {
  rdma::Endpoint loader = cluster.make_loader_endpoint();
  mem::RemoteAllocator allocator(cluster, loader);
  InnerImage root = InnerImage::create(NodeType::kN256, Slice());
  const uint32_t mn = cluster.ring().mn_for(prefix_hash(Slice()));
  rdma::GlobalAddr addr = allocator.alloc(mn, root.size_bytes(),
                                          mem::AllocTag::kInnerNode);
  loader.write(addr, root.raw(), root.size_bytes());

  // One root copy per MN (2 KiB each) so replica-routed readers can enter
  // the tree through any NIC; the primary's MN slot holds the primary
  // itself. All copies start byte-identical (the empty root), so they are
  // consistent before the first propagation.
  TreeRef ref{addr, {}};
  ref.root_replicas.reserve(cluster.config().num_mns);
  for (uint32_t m = 0; m < cluster.config().num_mns; ++m) {
    if (m == mn) {
      ref.root_replicas.push_back(addr);
      continue;
    }
    rdma::GlobalAddr rep = allocator.alloc(m, root.size_bytes(),
                                           mem::AllocTag::kInnerNode);
    loader.write(rep, root.raw(), root.size_bytes());
    ref.root_replicas.push_back(rep);
  }
  return ref;
}

RemoteTree::RemoteTree(mem::Cluster& cluster, rdma::Endpoint& endpoint,
                       mem::RemoteAllocator& allocator, const TreeRef& ref,
                       const TreeConfig& config)
    : cluster_(cluster),
      endpoint_(endpoint),
      allocator_(allocator),
      ref_(ref),
      config_(config) {
  // One knob for the per-op budget: the RetryPolicy enforces it.
  config_.retry.max_attempts = config_.max_op_retries;
}

bool RemoteTree::fetch_inner(rdma::GlobalAddr addr, NodeType type,
                             InnerImage* out) {
  endpoint_.read(addr, out->raw(), inner_node_bytes(type));
  return true;
}

bool RemoteTree::read_leaf(rdma::GlobalAddr addr, uint32_t units,
                           LeafImage* out) {
  out->resize(units);
  for (uint32_t attempt = 0; attempt < config_.max_leaf_reread; ++attempt) {
    endpoint_.read(addr, out->buf().data(), units * kLeafUnitBytes);
    if (out->units() == units &&
        out->revalidate() != LeafImage::Revalidate::kBad) {
      return true;
    }
    stats_.torn_leaf_rereads++;
  }
  return false;
}

RemoteTree::Descent& RemoteTree::descend(const TerminatedKey& key,
                                         bool allow_custom_start,
                                         bool allow_replica_root) {
  // Reuse the member scratch: path entries carry multi-KiB node images, so
  // building them in place (and keeping the vector's capacity across
  // operations) keeps the per-op hot path allocation- and memcpy-free.
  Descent& d = descent_;
  d.status = DescendStatus::kNeedRetry;
  d.from_custom_start = false;
  d.used_replica_root = false;
  d.path.clear();
  d.leaf_addr = rdma::GlobalAddr();
  d.cpl = 0;

  begin_descend();
  d.path.emplace_back();
  if (allow_custom_start && find_start(key, &d.path.back())) {
    d.from_custom_start = true;
  } else {
    PathEntry& start = d.path.back();
    // The path records the PRIMARY root address even when the image below
    // is read from a replica: every mutation must CAS the one
    // authoritative root, and a replica that lagged then simply fails the
    // expected-value CAS and retries through the primary.
    start.addr = ref_.root;
    start.parent_depth = 0;
    start.taken_slot = -1;
    start.taken_word = 0;
    rdma::GlobalAddr fetch_addr = ref_.root;
    if (allow_replica_root && config_.replicate_root &&
        !ref_.root_replicas.empty()) {
      fetch_addr =
          ref_.root_replicas[root_read_seq_++ % ref_.root_replicas.size()];
    }
    d.used_replica_root = fetch_addr != ref_.root;
    if (d.used_replica_root) {
      stats_.root_replica_reads++;
    } else {
      stats_.root_primary_reads++;
    }
    rdma::PhaseScope root_scope(endpoint_, rdma::Phase::kInnerRead);
    if (!fetch_inner(fetch_addr, NodeType::kN256, &start.image)) {
      d.path.pop_back();
      d.status = DescendStatus::kNeedRetry;
      return d;
    }
  }

  // Everything below is the inner-node walk; the leaf read re-tags itself.
  rdma::PhaseScope descend_scope(endpoint_, rdma::Phase::kInnerRead);
  for (uint32_t level = 0; level < kMaxKeyLen; ++level) {
    PathEntry& cur = d.path.back();
    endpoint_.advance_local(
        config_.local_ns_per_node +
        static_cast<uint64_t>(cur.image.size_bytes() /
                              config_.cpu_bytes_per_ns));

    if (cur.image.status() == NodeStatus::kInvalid) {
      stats_.invalid_node_retries++;
      invalidate_inner(cur.addr, cur.image);
      d.path.pop_back();
      d.status = DescendStatus::kNeedRetry;
      return d;
    }
    const uint32_t depth = cur.image.depth();
    if (depth >= key.size() || !cur.image.frag_consistent(key,
                                                          cur.parent_depth)) {
      cur.taken_slot = -1;
      d.status = DescendStatus::kFragMismatch;
      return d;
    }
    on_visit_inner(key, cur);

    const uint8_t branch = key.byte(depth);
    const int idx = cur.image.find_pkey(branch);
    if (idx < 0) {
      cur.taken_slot = -1;
      d.status = DescendStatus::kNoSlot;
      return d;
    }
    const uint64_t slot_word = cur.image.slot(static_cast<uint32_t>(idx));
    cur.taken_slot = idx;
    cur.taken_word = slot_word;

    if (slot_is_leaf(slot_word)) {
      d.leaf_addr = slot_addr(slot_word);
      rdma::PhaseScope leaf_scope(endpoint_, rdma::Phase::kLeafRead);
      if (!read_leaf(d.leaf_addr, slot_leaf_units(slot_word), &d.leaf)) {
        invalidate_inner(d.path.back().addr, d.path.back().image);
        d.status = DescendStatus::kNeedRetry;
        return d;
      }
      if (d.leaf.status() == NodeStatus::kInvalid) {
        d.status = DescendStatus::kFoundInvalidLeaf;
        return d;
      }
      if (d.leaf.key() == key.full()) {
        d.status = DescendStatus::kFoundLeaf;
        return d;
      }
      d.cpl = static_cast<uint32_t>(
          d.leaf.key().common_prefix_len(key.full()));
      d.status = DescendStatus::kLeafMismatch;
      return d;
    }

    d.path.emplace_back();
    PathEntry& child = d.path.back();
    child.addr = slot_addr(slot_word);
    child.parent_depth = depth;
    child.taken_slot = -1;
    child.taken_word = 0;
    if (!fetch_inner(child.addr, slot_child_type(slot_word), &child.image)) {
      d.path.pop_back();
      d.status = DescendStatus::kNeedRetry;
      return d;
    }
    if (child.image.type() != slot_child_type(slot_word) ||
        child.image.depth() <= depth) {
      // Stale slot (node switched or memory inconsistent): retry.
      invalidate_inner(child.addr, child.image);
      const PathEntry& parent = d.path[d.path.size() - 2];
      invalidate_inner(parent.addr, parent.image);
      d.path.pop_back();
      d.status = DescendStatus::kNeedRetry;
      return d;
    }
  }
  d.status = DescendStatus::kNeedRetry;
  return d;
}

// ---- search -----------------------------------------------------------------

bool RemoteTree::search(Slice key, std::string* value_out) {
  mem::EpochPin epoch(allocator_);
  const TerminatedKey tkey(key);
  bool allow_custom = true;
  rdma::RetryPolicy policy(endpoint_, config_.retry, &stats_.backoff);
  for (uint32_t r = 0;; ++r) {
    if (!policy.backoff(r)) break;
    Descent& d = descend(tkey, allow_custom && r < 8, r == 0);
    switch (d.status) {
      case DescendStatus::kFoundLeaf:
        if (value_out != nullptr) {
          value_out->assign(d.leaf.value().data(), d.leaf.value().size());
        }
        // The descent just proved key -> (leaf_addr, units) fresh against
        // remote memory: feed the leaf address cache.
        note_leaf_at(d.leaf.key(), d.leaf_addr, d.leaf.units());
        return true;
      case DescendStatus::kFoundInvalidLeaf:
      case DescendStatus::kNoSlot:
      case DescendStatus::kLeafMismatch:
      case DescendStatus::kFragMismatch:
        if (d.from_custom_start) {
          // A false positive or stale shortcut could have landed us in the
          // wrong subtree; re-verify from the root (paper Sec. III-B).
          stats_.start_fallbacks++;
          allow_custom = false;
          continue;
        }
        if (descent_used_cache() || d.used_replica_root) {
          // SMART reverse check: an absent verdict derived from cached
          // nodes must be confirmed against remote memory. The same
          // discipline covers a root-replica entry (the replica may lag
          // the primary by one propagation): the retry descends through
          // the primary, since only first attempts route to replicas.
          if (descent_used_cache()) {
            for (const PathEntry& e : d.path) invalidate_inner(e.addr);
            set_cache_bypass(true);
          }
          if (d.used_replica_root) stats_.root_replica_rechecks++;
          stats_.op_retries++;
          continue;
        }
        return false;
      case DescendStatus::kNeedRetry:
      case DescendStatus::kTimedOut:
        stats_.op_retries++;
        if (r >= 4) allow_custom = false;
        continue;
    }
  }
  stats_.recovery.retry_timeouts++;
  stats_.ops_failed++;
  return false;
}

// ---- insert -----------------------------------------------------------------

RemoteTree::NewLeaf RemoteTree::make_leaf(const TerminatedKey& key,
                                          Slice value,
                                          rdma::DoorbellBatch* batch) {
  NewLeaf leaf;
  leaf.units = leaf_units_for(key.size(), static_cast<uint32_t>(value.size()));
  const uint32_t mn = mn_for_prefix(prefix_hash(key.full()));
  const mem::AllocResult r = allocator_.try_alloc(
      mn, leaf.units * kLeafUnitBytes, mem::AllocTag::kLeaf);
  if (!r.ok) return leaf;  // ok=false: heap exhausted, nothing written
  leaf.addr = r.addr;
  leaf.ok = true;
  leaf.image = LeafImage::build(key.full(), value, leaf.units);
  batch->add_write(leaf.addr, leaf.image.buf().data(),
                   leaf.units * kLeafUnitBytes,
                   rdma::FaultSite::kPayloadWrite);
  return leaf;
}

bool RemoteTree::insert(Slice key, Slice value) {
  mem::EpochPin epoch(allocator_);
  const TerminatedKey tkey(key);
  assert(leaf_units_for(tkey.size(), static_cast<uint32_t>(value.size())) <
         64);
  alloc_failed_ = false;
  bool allow_custom = true;
  rdma::RetryPolicy policy(endpoint_, config_.retry, &stats_.backoff);
  for (uint32_t r = 0;; ++r) {
    if (!policy.backoff(r)) break;
    Descent& d = descend(tkey, allow_custom && r < 8, r == 0);
    switch (d.status) {
      case DescendStatus::kFoundLeaf:
        return false;  // key exists; no modification
      case DescendStatus::kFoundInvalidLeaf:
        if (insert_replace_invalid_leaf(tkey, value, d)) return true;
        stats_.op_retries++;
        break;
      case DescendStatus::kNoSlot: {
        PathEntry& node = d.path.back();
        if (node.image.find_free(tkey.byte(node.image.depth())) < 0) {
          if (!type_switch(tkey, d) && d.from_custom_start) {
            // A switch needs the parent, which a shortcut descent does not
            // carry; redo the traversal from the root.
            stats_.start_fallbacks++;
            allow_custom = false;
          }
          stats_.op_retries++;
          break;
        }
        if (insert_into_free_slot(tkey, value, d)) return true;
        stats_.op_retries++;
        break;
      }
      case DescendStatus::kLeafMismatch: {
        existing_key_scratch_.assign(d.leaf.key().data(), d.leaf.key().size());
        if (insert_split(tkey, value, d, Slice(existing_key_scratch_))) {
          return true;
        }
        if (d.from_custom_start &&
            d.path.front().image.depth() > d.cpl) {
          stats_.start_fallbacks++;
          allow_custom = false;
        }
        stats_.op_retries++;
        break;
      }
      case DescendStatus::kFragMismatch: {
        const PathEntry& mismatch_node = d.path.back();
        std::string recovered;
        if (!recover_leaf_key(mismatch_node.addr, mismatch_node.image.type(),
                              &recovered)) {
          stats_.op_retries++;
          break;
        }
        d.cpl = static_cast<uint32_t>(
            Slice(recovered).common_prefix_len(tkey.full()));
        if (Slice(recovered) == tkey.full()) {
          // The key actually exists (the mismatch was a stale fragment).
          stats_.op_retries++;
          break;
        }
        if (insert_split(tkey, value, d, Slice(recovered))) return true;
        if (d.from_custom_start &&
            d.path.front().image.depth() > d.cpl) {
          stats_.start_fallbacks++;
          allow_custom = false;
        }
        stats_.op_retries++;
        break;
      }
      case DescendStatus::kNeedRetry:
      case DescendStatus::kTimedOut:
        stats_.op_retries++;
        if (r >= 4) allow_custom = false;
        break;
    }
    if (alloc_failed_) return fail_degraded();
  }
  stats_.recovery.retry_timeouts++;
  stats_.ops_failed++;
  return false;
}

bool RemoteTree::lock_node(const TerminatedKey& key, rdma::GlobalAddr addr,
                           uint64_t seen_header, InnerImage* fresh,
                           uint64_t* locked_out) {
  if (header_status(seen_header) != NodeStatus::kIdle) {
    note_busy_inner(key, addr, seen_header);
    return false;
  }
  const uint64_t locked = lease_inner_locked(seen_header);
  uint64_t observed = 0;
  bool won;
  {
    rdma::PhaseScope lock_scope(endpoint_, rdma::Phase::kLock);
    won = endpoint_.cas(addr, seen_header, locked, &observed,
                        rdma::FaultSite::kLockAcquire);
  }
  if (!won) {
    stats_.lock_fail_retries++;
    if (header_busy(observed)) note_busy_inner(key, addr, observed);
    invalidate_inner(addr);
    return false;
  }
  *locked_out = locked;
  if (fresh != nullptr) {
    rdma::PhaseScope read_scope(endpoint_, rdma::Phase::kInnerRead);
    RemoteTree::fetch_inner(addr, header_type(seen_header), fresh);
  }
  return true;
}

void RemoteTree::unlock_node(rdma::GlobalAddr addr, uint64_t locked_header,
                             uint64_t idle_header) {
  // May lose only to a reclaimer that decided our lease expired; its
  // restore supersedes ours, so a failed release needs no handling.
  rdma::PhaseScope lock_scope(endpoint_, rdma::Phase::kLock);
  endpoint_.cas(addr, locked_header, idle_header, nullptr,
                rdma::FaultSite::kLockRelease);
}

bool RemoteTree::install_slot_locked(rdma::GlobalAddr node_addr,
                                     uint32_t slot_index, uint64_t expected,
                                     uint64_t desired, uint64_t locked,
                                     uint64_t idle, rdma::FaultSite site) {
  const rdma::GlobalAddr slot_addr = node_addr.plus(
      kInnerHeaderBytes + static_cast<uint64_t>(slot_index) * 8);
  const bool root_with_replicas = config_.replicate_root &&
                                  node_addr == ref_.root &&
                                  ref_.root_replicas.size() > 1;
  rdma::PhaseScope install_scope(endpoint_, rdma::Phase::kInnerWrite);
  if (!root_with_replicas) {
    rdma::DoorbellBatch batch(endpoint_);
    const size_t cas_idx = batch.add_cas(slot_addr, expected, desired, site);
    batch.add_cas(node_addr, locked, idle, rdma::FaultSite::kLockRelease);
    batch.execute();
    return batch.cas_ok(cas_idx);
  }
  // Root: resolve the slot CAS first, then push the winning word to the
  // replicas with the lock release riding the same batch. The propagation
  // happens strictly under the root lock, so replica slot writes from
  // different mutators can never interleave out of order. A client that
  // crashes between the two batches leaves the root Locked with lagging
  // replicas; lease reclamation frees the lock, and readers entering via
  // the stale replica fall back to a primary descent (correct, one extra
  // round trip) until the slot is next mutated.
  const bool won = endpoint_.cas(slot_addr, expected, desired, nullptr, site);
  rdma::DoorbellBatch post(endpoint_);
  const uint64_t word = desired;  // write source; alive across execute()
  if (won) {
    for (const rdma::GlobalAddr& rep : ref_.root_replicas) {
      if (rep == ref_.root) continue;
      post.add_write(rep.plus(kInnerHeaderBytes +
                              static_cast<uint64_t>(slot_index) * 8),
                     &word, sizeof(word), rdma::FaultSite::kPayloadWrite);
    }
    stats_.root_replica_propagations++;
  }
  post.add_cas(node_addr, locked, idle, rdma::FaultSite::kLockRelease);
  post.execute();
  return won;
}

bool RemoteTree::insert_into_free_slot(const TerminatedKey& key, Slice value,
                                       Descent& d) {
  PathEntry& node = d.path.back();
  const uint8_t branch = key.byte(node.image.depth());
  const uint64_t seen = node.image.header();
  if (header_status(seen) != NodeStatus::kIdle) {
    note_busy_inner(key, node.addr, seen);
    return false;
  }

  // One round trip: leaf payload write piggybacked with the lock CAS.
  rdma::DoorbellBatch pre(endpoint_);
  NewLeaf leaf = make_leaf(key, value, &pre);
  if (!leaf.ok) {
    alloc_failed_ = true;  // nothing written, no lock taken
    return false;
  }
  const uint64_t locked = lease_inner_locked(seen);
  const size_t lock_idx =
      pre.add_cas(node.addr, seen, locked, rdma::FaultSite::kLockAcquire);
  {
    rdma::PhaseScope write_scope(endpoint_, rdma::Phase::kLeafWrite);
    pre.execute();
  }
  if (!pre.cas_ok(lock_idx)) {
    allocator_.free(leaf.addr, leaf.units * kLeafUnitBytes,
                    mem::AllocTag::kLeaf);
    stats_.lock_fail_retries++;
    const uint64_t observed = pre.old_value(lock_idx);
    if (header_busy(observed)) note_busy_inner(key, node.addr, observed);
    invalidate_inner(node.addr);
    return false;
  }

  // Re-read under the lock: the image from the descent may be stale.
  InnerImage fresh;
  {
    rdma::PhaseScope read_scope(endpoint_, rdma::Phase::kInnerRead);
    RemoteTree::fetch_inner(node.addr, header_type(seen), &fresh);
  }
  bool ok = false;
  const int existing = fresh.find_pkey(branch);
  const int free_idx = fresh.find_free(branch);
  if (existing < 0 && free_idx >= 0) {
    const uint64_t slot_word = pack_leaf_slot(branch, leaf.units, leaf.addr);
    // Slot CAS with piggybacked lock release (replica-aware at the root).
    ok = install_slot_locked(node.addr, static_cast<uint32_t>(free_idx), 0,
                             slot_word, locked, seen,
                             rdma::FaultSite::kSlotInstall);
    if (ok) {
      fresh.set_slot(static_cast<uint32_t>(free_idx), slot_word);
      fresh.set_header(seen);
      note_inner_write(node.addr, fresh);
      note_leaf_at(key.full(), leaf.addr, leaf.units);
    }
  } else {
    unlock_node(node.addr, locked, seen);
    invalidate_inner(node.addr);  // our view of this node was stale
  }
  if (!ok) {
    allocator_.free(leaf.addr, leaf.units * kLeafUnitBytes,
                    mem::AllocTag::kLeaf);
  }
  return ok;
}

bool RemoteTree::insert_split(const TerminatedKey& key, Slice value,
                              Descent& d, Slice existing_key) {
  const uint32_t cpl = d.cpl;
  if (cpl >= key.size() || cpl >= existing_key.size()) return false;
  const uint8_t b_new = key.byte(cpl);
  const uint8_t b_old = existing_key[cpl];
  if (b_new == b_old) return false;  // inconsistent cpl; retry

  // A = deepest path node that stays above the split point and whose slot
  // leads into the splitting subtree.
  int ai = -1;
  for (int i = static_cast<int>(d.path.size()) - 1; i >= 0; --i) {
    if (d.path[static_cast<size_t>(i)].taken_slot >= 0 &&
        d.path[static_cast<size_t>(i)].image.depth() <= cpl) {
      ai = i;
      break;
    }
  }
  if (ai < 0) return false;  // split point above our descent start
  PathEntry& parent = d.path[static_cast<size_t>(ai)];
  const uint64_t child_word = parent.taken_word;
  const uint64_t seen = parent.image.header();
  if (header_status(seen) != NodeStatus::kIdle) {
    note_busy_inner(key, parent.addr, seen);
    return false;
  }

  // Build the new inner node M with the two children.
  const NodeType mtype = new_inner_type();
  InnerImage m = InnerImage::create(mtype, key.prefix(cpl));
  const uint32_t m_bytes = inner_alloc_bytes(mtype);
  const uint32_t m_mn = mn_for_prefix(m.prefix_hash_full());
  const mem::AllocResult m_alloc =
      allocator_.try_alloc(m_mn, m_bytes, mem::AllocTag::kInnerNode);
  if (!m_alloc.ok) {
    alloc_failed_ = true;
    return false;
  }
  const rdma::GlobalAddr m_addr = m_alloc.addr;

  // One round trip: leaf write + M write + parent lock CAS.
  rdma::DoorbellBatch pre(endpoint_);
  NewLeaf leaf = make_leaf(key, value, &pre);
  if (!leaf.ok) {
    allocator_.free(m_addr, m_bytes, mem::AllocTag::kInnerNode);
    alloc_failed_ = true;
    return false;
  }
  const uint64_t leaf_slot = pack_leaf_slot(b_new, leaf.units, leaf.addr);
  const uint64_t moved_slot = slot_with_pkey(child_word, b_old);
  if (mtype == NodeType::kN256) {
    m.set_slot(b_new, leaf_slot);
    m.set_slot(b_old, moved_slot);
  } else {
    m.set_slot(0, leaf_slot);
    m.set_slot(1, moved_slot);
  }
  pre.add_write(m_addr, m.raw(), m_bytes, rdma::FaultSite::kPayloadWrite);
  const uint64_t locked = lease_inner_locked(seen);
  const size_t lock_idx =
      pre.add_cas(parent.addr, seen, locked, rdma::FaultSite::kLockAcquire);
  {
    rdma::PhaseScope write_scope(endpoint_, rdma::Phase::kLeafWrite);
    pre.execute();
  }

  auto release_allocs = [&] {
    allocator_.free(leaf.addr, leaf.units * kLeafUnitBytes,
                    mem::AllocTag::kLeaf);
    allocator_.free(m_addr, m_bytes, mem::AllocTag::kInnerNode);
  };

  if (!pre.cas_ok(lock_idx)) {
    release_allocs();
    stats_.lock_fail_retries++;
    const uint64_t observed = pre.old_value(lock_idx);
    if (header_busy(observed)) note_busy_inner(key, parent.addr, observed);
    invalidate_inner(parent.addr);
    return false;
  }

  InnerImage fresh;
  {
    rdma::PhaseScope read_scope(endpoint_, rdma::Phase::kInnerRead);
    RemoteTree::fetch_inner(parent.addr, header_type(seen), &fresh);
  }
  const uint8_t parent_branch = key.byte(parent.image.depth());
  const int idx = fresh.find_pkey(parent_branch);
  if (idx < 0 || fresh.slot(static_cast<uint32_t>(idx)) != child_word) {
    unlock_node(parent.addr, locked, seen);
    invalidate_inner(parent.addr);  // stale view of the parent
    release_allocs();
    return false;
  }

  const uint64_t m_slot = pack_inner_slot(parent_branch, mtype, m_addr);
  if (!install_slot_locked(parent.addr, static_cast<uint32_t>(idx),
                           child_word, m_slot, locked, seen,
                           rdma::FaultSite::kSlotInstall)) {
    release_allocs();
    return false;
  }

  fresh.set_slot(static_cast<uint32_t>(idx), m_slot);
  fresh.set_header(seen);
  note_inner_write(parent.addr, fresh);
  note_inner_write(m_addr, m);
  on_inner_created(key.prefix(cpl), m, m_addr);
  // Only the new key's leaf is reported: the existing leaf moved *slots*
  // (under M) but kept its address, so its cached binding stays valid.
  note_leaf_at(key.full(), leaf.addr, leaf.units);
  stats_.splits++;
  return true;
}

bool RemoteTree::insert_replace_invalid_leaf(const TerminatedKey& key,
                                             Slice value, Descent& d) {
  PathEntry& node = d.path.back();
  const uint8_t branch = key.byte(node.image.depth());
  const uint64_t seen = node.image.header();
  if (header_status(seen) != NodeStatus::kIdle) {
    note_busy_inner(key, node.addr, seen);
    return false;
  }

  rdma::DoorbellBatch pre(endpoint_);
  NewLeaf leaf = make_leaf(key, value, &pre);
  if (!leaf.ok) {
    alloc_failed_ = true;
    return false;
  }
  const uint64_t locked = lease_inner_locked(seen);
  const size_t lock_idx =
      pre.add_cas(node.addr, seen, locked, rdma::FaultSite::kLockAcquire);
  {
    rdma::PhaseScope write_scope(endpoint_, rdma::Phase::kLeafWrite);
    pre.execute();
  }
  if (!pre.cas_ok(lock_idx)) {
    allocator_.free(leaf.addr, leaf.units * kLeafUnitBytes,
                    mem::AllocTag::kLeaf);
    stats_.lock_fail_retries++;
    const uint64_t observed = pre.old_value(lock_idx);
    if (header_busy(observed)) note_busy_inner(key, node.addr, observed);
    return false;
  }

  InnerImage fresh;
  {
    rdma::PhaseScope read_scope(endpoint_, rdma::Phase::kInnerRead);
    RemoteTree::fetch_inner(node.addr, header_type(seen), &fresh);
  }
  const int idx = fresh.find_pkey(branch);
  bool ok = false;
  if (idx >= 0 &&
      fresh.slot(static_cast<uint32_t>(idx)) == node.taken_word) {
    const uint64_t slot_word = pack_leaf_slot(branch, leaf.units, leaf.addr);
    ok = install_slot_locked(node.addr, static_cast<uint32_t>(idx),
                             node.taken_word, slot_word, locked, seen,
                             rdma::FaultSite::kSlotInstall);
    if (ok) {
      fresh.set_slot(static_cast<uint32_t>(idx), slot_word);
      fresh.set_header(seen);
      note_inner_write(node.addr, fresh);
      note_leaf_at(key.full(), leaf.addr, leaf.units);
      // This CAS removed the last live link to the dead leaf, which makes
      // this client its retirer: the remove that invalidated it only
      // retires when its own slot-clear lands (otherwise the stale slot
      // would dangle into a recycled block), so an Invalid leaf still
      // linked here is unowned until this replacement unlinks it.
      allocator_.retire(
          slot_addr(node.taken_word),
          static_cast<uint64_t>(slot_leaf_units(node.taken_word)) *
              kLeafUnitBytes,
          mem::AllocTag::kLeaf);
    }
  } else {
    unlock_node(node.addr, locked, seen);
  }
  if (!ok) {
    allocator_.free(leaf.addr, leaf.units * kLeafUnitBytes,
                    mem::AllocTag::kLeaf);
  }
  return ok;
}

bool RemoteTree::type_switch(const TerminatedKey& key, Descent& d) {
  if (d.path.size() < 2) return false;  // the root (N256) never fills up
  PathEntry& node = d.path.back();
  PathEntry& parent = d.path[d.path.size() - 2];
  const uint64_t seen_n = node.image.header();
  InnerImage fresh_n;
  uint64_t locked_n = 0;
  if (!lock_node(key, node.addr, seen_n, &fresh_n, &locked_n)) return false;

  if (fresh_n.find_free(key.byte(fresh_n.depth())) >= 0) {
    // Room appeared; plain insert will do.
    unlock_node(node.addr, locked_n, seen_n);
    return false;
  }
  const NodeType new_type = next_node_type(fresh_n.type());
  if (new_type == fresh_n.type()) {
    unlock_node(node.addr, locked_n, seen_n);
    return false;
  }

  InnerImage grown = fresh_n.grown_copy(new_type);
  const uint32_t grown_bytes = inner_alloc_bytes(new_type);
  const mem::AllocResult grown_alloc = allocator_.try_alloc(
      node.addr.mn(), grown_bytes, mem::AllocTag::kInnerNode);
  if (!grown_alloc.ok) {
    unlock_node(node.addr, locked_n, seen_n);
    alloc_failed_ = true;
    return false;
  }
  const rdma::GlobalAddr grown_addr = grown_alloc.addr;

  // One round trip: write the replacement + lock the parent.
  const uint64_t seen_p = parent.image.header();
  if (header_status(seen_p) != NodeStatus::kIdle) {
    unlock_node(node.addr, locked_n, seen_n);
    allocator_.free(grown_addr, grown_bytes, mem::AllocTag::kInnerNode);
    note_busy_inner(key, parent.addr, seen_p);
    return false;
  }
  const uint64_t locked_p = lease_inner_locked(seen_p);
  rdma::DoorbellBatch pre(endpoint_);
  pre.add_write(grown_addr, grown.raw(), grown_bytes,
                rdma::FaultSite::kPayloadWrite);
  const size_t lock_idx = pre.add_cas(parent.addr, seen_p, locked_p,
                                      rdma::FaultSite::kLockAcquire);
  {
    rdma::PhaseScope write_scope(endpoint_, rdma::Phase::kInnerWrite);
    pre.execute();
  }
  if (!pre.cas_ok(lock_idx)) {
    unlock_node(node.addr, locked_n, seen_n);
    allocator_.free(grown_addr, grown_bytes, mem::AllocTag::kInnerNode);
    stats_.lock_fail_retries++;
    const uint64_t observed = pre.old_value(lock_idx);
    if (header_busy(observed)) note_busy_inner(key, parent.addr, observed);
    invalidate_inner(parent.addr);
    return false;
  }

  InnerImage fresh_p;
  {
    rdma::PhaseScope read_scope(endpoint_, rdma::Phase::kInnerRead);
    RemoteTree::fetch_inner(parent.addr, header_type(seen_p), &fresh_p);
  }
  const uint8_t parent_branch = key.byte(parent.image.depth());
  const int idx = fresh_p.find_pkey(parent_branch);
  if (idx < 0 ||
      fresh_p.slot(static_cast<uint32_t>(idx)) != parent.taken_word) {
    unlock_node(parent.addr, locked_p, seen_p);
    unlock_node(node.addr, locked_n, seen_n);
    allocator_.free(grown_addr, grown_bytes, mem::AllocTag::kInnerNode);
    return false;
  }

  const uint64_t new_slot = pack_inner_slot(parent_branch, new_type,
                                            grown_addr);
  if (!install_slot_locked(parent.addr, static_cast<uint32_t>(idx),
                           parent.taken_word, new_slot, locked_p, seen_p,
                           rdma::FaultSite::kSlotInstall)) {
    unlock_node(node.addr, locked_n, seen_n);
    allocator_.free(grown_addr, grown_bytes, mem::AllocTag::kInnerNode);
    return false;
  }

  // Retire the old node: Invalid status sends late arrivals into a retry.
  // The block enters the epoch quarantine and is recycled once every
  // worker has passed this epoch (stamp+2 rule, memnode/epoch.h); readers
  // that still reach the recycled address through a stale pointer fail the
  // type/depth/prefix validation and retry. A crash before this write
  // leaves the old node Locked *and* detached -- the reclaimer's
  // reachability probe restores it to Invalid, never Idle.
  {
    rdma::PhaseScope retire_scope(endpoint_, rdma::Phase::kInnerWrite);
    endpoint_.write64(node.addr, with_status(seen_n, NodeStatus::kInvalid),
                      rdma::FaultSite::kLockRelease);
  }
  allocator_.retire(node.addr, inner_alloc_bytes(fresh_n.type()),
                    mem::AllocTag::kInnerNode);

  fresh_p.set_slot(static_cast<uint32_t>(idx), new_slot);
  fresh_p.set_header(seen_p);
  note_inner_write(parent.addr, fresh_p);
  note_inner_write(grown_addr, grown);
  invalidate_inner(node.addr, fresh_n);
  on_inner_switched(fresh_n, node.addr, grown, grown_addr);
  stats_.type_switches++;
  return true;
}

bool RemoteTree::recover_leaf_key(rdma::GlobalAddr addr, NodeType type,
                                  std::string* key_out) {
  rdma::PhaseScope walk_scope(endpoint_, rdma::Phase::kInnerRead);
  InnerImage node;
  for (uint32_t level = 0; level < kMaxKeyLen; ++level) {
    if (!fetch_inner(addr, type, &node)) return false;
    if (node.status() == NodeStatus::kInvalid || node.type() != type) {
      return false;
    }
    uint64_t chosen = 0;
    const uint32_t cap = node.capacity();
    for (uint32_t i = 0; i < cap; ++i) {
      if (slot_valid(node.slot(i))) {
        chosen = node.slot(i);
        break;
      }
    }
    if (chosen == 0) return false;
    if (slot_is_leaf(chosen)) {
      LeafImage leaf;
      rdma::PhaseScope leaf_scope(endpoint_, rdma::Phase::kLeafRead);
      if (!read_leaf(slot_addr(chosen), slot_leaf_units(chosen), &leaf)) {
        return false;
      }
      // Invalid (deleted) leaves still carry their key, which is all the
      // prefix recovery needs.
      key_out->assign(leaf.key().data(), leaf.key().size());
      return true;
    }
    addr = slot_addr(chosen);
    type = slot_child_type(chosen);
  }
  return false;
}

// ---- update -----------------------------------------------------------------

bool RemoteTree::update(Slice key, Slice value) {
  mem::EpochPin epoch(allocator_);
  const TerminatedKey tkey(key);
  alloc_failed_ = false;
  bool allow_custom = true;
  rdma::RetryPolicy policy(endpoint_, config_.retry, &stats_.backoff);
  for (uint32_t r = 0;; ++r) {
    if (!policy.backoff(r)) break;
    Descent& d = descend(tkey, allow_custom && r < 8, r == 0);
    switch (d.status) {
      case DescendStatus::kFoundLeaf: {
        const uint64_t seen = d.leaf.header();
        if (d.leaf.status() != NodeStatus::kIdle) {
          // Another writer holds the leaf (possibly a crashed one). Watch
          // the raw remote word: header() may carry locally patched
          // lengths, which the reclaim CAS could never match.
          note_busy_leaf(tkey, d.leaf_addr, d.leaf.raw_header());
          stats_.op_retries++;
          continue;
        }
        const uint32_t needed = leaf_units_for(
            d.leaf.key_len(), static_cast<uint32_t>(value.size()));
        if (needed <= d.leaf.units()) {
          // In-place: lock CAS, then one WRITE carrying the new value, the
          // Idle status and the fresh checksum (combined release+write).
          const uint64_t locked = lease_leaf_locked(seen);
          uint64_t observed = 0;
          bool won;
          {
            rdma::PhaseScope lock_scope(endpoint_, rdma::Phase::kLock);
            won = endpoint_.cas(d.leaf_addr, seen, locked, &observed,
                                rdma::FaultSite::kLockAcquire);
          }
          if (!won) {
            stats_.lock_fail_retries++;
            if (header_busy(observed)) {
              note_busy_leaf(tkey, d.leaf_addr, observed);
            }
            continue;
          }
          LeafImage img = d.leaf;
          img.replace_value(value);
          // Publish body first, header (with the Idle status that releases
          // the lock) last, in one doorbell batch: a competing writer's
          // lock CAS cannot succeed until the complete image is visible,
          // so two in-place updates never interleave their writes. A crash
          // between the two writes leaves the new body + trailer under a
          // locked header; the reclaimer's trailer validation rolls the
          // update forward (the body write is the linearization point).
          rdma::DoorbellBatch publish(endpoint_);
          publish.add_write(d.leaf_addr.plus(8), img.buf().data() + 8,
                            img.buf().size() - 8,
                            rdma::FaultSite::kPayloadWrite);
          publish.add_write(d.leaf_addr, img.buf().data(), 8,
                            rdma::FaultSite::kLockRelease);
          {
            rdma::PhaseScope write_scope(endpoint_, rdma::Phase::kLeafWrite);
            publish.execute();
          }
          // In-place: address and units are unchanged; this refreshes the
          // cached binding's confidence, it does not move it.
          note_leaf_at(tkey.full(), d.leaf_addr, d.leaf.units());
          return true;
        }
        // Out-of-place: lock the old leaf (blocks in-place updaters), then
        // swap the parent slot to a bigger leaf.
        const uint64_t locked = lease_leaf_locked(seen);
        uint64_t observed = 0;
        bool won;
        {
          rdma::PhaseScope lock_scope(endpoint_, rdma::Phase::kLock);
          won = endpoint_.cas(d.leaf_addr, seen, locked, &observed,
                              rdma::FaultSite::kLockAcquire);
        }
        if (!won) {
          stats_.lock_fail_retries++;
          if (header_busy(observed)) {
            note_busy_leaf(tkey, d.leaf_addr, observed);
          }
          continue;
        }
        PathEntry& parent = d.path.back();
        const uint64_t seen_p = parent.image.header();
        bool done = false;
        if (header_status(seen_p) == NodeStatus::kIdle) {
          rdma::DoorbellBatch pre(endpoint_);
          NewLeaf leaf = make_leaf(tkey, value, &pre);
          if (!leaf.ok) {
            // Release the leaf lock below and abandon the op (degraded).
            alloc_failed_ = true;
            {
              rdma::PhaseScope lock_scope(endpoint_, rdma::Phase::kLock);
              endpoint_.cas(d.leaf_addr, locked, seen, nullptr,
                            rdma::FaultSite::kLockRelease);
            }
            return fail_degraded();
          }
          const uint64_t locked_p = lease_inner_locked(seen_p);
          const size_t lock_idx = pre.add_cas(parent.addr, seen_p, locked_p,
                                      rdma::FaultSite::kLockAcquire);
          {
            rdma::PhaseScope write_scope(endpoint_, rdma::Phase::kLeafWrite);
            pre.execute();
          }
          if (pre.cas_ok(lock_idx)) {
            InnerImage fresh;
            {
              rdma::PhaseScope read_scope(endpoint_, rdma::Phase::kInnerRead);
              RemoteTree::fetch_inner(parent.addr, header_type(seen_p),
                                      &fresh);
            }
            const uint8_t branch = tkey.byte(parent.image.depth());
            const int idx = fresh.find_pkey(branch);
            if (idx >= 0 &&
                fresh.slot(static_cast<uint32_t>(idx)) == parent.taken_word) {
              const uint64_t new_slot =
                  pack_leaf_slot(branch, leaf.units, leaf.addr);
              done = install_slot_locked(parent.addr,
                                         static_cast<uint32_t>(idx),
                                         parent.taken_word, new_slot,
                                         locked_p, seen_p,
                                         rdma::FaultSite::kSlotInstall);
              if (done) {
                fresh.set_slot(static_cast<uint32_t>(idx), new_slot);
                fresh.set_header(seen_p);
                note_inner_write(parent.addr, fresh);
                // The key moved to a new block: replace the cached binding
                // in one step (no separate retire for the old address).
                note_leaf_at(tkey.full(), leaf.addr, leaf.units);
              }
            } else {
              unlock_node(parent.addr, locked_p, seen_p);
            }
          } else {
            stats_.lock_fail_retries++;
            const uint64_t obs_p = pre.old_value(lock_idx);
            if (header_busy(obs_p)) note_busy_inner(tkey, parent.addr, obs_p);
          }
          if (!done) {
            allocator_.free(leaf.addr, leaf.units * kLeafUnitBytes,
                            mem::AllocTag::kLeaf);
          }
        } else {
          note_busy_inner(tkey, parent.addr, seen_p);
        }
        if (done) {
          // Old leaf: Locked -> Invalid, then into the epoch quarantine
          // (recycled once every worker passes this epoch). A stale reader
          // that reaches the recycled block fails the key/CRC validation
          // and retries. A crash before this write leaves the old leaf
          // locked *and* detached; the reclaimer's reachability probe
          // restores Invalid.
          {
            rdma::PhaseScope retire_scope(endpoint_, rdma::Phase::kLeafWrite);
            endpoint_.write64(d.leaf_addr,
                              with_status(seen, NodeStatus::kInvalid),
                              rdma::FaultSite::kLockRelease);
          }
          allocator_.retire(
              d.leaf_addr,
              static_cast<uint64_t>(d.leaf.units()) * kLeafUnitBytes,
              mem::AllocTag::kLeaf);
          return true;
        }
        // Release the leaf lock and retry.
        {
          rdma::PhaseScope lock_scope(endpoint_, rdma::Phase::kLock);
          endpoint_.cas(d.leaf_addr, locked, seen, nullptr,
                        rdma::FaultSite::kLockRelease);
        }
        stats_.op_retries++;
        continue;
      }
      case DescendStatus::kFoundInvalidLeaf:
      case DescendStatus::kNoSlot:
      case DescendStatus::kLeafMismatch:
      case DescendStatus::kFragMismatch:
        if (d.from_custom_start) {
          stats_.start_fallbacks++;
          allow_custom = false;
          continue;
        }
        if (descent_used_cache() || d.used_replica_root) {
          // Reverse check (see search()): cached or replica-derived
          // absence must be confirmed through the primary root.
          if (descent_used_cache()) {
            for (const PathEntry& e : d.path) invalidate_inner(e.addr);
            set_cache_bypass(true);
          }
          if (d.used_replica_root) stats_.root_replica_rechecks++;
          stats_.op_retries++;
          continue;
        }
        return false;
      case DescendStatus::kNeedRetry:
      case DescendStatus::kTimedOut:
        stats_.op_retries++;
        if (r >= 4) allow_custom = false;
        continue;
    }
  }
  stats_.recovery.retry_timeouts++;
  stats_.ops_failed++;
  return false;
}

// ---- remove -----------------------------------------------------------------

bool RemoteTree::remove(Slice key) {
  mem::EpochPin epoch(allocator_);
  const TerminatedKey tkey(key);
  bool allow_custom = true;
  rdma::RetryPolicy policy(endpoint_, config_.retry, &stats_.backoff);
  for (uint32_t r = 0;; ++r) {
    if (!policy.backoff(r)) break;
    Descent& d = descend(tkey, allow_custom && r < 8, r == 0);
    switch (d.status) {
      case DescendStatus::kFoundLeaf: {
        const uint64_t seen = d.leaf.header();
        if (d.leaf.status() != NodeStatus::kIdle) {
          // Raw remote word, not header(): see the update() busy path.
          note_busy_leaf(tkey, d.leaf_addr, d.leaf.raw_header());
          stats_.op_retries++;
          continue;
        }
        // Idle -> Invalid is the linearization point (Sec. IV, Delete).
        uint64_t observed = 0;
        bool won;
        {
          rdma::PhaseScope write_scope(endpoint_, rdma::Phase::kLeafWrite);
          won = endpoint_.cas(d.leaf_addr, seen,
                              with_status(seen, NodeStatus::kInvalid),
                              &observed, rdma::FaultSite::kLockAcquire);
        }
        if (!won) {
          if (header_busy(observed)) {
            note_busy_leaf(tkey, d.leaf_addr, observed);
          }
          stats_.op_retries++;
          continue;
        }
        // The leaf is Invalid as of the CAS above: purge this CN's cached
        // binding at the linearization point.
        note_leaf_retired(tkey.full(), d.leaf_addr);
        // Slot cleanup under the parent lock. Pre-reclamation this was
        // best-effort ("an Invalid leaf reads as absent everywhere"); with
        // recycling, a block may only enter quarantine once its last live
        // link is gone -- a leftover slot would otherwise dangle into a
        // recycled block holding some other key. So retirement belongs to
        // whoever unlinks the leaf: this clear when it lands, otherwise
        // the insert_replace_invalid_leaf that later swaps the stale slot.
        bool unlinked = false;
        PathEntry& parent = d.path.back();
        const uint64_t seen_p = parent.image.header();
        uint64_t locked_p = 0;
        if (lock_node(tkey, parent.addr, seen_p, nullptr, &locked_p)) {
          InnerImage fresh;
          {
            rdma::PhaseScope read_scope(endpoint_, rdma::Phase::kInnerRead);
            RemoteTree::fetch_inner(parent.addr, header_type(seen_p), &fresh);
          }
          const uint8_t branch = tkey.byte(parent.image.depth());
          const int idx = fresh.find_pkey(branch);
          if (idx >= 0 &&
              fresh.slot(static_cast<uint32_t>(idx)) == parent.taken_word) {
            unlinked = install_slot_locked(parent.addr,
                                           static_cast<uint32_t>(idx),
                                           parent.taken_word, 0, locked_p,
                                           seen_p, rdma::FaultSite::kNone);
            fresh.set_slot(static_cast<uint32_t>(idx), 0);
            fresh.set_header(seen_p);
            note_inner_write(parent.addr, fresh);
          } else {
            unlock_node(parent.addr, locked_p, seen_p);
          }
        }
        if (unlinked) {
          // Last live link removed by our CAS: the leaf enters the epoch
          // quarantine and is recycled once every worker passes this
          // epoch. When the clear did NOT land (parent busy/grown, or the
          // slot already swapped), the leaf stays Invalid and linked; it
          // is retired by the replacement that eventually unlinks it, or
          // leaks if none ever does (bounded by clear-failure rate).
          allocator_.retire(
              d.leaf_addr,
              static_cast<uint64_t>(d.leaf.units()) * kLeafUnitBytes,
              mem::AllocTag::kLeaf);
        }
        return true;
      }
      case DescendStatus::kFoundInvalidLeaf:
      case DescendStatus::kNoSlot:
      case DescendStatus::kLeafMismatch:
      case DescendStatus::kFragMismatch:
        if (d.from_custom_start) {
          stats_.start_fallbacks++;
          allow_custom = false;
          continue;
        }
        if (descent_used_cache() || d.used_replica_root) {
          // Reverse check (see search()): cached or replica-derived
          // absence must be confirmed through the primary root.
          if (descent_used_cache()) {
            for (const PathEntry& e : d.path) invalidate_inner(e.addr);
            set_cache_bypass(true);
          }
          if (d.used_replica_root) stats_.root_replica_rechecks++;
          stats_.op_retries++;
          continue;
        }
        return false;
      case DescendStatus::kNeedRetry:
      case DescendStatus::kTimedOut:
        stats_.op_retries++;
        if (r >= 4) allow_custom = false;
        continue;
    }
  }
  stats_.recovery.retry_timeouts++;
  stats_.ops_failed++;
  return false;
}

// ---- crash-tolerant lock reclamation ----------------------------------------

bool RemoteTree::note_busy_inner(const TerminatedKey& key,
                                 rdma::GlobalAddr addr, uint64_t header) {
  if (!header_busy(header)) return false;
  if (!lock_watch_.observe(endpoint_, addr, header)) return false;
  return reclaim_inner(key, addr, header);
}

bool RemoteTree::note_busy_leaf(const TerminatedKey& key,
                                rdma::GlobalAddr addr, uint64_t header) {
  if (!header_busy(header)) return false;
  if (!lock_watch_.observe(endpoint_, addr, header)) return false;
  return reclaim_leaf(key, addr, header);
}

int RemoteTree::probe_attached(const TerminatedKey& key,
                               rdma::GlobalAddr target) {
  rdma::PhaseScope recovery_scope(endpoint_, rdma::Phase::kRecovery);
  if (target.to48() == ref_.root.to48()) return 1;
  rdma::GlobalAddr addr = ref_.root;
  NodeType type = NodeType::kN256;
  InnerImage node;
  for (uint32_t level = 0; level < kMaxKeyLen; ++level) {
    // Uncached reads: the verdict must reflect remote memory, not a stale
    // local cache.
    endpoint_.read(addr, node.raw(), inner_node_bytes(type));
    if (node.status() == NodeStatus::kInvalid || node.type() != type) {
      return -1;  // raced with a concurrent switch; verdict unclear
    }
    const uint32_t depth = node.depth();
    if (depth >= key.size()) return 0;
    const int idx = node.find_pkey(key.byte(depth));
    if (idx < 0) return 0;
    const uint64_t slot_word = node.slot(static_cast<uint32_t>(idx));
    const rdma::GlobalAddr child = slot_addr(slot_word);
    if (child.to48() == target.to48()) return 1;
    if (slot_is_leaf(slot_word)) return 0;
    addr = child;
    type = slot_child_type(slot_word);
  }
  return -1;
}

bool RemoteTree::reclaim_inner(const TerminatedKey& key, rdma::GlobalAddr addr,
                               uint64_t expired_word) {
  rdma::PhaseScope recovery_scope(endpoint_, rdma::Phase::kRecovery);
  stats_.recovery.lease_expiries_observed++;
  // Take over: the CAS expecting the exact watched word both wins the race
  // against other waiters and re-confirms the word never moved.
  const uint64_t reclaiming =
      pack_inner_lease(expired_word, NodeStatus::kReclaiming, lease_owner(),
                       lease_stamp(endpoint_.clock_ns()));
  if (!endpoint_.cas(addr, expired_word, reclaiming, nullptr,
                     rdma::FaultSite::kLockAcquire)) {
    // The holder released, or another waiter reclaimed first.
    lock_watch_.reset();
    invalidate_inner(addr);
    return true;
  }
  // A node a crashed type-switch already cut from the tree must come back
  // Invalid: restoring it Idle would let stale pointers resurrect it and
  // lose acknowledged writes landing in the detached copy.
  int attached = -1;
  for (uint32_t probe = 0; probe < 8 && attached < 0; ++probe) {
    attached = probe_attached(key, addr);
  }
  const uint64_t hash42 = endpoint_.read64(addr.plus(8)) & ((1ULL << 42) - 1);
  const uint64_t restored = pack_inner_header(
      attached != 0 ? NodeStatus::kIdle : NodeStatus::kInvalid,
      header_type(expired_word), header_depth(expired_word), hash42);
  endpoint_.cas(addr, reclaiming, restored, nullptr,
                rdma::FaultSite::kLockRelease);
  stats_.recovery.lock_reclaims++;
  lock_watch_.reset();
  invalidate_inner(addr);
  return true;
}

bool RemoteTree::reclaim_leaf(const TerminatedKey& key, rdma::GlobalAddr addr,
                              uint64_t expired_word) {
  rdma::PhaseScope recovery_scope(endpoint_, rdma::Phase::kRecovery);
  stats_.recovery.lease_expiries_observed++;
  const uint64_t reclaiming =
      pack_leaf_lease(expired_word, NodeStatus::kReclaiming, lease_owner(),
                      lease_stamp(endpoint_.clock_ns()));
  if (!endpoint_.cas(addr, expired_word, reclaiming, nullptr,
                     rdma::FaultSite::kLockAcquire)) {
    lock_watch_.reset();
    return true;
  }
  // Restore consistency from the leaf image: a crash before the body write
  // validates against the header's lengths (the old value is intact); a
  // crash after the body write validates against the trailer and the
  // half-published update rolls *forward* (its body write was the
  // linearization point).
  const uint32_t units = leaf_units(expired_word);
  LeafImage img;
  img.resize(units);
  LeafImage::Revalidate v = LeafImage::Revalidate::kBad;
  for (uint32_t attempt = 0; attempt < config_.max_leaf_reread; ++attempt) {
    endpoint_.read(addr, img.buf().data(), units * kLeafUnitBytes);
    v = img.revalidate();
    if (v != LeafImage::Revalidate::kBad) break;
    stats_.torn_leaf_rereads++;
  }
  uint32_t klen = leaf_key_len(expired_word);
  uint32_t vlen = leaf_val_len(expired_word);
  if (v == LeafImage::Revalidate::kPatched) {
    klen = img.key_len();
    vlen = img.val_len();
    stats_.recovery.lock_rollforwards++;
  }
  // A leaf an out-of-place update already unlinked must come back Invalid
  // (same detachment argument as for inner nodes).
  int attached = -1;
  for (uint32_t probe = 0; probe < 8 && attached < 0; ++probe) {
    attached = probe_attached(key, addr);
  }
  const uint64_t restored = pack_leaf_header(
      attached != 0 ? NodeStatus::kIdle : NodeStatus::kInvalid, units, klen,
      vlen);
  endpoint_.cas(addr, reclaiming, restored, nullptr,
                rdma::FaultSite::kLockRelease);
  stats_.recovery.lock_reclaims++;
  lock_watch_.reset();
  return true;
}

// ---- scan -------------------------------------------------------------------
//
// Frontier-batched scan engine. The frontier is a key-ordered worklist of
// pending children; each round fetches the leading unvisited entries
// *across subtrees* in one doorbell batch (kScanFanout wide, leaf runs and
// inner nodes interleaved), pops validated leaves off the front in order,
// and splices an expanded inner node's in-window children back in place.
// Round trips therefore scale like tree depth + ceil(nodes / fanout)
// instead of one batch sequence per subtree. Stale pointers re-resolve
// through the parent's slot word under the per-op RetryPolicy; an
// exhausted budget is surfaced (counters + last_scan_truncated()), never
// silently skipped.

namespace {

// Batch width for one frontier round trip (matches a doorbell's practical
// WQE budget; also the cap the old per-subtree chunking used).
constexpr size_t kScanFanout = 32;
// Byte budget for *speculative* inner fetches per batch. Leaf runs batch
// freely (their keys are needed by definition) and one inner always rides
// per round trip (forward progress), but further sibling inners are a
// gamble: if an earlier subtree satisfies the remaining count, they were
// fetched for nothing. On adaptive trees the gamble is nearly free (a
// Node-4 image is tens of bytes) so the budget never binds; on homogeneous
// trees every inner is a full 2 KiB image and unchecked speculation can
// double the scan's wire traffic, which is what sets throughput once the
// NIC saturates. 2 KiB admits a dozen small adaptive nodes but exactly
// zero extra homogeneous ones.
constexpr size_t kScanSpecInnerBytes = 2048;
// Per-item slot re-resolutions before escalating to a frontier restart
// (the path above the item, not the item itself, may be stale).
constexpr uint32_t kMaxScanItemRetries = 4;

}  // namespace

size_t RemoteTree::scan(Slice start_key, size_t count,
                        std::vector<std::pair<std::string, std::string>>* out) {
  mem::EpochPin epoch(allocator_);
  out->clear();
  last_scan_truncated_ = false;
  if (count == 0) return 0;
  stats_.scan.scans++;
  const TerminatedKey low(start_key);
  run_scan(low, /*high=*/nullptr, count, out);
  return out->size();
}

size_t RemoteTree::scan_range(
    Slice low_key, Slice high_key, size_t max_results,
    std::vector<std::pair<std::string, std::string>>* out) {
  mem::EpochPin epoch(allocator_);
  out->clear();
  last_scan_truncated_ = false;
  if (max_results == 0 || high_key.compare(low_key) < 0) return 0;
  stats_.scan.scans++;
  const TerminatedKey low(low_key);
  const TerminatedKey high(high_key);
  run_scan(low, &high, max_results, out);
  return out->size();
}

uint32_t RemoteTree::register_scan_prefix(Slice prefix) {
  scan_prefixes_.emplace_back(prefix.data(), prefix.size());
  scan_prefix_masks_.emplace_back(prefix.size(), '\1');
  return static_cast<uint32_t>(scan_prefixes_.size() - 1);
}

int RemoteTree::compose_scan_child_prefix(const ScanItem& item,
                                          const InnerImage& node) {
  const std::string& pp = scan_prefixes_[item.prefix_id];
  const std::string& pm = scan_prefix_masks_[item.prefix_id];
  const uint32_t d = item.parent_depth;  // == pp.size()
  const uint32_t len = node.depth();
  std::string q(len, '\0');
  std::string m(len, '\0');
  std::memcpy(&q[0], pp.data(), std::min<size_t>(pp.size(), len));
  std::memcpy(&m[0], pm.data(), std::min<size_t>(pm.size(), len));
  if (d < len) {
    q[d] = static_cast<char>(slot_pkey(item.word));
    m[d] = '\1';
  }
  const uint64_t fw = node.frag_word();
  const uint32_t fl = std::min(frag_len(fw), len);
  for (uint32_t i = len - fl; i < len; ++i) {
    const char b = static_cast<char>(frag_byte(fw, i - (len - fl)));
    if (m[i] == '\1' && q[i] != b) return -1;  // definite prefix mismatch
    q[i] = b;
    m[i] = '\1';
  }
  bool fully_known = true;
  for (const char c : m) fully_known &= c == '\1';
  if (fully_known && prefix_hash(Slice(q)) != node.prefix_hash_full()) {
    return -1;  // an unrelated node recycled into this address
  }
  scan_prefixes_.push_back(std::move(q));
  scan_prefix_masks_.push_back(std::move(m));
  return static_cast<int>(scan_prefixes_.size() - 1);
}

bool RemoteTree::scan_leaf_linked(const ScanItem& item,
                                  Slice terminated_key) const {
  const uint32_t d = item.parent_depth;
  if (terminated_key.size() <= d) return false;
  if (static_cast<uint8_t>(terminated_key.data()[d]) !=
      slot_pkey(item.word)) {
    return false;
  }
  const std::string& pp = scan_prefixes_[item.prefix_id];
  const std::string& pm = scan_prefix_masks_[item.prefix_id];
  for (size_t i = 0; i < pp.size(); ++i) {
    if (pm[i] == '\1' && terminated_key.data()[i] != pp[i]) return false;
  }
  return true;
}

void RemoteTree::expand_into_frontier(rdma::GlobalAddr addr,
                                      const InnerImage& node,
                                      const TerminatedKey& bound,
                                      const TerminatedKey* high,
                                      bool lo_bounded, bool hi_bounded,
                                      size_t at, uint32_t prefix_id) {
  endpoint_.advance_local(
      config_.local_ns_per_node +
      static_cast<uint64_t>(node.size_bytes() / config_.cpu_bytes_per_ns));
  const uint32_t depth = node.depth();
  if (depth > 0) on_scan_inner(addr, node);

  // Nodes deeper than a bound lie strictly inside (low) / outside (high)
  // of it; the per-leaf compares below stay the final authority either way.
  const bool lo_b = lo_bounded && depth < bound.size();
  const bool hi_b = hi_bounded && high != nullptr && depth < high->size();
  const uint8_t lo_byte = lo_b ? bound.byte(depth) : 0;
  const uint8_t hi_byte = hi_b ? high->byte(depth) : 0xff;

  // Valid in-window slots with their indices, in branch-byte order (the
  // index is what a stale child's re-resolution re-reads).
  slot_scratch_.clear();
  const uint32_t cap = node.capacity();
  for (uint32_t i = 0; i < cap; ++i) {
    const uint64_t w = node.slot(i);
    if (!slot_valid(w)) continue;
    const uint8_t p = slot_pkey(w);
    if (p < lo_byte || p > hi_byte) continue;
    slot_scratch_.emplace_back(w, i);
  }
  std::sort(slot_scratch_.begin(), slot_scratch_.end(),
            [](const std::pair<uint64_t, uint32_t>& a,
               const std::pair<uint64_t, uint32_t>& b) {
              return slot_pkey(a.first) < slot_pkey(b.first);
            });

  frontier_.insert(frontier_.begin() + static_cast<ptrdiff_t>(at),
                   slot_scratch_.size(), ScanItem{});
  size_t inner_children = 0;
  for (size_t k = 0; k < slot_scratch_.size(); ++k) {
    ScanItem& it = frontier_[at + k];
    it.word = slot_scratch_[k].first;
    it.parent_addr = addr;
    it.parent_slot = slot_scratch_[k].second;
    it.parent_depth = depth;
    it.prefix_id = prefix_id;
    if (!slot_is_leaf(it.word)) inner_children++;
    const uint8_t p = slot_pkey(it.word);
    it.lo_bounded = lo_b && p == lo_byte;
    it.hi_bounded = hi_b && p == hi_byte;
  }
  // A pure-leaf expansion reveals the local leaf fan-out: adopt it as the
  // expected yield of this node's unvisited siblings, so the batch builder
  // can span subtrees without speculating past the requested count.
  if (inner_children == 0 && !slot_scratch_.empty() && depth > 0) {
    scan_keys_per_inner_ = static_cast<double>(slot_scratch_.size());
  }
}

RemoteTree::ScanRecover RemoteTree::recover_scan_item(
    ScanItem& item, bool leaf_deleted, rdma::RetryPolicy& policy,
    uint32_t* attempt) {
  // One round trip: the parent's header word plus the slot word we came
  // through. The live slot is the authority on where the child is now.
  uint64_t parent_header = 0;
  uint64_t live_slot = 0;
  {
    rdma::PhaseScope scan_scope(endpoint_, rdma::Phase::kScanFrontier);
    rdma::DoorbellBatch batch(endpoint_);
    batch.add_read(item.parent_addr, &parent_header, sizeof(parent_header));
    batch.add_read(
        item.parent_addr.plus(kInnerHeaderBytes +
                              static_cast<uint64_t>(item.parent_slot) * 8),
        &live_slot, sizeof(live_slot));
    batch.execute();
  }
  if (header_status(parent_header) == NodeStatus::kInvalid) {
    // The parent itself was switched out from under the scan: its slot
    // array is a dead snapshot, so re-resolve the whole path from the top.
    if (!policy.backoff(++*attempt)) return ScanRecover::kDrop;
    return ScanRecover::kRestart;
  }
  if (!slot_valid(live_slot)) return ScanRecover::kGone;  // child unlinked
  if (slot_pkey(live_slot) != slot_pkey(item.word)) {
    // Non-N256 slot indices are positionless: the branch byte this item
    // represents was removed and the slot re-filled for a different byte
    // (that byte has its own frontier fate). Observing the key gone is
    // linearizable -- it really was absent between the remove and any
    // re-insert.
    return ScanRecover::kGone;
  }
  if (live_slot != item.word) {
    // The child was replaced (type switch / out-of-place update); follow
    // the fresh pointer instead of skipping the subtree.
    stats_.scan.stale_retries++;
    item.word = live_slot;
    item.retries++;
    return ScanRecover::kRefetch;
  }
  // Pointer unchanged but the target looked stale/torn.
  if (leaf_deleted) return ScanRecover::kGone;  // a removed leaf stays linked
  stats_.scan.stale_retries++;
  item.retries++;
  if (item.retries > kMaxScanItemRetries) {
    if (!policy.backoff(++*attempt)) return ScanRecover::kDrop;
    return ScanRecover::kRestart;
  }
  if (!policy.backoff(++*attempt)) return ScanRecover::kDrop;
  return ScanRecover::kRefetch;
}

void RemoteTree::run_scan(
    const TerminatedKey& low, const TerminatedKey* high, size_t count,
    std::vector<std::pair<std::string, std::string>>* out) {
  rdma::RetryPolicy policy(endpoint_, config_.retry, &stats_.backoff);
  uint32_t attempt = 0;
  // No leaf fan-out observed yet: assume one inner child covers the whole
  // remaining count (leaf runs still prefetch alongside it).
  scan_keys_per_inner_ = static_cast<double>(count);

  // Between rounds: the working lower bound (exclusive once keys have been
  // emitted) and, for count scans, the widen-and-resume depth ceiling.
  std::optional<TerminatedKey> resume;
  bool low_exclusive = false;
  uint32_t count_cap = low.size() - 1;
  // Subtree fully drained by the previous round (widen-resume only): the
  // wider entry re-lists it as its bounded first child, but every key at
  // scan-start time under it was already emitted or filtered -- prune it
  // instead of re-fetching the whole run below the resume bound.
  rdma::GlobalAddr exhausted_subtree;
  bool have_exhausted = false;

  auto mark_truncated = [&] {
    if (!last_scan_truncated_) {
      last_scan_truncated_ = true;
      stats_.scan.truncated_scans++;
    }
  };
  auto alloc_inner = [&]() -> uint32_t {
    if (free_inner_bufs_.empty()) {
      scan_inner_pool_.emplace_back();
      return static_cast<uint32_t>(scan_inner_pool_.size() - 1);
    }
    const uint32_t b = free_inner_bufs_.back();
    free_inner_bufs_.pop_back();
    return b;
  };
  auto alloc_leaf = [&]() -> uint32_t {
    if (free_leaf_bufs_.empty()) {
      scan_leaf_pool_.emplace_back();
      return static_cast<uint32_t>(scan_leaf_pool_.size() - 1);
    }
    const uint32_t b = free_leaf_bufs_.back();
    free_leaf_bufs_.pop_back();
    return b;
  };
  auto release_buf = [&](ScanItem& it) {
    if (!it.fetched) return;
    (slot_is_leaf(it.word) ? free_leaf_bufs_ : free_inner_bufs_)
        .push_back(it.buf);
    it.fetched = false;
  };

  for (;;) {  // one round = one entry + one frontier walk
    const TerminatedKey& bound = resume ? *resume : low;
    // Ceiling for the entry depth: a range scan may enter as deep as the
    // low/high common prefix (every in-range key shares it); a count scan
    // enters at the deepest covering node of the bound and widens on
    // resume. Either way the entry's subtree covers the whole remaining
    // window.
    const uint32_t round_cap =
        high != nullptr
            ? static_cast<uint32_t>(
                  bound.user_key().common_prefix_len(high->user_key()))
            : std::min<uint32_t>(count_cap, bound.size() - 1);

    frontier_.clear();
    scan_prefixes_.clear();
    scan_prefix_masks_.clear();
    free_inner_bufs_.clear();
    for (uint32_t i = 0; i < scan_inner_pool_.size(); ++i) {
      free_inner_bufs_.push_back(i);
    }
    free_leaf_bufs_.clear();
    for (uint32_t i = 0; i < scan_leaf_pool_.size(); ++i) {
      free_leaf_bufs_.push_back(i);
    }
    size_t head = 0;

    // ---- entry: SFC/PEC jump, cached root, or a fresh root fetch -----------
    rdma::GlobalAddr entry_addr = ref_.root;
    uint32_t entry_depth = 0;
    bool fused_root_pending = false;  // validate the cached root image in
                                      // the first frontier batch
    if (config_.scan_jump && round_cap >= 1 &&
        find_scan_start(bound, round_cap, &scan_entry_)) {
      stats_.scan.jump_starts++;
      entry_addr = scan_entry_.addr;
      entry_depth = scan_entry_.image.depth();
      expand_into_frontier(entry_addr, scan_entry_.image, bound, high,
                           /*lo_bounded=*/true, /*hi_bounded=*/high != nullptr,
                           /*at=*/0,
                           register_scan_prefix(bound.prefix(entry_depth)));
    } else {
      stats_.scan.root_starts++;
      if (config_.cache_scan_root && scan_root_valid_) {
        fused_root_pending = true;
      } else {
        rdma::PhaseScope scan_scope(endpoint_, rdma::Phase::kScanFrontier);
        if (!fetch_inner(ref_.root, NodeType::kN256, &scan_entry_.image)) {
          if (!policy.backoff(++attempt)) {
            mark_truncated();
            return;
          }
          continue;  // transient: retry the round
        }
        if (config_.cache_scan_root) {
          scan_root_cache_ = scan_entry_.image;
          scan_root_valid_ = true;
        }
      }
      const InnerImage& root_img = (config_.cache_scan_root && scan_root_valid_)
                                       ? scan_root_cache_
                                       : scan_entry_.image;
      expand_into_frontier(ref_.root, root_img, bound, high,
                           /*lo_bounded=*/true, /*hi_bounded=*/high != nullptr,
                           /*at=*/0, register_scan_prefix(Slice()));
      if (frontier_.empty() && fused_root_pending) {
        // The cached image says the window is empty; confirm with a fresh
        // read before believing it (a new first-byte subtree may exist).
        fused_root_pending = false;
        rdma::PhaseScope scan_scope(endpoint_, rdma::Phase::kScanFrontier);
        if (fetch_inner(ref_.root, NodeType::kN256, &scan_root_cache_)) {
          expand_into_frontier(ref_.root, scan_root_cache_, bound, high, true,
                               high != nullptr, 0,
                               register_scan_prefix(Slice()));
        }
      }
    }
    if (have_exhausted) {
      have_exhausted = false;
      for (auto it2 = frontier_.begin(); it2 != frontier_.end(); ++it2) {
        if (!slot_is_leaf(it2->word) && slot_addr(it2->word) == exhausted_subtree) {
          frontier_.erase(it2);
          break;
        }
      }
    }

    // ---- frontier walk -----------------------------------------------------
    bool restart = false;
    while (head < frontier_.size() && out->size() < count && !restart) {
      if (!frontier_[head].fetched) {
        // Fetch the leading unvisited children in one doorbell batch: walk
        // forward until the items traversed guarantee the remaining count
        // (each pending child holds at least one live key in the common
        // case) or the fanout cap is hit. Leaf runs and sibling-subtree
        // inner nodes ride the same round trip.
        const size_t needed = count - out->size();
        const size_t max_batch = config_.batched_scan ? kScanFanout : 1;
        // Pass 1 picks the items and allocates their buffers (which may
        // grow the pools and move them); pass 2 takes the now-stable
        // pointers for the doorbell.
        size_t guaranteed = 0;
        size_t spec_inner_bytes = 0;
        bool have_inner = false;
        batch_picks_.clear();
        for (size_t i = head; i < frontier_.size(); ++i) {
          if (batch_picks_.size() >= max_batch) break;
          if (guaranteed >= needed && !batch_picks_.empty()) break;
          ScanItem& it = frontier_[i];
          const bool is_leaf = slot_is_leaf(it.word);
          if (!is_leaf && !it.fetched && have_inner) {
            // Second and later inners draw on the speculation budget.
            const size_t nb = inner_node_bytes(slot_child_type(it.word));
            if (spec_inner_bytes + nb > kScanSpecInnerBytes) break;
            spec_inner_bytes += nb;
          }
          if (!it.fetched) {
            it.buf = is_leaf ? alloc_leaf() : alloc_inner();
            it.fetched = true;
            batch_picks_.push_back(i);
            if (!is_leaf) have_inner = true;
          }
          guaranteed +=
              is_leaf ? 1
                      : std::max<size_t>(
                            1, static_cast<size_t>(scan_keys_per_inner_));
        }
        const size_t selected = batch_picks_.size();
        rdma::DoorbellBatch batch(endpoint_);
        for (size_t i : batch_picks_) {
          ScanItem& it = frontier_[i];
          if (slot_is_leaf(it.word)) {
            LeafImage& img = scan_leaf_pool_[it.buf];
            img.resize(slot_leaf_units(it.word));
            batch.add_read(slot_addr(it.word), img.buf().data(),
                           img.buf().size());
          } else {
            batch.add_read(slot_addr(it.word), scan_inner_pool_[it.buf].raw(),
                           inner_node_bytes(slot_child_type(it.word)));
          }
        }
        if (fused_root_pending) {
          // Piggyback the root revalidation on the round trip we are
          // paying anyway (satellite of the jump-start: no standalone
          // root RTT even on the --no-scan-jump fallback path).
          batch.add_read(ref_.root, scan_root_fresh_.raw(),
                         inner_node_bytes(NodeType::kN256));
        }
        {
          rdma::PhaseScope scan_scope(endpoint_, rdma::Phase::kScanFrontier);
          batch.execute();
        }
        stats_.scan.frontier_batches++;
        stats_.scan.frontier_nodes += selected;
        if (fused_root_pending) {
          fused_root_pending = false;
          const uint32_t lo0 = bound.byte(0);
          const uint32_t hi0 = high != nullptr ? high->byte(0) : 0xff;
          bool stale = false;
          for (uint32_t p = lo0; p <= hi0 && !stale; ++p) {
            stale = scan_root_cache_.slot(p) != scan_root_fresh_.slot(p);
          }
          scan_root_cache_ = scan_root_fresh_;
          if (stale) {
            // The cached root missed a structural change inside the scan
            // window: rebuild the frontier from the fresh image (the
            // just-fetched children are simply discarded).
            stats_.scan.root_refreshes++;
            frontier_.clear();
            free_inner_bufs_.clear();
            for (uint32_t i = 0; i < scan_inner_pool_.size(); ++i) {
              free_inner_bufs_.push_back(i);
            }
            free_leaf_bufs_.clear();
            for (uint32_t i = 0; i < scan_leaf_pool_.size(); ++i) {
              free_leaf_bufs_.push_back(i);
            }
            head = 0;
            expand_into_frontier(ref_.root, scan_root_cache_, bound, high,
                                 true, high != nullptr, 0,
                                 register_scan_prefix(Slice()));
            continue;
          }
        }
      }

      // Consume validated items off the front, strictly in key order.
      while (head < frontier_.size() && frontier_[head].fetched &&
             out->size() < count) {
        ScanItem& it = frontier_[head];
        if (slot_is_leaf(it.word)) {
          LeafImage& leaf = scan_leaf_pool_[it.buf];
          const bool torn = leaf.units() != slot_leaf_units(it.word) ||
                            leaf.revalidate() == LeafImage::Revalidate::kBad;
          if (torn || leaf.status() == NodeStatus::kInvalid) {
            if (torn) stats_.torn_leaf_rereads++;
            release_buf(it);
            const ScanRecover r =
                recover_scan_item(it, /*leaf_deleted=*/!torn, policy,
                                  &attempt);
            if (r == ScanRecover::kRefetch) break;  // re-batch from head
            if (r == ScanRecover::kGone) {
              head++;
              continue;
            }
            if (r == ScanRecover::kRestart) {
              restart = true;
              break;
            }
            // kDrop: budget exhausted -- a live leaf may be lost; say so.
            stats_.scan.leaf_drops++;
            mark_truncated();
            head++;
            continue;
          }
          const Slice lk = leaf.key();
          if (!scan_leaf_linked(it, lk)) {
            // A valid image whose key does not belong at this position:
            // the original leaf was freed and its block recycled for an
            // unrelated key. The live parent slot decides what (if
            // anything) lives on this branch byte now; the original key
            // was genuinely removed, so skipping is linearizable.
            release_buf(it);
            const ScanRecover r =
                recover_scan_item(it, /*leaf_deleted=*/true, policy,
                                  &attempt);
            if (r == ScanRecover::kRefetch) break;
            if (r == ScanRecover::kGone) {
              head++;
              continue;
            }
            if (r == ScanRecover::kRestart) {
              restart = true;
              break;
            }
            stats_.scan.leaf_drops++;
            mark_truncated();
            head++;
            continue;
          }
          if (it.lo_bounded) {
            const int c = lk.compare(bound.full());
            if (c < 0 || (low_exclusive && c == 0)) {
              release_buf(it);
              head++;
              continue;
            }
          }
          // In-order walk: the first leaf beyond the upper bound completes
          // a Scan(K1, K2) (terminated keys compare in user-key order).
          if (high != nullptr && lk.compare(high->full()) > 0) {
            return;
          }
          // A scan emit is a fully verified (key, leaf) binding too: feed
          // the leaf address cache so point reads of scanned keys can jump.
          note_leaf_at(lk, slot_addr(it.word), slot_leaf_units(it.word));
          out->emplace_back(std::string(lk.data(), lk.size() - 1),  // no NUL
                            leaf.value().to_string());
          release_buf(it);
          head++;
        } else {
          InnerImage& node = scan_inner_pool_[it.buf];
          // A node that parses but fails the prefix composition (fragment
          // or full-hash mismatch) is a recycled block from elsewhere in
          // the tree -- treat it exactly like a stale pointer.
          int child_prefix = -1;
          if (node.status() == NodeStatus::kInvalid ||
              node.type() != slot_child_type(it.word) ||
              node.depth() <= it.parent_depth ||
              (child_prefix = compose_scan_child_prefix(it, node)) < 0) {
            invalidate_inner(slot_addr(it.word), node);
            release_buf(it);
            const ScanRecover r =
                recover_scan_item(it, /*leaf_deleted=*/false, policy,
                                  &attempt);
            if (r == ScanRecover::kRefetch) break;
            if (r == ScanRecover::kGone) {
              head++;
              continue;
            }
            if (r == ScanRecover::kRestart) {
              restart = true;
              break;
            }
            // kDrop: a whole live subtree may be lost; count + truncate.
            stats_.scan.subtree_skips++;
            mark_truncated();
            head++;
            continue;
          }
          const rdma::GlobalAddr addr = slot_addr(it.word);
          const bool lo_b = it.lo_bounded;
          const bool hi_b = it.hi_bounded;
          release_buf(it);
          head++;
          // Splice the children in at the consumed position; `node` stays
          // valid (the freed pool slot is reused only by a later batch).
          expand_into_frontier(addr, node, bound, high, lo_b, hi_b, head,
                               static_cast<uint32_t>(child_prefix));
        }
      }
    }

    if (restart) {
      // A dead ancestor invalidated the frontier's provenance. Re-enter
      // from the top with everything already emitted excluded; emitted
      // keys are strictly below every pending item, so no duplicates and
      // no gaps.
      stats_.scan.restarts++;
      if (!out->empty()) {
        resume.emplace(Slice(out->back().first));
        low_exclusive = true;
      }
      continue;
    }
    if (out->size() >= count) return;  // satisfied
    // Frontier exhausted. A range scan's entry covered [low, high]
    // entirely, and a root entry covered the whole tree: done.
    if (high != nullptr || entry_depth == 0) return;
    // Count scan spilled past the entry subtree: widen-and-resume. The
    // last emitted key becomes the exclusive bound and the next entry must
    // sit strictly above the exhausted subtree.
    stats_.scan.widen_resumes++;
    count_cap = entry_depth - 1;
    exhausted_subtree = entry_addr;
    have_exhausted = true;
    if (!out->empty()) {
      resume.emplace(Slice(out->back().first));
      low_exclusive = true;
    }
  }
}

}  // namespace sphinx::art
