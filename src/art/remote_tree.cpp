#include "art/remote_tree.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

namespace sphinx::art {

namespace {

// Real-time backoff between operation retries. Virtual clocks model the
// fabric, but genuine thread starvation on a hot node is a host-level
// artifact; yielding (then briefly sleeping) breaks retry livelocks.
void retry_backoff(uint32_t attempt) {
  if (attempt == 0) return;
  if (attempt < 8) {
    std::this_thread::yield();
    return;
  }
  const uint32_t us = std::min<uint32_t>(1u << std::min(attempt - 8, 9u), 400);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

// Rewrites the branch byte of a slot word, keeping valid/leaf/meta/addr.
uint64_t slot_with_pkey(uint64_t slot_word, uint8_t pkey) {
  return (slot_word & ~(0xffULL << 48)) | (static_cast<uint64_t>(pkey) << 48);
}

}  // namespace

TreeRef create_tree(mem::Cluster& cluster) {
  rdma::Endpoint loader = cluster.make_loader_endpoint();
  mem::RemoteAllocator allocator(cluster, loader);
  InnerImage root = InnerImage::create(NodeType::kN256, Slice());
  const uint32_t mn = cluster.ring().mn_for(prefix_hash(Slice()));
  rdma::GlobalAddr addr = allocator.alloc(mn, root.size_bytes(),
                                          mem::AllocTag::kInnerNode);
  loader.write(addr, root.raw(), root.size_bytes());
  return TreeRef{addr};
}

RemoteTree::RemoteTree(mem::Cluster& cluster, rdma::Endpoint& endpoint,
                       mem::RemoteAllocator& allocator, const TreeRef& ref,
                       const TreeConfig& config)
    : cluster_(cluster),
      endpoint_(endpoint),
      allocator_(allocator),
      ref_(ref),
      config_(config) {}

bool RemoteTree::fetch_inner(rdma::GlobalAddr addr, NodeType type,
                             InnerImage* out) {
  endpoint_.read(addr, out->raw(), inner_node_bytes(type));
  return true;
}

bool RemoteTree::read_leaf(rdma::GlobalAddr addr, uint32_t units,
                           LeafImage* out) {
  out->resize(units);
  for (uint32_t attempt = 0; attempt < config_.max_leaf_reread; ++attempt) {
    endpoint_.read(addr, out->buf().data(), units * kLeafUnitBytes);
    if (out->units() == units && out->checksum_ok()) return true;
    stats_.torn_leaf_rereads++;
  }
  return false;
}

RemoteTree::Descent& RemoteTree::descend(const TerminatedKey& key,
                                         bool allow_custom_start) {
  // Reuse the member scratch: path entries carry multi-KiB node images, so
  // building them in place (and keeping the vector's capacity across
  // operations) keeps the per-op hot path allocation- and memcpy-free.
  Descent& d = descent_;
  d.status = DescendStatus::kNeedRetry;
  d.from_custom_start = false;
  d.path.clear();
  d.leaf_addr = rdma::GlobalAddr();
  d.cpl = 0;

  begin_descend();
  d.path.emplace_back();
  if (allow_custom_start && find_start(key, &d.path.back())) {
    d.from_custom_start = true;
  } else {
    PathEntry& start = d.path.back();
    start.addr = ref_.root;
    start.parent_depth = 0;
    start.taken_slot = -1;
    start.taken_word = 0;
    if (!fetch_inner(ref_.root, NodeType::kN256, &start.image)) {
      d.path.pop_back();
      d.status = DescendStatus::kNeedRetry;
      return d;
    }
  }

  for (uint32_t level = 0; level < kMaxKeyLen; ++level) {
    PathEntry& cur = d.path.back();
    endpoint_.advance_local(
        config_.local_ns_per_node +
        static_cast<uint64_t>(cur.image.size_bytes() /
                              config_.cpu_bytes_per_ns));

    if (cur.image.status() == NodeStatus::kInvalid) {
      stats_.invalid_node_retries++;
      invalidate_inner(cur.addr, cur.image);
      d.path.pop_back();
      d.status = DescendStatus::kNeedRetry;
      return d;
    }
    const uint32_t depth = cur.image.depth();
    if (depth >= key.size() || !cur.image.frag_consistent(key,
                                                          cur.parent_depth)) {
      cur.taken_slot = -1;
      d.status = DescendStatus::kFragMismatch;
      return d;
    }
    on_visit_inner(key, cur);

    const uint8_t branch = key.byte(depth);
    const int idx = cur.image.find_pkey(branch);
    if (idx < 0) {
      cur.taken_slot = -1;
      d.status = DescendStatus::kNoSlot;
      return d;
    }
    const uint64_t slot_word = cur.image.slot(static_cast<uint32_t>(idx));
    cur.taken_slot = idx;
    cur.taken_word = slot_word;

    if (slot_is_leaf(slot_word)) {
      d.leaf_addr = slot_addr(slot_word);
      if (!read_leaf(d.leaf_addr, slot_leaf_units(slot_word), &d.leaf)) {
        invalidate_inner(d.path.back().addr, d.path.back().image);
        d.status = DescendStatus::kNeedRetry;
        return d;
      }
      if (d.leaf.status() == NodeStatus::kInvalid) {
        d.status = DescendStatus::kFoundInvalidLeaf;
        return d;
      }
      if (d.leaf.key() == key.full()) {
        d.status = DescendStatus::kFoundLeaf;
        return d;
      }
      d.cpl = static_cast<uint32_t>(
          d.leaf.key().common_prefix_len(key.full()));
      d.status = DescendStatus::kLeafMismatch;
      return d;
    }

    d.path.emplace_back();
    PathEntry& child = d.path.back();
    child.addr = slot_addr(slot_word);
    child.parent_depth = depth;
    child.taken_slot = -1;
    child.taken_word = 0;
    if (!fetch_inner(child.addr, slot_child_type(slot_word), &child.image)) {
      d.path.pop_back();
      d.status = DescendStatus::kNeedRetry;
      return d;
    }
    if (child.image.type() != slot_child_type(slot_word) ||
        child.image.depth() <= depth) {
      // Stale slot (node switched or memory inconsistent): retry.
      invalidate_inner(child.addr, child.image);
      const PathEntry& parent = d.path[d.path.size() - 2];
      invalidate_inner(parent.addr, parent.image);
      d.path.pop_back();
      d.status = DescendStatus::kNeedRetry;
      return d;
    }
  }
  d.status = DescendStatus::kNeedRetry;
  return d;
}

// ---- search -----------------------------------------------------------------

bool RemoteTree::search(Slice key, std::string* value_out) {
  const TerminatedKey tkey(key);
  bool allow_custom = true;
  for (uint32_t r = 0; r < config_.max_op_retries; ++r) {
    retry_backoff(r);
    Descent& d = descend(tkey, allow_custom && r < 8);
    switch (d.status) {
      case DescendStatus::kFoundLeaf:
        if (value_out != nullptr) {
          value_out->assign(d.leaf.value().data(), d.leaf.value().size());
        }
        return true;
      case DescendStatus::kFoundInvalidLeaf:
      case DescendStatus::kNoSlot:
      case DescendStatus::kLeafMismatch:
      case DescendStatus::kFragMismatch:
        if (d.from_custom_start) {
          // A false positive or stale shortcut could have landed us in the
          // wrong subtree; re-verify from the root (paper Sec. III-B).
          stats_.start_fallbacks++;
          allow_custom = false;
          continue;
        }
        if (descent_used_cache()) {
          // SMART reverse check: an absent verdict derived from cached
          // nodes must be confirmed against remote memory.
          for (const PathEntry& e : d.path) invalidate_inner(e.addr);
          set_cache_bypass(true);
          stats_.op_retries++;
          continue;
        }
        return false;
      case DescendStatus::kNeedRetry:
        stats_.op_retries++;
        if (r >= 4) allow_custom = false;
        continue;
    }
  }
  stats_.ops_failed++;
  return false;
}

// ---- insert -----------------------------------------------------------------

RemoteTree::NewLeaf RemoteTree::make_leaf(const TerminatedKey& key,
                                          Slice value,
                                          rdma::DoorbellBatch* batch) {
  NewLeaf leaf;
  leaf.units = leaf_units_for(key.size(), static_cast<uint32_t>(value.size()));
  leaf.image = LeafImage::build(key.full(), value, leaf.units);
  const uint32_t mn = mn_for_prefix(prefix_hash(key.full()));
  leaf.addr = allocator_.alloc(mn, leaf.units * kLeafUnitBytes,
                               mem::AllocTag::kLeaf);
  batch->add_write(leaf.addr, leaf.image.buf().data(),
                   leaf.units * kLeafUnitBytes);
  return leaf;
}

bool RemoteTree::insert(Slice key, Slice value) {
  const TerminatedKey tkey(key);
  assert(leaf_units_for(tkey.size(), static_cast<uint32_t>(value.size())) <
         64);
  bool allow_custom = true;
  for (uint32_t r = 0; r < config_.max_op_retries; ++r) {
    retry_backoff(r);
    Descent& d = descend(tkey, allow_custom && r < 8);
    switch (d.status) {
      case DescendStatus::kFoundLeaf:
        return false;  // key exists; no modification
      case DescendStatus::kFoundInvalidLeaf:
        if (insert_replace_invalid_leaf(tkey, value, d)) return true;
        stats_.op_retries++;
        break;
      case DescendStatus::kNoSlot: {
        PathEntry& node = d.path.back();
        if (node.image.find_free(tkey.byte(node.image.depth())) < 0) {
          if (!type_switch(tkey, d) && d.from_custom_start) {
            // A switch needs the parent, which a shortcut descent does not
            // carry; redo the traversal from the root.
            stats_.start_fallbacks++;
            allow_custom = false;
          }
          stats_.op_retries++;
          break;
        }
        if (insert_into_free_slot(tkey, value, d)) return true;
        stats_.op_retries++;
        break;
      }
      case DescendStatus::kLeafMismatch: {
        existing_key_scratch_.assign(d.leaf.key().data(), d.leaf.key().size());
        if (insert_split(tkey, value, d, Slice(existing_key_scratch_))) {
          return true;
        }
        if (d.from_custom_start &&
            d.path.front().image.depth() > d.cpl) {
          stats_.start_fallbacks++;
          allow_custom = false;
        }
        stats_.op_retries++;
        break;
      }
      case DescendStatus::kFragMismatch: {
        const PathEntry& mismatch_node = d.path.back();
        std::string recovered;
        if (!recover_leaf_key(mismatch_node.addr, mismatch_node.image.type(),
                              &recovered)) {
          stats_.op_retries++;
          break;
        }
        d.cpl = static_cast<uint32_t>(
            Slice(recovered).common_prefix_len(tkey.full()));
        if (Slice(recovered) == tkey.full()) {
          // The key actually exists (the mismatch was a stale fragment).
          stats_.op_retries++;
          break;
        }
        if (insert_split(tkey, value, d, Slice(recovered))) return true;
        if (d.from_custom_start &&
            d.path.front().image.depth() > d.cpl) {
          stats_.start_fallbacks++;
          allow_custom = false;
        }
        stats_.op_retries++;
        break;
      }
      case DescendStatus::kNeedRetry:
        stats_.op_retries++;
        if (r >= 4) allow_custom = false;
        break;
    }
  }
  stats_.ops_failed++;
  return false;
}

bool RemoteTree::lock_node(rdma::GlobalAddr addr, uint64_t seen_header,
                           InnerImage* fresh) {
  if (header_status(seen_header) != NodeStatus::kIdle) return false;
  const uint64_t locked = with_status(seen_header, NodeStatus::kLocked);
  if (!endpoint_.cas(addr, seen_header, locked, nullptr,
                     rdma::FaultSite::kLockAcquire)) {
    stats_.lock_fail_retries++;
    invalidate_inner(addr);
    return false;
  }
  if (fresh != nullptr) {
    RemoteTree::fetch_inner(addr, header_type(seen_header), fresh);
  }
  return true;
}

void RemoteTree::unlock_node(rdma::GlobalAddr addr, uint64_t seen_header) {
  const uint64_t locked = with_status(seen_header, NodeStatus::kLocked);
  endpoint_.cas(addr, locked, with_status(seen_header, NodeStatus::kIdle));
}

bool RemoteTree::insert_into_free_slot(const TerminatedKey& key, Slice value,
                                       Descent& d) {
  PathEntry& node = d.path.back();
  const uint8_t branch = key.byte(node.image.depth());
  const uint64_t seen = node.image.header();
  if (header_status(seen) != NodeStatus::kIdle) return false;

  // One round trip: leaf payload write piggybacked with the lock CAS.
  rdma::DoorbellBatch pre(endpoint_);
  NewLeaf leaf = make_leaf(key, value, &pre);
  const uint64_t locked = with_status(seen, NodeStatus::kLocked);
  const size_t lock_idx =
      pre.add_cas(node.addr, seen, locked, rdma::FaultSite::kLockAcquire);
  pre.execute();
  if (!pre.cas_ok(lock_idx)) {
    allocator_.free(leaf.addr, leaf.units * kLeafUnitBytes,
                    mem::AllocTag::kLeaf);
    stats_.lock_fail_retries++;
    invalidate_inner(node.addr);
    return false;
  }

  // Re-read under the lock: the image from the descent may be stale.
  InnerImage fresh;
  RemoteTree::fetch_inner(node.addr, header_type(seen), &fresh);
  bool ok = false;
  const int existing = fresh.find_pkey(branch);
  const int free_idx = fresh.find_free(branch);
  if (existing < 0 && free_idx >= 0) {
    rdma::DoorbellBatch batch(endpoint_);
    const uint64_t slot_word = pack_leaf_slot(branch, leaf.units, leaf.addr);
    const size_t slot_idx = batch.add_cas(
        node.addr.plus(kInnerHeaderBytes +
                       static_cast<uint64_t>(free_idx) * 8),
        0, slot_word, rdma::FaultSite::kSlotInstall);
    batch.add_cas(node.addr, locked, seen);  // piggybacked lock release
    batch.execute();
    ok = batch.cas_ok(slot_idx);
    if (ok) {
      fresh.set_slot(static_cast<uint32_t>(free_idx), slot_word);
      fresh.set_header(seen);
      note_inner_write(node.addr, fresh);
    }
  } else {
    unlock_node(node.addr, seen);
    invalidate_inner(node.addr);  // our view of this node was stale
  }
  if (!ok) {
    allocator_.free(leaf.addr, leaf.units * kLeafUnitBytes,
                    mem::AllocTag::kLeaf);
  }
  return ok;
}

bool RemoteTree::insert_split(const TerminatedKey& key, Slice value,
                              Descent& d, Slice existing_key) {
  const uint32_t cpl = d.cpl;
  if (cpl >= key.size() || cpl >= existing_key.size()) return false;
  const uint8_t b_new = key.byte(cpl);
  const uint8_t b_old = existing_key[cpl];
  if (b_new == b_old) return false;  // inconsistent cpl; retry

  // A = deepest path node that stays above the split point and whose slot
  // leads into the splitting subtree.
  int ai = -1;
  for (int i = static_cast<int>(d.path.size()) - 1; i >= 0; --i) {
    if (d.path[static_cast<size_t>(i)].taken_slot >= 0 &&
        d.path[static_cast<size_t>(i)].image.depth() <= cpl) {
      ai = i;
      break;
    }
  }
  if (ai < 0) return false;  // split point above our descent start
  PathEntry& parent = d.path[static_cast<size_t>(ai)];
  const uint64_t child_word = parent.taken_word;
  const uint64_t seen = parent.image.header();
  if (header_status(seen) != NodeStatus::kIdle) return false;

  // Build the new inner node M with the two children.
  const NodeType mtype = new_inner_type();
  InnerImage m = InnerImage::create(mtype, key.prefix(cpl));
  const uint32_t m_bytes = inner_alloc_bytes(mtype);
  const uint32_t m_mn = mn_for_prefix(m.prefix_hash_full());
  rdma::GlobalAddr m_addr =
      allocator_.alloc(m_mn, m_bytes, mem::AllocTag::kInnerNode);

  // One round trip: leaf write + M write + parent lock CAS.
  rdma::DoorbellBatch pre(endpoint_);
  NewLeaf leaf = make_leaf(key, value, &pre);
  const uint64_t leaf_slot = pack_leaf_slot(b_new, leaf.units, leaf.addr);
  const uint64_t moved_slot = slot_with_pkey(child_word, b_old);
  if (mtype == NodeType::kN256) {
    m.set_slot(b_new, leaf_slot);
    m.set_slot(b_old, moved_slot);
  } else {
    m.set_slot(0, leaf_slot);
    m.set_slot(1, moved_slot);
  }
  pre.add_write(m_addr, m.raw(), m_bytes);
  const uint64_t locked = with_status(seen, NodeStatus::kLocked);
  const size_t lock_idx =
      pre.add_cas(parent.addr, seen, locked, rdma::FaultSite::kLockAcquire);
  pre.execute();

  auto release_allocs = [&] {
    allocator_.free(leaf.addr, leaf.units * kLeafUnitBytes,
                    mem::AllocTag::kLeaf);
    allocator_.free(m_addr, m_bytes, mem::AllocTag::kInnerNode);
  };

  if (!pre.cas_ok(lock_idx)) {
    release_allocs();
    stats_.lock_fail_retries++;
    invalidate_inner(parent.addr);
    return false;
  }

  InnerImage fresh;
  RemoteTree::fetch_inner(parent.addr, header_type(seen), &fresh);
  const uint8_t parent_branch = key.byte(parent.image.depth());
  const int idx = fresh.find_pkey(parent_branch);
  if (idx < 0 || fresh.slot(static_cast<uint32_t>(idx)) != child_word) {
    unlock_node(parent.addr, seen);
    invalidate_inner(parent.addr);  // stale view of the parent
    release_allocs();
    return false;
  }

  rdma::DoorbellBatch batch(endpoint_);
  const uint64_t m_slot = pack_inner_slot(parent_branch, mtype, m_addr);
  const size_t cas_idx = batch.add_cas(
      parent.addr.plus(kInnerHeaderBytes + static_cast<uint64_t>(idx) * 8),
      child_word, m_slot, rdma::FaultSite::kSlotInstall);
  batch.add_cas(parent.addr, locked, seen);
  batch.execute();
  if (!batch.cas_ok(cas_idx)) {
    release_allocs();
    return false;
  }

  fresh.set_slot(static_cast<uint32_t>(idx), m_slot);
  fresh.set_header(seen);
  note_inner_write(parent.addr, fresh);
  note_inner_write(m_addr, m);
  on_inner_created(key.prefix(cpl), m, m_addr);
  stats_.splits++;
  return true;
}

bool RemoteTree::insert_replace_invalid_leaf(const TerminatedKey& key,
                                             Slice value, Descent& d) {
  PathEntry& node = d.path.back();
  const uint8_t branch = key.byte(node.image.depth());
  const uint64_t seen = node.image.header();
  if (header_status(seen) != NodeStatus::kIdle) return false;

  rdma::DoorbellBatch pre(endpoint_);
  NewLeaf leaf = make_leaf(key, value, &pre);
  const uint64_t locked = with_status(seen, NodeStatus::kLocked);
  const size_t lock_idx =
      pre.add_cas(node.addr, seen, locked, rdma::FaultSite::kLockAcquire);
  pre.execute();
  if (!pre.cas_ok(lock_idx)) {
    allocator_.free(leaf.addr, leaf.units * kLeafUnitBytes,
                    mem::AllocTag::kLeaf);
    stats_.lock_fail_retries++;
    return false;
  }

  InnerImage fresh;
  RemoteTree::fetch_inner(node.addr, header_type(seen), &fresh);
  const int idx = fresh.find_pkey(branch);
  bool ok = false;
  if (idx >= 0 &&
      fresh.slot(static_cast<uint32_t>(idx)) == node.taken_word) {
    rdma::DoorbellBatch batch(endpoint_);
    const uint64_t slot_word = pack_leaf_slot(branch, leaf.units, leaf.addr);
    const size_t cas_idx = batch.add_cas(
        node.addr.plus(kInnerHeaderBytes + static_cast<uint64_t>(idx) * 8),
        node.taken_word, slot_word, rdma::FaultSite::kSlotInstall);
    batch.add_cas(node.addr, locked, seen);
    batch.execute();
    ok = batch.cas_ok(cas_idx);
    if (ok) {
      fresh.set_slot(static_cast<uint32_t>(idx), slot_word);
      fresh.set_header(seen);
      note_inner_write(node.addr, fresh);
      // The dead leaf's storage is retired (accounting only; memory is not
      // reused to keep stale readers safe -- see DESIGN.md).
      cluster_.alloc_stats().sub(
          mem::AllocTag::kLeaf,
          static_cast<uint64_t>(slot_leaf_units(node.taken_word)) *
              kLeafUnitBytes,
          static_cast<uint64_t>(slot_leaf_units(node.taken_word)) *
              kLeafUnitBytes);
    }
  } else {
    unlock_node(node.addr, seen);
  }
  if (!ok) {
    allocator_.free(leaf.addr, leaf.units * kLeafUnitBytes,
                    mem::AllocTag::kLeaf);
  }
  return ok;
}

bool RemoteTree::type_switch(const TerminatedKey& key, Descent& d) {
  if (d.path.size() < 2) return false;  // the root (N256) never fills up
  PathEntry& node = d.path.back();
  PathEntry& parent = d.path[d.path.size() - 2];
  const uint64_t seen_n = node.image.header();
  if (header_status(seen_n) != NodeStatus::kIdle) return false;

  InnerImage fresh_n;
  if (!lock_node(node.addr, seen_n, &fresh_n)) return false;

  if (fresh_n.find_free(key.byte(fresh_n.depth())) >= 0) {
    unlock_node(node.addr, seen_n);  // room appeared; plain insert will do
    return false;
  }
  const NodeType new_type = next_node_type(fresh_n.type());
  if (new_type == fresh_n.type()) {
    unlock_node(node.addr, seen_n);
    return false;
  }

  InnerImage grown = fresh_n.grown_copy(new_type);
  const uint32_t grown_bytes = inner_alloc_bytes(new_type);
  rdma::GlobalAddr grown_addr = allocator_.alloc(
      node.addr.mn(), grown_bytes, mem::AllocTag::kInnerNode);

  // One round trip: write the replacement + lock the parent.
  const uint64_t seen_p = parent.image.header();
  if (header_status(seen_p) != NodeStatus::kIdle) {
    unlock_node(node.addr, seen_n);
    allocator_.free(grown_addr, grown_bytes, mem::AllocTag::kInnerNode);
    return false;
  }
  const uint64_t locked_p = with_status(seen_p, NodeStatus::kLocked);
  rdma::DoorbellBatch pre(endpoint_);
  pre.add_write(grown_addr, grown.raw(), grown_bytes);
  const size_t lock_idx = pre.add_cas(parent.addr, seen_p, locked_p,
                                      rdma::FaultSite::kLockAcquire);
  pre.execute();
  if (!pre.cas_ok(lock_idx)) {
    unlock_node(node.addr, seen_n);
    allocator_.free(grown_addr, grown_bytes, mem::AllocTag::kInnerNode);
    stats_.lock_fail_retries++;
    invalidate_inner(parent.addr);
    return false;
  }

  InnerImage fresh_p;
  RemoteTree::fetch_inner(parent.addr, header_type(seen_p), &fresh_p);
  const uint8_t parent_branch = key.byte(parent.image.depth());
  const int idx = fresh_p.find_pkey(parent_branch);
  if (idx < 0 ||
      fresh_p.slot(static_cast<uint32_t>(idx)) != parent.taken_word) {
    unlock_node(parent.addr, seen_p);
    unlock_node(node.addr, seen_n);
    allocator_.free(grown_addr, grown_bytes, mem::AllocTag::kInnerNode);
    return false;
  }

  rdma::DoorbellBatch batch(endpoint_);
  const uint64_t new_slot = pack_inner_slot(parent_branch, new_type,
                                            grown_addr);
  const size_t cas_idx = batch.add_cas(
      parent.addr.plus(kInnerHeaderBytes + static_cast<uint64_t>(idx) * 8),
      parent.taken_word, new_slot, rdma::FaultSite::kSlotInstall);
  batch.add_cas(parent.addr, locked_p, seen_p);
  batch.execute();
  if (!batch.cas_ok(cas_idx)) {
    unlock_node(node.addr, seen_n);
    allocator_.free(grown_addr, grown_bytes, mem::AllocTag::kInnerNode);
    return false;
  }

  // Retire the old node: Invalid status sends late arrivals into a retry.
  // Its memory is intentionally not reused (stale readers may still fetch
  // it); only the accounting is released.
  endpoint_.write64(node.addr, with_status(seen_n, NodeStatus::kInvalid));
  cluster_.alloc_stats().sub(mem::AllocTag::kInnerNode,
                             inner_alloc_bytes(fresh_n.type()),
                             inner_alloc_bytes(fresh_n.type()));

  fresh_p.set_slot(static_cast<uint32_t>(idx), new_slot);
  fresh_p.set_header(seen_p);
  note_inner_write(parent.addr, fresh_p);
  note_inner_write(grown_addr, grown);
  invalidate_inner(node.addr, fresh_n);
  on_inner_switched(fresh_n, node.addr, grown, grown_addr);
  stats_.type_switches++;
  return true;
}

bool RemoteTree::recover_leaf_key(rdma::GlobalAddr addr, NodeType type,
                                  std::string* key_out) {
  InnerImage node;
  for (uint32_t level = 0; level < kMaxKeyLen; ++level) {
    if (!fetch_inner(addr, type, &node)) return false;
    if (node.status() == NodeStatus::kInvalid || node.type() != type) {
      return false;
    }
    uint64_t chosen = 0;
    const uint32_t cap = node.capacity();
    for (uint32_t i = 0; i < cap; ++i) {
      if (slot_valid(node.slot(i))) {
        chosen = node.slot(i);
        break;
      }
    }
    if (chosen == 0) return false;
    if (slot_is_leaf(chosen)) {
      LeafImage leaf;
      if (!read_leaf(slot_addr(chosen), slot_leaf_units(chosen), &leaf)) {
        return false;
      }
      // Invalid (deleted) leaves still carry their key, which is all the
      // prefix recovery needs.
      key_out->assign(leaf.key().data(), leaf.key().size());
      return true;
    }
    addr = slot_addr(chosen);
    type = slot_child_type(chosen);
  }
  return false;
}

// ---- update -----------------------------------------------------------------

bool RemoteTree::update(Slice key, Slice value) {
  const TerminatedKey tkey(key);
  bool allow_custom = true;
  for (uint32_t r = 0; r < config_.max_op_retries; ++r) {
    retry_backoff(r);
    Descent& d = descend(tkey, allow_custom && r < 8);
    switch (d.status) {
      case DescendStatus::kFoundLeaf: {
        const uint64_t seen = d.leaf.header();
        if (d.leaf.status() != NodeStatus::kIdle) {
          stats_.op_retries++;
          continue;  // another writer holds the leaf
        }
        const uint32_t needed = leaf_units_for(
            d.leaf.key_len(), static_cast<uint32_t>(value.size()));
        if (needed <= d.leaf.units()) {
          // In-place: lock CAS, then one WRITE carrying the new value, the
          // Idle status and the fresh checksum (combined release+write).
          const uint64_t locked = with_status(seen, NodeStatus::kLocked);
          if (!endpoint_.cas(d.leaf_addr, seen, locked, nullptr,
                             rdma::FaultSite::kLockAcquire)) {
            stats_.lock_fail_retries++;
            continue;
          }
          LeafImage img = d.leaf;
          img.replace_value(value);
          // Publish body first, header (with the Idle status that releases
          // the lock) last, in one doorbell batch: a competing writer's
          // lock CAS cannot succeed until the complete image is visible,
          // so two in-place updates never interleave their writes.
          rdma::DoorbellBatch publish(endpoint_);
          publish.add_write(d.leaf_addr.plus(8), img.buf().data() + 8,
                            img.buf().size() - 8);
          publish.add_write(d.leaf_addr, img.buf().data(), 8);
          publish.execute();
          return true;
        }
        // Out-of-place: lock the old leaf (blocks in-place updaters), then
        // swap the parent slot to a bigger leaf.
        const uint64_t locked = with_status(seen, NodeStatus::kLocked);
        if (!endpoint_.cas(d.leaf_addr, seen, locked, nullptr,
                           rdma::FaultSite::kLockAcquire)) {
          stats_.lock_fail_retries++;
          continue;
        }
        PathEntry& parent = d.path.back();
        const uint64_t seen_p = parent.image.header();
        bool done = false;
        if (header_status(seen_p) == NodeStatus::kIdle) {
          rdma::DoorbellBatch pre(endpoint_);
          NewLeaf leaf = make_leaf(tkey, value, &pre);
          const uint64_t locked_p = with_status(seen_p, NodeStatus::kLocked);
          const size_t lock_idx = pre.add_cas(parent.addr, seen_p, locked_p,
                                      rdma::FaultSite::kLockAcquire);
          pre.execute();
          if (pre.cas_ok(lock_idx)) {
            InnerImage fresh;
            RemoteTree::fetch_inner(parent.addr, header_type(seen_p), &fresh);
            const uint8_t branch = tkey.byte(parent.image.depth());
            const int idx = fresh.find_pkey(branch);
            if (idx >= 0 &&
                fresh.slot(static_cast<uint32_t>(idx)) == parent.taken_word) {
              rdma::DoorbellBatch batch(endpoint_);
              const uint64_t new_slot =
                  pack_leaf_slot(branch, leaf.units, leaf.addr);
              const size_t cas_idx = batch.add_cas(
                  parent.addr.plus(kInnerHeaderBytes +
                                   static_cast<uint64_t>(idx) * 8),
                  parent.taken_word, new_slot,
                  rdma::FaultSite::kSlotInstall);
              batch.add_cas(parent.addr, locked_p, seen_p);
              batch.execute();
              done = batch.cas_ok(cas_idx);
              if (done) {
                fresh.set_slot(static_cast<uint32_t>(idx), new_slot);
                fresh.set_header(seen_p);
                note_inner_write(parent.addr, fresh);
              }
            } else {
              unlock_node(parent.addr, seen_p);
            }
          } else {
            stats_.lock_fail_retries++;
          }
          if (!done) {
            allocator_.free(leaf.addr, leaf.units * kLeafUnitBytes,
                            mem::AllocTag::kLeaf);
          }
        }
        if (done) {
          // Old leaf: Locked -> Invalid; storage retired (not reused).
          endpoint_.write64(d.leaf_addr,
                            with_status(seen, NodeStatus::kInvalid));
          cluster_.alloc_stats().sub(
              mem::AllocTag::kLeaf,
              static_cast<uint64_t>(d.leaf.units()) * kLeafUnitBytes,
              static_cast<uint64_t>(d.leaf.units()) * kLeafUnitBytes);
          return true;
        }
        // Release the leaf lock and retry.
        endpoint_.cas(d.leaf_addr, locked, seen);
        stats_.op_retries++;
        continue;
      }
      case DescendStatus::kFoundInvalidLeaf:
      case DescendStatus::kNoSlot:
      case DescendStatus::kLeafMismatch:
      case DescendStatus::kFragMismatch:
        if (d.from_custom_start) {
          stats_.start_fallbacks++;
          allow_custom = false;
          continue;
        }
        if (descent_used_cache()) {
          for (const PathEntry& e : d.path) invalidate_inner(e.addr);
          set_cache_bypass(true);
          stats_.op_retries++;
          continue;
        }
        return false;
      case DescendStatus::kNeedRetry:
        stats_.op_retries++;
        if (r >= 4) allow_custom = false;
        continue;
    }
  }
  stats_.ops_failed++;
  return false;
}

// ---- remove -----------------------------------------------------------------

bool RemoteTree::remove(Slice key) {
  const TerminatedKey tkey(key);
  bool allow_custom = true;
  for (uint32_t r = 0; r < config_.max_op_retries; ++r) {
    retry_backoff(r);
    Descent& d = descend(tkey, allow_custom && r < 8);
    switch (d.status) {
      case DescendStatus::kFoundLeaf: {
        const uint64_t seen = d.leaf.header();
        if (d.leaf.status() != NodeStatus::kIdle) {
          stats_.op_retries++;
          continue;
        }
        // Idle -> Invalid is the linearization point (Sec. IV, Delete).
        if (!endpoint_.cas(d.leaf_addr, seen,
                           with_status(seen, NodeStatus::kInvalid), nullptr,
                           rdma::FaultSite::kLockAcquire)) {
          stats_.op_retries++;
          continue;
        }
        // Best-effort slot cleanup under the parent lock; a leftover slot
        // pointing at an Invalid leaf reads as absent everywhere.
        PathEntry& parent = d.path.back();
        const uint64_t seen_p = parent.image.header();
        if (header_status(seen_p) == NodeStatus::kIdle &&
            lock_node(parent.addr, seen_p, nullptr)) {
          const uint64_t locked_p = with_status(seen_p, NodeStatus::kLocked);
          InnerImage fresh;
          RemoteTree::fetch_inner(parent.addr, header_type(seen_p), &fresh);
          const uint8_t branch = tkey.byte(parent.image.depth());
          const int idx = fresh.find_pkey(branch);
          if (idx >= 0 &&
              fresh.slot(static_cast<uint32_t>(idx)) == parent.taken_word) {
            rdma::DoorbellBatch batch(endpoint_);
            batch.add_cas(parent.addr.plus(
                              kInnerHeaderBytes +
                              static_cast<uint64_t>(idx) * 8),
                          parent.taken_word, 0);
            batch.add_cas(parent.addr, locked_p, seen_p);
            batch.execute();
            fresh.set_slot(static_cast<uint32_t>(idx), 0);
            fresh.set_header(seen_p);
            note_inner_write(parent.addr, fresh);
          } else {
            unlock_node(parent.addr, seen_p);
          }
        }
        cluster_.alloc_stats().sub(
            mem::AllocTag::kLeaf,
            static_cast<uint64_t>(d.leaf.units()) * kLeafUnitBytes,
            static_cast<uint64_t>(d.leaf.units()) * kLeafUnitBytes);
        return true;
      }
      case DescendStatus::kFoundInvalidLeaf:
      case DescendStatus::kNoSlot:
      case DescendStatus::kLeafMismatch:
      case DescendStatus::kFragMismatch:
        if (d.from_custom_start) {
          stats_.start_fallbacks++;
          allow_custom = false;
          continue;
        }
        if (descent_used_cache()) {
          for (const PathEntry& e : d.path) invalidate_inner(e.addr);
          set_cache_bypass(true);
          stats_.op_retries++;
          continue;
        }
        return false;
      case DescendStatus::kNeedRetry:
        stats_.op_retries++;
        if (r >= 4) allow_custom = false;
        continue;
    }
  }
  stats_.ops_failed++;
  return false;
}

// ---- scan -------------------------------------------------------------------

size_t RemoteTree::scan(Slice start_key, size_t count,
                        std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  if (count == 0) return 0;
  const TerminatedKey bound(start_key);
  InnerImage root;
  if (!fetch_inner(ref_.root, NodeType::kN256, &root)) return 0;
  scan_node(root, bound, /*bounded=*/true, count, /*high=*/nullptr, out,
            kMaxKeyLen);
  return out->size();
}

size_t RemoteTree::scan_range(
    Slice low_key, Slice high_key, size_t max_results,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  if (max_results == 0 || high_key.compare(low_key) < 0) return 0;
  const TerminatedKey low(low_key);
  const TerminatedKey high(high_key);
  InnerImage root;
  if (!fetch_inner(ref_.root, NodeType::kN256, &root)) return 0;
  scan_node(root, low, /*bounded=*/true, max_results, &high, out,
            kMaxKeyLen);
  return out->size();
}

bool RemoteTree::scan_node(
    const InnerImage& node, const TerminatedKey& bound, bool bounded,
    size_t count, const TerminatedKey* high,
    std::vector<std::pair<std::string, std::string>>* out,
    uint32_t depth_budget) {
  if (depth_budget == 0) return out->size() >= count;
  endpoint_.advance_local(
      config_.local_ns_per_node +
      static_cast<uint64_t>(node.size_bytes() / config_.cpu_bytes_per_ns));

  const uint32_t depth = node.depth();
  if (bounded && depth >= bound.size()) bounded = false;
  const uint8_t bound_byte = bounded ? bound.byte(depth) : 0;

  std::vector<uint64_t> slots;
  node.sorted_slots(slots);

  // Children we will visit, in key order.
  std::vector<uint64_t> visit;
  visit.reserve(slots.size());
  for (uint64_t s : slots) {
    if (bounded && slot_pkey(s) < bound_byte) continue;
    visit.push_back(s);
  }
  if (visit.empty()) return out->size() >= count;

  // Children are prefetched in doorbell-batched chunks (Sphinx/SMART).
  // Chunking policy: a chunk is a run of consecutive *leaf* children
  // (cheap, and the scan will consume them anyway, so prefetching a run in
  // one round trip is pure win), optionally terminated by one *inner*
  // child fetched in the same round trip. Inner children never ride ahead
  // of need: each subtree usually satisfies the remaining count by itself,
  // so speculatively reading sibling subtree roots (up to 2 KiB each) would
  // waste bandwidth -- exactly the boundary-descent waste the paper's ART
  // avoids by being sequential and Sphinx avoids by batching only runs it
  // needs. The ART baseline reads sequentially, one round trip per child.
  constexpr size_t kScanFanout = 32;
  const size_t buf_count =
      config_.batched_scan ? std::min(visit.size(), kScanFanout) : 1;
  std::vector<InnerImage> inners(buf_count);
  std::vector<LeafImage> leaves(buf_count);
  size_t chunk_base = 0;
  size_t chunk_end = 0;  // nothing prefetched yet

  for (size_t i = 0; i < visit.size(); ++i) {
    if (config_.batched_scan && i >= chunk_end) {
      chunk_base = i;
      const size_t needed = count > out->size() ? count - out->size() : 1;
      size_t j = i;
      size_t taken_leaves = 0;
      while (j < visit.size() && j - i < kScanFanout) {
        if (slot_is_leaf(visit[j])) {
          if (taken_leaves >= needed) break;
          taken_leaves++;
          ++j;
        } else {
          ++j;  // include this inner child, then stop the chunk
          break;
        }
      }
      chunk_end = std::max(j, i + 1);
      rdma::DoorbellBatch batch(endpoint_);
      for (size_t k = chunk_base; k < chunk_end; ++k) {
        const uint64_t cs = visit[k];
        if (slot_is_leaf(cs)) {
          leaves[k - chunk_base].resize(slot_leaf_units(cs));
          batch.add_read(slot_addr(cs), leaves[k - chunk_base].buf().data(),
                         leaves[k - chunk_base].buf().size());
        } else {
          batch.add_read(slot_addr(cs), inners[k - chunk_base].raw(),
                         inner_node_bytes(slot_child_type(cs)));
        }
      }
      batch.execute();
    }
    const size_t b = config_.batched_scan ? i - chunk_base : 0;
    const uint64_t s = visit[i];
    const bool child_bounded = bounded && slot_pkey(s) == bound_byte;
    if (slot_is_leaf(s)) {
      if (!config_.batched_scan) {
        if (!read_leaf(slot_addr(s), slot_leaf_units(s), &leaves[b])) continue;
      } else if (!leaves[b].checksum_ok()) {
        // Torn under the batched read; re-fetch once.
        if (!read_leaf(slot_addr(s), slot_leaf_units(s), &leaves[b])) continue;
      }
      const LeafImage& leaf = leaves[b];
      if (leaf.status() == NodeStatus::kInvalid) continue;
      if (child_bounded && leaf.key().compare(bound.full()) < 0) continue;
      // In-order walk: the first leaf beyond the upper bound ends a
      // Scan(K1, K2) (terminated keys compare in user-key order).
      if (high != nullptr && leaf.key().compare(high->full()) > 0) {
        return true;
      }
      const Slice k = leaf.key();
      out->emplace_back(std::string(k.data(), k.size() - 1),  // drop NUL
                        leaf.value().to_string());
      if (out->size() >= count) return true;
    } else {
      if (!config_.batched_scan) {
        if (!fetch_inner(slot_addr(s), slot_child_type(s), &inners[b])) {
          continue;
        }
      }
      const InnerImage& child = inners[b];
      if (child.status() == NodeStatus::kInvalid ||
          child.type() != slot_child_type(s) || child.depth() <= depth) {
        // Stale pointer mid-scan; re-fetch once, else skip the subtree.
        InnerImage retry;
        if (!fetch_inner(slot_addr(s), slot_child_type(s), &retry) ||
            retry.status() == NodeStatus::kInvalid ||
            retry.depth() <= depth) {
          continue;
        }
        if (scan_node(retry, bound, child_bounded, count, high, out,
                      depth_budget - 1)) {
          return true;
        }
        continue;
      }
      if (scan_node(child, bound, child_bounded, count, high, out,
                    depth_budget - 1)) {
        return true;
      }
    }
  }
  return out->size() >= count;
}

}  // namespace sphinx::art
