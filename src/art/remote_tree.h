// RemoteTree: the adaptive-radix-tree engine over one-sided RDMA verbs that
// the ART baseline, SMART and Sphinx all share. Subclasses customize it
// through protected hooks:
//
//   * find_start()        -- Sphinx jumps to the deepest inner node via the
//                            succinct filter cache + inner node hash table
//                            instead of starting at the root;
//   * fetch_inner()       -- SMART interposes its CN-side node cache;
//   * on_inner_created()/on_inner_switched() -- Sphinx keeps the INHT and
//                            filter cache in sync with structural changes;
//   * on_visit_inner()    -- Sphinx learns prefixes for its filter cache.
//
// Concurrency protocol (paper Sec. III-C):
//   * reads are lock-free; leaf reads validate a CRC32C and retry on tears;
//   * all slot mutations in a node require holding that node's lock
//     (header CAS Idle -> Locked);
//   * node type switches build the replacement, install it in the parent
//     under the parent's lock, then mark the old node Invalid so clients
//     arriving through stale pointers retry;
//   * in-place leaf updates lock the leaf with one CAS, then publish value,
//     Idle status and fresh checksum with a single WRITE (the paper's
//     combined release+write);
//   * lock acquisition/release piggybacks on payload writes via doorbell
//     batches wherever possible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "art/node_image.h"
#include "common/kv_index.h"
#include "memnode/cluster.h"
#include "memnode/remote_allocator.h"
#include "rdma/endpoint.h"
#include "rdma/retry_policy.h"

namespace sphinx::art {

struct TreeConfig {
  // Read children of a node in one doorbell batch during scans (the paper's
  // Fig. 4E attributes the ART baseline's scan deficit to lacking this).
  bool batched_scan = true;
  // SMART mode: every inner node uses the Node-256 layout regardless of
  // fanout, eliminating type switches at a 2-3x MN memory cost (Fig. 6).
  bool homogeneous_nodes = false;
  // Spread root reads across the per-MN root replicas (TreeRef.root_replicas)
  // round-robin. Every op descends through the root, so without this the
  // primary root's MN NIC is the whole tree's front door and gates the
  // saturation knee (see DESIGN.md Sec. 15). Only an op's FIRST attempt may
  // enter via a replica; retries and the reverse check of any
  // replica-derived "absent" verdict go through the primary, and all
  // mutations CAS the primary regardless of entry point, so a lagging
  // replica can cost round trips but never correctness. SMART turns this
  // off: its NodeCache already fronts the (address-keyed) primary root, and
  // replica addresses would bypass that cache instead of filling it.
  bool replicate_root = true;
  // Enter scans through find_scan_start() (Sphinx: SFC/PEC/INHT jump to the
  // deepest inner node covering the range) instead of a root descent.
  // bench_ycsb's --no-scan-jump A/B flag lands here.
  bool scan_jump = true;
  // Reuse a validated cached image of the immutable kN256 root for scan
  // entries: the frontier is seeded from the cached copy and a fresh root
  // read rides the first frontier batch (re-seeding on mismatch), so a
  // root-entry scan costs no standalone root round trip. Baselines that
  // model systems without this (plain ART) or that already front the root
  // with their own cache (SMART) turn it off.
  bool cache_scan_root = true;
  uint32_t max_op_retries = 256;
  uint32_t max_leaf_reread = 8;
  // Backoff pacing between op retries (the budget is max_op_retries).
  rdma::RetryPolicyConfig retry;
  // CPU charge for parsing/processing one node (fetched or cache-hit),
  // plus a per-byte term (copy + parse bandwidth): processing a 2 KiB
  // Node-256 image costs real CN cycles that a 56 B Node-4 does not.
  uint64_t local_ns_per_node = 60;
  double cpu_bytes_per_ns = 10.0;
};

struct TreeStats {
  uint64_t op_retries = 0;
  uint64_t lock_fail_retries = 0;
  uint64_t type_switches = 0;
  uint64_t splits = 0;           // new inner node spliced in
  uint64_t torn_leaf_rereads = 0;
  uint64_t invalid_node_retries = 0;
  uint64_t start_fallbacks = 0;  // custom start abandoned for root descent
  uint64_t ops_failed = 0;       // retries exhausted (should stay 0)
  // Mutations abandoned because the MN heap was exhausted even after
  // reclamation (degraded mode, not a crash; see remote_allocator.h).
  uint64_t alloc_degraded_ops = 0;
  // Root-replica routing (TreeConfig::replicate_root): descents entered via
  // a replica vs the primary, root-slot words propagated to the replicas
  // under the root lock, and "absent" verdicts derived from a replica image
  // that were re-verified with a primary descent (the replica analogue of
  // SMART's reverse check -- nonzero only when a replica lagged).
  uint64_t root_replica_reads = 0;
  uint64_t root_primary_reads = 0;
  uint64_t root_replica_propagations = 0;
  uint64_t root_replica_rechecks = 0;
  rdma::RecoveryStats recovery;  // lease expiries / reclaims / timeouts
  rdma::BackoffHistogram backoff;
  rdma::ScanStats scan;          // frontier-scan engine counters
};

// Bootstrap info for one tree. The root is a Node-256 with empty prefix;
// it never type-switches and is never invalidated.
struct TreeRef {
  rdma::GlobalAddr root;
  // One root copy per MN (the primary's MN holds `root` itself). Readers
  // round-robin across these to keep the root from pinning one MN's NIC;
  // writers CAS only the primary and push winning slot words to the
  // replicas while holding the root lock. Empty on trees created before
  // replication (or with replicate_root off): everything falls back to
  // the primary.
  std::vector<rdma::GlobalAddr> root_replicas;
};

// Allocates and initializes an empty tree with a root replica on every MN.
TreeRef create_tree(mem::Cluster& cluster);

class RemoteTree : public KvIndex {
 public:
  RemoteTree(mem::Cluster& cluster, rdma::Endpoint& endpoint,
             mem::RemoteAllocator& allocator, const TreeRef& ref,
             const TreeConfig& config);

  bool search(Slice key, std::string* value_out) override;
  bool insert(Slice key, Slice value) override;
  bool update(Slice key, Slice value) override;
  bool remove(Slice key) override;
  size_t scan(Slice start_key, size_t count,
              std::vector<std::pair<std::string, std::string>>* out) override;
  size_t scan_range(
      Slice low_key, Slice high_key, size_t max_results,
      std::vector<std::pair<std::string, std::string>>* out) override;
  bool last_scan_truncated() const override { return last_scan_truncated_; }
  const char* name() const override { return "art"; }

  const TreeStats& tree_stats() const { return stats_; }
  rdma::Endpoint& endpoint() { return endpoint_; }
  // Batch completion stamps ride the owning endpoint's virtual clock.
  uint64_t client_clock_ns() const override { return endpoint_.clock_ns(); }

 protected:
  struct PathEntry {
    rdma::GlobalAddr addr;
    InnerImage image;
    uint32_t parent_depth = 0;  // depth of the node we came from
    int taken_slot = -1;        // slot index we descended through
    uint64_t taken_word = 0;    // that slot's word as we saw it
  };

  enum class DescendStatus {
    kFoundLeaf,         // leaf with exactly the target key
    kFoundInvalidLeaf,  // slot points at a deleted (Invalid) leaf
    kNoSlot,            // deepest node has no child for the branch byte
    kLeafMismatch,      // reached a leaf holding a different key
    kFragMismatch,      // definite prefix mismatch inside a fragment window
    kNeedRetry,         // transient anomaly (invalid node, torn leaf, ...)
    kTimedOut,          // per-op retry budget exhausted (RetryPolicy)
  };

  struct Descent {
    DescendStatus status = DescendStatus::kNeedRetry;
    bool from_custom_start = false;
    // Root image came from a replica, not the primary. An "absent" verdict
    // from such a descent must be confirmed by a primary descent before the
    // op may report a miss (the replica may lag the primary by one
    // propagation; see TreeConfig::replicate_root).
    bool used_replica_root = false;
    std::vector<PathEntry> path;  // start .. deepest inner node reached
    LeafImage leaf;               // for kFoundLeaf / kLeafMismatch /
                                  // kFoundInvalidLeaf
    rdma::GlobalAddr leaf_addr;
    uint32_t cpl = 0;             // common prefix len for kLeafMismatch
  };

  // ---- subclass hooks -------------------------------------------------------

  // Provides a verified descent start deeper than the root. Returns false
  // to start at the root. `out->image` must be a validated, fetched node
  // whose full prefix is a prefix of `key`.
  virtual bool find_start(const TerminatedKey& key, PathEntry* out) {
    (void)key;
    (void)out;
    return false;
  }

  // Scan-entry variant of find_start: a verified node whose full prefix is
  // a prefix of `key` AND whose depth is <= max_depth, so the node's
  // subtree covers the whole remaining scan window (for a range scan,
  // max_depth is the low/high common prefix; for a count scan it shrinks
  // by one on every widen-and-resume). Returns false to enter at the root.
  virtual bool find_scan_start(const TerminatedKey& key, uint32_t max_depth,
                               PathEntry* out) {
    (void)key;
    (void)max_depth;
    (void)out;
    return false;
  }

  // An inner node (depth > 0) the scan frontier expanded; a verified image
  // fetched from remote memory (Sphinx feeds its filter cache + prefix
  // entry cache so later scans of nearby ranges can jump).
  virtual void on_scan_inner(rdma::GlobalAddr addr, const InnerImage& image) {
    (void)addr;
    (void)image;
  }

  // Called for every inner node traversed during a descent.
  virtual void on_visit_inner(const TerminatedKey& key,
                              const PathEntry& entry) {
    (void)key;
    (void)entry;
  }

  // A new inner node (from a split) became reachable.
  virtual void on_inner_created(Slice full_prefix, const InnerImage& image,
                                rdma::GlobalAddr addr) {
    (void)full_prefix;
    (void)image;
    (void)addr;
  }

  // `old_addr` was replaced by `new_addr` (type switch); old node is now
  // Invalid. Both share the same full prefix / prefix hash.
  virtual void on_inner_switched(const InnerImage& old_image,
                                 rdma::GlobalAddr old_addr,
                                 const InnerImage& new_image,
                                 rdma::GlobalAddr new_addr) {
    (void)old_image;
    (void)old_addr;
    (void)new_image;
    (void)new_addr;
  }

  // A leaf whose exact location this client just verified: `terminated_key`
  // (with its NUL) lives in the `units`-unit block at `addr`. Fired on
  // every successful point read, every write-side leaf install (insert,
  // in-place and out-of-place update) and every scan leaf emit -- i.e.
  // whenever the binding was proven fresh against remote memory. Sphinx
  // feeds its leaf address cache so the next point read of the key can go
  // straight to the block.
  virtual void note_leaf_at(Slice terminated_key, rdma::GlobalAddr addr,
                            uint32_t units) {
    (void)terminated_key;
    (void)addr;
    (void)units;
  }

  // The leaf at `addr` holding `terminated_key` was retired (remove's
  // Idle -> Invalid CAS -- the delete's linearization point). Out-of-place
  // updates do not fire this: their note_leaf_at with the new address
  // replaces the binding in one step.
  virtual void note_leaf_retired(Slice terminated_key, rdma::GlobalAddr addr) {
    (void)terminated_key;
    (void)addr;
  }

  // Fetches an inner node of (claimed) type `type`. Default: one RDMA READ.
  virtual bool fetch_inner(rdma::GlobalAddr addr, NodeType type,
                           InnerImage* out);

  // A write this client performed on an inner node (cache fill hint).
  virtual void note_inner_write(rdma::GlobalAddr addr,
                                const InnerImage& image) {
    (void)addr;
    (void)image;
  }

  // A node observed to be stale/invalid (cache eviction hint).
  virtual void invalidate_inner(rdma::GlobalAddr addr) { (void)addr; }

  // Same, for call sites that still hold the stale node's image (Sphinx
  // purges its prefix entry cache by the image's prefix hash). Defaults to
  // the address-only hook so existing overrides keep working.
  virtual void invalidate_inner(rdma::GlobalAddr addr,
                                const InnerImage& image) {
    (void)image;
    invalidate_inner(addr);
  }

  // Caching-subclass coordination: descend() calls begin_descend() before
  // its first fetch; a subclass reports through descent_used_cache()
  // whether any node image came from a local cache, in which case a
  // conclusive "absent" verdict is re-checked remotely (SMART's reverse
  // check). set_cache_bypass(true) forces the next fetches to go remote.
  virtual void begin_descend() {}
  virtual bool descent_used_cache() const { return false; }
  virtual void set_cache_bypass(bool bypass) { (void)bypass; }

  // ---- shared machinery (used by subclasses too) ---------------------------

  // Reads + checksum-validates a leaf, retrying torn images.
  bool read_leaf(rdma::GlobalAddr addr, uint32_t units, LeafImage* out);

  // Returns a reference to per-instance scratch (descent_): each call
  // invalidates the previous result. Node images are multi-KiB, so reusing
  // the path vector across operations keeps the hot path allocation-free.
  // `allow_replica_root`: a root-entry descent may read a round-robin root
  // replica instead of the primary (ops pass it on their first attempt
  // only, so every retry path self-corrects through the primary). The
  // path entry's addr stays the primary either way -- mutations must CAS
  // the one authoritative root.
  Descent& descend(const TerminatedKey& key, bool allow_custom_start,
                   bool allow_replica_root = false);

  // Memory node placement (consistent hashing, Sec. III).
  uint32_t mn_for_prefix(uint64_t hash) const {
    return cluster_.ring().mn_for(hash);
  }

  mem::Cluster& cluster_;
  rdma::Endpoint& endpoint_;
  mem::RemoteAllocator& allocator_;
  TreeRef ref_;
  TreeConfig config_;
  TreeStats stats_;

 private:
  // Per-operation scratch returned by descend(); see the declaration.
  Descent descent_;
  // Round-robin cursor over TreeRef::root_replicas for replica-routed
  // root reads (per client, so a fleet of clients spreads uniformly).
  uint32_t root_read_seq_ = 0;
  // Scratch for insert()'s mismatched-leaf key (avoids a per-retry copy).
  std::string existing_key_scratch_;
  // Single-slot lease-expiry watch (see rdma/retry_policy.h).
  rdma::LockWatch lock_watch_;

  // Creates + remotely writes a leaf; returns its address and slot word.
  // ok=false when the MN heap is exhausted (nothing was written or leased);
  // the op must abandon via fail_degraded() instead of spinning.
  struct NewLeaf {
    rdma::GlobalAddr addr;
    uint32_t units = 0;
    bool ok = false;
    LeafImage image;  // keeps the write buffer alive until batch execute
  };
  NewLeaf make_leaf(const TerminatedKey& key, Slice value,
                    rdma::DoorbellBatch* batch);

  // Records one mutation abandoned for lack of remote memory and returns
  // false (the op's result). Set by the alloc sites via alloc_failed_.
  bool fail_degraded() {
    alloc_failed_ = false;
    stats_.alloc_degraded_ops++;
    cluster_.alloc_stats().note_degraded_op();
    return false;
  }
  // Latched by insert/split/switch/update helpers when try_alloc fails, so
  // the op's retry loop exits instead of burning its budget on a condition
  // that reclamation already failed to clear.
  bool alloc_failed_ = false;

  NodeType new_inner_type() const {
    return config_.homogeneous_nodes ? NodeType::kN256 : NodeType::kN4;
  }
  uint32_t inner_alloc_bytes(NodeType t) const {
    return config_.homogeneous_nodes ? inner_node_bytes(NodeType::kN256)
                                     : inner_node_bytes(t);
  }

  // Acquires `addr`'s node lock given the header we last saw (must be
  // Idle). On success re-reads the node into *fresh and stores the exact
  // lease-stamped locked word (needed for the release CAS) in *locked_out.
  // A non-Idle or contended header feeds the lease watch (note_busy_inner),
  // reclaiming the lock if its lease has expired.
  bool lock_node(const TerminatedKey& key, rdma::GlobalAddr addr,
                 uint64_t seen_header, InnerImage* fresh,
                 uint64_t* locked_out);

  void unlock_node(rdma::GlobalAddr addr, uint64_t locked_header,
                   uint64_t idle_header);

  // Installs `desired` into slot `slot_index` of the locked node at
  // `node_addr` (CAS expecting `expected`) and releases the node lock
  // (`locked` -> `idle`). For every node but the root the two CASes ride
  // one doorbell batch, exactly the old fused shape. For the root (with
  // replicas), the slot CAS goes first and -- only if it won -- the new
  // word is written to every root replica in a second batch that also
  // carries the lock release, so replicas can never lag a root whose lock
  // has been released by a live client (+1 RTT on rare root-slot
  // mutations). Returns the slot CAS outcome.
  bool install_slot_locked(rdma::GlobalAddr node_addr, uint32_t slot_index,
                           uint64_t expected, uint64_t desired,
                           uint64_t locked, uint64_t idle,
                           rdma::FaultSite site);

  // ---- crash-tolerant locking (lease reclamation) --------------------------

  uint8_t lease_owner() const {
    return static_cast<uint8_t>(endpoint_.fault_client_id() & 0xff);
  }
  // The lease-stamped locked word for an Idle header we observed.
  uint64_t lease_inner_locked(uint64_t seen_header) {
    return pack_inner_lease(seen_header, NodeStatus::kLocked, lease_owner(),
                            lease_stamp(endpoint_.clock_ns()));
  }
  uint64_t lease_leaf_locked(uint64_t seen_header) {
    return pack_leaf_lease(seen_header, NodeStatus::kLocked, lease_owner(),
                           lease_stamp(endpoint_.clock_ns()));
  }

  // Feed one busy (Locked/Reclaiming) observation of an inner/leaf header
  // into the lease watch; reclaims the lock when the lease has expired.
  // Returns true when the word changed under us (reclaimed or released) and
  // an immediate retry is worthwhile.
  bool note_busy_inner(const TerminatedKey& key, rdma::GlobalAddr addr,
                       uint64_t header);
  bool note_busy_leaf(const TerminatedKey& key, rdma::GlobalAddr addr,
                      uint64_t header);

  // Takes over an expired lock (CAS expects the exact watched word), then
  // restores the node: reachable nodes go back to Idle (leaf images are
  // validated and rolled forward from the trailer when the crashed holder
  // left a half-published in-place update); nodes that a crashed
  // type-switch / out-of-place update already cut from the tree are
  // restored to Invalid so stale pointers retry instead of resurrecting
  // them. Returns true when this client performed the reclamation.
  bool reclaim_inner(const TerminatedKey& key, rdma::GlobalAddr addr,
                     uint64_t expired_word);
  bool reclaim_leaf(const TerminatedKey& key, rdma::GlobalAddr addr,
                    uint64_t expired_word);

  // Walks root -> leaf along `key` (uncached reads) checking whether
  // `target` is still referenced by the tree. Returns 1 = attached,
  // 0 = detached, -1 = undetermined (transient anomaly on the walk).
  int probe_attached(const TerminatedKey& key, rdma::GlobalAddr target);

  // Insert sub-cases; each returns true when the insert completed, false
  // to retry the whole operation.
  bool insert_into_free_slot(const TerminatedKey& key, Slice value,
                             Descent& d);
  bool insert_split(const TerminatedKey& key, Slice value, Descent& d,
                    Slice existing_key);
  bool insert_replace_invalid_leaf(const TerminatedKey& key, Slice value,
                                   Descent& d);
  // Replaces the full node at path.back() with the next larger type.
  // Pre: caller holds no locks. Returns true if the switch happened.
  bool type_switch(const TerminatedKey& key, Descent& d);

  // Reads some leaf key below `addr` to recover an exact prefix.
  bool recover_leaf_key(rdma::GlobalAddr addr, NodeType type,
                        std::string* key_out);

  // ---- frontier-batched scan engine ----------------------------------------
  //
  // Scans walk a key-ordered frontier of pending children instead of
  // recursing one subtree at a time: every round fetches the leading
  // unvisited children *across subtrees* in one doorbell batch (capped at
  // kScanFanout), emits leaves in order from the front, and splices an
  // expanded inner node's children in place. Stale pointers are
  // re-resolved through the parent's slot word under the per-op
  // RetryPolicy; exhausted budgets surface as counted skips/drops plus
  // last_scan_truncated(), never as silent omissions.

  // One pending child in the frontier. Carries enough of the parent to
  // re-resolve the slot when the fetched image turns out stale.
  struct ScanItem {
    uint64_t word = 0;  // parent slot word naming this child
    rdma::GlobalAddr parent_addr;
    uint32_t parent_slot = 0;   // slot index inside the parent
    uint32_t parent_depth = 0;  // depth of the parent node
    bool lo_bounded = false;    // every ancestor byte matched the low bound
    bool hi_bounded = false;    // every ancestor byte matched the high bound
    bool fetched = false;
    uint32_t buf = 0;        // image pool slot once fetched
    uint32_t retries = 0;    // per-item stale re-resolutions
    uint32_t prefix_id = 0;  // parent's verified prefix (scan_prefixes_)
  };

  // Drives one full scan: count-scan when `high` is null (with
  // widen-and-resume past the entry subtree), Scan(K1, K2) otherwise.
  // Resume/restart rounds re-enter with the last emitted key as an
  // exclusive lower bound.
  void run_scan(const TerminatedKey& low, const TerminatedKey* high,
                size_t count,
                std::vector<std::pair<std::string, std::string>>* out);

  // Appends `node`'s in-window children to the frontier at `at` (in key
  // order) and reports the node to on_scan_inner. `prefix_id` names the
  // verified prefix of `node` itself; the children inherit it as their
  // parent linkage check.
  void expand_into_frontier(rdma::GlobalAddr addr, const InnerImage& node,
                            const TerminatedKey& bound,
                            const TerminatedKey* high, bool lo_bounded,
                            bool hi_bounded, size_t at, uint32_t prefix_id);

  // ---- frontier linkage verification ---------------------------------------
  // Freed nodes return to client-local freelists and are recycled, so an
  // address snapshotted into the frontier can be reused for an unrelated,
  // internally-valid node before the scan fetches it (ABA). Point ops are
  // immune because they re-compare the leaf key against the search key;
  // scans instead verify every fetched node against the bytes its frontier
  // position implies: the chain of branch bytes from the (validated) entry
  // prefix, extended by each node's stored prefix fragment, with the full
  // 64-bit prefix hash checked whenever the composed prefix has no
  // compression gap. A mismatch is re-resolved through the live parent
  // slot like any stale pointer.

  // Records a fully-known prefix (scan entry), returning its id.
  uint32_t register_scan_prefix(Slice prefix);
  // Extends `item`'s parent prefix with its branch byte and `node`'s
  // fragment; returns the new prefix id, or -1 on a definite mismatch
  // (recycled or foreign node).
  int compose_scan_child_prefix(const ScanItem& item, const InnerImage& node);
  // Whether a fetched leaf's (terminated) key matches every known byte of
  // the position `item` represents.
  bool scan_leaf_linked(const ScanItem& item, Slice terminated_key) const;

  // Outcome of re-resolving a stale/torn frontier item via its parent.
  enum class ScanRecover {
    kRefetch,  // item updated (or backoff charged); fetch it again
    kGone,     // slot cleared or leaf deleted: skip silently, no data loss
    kRestart,  // path above the item is stale: rebuild the whole frontier
    kDrop,     // retry budget exhausted: count the loss and truncate
  };
  ScanRecover recover_scan_item(ScanItem& item, bool leaf_deleted,
                                rdma::RetryPolicy& policy, uint32_t* attempt);

  // Frontier scratch, reused across scans (images are multi-KiB).
  std::vector<ScanItem> frontier_;
  std::vector<InnerImage> scan_inner_pool_;
  std::vector<LeafImage> scan_leaf_pool_;
  std::vector<uint32_t> free_inner_bufs_;
  std::vector<uint32_t> free_leaf_bufs_;
  std::vector<std::pair<uint64_t, uint32_t>> slot_scratch_;  // (word, index)
  std::vector<size_t> batch_picks_;  // frontier indices read by this batch
  // Verified prefixes for the current round, indexed by ScanItem.prefix_id.
  // The mask marks which bytes are known ('\1'): a path-compression gap
  // longer than the stored fragment leaves unknown bytes, checked
  // optimistically at the leaf exactly like point descents.
  std::vector<std::string> scan_prefixes_;
  std::vector<std::string> scan_prefix_masks_;
  // Keys an unvisited inner child is expected to contribute, learned from
  // leaf-level expansions of the current scan. Starts at the full remaining
  // count (= fetch one inner at a time, zero speculation) and drops to the
  // observed leaf fan-out, letting later batches span sibling subtrees
  // without overfetching nodes the count will never reach.
  double scan_keys_per_inner_ = 1;
  PathEntry scan_entry_;
  // Validated root image reused across scans (config_.cache_scan_root).
  InnerImage scan_root_cache_;
  InnerImage scan_root_fresh_;
  bool scan_root_valid_ = false;
  bool last_scan_truncated_ = false;
};

}  // namespace sphinx::art
