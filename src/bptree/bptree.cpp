#include "bptree/bptree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <chrono>
#include <thread>


namespace sphinx::bptree {

namespace {

// Node layout (128 words):
//   word 0    header: lock:1 | is_leaf:1 | level:8 | count:16 | version:32
//   word 1    fence_lo (inclusive)
//   word 2    fence_hi (exclusive; UINT64_MAX == +infinity)
//   word 3    next-leaf pointer (addr48; leaves only)
//   words 4..126  payload (see below)
//   word 127  version tail (torn-read detector; must equal header version)
//
// Internal payload: keys in words [4, 4+count), child words in
// [65, 65+count+1). Child word: addr48 | is_leaf << 62.
// Leaf payload: 12 entries of 10 words each starting at word 4:
// [key][val_len][8 words of value bytes].
constexpr uint32_t kWords = kNodeBytes / 8;
constexpr uint32_t kTailWord = kWords - 1;
constexpr uint32_t kInternalKeyBase = 4;
constexpr uint32_t kInternalChildBase = 65;
constexpr uint32_t kInternalCap = 61;
constexpr uint32_t kLeafEntryBase = 4;
constexpr uint32_t kLeafEntryWords = 10;
constexpr uint32_t kLeafCap = 12;

constexpr uint64_t kLockBit = 1ULL << 63;
constexpr uint64_t kLeafBit = 1ULL << 62;

uint64_t pack_header(bool locked, bool is_leaf, uint8_t level, uint16_t count,
                     uint32_t version) {
  return (locked ? kLockBit : 0) | (is_leaf ? kLeafBit : 0) |
         (static_cast<uint64_t>(level) << 48) |
         (static_cast<uint64_t>(count) << 32) | version;
}
bool hdr_locked(uint64_t h) { return (h & kLockBit) != 0; }
bool hdr_is_leaf(uint64_t h) { return (h & kLeafBit) != 0; }
uint8_t hdr_level(uint64_t h) { return static_cast<uint8_t>((h >> 48) & 0xff); }
uint16_t hdr_count(uint64_t h) {
  return static_cast<uint16_t>((h >> 32) & 0xffff);
}
uint32_t hdr_version(uint64_t h) { return static_cast<uint32_t>(h); }

uint64_t pack_child(rdma::GlobalAddr addr, bool is_leaf) {
  return addr.to48() | (is_leaf ? kLeafBit : 0);
}
rdma::GlobalAddr child_addr(uint64_t c) {
  return rdma::GlobalAddr::from48(c & ((1ULL << 48) - 1));
}
bool child_is_leaf(uint64_t c) { return (c & kLeafBit) != 0; }

// Root-pointer word: addr48 | level:8 << 48 | is_leaf:1 << 62 | present:1.
uint64_t pack_root(rdma::GlobalAddr addr, bool is_leaf, uint8_t level) {
  return addr.to48() | (static_cast<uint64_t>(level) << 48) |
         (is_leaf ? kLeafBit : 0) | kLockBit;
}

uint64_t key_of(Slice key) {
  assert(key.size() == 8 && "B+ tree baseline supports 8-byte keys only");
  return decode_u64_key(key);
}

// Real-time backoff between retries: on an oversubscribed host a lock
// holder may be descheduled for a whole scheduler quantum, so burning the
// retry budget in a busy loop starves the operation (same rationale as
// art::RemoteTree's retry_backoff).
void retry_backoff(uint32_t attempt) {
  if (attempt == 0) return;
  if (attempt < 8) {
    std::this_thread::yield();
    return;
  }
  const uint32_t us = std::min<uint32_t>(1u << std::min(attempt - 8, 9u), 400);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

struct NodeImage {
  uint64_t w[kWords] = {};

  uint64_t header() const { return w[0]; }
  bool is_leaf() const { return hdr_is_leaf(w[0]); }
  uint16_t count() const { return hdr_count(w[0]); }
  uint8_t level() const { return hdr_level(w[0]); }
  uint32_t version() const { return hdr_version(w[0]); }
  bool consistent() const {
    return static_cast<uint32_t>(w[kTailWord]) == version();
  }
  uint64_t lo() const { return w[1]; }
  uint64_t hi() const { return w[2]; }
  bool covers(uint64_t key) const { return key >= lo() && key < hi(); }
  rdma::GlobalAddr next_leaf() const {
    return w[3] == 0 ? rdma::GlobalAddr()
                     : rdma::GlobalAddr::from48(w[3]);
  }

  void set_meta(bool is_leaf, uint8_t level, uint16_t count,
                uint32_t version, bool locked = false) {
    w[0] = pack_header(locked, is_leaf, level, count, version);
    w[kTailWord] = version;
  }

  // ---- internal accessors ----
  uint64_t ikey(uint32_t i) const { return w[kInternalKeyBase + i]; }
  void set_ikey(uint32_t i, uint64_t k) { w[kInternalKeyBase + i] = k; }
  uint64_t child(uint32_t i) const { return w[kInternalChildBase + i]; }
  void set_child(uint32_t i, uint64_t c) { w[kInternalChildBase + i] = c; }

  // Child index routing `key`: children[i] covers [ikey(i-1), ikey(i)).
  uint32_t route(uint64_t key) const {
    uint32_t i = 0;
    while (i < count() && key >= ikey(i)) ++i;
    return i;
  }

  // ---- leaf accessors ----
  uint64_t lkey(uint32_t i) const {
    return w[kLeafEntryBase + i * kLeafEntryWords];
  }
  uint32_t lval_len(uint32_t i) const {
    return static_cast<uint32_t>(
        w[kLeafEntryBase + i * kLeafEntryWords + 1] & 0xffff);
  }
  const uint8_t* lval(uint32_t i) const {
    return reinterpret_cast<const uint8_t*>(
        &w[kLeafEntryBase + i * kLeafEntryWords + 2]);
  }
  void set_entry(uint32_t i, uint64_t key, Slice value) {
    uint64_t* base = &w[kLeafEntryBase + i * kLeafEntryWords];
    base[0] = key;
    base[1] = value.size();
    std::memset(&base[2], 0, 64);
    std::memcpy(&base[2], value.data(), value.size());
  }
  void copy_entry_from(const NodeImage& src, uint32_t src_i, uint32_t dst_i) {
    std::memcpy(&w[kLeafEntryBase + dst_i * kLeafEntryWords],
                &src.w[kLeafEntryBase + src_i * kLeafEntryWords],
                kLeafEntryWords * 8);
  }
  // First index with lkey >= key (entries sorted).
  uint32_t lower_bound(uint64_t key) const {
    uint32_t i = 0;
    while (i < count() && lkey(i) < key) ++i;
    return i;
  }
};

struct PathEntry {
  rdma::GlobalAddr addr;
  NodeImage image;
  bool from_cache = false;
};

BpTreeRef create_bptree(mem::Cluster& cluster) {
  rdma::Endpoint loader = cluster.make_loader_endpoint();
  mem::RemoteAllocator allocator(cluster, loader);
  BpTreeRef ref;
  ref.root_ptr = cluster.reserve_bootstrap_slot(0);

  NodeImage leaf;
  leaf.set_meta(/*is_leaf=*/true, /*level=*/0, /*count=*/0, /*version=*/1);
  leaf.w[1] = 0;
  leaf.w[2] = UINT64_MAX;
  const uint32_t mn = cluster.ring().mn_for(0x5eedb9);
  rdma::GlobalAddr addr =
      allocator.alloc(mn, kNodeBytes, mem::AllocTag::kInnerNode);
  loader.write(addr, leaf.w, kNodeBytes);
  loader.write64(ref.root_ptr, pack_root(addr, /*is_leaf=*/true, 0));
  return ref;
}

BpTreeIndex::BpTreeIndex(mem::Cluster& cluster, rdma::Endpoint& endpoint,
                         mem::RemoteAllocator& allocator,
                         const BpTreeRef& ref, bool cache_internal)
    : cluster_(cluster),
      endpoint_(endpoint),
      allocator_(allocator),
      ref_(ref),
      cache_internal_(cache_internal) {}

// Publishes a locked node's new content and releases the lock in one
// round trip, with the header word ordered LAST: a competing writer's
// lock CAS can only succeed after the complete body is visible, so two
// full-node writes can never interleave. (Verbs in a doorbell batch
// execute in post order.)
static void publish_node(rdma::Endpoint& ep, rdma::GlobalAddr addr,
                         const NodeImage& node) {
  rdma::DoorbellBatch batch(ep);
  batch.add_write(addr.plus(8), &node.w[1], kNodeBytes - 8);
  batch.add_write(addr, &node.w[0], 8);
  batch.execute();
}

// Reads a node under an already-held lock: the only possible concurrent
// writer is the *previous* lock holder whose combined release+content
// WRITE is still landing; spin until its tail version arrives (the writer
// is a live in-process thread, so this always terminates).
static void read_node_locked(rdma::Endpoint& ep, rdma::GlobalAddr addr,
                             NodeImage* out, BpTreeStats* stats) {
  for (;;) {
    ep.read(addr, out->w, kNodeBytes);
    ep.advance_local(60 + kNodeBytes / 10);
    if (out->consistent()) return;
    stats->torn_rereads++;
    std::this_thread::yield();
  }
}

// Reads a node, retrying torn images (version head != tail). A torn image
// means a writer's publish is in flight; with the header ordered last the
// window spans the body write, and on an oversubscribed host the writer
// may be descheduled mid-publish -- so later retries yield and sleep
// instead of spinning.
static bool read_node_checked(rdma::Endpoint& ep, rdma::GlobalAddr addr,
                              NodeImage* out, BpTreeStats* stats) {
  for (uint32_t attempt = 0; attempt < 64; ++attempt) {
    ep.read(addr, out->w, kNodeBytes);
    ep.advance_local(60 + kNodeBytes / 10);
    if (out->consistent()) return true;
    stats->torn_rereads++;
    retry_backoff(attempt + 1);
  }
  return false;
}

bool BpTreeIndex::descend(uint64_t key, std::vector<PathEntry>* path,
                          bool use_cache) {
  path->clear();
  // Inner-node traversal by default; the leaf branch below re-tags.
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kInnerRead);
  for (int attempt = 0; attempt < 64; ++attempt) {
    retry_backoff(static_cast<uint32_t>(attempt));
    path->clear();
    if (root_word_cache_ == 0 || !use_cache) {
      root_word_cache_ = endpoint_.read64(ref_.root_ptr);
    }
    const uint64_t root_word = root_word_cache_;
    PathEntry cur;
    cur.addr = child_addr(root_word);
    bool is_leaf = child_is_leaf(root_word);

    bool anomaly = false;
    for (uint32_t hop = 0; hop < 32; ++hop) {
      if (is_leaf) {
        rdma::PhaseScope leaf_scope(endpoint_, rdma::Phase::kLeafRead);
        if (!read_node_checked(endpoint_, cur.addr, &cur.image, &stats_)) {
          anomaly = true;
          break;
        }
        // A racing split may have moved the key right: follow the leaf
        // chain. Separators appear in parents only after the splitter's
        // parent insert lands, so the chain walk must tolerate a laggard
        // splitter being arbitrarily far behind.
        uint32_t chase = 0;
        while (key >= cur.image.hi() && !cur.image.next_leaf().is_null() &&
               chase++ < 4096) {
          cur.addr = cur.image.next_leaf();
          if (!read_node_checked(endpoint_, cur.addr, &cur.image, &stats_)) {
            anomaly = true;
            break;
          }
        }
        if (anomaly || !cur.image.covers(key)) {
          anomaly = true;
          break;
        }
        path->push_back(std::move(cur));
        return true;
      }

      // Internal node: serve from the CN cache when allowed.
      cur.from_cache = false;
      if (use_cache && cache_internal_) {
        auto it = cache_.find(cur.addr.raw());
        if (it != cache_.end()) {
          std::memcpy(cur.image.w, it->second.data(), kNodeBytes);
          cur.from_cache = true;
          stats_.cache_hits++;
          endpoint_.advance_local(60 + kNodeBytes / 10);
        }
      }
      if (!cur.from_cache) {
        if (!read_node_checked(endpoint_, cur.addr, &cur.image, &stats_)) {
          anomaly = true;
          break;
        }
        if (cache_internal_) {
          cache_[cur.addr.raw()].assign(cur.image.w, cur.image.w + kWords);
        }
      }
      if (!cur.image.covers(key) || cur.image.is_leaf()) {
        // Stale cache or stale root pointer.
        cache_.erase(cur.addr.raw());
        stats_.cache_invalidations++;
        anomaly = true;
        break;
      }
      const uint32_t idx = cur.image.route(key);
      const uint64_t child_word = cur.image.child(idx);
      PathEntry next;
      next.addr = child_addr(child_word);
      is_leaf = child_is_leaf(child_word);
      path->push_back(std::move(cur));
      cur = std::move(next);
    }
    if (!anomaly) return false;  // depth exhausted (corrupt)
    stats_.op_retries++;
    use_cache = false;  // retry against remote truth (also refreshes root)
  }
  return false;
}

bool BpTreeIndex::search(Slice key, std::string* value_out) {
  const uint64_t k = key_of(key);
  std::vector<PathEntry> path;
  if (!descend(k, &path, /*use_cache=*/true)) {
    stats_.ops_failed++;
    return false;
  }
  const NodeImage& leaf = path.back().image;
  const uint32_t idx = leaf.lower_bound(k);
  if (idx >= leaf.count() || leaf.lkey(idx) != k) return false;
  if (value_out != nullptr) {
    value_out->assign(reinterpret_cast<const char*>(leaf.lval(idx)),
                      leaf.lval_len(idx));
  }
  return true;
}

bool BpTreeIndex::insert(Slice key, Slice value) {
  bool existed = false;
  if (!write_key(key_of(key), value, WriteMode::kInsert, &existed)) {
    return false;
  }
  return !existed;
}

bool BpTreeIndex::update(Slice key, Slice value) {
  bool existed = false;
  if (!write_key(key_of(key), value, WriteMode::kUpdateOnly, &existed)) {
    return false;
  }
  return existed;
}

bool BpTreeIndex::write_key(uint64_t key, Slice value, WriteMode mode,
                            bool* existed) {
  assert(value.size() <= kMaxValueBytes);
  std::vector<PathEntry> path;
  for (int attempt = 0; attempt < 256; ++attempt) {
    retry_backoff(static_cast<uint32_t>(attempt));
    if (!descend(key, &path, /*use_cache=*/attempt < 8)) {
      break;
    }
    PathEntry& leaf_entry = path.back();
    const uint64_t seen = leaf_entry.image.header();
    if (hdr_locked(seen)) {
      stats_.op_retries++;
      continue;
    }
    // Lock the leaf: CAS on the header word.
    bool locked;
    {
      rdma::PhaseScope lock_scope(endpoint_, rdma::Phase::kLock);
      locked = endpoint_.cas(leaf_entry.addr, seen, seen | kLockBit, nullptr,
                             rdma::FaultSite::kLockAcquire);
    }
    if (!locked) {
      stats_.lock_fail_retries++;
      continue;
    }
    // The previous holder's combined release+content WRITE publishes the
    // header word first; wait for its tail version before trusting the
    // image (the lock keeps any *new* writer out meanwhile).
    NodeImage fresh;
    {
      rdma::PhaseScope read_scope(endpoint_, rdma::Phase::kLeafRead);
      read_node_locked(endpoint_, leaf_entry.addr, &fresh, &stats_);
    }
    if (!fresh.covers(key)) {
      // Split raced between descent and lock: release and retry.
      {
        rdma::PhaseScope unlock_scope(endpoint_, rdma::Phase::kLock);
        endpoint_.write64(leaf_entry.addr, fresh.header() & ~kLockBit);
      }
      stats_.op_retries++;
      continue;
    }

    const uint32_t idx = fresh.lower_bound(key);
    const bool found = idx < fresh.count() && fresh.lkey(idx) == key;
    *existed = found;

    if (found && mode == WriteMode::kInsert) {
      {
        rdma::PhaseScope unlock_scope(endpoint_, rdma::Phase::kLock);
        endpoint_.write64(leaf_entry.addr, fresh.header() & ~kLockBit);
      }
      return true;  // *existed tells the caller
    }
    if (!found && mode == WriteMode::kUpdateOnly) {
      {
        rdma::PhaseScope unlock_scope(endpoint_, rdma::Phase::kLock);
        endpoint_.write64(leaf_entry.addr, fresh.header() & ~kLockBit);
      }
      return true;
    }

    if (found) {
      fresh.set_entry(idx, key, value);
      fresh.set_meta(true, 0, fresh.count(), fresh.version() + 1);
      {
        rdma::PhaseScope pub_scope(endpoint_, rdma::Phase::kLeafWrite);
        publish_node(endpoint_, leaf_entry.addr, fresh);
      }
      return true;
    }

    if (fresh.count() < kLeafCap) {
      for (uint32_t i = fresh.count(); i > idx; --i) {
        fresh.copy_entry_from(fresh, i - 1, i);
      }
      fresh.set_entry(idx, key, value);
      fresh.set_meta(true, 0, fresh.count() + 1, fresh.version() + 1);
      {
        rdma::PhaseScope pub_scope(endpoint_, rdma::Phase::kLeafWrite);
        publish_node(endpoint_, leaf_entry.addr, fresh);
      }
      return true;
    }

    // Leaf full: split, then thread the separator up the path.
    leaf_entry.image = fresh;  // locked image
    if (!split_leaf(path, key)) {
      stats_.op_retries++;
      continue;
    }
    // The key still needs inserting; re-descend (leaf boundaries moved).
    stats_.op_retries++;
  }
  stats_.ops_failed++;
  return false;
}

bool BpTreeIndex::split_leaf(std::vector<PathEntry>& path, uint64_t key) {
  (void)key;
  PathEntry& leaf_entry = path.back();
  NodeImage& left = leaf_entry.image;  // locked, fresh
  const uint32_t mid = kLeafCap / 2;

  NodeImage right;
  right.set_meta(true, 0, kLeafCap - mid, 1);
  right.w[1] = left.lkey(mid);   // fence_lo = separator
  right.w[2] = left.hi();
  right.w[3] = left.w[3];        // inherit next pointer
  for (uint32_t i = mid; i < kLeafCap; ++i) {
    right.copy_entry_from(left, i, i - mid);
  }
  const uint64_t separator = left.lkey(mid);
  const uint32_t mn = cluster_.ring().mn_for(separator * 0x9e3779b9ULL);
  rdma::GlobalAddr right_addr =
      allocator_.alloc(mn, kNodeBytes, mem::AllocTag::kInnerNode);

  left.w[2] = separator;  // new fence_hi
  left.w[3] = right_addr.to48();
  left.set_meta(true, 0, mid, left.version() + 1);  // also unlocks

  // One round trip: publish the sibling, then the shrunk (and unlocked)
  // left leaf.
  {
    rdma::PhaseScope pub_scope(endpoint_, rdma::Phase::kLeafWrite);
    rdma::DoorbellBatch batch(endpoint_);
    batch.add_write(right_addr, right.w, kNodeBytes);  // unreachable yet
    batch.add_write(leaf_entry.addr.plus(8), &left.w[1], kNodeBytes - 8);
    batch.add_write(leaf_entry.addr, &left.w[0], 8);  // unlocks last
    batch.execute();
  }
  stats_.leaf_splits++;

  return insert_into_parent(separator, right_addr, /*right_is_leaf=*/true,
                            /*parent_level=*/1, leaf_entry.addr);
}

bool BpTreeIndex::insert_into_parent(uint64_t separator,
                                     rdma::GlobalAddr right,
                                     bool right_is_leaf, uint8_t parent_level,
                                     rdma::GlobalAddr left) {
  for (uint32_t attempt = 0; attempt < 4096; ++attempt) {
    retry_backoff(std::min(attempt, 64u));

    uint64_t root_word;
    {
      rdma::PhaseScope root_scope(endpoint_, rdma::Phase::kInnerRead);
      root_word = endpoint_.read64(ref_.root_ptr);
    }
    const bool root_is_leaf = child_is_leaf(root_word);
    const uint8_t root_level =
        root_is_leaf ? 0 : static_cast<uint8_t>((root_word >> 48) & 0xff);

    if (parent_level > root_level) {
      // The node that split was the root: grow the tree by one level.
      // If the root pointer no longer names `left`, another grower's CAS
      // is in flight below our level; wait for it and re-evaluate.
      if (child_addr(root_word) != left) {
        continue;
      }
      NodeImage root;
      root.set_meta(false, parent_level, 1, 1);
      root.w[1] = 0;
      root.w[2] = UINT64_MAX;
      root.set_ikey(0, separator);
      root.set_child(0, pack_child(left, right_is_leaf));
      root.set_child(1, pack_child(right, right_is_leaf));
      const uint32_t mn = cluster_.ring().mn_for(separator ^ 0xb7e15163ULL);
      rdma::GlobalAddr root_addr =
          allocator_.alloc(mn, kNodeBytes, mem::AllocTag::kInnerNode);
      bool installed;
      {
        rdma::PhaseScope grow_scope(endpoint_, rdma::Phase::kInnerWrite);
        endpoint_.write(root_addr, root.w, kNodeBytes);
        installed = endpoint_.cas(ref_.root_ptr, root_word,
                                  pack_root(root_addr, false, parent_level),
                                  nullptr, rdma::FaultSite::kSlotInstall);
      }
      if (installed) {
        root_word_cache_ = pack_root(root_addr, false, parent_level);
        stats_.root_splits++;
        return true;
      }
      allocator_.free(root_addr, kNodeBytes, mem::AllocTag::kInnerNode);
      root_word_cache_ = 0;
      continue;
    }

    // Locate the current node at parent_level covering the separator by
    // walking from the root and STOPPING at parent_level. (A full descent
    // to the leaf would pass through the split level, whose routing entry
    // is exactly what we are installing.)
    PathEntry parent_entry;
    {
      rdma::PhaseScope walk_scope(endpoint_, rdma::Phase::kInnerRead);
      if (root_is_leaf) continue;  // height changing underneath us
      bool found = false;
      bool ok = true;
      PathEntry cur;
      cur.addr = child_addr(root_word);
      for (uint32_t hop = 0; hop < 32; ++hop) {
        if (!read_node_checked(endpoint_, cur.addr, &cur.image, &stats_)) {
          ok = false;
          break;
        }
        if (cur.image.is_leaf() || !cur.image.covers(separator) ||
            cur.image.level() < parent_level) {
          ok = false;  // stale routing; re-read the root pointer and retry
          break;
        }
        if (cur.image.level() == parent_level) {
          found = true;
          break;
        }
        const uint32_t i = cur.image.route(separator);
        cur.addr = child_addr(cur.image.child(i));
      }
      if (!ok || !found) continue;
      parent_entry = std::move(cur);
    }
    PathEntry* parent = &parent_entry;

    // Another client (or an earlier attempt) may have finished the job.
    {
      const uint32_t i = parent->image.route(separator);
      if (i > 0 && parent->image.ikey(i - 1) == separator) return true;
    }

    const uint64_t seen = parent->image.header();
    bool locked = false;
    if (!hdr_locked(seen)) {
      rdma::PhaseScope lock_scope(endpoint_, rdma::Phase::kLock);
      locked = endpoint_.cas(parent->addr, seen, seen | kLockBit, nullptr,
                             rdma::FaultSite::kLockAcquire);
    }
    if (!locked) {
      stats_.lock_fail_retries++;
      continue;
    }
    NodeImage fresh;
    {
      rdma::PhaseScope read_scope(endpoint_, rdma::Phase::kInnerRead);
      read_node_locked(endpoint_, parent->addr, &fresh, &stats_);
    }
    if (!fresh.covers(separator) || fresh.level() != parent_level) {
      rdma::PhaseScope unlock_scope(endpoint_, rdma::Phase::kLock);
      endpoint_.write64(parent->addr, fresh.header() & ~kLockBit);
      continue;  // the parent split away between descent and lock
    }
    {
      const uint32_t i = fresh.route(separator);
      if (i > 0 && fresh.ikey(i - 1) == separator) {
        rdma::PhaseScope unlock_scope(endpoint_, rdma::Phase::kLock);
        endpoint_.write64(parent->addr, fresh.header() & ~kLockBit);
        return true;
      }
    }

    const uint32_t idx = fresh.route(separator);
    if (fresh.count() < kInternalCap) {
      for (uint32_t i = fresh.count(); i > idx; --i) {
        fresh.set_ikey(i, fresh.ikey(i - 1));
        fresh.set_child(i + 1, fresh.child(i));
      }
      fresh.set_ikey(idx, separator);
      fresh.set_child(idx + 1, pack_child(right, right_is_leaf));
      fresh.set_meta(false, fresh.level(), fresh.count() + 1,
                     fresh.version() + 1);
      {
        rdma::PhaseScope pub_scope(endpoint_, rdma::Phase::kInnerWrite);
        publish_node(endpoint_, parent->addr, fresh);
      }
      if (cache_internal_) {
        cache_[parent->addr.raw()].assign(fresh.w, fresh.w + kWords);
      }
      return true;
    }

    // Parent full: split it, place (separator -> right) into the correct
    // half locally, publish both halves, then promote the middle key one
    // level up.
    const uint32_t mid = kInternalCap / 2;
    const uint64_t promoted = fresh.ikey(mid);
    NodeImage rnode;
    rnode.set_meta(false, fresh.level(), kInternalCap - mid - 1, 1);
    rnode.w[1] = promoted;
    rnode.w[2] = fresh.hi();
    for (uint32_t i = mid + 1; i < kInternalCap; ++i) {
      rnode.set_ikey(i - mid - 1, fresh.ikey(i));
    }
    for (uint32_t i = mid + 1; i <= kInternalCap; ++i) {
      rnode.set_child(i - mid - 1, fresh.child(i));
    }
    const uint32_t mn = cluster_.ring().mn_for(promoted ^ 0x2545f491ULL);
    rdma::GlobalAddr rnode_addr =
        allocator_.alloc(mn, kNodeBytes, mem::AllocTag::kInnerNode);

    fresh.w[2] = promoted;
    fresh.set_meta(false, fresh.level(), mid, fresh.version() + 1);

    NodeImage* target = separator < promoted ? &fresh : &rnode;
    const uint32_t tidx = target->route(separator);
    for (uint32_t i = target->count(); i > tidx; --i) {
      target->set_ikey(i, target->ikey(i - 1));
      target->set_child(i + 1, target->child(i));
    }
    target->set_ikey(tidx, separator);
    target->set_child(tidx + 1, pack_child(right, right_is_leaf));
    target->set_meta(false, target->level(), target->count() + 1,
                     target->version());

    {
      rdma::PhaseScope pub_scope(endpoint_, rdma::Phase::kInnerWrite);
      rdma::DoorbellBatch batch(endpoint_);
      batch.add_write(rnode_addr, rnode.w, kNodeBytes);
      batch.add_write(parent->addr.plus(8), &fresh.w[1], kNodeBytes - 8);
      batch.add_write(parent->addr, &fresh.w[0], 8);  // unlocks last
      batch.execute();
    }
    stats_.internal_splits++;
    if (cache_internal_) {
      cache_[parent->addr.raw()].assign(fresh.w, fresh.w + kWords);
      cache_[rnode_addr.raw()].assign(rnode.w, rnode.w + kWords);
    }
    return insert_into_parent(promoted, rnode_addr, /*right_is_leaf=*/false,
                              static_cast<uint8_t>(parent_level + 1),
                              parent->addr);
  }
  stats_.ops_failed++;
  return false;
}

bool BpTreeIndex::remove(Slice key) {
  const uint64_t k = key_of(key);
  std::vector<PathEntry> path;
  for (int attempt = 0; attempt < 256; ++attempt) {
    retry_backoff(static_cast<uint32_t>(attempt));
    if (!descend(k, &path, attempt < 8)) break;
    PathEntry& leaf_entry = path.back();
    const uint64_t seen = leaf_entry.image.header();
    bool locked = false;
    if (!hdr_locked(seen)) {
      rdma::PhaseScope lock_scope(endpoint_, rdma::Phase::kLock);
      locked = endpoint_.cas(leaf_entry.addr, seen, seen | kLockBit, nullptr,
                             rdma::FaultSite::kLockAcquire);
    }
    if (!locked) {
      stats_.lock_fail_retries++;
      continue;
    }
    NodeImage fresh;
    {
      rdma::PhaseScope read_scope(endpoint_, rdma::Phase::kLeafRead);
      read_node_locked(endpoint_, leaf_entry.addr, &fresh, &stats_);
    }
    if (!fresh.covers(k)) {
      {
        rdma::PhaseScope unlock_scope(endpoint_, rdma::Phase::kLock);
        endpoint_.write64(leaf_entry.addr, fresh.header() & ~kLockBit);
      }
      continue;
    }
    const uint32_t idx = fresh.lower_bound(k);
    if (idx >= fresh.count() || fresh.lkey(idx) != k) {
      {
        rdma::PhaseScope unlock_scope(endpoint_, rdma::Phase::kLock);
        endpoint_.write64(leaf_entry.addr, fresh.header() & ~kLockBit);
      }
      return false;
    }
    for (uint32_t i = idx + 1; i < fresh.count(); ++i) {
      fresh.copy_entry_from(fresh, i, i - 1);
    }
    fresh.set_meta(true, 0, fresh.count() - 1, fresh.version() + 1);
    {
      rdma::PhaseScope pub_scope(endpoint_, rdma::Phase::kLeafWrite);
      publish_node(endpoint_, leaf_entry.addr, fresh);
    }
    return true;
  }
  stats_.ops_failed++;
  return false;
}

size_t BpTreeIndex::scan(Slice start_key, size_t count,
                         std::vector<std::pair<std::string, std::string>>*
                             out) {
  return scan_range(start_key, encode_u64_key(UINT64_MAX - 1), count, out);
}

size_t BpTreeIndex::scan_range(
    Slice low_key, Slice high_key, size_t max_results,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  const uint64_t lo = key_of(low_key);
  const uint64_t hi = key_of(high_key);
  if (hi < lo || max_results == 0) return 0;

  std::vector<PathEntry> path;
  if (!descend(lo, &path, /*use_cache=*/true)) {
    stats_.ops_failed++;
    return 0;
  }
  NodeImage leaf = path.back().image;
  for (uint32_t hop = 0; hop < 1 << 20; ++hop) {
    for (uint32_t i = 0; i < leaf.count(); ++i) {
      const uint64_t k = leaf.lkey(i);
      if (k < lo) continue;
      if (k > hi) return out->size();
      out->emplace_back(
          encode_u64_key(k),
          std::string(reinterpret_cast<const char*>(leaf.lval(i)),
                      leaf.lval_len(i)));
      if (out->size() >= max_results) return out->size();
    }
    const rdma::GlobalAddr next = leaf.next_leaf();
    if (next.is_null() || leaf.hi() > hi) return out->size();
    rdma::PhaseScope scan_scope(endpoint_, rdma::Phase::kScanFrontier);
    if (!read_node_checked(endpoint_, next, &leaf, &stats_)) {
      return out->size();
    }
  }
  return out->size();
}

}  // namespace sphinx::bptree
