// A write-optimized B+ tree on disaggregated memory in the style of
// Sherman (Wang et al., SIGMOD'22) -- the ordered-index design the paper's
// related work positions ART-based indexes against.
//
// Included as an *extra* baseline beyond the paper's evaluation: it
// illustrates precisely why the paper targets radix trees -- a remote B+
// tree handles fixed-length 8-byte keys well (leaf-chained scans, shallow
// fanout-61 levels) but cannot index variable-length keys like the email
// dataset without slotted pages and key indirection.
//
// Design (one-sided verbs only):
//   * fixed 1 KiB nodes; internal fanout 61, leaves hold 12 entries of
//     (u64 key, <=64 B value);
//   * every node carries [fence_lo, fence_hi) routing fences and a version
//     replicated in its first and last words: readers fetch a node with
//     one READ and reject torn images by comparing the two copies;
//   * writers take a node-grained lock with one CAS on the header word,
//     re-read, then publish content + version bump + unlock with a single
//     WRITE (combined release, like the paper's leaf update);
//   * leaves are chained (next pointer) so scans walk sibling leaves
//     without re-descending;
//   * clients cache internal nodes (Sherman caches its internal levels);
//     stale routing is detected by fence checks and invalidated.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/kv_index.h"
#include "memnode/cluster.h"
#include "memnode/remote_allocator.h"
#include "rdma/endpoint.h"

namespace sphinx::bptree {

constexpr uint32_t kNodeBytes = 1024;
constexpr uint32_t kMaxValueBytes = 64;

// Shared bootstrap state: the word holding the root pointer (packed
// addr48 | level) lives in a bootstrap slot.
struct BpTreeRef {
  rdma::GlobalAddr root_ptr;
};

// Creates an empty tree (a single empty leaf as root).
BpTreeRef create_bptree(mem::Cluster& cluster);

struct BpTreeStats {
  uint64_t op_retries = 0;
  uint64_t lock_fail_retries = 0;
  uint64_t torn_rereads = 0;
  uint64_t leaf_splits = 0;
  uint64_t internal_splits = 0;
  uint64_t root_splits = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_invalidations = 0;
  uint64_t ops_failed = 0;
};

struct NodeImage;   // defined in bptree.cpp
struct PathEntry;

// Per-client handle (not thread-safe; one per worker, like an Endpoint).
// Keys must be exactly 8 bytes (big-endian encoded u64, see
// encode_u64_key); values at most kMaxValueBytes.
class BpTreeIndex final : public KvIndex {
 public:
  BpTreeIndex(mem::Cluster& cluster, rdma::Endpoint& endpoint,
              mem::RemoteAllocator& allocator, const BpTreeRef& ref,
              bool cache_internal = true);

  bool search(Slice key, std::string* value_out) override;
  bool insert(Slice key, Slice value) override;
  bool update(Slice key, Slice value) override;
  bool remove(Slice key) override;
  size_t scan(Slice start_key, size_t count,
              std::vector<std::pair<std::string, std::string>>* out) override;
  size_t scan_range(
      Slice low_key, Slice high_key, size_t max_results,
      std::vector<std::pair<std::string, std::string>>* out) override;
  const char* name() const override { return "BplusTree"; }
  // Batch completion stamps ride the owning endpoint's virtual clock (the
  // B+ tree keeps the inherited serial execute_batch loop).
  uint64_t client_clock_ns() const override { return endpoint_.clock_ns(); }

  const BpTreeStats& stats() const { return stats_; }

 private:
  // Descends to the leaf covering `key`; returns false on persistent
  // anomalies. Fills the root-to-leaf path (for split propagation).
  bool descend(uint64_t key, std::vector<PathEntry>* path, bool use_cache);

  // Insert-or-update with `insert_only` / `update_only` semantics.
  enum class WriteMode { kInsert, kUpsert, kUpdateOnly };
  bool write_key(uint64_t key, Slice value, WriteMode mode, bool* existed);

  bool split_leaf(std::vector<PathEntry>& path, uint64_t key);
  // Installs (separator -> right) into the node at `parent_level` covering
  // the separator, growing the tree with a new root when `left` (the node
  // that just split) *is* the current root. Never drops a separator: its
  // siblings are already linked into the tree, and a missing routing entry
  // at an internal level is unrecoverable (internal nodes have no chain).
  bool insert_into_parent(uint64_t separator, rdma::GlobalAddr right,
                          bool right_is_leaf, uint8_t parent_level,
                          rdma::GlobalAddr left);

  mem::Cluster& cluster_;
  rdma::Endpoint& endpoint_;
  mem::RemoteAllocator& allocator_;
  BpTreeRef ref_;
  bool cache_internal_;
  BpTreeStats stats_;
  uint64_t root_word_cache_ = 0;
  // Internal-node cache: addr -> serialized node image.
  std::unordered_map<uint64_t, std::vector<uint64_t>> cache_;
};

// Internal helper shared with create_bptree (defined in bptree.cpp).


}  // namespace sphinx::bptree
