#include "common/dist.h"

#include <cmath>

namespace sphinx {

namespace {

// zeta(n, theta) = sum_{i=1..n} 1/i^theta. Exact summation is O(n) but runs
// once per generator; for the multi-million-key benches this is a few tens
// of milliseconds.
double zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianDistribution::ZipfianDistribution(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zeta2theta_ = zeta(2, theta);
  zetan_ = zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianDistribution::next(Rng& rng) {
  // Gray et al.'s constant-time inverse-CDF approximation, as used by YCSB.
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double v =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t idx = static_cast<uint64_t>(v);
  return idx >= n_ ? n_ - 1 : idx;
}

}  // namespace sphinx
