// Request-distribution generators matching the YCSB benchmark semantics:
// zipfian (with the YCSB zeta construction and scrambling), uniform, and
// "latest" (skewed toward recently inserted records).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/rng.h"

namespace sphinx {

// Abstract integer-key-index generator over [0, n).
class IndexDistribution {
 public:
  virtual ~IndexDistribution() = default;
  // Draws the next record index using the caller-provided RNG so that each
  // worker thread can keep an independent deterministic stream.
  virtual uint64_t next(Rng& rng) = 0;
};

class UniformDistribution final : public IndexDistribution {
 public:
  explicit UniformDistribution(uint64_t n) : n_(n) {}
  uint64_t next(Rng& rng) override { return rng.next_below(n_); }

 private:
  uint64_t n_;
};

// YCSB-style zipfian generator. Precomputes zeta(n, theta) once; next()
// is O(1). With theta = 0.99 (the paper's default) roughly 50% of draws hit
// the hottest ~1% of items.
class ZipfianDistribution final : public IndexDistribution {
 public:
  explicit ZipfianDistribution(uint64_t n, double theta = 0.99);

  uint64_t next(Rng& rng) override;

  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2theta_;
};

// Same popularity skew as zipfian but with item ranks scattered across the
// key space via a bijective scramble, so "hot" items are not clustered at
// low indexes (YCSB's ScrambledZipfian).
class ScrambledZipfianDistribution final : public IndexDistribution {
 public:
  explicit ScrambledZipfianDistribution(uint64_t n, double theta = 0.99)
      : inner_(n, theta), n_(n) {}

  uint64_t next(Rng& rng) override {
    return splitmix64(inner_.next(rng)) % n_;
  }

 private:
  ZipfianDistribution inner_;
  uint64_t n_;
};

// YCSB "latest": the most recently inserted records are the hottest.
// The insert frontier is shared (atomic) across worker threads.
class LatestDistribution final : public IndexDistribution {
 public:
  explicit LatestDistribution(uint64_t initial_count)
      : frontier_(initial_count), zipf_(initial_count) {}

  // Records that a new key was inserted; subsequent draws may select it.
  void advance_frontier() { frontier_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t next(Rng& rng) override {
    const uint64_t n = frontier_.load(std::memory_order_relaxed);
    // Draw a zipfian rank and mirror it so rank 0 maps to the newest item.
    uint64_t rank = zipf_.next(rng);
    if (rank >= n) rank = n - 1;
    return n - 1 - rank;
  }

 private:
  std::atomic<uint64_t> frontier_;
  ZipfianDistribution zipf_;
};

}  // namespace sphinx
