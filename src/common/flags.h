// Minimal --key=value command-line parsing for benchmark harnesses and
// examples. Keeps the bench binaries dependency-free and self-documenting.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

namespace sphinx {

class Flags {
 public:
  Flags(int argc, char** argv) {
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unrecognized argument: " << arg << "\n";
        std::exit(2);
      }
      arg = arg.substr(2);
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  uint64_t get_u64(const std::string& name, uint64_t def) const {
    auto it = values_.find(name);
    if (it == values_.end()) return def;
    try {
      size_t pos = 0;
      const uint64_t v = std::stoull(it->second, &pos);
      if (pos == it->second.size()) return v;
    } catch (const std::exception&) {
    }
    die_bad_value(name, it->second, "an unsigned integer");
  }

  double get_double(const std::string& name, double def) const {
    auto it = values_.find(name);
    if (it == values_.end()) return def;
    try {
      size_t pos = 0;
      const double v = std::stod(it->second, &pos);
      if (pos == it->second.size()) return v;
    } catch (const std::exception&) {
    }
    die_bad_value(name, it->second, "a number");
  }

  bool get_bool(const std::string& name, bool def) const {
    auto it = values_.find(name);
    if (it == values_.end()) return def;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  std::string get_string(const std::string& name,
                         const std::string& def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  bool has(const std::string& name) const { return values_.count(name) > 0; }
  const std::string& program() const { return program_; }

 private:
  [[noreturn]] static void die_bad_value(const std::string& name,
                                         const std::string& value,
                                         const char* expected) {
    std::cerr << "--" << name << ": expected " << expected << ", got '"
              << value << "'\n";
    std::exit(2);
  }

  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace sphinx
