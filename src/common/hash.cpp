#include "common/hash.h"

#include <array>
#include <cstring>

namespace sphinx {

namespace {

constexpr uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
constexpr uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kPrime3 = 0x165667b19e3779f9ULL;
constexpr uint64_t kPrime4 = 0x85ebca77c2b2ae63ULL;
constexpr uint64_t kPrime5 = 0x27d4eb2f165667c5ULL;

inline uint64_t rotl64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t read_u64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t read_u32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t xxh64_round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t xxh64_merge_round(uint64_t acc, uint64_t val) {
  val = xxh64_round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

// CRC32C lookup tables for slice-by-8, generated at static-init time.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t{};

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& crc_tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint64_t xxhash64(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  const uint8_t* const end = p + len;
  uint64_t h;

  if (len >= 32) {
    const uint8_t* const limit = end - 32;
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    do {
      v1 = xxh64_round(v1, read_u64(p));
      v2 = xxh64_round(v2, read_u64(p + 8));
      v3 = xxh64_round(v3, read_u64(p + 16));
      v4 = xxh64_round(v4, read_u64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = xxh64_merge_round(h, v1);
    h = xxh64_merge_round(h, v2);
    h = xxh64_merge_round(h, v3);
    h = xxh64_merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);

  while (p + 8 <= end) {
    h ^= xxh64_round(0, read_u64(p));
    h = rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(read_u32(p)) * kPrime1;
    h = rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kPrime5;
    h = rotl64(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

uint32_t crc32c(const void* data, size_t len, uint32_t seed) {
  const auto& t = crc_tables().t;
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;

  while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --len;
  }
  while (len >= 8) {
    uint64_t v = read_u64(p) ^ crc;
    crc = t[7][v & 0xff] ^ t[6][(v >> 8) & 0xff] ^ t[5][(v >> 16) & 0xff] ^
          t[4][(v >> 24) & 0xff] ^ t[3][(v >> 32) & 0xff] ^
          t[2][(v >> 40) & 0xff] ^ t[1][(v >> 48) & 0xff] ^ t[0][v >> 56];
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --len;
  }
  return ~crc;
}

}  // namespace sphinx
