// Hash functions used throughout Sphinx: xxHash64 for prefix hashing and
// hash-table placement, CRC32C for leaf checksums, splitmix64 for key-space
// scrambling, and fingerprint derivation helpers.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace sphinx {

// 64-bit xxHash (XXH64). Deterministic across platforms.
uint64_t xxhash64(const void* data, size_t len, uint64_t seed = 0);

inline uint64_t xxhash64(const Slice& s, uint64_t seed = 0) {
  return xxhash64(s.data(), s.size(), seed);
}

// CRC32C (Castagnoli), software slice-by-8 implementation. Used to checksum
// leaf nodes so readers can detect partially-written data (Sec. III-C).
uint32_t crc32c(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t crc32c(const Slice& s, uint32_t seed = 0) {
  return crc32c(s.data(), s.size(), seed);
}

// splitmix64: cheap bijective scrambler; used to generate the u64 dataset
// (distinct uniform-looking integers from sequential indexes).
inline uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a, kept for secondary/independent hashing (cuckoo alt-bucket mix).
inline uint64_t fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Derives an n-bit nonzero fingerprint from a 64-bit hash. Fingerprints of
// zero are reserved as "empty" in filters and hash entries, so the value is
// remapped to 1 when the truncation would produce 0.
inline uint16_t fingerprint(uint64_t hash, unsigned bits) {
  const uint64_t mask = (bits >= 64) ? ~0ULL : ((1ULL << bits) - 1);
  uint16_t fp = static_cast<uint16_t>((hash >> 32) & mask);
  return fp == 0 ? 1 : fp;
}

}  // namespace sphinx
