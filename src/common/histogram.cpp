#include "common/histogram.h"

#include <cstdio>

namespace sphinx {

uint64_t LatencyHistogram::percentile_ns(double p) const {
  if (total_ == 0) return 0;
  if (p <= 0) return min_ns();
  if (p >= 100) return max_ns_;
  const uint64_t target =
      static_cast<uint64_t>(static_cast<double>(total_) * p / 100.0);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += counts_[i];
    if (cumulative > target) {
      return std::min(bucket_upper_bound(i), max_ns_);
    }
  }
  return max_ns_;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.2fus p50=%.2fus p99=%.2fus p999=%.2fus "
                "max=%.2fus",
                static_cast<unsigned long long>(total_), mean_ns() / 1000.0,
                static_cast<double>(percentile_ns(50)) / 1000.0,
                static_cast<double>(percentile_ns(99)) / 1000.0,
                static_cast<double>(percentile_ns(99.9)) / 1000.0,
                static_cast<double>(max_ns_) / 1000.0);
  return std::string(buf);
}

}  // namespace sphinx
