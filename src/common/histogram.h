// Log-bucketed latency histogram with percentile queries, plus a simple
// mergeable counter block used by the benchmark runners.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

namespace sphinx {

// Latency histogram over nanosecond samples. Buckets are (exponent,
// quarter-mantissa) pairs giving <= 12.5% relative error per bucket, which
// is plenty for the p50/p99 reporting the paper's figures need.
class LatencyHistogram {
 public:
  static constexpr size_t kSubBuckets = 8;   // per power of two
  static constexpr size_t kExponents = 40;   // up to ~2^40 ns (~18 min)
  static constexpr size_t kNumBuckets = kExponents * kSubBuckets;

  LatencyHistogram() { reset(); }

  void reset() {
    counts_.fill(0);
    total_ = 0;
    sum_ns_ = 0;
    min_ns_ = UINT64_MAX;
    max_ns_ = 0;
  }

  void record(uint64_t ns) {
    counts_[bucket_for(ns)]++;
    total_++;
    sum_ns_ += ns;
    min_ns_ = std::min(min_ns_, ns);
    max_ns_ = std::max(max_ns_, ns);
  }

  // Merges another histogram into this one (used to combine per-worker
  // histograms after a run).
  void merge(const LatencyHistogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ns_ += other.sum_ns_;
    min_ns_ = std::min(min_ns_, other.min_ns_);
    max_ns_ = std::max(max_ns_, other.max_ns_);
  }

  // Merges `other` with every sample multiplied by `factor` (>= 0). Samples
  // are re-bucketed at each source bucket's upper bound times `factor`, the
  // same representative percentile_ns() reports, so the result carries the
  // histogram's usual <= 12.5% per-bucket error. The runner uses this to
  // apply per-worker NIC-queueing stretch to unloaded per-worker histograms
  // after the stretch factors are known.
  void merge_scaled(const LatencyHistogram& other, double factor) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (other.counts_[i] == 0) continue;
      const uint64_t ns = static_cast<uint64_t>(
          static_cast<double>(bucket_upper_bound(i)) * factor);
      counts_[bucket_for(ns)] += other.counts_[i];
      total_ += other.counts_[i];
      sum_ns_ += ns * other.counts_[i];
      min_ns_ = std::min(min_ns_, ns);
      max_ns_ = std::max(max_ns_, ns);
    }
  }

  uint64_t count() const { return total_; }
  uint64_t min_ns() const { return total_ ? min_ns_ : 0; }
  uint64_t max_ns() const { return max_ns_; }
  double mean_ns() const {
    return total_ ? static_cast<double>(sum_ns_) / static_cast<double>(total_)
                  : 0.0;
  }

  // Returns an upper-bound estimate for the p-th percentile (p in [0,100]).
  uint64_t percentile_ns(double p) const;

  // "p50=2.1us p99=8.4us mean=2.9us" style one-liner for logs.
  std::string summary() const;

 private:
  static size_t bucket_for(uint64_t ns) {
    if (ns < kSubBuckets) return static_cast<size_t>(ns);
    const int msb = 63 - __builtin_clzll(ns);
    const int exp = msb - 2;  // kSubBuckets == 8 == 2^3
    const size_t sub = (ns >> exp) & (kSubBuckets - 1);
    size_t idx = static_cast<size_t>(exp + 1) * kSubBuckets + sub;
    return idx < kNumBuckets ? idx : kNumBuckets - 1;
  }

  static uint64_t bucket_upper_bound(size_t idx) {
    if (idx < kSubBuckets) return idx;
    const size_t exp = idx / kSubBuckets - 1;
    // Values in this bucket satisfy (ns >> exp) == sub, i.e. the range
    // [sub << exp, (sub + 1) << exp).
    const size_t sub = idx % kSubBuckets;
    return ((sub + 1) << exp) - 1;
  }

  std::array<uint64_t, kNumBuckets> counts_;
  uint64_t total_ = 0;
  uint64_t sum_ns_ = 0;
  uint64_t min_ns_ = UINT64_MAX;
  uint64_t max_ns_ = 0;
};

}  // namespace sphinx
