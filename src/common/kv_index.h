// Abstract ordered key-value index interface. Sphinx, SMART and the ART
// baseline all implement it, so the YCSB runner, examples and benches are
// system-agnostic.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"

namespace sphinx {

// One point operation inside a pipelined batch (KvIndex::execute_batch).
// `ok` carries exactly the value the serial entry point (search/insert/
// update/remove) would have returned; `done` flips once that outcome is
// decided, so a client crash mid-batch leaves the remaining ops with
// done == false (their fate is unknown, like a crashed serial op's).
// `done_clock_ns` is the issuing client's virtual clock at the moment the
// outcome was decided: ops completed by an early fused round trip stamp
// earlier than ops that fell back to serial execution behind them, which
// lets a runner report per-op latency including in-batch queueing instead
// of dividing the batch's wall time by its depth.
struct BatchOp {
  enum class Kind : uint8_t { kSearch, kInsert, kUpdate, kRemove };
  Kind kind = Kind::kSearch;
  Slice key;
  Slice value;                       // insert/update payload
  std::string* value_out = nullptr;  // search result sink (optional)
  bool ok = false;
  bool done = false;
  uint64_t done_clock_ns = 0;
};

class KvIndex {
 public:
  virtual ~KvIndex() = default;

  // Point lookup. Returns false when absent; fills *value_out when found.
  virtual bool search(Slice key, std::string* value_out) = 0;

  // Inserts a new key. Returns false when the key already exists (no
  // modification is performed in that case).
  virtual bool insert(Slice key, Slice value) = 0;

  // Replaces the value of an existing key. Returns false when absent.
  virtual bool update(Slice key, Slice value) = 0;

  // Deletes a key. Returns false when absent.
  virtual bool remove(Slice key) = 0;

  // Collects up to `count` key/value pairs with key >= start_key, in
  // ascending key order. Returns the number collected.
  virtual size_t scan(Slice start_key, size_t count,
                      std::vector<std::pair<std::string, std::string>>* out) = 0;

  // The paper's Scan(K1, K2): collects all pairs with K1 <= key <= K2 in
  // ascending order, up to `max_results`. Returns the number collected.
  virtual size_t scan_range(
      Slice low_key, Slice high_key, size_t max_results,
      std::vector<std::pair<std::string, std::string>>* out) = 0;

  // Executes `count` point ops as one pipelined batch. Contract: each op's
  // `ok`/`done` fields are per-op equivalent to the serial entry points --
  // every op linearizes at some point during the call, ops may linearize
  // in any order within the batch, and a client crash propagates after
  // marking the ops whose outcome was already decided `done`. The default
  // is the naive serial loop (one op at a time, zero overlap): the honest
  // baseline for systems without a pipelined client. Implementations that
  // keep several ops in flight (Sphinx: cross-op doorbell fusion) override
  // this; they must preserve the same per-op outcome contract.
  virtual void execute_batch(BatchOp* ops, size_t count) {
    for (size_t i = 0; i < count; ++i) execute_one(ops[i]);
  }

  // The issuing client's virtual clock, used to stamp BatchOp completion
  // times. Indexes not backed by a simulated endpoint report 0 (completion
  // stamps then degrade to "end of batch" in the runner).
  virtual uint64_t client_clock_ns() const { return 0; }

  // True when the most recent scan/scan_range on this client ended early
  // for a reason other than satisfying `count`/`max_results` (e.g. retries
  // against stale remote nodes were exhausted), i.e. live keys inside the
  // requested window may be missing from the results. Implementations that
  // can always complete return false.
  virtual bool last_scan_truncated() const { return false; }

  virtual const char* name() const = 0;

 protected:
  // Serial execution of one batch op, shared by the default execute_batch
  // and by pipelined implementations' fallback paths. Virtual dispatch
  // routes each op through the subclass's own entry points, so a wrapper
  // (or an index with its own fast path) keeps its semantics inside
  // batches too.
  void execute_one(BatchOp& op) {
    switch (op.kind) {
      case BatchOp::Kind::kSearch:
        op.ok = search(op.key, op.value_out);
        break;
      case BatchOp::Kind::kInsert:
        op.ok = insert(op.key, op.value);
        break;
      case BatchOp::Kind::kUpdate:
        op.ok = update(op.key, op.value);
        break;
      case BatchOp::Kind::kRemove:
        op.ok = remove(op.key);
        break;
    }
    op.done = true;
    op.done_clock_ns = client_clock_ns();
  }
};

}  // namespace sphinx
