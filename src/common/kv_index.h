// Abstract ordered key-value index interface. Sphinx, SMART and the ART
// baseline all implement it, so the YCSB runner, examples and benches are
// system-agnostic.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"

namespace sphinx {

class KvIndex {
 public:
  virtual ~KvIndex() = default;

  // Point lookup. Returns false when absent; fills *value_out when found.
  virtual bool search(Slice key, std::string* value_out) = 0;

  // Inserts a new key. Returns false when the key already exists (no
  // modification is performed in that case).
  virtual bool insert(Slice key, Slice value) = 0;

  // Replaces the value of an existing key. Returns false when absent.
  virtual bool update(Slice key, Slice value) = 0;

  // Deletes a key. Returns false when absent.
  virtual bool remove(Slice key) = 0;

  // Collects up to `count` key/value pairs with key >= start_key, in
  // ascending key order. Returns the number collected.
  virtual size_t scan(Slice start_key, size_t count,
                      std::vector<std::pair<std::string, std::string>>* out) = 0;

  // The paper's Scan(K1, K2): collects all pairs with K1 <= key <= K2 in
  // ascending order, up to `max_results`. Returns the number collected.
  virtual size_t scan_range(
      Slice low_key, Slice high_key, size_t max_results,
      std::vector<std::pair<std::string, std::string>>* out) = 0;

  // True when the most recent scan/scan_range on this client ended early
  // for a reason other than satisfying `count`/`max_results` (e.g. retries
  // against stale remote nodes were exhausted), i.e. live keys inside the
  // requested window may be missing from the results. Implementations that
  // can always complete return false.
  virtual bool last_scan_truncated() const { return false; }

  virtual const char* name() const = 0;
};

}  // namespace sphinx
