// A tiny metrics registry: each stats struct declares one constexpr table of
// named uint64_t members, and merge/diff/all-zero/JSON serialization are
// derived from that single table instead of being hand-rolled per struct.
// Adding a counter is a one-line change (declare the member, list it in the
// table) and every consumer -- operator+=, bench JSON, tests -- picks it up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sphinx::metrics {

// Named pointer-to-member for one uint64_t counter of stats struct S.
template <typename S>
struct Field {
  const char* name;
  uint64_t S::*ptr;
};

template <typename S, size_t N>
void add(S& dst, const S& src, const Field<S> (&fields)[N]) {
  for (const Field<S>& f : fields) dst.*(f.ptr) += src.*(f.ptr);
}

template <typename S, size_t N>
void sub(S& dst, const S& src, const Field<S> (&fields)[N]) {
  for (const Field<S>& f : fields) dst.*(f.ptr) -= src.*(f.ptr);
}

template <typename S, size_t N>
bool all_zero(const S& s, const Field<S> (&fields)[N]) {
  for (const Field<S>& f : fields) {
    if (s.*(f.ptr) != 0) return false;
  }
  return true;
}

// Element-wise merge helpers for dynamically sized per-MN counter vectors
// (see rdma::EndpointStats); the destination grows to cover the source.
inline void add_vec(std::vector<uint64_t>& dst,
                    const std::vector<uint64_t>& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0);
  for (size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
}

inline void sub_vec(std::vector<uint64_t>& dst,
                    const std::vector<uint64_t>& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0);
  for (size_t i = 0; i < src.size(); ++i) dst[i] -= src[i];
}

// Streaming writer for one JSON object; tracks comma placement so callers
// can interleave registry-driven fields with hand-picked ones. Keys are
// assumed to be plain identifiers; string *values* are escaped.
class JsonObjectWriter {
 public:
  explicit JsonObjectWriter(std::ostream& out) : out_(out) { out_ << "{"; }

  void field(const char* key, uint64_t v) {
    sep();
    out_ << "\"" << key << "\": " << v;
  }

  void field(const char* key, double v) {
    sep();
    out_ << "\"" << key << "\": " << v;
  }

  void field(const char* key, const std::string& v) {
    sep();
    out_ << "\"" << key << "\": \"" << escape(v) << "\"";
  }

  // Emits `"key": <raw>` with no quoting -- for nested objects/arrays the
  // caller already serialized.
  void raw_field(const char* key, const std::string& raw) {
    sep();
    out_ << "\"" << key << "\": " << raw;
  }

  void close() { out_ << "}"; }

  static std::string escape(const std::string& s) {
    std::string r;
    r.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') r.push_back('\\');
      r.push_back(c);
    }
    return r;
  }

 private:
  void sep() {
    if (!first_) out_ << ", ";
    first_ = false;
  }

  std::ostream& out_;
  bool first_ = true;
};

// Emits every registered counter of `s` as `"<prefix><name>": value`.
template <typename S, size_t N>
void write_fields(JsonObjectWriter& w, const S& s, const Field<S> (&fields)[N],
                  const char* prefix = "") {
  for (const Field<S>& f : fields) {
    w.field((std::string(prefix) + f.name).c_str(), s.*(f.ptr));
  }
}

}  // namespace sphinx::metrics
