// Deterministic, fast pseudo-random number generation (xoshiro256**).
// Benchmarks and workload generators need reproducible streams that are much
// cheaper than std::mt19937_64.
#pragma once

#include <cstdint>

#include "common/hash.h"

namespace sphinx {

class Rng {
 public:
  static constexpr uint64_t kDefaultSeed = 0x5f3759df9e3779b9ULL;

  explicit Rng(uint64_t seed = kDefaultSeed) { reseed(seed); }

  void reseed(uint64_t seed) {
    // Seed the four lanes through splitmix64 as recommended by the
    // xoshiro authors; guarantees a nonzero state.
    uint64_t x = seed;
    for (auto& lane : s_) {
      x = splitmix64(x);
      lane = x;
    }
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be nonzero.
  uint64_t next_below(uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t next_in(uint64_t lo, uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace sphinx
