// Byte-slice and owned-key primitives shared across all Sphinx modules.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace sphinx {

// A non-owning view over a contiguous byte sequence. Keys and values flow
// through the index API as Slices; ownership stays with the caller.
class Slice {
 public:
  constexpr Slice() noexcept : data_(nullptr), size_(0) {}
  constexpr Slice(const char* data, size_t size) noexcept
      : data_(data), size_(size) {}
  Slice(const uint8_t* data, size_t size) noexcept
      : data_(reinterpret_cast<const char*>(data)), size_(size) {}
  Slice(const std::string& s) noexcept : data_(s.data()), size_(s.size()) {}
  constexpr Slice(std::string_view sv) noexcept
      : data_(sv.data()), size_(sv.size()) {}
  Slice(const char* cstr) noexcept : data_(cstr), size_(std::strlen(cstr)) {}

  constexpr const char* data() const noexcept { return data_; }
  const uint8_t* bytes() const noexcept {
    return reinterpret_cast<const uint8_t*>(data_);
  }
  constexpr size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }

  uint8_t operator[](size_t i) const noexcept {
    assert(i < size_);
    return static_cast<uint8_t>(data_[i]);
  }

  // First `n` bytes (clamped to size).
  Slice prefix(size_t n) const noexcept {
    return Slice(data_, n < size_ ? n : size_);
  }

  // Drops the first `n` bytes (clamped).
  Slice suffix_from(size_t n) const noexcept {
    if (n >= size_) return Slice(data_ + size_, 0);
    return Slice(data_ + n, size_ - n);
  }

  std::string to_string() const { return std::string(data_, size_); }
  std::string_view view() const noexcept {
    return std::string_view(data_, size_);
  }

  int compare(const Slice& other) const noexcept {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r != 0) return r;
    if (size_ < other.size_) return -1;
    if (size_ > other.size_) return 1;
    return 0;
  }

  bool operator==(const Slice& other) const noexcept {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }
  bool operator!=(const Slice& other) const noexcept {
    return !(*this == other);
  }
  bool operator<(const Slice& other) const noexcept {
    return compare(other) < 0;
  }

  bool starts_with(const Slice& prefix) const noexcept {
    return size_ >= prefix.size_ &&
           (prefix.size_ == 0 ||
            std::memcmp(data_, prefix.data_, prefix.size_) == 0);
  }

  // Length of the longest common prefix with `other`.
  size_t common_prefix_len(const Slice& other) const noexcept {
    const size_t n = size_ < other.size_ ? size_ : other.size_;
    size_t i = 0;
    while (i < n && data_[i] == other.data_[i]) ++i;
    return i;
  }

 private:
  const char* data_;
  size_t size_;
};

// Encodes a u64 as an 8-byte big-endian key so that lexicographic byte order
// matches numeric order (required for range scans over integer keys).
inline std::string encode_u64_key(uint64_t v) {
  std::string out(8, '\0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  return out;
}

inline uint64_t decode_u64_key(const Slice& s) {
  assert(s.size() == 8);
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) v = (v << 8) | s[i];
  return v;
}

}  // namespace sphinx
