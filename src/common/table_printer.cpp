#include "common/table_printer.h"

#include <cstdio>
#include <iostream>

namespace sphinx {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += "| ";
      out += cell;
      out.append(widths[c] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(headers_, out);
  for (size_t c = 0; c < widths.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TablePrinter::print() const { std::cout << render() << std::flush; }

std::string TablePrinter::fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_mops(double ops_per_sec) {
  char buf[64];
  if (ops_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f Mops/s", ops_per_sec / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f Kops/s", ops_per_sec / 1e3);
  }
  return buf;
}

std::string TablePrinter::fmt_bytes(uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / (1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / (1ULL << 20));
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / (1ULL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string TablePrinter::fmt_us(double ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1000.0);
  return buf;
}

std::string TablePrinter::fmt_ratio(double r) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", r);
  return buf;
}

std::string TablePrinter::fmt_percent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

}  // namespace sphinx
