// Aligned plain-text table output for the benchmark harnesses, so every
// bench prints rows/series in the same shape the paper's tables and figures
// report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sphinx {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends a row; values are preformatted strings. Row length may be
  // shorter than the header (trailing cells left blank).
  void add_row(std::vector<std::string> cells);

  // Renders the table with a header rule, column-aligned.
  std::string render() const;

  // Renders and writes to stdout.
  void print() const;

  // Formatting helpers shared by the benches.
  static std::string fmt_double(double v, int precision = 2);
  static std::string fmt_mops(double ops_per_sec);      // "3.41 Mops/s"
  static std::string fmt_bytes(uint64_t bytes);         // "1.2 GiB"
  static std::string fmt_us(double ns);                 // "2.13 us"
  static std::string fmt_ratio(double r);               // "2.4x"
  static std::string fmt_percent(double fraction);      // "3.3%"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sphinx
