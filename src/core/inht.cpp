#include "core/inht.h"

namespace sphinx::core {

std::vector<race::TableRef> create_inht(mem::Cluster& cluster,
                                        uint8_t initial_depth) {
  std::vector<race::TableRef> tables;
  tables.reserve(cluster.num_mns());
  for (uint32_t mn = 0; mn < cluster.num_mns(); ++mn) {
    tables.push_back(race::create_table(cluster, mn, initial_depth));
  }
  return tables;
}

InhtClient::InhtClient(mem::Cluster& cluster, rdma::Endpoint& endpoint,
                       mem::RemoteAllocator& allocator,
                       const std::vector<race::TableRef>& tables)
    : ring_(&cluster.ring()) {
  // Rehash callback for segment splits: the placement hash of a stored
  // payload is the pointed-to node's full prefix hash, kept in the node
  // header's second word -- one 8-byte READ recovers it (mirrors RACE
  // re-reading KV blocks during splits).
  race::Rehasher rehasher = [&endpoint](uint64_t payload) {
    return endpoint.read64(inht_payload_addr(payload).plus(8));
  };
  clients_.reserve(tables.size());
  for (const race::TableRef& table : tables) {
    clients_.push_back(std::make_unique<race::RaceClient>(
        cluster, endpoint, allocator, table, rehasher));
  }
}

}  // namespace sphinx::core
