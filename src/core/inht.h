// Inner Node Hash Table (paper Sec. III-A): one RACE-style table per memory
// node, each holding 8-byte entries for the ART inner nodes placed on that
// MN. An entry's payload packs the node type (3 bits) with its 48-bit
// compact address; the key is the 64-bit hash of the node's full prefix.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "art/node_layout.h"
#include "racehash/race_table.h"

namespace sphinx::core {

// payload (51 bits): node_type:3 | addr48:48
inline uint64_t pack_inht_payload(art::NodeType type, rdma::GlobalAddr addr) {
  return (static_cast<uint64_t>(type) << 48) | addr.to48();
}
inline art::NodeType inht_payload_type(uint64_t payload) {
  return static_cast<art::NodeType>((payload >> 48) & 0x7);
}
inline rdma::GlobalAddr inht_payload_addr(uint64_t payload) {
  return rdma::GlobalAddr::from48(payload & ((1ULL << 48) - 1));
}

// Creates one table per MN; returned refs are shared by all clients.
std::vector<race::TableRef> create_inht(mem::Cluster& cluster,
                                        uint8_t initial_depth = 4);

// Per-client handle over all per-MN tables. Routes by the consistent-hash
// ring, so an inner node's entry always lives on the same MN as the node.
class InhtClient {
 public:
  InhtClient(mem::Cluster& cluster, rdma::Endpoint& endpoint,
             mem::RemoteAllocator& allocator,
             const std::vector<race::TableRef>& tables);

  // Single-prefix lookup: one round trip. Appends matching payloads.
  void search(uint64_t prefix_hash, std::vector<uint64_t>& payloads_out) {
    client_for(prefix_hash).search(prefix_hash, payloads_out);
  }

  bool insert(uint64_t prefix_hash, art::NodeType type,
              rdma::GlobalAddr addr) {
    return client_for(prefix_hash)
        .insert(prefix_hash, pack_inht_payload(type, addr));
  }

  // Entry replacement after a node type switch: a single 8-byte CAS on the
  // hash entry (Sec. IV, Insert).
  bool update(uint64_t prefix_hash, art::NodeType old_type,
              rdma::GlobalAddr old_addr, art::NodeType new_type,
              rdma::GlobalAddr new_addr) {
    return client_for(prefix_hash)
        .update(prefix_hash, pack_inht_payload(old_type, old_addr),
                pack_inht_payload(new_type, new_addr));
  }

  bool erase(uint64_t prefix_hash, art::NodeType type,
             rdma::GlobalAddr addr) {
    return client_for(prefix_hash)
        .erase(prefix_hash, pack_inht_payload(type, addr));
  }

  // For the parallel multi-prefix read (Sec. III-A): resolves the remote
  // group address so the caller can assemble one doorbell batch across all
  // prefixes (and MNs), then parse each group with match_group().
  race::RaceClient::Probe plan_probe(uint64_t prefix_hash) {
    return client_for(prefix_hash).plan_probe(prefix_hash);
  }

  race::RaceClient& client_for(uint64_t prefix_hash) {
    return *clients_[ring_->mn_for(prefix_hash)];
  }

  // Aggregate CN-side memory held by cached directories (paper: "typically
  // 2-5% of the succinct filter cache size").
  uint64_t directory_cache_bytes() const {
    uint64_t total = 0;
    for (const auto& c : clients_) total += c->directory_cache_bytes();
    return total;
  }

  race::RaceStats aggregated_stats() const {
    race::RaceStats total;
    for (const auto& c : clients_) {
      const race::RaceStats& s = c->stats();
      total.searches += s.searches;
      total.inserts += s.inserts;
      total.insert_retries += s.insert_retries;
      total.splits += s.splits;
      total.dir_doublings += s.dir_doublings;
      total.dir_refreshes += s.dir_refreshes;
      total.recovery += s.recovery;
      total.backoff += s.backoff;
    }
    return total;
  }

 private:
  const mem::ConsistentHashRing* ring_;
  std::vector<std::unique_ptr<race::RaceClient>> clients_;
};

}  // namespace sphinx::core
