#include "core/sphinx_index.h"

#include <algorithm>

namespace sphinx::core {

SphinxRefs create_sphinx(mem::Cluster& cluster, uint8_t inht_initial_depth) {
  SphinxRefs refs;
  refs.tree = art::create_tree(cluster);
  refs.inht = create_inht(cluster, inht_initial_depth);
  return refs;
}

SphinxIndex::SphinxIndex(mem::Cluster& cluster, rdma::Endpoint& endpoint,
                         mem::RemoteAllocator& allocator,
                         const SphinxRefs& refs, filter::CuckooFilter* filter,
                         filter::PrefixEntryCache* pec,
                         filter::LeafAddressCache* lac,
                         const SphinxConfig& config)
    : RemoteTree(cluster, endpoint, allocator, refs.tree, config.tree),
      inht_(cluster, endpoint, allocator, refs.inht),
      filter_(config.use_filter ? filter : nullptr),
      pec_(config.use_pec ? pec : nullptr),
      lac_(config.use_lac ? lac : nullptr),
      config_(config) {}

bool SphinxIndex::search(Slice key, std::string* value_out) {
  // With no LAC installed the point read is exactly the base machinery --
  // same verbs, clocks and stats (the --no-lac A/B contract).
  if (lac_ == nullptr) return RemoteTree::search(key, value_out);

  // The speculative leaf read below dereferences a cached remote address
  // with no descent backing it; the epoch pin keeps any concurrently
  // retired leaf out of the recycler until this op quiesces (the nested
  // pin inside a RemoteTree fallback collapses via pin_depth).
  mem::EpochPin epoch(allocator_);

  const art::TerminatedKey tkey(key);
  const uint64_t full_hash = tkey.hash_of_prefix(tkey.size());
  endpoint_.advance_local(config_.lac_probe_ns);
  uint64_t payload = 0;
  bool hot = false;
  if (!lac_->lookup(full_hash, &payload, &hot)) {
    return RemoteTree::search(key, value_out);
  }
  sstats_.lac_hits++;
  const uint32_t units = filter::lac_payload_units(payload);
  const rdma::GlobalAddr leaf_addr =
      rdma::GlobalAddr::from48(filter::lac_payload_addr48(payload));

  // Cold (low-confidence) hits hedge: find the deepest PEC-hinted inner
  // node for this key *locally* (no round trips) so its read can ride the
  // same doorbell as the speculative leaf read. If the leaf turns out
  // stale, the fallback descent's start node is already in hand -- the
  // rescue costs zero extra round trips, mirroring the PEC's cold-hit
  // fusion with the INHT group read.
  uint32_t fused_len = 0;
  uint64_t fused_hash = 0;
  uint64_t fused_payload = 0;
  if (!hot && config_.lac_speculative_fusion && pec_ != nullptr) {
    const uint32_t max_len = tkey.size() - 1;
    hash_scratch_.resize(max_len + 1);
    for (uint32_t l = 1; l <= max_len; ++l) {
      hash_scratch_[l] = tkey.hash_of_prefix(l);
    }
    endpoint_.advance_local(config_.prefix_hash_ns * max_len);
    for (uint32_t l = max_len; l >= 1; --l) {
      if (filter_ != nullptr) {
        endpoint_.advance_local(config_.filter_probe_ns);
        if (!filter_->contains(hash_scratch_[l])) continue;
      }
      endpoint_.advance_local(config_.pec_probe_ns);
      uint64_t p = 0;
      bool inner_hot = false;
      if (!pec_->lookup(hash_scratch_[l], &p, &inner_hot)) continue;
      sstats_.pec_hits++;
      fused_len = l;
      fused_hash = hash_scratch_[l];
      fused_payload = p;
      break;
    }
  }

  lac_leaf_.resize(units);
  {
    rdma::DoorbellBatch batch(endpoint_);
    batch.add_read(leaf_addr, lac_leaf_.buf().data(),
                   units * art::kLeafUnitBytes);
    if (fused_len > 0) {
      const art::NodeType ftype = inht_payload_type(fused_payload);
      batch.add_read(inht_payload_addr(fused_payload),
                     pending_start_.image.raw(),
                     art::inner_node_bytes(ftype));
    }
    // One round trip, LAC-attributed whole (phases charge per round trip,
    // not per verb), keeping per-phase sums exact.
    rdma::PhaseScope lac_scope(endpoint_, rdma::Phase::kLacFusedRead);
    batch.execute();
  }

  // Validate the speculative leaf exactly as a descent-found leaf: unit
  // count, CRC, liveness, then the byte-exact key compare that makes wrong
  // answers structurally impossible even for ABA-recycled blocks.
  const bool image_ok =
      lac_leaf_.units() == units &&
      lac_leaf_.revalidate() != art::LeafImage::Revalidate::kBad &&
      lac_leaf_.status() != art::NodeStatus::kInvalid;
  if (image_ok && lac_leaf_.key() == tkey.full()) {
    // Final audit on the exact image being returned. The gate above already
    // established both properties, so a failure here means the fast path
    // itself is broken; the regression gate fails on a nonzero count.
    if (!lac_leaf_.checksum_ok() || lac_leaf_.key() != tkey.full()) {
      sstats_.lac_wrong_value++;
    } else {
      if (value_out != nullptr) {
        value_out->assign(lac_leaf_.value().data(), lac_leaf_.value().size());
      }
      if (!hot) sstats_.lac_fused_wins++;
      return true;
    }
  }

  // Stale binding: the key moved (delete, delete+reinsert, out-of-place
  // update) or the entry was torn. Purge it -- keyed on the address so a
  // concurrent refresh survives -- and fall back to the full search, which
  // repopulates the cache on success (staleness self-heals).
  sstats_.lac_stale++;
  lac_->invalidate_if(full_hash, leaf_addr.to48());
  if (fused_len > 0) {
    const art::NodeType ftype = inht_payload_type(fused_payload);
    const rdma::GlobalAddr faddr = inht_payload_addr(fused_payload);
    if (validate_start(fused_len, fused_hash, ftype, faddr,
                       &pending_start_)) {
      // The fused inner read validated: hand it to the fallback descent
      // through find_start, so the rescue spends no extra round trip.
      have_pending_start_ = true;
      sstats_.lac_fused_losses++;
    } else {
      sstats_.pec_stale++;
      pec_->invalidate_if(fused_hash, faddr.to48());
    }
  }
  return RemoteTree::search(key, value_out);
}

void SphinxIndex::execute_batch(BatchOp* ops, size_t count) {
  sstats_.batch_ops += count;
  // One pin brackets the whole batch: quiescence is announced at batch
  // boundaries (per-op pins inside the serial pass nest and collapse), so
  // the cross-op fused leaf reads in stage 2 can never chase a block that
  // was recycled mid-batch.
  mem::EpochPin epoch(allocator_);
  // Without a LAC there is no speculative leaf read to fuse across ops
  // (every search resolves through SFC/PEC/INHT descents), and a
  // single-op batch has nothing to merge: both run the honest serial loop.
  if (lac_ == nullptr || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      execute_one(ops[i]);
      sstats_.batch_serial_ops++;
    }
    return;
  }

  if (batch_slots_.size() < count) batch_slots_.resize(count);

  // Stage 1 (local, zero round trips): probe the LAC for every search op
  // in batch order, with exactly the single-op probe sequence and CPU
  // charges; cold hits additionally plan the PEC-hinted fallback inner
  // read so a stale leaf already holds its rescue descent's start node.
  size_t fused_count = 0;
  for (size_t i = 0; i < count; ++i) {
    BatchSlot& s = batch_slots_[i];
    s.key.reset();
    s.fused = false;
    s.pending = false;
    s.fused_len = 0;
    if (ops[i].kind != BatchOp::Kind::kSearch) continue;
    s.key.emplace(ops[i].key);
    const art::TerminatedKey& tkey = *s.key;
    s.full_hash = tkey.hash_of_prefix(tkey.size());
    endpoint_.advance_local(config_.lac_probe_ns);
    uint64_t payload = 0;
    s.hot = false;
    if (!lac_->lookup(s.full_hash, &payload, &s.hot)) continue;
    sstats_.lac_hits++;
    s.units = filter::lac_payload_units(payload);
    s.leaf_addr =
        rdma::GlobalAddr::from48(filter::lac_payload_addr48(payload));
    s.fused = true;
    fused_count++;
    if (!s.hot && config_.lac_speculative_fusion && pec_ != nullptr) {
      const uint32_t max_len = tkey.size() - 1;
      hash_scratch_.resize(max_len + 1);
      for (uint32_t l = 1; l <= max_len; ++l) {
        hash_scratch_[l] = tkey.hash_of_prefix(l);
      }
      endpoint_.advance_local(config_.prefix_hash_ns * max_len);
      for (uint32_t l = max_len; l >= 1; --l) {
        if (filter_ != nullptr) {
          endpoint_.advance_local(config_.filter_probe_ns);
          if (!filter_->contains(hash_scratch_[l])) continue;
        }
        endpoint_.advance_local(config_.pec_probe_ns);
        uint64_t p = 0;
        bool inner_hot = false;
        if (!pec_->lookup(hash_scratch_[l], &p, &inner_hot)) continue;
        sstats_.pec_hits++;
        s.fused_len = l;
        s.fused_hash = hash_scratch_[l];
        s.fused_payload = p;
        break;
      }
    }
  }

  // Stage 2: ONE doorbell round trip carrying every hit's speculative leaf
  // read plus the cold hits' fused inner reads -- the cross-op fusion that
  // turns K warm hits into 1 RTT. The whole round is LAC-attributed
  // (phases charge per round trip, not per verb or per op; rdma/phase.h),
  // so per-phase sums stay exactly equal to totals.
  if (fused_count > 0) {
    rdma::DoorbellBatch batch(endpoint_);
    for (size_t i = 0; i < count; ++i) {
      BatchSlot& s = batch_slots_[i];
      if (!s.fused) continue;
      s.leaf.resize(s.units);
      batch.add_read(s.leaf_addr, s.leaf.buf().data(),
                     s.units * art::kLeafUnitBytes);
      if (s.fused_len > 0) {
        const art::NodeType ftype = inht_payload_type(s.fused_payload);
        batch.add_read(inht_payload_addr(s.fused_payload),
                       s.inner.image.raw(), art::inner_node_bytes(ftype));
      }
    }
    sstats_.batch_fused_rounds++;
    rdma::PhaseScope lac_scope(endpoint_, rdma::Phase::kLacFusedRead);
    batch.execute();
  }

  // Stage 3: validate each speculative leaf exactly like the single-op
  // fast path -- unit count, CRC, liveness, byte-exact key compare, and
  // the final lac_wrong_value audit -- and purge stale bindings before any
  // fallback descends.
  for (size_t i = 0; i < count; ++i) {
    BatchSlot& s = batch_slots_[i];
    if (!s.fused) continue;
    BatchOp& op = ops[i];
    const art::TerminatedKey& tkey = *s.key;
    const bool image_ok =
        s.leaf.units() == s.units &&
        s.leaf.revalidate() != art::LeafImage::Revalidate::kBad &&
        s.leaf.status() != art::NodeStatus::kInvalid;
    if (image_ok && s.leaf.key() == tkey.full()) {
      if (!s.leaf.checksum_ok() || s.leaf.key() != tkey.full()) {
        sstats_.lac_wrong_value++;
      } else {
        if (op.value_out != nullptr) {
          op.value_out->assign(s.leaf.value().data(), s.leaf.value().size());
        }
        if (!s.hot) sstats_.lac_fused_wins++;
        op.ok = true;
        op.done = true;
        op.done_clock_ns = endpoint_.clock_ns();
        sstats_.batch_fused_ops++;
        continue;
      }
    }
    sstats_.lac_stale++;
    lac_->invalidate_if(s.full_hash, s.leaf_addr.to48());
    if (s.fused_len > 0) {
      const art::NodeType ftype = inht_payload_type(s.fused_payload);
      const rdma::GlobalAddr faddr = inht_payload_addr(s.fused_payload);
      if (validate_start(s.fused_len, s.fused_hash, ftype, faddr, &s.inner)) {
        s.pending = true;
        sstats_.lac_fused_losses++;
      } else {
        sstats_.pec_stale++;
        pec_->invalidate_if(s.fused_hash, faddr.to48());
      }
    }
  }

  // Stage 4 (serial pass, batch order): everything the shared round did
  // not finish -- mutations, LAC misses, stale bindings. Searches go
  // straight to the base machinery (the LAC was already probed in stage 1;
  // re-entering SphinxIndex::search would double-charge the probe), and a
  // stale op whose fused inner read validated hands it to find_start so
  // its rescue descent spends zero extra round trips, exactly like the
  // single-op fallback.
  for (size_t i = 0; i < count; ++i) {
    BatchOp& op = ops[i];
    if (op.done) continue;
    BatchSlot& s = batch_slots_[i];
    sstats_.batch_serial_ops++;
    if (op.kind == BatchOp::Kind::kSearch) {
      if (s.pending) {
        pending_start_ = s.inner;
        have_pending_start_ = true;
      }
      op.ok = RemoteTree::search(op.key, op.value_out);
      op.done = true;
      op.done_clock_ns = endpoint_.clock_ns();
    } else {
      execute_one(op);
    }
  }
}

bool SphinxIndex::validate_start(uint32_t len, uint64_t hash,
                                 art::NodeType type, rdma::GlobalAddr addr,
                                 PathEntry* out) {
  // Verify the fetched node against the entry's metadata and the full
  // prefix hash stored in its header. (The paper uses a 12-bit fp2 plus a
  // 42-bit header hash; the node header here carries the full 64-bit
  // prefix hash, so surviving collisions are negligible and the leaf-level
  // common-prefix check in RemoteTree remains the last line of defense.)
  if (out->image.status() == art::NodeStatus::kInvalid) return false;
  if (out->image.type() != type) return false;
  if (out->image.depth() != len) return false;
  if (out->image.prefix_hash_full() != hash) return false;
  out->addr = addr;
  out->parent_depth = len;  // empty fragment window: prefix hash-verified
  out->taken_slot = -1;
  out->taken_word = 0;
  return true;
}

bool SphinxIndex::adopt_candidate(uint32_t len, uint64_t hash,
                                  const std::vector<uint64_t>& payloads,
                                  PathEntry* out) {
  for (uint64_t payload : payloads) {
    const art::NodeType type = inht_payload_type(payload);
    const rdma::GlobalAddr addr = inht_payload_addr(payload);
    // One round trip: fetch the candidate node and verify it.
    bool fetched;
    {
      rdma::PhaseScope adopt_scope(endpoint_, rdma::Phase::kInnerRead);
      fetched = RemoteTree::fetch_inner(addr, type, &out->image);
    }
    if (!fetched) continue;
    if (!validate_start(len, hash, type, addr, out)) continue;
    // Cache the verified entry so the next search for this prefix skips
    // the INHT read (the 2-RTT path).
    if (pec_ != nullptr) pec_->insert(hash, pack_inht_payload(type, addr));
    return true;
  }
  return false;
}

bool SphinxIndex::try_start_at(uint32_t len, uint64_t hash, bool inht_on_miss,
                               PathEntry* out) {
  bool probe_inht = inht_on_miss;
  if (pec_ != nullptr) {
    endpoint_.advance_local(config_.pec_probe_ns);
    uint64_t payload = 0;
    bool hot = false;
    if (pec_->lookup(hash, &payload, &hot)) {
      sstats_.pec_hits++;
      const art::NodeType type = inht_payload_type(payload);
      const rdma::GlobalAddr addr = inht_payload_addr(payload);
      if (hot || !config_.pec_speculative_fusion) {
        // High confidence: one speculative node read (the 2-RTT search).
        bool fetched;
        {
          rdma::PhaseScope pec_scope(endpoint_, rdma::Phase::kPecValidate);
          fetched = RemoteTree::fetch_inner(addr, type, &out->image);
        }
        if (fetched && validate_start(len, hash, type, addr, out)) {
          return true;
        }
        sstats_.pec_stale++;
        pec_->invalidate_if(hash, addr.to48());
        probe_inht = true;  // the prefix existed recently; re-resolve it
      } else {
        // Low confidence (cold entry): hedge by fusing the speculative node
        // read with the INHT group read in one doorbell batch. A fresh
        // entry wins outright; a stale one already has the group in hand,
        // so recovery costs zero extra round trips.
        const race::RaceClient::Probe probe = inht_.plan_probe(hash);
        rdma::DoorbellBatch batch(endpoint_);
        batch.add_read(addr, out->image.raw(), art::inner_node_bytes(type));
        batch.add_read(probe.group_addr, fused_group_.data(),
                       race::kGroupBytes);
        {
          // The fused speculative read is PEC-driven even though it piggy-
          // backs an INHT group read; the whole doorbell is one round trip
          // and phases attribute per round trip, not per verb.
          rdma::PhaseScope pec_scope(endpoint_, rdma::Phase::kPecValidate);
          batch.execute();
        }
        if (validate_start(len, hash, type, addr, out)) {
          sstats_.speculative_wins++;
          return true;
        }
        sstats_.speculative_losses++;
        sstats_.pec_stale++;
        pec_->invalidate_if(hash, addr.to48());
        payload_scratch_.clear();
        race::RaceClient::match_group(hash, fused_group_.data(),
                                      payload_scratch_);
        return adopt_candidate(len, hash, payload_scratch_, out);
      }
    }
  }
  if (!probe_inht) return false;
  // Single-prefix INHT lookup: one round trip (Sec. III-B).
  payload_scratch_.clear();
  inht_.search(hash, payload_scratch_);
  return adopt_candidate(len, hash, payload_scratch_, out);
}

bool SphinxIndex::start_search(const art::TerminatedKey& key,
                               uint32_t max_len, PathEntry* out) {
  if (max_len < 1) return false;  // only the root can be an ancestor

  // Hash every candidate prefix locally (lengths 1 .. max_len).
  hash_scratch_.resize(max_len + 1);
  for (uint32_t l = 1; l <= max_len; ++l) {
    hash_scratch_[l] = key.hash_of_prefix(l);
  }
  endpoint_.advance_local(config_.prefix_hash_ns * max_len);

  if (filter_ != nullptr) {
    // Longest prefix present in the succinct filter cache -> PEC probe,
    // then at most one hash-entry read (Sec. III-B).
    for (uint32_t l = max_len; l >= 1; --l) {
      endpoint_.advance_local(config_.filter_probe_ns);
      if (!filter_->contains(hash_scratch_[l])) continue;
      sstats_.filter_hits++;
      if (try_start_at(l, hash_scratch_[l], /*inht_on_miss=*/true, out)) {
        return true;
      }
      // False positive (or stale entry): retry with a shorter prefix, as
      // in the paper's false-positive recovery.
      sstats_.fp_rejects++;
    }
  } else if (pec_ != nullptr) {
    // PEC-only ablation (no filter): the entry cache doubles as the
    // existence hint. Misses cost nothing remotely; the parallel INHT
    // read below stays the backstop.
    for (uint32_t l = max_len; l >= 1; --l) {
      if (try_start_at(l, hash_scratch_[l], /*inht_on_miss=*/false, out)) {
        return true;
      }
    }
  }

  // Parallel INHT read: the hash entries of all prefixes in one
  // doorbell-batched round trip (Sec. III-A).
  sstats_.parallel_fallbacks++;
  group_scratch_.resize(max_len + 1);
  {
    rdma::PhaseScope inht_scope(endpoint_, rdma::Phase::kInhtRead);
    rdma::DoorbellBatch batch(endpoint_);
    for (uint32_t l = 1; l <= max_len; ++l) {
      const race::RaceClient::Probe probe = inht_.plan_probe(hash_scratch_[l]);
      batch.add_read(probe.group_addr, group_scratch_[l].data(),
                     race::kGroupBytes);
    }
    batch.execute();
  }
  for (uint32_t l = max_len; l >= 1; --l) {
    payload_scratch_.clear();
    race::RaceClient::match_group(hash_scratch_[l], group_scratch_[l].data(),
                                  payload_scratch_);
    if (payload_scratch_.empty()) continue;
    if (adopt_candidate(l, hash_scratch_[l], payload_scratch_, out)) {
      if (filter_ != nullptr) filter_->insert(hash_scratch_[l]);
      return true;
    }
  }
  return false;
}

bool SphinxIndex::find_start(const art::TerminatedKey& key, PathEntry* out) {
  if (have_pending_start_) {
    // A stale LAC hit's fused inner read already validated a start node for
    // exactly this key (search() sets the flag immediately before the
    // fallback descent, which consumes it here on its first attempt).
    have_pending_start_ = false;
    *out = pending_start_;
    sstats_.start_successes++;
    return true;
  }
  if (!start_search(key, key.size() - 1, out)) {
    sstats_.root_fallbacks++;
    return false;
  }
  sstats_.start_successes++;
  return true;
}

bool SphinxIndex::find_scan_start(const art::TerminatedKey& key,
                                  uint32_t max_depth, PathEntry* out) {
  const uint32_t cap = std::min<uint32_t>(max_depth, key.size() - 1);
  if (!start_search(key, cap, out)) {
    sstats_.scan_root_fallbacks++;
    return false;
  }
  sstats_.scan_start_successes++;
  return true;
}

}  // namespace sphinx::core
