#include "core/sphinx_index.h"

namespace sphinx::core {

SphinxRefs create_sphinx(mem::Cluster& cluster, uint8_t inht_initial_depth) {
  SphinxRefs refs;
  refs.tree = art::create_tree(cluster);
  refs.inht = create_inht(cluster, inht_initial_depth);
  return refs;
}

SphinxIndex::SphinxIndex(mem::Cluster& cluster, rdma::Endpoint& endpoint,
                         mem::RemoteAllocator& allocator,
                         const SphinxRefs& refs, filter::CuckooFilter* filter,
                         const SphinxConfig& config)
    : RemoteTree(cluster, endpoint, allocator, refs.tree, config.tree),
      inht_(cluster, endpoint, allocator, refs.inht),
      filter_(config.use_filter ? filter : nullptr),
      config_(config) {}

bool SphinxIndex::adopt_candidate(uint32_t len, uint64_t hash,
                                  const std::vector<uint64_t>& payloads,
                                  PathEntry* out) {
  for (uint64_t payload : payloads) {
    const art::NodeType type = inht_payload_type(payload);
    const rdma::GlobalAddr addr = inht_payload_addr(payload);
    // One round trip: fetch the candidate node and verify it against the
    // hash entry's metadata and the full prefix hash stored in its header.
    // (The paper uses a 12-bit fp2 plus a 42-bit header hash; the node
    // header here carries the full 64-bit prefix hash, so surviving
    // collisions are negligible and the leaf-level common-prefix check in
    // RemoteTree remains the last line of defense.)
    if (!RemoteTree::fetch_inner(addr, type, &out->image)) continue;
    if (out->image.status() == art::NodeStatus::kInvalid) continue;
    if (out->image.type() != type) continue;
    if (out->image.depth() != len) continue;
    if (out->image.prefix_hash_full() != hash) continue;
    out->addr = addr;
    out->parent_depth = len;  // empty fragment window: prefix hash-verified
    out->taken_slot = -1;
    out->taken_word = 0;
    return true;
  }
  return false;
}

bool SphinxIndex::find_start(const art::TerminatedKey& key, PathEntry* out) {
  const uint32_t len = key.size();
  if (len < 2) return false;  // only the root can be an ancestor

  // Hash every proper prefix locally (lengths 1 .. len-1).
  hash_scratch_.resize(len);
  for (uint32_t l = 1; l < len; ++l) {
    hash_scratch_[l] = key.hash_of_prefix(l);
  }
  endpoint_.advance_local(config_.prefix_hash_ns * (len - 1));

  if (filter_ != nullptr) {
    // Longest prefix present in the succinct filter cache -> read exactly
    // one hash entry (Sec. III-B).
    for (uint32_t l = len - 1; l >= 1; --l) {
      endpoint_.advance_local(config_.filter_probe_ns);
      if (!filter_->contains(hash_scratch_[l])) continue;
      sstats_.filter_hits++;
      payload_scratch_.clear();
      inht_.search(hash_scratch_[l], payload_scratch_);
      if (adopt_candidate(l, hash_scratch_[l], payload_scratch_, out)) {
        sstats_.start_successes++;
        return true;
      }
      // False positive (or stale entry): retry with a shorter prefix, as
      // in the paper's false-positive recovery.
      sstats_.fp_rejects++;
    }
  }

  // Parallel INHT read: the hash entries of all prefixes in one
  // doorbell-batched round trip (Sec. III-A).
  sstats_.parallel_fallbacks++;
  struct GroupBuf {
    uint64_t words[race::kSlotsPerGroup];
  };
  std::vector<GroupBuf> groups(len);
  {
    rdma::DoorbellBatch batch(endpoint_);
    for (uint32_t l = 1; l < len; ++l) {
      const race::RaceClient::Probe probe = inht_.plan_probe(hash_scratch_[l]);
      batch.add_read(probe.group_addr, groups[l].words, sizeof(GroupBuf));
    }
    batch.execute();
  }
  for (uint32_t l = len - 1; l >= 1; --l) {
    payload_scratch_.clear();
    race::RaceClient::match_group(hash_scratch_[l], groups[l].words,
                                  payload_scratch_);
    if (payload_scratch_.empty()) continue;
    if (adopt_candidate(l, hash_scratch_[l], payload_scratch_, out)) {
      sstats_.start_successes++;
      if (filter_ != nullptr) filter_->insert(hash_scratch_[l]);
      return true;
    }
  }
  sstats_.root_fallbacks++;
  return false;
}

}  // namespace sphinx::core
