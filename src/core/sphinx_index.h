// SphinxIndex: the paper's hybrid index. An adaptive radix tree on
// disaggregated memory whose inner nodes are additionally indexed by the
// Inner Node Hash Table (Sec. III-A), fronted on each compute node by a
// Succinct Filter Cache (Sec. III-B) and a Prefix Entry Cache.
//
// Search path (Sec. IV): hash all prefixes of the key locally, find the
// longest prefix present in the filter cache, read that prefix's hash
// entry (1 RTT), read the inner node it points to (1 RTT), then descend --
// normally straight to the leaf (1 RTT): three round trips end to end.
// The Prefix Entry Cache (filter/prefix_entry_cache.h) removes the first
// hop on a hit: it caches the 8-byte hash entry itself, so the node read
// starts immediately and a search costs two round trips. Cached entries
// are hints only -- every fetched node is re-verified (type, depth, full
// prefix hash, status), and stale entries are purged on validation failure.
// Cold (low-confidence) entries are hedged with speculative doorbell
// fusion: the node read and the INHT group read issue in one batch, so a
// stale entry costs zero extra round trips.
// Filter misses fall back to reading the hash entries of *all* prefixes in
// one doorbell-batched round trip (the Theta(L)-bandwidth base mechanism);
// hash-table misses fall back to a plain root-to-leaf traversal, which also
// repopulates the filter via on_visit_inner().
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "art/remote_tree.h"
#include "common/metrics.h"
#include "core/inht.h"
#include "filter/cuckoo_filter.h"
#include "filter/leaf_addr_cache.h"
#include "filter/prefix_entry_cache.h"

namespace sphinx::core {

struct SphinxConfig {
  // Ablation A1: when false the filter cache is skipped entirely and every
  // operation uses the parallel multi-entry INHT read.
  bool use_filter = true;
  // Ablation A4: when false the prefix entry cache is skipped and filter
  // hits always pay the INHT hash-entry read.
  bool use_pec = true;
  // When true, a cold PEC hit fuses the speculative node read with the
  // INHT group read in one doorbell batch (stale entry = 0 extra RTTs).
  // When false, cold hits behave like hot ones: node read only, with a
  // serial INHT read on validation failure.
  bool pec_speculative_fusion = true;
  // Ablation: when false the leaf address cache is skipped and point reads
  // always resolve the leaf address through SFC/PEC/INHT.
  bool use_lac = true;
  // When true, a cold LAC hit fuses the speculative leaf read with a
  // PEC-hinted inner-node read in one doorbell batch, so a stale leaf
  // address already holds the fallback descent's start node in hand (stale
  // entry = 0 extra RTTs). When false, cold hits read the leaf alone.
  bool lac_speculative_fusion = true;
  // CPU cost model for the CN-local work unique to Sphinx.
  uint64_t filter_probe_ns = 15;
  uint64_t pec_probe_ns = 15;
  uint64_t lac_probe_ns = 15;
  uint64_t prefix_hash_ns = 25;
  art::TreeConfig tree;
};

// Shared bootstrap state for one Sphinx instance (tree + per-MN INHT).
struct SphinxRefs {
  art::TreeRef tree;
  std::vector<race::TableRef> inht;
};

SphinxRefs create_sphinx(mem::Cluster& cluster,
                         uint8_t inht_initial_depth = 4);

struct SphinxStats {
  uint64_t filter_hits = 0;        // filter said "present" for some prefix
  uint64_t fp_rejects = 0;         // filter hit not confirmed by INHT/node
  uint64_t start_successes = 0;    // descents started below the root
  uint64_t parallel_fallbacks = 0; // multi-prefix doorbell reads issued
  uint64_t root_fallbacks = 0;     // find_start gave up -> root traversal
  uint64_t inht_update_misses = 0; // type-switch entry CAS lost a race
  uint64_t inht_insert_fails = 0;  // INHT insert gave up (table full / faults)
  uint64_t pec_hits = 0;           // prefix entry cache had a payload
  uint64_t pec_stale = 0;          // cached payload failed node validation
  uint64_t speculative_wins = 0;   // fused cold-hit read validated
  uint64_t speculative_losses = 0; // fused read stale; group rescued the op
  uint64_t scan_start_successes = 0;  // scans entered below the root
  uint64_t scan_root_fallbacks = 0;   // scan entry search failed -> root
  uint64_t lac_hits = 0;         // leaf address cache had a binding
  uint64_t lac_stale = 0;        // cached binding failed leaf validation
  uint64_t lac_fused_wins = 0;   // cold-hit fused leaf read validated
  uint64_t lac_fused_losses = 0; // stale leaf; fused inner seeded fallback
  uint64_t lac_wrong_value = 0;  // 1-RTT return failed final audit (== 0!)
  uint64_t batch_ops = 0;           // point ops entering execute_batch
  uint64_t batch_fused_ops = 0;     // ops completed by a shared fused round
  uint64_t batch_fused_rounds = 0;  // cross-op doorbell round trips issued
  uint64_t batch_serial_ops = 0;    // batch ops resolved by serial fallback

  SphinxStats& operator+=(const SphinxStats& o);
};

// Field registry: merge and JSON emission iterate this table instead of
// hand-rolling per-counter code (see common/metrics.h).
inline constexpr metrics::Field<SphinxStats> kSphinxStatsFields[] = {
    {"filter_hits", &SphinxStats::filter_hits},
    {"fp_rejects", &SphinxStats::fp_rejects},
    {"start_successes", &SphinxStats::start_successes},
    {"parallel_fallbacks", &SphinxStats::parallel_fallbacks},
    {"root_fallbacks", &SphinxStats::root_fallbacks},
    {"inht_update_misses", &SphinxStats::inht_update_misses},
    {"inht_insert_fails", &SphinxStats::inht_insert_fails},
    {"pec_hits", &SphinxStats::pec_hits},
    {"pec_stale", &SphinxStats::pec_stale},
    {"speculative_wins", &SphinxStats::speculative_wins},
    {"speculative_losses", &SphinxStats::speculative_losses},
    {"scan_start_successes", &SphinxStats::scan_start_successes},
    {"scan_root_fallbacks", &SphinxStats::scan_root_fallbacks},
    {"lac_hits", &SphinxStats::lac_hits},
    {"lac_stale", &SphinxStats::lac_stale},
    {"lac_fused_wins", &SphinxStats::lac_fused_wins},
    {"lac_fused_losses", &SphinxStats::lac_fused_losses},
    {"lac_wrong_value", &SphinxStats::lac_wrong_value},
    {"batch_ops", &SphinxStats::batch_ops},
    {"batch_fused_ops", &SphinxStats::batch_fused_ops},
    {"batch_fused_rounds", &SphinxStats::batch_fused_rounds},
    {"batch_serial_ops", &SphinxStats::batch_serial_ops},
};

inline SphinxStats& SphinxStats::operator+=(const SphinxStats& o) {
  metrics::add(*this, o, kSphinxStatsFields);
  return *this;
}

class SphinxIndex final : public art::RemoteTree {
 public:
  // `filter` is the CN-wide succinct filter cache shared by every worker of
  // this compute node; pass nullptr to run INHT-only (equivalent to
  // use_filter = false). `pec` is the CN-wide prefix entry cache, likewise
  // shared and likewise optional, and `lac` is the CN-wide leaf address
  // cache -- the third tier, same sharing and optionality.
  SphinxIndex(mem::Cluster& cluster, rdma::Endpoint& endpoint,
              mem::RemoteAllocator& allocator, const SphinxRefs& refs,
              filter::CuckooFilter* filter,
              filter::PrefixEntryCache* pec = nullptr,
              filter::LeafAddressCache* lac = nullptr,
              const SphinxConfig& config = SphinxConfig());

  const char* name() const override { return "Sphinx"; }

  // Point-read fast path: on a LAC hit the leaf is read speculatively (one
  // round trip, doorbell-fused with a PEC-hinted fallback inner read when
  // the entry is cold) and validated in hand; misses and stale entries fall
  // back to the normal SFC/PEC/INHT search. With no LAC installed this is
  // bit-identical to RemoteTree::search.
  bool search(Slice key, std::string* value_out) override;

  // Pipelined multi-op execution with cross-op doorbell fusion: every
  // search op's LAC probe (and, for cold hits, the PEC-hinted fallback
  // inner-node plan) runs locally up front, then ALL speculative leaf
  // reads -- plus the cold hits' fused inner reads -- issue in ONE shared
  // DoorbellBatch round trip. K warm hits thus cost 1 RTT instead of K.
  // Each op is then validated exactly like the single-op fast path (unit
  // count, CRC, liveness, byte-exact key compare, lac_wrong_value audit);
  // misses, stale bindings and mutations fall back to the serial entry
  // points in batch order, a stale cold hit's validated fused inner read
  // seeding its fallback descent for 0 extra RTTs. With no LAC installed
  // (or a single-op batch) this is the plain serial loop.
  void execute_batch(BatchOp* ops, size_t count) override;

  const SphinxStats& sphinx_stats() const { return sstats_; }
  InhtClient& inht() { return inht_; }
  filter::CuckooFilter* filter() { return filter_; }
  filter::PrefixEntryCache* pec() { return pec_; }
  filter::LeafAddressCache* lac() { return lac_; }

 protected:
  bool find_start(const art::TerminatedKey& key, PathEntry* out) override;

  // Scan entry: same SFC -> PEC/INHT machinery, but capped at `max_depth`
  // so the entry node's subtree covers the whole scan window (Sec. IV
  // applied to range starts).
  bool find_scan_start(const art::TerminatedKey& key, uint32_t max_depth,
                       PathEntry* out) override;

  // Every inner node a scan frontier expands is a freshly verified
  // (prefix, node) binding: feed both CN cache tiers, so scans warm the
  // same state point descents rely on. Mirrors on_visit_inner plus the PEC
  // refresh from on_inner_switched.
  void on_scan_inner(rdma::GlobalAddr addr,
                     const art::InnerImage& image) override {
    if (filter_ != nullptr) {
      endpoint_.advance_local(config_.filter_probe_ns);
      filter_->insert(image.prefix_hash_full());
    }
    if (pec_ != nullptr) {
      endpoint_.advance_local(config_.pec_probe_ns);
      pec_->insert(image.prefix_hash_full(),
                   pack_inht_payload(image.type(), addr));
    }
  }

  void on_visit_inner(const art::TerminatedKey& key,
                      const PathEntry& entry) override {
    (void)key;
    // Track every inner-node prefix we learn about (Sec. IV, Search:
    // "the client updates the succinct filter cache for any prefixes not
    // present in the cache").
    if (filter_ != nullptr && entry.image.depth() > 0) {
      endpoint_.advance_local(config_.filter_probe_ns);
      filter_->insert(entry.image.prefix_hash_full());
    }
  }

  void on_inner_created(Slice full_prefix, const art::InnerImage& image,
                        rdma::GlobalAddr addr) override {
    (void)full_prefix;
    // A failed insert (table full, or injected CAS losses exhausting the
    // retry budget) is tolerable: searches fall back to the parallel-read /
    // root path, and on_inner_switched re-inserts the entry later.
    if (!inht_.insert(image.prefix_hash_full(), image.type(), addr)) {
      sstats_.inht_insert_fails++;
    }
    if (filter_ != nullptr) filter_->insert(image.prefix_hash_full());
    if (pec_ != nullptr) {
      pec_->insert(image.prefix_hash_full(),
                   pack_inht_payload(image.type(), addr));
    }
  }

  void on_inner_switched(const art::InnerImage& old_image,
                         rdma::GlobalAddr old_addr,
                         const art::InnerImage& new_image,
                         rdma::GlobalAddr new_addr) override {
    const uint64_t hash = new_image.prefix_hash_full();
    if (!inht_.update(hash, old_image.type(), old_addr, new_image.type(),
                      new_addr)) {
      // The entry vanished (e.g. its insert lost a race earlier); make the
      // table eventually consistent by inserting the fresh payload.
      sstats_.inht_update_misses++;
      inht_.insert(hash, new_image.type(), new_addr);
    }
    // The filter is untouched: the node's full prefix -- the only thing the
    // filter tracks -- is unchanged by a type switch (Sec. III-B). The PEC
    // caches the *entry*, which did change: refresh it in place so this
    // CN's next search for the prefix goes straight to the new node.
    if (pec_ != nullptr) {
      pec_->insert(hash, pack_inht_payload(new_image.type(), new_addr));
    }
  }

  // A node observed stale with its image in hand: purge the PEC entry for
  // its prefix, but only if it still names this address (a concurrent
  // refresh with the successor node's address must survive).
  void invalidate_inner(rdma::GlobalAddr addr,
                        const art::InnerImage& image) override {
    if (pec_ != nullptr) {
      pec_->invalidate_if(image.prefix_hash_full(), addr.to48());
    }
  }

  // A freshly verified key -> leaf binding (point read, write-side leaf
  // install, scan emit): feed the leaf address cache. The full terminated
  // key hashes with the same prefix_hash the leaf's MN placement uses.
  void note_leaf_at(Slice terminated_key, rdma::GlobalAddr addr,
                    uint32_t units) override {
    if (lac_ == nullptr) return;
    endpoint_.advance_local(config_.lac_probe_ns);
    lac_->insert(art::prefix_hash(terminated_key),
                 filter::pack_lac_payload(units, addr.to48()));
  }

  // The key's leaf was retired at the delete's linearization point: purge
  // the binding, but only if it still names this address (a concurrent
  // reinsert's refresh with the new leaf address must survive).
  void note_leaf_retired(Slice terminated_key,
                         rdma::GlobalAddr addr) override {
    if (lac_ == nullptr) return;
    endpoint_.advance_local(config_.lac_probe_ns);
    lac_->invalidate_if(art::prefix_hash(terminated_key), addr.to48());
  }

 private:
  // Shared body of find_start/find_scan_start: longest verified prefix of
  // `key` no longer than `max_len`, tried filter-first. Bumps the shared
  // path counters (filter/PEC/parallel) but not the outcome counters --
  // those belong to the wrappers.
  bool start_search(const art::TerminatedKey& key, uint32_t max_len,
                    PathEntry* out);

  // Validates the node freshly fetched into out->image against what the
  // hash entry (or PEC) claimed, completing *out on success. Shared by the
  // INHT candidate loop and the PEC speculative paths.
  bool validate_start(uint32_t len, uint64_t hash, art::NodeType type,
                      rdma::GlobalAddr addr, PathEntry* out);

  // Validates INHT candidates for prefix length `len` and fills *out with
  // the first verified node (feeding the PEC on success).
  bool adopt_candidate(uint32_t len, uint64_t hash,
                       const std::vector<uint64_t>& payloads, PathEntry* out);

  // One shortcut attempt at prefix length `len`: PEC probe (speculative
  // node read, doorbell-fused with the INHT group read when the entry is
  // cold), then -- on a PEC miss with `inht_on_miss`, or after a stale hot
  // entry -- the INHT hash-entry read.
  bool try_start_at(uint32_t len, uint64_t hash, bool inht_on_miss,
                    PathEntry* out);

  InhtClient inht_;
  filter::CuckooFilter* filter_;
  filter::PrefixEntryCache* pec_;
  filter::LeafAddressCache* lac_;
  SphinxConfig config_;
  SphinxStats sstats_;
  std::vector<uint64_t> hash_scratch_;
  std::vector<uint64_t> payload_scratch_;
  // Per-descent scratch for the parallel multi-prefix INHT read and the
  // fused speculative read (reused across operations; no per-op allocs).
  std::vector<std::array<uint64_t, race::kSlotsPerGroup>> group_scratch_;
  std::array<uint64_t, race::kSlotsPerGroup> fused_group_;
  // LAC fast-path scratch: the speculative leaf image, and -- when a stale
  // cold hit's fused inner read validated -- a pending descent start the
  // immediately following fallback search consumes through find_start(),
  // making the rescue read free (0 extra RTTs).
  art::LeafImage lac_leaf_;
  PathEntry pending_start_;
  bool have_pending_start_ = false;
  // Per-op state for execute_batch's resumable machine (reused across
  // batches; grown once to the pipeline depth, never shrunk, so steady
  // state is allocation-free). Each slot mirrors exactly the locals the
  // single-op fast path keeps on its stack.
  struct BatchSlot {
    std::optional<art::TerminatedKey> key;
    uint64_t full_hash = 0;
    uint32_t units = 0;
    rdma::GlobalAddr leaf_addr;
    bool hot = false;
    bool fused = false;    // op rides the shared speculative round trip
    bool pending = false;  // stale leaf, but fused inner read validated
    uint32_t fused_len = 0;
    uint64_t fused_hash = 0;
    uint64_t fused_payload = 0;
    art::LeafImage leaf;
    PathEntry inner;  // fused inner read lands here
  };
  std::vector<BatchSlot> batch_slots_;
};

}  // namespace sphinx::core
