// SphinxIndex: the paper's hybrid index. An adaptive radix tree on
// disaggregated memory whose inner nodes are additionally indexed by the
// Inner Node Hash Table (Sec. III-A), fronted on each compute node by a
// Succinct Filter Cache (Sec. III-B).
//
// Search path (Sec. IV): hash all prefixes of the key locally, find the
// longest prefix present in the filter cache, read that prefix's hash
// entry (1 RTT), read the inner node it points to (1 RTT), then descend --
// normally straight to the leaf (1 RTT): three round trips end to end.
// Filter misses fall back to reading the hash entries of *all* prefixes in
// one doorbell-batched round trip (the Theta(L)-bandwidth base mechanism);
// hash-table misses fall back to a plain root-to-leaf traversal, which also
// repopulates the filter via on_visit_inner().
#pragma once

#include <cstdint>
#include <vector>

#include "art/remote_tree.h"
#include "core/inht.h"
#include "filter/cuckoo_filter.h"

namespace sphinx::core {

struct SphinxConfig {
  // Ablation A1: when false the filter cache is skipped entirely and every
  // operation uses the parallel multi-entry INHT read.
  bool use_filter = true;
  // CPU cost model for the CN-local work unique to Sphinx.
  uint64_t filter_probe_ns = 15;
  uint64_t prefix_hash_ns = 25;
  art::TreeConfig tree;
};

// Shared bootstrap state for one Sphinx instance (tree + per-MN INHT).
struct SphinxRefs {
  art::TreeRef tree;
  std::vector<race::TableRef> inht;
};

SphinxRefs create_sphinx(mem::Cluster& cluster,
                         uint8_t inht_initial_depth = 4);

struct SphinxStats {
  uint64_t filter_hits = 0;        // filter said "present" for some prefix
  uint64_t fp_rejects = 0;         // filter hit not confirmed by INHT/node
  uint64_t start_successes = 0;    // descents started below the root
  uint64_t parallel_fallbacks = 0; // multi-prefix doorbell reads issued
  uint64_t root_fallbacks = 0;     // find_start gave up -> root traversal
  uint64_t inht_update_misses = 0; // type-switch entry CAS lost a race
  uint64_t inht_insert_fails = 0;  // INHT insert gave up (table full / faults)
};

class SphinxIndex final : public art::RemoteTree {
 public:
  // `filter` is the CN-wide succinct filter cache shared by every worker of
  // this compute node; pass nullptr to run INHT-only (equivalent to
  // use_filter = false).
  SphinxIndex(mem::Cluster& cluster, rdma::Endpoint& endpoint,
              mem::RemoteAllocator& allocator, const SphinxRefs& refs,
              filter::CuckooFilter* filter,
              const SphinxConfig& config = SphinxConfig());

  const char* name() const override { return "Sphinx"; }

  const SphinxStats& sphinx_stats() const { return sstats_; }
  InhtClient& inht() { return inht_; }
  filter::CuckooFilter* filter() { return filter_; }

 protected:
  bool find_start(const art::TerminatedKey& key, PathEntry* out) override;

  void on_visit_inner(const art::TerminatedKey& key,
                      const PathEntry& entry) override {
    (void)key;
    // Track every inner-node prefix we learn about (Sec. IV, Search:
    // "the client updates the succinct filter cache for any prefixes not
    // present in the cache").
    if (filter_ != nullptr && entry.image.depth() > 0) {
      endpoint_.advance_local(config_.filter_probe_ns);
      filter_->insert(entry.image.prefix_hash_full());
    }
  }

  void on_inner_created(Slice full_prefix, const art::InnerImage& image,
                        rdma::GlobalAddr addr) override {
    (void)full_prefix;
    // A failed insert (table full, or injected CAS losses exhausting the
    // retry budget) is tolerable: searches fall back to the parallel-read /
    // root path, and on_inner_switched re-inserts the entry later.
    if (!inht_.insert(image.prefix_hash_full(), image.type(), addr)) {
      sstats_.inht_insert_fails++;
    }
    if (filter_ != nullptr) filter_->insert(image.prefix_hash_full());
  }

  void on_inner_switched(const art::InnerImage& old_image,
                         rdma::GlobalAddr old_addr,
                         const art::InnerImage& new_image,
                         rdma::GlobalAddr new_addr) override {
    const uint64_t hash = new_image.prefix_hash_full();
    if (!inht_.update(hash, old_image.type(), old_addr, new_image.type(),
                      new_addr)) {
      // The entry vanished (e.g. its insert lost a race earlier); make the
      // table eventually consistent by inserting the fresh payload.
      sstats_.inht_update_misses++;
      inht_.insert(hash, new_image.type(), new_addr);
    }
    // The filter is untouched: the node's full prefix -- the only thing the
    // filter tracks -- is unchanged by a type switch (Sec. III-B).
  }

 private:
  // Validates INHT candidates for prefix length `len` and fills *out with
  // the first verified node.
  bool adopt_candidate(uint32_t len, uint64_t hash,
                       const std::vector<uint64_t>& payloads, PathEntry* out);

  InhtClient inht_;
  filter::CuckooFilter* filter_;
  SphinxConfig config_;
  SphinxStats sstats_;
  std::vector<uint64_t> hash_scratch_;
  std::vector<uint64_t> payload_scratch_;
};

}  // namespace sphinx::core
