#include "filter/cuckoo_filter.h"

#include <bit>

namespace sphinx::filter {

namespace {

uint64_t round_up_pow2(uint64_t v) {
  if (v < 2) return 2;
  return std::bit_ceil(v);
}

}  // namespace

std::unique_ptr<CuckooFilter> CuckooFilter::with_budget(
    uint64_t budget_bytes) {
  const uint64_t slots = budget_bytes / sizeof(uint16_t);
  uint64_t buckets = slots / kSlotsPerBucket;
  if (buckets < 2) buckets = 2;
  // Round *down* to a power of two so the filter never exceeds the budget.
  const uint64_t up = round_up_pow2(buckets);
  return std::make_unique<CuckooFilter>(up > buckets ? up / 2 : up);
}

CuckooFilter::CuckooFilter(uint64_t num_buckets)
    : num_buckets_(round_up_pow2(num_buckets)),
      slots_(std::make_unique<std::atomic<uint16_t>[]>(num_buckets_ *
                                                       kSlotsPerBucket)) {
  for (uint64_t i = 0; i < num_buckets_ * kSlotsPerBucket; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

bool CuckooFilter::contains(uint64_t hash) {
  const uint16_t fp = fp_of(hash);
  const uint64_t i1 = index1(hash);
  const uint64_t i2 = alt_index(i1, fp);
  for (uint64_t idx : {i1, i2}) {
    std::atomic<uint16_t>* b = bucket(idx);
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      const uint16_t v = b[s].load(std::memory_order_relaxed);
      if ((v & kFpMask) == fp) {
        if ((v & kHotBit) == 0) {
          b[s].fetch_or(kHotBit, std::memory_order_relaxed);
        }
        return true;
      }
    }
  }
  return false;
}

bool CuckooFilter::contains_cold(uint64_t hash) const {
  const uint16_t fp = fp_of(hash);
  const uint64_t i1 = index1(hash);
  const uint64_t i2 = alt_index(i1, fp);
  for (uint64_t idx : {i1, i2}) {
    const std::atomic<uint16_t>* b = bucket(idx);
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      if ((b[s].load(std::memory_order_relaxed) & kFpMask) == fp) return true;
    }
  }
  return false;
}

bool CuckooFilter::try_insert_empty(uint64_t index, uint16_t fp) {
  std::atomic<uint16_t>* b = bucket(index);
  for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
    uint16_t expected = 0;
    if (b[s].load(std::memory_order_relaxed) == 0 &&
        b[s].compare_exchange_strong(expected, fp,
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

bool CuckooFilter::try_second_chance(uint64_t i1, uint64_t i2, uint16_t fp) {
  // Collect cold candidates across both buckets and replace a random one
  // (the paper: "randomly selects an entry with the hotness bit set to 0").
  struct Candidate {
    std::atomic<uint16_t>* slot;
    uint16_t value;
  };
  Candidate cold[2 * kSlotsPerBucket];
  uint32_t n = 0;
  for (uint64_t idx : {i1, i2}) {
    std::atomic<uint16_t>* b = bucket(idx);
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      const uint16_t v = b[s].load(std::memory_order_relaxed);
      if (v != 0 && (v & kHotBit) == 0) cold[n++] = {&b[s], v};
    }
  }
  while (n > 0) {
    const uint32_t pick =
        static_cast<uint32_t>(next_random() % n);
    uint16_t expected = cold[pick].value;
    if (cold[pick].slot->compare_exchange_strong(expected, fp,
                                                 std::memory_order_relaxed)) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    cold[pick] = cold[--n];  // slot changed under us; try another
  }
  return false;
}

bool CuckooFilter::relocate_insert(uint64_t start_index, uint16_t fp) {
  // Classic cuckoo kicking, serialized: this path only triggers when all
  // eight candidate slots are hot, which is rare in steady state.
  std::lock_guard<std::mutex> lock(relocate_mu_);
  constexpr int kMaxKicks = 256;
  uint64_t index = start_index;
  uint16_t carried = fp;
  for (int kick = 0; kick < kMaxKicks; ++kick) {
    if (try_insert_empty(index, carried)) {
      relocations_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    std::atomic<uint16_t>* b = bucket(index);
    const uint32_t victim_slot =
        static_cast<uint32_t>(next_random() % kSlotsPerBucket);
    const uint16_t victim = b[victim_slot].load(std::memory_order_relaxed);
    if (victim == 0) continue;  // raced with an erase; retry this bucket
    // Displace the victim; relocated entries lose their hotness (paper:
    // "hotness bits of all relocated entries are reset to 0").
    b[victim_slot].store(carried, std::memory_order_relaxed);
    carried = victim & kFpMask;
    index = alt_index(index, carried);
  }
  failures_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool CuckooFilter::insert(uint64_t hash) {
  inserts_.fetch_add(1, std::memory_order_relaxed);
  const uint16_t fp = fp_of(hash);
  const uint64_t i1 = index1(hash);
  const uint64_t i2 = alt_index(i1, fp);

  // Already present? (Idempotent inserts keep duplicates from eating
  // capacity when several workers discover the same prefix.)
  for (uint64_t idx : {i1, i2}) {
    std::atomic<uint16_t>* b = bucket(idx);
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      if ((b[s].load(std::memory_order_relaxed) & kFpMask) == fp) {
        insert_dupes_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  if (try_insert_empty(i1, fp) || try_insert_empty(i2, fp)) return true;
  if (try_second_chance(i1, i2, fp)) return true;
  return relocate_insert(next_random() % 2 ? i1 : i2, fp);
}

bool CuckooFilter::erase(uint64_t hash) {
  const uint16_t fp = fp_of(hash);
  const uint64_t i1 = index1(hash);
  const uint64_t i2 = alt_index(i1, fp);
  for (uint64_t idx : {i1, i2}) {
    std::atomic<uint16_t>* b = bucket(idx);
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      uint16_t v = b[s].load(std::memory_order_relaxed);
      while ((v & kFpMask) == fp) {
        if (b[s].compare_exchange_weak(v, 0, std::memory_order_relaxed)) {
          return true;
        }
      }
    }
  }
  return false;
}

uint64_t CuckooFilter::size() const {
  uint64_t n = 0;
  for (uint64_t i = 0; i < num_buckets_ * kSlotsPerBucket; ++i) {
    if (slots_[i].load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

uint64_t CuckooFilter::next_random() {
  // splitmix64 over an atomic counter: thread-safe, allocation-free.
  return splitmix64(rng_state_.fetch_add(1, std::memory_order_relaxed));
}

CuckooFilterStats CuckooFilter::stats() const {
  CuckooFilterStats s;
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.insert_dupes = insert_dupes_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.relocations = relocations_.load(std::memory_order_relaxed);
  s.failures = failures_.load(std::memory_order_relaxed);
  return s;
}

void CuckooFilter::reset_stats() {
  inserts_.store(0, std::memory_order_relaxed);
  insert_dupes_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  relocations_.store(0, std::memory_order_relaxed);
  failures_.store(0, std::memory_order_relaxed);
}

}  // namespace sphinx::filter
