// Succinct Filter Cache substrate: a concurrent cuckoo filter (Fan et al.,
// CoNEXT'14) extended with the paper's hotness-bit second-chance eviction
// (Sec. III-B):
//
//   * each 16-bit slot holds a 12-bit fingerprint plus 1 hotness bit;
//   * lookups set the hotness bit (entry was recently used);
//   * when both candidate buckets are full, insertion evicts a random
//     cold (hot=0) entry; if every entry is hot, classic cuckoo relocation
//     makes room and clears the hotness of every relocated entry.
//
// The filter is shared by all workers of one compute node. Lookups and
// simple inserts are lock-free; the rare relocation path takes a mutex.
// Because the filter only *hints* at prefix existence (Sphinx verifies
// against the remote index and falls back on false positives), occasional
// racy misses are harmless.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/hash.h"

namespace sphinx::filter {

struct CuckooFilterStats {
  uint64_t inserts = 0;
  uint64_t insert_dupes = 0;
  uint64_t evictions = 0;    // cold-entry second-chance replacements
  uint64_t relocations = 0;  // cuckoo kick chains
  uint64_t failures = 0;     // insert dropped (kick chain exhausted)
};

class CuckooFilter {
 public:
  static constexpr uint32_t kSlotsPerBucket = 4;
  static constexpr uint16_t kFpMask = 0x0fff;   // 12-bit fingerprint
  static constexpr uint16_t kHotBit = 0x1000;

  // Sizes the filter to approximately `budget_bytes` of slot storage.
  static std::unique_ptr<CuckooFilter> with_budget(uint64_t budget_bytes);

  // `num_buckets` is rounded up to a power of two.
  explicit CuckooFilter(uint64_t num_buckets);

  // Membership check; marks the entry hot when found.
  bool contains(uint64_t hash);

  // Membership check without touching hotness (used by tests/stats).
  bool contains_cold(uint64_t hash) const;

  // Inserts the item. Always succeeds from the caller's perspective: under
  // pressure it evicts a cold victim (second chance) or relocates. Returns
  // false only if the item was silently dropped (exhausted kick chain),
  // which degrades hit rate but never correctness.
  bool insert(uint64_t hash);

  // Removes one matching fingerprint if present.
  bool erase(uint64_t hash);

  uint64_t num_buckets() const { return num_buckets_; }
  uint64_t capacity() const { return num_buckets_ * kSlotsPerBucket; }
  uint64_t memory_bytes() const { return capacity() * sizeof(uint16_t); }

  // Approximate number of live entries.
  uint64_t size() const;

  CuckooFilterStats stats() const;
  void reset_stats();

 private:
  uint16_t fp_of(uint64_t hash) const {
    uint16_t fp = static_cast<uint16_t>((hash >> 45) & kFpMask);
    return fp == 0 ? 1 : fp;
  }
  uint64_t index1(uint64_t hash) const { return hash & (num_buckets_ - 1); }
  uint64_t alt_index(uint64_t index, uint16_t fp) const {
    // Partial-key cuckoo hashing: the alternate bucket is computable from
    // (index, fp) alone, which is what makes relocation possible without
    // the original key.
    return (index ^ (static_cast<uint64_t>(fp) * 0x5bd1e9955bd1e995ULL)) &
           (num_buckets_ - 1);
  }
  std::atomic<uint16_t>* bucket(uint64_t index) {
    return slots_.get() + index * kSlotsPerBucket;
  }
  const std::atomic<uint16_t>* bucket(uint64_t index) const {
    return slots_.get() + index * kSlotsPerBucket;
  }

  bool try_insert_empty(uint64_t index, uint16_t fp);
  bool try_second_chance(uint64_t index1, uint64_t index2, uint16_t fp);
  bool relocate_insert(uint64_t start_index, uint16_t fp);
  uint64_t next_random();

  uint64_t num_buckets_;  // power of two
  std::unique_ptr<std::atomic<uint16_t>[]> slots_;
  std::mutex relocate_mu_;
  std::atomic<uint64_t> rng_state_{0x9e3779b97f4a7c15ULL};

  mutable std::atomic<uint64_t> inserts_{0};
  mutable std::atomic<uint64_t> insert_dupes_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> relocations_{0};
  mutable std::atomic<uint64_t> failures_{0};
};

}  // namespace sphinx::filter
