#include "filter/leaf_addr_cache.h"

#include <bit>

namespace sphinx::filter {

namespace {

uint64_t round_up_pow2(uint64_t v) {
  if (v < 2) return 2;
  return std::bit_ceil(v);
}

}  // namespace

std::unique_ptr<LeafAddressCache> LeafAddressCache::with_budget(
    uint64_t budget_bytes) {
  const uint64_t slots = budget_bytes / kSlotBytes;
  uint64_t sets = slots / kWays;
  if (sets < 2) sets = 2;
  // Round *down* to a power of two so the cache never exceeds the budget.
  const uint64_t up = round_up_pow2(sets);
  return std::make_unique<LeafAddressCache>(up > sets ? up / 2 : up);
}

LeafAddressCache::LeafAddressCache(uint64_t num_sets)
    : num_sets_(round_up_pow2(num_sets)),
      slots_(std::make_unique<std::atomic<uint64_t>[]>(num_sets_ * kWays)) {
  for (uint64_t i = 0; i < num_sets_ * kWays; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

bool LeafAddressCache::lookup(uint64_t key_hash, uint64_t* payload_out,
                              bool* was_hot) {
  const uint64_t tag = tag_of(key_hash);
  std::atomic<uint64_t>* set = set_of(set_index(key_hash));
  for (uint32_t w = 0; w < kWays; ++w) {
    const uint64_t word = set[w].load(std::memory_order_relaxed);
    if (word == 0 || word_tag(word) != tag) continue;
    *payload_out = word & kPayloadMask;
    *was_hot = (word & kHotBit) != 0;
    if (!*was_hot) {
      // Best-effort promotion: if the slot changed underneath (refresh or
      // eviction), the CAS just fails and the entry stays cold.
      uint64_t expected = word;
      set[w].compare_exchange_strong(expected, word | kHotBit,
                                     std::memory_order_relaxed);
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void LeafAddressCache::insert(uint64_t key_hash, uint64_t payload) {
  const uint64_t tag = tag_of(key_hash);
  std::atomic<uint64_t>* set = set_of(set_index(key_hash));
  inserts_.fetch_add(1, std::memory_order_relaxed);

  // Refresh in place: an out-of-place update moved the key to a new block.
  // Hotness carries over -- the *key* is hot, not the stale address.
  for (uint32_t w = 0; w < kWays; ++w) {
    const uint64_t word = set[w].load(std::memory_order_relaxed);
    if (word == 0 || word_tag(word) != tag) continue;
    set[w].store(tag | (word & kHotBit) | payload, std::memory_order_relaxed);
    return;
  }

  // Claim an empty way; the single-word CAS publishes tag and payload
  // together, so a racing lookup sees either nothing or the whole entry.
  for (uint32_t w = 0; w < kWays; ++w) {
    uint64_t expected = 0;
    if (set[w].load(std::memory_order_relaxed) == 0 &&
        set[w].compare_exchange_strong(expected, tag | payload,
                                       std::memory_order_relaxed)) {
      return;
    }
  }

  // Second chance: replace a random cold victim (paper Sec. III-B, applied
  // to leaf entries instead of fingerprints).
  uint32_t cold[kWays];
  uint32_t n = 0;
  for (uint32_t w = 0; w < kWays; ++w) {
    if ((set[w].load(std::memory_order_relaxed) & kHotBit) == 0) {
      cold[n++] = w;
    }
  }
  uint32_t victim;
  if (n > 0) {
    victim = cold[next_random() % n];
  } else {
    // Every way is hot: clear the set's hotness and evict a rotating way,
    // mirroring the filter's relocation-time hotness reset.
    for (uint32_t w = 0; w < kWays; ++w) {
      set[w].fetch_and(~kHotBit, std::memory_order_relaxed);
    }
    victim = static_cast<uint32_t>(next_random() % kWays);
  }
  set[victim].store(tag | payload, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

bool LeafAddressCache::invalidate_if(uint64_t key_hash, uint64_t addr48) {
  const uint64_t tag = tag_of(key_hash);
  std::atomic<uint64_t>* set = set_of(set_index(key_hash));
  for (uint32_t w = 0; w < kWays; ++w) {
    uint64_t word = set[w].load(std::memory_order_relaxed);
    if (word == 0 || word_tag(word) != tag) continue;
    if ((word & kAddrMask) != addr48) continue;  // already refreshed; keep it
    // CAS on the exact observed word: a concurrent refresh to the key's new
    // address wins the race and survives the purge.
    if (set[w].compare_exchange_strong(word, 0, std::memory_order_relaxed)) {
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  return false;
}

uint64_t LeafAddressCache::size() const {
  uint64_t n = 0;
  for (uint64_t i = 0; i < num_sets_ * kWays; ++i) {
    if (slots_[i].load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

uint64_t LeafAddressCache::next_random() {
  return splitmix64(rng_state_.fetch_add(1, std::memory_order_relaxed));
}

LeafAddrCacheStats LeafAddressCache::stats() const {
  LeafAddrCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

void LeafAddressCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  inserts_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
}

}  // namespace sphinx::filter
