// Leaf Address Cache (LAC): the third CN-wide cache tier next to the
// succinct filter cache and the prefix entry cache. Where the PEC maps a
// *prefix* hash to an inner node's INHT payload (3 RTTs -> 2), the LAC maps
// a *full-key* hash straight to the leaf's address and size, letting a warm
// point read skip address resolution entirely: one speculative leaf read is
// the whole operation (2 RTTs -> 1).
//
// Coherence is by validation, not invalidation messages: the cached
// {units, address} pair is only a *hint*, and the fetched leaf is verified
// exactly as a descent-found leaf would be -- unit count against the
// header, CRC revalidation, non-Invalid status, and a byte-exact compare of
// the stored terminated key against the searched key. That last compare is
// the same guard that makes point descents immune to recycled blocks
// (remote_tree.cpp, frontier linkage notes), so a stale or ABA-recycled
// address can cost a wasted read but never a wrong answer. Stale entries
// are purged via invalidate_if() keyed on the address, so a concurrent
// refresh with the key's new leaf address is never dropped.
//
// Entries are populated on every successful point read, write-side leaf
// install, and scan leaf visit; retired leaves (remove / out-of-place
// update) purge their entry at the linearization point. Retired leaves
// *are* recycled, but only after stamp+2 epochs prove every op that could
// hold the old reference has quiesced (DESIGN.md sect. 14), so a stale
// entry can point at a tombstone or even at an unrelated live leaf -- the
// byte-exact key compare turns both into a clean miss, never a wrong
// answer (pinned by Reclaim.RecycledLeafBlockIsNeverServedForItsOldKey).
//
// Unlike the PEC's {tag, payload} atomic pair, a LAC slot is a single
// 8-byte word: tag(9) | hot(1) | units(6) | addr(48). The hot set a point
// workload touches is much larger than the set of hot *prefixes*, so the
// LAC buys entry density with a short tag -- a false tag match costs one
// wasted speculative read (caught by the key compare and purged), at a
// ~1/512 rate, while doubling how many leaf bindings fit in the budget.
// One-word slots also make every transition a single CAS: no torn pairs
// exist at all. Eviction keeps the paper's hotness-bit second-chance
// policy, shared by all workers of one compute node.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/hash.h"

namespace sphinx::filter {

struct LeafAddrCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;      // second-chance / rotation replacements
  uint64_t invalidations = 0;  // stale entries purged after validation
};

// Caller-visible payload layout: units<<48 | addr48. Leaf unit counts are
// six bits (pack_leaf_slot asserts units < 64), so the packed value spans
// 54 bits, leaving the slot word's top ten for the tag and hot bit.
inline constexpr uint64_t kLacAddrMask = (1ULL << 48) - 1;

inline uint64_t pack_lac_payload(uint32_t units, uint64_t addr48) {
  return (static_cast<uint64_t>(units) << 48) | (addr48 & kLacAddrMask);
}
inline uint32_t lac_payload_units(uint64_t payload) {
  return static_cast<uint32_t>((payload >> 48) & 0x3f);
}
inline uint64_t lac_payload_addr48(uint64_t payload) {
  return payload & kLacAddrMask;
}

class LeafAddressCache {
 public:
  static constexpr uint32_t kWays = 4;        // slots per set
  static constexpr uint64_t kSlotBytes = 8;   // one packed word
  static constexpr uint64_t kAddrMask = kLacAddrMask;

  // Slot word layout (0 = empty slot).
  static constexpr uint32_t kTagShift = 55;   // [63:55] 9-bit tag, nonzero
  static constexpr uint64_t kHotBit = 1ULL << 54;
  static constexpr uint64_t kPayloadMask = kHotBit - 1;  // units | addr

  // Sizes the cache to approximately `budget_bytes` of slot storage
  // (rounded down to a power-of-two set count, like the other two tiers).
  static std::unique_ptr<LeafAddressCache> with_budget(uint64_t budget_bytes);

  // `num_sets` is rounded up to a power of two.
  explicit LeafAddressCache(uint64_t num_sets);

  // Looks up `key_hash` (full terminated-key hash). On a hit stores the
  // cached {units, addr} payload in *payload_out and the *pre-lookup*
  // hotness in *was_hot, then marks the entry hot. Cold hits are
  // low-confidence: the entry was not recently validated, so callers hedge
  // the speculative leaf read with a fused fallback read.
  bool lookup(uint64_t key_hash, uint64_t* payload_out, bool* was_hot);

  // Upserts `key_hash -> payload` (payload must fit kPayloadMask, which
  // pack_lac_payload guarantees: 54 significant bits). An existing entry
  // for the hash is replaced in place -- an out-of-place update moved the
  // key to a new block -- keeping its hotness; new entries start cold.
  // Under pressure a random cold victim is replaced (second chance); when
  // every way is hot, all hotness in the set is cleared and a rotating
  // victim is evicted.
  void insert(uint64_t key_hash, uint64_t payload);

  // Purges the entry for `key_hash` only if it still points at `addr48` --
  // a concurrent refresh with the key's new leaf address must not be
  // dropped. Returns true when a slot was cleared.
  bool invalidate_if(uint64_t key_hash, uint64_t addr48);

  uint64_t num_sets() const { return num_sets_; }
  uint64_t capacity() const { return num_sets_ * kWays; }
  uint64_t memory_bytes() const { return capacity() * kSlotBytes; }

  // Approximate number of live entries.
  uint64_t size() const;

  LeafAddrCacheStats stats() const;
  void reset_stats();

 private:
  // Tag bits come from the hash's high end (set_index consumes remixed low
  // bits); 0 would collide with the empty-slot sentinel, so it remaps to 1
  // (the same trick the cuckoo filter plays with fingerprint 0).
  static uint64_t tag_of(uint64_t hash) {
    const uint64_t t = hash >> kTagShift;
    return (t == 0 ? 1 : t) << kTagShift;
  }
  static uint64_t word_tag(uint64_t word) {
    return word >> kTagShift << kTagShift;
  }
  uint64_t set_index(uint64_t hash) const {
    // Remix so the set index is independent of the bits the cuckoo filter
    // and the consistent-hash ring consume.
    return splitmix64(hash) & (num_sets_ - 1);
  }
  std::atomic<uint64_t>* set_of(uint64_t index) {
    return slots_.get() + index * kWays;
  }
  const std::atomic<uint64_t>* set_of(uint64_t index) const {
    return slots_.get() + index * kWays;
  }
  uint64_t next_random();

  uint64_t num_sets_;  // power of two
  std::unique_ptr<std::atomic<uint64_t>[]> slots_;
  std::atomic<uint64_t> rng_state_{0x9e3779b97f4a7c15ULL};

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> inserts_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> invalidations_{0};
};

}  // namespace sphinx::filter
