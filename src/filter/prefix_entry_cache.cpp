#include "filter/prefix_entry_cache.h"

#include <bit>

namespace sphinx::filter {

namespace {

uint64_t round_up_pow2(uint64_t v) {
  if (v < 2) return 2;
  return std::bit_ceil(v);
}

}  // namespace

std::unique_ptr<PrefixEntryCache> PrefixEntryCache::with_budget(
    uint64_t budget_bytes) {
  const uint64_t slots = budget_bytes / kSlotBytes;
  uint64_t sets = slots / kWays;
  if (sets < 2) sets = 2;
  // Round *down* to a power of two so the cache never exceeds the budget.
  const uint64_t up = round_up_pow2(sets);
  return std::make_unique<PrefixEntryCache>(up > sets ? up / 2 : up);
}

PrefixEntryCache::PrefixEntryCache(uint64_t num_sets)
    : num_sets_(round_up_pow2(num_sets)),
      slots_(std::make_unique<Slot[]>(num_sets_ * kWays)) {
  for (uint64_t i = 0; i < num_sets_ * kWays; ++i) {
    slots_[i].tag.store(0, std::memory_order_relaxed);
    slots_[i].payload.store(0, std::memory_order_relaxed);
  }
}

bool PrefixEntryCache::lookup(uint64_t prefix_hash, uint64_t* payload_out,
                              bool* was_hot) {
  const uint64_t tag = tag_of(prefix_hash);
  Slot* set = set_of(set_index(prefix_hash));
  for (uint32_t w = 0; w < kWays; ++w) {
    if (set[w].tag.load(std::memory_order_relaxed) != tag) continue;
    const uint64_t p = set[w].payload.load(std::memory_order_relaxed);
    // payload 0 = claimed-but-unset (insert in flight) or just invalidated.
    if ((p & ~kHotBit) == 0) continue;
    *payload_out = p & ~kHotBit;
    *was_hot = (p & kHotBit) != 0;
    if (!*was_hot) set[w].payload.fetch_or(kHotBit, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void PrefixEntryCache::insert(uint64_t prefix_hash, uint64_t payload) {
  const uint64_t tag = tag_of(prefix_hash);
  Slot* set = set_of(set_index(prefix_hash));
  inserts_.fetch_add(1, std::memory_order_relaxed);

  // Refresh in place: a type switch replaced the payload for this prefix.
  // Hotness carries over -- the *prefix* is hot, not the stale address.
  for (uint32_t w = 0; w < kWays; ++w) {
    if (set[w].tag.load(std::memory_order_relaxed) != tag) continue;
    const uint64_t old = set[w].payload.load(std::memory_order_relaxed);
    set[w].payload.store(payload | (old & kHotBit),
                         std::memory_order_relaxed);
    return;
  }

  // Claim an empty way. The payload is published after the tag, so a racing
  // lookup between the two stores sees payload 0 and reports a miss.
  for (uint32_t w = 0; w < kWays; ++w) {
    uint64_t expected = 0;
    if (set[w].tag.load(std::memory_order_relaxed) == 0 &&
        set[w].tag.compare_exchange_strong(expected, tag,
                                           std::memory_order_relaxed)) {
      set[w].payload.store(payload, std::memory_order_relaxed);
      return;
    }
  }

  // Second chance: replace a random cold victim (paper Sec. III-B, applied
  // to entries instead of fingerprints).
  uint32_t cold[kWays];
  uint32_t n = 0;
  for (uint32_t w = 0; w < kWays; ++w) {
    if ((set[w].payload.load(std::memory_order_relaxed) & kHotBit) == 0) {
      cold[n++] = w;
    }
  }
  uint32_t victim;
  if (n > 0) {
    victim = cold[next_random() % n];
  } else {
    // Every way is hot: clear the set's hotness and evict a rotating way,
    // mirroring the filter's relocation-time hotness reset.
    for (uint32_t w = 0; w < kWays; ++w) {
      set[w].payload.fetch_and(~kHotBit, std::memory_order_relaxed);
    }
    victim = static_cast<uint32_t>(next_random() % kWays);
  }
  // Invalidate-then-publish so no lookup ever pairs the new tag with the
  // victim's old payload.
  set[victim].payload.store(0, std::memory_order_relaxed);
  set[victim].tag.store(tag, std::memory_order_relaxed);
  set[victim].payload.store(payload, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

bool PrefixEntryCache::invalidate_if(uint64_t prefix_hash, uint64_t addr48) {
  const uint64_t tag = tag_of(prefix_hash);
  Slot* set = set_of(set_index(prefix_hash));
  for (uint32_t w = 0; w < kWays; ++w) {
    if (set[w].tag.load(std::memory_order_relaxed) != tag) continue;
    const uint64_t p = set[w].payload.load(std::memory_order_relaxed);
    if ((p & ~kHotBit) == 0) continue;
    if ((p & kAddrMask) != addr48) continue;  // already refreshed; keep it
    // Payload first, tag second: a lookup racing with the two stores sees
    // either a dead payload (miss) or a free slot, never a resurrected
    // stale entry.
    set[w].payload.store(0, std::memory_order_relaxed);
    set[w].tag.store(0, std::memory_order_relaxed);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

uint64_t PrefixEntryCache::size() const {
  uint64_t n = 0;
  for (uint64_t i = 0; i < num_sets_ * kWays; ++i) {
    if (slots_[i].tag.load(std::memory_order_relaxed) != 0 &&
        (slots_[i].payload.load(std::memory_order_relaxed) & ~kHotBit) != 0) {
      ++n;
    }
  }
  return n;
}

uint64_t PrefixEntryCache::next_random() {
  return splitmix64(rng_state_.fetch_add(1, std::memory_order_relaxed));
}

PrefixEntryCacheStats PrefixEntryCache::stats() const {
  PrefixEntryCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

void PrefixEntryCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  inserts_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
}

}  // namespace sphinx::filter
