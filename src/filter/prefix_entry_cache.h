// Prefix Entry Cache (PEC): the second CN-wide cache tier next to the
// succinct filter cache. Where the cuckoo filter answers "does an inner
// node with this prefix *exist*?", the PEC answers "where is it?": it maps
// a prefix hash to the 8-byte INHT payload {node type, 48-bit address},
// letting a search skip the hash-entry read entirely (3 RTTs -> 2).
//
// Coherence is by validation, not invalidation messages: the cached payload
// is only a *hint*, and the fetched node is verified against the prefix
// hash, type and depth exactly as an INHT-read candidate would be
// (SphinxIndex::adopt_candidate). A stale entry therefore costs at most one
// wasted node read -- or zero, when the speculative read is doorbell-fused
// with the INHT group read -- never a wrong answer.
//
// Concurrency mirrors the cuckoo filter: the cache is shared by all workers
// of one compute node; slots are a pair of relaxed atomics (tag word +
// payload word), lookups and inserts are lock-free, and eviction reuses the
// paper's hotness-bit second-chance policy (Sec. III-B). Torn tag/payload
// pairs are harmless: a mismatched payload fails remote validation and the
// slot is purged via invalidate_if().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/hash.h"

namespace sphinx::filter {

struct PrefixEntryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;      // second-chance / rotation replacements
  uint64_t invalidations = 0;  // stale entries purged after validation
};

class PrefixEntryCache {
 public:
  static constexpr uint32_t kWays = 4;            // slots per set
  static constexpr uint64_t kHotBit = 1ULL << 63;  // in the payload word
  static constexpr uint64_t kSlotBytes = 16;       // tag + payload
  static constexpr uint64_t kAddrMask = (1ULL << 48) - 1;

  // Sizes the cache to approximately `budget_bytes` of slot storage
  // (rounded down to a power-of-two set count, like the cuckoo filter).
  static std::unique_ptr<PrefixEntryCache> with_budget(uint64_t budget_bytes);

  // `num_sets` is rounded up to a power of two.
  explicit PrefixEntryCache(uint64_t num_sets);

  // Looks up `prefix_hash`. On a hit stores the cached INHT payload (hot
  // bit stripped) in *payload_out and the *pre-lookup* hotness in *was_hot,
  // then marks the entry hot. Cold hits are low-confidence: the entry was
  // not recently validated, so callers hedge with speculative fusion.
  bool lookup(uint64_t prefix_hash, uint64_t* payload_out, bool* was_hot);

  // Upserts `prefix_hash -> payload` (payload must have the hot bit clear,
  // which pack_inht_payload guarantees: 51 significant bits). An existing
  // entry for the hash is replaced in place, keeping its hotness; new
  // entries start cold. Under pressure a random cold victim is replaced
  // (second chance); when every way is hot, all hotness in the set is
  // cleared and a rotating victim is evicted.
  void insert(uint64_t prefix_hash, uint64_t payload);

  // Purges the entry for `prefix_hash` only if it still points at
  // `addr48` -- a concurrent refresh with the node's new address must not
  // be dropped. Returns true when a slot was cleared.
  bool invalidate_if(uint64_t prefix_hash, uint64_t addr48);

  uint64_t num_sets() const { return num_sets_; }
  uint64_t capacity() const { return num_sets_ * kWays; }
  uint64_t memory_bytes() const { return capacity() * kSlotBytes; }

  // Approximate number of live entries.
  uint64_t size() const;

  PrefixEntryCacheStats stats() const;
  void reset_stats();

 private:
  struct Slot {
    std::atomic<uint64_t> tag;      // prefix hash; 0 = empty
    std::atomic<uint64_t> payload;  // kHotBit | inht payload; 0 = unset
  };

  // Hash 0 would collide with the empty-tag sentinel; remap it (the same
  // trick the cuckoo filter plays with fingerprint 0).
  static uint64_t tag_of(uint64_t hash) { return hash == 0 ? 1 : hash; }
  uint64_t set_index(uint64_t hash) const {
    // Remix so the set index is independent of the bits the cuckoo filter
    // and the consistent-hash ring consume.
    return splitmix64(hash) & (num_sets_ - 1);
  }
  Slot* set_of(uint64_t index) { return slots_.get() + index * kWays; }
  const Slot* set_of(uint64_t index) const {
    return slots_.get() + index * kWays;
  }
  uint64_t next_random();

  uint64_t num_sets_;  // power of two
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> rng_state_{0x2545f4914f6cdd1dULL};

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> inserts_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> invalidations_{0};
};

}  // namespace sphinx::filter
