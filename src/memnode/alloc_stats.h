// MN-side memory accounting, tagged by structure class so the Fig. 6 bench
// can break memory usage into inner nodes / leaves / hash table.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace sphinx::mem {

enum class AllocTag : uint8_t {
  kInnerNode = 0,
  kLeaf = 1,
  kHashTable = 2,
  kOther = 3,
};
constexpr size_t kNumAllocTags = 4;

inline const char* alloc_tag_name(AllocTag tag) {
  switch (tag) {
    case AllocTag::kInnerNode:
      return "inner-nodes";
    case AllocTag::kLeaf:
      return "leaves";
    case AllocTag::kHashTable:
      return "hash-table";
    case AllocTag::kOther:
      return "other";
  }
  return "?";
}

// Thread-safe global accounting, shared by all clients of a Cluster.
class AllocStats {
 public:
  void add(AllocTag tag, uint64_t requested, uint64_t padded) {
    auto& e = entries_[static_cast<size_t>(tag)];
    e.requested.fetch_add(requested, std::memory_order_relaxed);
    e.padded.fetch_add(padded, std::memory_order_relaxed);
    e.count.fetch_add(1, std::memory_order_relaxed);
  }

  void sub(AllocTag tag, uint64_t requested, uint64_t padded) {
    auto& e = entries_[static_cast<size_t>(tag)];
    e.requested.fetch_sub(requested, std::memory_order_relaxed);
    e.padded.fetch_sub(padded, std::memory_order_relaxed);
    e.count.fetch_sub(1, std::memory_order_relaxed);
  }

  uint64_t requested_bytes(AllocTag tag) const {
    return entries_[static_cast<size_t>(tag)].requested.load(
        std::memory_order_relaxed);
  }
  uint64_t padded_bytes(AllocTag tag) const {
    return entries_[static_cast<size_t>(tag)].padded.load(
        std::memory_order_relaxed);
  }
  uint64_t count(AllocTag tag) const {
    return entries_[static_cast<size_t>(tag)].count.load(
        std::memory_order_relaxed);
  }

  uint64_t total_requested() const {
    uint64_t t = 0;
    for (const auto& e : entries_) {
      t += e.requested.load(std::memory_order_relaxed);
    }
    return t;
  }
  uint64_t total_padded() const {
    uint64_t t = 0;
    for (const auto& e : entries_) {
      t += e.padded.load(std::memory_order_relaxed);
    }
    return t;
  }

  void reset() {
    for (auto& e : entries_) {
      e.requested.store(0, std::memory_order_relaxed);
      e.padded.store(0, std::memory_order_relaxed);
      e.count.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Entry {
    std::atomic<uint64_t> requested{0};
    std::atomic<uint64_t> padded{0};
    std::atomic<uint64_t> count{0};
  };
  std::array<Entry, kNumAllocTags> entries_;
};

}  // namespace sphinx::mem
