// MN-side memory accounting, tagged by structure class so the Fig. 6 bench
// can break memory usage into inner nodes / leaves / hash table.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace sphinx::mem {

enum class AllocTag : uint8_t {
  kInnerNode = 0,
  kLeaf = 1,
  kHashTable = 2,
  kOther = 3,
};
constexpr size_t kNumAllocTags = 4;

inline const char* alloc_tag_name(AllocTag tag) {
  switch (tag) {
    case AllocTag::kInnerNode:
      return "inner-nodes";
    case AllocTag::kLeaf:
      return "leaves";
    case AllocTag::kHashTable:
      return "hash-table";
    case AllocTag::kOther:
      return "other";
  }
  return "?";
}

// Thread-safe global accounting, shared by all clients of a Cluster.
class AllocStats {
 public:
  void add(AllocTag tag, uint64_t requested, uint64_t padded) {
    auto& e = entries_[static_cast<size_t>(tag)];
    e.requested.fetch_add(requested, std::memory_order_relaxed);
    e.padded.fetch_add(padded, std::memory_order_relaxed);
    e.count.fetch_add(1, std::memory_order_relaxed);
  }

  // Invariant check: a block must be freed with the tag and sizes it was
  // allocated with, so no per-tag counter can ever go below zero. Underflow
  // means a double free or a retire whose bookkeeping diverged from the
  // alloc -- counted (never wrapped silently) so tests can tripwire on it.
  void sub(AllocTag tag, uint64_t requested, uint64_t padded) {
    auto& e = entries_[static_cast<size_t>(tag)];
    const uint64_t pr = e.requested.fetch_sub(requested,
                                              std::memory_order_relaxed);
    const uint64_t pp = e.padded.fetch_sub(padded, std::memory_order_relaxed);
    const uint64_t pc = e.count.fetch_sub(1, std::memory_order_relaxed);
    if (pr < requested || pp < padded || pc < 1) {
      underflows_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  uint64_t requested_bytes(AllocTag tag) const {
    return entries_[static_cast<size_t>(tag)].requested.load(
        std::memory_order_relaxed);
  }
  uint64_t padded_bytes(AllocTag tag) const {
    return entries_[static_cast<size_t>(tag)].padded.load(
        std::memory_order_relaxed);
  }
  uint64_t count(AllocTag tag) const {
    return entries_[static_cast<size_t>(tag)].count.load(
        std::memory_order_relaxed);
  }

  uint64_t total_requested() const {
    uint64_t t = 0;
    for (const auto& e : entries_) {
      t += e.requested.load(std::memory_order_relaxed);
    }
    return t;
  }
  uint64_t total_padded() const {
    uint64_t t = 0;
    for (const auto& e : entries_) {
      t += e.padded.load(std::memory_order_relaxed);
    }
    return t;
  }

  // --- Reclamation flow (epoch-based quarantine; see epoch.h) ---------
  // Tagged live bytes above keep counting a quarantined block until it is
  // actually recycled (quarantined memory is still unavailable); these
  // counters track the quarantine flow itself.

  void note_retired(uint64_t padded) {
    retired_blocks_out_.fetch_add(1, std::memory_order_relaxed);
    retired_bytes_out_.fetch_add(padded, std::memory_order_relaxed);
    retired_bytes_total_.fetch_add(padded, std::memory_order_relaxed);
  }

  void note_reclaimed(uint64_t padded) {
    retired_blocks_out_.fetch_sub(1, std::memory_order_relaxed);
    retired_bytes_out_.fetch_sub(padded, std::memory_order_relaxed);
    reclaimed_blocks_.fetch_add(1, std::memory_order_relaxed);
    reclaimed_bytes_.fetch_add(padded, std::memory_order_relaxed);
  }

  // A crashed client's quarantine bookkeeping dies with it: the blocks are
  // unreachable but unrecyclable. Moved out of "outstanding" so the leak
  // tripwire measures the live pipeline, and counted separately.
  void note_quarantine_leak(uint64_t blocks, uint64_t padded_bytes) {
    retired_blocks_out_.fetch_sub(blocks, std::memory_order_relaxed);
    retired_bytes_out_.fetch_sub(padded_bytes, std::memory_order_relaxed);
    leaked_blocks_.fetch_add(blocks, std::memory_order_relaxed);
    leaked_bytes_.fetch_add(padded_bytes, std::memory_order_relaxed);
  }

  void note_alloc_failure() {
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_degraded_op() {
    alloc_degraded_ops_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t retired_blocks_outstanding() const {
    return retired_blocks_out_.load(std::memory_order_relaxed);
  }
  uint64_t retired_bytes_outstanding() const {
    return retired_bytes_out_.load(std::memory_order_relaxed);
  }
  uint64_t retired_bytes_total() const {
    return retired_bytes_total_.load(std::memory_order_relaxed);
  }
  uint64_t reclaimed_blocks() const {
    return reclaimed_blocks_.load(std::memory_order_relaxed);
  }
  uint64_t reclaimed_bytes() const {
    return reclaimed_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t leaked_blocks() const {
    return leaked_blocks_.load(std::memory_order_relaxed);
  }
  uint64_t leaked_bytes() const {
    return leaked_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t alloc_failures() const {
    return alloc_failures_.load(std::memory_order_relaxed);
  }
  uint64_t alloc_degraded_ops() const {
    return alloc_degraded_ops_.load(std::memory_order_relaxed);
  }
  uint64_t underflows() const {
    return underflows_.load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto& e : entries_) {
      e.requested.store(0, std::memory_order_relaxed);
      e.padded.store(0, std::memory_order_relaxed);
      e.count.store(0, std::memory_order_relaxed);
    }
    retired_blocks_out_.store(0, std::memory_order_relaxed);
    retired_bytes_out_.store(0, std::memory_order_relaxed);
    retired_bytes_total_.store(0, std::memory_order_relaxed);
    reclaimed_blocks_.store(0, std::memory_order_relaxed);
    reclaimed_bytes_.store(0, std::memory_order_relaxed);
    leaked_blocks_.store(0, std::memory_order_relaxed);
    leaked_bytes_.store(0, std::memory_order_relaxed);
    alloc_failures_.store(0, std::memory_order_relaxed);
    alloc_degraded_ops_.store(0, std::memory_order_relaxed);
    underflows_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::atomic<uint64_t> requested{0};
    std::atomic<uint64_t> padded{0};
    std::atomic<uint64_t> count{0};
  };
  std::array<Entry, kNumAllocTags> entries_;
  std::atomic<uint64_t> retired_blocks_out_{0};
  std::atomic<uint64_t> retired_bytes_out_{0};
  std::atomic<uint64_t> retired_bytes_total_{0};
  std::atomic<uint64_t> reclaimed_blocks_{0};
  std::atomic<uint64_t> reclaimed_bytes_{0};
  std::atomic<uint64_t> leaked_blocks_{0};
  std::atomic<uint64_t> leaked_bytes_{0};
  std::atomic<uint64_t> alloc_failures_{0};
  std::atomic<uint64_t> alloc_degraded_ops_{0};
  std::atomic<uint64_t> underflows_{0};
};

}  // namespace sphinx::mem
