// Cluster bootstrap: owns the simulated fabric, the consistent-hash ring,
// the shared allocation accounting, and the per-MN well-known bootstrap
// area (root pointers, hash-table descriptors, allocation bump pointer).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "memnode/alloc_stats.h"
#include "memnode/consistent_hash.h"
#include "memnode/epoch.h"
#include "rdma/endpoint.h"
#include "rdma/fabric.h"

namespace sphinx::mem {

// Fixed layout at the base of every MN region:
//   [0, 8)      : reserved (null-address guard, never allocated)
//   [8, 16)     : allocation bump pointer (clients lease chunks via FAA)
//   [64, 64K)   : bootstrap slots -- 8-byte words handed out by index
//                 constructors for root pointers / table descriptors
//   [64K, ...)  : allocatable heap
constexpr uint64_t kBumpPointerOffset = 8;
constexpr uint64_t kBootstrapBase = 64;
constexpr uint64_t kBootstrapSlots = 8192;  // 64 KiB of 8-byte slots
constexpr uint64_t kHeapBase = kBootstrapBase + kBootstrapSlots * 8;

class Cluster {
 public:
  Cluster(const rdma::NetworkConfig& config, uint64_t mn_size_bytes)
      : fabric_(config, mn_size_bytes),
        ring_(config.num_mns, config.vnodes_per_mn),
        next_bootstrap_slot_(0) {
    for (uint32_t mn = 0; mn < fabric_.num_mns(); ++mn) {
      fabric_.region(mn).store64(kBumpPointerOffset, kHeapBase);
    }
  }

  rdma::Fabric& fabric() { return fabric_; }
  const rdma::NetworkConfig& config() const { return fabric_.config(); }
  uint32_t num_mns() const { return fabric_.num_mns(); }
  const ConsistentHashRing& ring() const { return ring_; }
  AllocStats& alloc_stats() { return alloc_stats_; }
  EpochManager& epochs() { return epochs_; }

  // Creates a metered endpoint on compute node `cn`.
  rdma::Endpoint make_endpoint(uint32_t cn) {
    return rdma::Endpoint(fabric_, cn, /*metered=*/true);
  }

  // Creates an unmetered endpoint for bootstrap / bulk loading.
  rdma::Endpoint make_loader_endpoint() {
    return rdma::Endpoint(fabric_, 0, /*metered=*/false);
  }

  // Hands out the next unused 8-byte bootstrap slot on MN `mn`. Index
  // constructors use these as well-known addresses (root pointer, etc.).
  // Single-threaded use (construction time) only.
  rdma::GlobalAddr reserve_bootstrap_slot(uint32_t mn) {
    const uint64_t slot = next_bootstrap_slot_++;
    if (slot >= kBootstrapSlots) {
      throw std::runtime_error("bootstrap area exhausted");
    }
    return rdma::GlobalAddr(mn, kBootstrapBase + slot * 8);
  }

 private:
  rdma::Fabric fabric_;
  ConsistentHashRing ring_;
  AllocStats alloc_stats_;
  EpochManager epochs_;
  uint64_t next_bootstrap_slot_;
};

}  // namespace sphinx::mem
