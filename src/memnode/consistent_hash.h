// Consistent-hash ring used to place ART nodes across memory nodes
// (Sec. III: "The ART Nodes of Sphinx are evenly distributed across MNs by
// consistent hashing"). Virtual nodes smooth the distribution.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace sphinx::mem {

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(uint32_t num_mns, uint32_t vnodes_per_mn = 128) {
    points_.reserve(static_cast<size_t>(num_mns) * vnodes_per_mn);
    for (uint32_t mn = 0; mn < num_mns; ++mn) {
      for (uint32_t v = 0; v < vnodes_per_mn; ++v) {
        const uint64_t key =
            (static_cast<uint64_t>(mn) << 32) | static_cast<uint64_t>(v);
        points_.push_back(
            {xxhash64(&key, sizeof(key), /*seed=*/0x52494e47ULL), mn});
      }
    }
    std::sort(points_.begin(), points_.end());
  }

  // Maps an item hash to its owning memory node.
  uint32_t mn_for(uint64_t hash) const {
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               Point{hash, 0});
    if (it == points_.end()) it = points_.begin();
    return it->mn;
  }

  size_t num_points() const { return points_.size(); }

 private:
  struct Point {
    uint64_t position;
    uint32_t mn;
    bool operator<(const Point& o) const {
      return position < o.position ||
             (position == o.position && mn < o.mn);
    }
  };

  std::vector<Point> points_;
};

}  // namespace sphinx::mem
