// CN-shared epoch-based reclamation for retired remote blocks.
//
// Every client (one RemoteAllocator per worker) holds one slot in the
// shared EpochManager. At each op/batch boundary the worker pins its slot
// to the current global epoch, and unpins (announces quiescence) when the
// op completes. Retired blocks are quarantined stamped with the epoch at
// retire time; a block with stamp E may be recycled only once the global
// epoch has reached E+2:
//
//   * the epoch can only advance from E to E+1 when every pinned slot has
//     caught up to E, so any op pinned at <= E (which could still hold a
//     reference read before the unlink) has quiesced by the time E+1
//     exists;
//   * an op that pins at E+1 or later started after the advance, which
//     happened after the retire's unlink was published -- it can reach the
//     block only through a stale cache entry, and every cache tier
//     revalidates (see DESIGN.md section 14).
//
// Crashed clients never unpin. Survivors expire a stalled slot with the
// same double-observation discipline as lock leases (retry_policy.h): the
// identical pinned (epoch, beat) must be observed across a full virtual
// lease window of the observer's clock AND the real-time floor before the
// slot is forced quiescent. MN regions are never host-freed, so even a
// wrongly expired slot cannot cause a use-after-free -- a recycled-block
// read is a logical wrong-bytes read that the per-tier validation
// (key/CRC/status checks) catches and counts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "memnode/alloc_stats.h"
#include "rdma/retry_policy.h"

namespace sphinx::mem {

// Slot value while the owner is between ops.
constexpr uint64_t kQuiescentEpoch = ~0ull;

// A quarantined block: everything free() needs travels with the block, so
// the reclaim-time accounting always uses the alloc-time tag and sizes.
struct RetiredBlock {
  uint32_t mn = 0;
  uint64_t offset = 0;
  uint64_t requested = 0;
  uint64_t padded = 0;
  AllocTag tag = AllocTag::kOther;
  uint64_t stamp = 0;  // global epoch at retire time
};

class EpochManager {
 public:
  static constexpr uint32_t kMaxSlots = 4096;
  static constexpr uint32_t kNoSlot = ~0u;

  // Registers a client. Prefers never-used and explicitly released slots;
  // under crash storms falls back to adopting a slot whose (presumed dead)
  // owner was expired. Returns kNoSlot only if all of those run out, in
  // which case the client runs unpinned (its in-op references are guarded
  // by validation alone).
  uint32_t acquire_slot() {
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t idx = kNoSlot;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else if (next_slot_ < kMaxSlots) {
      idx = next_slot_++;
      high_water_.store(next_slot_, std::memory_order_release);
    } else {
      for (uint32_t i = 0; i < kMaxSlots; ++i) {
        if (slots_[i].in_use.load(std::memory_order_acquire) &&
            slots_[i].expired.load(std::memory_order_acquire)) {
          idx = i;
          break;
        }
      }
      if (idx == kNoSlot) return kNoSlot;
    }
    Slot& s = slots_[idx];
    s.epoch.store(kQuiescentEpoch, std::memory_order_release);
    s.expired.store(false, std::memory_order_release);
    s.watch_armed = false;
    s.in_use.store(true, std::memory_order_release);
    return idx;
  }

  // Clean client shutdown. Crashed clients never call this; their slot
  // stays pinned until a survivor expires it.
  void release_slot(uint32_t slot) {
    if (slot == kNoSlot) return;
    std::lock_guard<std::mutex> lock(mu_);
    Slot& s = slots_[slot];
    s.epoch.store(kQuiescentEpoch, std::memory_order_release);
    s.expired.store(false, std::memory_order_release);
    s.in_use.store(false, std::memory_order_release);
    free_.push_back(slot);
  }

  uint64_t current() const {
    return global_.load(std::memory_order_seq_cst);
  }

  // Enters an op: the slot advertises the current global epoch. The
  // store/recheck loop closes the window where an advance races the pin --
  // after one extra iteration the slot is provably at the current epoch or
  // at most one behind a concurrent advance (which the stamp+2 rule
  // tolerates). `beat_ns` is the owner's virtual clock, a liveness beat
  // for the expiry watch.
  void pin(uint32_t slot, uint64_t beat_ns) {
    if (slot == kNoSlot) return;
    Slot& s = slots_[slot];
    uint64_t e = global_.load(std::memory_order_seq_cst);
    for (;;) {
      s.epoch.store(e, std::memory_order_seq_cst);
      const uint64_t now = global_.load(std::memory_order_seq_cst);
      if (now == e) break;
      e = now;
    }
    s.beat.store(beat_ns, std::memory_order_relaxed);
    // A live owner wrongly expired self-heals on its next pin.
    s.expired.store(false, std::memory_order_relaxed);
  }

  void unpin(uint32_t slot) {
    if (slot == kNoSlot) return;
    slots_[slot].epoch.store(kQuiescentEpoch, std::memory_order_seq_cst);
  }

  // Advances the global epoch iff every pinned slot has caught up to it.
  // Returns true if the epoch moved (by us or a concurrent caller).
  bool try_advance() {
    uint64_t e = global_.load(std::memory_order_seq_cst);
    const uint32_t hw = high_water_.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < hw; ++i) {
      const Slot& s = slots_[i];
      if (!s.in_use.load(std::memory_order_acquire)) continue;
      const uint64_t se = s.epoch.load(std::memory_order_seq_cst);
      if (se != kQuiescentEpoch && se != e) return false;
    }
    if (global_.compare_exchange_strong(e, e + 1,
                                        std::memory_order_seq_cst)) {
      advances_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;  // moved, or lost the CAS to someone who moved it
  }

  // A block retired at `stamp` is safe to recycle once two advances have
  // happened since (see file comment for the argument).
  bool reclaimable(uint64_t stamp) const {
    return current() >= stamp + 2;
  }

  // Expires slots stuck behind the global epoch. A slot is expired only
  // after the identical (epoch, beat) pair has been watched across a full
  // virtual lease of the observer's clock and the real-time floor -- the
  // same double-observation rule lock-lease reclaim uses, so sanitizer or
  // scheduler stalls of a live owner cannot forge an expiry cheaply.
  // Returns the number of slots expired by this call.
  uint32_t expire_stalled(uint64_t observer_clock_ns) {
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t expired = 0;
    const uint64_t e = global_.load(std::memory_order_seq_cst);
    const uint32_t hw = high_water_.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < hw; ++i) {
      Slot& s = slots_[i];
      if (!s.in_use.load(std::memory_order_acquire)) {
        s.watch_armed = false;
        continue;
      }
      uint64_t se = s.epoch.load(std::memory_order_seq_cst);
      const uint64_t beat = s.beat.load(std::memory_order_relaxed);
      if (se == kQuiescentEpoch || se == e) {
        s.watch_armed = false;
        continue;
      }
      if (!s.watch_armed || s.watch_epoch != se || s.watch_beat != beat) {
        s.watch_armed = true;
        s.watch_epoch = se;
        s.watch_beat = beat;
        s.watch_real = std::chrono::steady_clock::now();
        s.watch_virtual_ns = observer_clock_ns;
        continue;
      }
      if (observer_clock_ns - s.watch_virtual_ns < rdma::kLeaseVirtualNs) {
        continue;
      }
      if (std::chrono::steady_clock::now() - s.watch_real <
          rdma::kLeaseRealFloor) {
        continue;
      }
      if (s.epoch.compare_exchange_strong(se, kQuiescentEpoch,
                                          std::memory_order_seq_cst)) {
        s.expired.store(true, std::memory_order_release);
        s.watch_armed = false;
        expired_slots_.fetch_add(1, std::memory_order_relaxed);
        ++expired;
      }
    }
    return expired;
  }

  // Quarantine entries a retiring client could not yet recycle are donated
  // here so later clients can adopt them -- MN offsets are global, so any
  // client's freelist can reuse them once they ripen.
  void donate_orphans(std::vector<RetiredBlock>&& blocks) {
    if (blocks.empty()) return;
    std::lock_guard<std::mutex> lock(orphan_mu_);
    for (auto& b : blocks) orphans_.push_back(b);
  }

  // Pops up to `max` ripe orphans (stamp+2 rule) for the caller to recycle.
  std::vector<RetiredBlock> take_reclaimable_orphans(size_t max) {
    std::vector<RetiredBlock> out;
    std::lock_guard<std::mutex> lock(orphan_mu_);
    size_t kept = 0;
    for (size_t i = 0; i < orphans_.size(); ++i) {
      if (out.size() < max && reclaimable(orphans_[i].stamp)) {
        out.push_back(orphans_[i]);
      } else {
        orphans_[kept++] = orphans_[i];
      }
    }
    orphans_.resize(kept);
    return out;
  }

  uint64_t advances() const {
    return advances_.load(std::memory_order_relaxed);
  }
  uint64_t expired_slots() const {
    return expired_slots_.load(std::memory_order_relaxed);
  }
  size_t orphan_count() {
    std::lock_guard<std::mutex> lock(orphan_mu_);
    return orphans_.size();
  }

  // Test hook: true iff the slot is in use and pinned to a real epoch.
  bool slot_pinned(uint32_t slot) const {
    if (slot == kNoSlot || slot >= kMaxSlots) return false;
    const Slot& s = slots_[slot];
    return s.in_use.load(std::memory_order_acquire) &&
           s.epoch.load(std::memory_order_seq_cst) != kQuiescentEpoch;
  }

 private:
  struct Slot {
    std::atomic<bool> in_use{false};
    std::atomic<bool> expired{false};
    std::atomic<uint64_t> epoch{kQuiescentEpoch};
    std::atomic<uint64_t> beat{0};
    // Expiry watch state, guarded by mu_.
    bool watch_armed = false;
    uint64_t watch_epoch = 0;
    uint64_t watch_beat = 0;
    uint64_t watch_virtual_ns = 0;
    std::chrono::steady_clock::time_point watch_real{};
  };

  std::atomic<uint64_t> global_{0};
  std::atomic<uint32_t> high_water_{0};
  std::atomic<uint64_t> advances_{0};
  std::atomic<uint64_t> expired_slots_{0};
  std::mutex mu_;  // slot acquire/release + watch state
  uint32_t next_slot_ = 0;
  std::vector<uint32_t> free_;
  std::vector<Slot> slots_{kMaxSlots};

  std::mutex orphan_mu_;
  std::vector<RetiredBlock> orphans_;
};

}  // namespace sphinx::mem
