// Client-side remote memory allocator over one-sided verbs, in the style of
// Sherman/SMART: each client leases large chunks from an MN's bump pointer
// with a single RDMA FAA (rare), then sub-allocates locally from per-MN,
// per-size-class freelists with zero network traffic.
//
// All allocations are 64-byte aligned and padded to a multiple of 64 bytes,
// matching the paper's 64 B leaf alignment and keeping RDMA-accessed
// structures word-aligned.
#pragma once

#include <cstdint>
#include <new>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "memnode/cluster.h"

namespace sphinx::mem {

class RemoteAllocator {
 public:
  static constexpr uint64_t kAlignment = 64;
  // Default lease size balances FAA frequency against MN heap headroom:
  // hundreds of workers each lease chunks from every MN they touch, so
  // multi-MB chunks would strand most of the heap (192 workers x 4 MiB x
  // 3 MNs is 2.3 GiB of leases before a single byte is used).
  static constexpr uint64_t kDefaultChunkBytes = 256ull << 10;  // 256 KiB

  RemoteAllocator(Cluster& cluster, rdma::Endpoint& endpoint,
                  uint64_t chunk_bytes = kDefaultChunkBytes)
      : cluster_(cluster),
        endpoint_(endpoint),
        chunk_bytes_(chunk_bytes),
        per_mn_(cluster.num_mns()) {}

  // Allocates `size` bytes on memory node `mn`. Never returns null; throws
  // std::bad_alloc when the MN heap is exhausted.
  rdma::GlobalAddr alloc(uint32_t mn, uint64_t size, AllocTag tag) {
    const uint64_t padded = pad(size);
    PerMn& state = per_mn_.at(mn);
    uint64_t offset;
    auto it = state.freelists.find(padded);
    if (it != state.freelists.end() && !it->second.empty()) {
      offset = it->second.back();
      it->second.pop_back();
    } else {
      offset = carve_from_chunk(mn, state, padded);
    }
    cluster_.alloc_stats().add(tag, size, padded);
    return rdma::GlobalAddr(mn, offset);
  }

  // Returns a block to the client-local freelist. `size` must match the
  // size passed to alloc().
  void free(rdma::GlobalAddr addr, uint64_t size, AllocTag tag) {
    const uint64_t padded = pad(size);
    per_mn_.at(addr.mn()).freelists[padded].push_back(addr.offset());
    cluster_.alloc_stats().sub(tag, size, padded);
  }

  // Total bytes this client has leased from MN bump pointers.
  uint64_t leased_bytes() const {
    uint64_t total = 0;
    for (const auto& s : per_mn_) total += s.leased;
    return total;
  }

 private:
  struct PerMn {
    uint64_t chunk_cursor = 0;  // next free offset within current chunk
    uint64_t chunk_end = 0;     // exclusive end of current chunk
    uint64_t leased = 0;
    std::unordered_map<uint64_t, std::vector<uint64_t>> freelists;
  };

  static uint64_t pad(uint64_t size) {
    if (size == 0) size = 1;
    return (size + kAlignment - 1) & ~(kAlignment - 1);
  }

  uint64_t carve_from_chunk(uint32_t mn, PerMn& state, uint64_t padded) {
    if (state.chunk_cursor + padded > state.chunk_end) {
      lease_chunk(mn, state, padded);
    }
    const uint64_t offset = state.chunk_cursor;
    state.chunk_cursor += padded;
    return offset;
  }

  void lease_chunk(uint32_t mn, PerMn& state, uint64_t min_bytes) {
    const uint64_t lease = min_bytes > chunk_bytes_ ? pad(min_bytes)
                                                    : chunk_bytes_;
    // One-sided chunk lease: FAA on the MN's bump pointer.
    rdma::PhaseScope alloc_scope(endpoint_, rdma::Phase::kAlloc);
    const uint64_t start = endpoint_.faa(
        rdma::GlobalAddr(mn, kBumpPointerOffset), lease);
    if (start + lease > cluster_.fabric().region(mn).size()) {
      throw std::bad_alloc();
    }
    state.chunk_cursor = start;
    state.chunk_end = start + lease;
    state.leased += lease;
  }

  Cluster& cluster_;
  rdma::Endpoint& endpoint_;
  uint64_t chunk_bytes_;
  std::vector<PerMn> per_mn_;
};

}  // namespace sphinx::mem
