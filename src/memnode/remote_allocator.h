// Client-side remote memory allocator over one-sided verbs, in the style of
// Sherman/SMART: each client leases large chunks from an MN's bump pointer
// with a single RDMA FAA (rare), then sub-allocates locally from per-MN,
// per-size-class freelists with zero network traffic.
//
// All allocations are 64-byte aligned and padded to a multiple of 64 bytes,
// matching the paper's 64 B leaf alignment and keeping RDMA-accessed
// structures word-aligned.
//
// Reclamation: retired blocks (unlinked leaves/inners/segments that
// concurrent one-sided readers may still reference) go through retire()
// into a per-client quarantine stamped with the shared epoch
// (memnode/epoch.h). flush_quarantine() returns ripe blocks (stamp+2 rule)
// to the freelists, where they are genuinely recycled. Memory exhaustion
// is a degraded mode, not a crash: try_alloc() reclaims and retries under
// a bounded budget, then returns ok=false; the throwing alloc() wrapper
// remains for bootstrap paths where failure is unrecoverable anyway.
#pragma once

#include <cstdint>
#include <new>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "memnode/cluster.h"
#include "rdma/retry_policy.h"

namespace sphinx::mem {

struct AllocResult {
  rdma::GlobalAddr addr = rdma::GlobalAddr(0, 0);
  bool ok = false;
};

class RemoteAllocator {
 public:
  static constexpr uint64_t kAlignment = 64;
  // Default lease size balances FAA frequency against MN heap headroom:
  // hundreds of workers each lease chunks from every MN they touch, so
  // multi-MB chunks would strand most of the heap (192 workers x 4 MiB x
  // 3 MNs is 2.3 GiB of leases before a single byte is used).
  static constexpr uint64_t kDefaultChunkBytes = 256ull << 10;  // 256 KiB
  // Reclaim-and-retry budget when an MN heap is exhausted. Retrying only
  // helps while this client can still make local progress (epoch advance,
  // quarantine flush, orphan adoption), so the budget stays small.
  static constexpr uint32_t kAllocRetryAttempts = 8;
  // Ripe orphans adopted per reclaim pass (bounds time under the shared
  // orphan lock).
  static constexpr size_t kOrphanAdoptBatch = 64;

  RemoteAllocator(Cluster& cluster, rdma::Endpoint& endpoint,
                  uint64_t chunk_bytes = kDefaultChunkBytes)
      : cluster_(cluster),
        endpoint_(endpoint),
        chunk_bytes_(chunk_bytes),
        per_mn_(cluster.num_mns()),
        epoch_slot_(cluster.epochs().acquire_slot()) {}

  ~RemoteAllocator() {
    if (endpoint_.crashed()) {
      // A dead client cannot announce quiescence: its slot stays pinned
      // for survivors to expire (epoch.h), and its quarantine bookkeeping
      // dies with it -- those blocks leak, bounded by the crash count.
      uint64_t bytes = 0;
      for (const auto& r : quarantine_) bytes += r.padded;
      cluster_.alloc_stats().note_quarantine_leak(quarantine_.size(), bytes);
      return;
    }
    flush_quarantine();
    if (!quarantine_.empty()) {
      // Not yet ripe: hand the rest to the shared orphan list so a later
      // client recycles them (MN offsets are global).
      cluster_.epochs().donate_orphans(std::move(quarantine_));
    }
    cluster_.epochs().release_slot(epoch_slot_);
  }

  RemoteAllocator(const RemoteAllocator&) = delete;
  RemoteAllocator& operator=(const RemoteAllocator&) = delete;

  // Allocates `size` bytes on memory node `mn`, reclaiming quarantined
  // blocks under a bounded retry budget when the heap is exhausted.
  // Returns ok=false (and counts alloc_failures) instead of throwing.
  AllocResult try_alloc(uint32_t mn, uint64_t size, AllocTag tag) {
    const uint64_t padded = pad(size);
    PerMn& state = per_mn_.at(mn);
    for (uint32_t attempt = 0;; ++attempt) {
      auto it = state.freelists.find(padded);
      if (it != state.freelists.end() && !it->second.empty()) {
        const uint64_t offset = it->second.back();
        it->second.pop_back();
        cluster_.alloc_stats().add(tag, size, padded);
        return AllocResult{rdma::GlobalAddr(mn, offset), true};
      }
      if (state.chunk_cursor + padded <= state.chunk_end) {
        const uint64_t offset = state.chunk_cursor;
        state.chunk_cursor += padded;
        cluster_.alloc_stats().add(tag, size, padded);
        return AllocResult{rdma::GlobalAddr(mn, offset), true};
      }
      if (lease_chunk(mn, state, padded)) continue;
      // Heap exhausted. Reclaiming can still free space: ripen the epoch,
      // expire crashed peers, flush our quarantine, adopt orphans. Stop as
      // soon as a pass makes no progress (nothing further will) or the
      // retry budget runs out.
      if (attempt >= kAllocRetryAttempts) break;
      rdma::RetryPolicy policy(endpoint_, alloc_retry_cfg_, nullptr);
      if (!policy.backoff(attempt)) break;
      if (!reclaim_pass()) break;
    }
    cluster_.alloc_stats().note_alloc_failure();
    return AllocResult{};
  }

  // Throwing wrapper for bootstrap/load paths, where an exhausted heap at
  // construction time is unrecoverable. Never returns null.
  rdma::GlobalAddr alloc(uint32_t mn, uint64_t size, AllocTag tag) {
    AllocResult r = try_alloc(mn, size, tag);
    if (!r.ok) throw std::bad_alloc();
    return r.addr;
  }

  // Returns a block to the client-local freelist immediately. Only safe
  // for blocks that were never published (rollback of a failed install);
  // anything a concurrent reader could hold must go through retire().
  void free(rdma::GlobalAddr addr, uint64_t size, AllocTag tag) {
    const uint64_t padded = pad(size);
    per_mn_.at(addr.mn()).freelists[padded].push_back(addr.offset());
    cluster_.alloc_stats().sub(tag, size, padded);
  }

  // Quarantines an unlinked-but-possibly-still-referenced block, stamped
  // with the current epoch. It returns to the freelist via
  // flush_quarantine() once every worker has passed the stamp (stamp+2
  // rule, epoch.h). `size` and `tag` must match the alloc.
  void retire(rdma::GlobalAddr addr, uint64_t size, AllocTag tag) {
    const uint64_t padded = pad(size);
    RetiredBlock r;
    r.mn = addr.mn();
    r.offset = addr.offset();
    r.requested = size;
    r.padded = padded;
    r.tag = tag;
    r.stamp = cluster_.epochs().current();
    quarantine_.push_back(r);
    cluster_.alloc_stats().note_retired(padded);
  }

  // --- Epoch participation (op/batch boundaries) ----------------------
  // Nested pins collapse to the outermost one, so compound ops (a batch
  // calling per-op paths) announce quiescence exactly once.

  void pin_epoch() {
    if (pin_depth_++ == 0) {
      cluster_.epochs().pin(epoch_slot_, endpoint_.clock_ns());
    }
  }

  void unpin_epoch() {
    if (--pin_depth_ != 0) return;
    // A client that crashed mid-op never quiesces; the slot stays pinned
    // until a survivor expires it (tested by the crash stress battery).
    if (endpoint_.crashed()) return;
    cluster_.epochs().unpin(epoch_slot_);
    maybe_reclaim();
  }

  // Drains ripe quarantine entries into the freelists. Returns the number
  // of blocks recycled.
  size_t flush_quarantine() {
    size_t kept = 0;
    size_t freed = 0;
    for (size_t i = 0; i < quarantine_.size(); ++i) {
      if (cluster_.epochs().reclaimable(quarantine_[i].stamp)) {
        recycle(quarantine_[i]);
        ++freed;
      } else {
        quarantine_[kept++] = quarantine_[i];
      }
    }
    quarantine_.resize(kept);
    return freed;
  }

  // Total bytes this client has leased from MN bump pointers.
  uint64_t leased_bytes() const {
    uint64_t total = 0;
    for (const auto& s : per_mn_) total += s.leased;
    return total;
  }

  size_t quarantined_blocks() const { return quarantine_.size(); }
  uint32_t epoch_slot() const { return epoch_slot_; }

 private:
  struct PerMn {
    uint64_t chunk_cursor = 0;  // next free offset within current chunk
    uint64_t chunk_end = 0;     // exclusive end of current chunk
    uint64_t leased = 0;
    std::unordered_map<uint64_t, std::vector<uint64_t>> freelists;
  };

  static uint64_t pad(uint64_t size) {
    if (size == 0) size = 1;
    return (size + kAlignment - 1) & ~(kAlignment - 1);
  }

  void recycle(const RetiredBlock& r) {
    per_mn_.at(r.mn).freelists[r.padded].push_back(r.offset);
    // The sub uses the tag/sizes that travelled with the block, so tagged
    // accounting cannot drift no matter who recycles it.
    cluster_.alloc_stats().sub(r.tag, r.requested, r.padded);
    cluster_.alloc_stats().note_reclaimed(r.padded);
  }

  bool reclaim_pass() {
    cluster_.epochs().try_advance();
    cluster_.epochs().expire_stalled(endpoint_.clock_ns());
    cluster_.epochs().try_advance();
    bool progress = flush_quarantine() > 0;
    for (const auto& r :
         cluster_.epochs().take_reclaimable_orphans(kOrphanAdoptBatch)) {
      recycle(r);
      progress = true;
    }
    return progress;
  }

  // Opportunistic reclamation at quiescence, kept off the warm path: only
  // runs when there is quarantine to ripen or (rarely) orphans to adopt.
  void maybe_reclaim() {
    ++unpin_count_;
    if (!quarantine_.empty()) {
      cluster_.epochs().try_advance();
      flush_quarantine();
      if (!quarantine_.empty()) {
        // Something is pinning an old epoch; watch it (a crashed peer
        // expires after the lease window, epoch.h).
        cluster_.epochs().expire_stalled(endpoint_.clock_ns());
      }
    }
    if ((unpin_count_ & 63u) == 0) {
      for (const auto& r :
           cluster_.epochs().take_reclaimable_orphans(kOrphanAdoptBatch)) {
        recycle(r);
      }
    }
  }

  // Leases a fresh chunk via one FAA on the MN bump pointer. Returns true
  // iff the new window can serve `padded` bytes. On a partial overrun the
  // in-range remainder is adopted (instead of stranding it forever) when
  // it beats the current window; on full exhaustion nothing usable was
  // leased and the window is left alone.
  bool lease_chunk(uint32_t mn, PerMn& state, uint64_t padded) {
    const uint64_t lease = padded > chunk_bytes_ ? padded : chunk_bytes_;
    const uint64_t region = cluster_.fabric().region(mn).size();
    // One-sided chunk lease: FAA on the MN's bump pointer.
    rdma::PhaseScope alloc_scope(endpoint_, rdma::Phase::kAlloc);
    const uint64_t start = endpoint_.faa(
        rdma::GlobalAddr(mn, kBumpPointerOffset), lease);
    if (start >= region) return false;
    const uint64_t usable = region - start;
    if (usable > state.chunk_end - state.chunk_cursor) {
      state.chunk_cursor = start;
      state.chunk_end = start + (lease < usable ? lease : usable);
      state.leased += state.chunk_end - state.chunk_cursor;
    }
    return state.chunk_end - state.chunk_cursor >= padded;
  }

  Cluster& cluster_;
  rdma::Endpoint& endpoint_;
  uint64_t chunk_bytes_;
  std::vector<PerMn> per_mn_;
  uint32_t epoch_slot_;
  int pin_depth_ = 0;
  uint64_t unpin_count_ = 0;
  std::vector<RetiredBlock> quarantine_;
  rdma::RetryPolicyConfig alloc_retry_cfg_{
      kAllocRetryAttempts, /*base_backoff_ns=*/4000,
      /*max_backoff_ns=*/8192};
};

// RAII op/batch bracket: pins the shared epoch on entry, announces
// quiescence (and opportunistically reclaims) on exit.
class EpochPin {
 public:
  explicit EpochPin(RemoteAllocator& alloc) : alloc_(alloc) {
    alloc_.pin_epoch();
  }
  ~EpochPin() { alloc_.unpin_epoch(); }
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

 private:
  RemoteAllocator& alloc_;
};

}  // namespace sphinx::mem
