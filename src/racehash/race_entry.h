// 8-byte hash-table entry format (Fig. 3 of the paper):
//
//   [63]     valid bit
//   [62:51]  12-bit fingerprint (fp2) derived from the key hash
//   [50:0]   51-bit caller payload (Sphinx packs node type (3b) + addr (48b))
//
// An all-zero word is an empty slot, which is why fingerprints are never 0.
#pragma once

#include <cstdint>

namespace sphinx::race {

constexpr unsigned kFpBits = 12;
constexpr unsigned kPayloadBits = 51;
constexpr uint64_t kPayloadMask = (1ULL << kPayloadBits) - 1;
constexpr uint64_t kFpMask = (1ULL << kFpBits) - 1;
constexpr uint64_t kValidBit = 1ULL << 63;

// Fingerprint from the top hash bits, remapped away from zero so that an
// empty slot (all zeroes) can never collide with a stored entry.
inline uint16_t entry_fp(uint64_t hash) {
  uint16_t fp = static_cast<uint16_t>((hash >> 52) & kFpMask);
  return fp == 0 ? 1 : fp;
}

inline uint64_t make_entry(uint64_t hash, uint64_t payload) {
  return kValidBit |
         (static_cast<uint64_t>(entry_fp(hash)) << kPayloadBits) |
         (payload & kPayloadMask);
}

inline bool entry_valid(uint64_t entry) { return (entry & kValidBit) != 0; }

inline uint16_t entry_stored_fp(uint64_t entry) {
  return static_cast<uint16_t>((entry >> kPayloadBits) & kFpMask);
}

inline uint64_t entry_payload(uint64_t entry) { return entry & kPayloadMask; }

inline bool entry_matches(uint64_t entry, uint64_t hash) {
  return entry_valid(entry) && entry_stored_fp(entry) == entry_fp(hash);
}

}  // namespace sphinx::race
