#include "racehash/race_table.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace sphinx::race {

namespace {

// Header word: lock:1 | version:39 | suffix:16 | local_depth:8.
// The suffix field stores (segment's low hash bits), letting clients detect
// a stale directory cache deterministically.
uint64_t pack_header(bool locked, uint64_t version, uint16_t suffix,
                     uint8_t ld) {
  return (locked ? 1ULL << 63 : 0) | ((version & ((1ULL << 39) - 1)) << 24) |
         (static_cast<uint64_t>(suffix) << 8) | ld;
}
bool hdr_locked(uint64_t w) { return (w >> 63) != 0; }
uint64_t hdr_version(uint64_t w) { return (w >> 24) & ((1ULL << 39) - 1); }
uint16_t hdr_suffix(uint64_t w) {
  return static_cast<uint16_t>((w >> 8) & 0xffff);
}
uint8_t hdr_ld(uint64_t w) { return static_cast<uint8_t>(w & 0xff); }

uint64_t pack_descriptor(uint8_t gd, uint64_t dir_offset) {
  return (static_cast<uint64_t>(gd) << 48) | (dir_offset & ((1ULL << 48) - 1));
}
uint8_t desc_gd(uint64_t d) { return static_cast<uint8_t>(d >> 48); }
uint64_t desc_offset(uint64_t d) { return d & ((1ULL << 48) - 1); }

uint16_t suffix_of(uint64_t hash, uint8_t ld) {
  return static_cast<uint16_t>(hash & ((1ULL << ld) - 1));
}

// While a segment is locked, the top 8 bits of its 39-bit version field
// carry the holder's client id; the true (monotonic) version keeps the low
// 31 bits. Version comparisons only ever happen between *unlocked* headers,
// where the owner bits are zero.
uint64_t lease_version(uint8_t owner, uint64_t version) {
  return (static_cast<uint64_t>(owner) << 31) | (version & 0x7fffffff);
}
uint64_t hdr_true_version(uint64_t w) { return hdr_version(w) & 0x7fffffff; }

// Dir lock word: 0 = free, else 1<<63 | owner:8 << 23 | stamp:23.
uint64_t pack_dir_lease(uint8_t owner, uint32_t stamp) {
  return (1ULL << 63) | (static_cast<uint64_t>(owner) << 23) |
         (stamp & rdma::kLeaseStamp23Mask);
}

}  // namespace

TableRef create_table(mem::Cluster& cluster, uint32_t mn,
                      uint8_t initial_depth) {
  assert(initial_depth <= kMaxGlobalDepth);
  rdma::Endpoint loader = cluster.make_loader_endpoint();
  mem::RemoteAllocator allocator(cluster, loader);

  TableRef ref;
  ref.mn = mn;
  ref.descriptor = cluster.reserve_bootstrap_slot(mn);
  ref.dir_lock = cluster.reserve_bootstrap_slot(mn);

  const uint64_t num_segments = 1ULL << initial_depth;
  std::vector<uint64_t> dir(num_segments);
  std::vector<uint8_t> zero_segment(kSegmentBytes, 0);
  for (uint64_t i = 0; i < num_segments; ++i) {
    rdma::GlobalAddr seg =
        allocator.alloc(mn, kSegmentBytes, mem::AllocTag::kHashTable);
    loader.write(seg, zero_segment.data(), kSegmentBytes);
    loader.write64(seg, pack_header(false, 0,
                                    static_cast<uint16_t>(i), initial_depth));
    dir[i] = seg.offset();
  }

  rdma::GlobalAddr dir_addr = allocator.alloc(
      mn, num_segments * 8, mem::AllocTag::kHashTable);
  loader.write(dir_addr, dir.data(), num_segments * 8);
  loader.write64(ref.descriptor,
                 pack_descriptor(initial_depth, dir_addr.offset()));
  loader.write64(ref.dir_lock, 0);
  return ref;
}

RaceClient::RaceClient(mem::Cluster& cluster, rdma::Endpoint& endpoint,
                       mem::RemoteAllocator& allocator, const TableRef& table,
                       Rehasher rehasher)
    : cluster_(cluster),
      endpoint_(endpoint),
      allocator_(allocator),
      table_(table),
      rehasher_(std::move(rehasher)) {}

void RaceClient::refresh_directory() {
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kInhtRead);
  const uint64_t desc = endpoint_.read64(table_.descriptor);
  global_depth_ = desc_gd(desc);
  const uint64_t n = 1ULL << global_depth_;
  dir_cache_.resize(n);
  endpoint_.read(rdma::GlobalAddr(table_.mn, desc_offset(desc)),
                 dir_cache_.data(), n * 8);
  stats_.dir_refreshes++;
}

RaceClient::Probe RaceClient::plan_probe(uint64_t hash) {
  if (dir_cache_.empty()) refresh_directory();
  Probe probe;
  probe.hash = hash;
  probe.group_addr = group_addr(dir_cache_[dir_index(hash)], hash);
  return probe;
}

void RaceClient::match_group(uint64_t hash,
                             const uint64_t group[kSlotsPerGroup],
                             std::vector<uint64_t>& payloads_out) {
  for (uint32_t i = 0; i < kSlotsPerGroup; ++i) {
    if (entry_matches(group[i], hash)) {
      payloads_out.push_back(entry_payload(group[i]));
    }
  }
}

void RaceClient::search(uint64_t hash, std::vector<uint64_t>& payloads_out) {
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kInhtRead);
  stats_.searches++;
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (dir_cache_.empty()) refresh_directory();
    const uint64_t seg_offset = dir_cache_[dir_index(hash)];
    // Header + group in one doorbell batch: one round trip, two messages.
    uint64_t header = 0;
    uint64_t group[kSlotsPerGroup];
    rdma::DoorbellBatch batch(endpoint_);
    batch.add_read(rdma::GlobalAddr(table_.mn, seg_offset), &header, 8);
    batch.add_read(group_addr(seg_offset, hash), group, sizeof(group));
    batch.execute();
    const uint8_t ld = hdr_ld(header);
    if (suffix_of(hash, ld) != hdr_suffix(header)) {
      refresh_directory();  // stale cache: the segment split/moved
      continue;
    }
    match_group(hash, group, payloads_out);
    return;
  }
}

bool RaceClient::insert(uint64_t hash, uint64_t payload) {
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kInhtWrite);
  stats_.inserts++;
  const uint64_t entry = make_entry(hash, payload);

  rdma::RetryPolicy policy(endpoint_, retry_cfg_, &stats_.backoff);
  for (uint32_t attempt = 0;; ++attempt) {
    if (!policy.backoff(attempt)) {
      stats_.recovery.retry_timeouts++;
      return false;
    }
    if (dir_cache_.empty()) refresh_directory();
    const uint64_t seg_offset = dir_cache_[dir_index(hash)];
    const rdma::GlobalAddr header_addr(table_.mn, seg_offset);
    const rdma::GlobalAddr gaddr = group_addr(seg_offset, hash);

    // Round trip 1: segment header + target group.
    uint64_t header = 0;
    uint64_t group[kSlotsPerGroup];
    {
      rdma::DoorbellBatch batch(endpoint_);
      batch.add_read(header_addr, &header, 8);
      batch.add_read(gaddr, group, sizeof(group));
      batch.execute();
    }
    if (hdr_locked(header)) {
      note_busy_segment(seg_offset, header);  // reclaims if the lease expires
      stats_.insert_retries++;
      continue;  // split in progress; retry
    }
    if (suffix_of(hash, hdr_ld(header)) != hdr_suffix(header)) {
      refresh_directory();
      stats_.insert_retries++;
      continue;
    }

    int free_slot = -1;
    for (uint32_t i = 0; i < kSlotsPerGroup; ++i) {
      if (group[i] == 0) {
        free_slot = static_cast<int>(i);
        break;
      }
    }
    if (free_slot < 0) {
      if (!split_segment(hash)) return false;
      stats_.insert_retries++;
      continue;
    }

    // Round trip 2: CAS the slot, then read the header *after* the CAS in
    // the same batch. If the version is unchanged from round trip 1, no
    // split interleaved and the entry is durably placed.
    uint64_t header_after = 0;
    rdma::DoorbellBatch batch(endpoint_);
    const size_t cas_idx = batch.add_cas(
        gaddr.plus(static_cast<uint64_t>(free_slot) * 8), 0, entry,
        rdma::FaultSite::kHashInsert);
    batch.add_read(header_addr, &header_after, 8);
    batch.execute();
    if (!batch.cas_ok(cas_idx)) {
      stats_.insert_retries++;
      continue;  // lost the slot to a concurrent insert
    }
    if (hdr_version(header_after) == hdr_version(header) &&
        !hdr_locked(header_after)) {
      return true;
    }
    // A split raced with our CAS; the entry may have been relocated or
    // dropped. Verify with a version-bracketed read (a plain search could
    // observe the entry mid-split, just before the splitter's cleaned
    // segment write clobbers it); reinsert if it vanished.
    std::vector<uint64_t> found;
    refresh_directory();
    if (stable_search(hash, found)) {
      for (uint64_t p : found) {
        if (p == payload) return true;
      }
    }
    stats_.insert_retries++;
  }
}

bool RaceClient::update(uint64_t hash, uint64_t old_payload,
                        uint64_t new_payload) {
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kInhtWrite);
  const uint64_t old_entry = make_entry(hash, old_payload);
  const uint64_t new_entry = make_entry(hash, new_payload);
  rdma::RetryPolicy policy(endpoint_, retry_cfg_, &stats_.backoff);
  for (uint32_t attempt = 0; attempt < retry_cfg_.max_attempts; ++attempt) {
    if (!policy.backoff(attempt)) break;
    if (dir_cache_.empty()) refresh_directory();
    const uint64_t seg_offset = dir_cache_[dir_index(hash)];
    const rdma::GlobalAddr header_addr(table_.mn, seg_offset);
    const rdma::GlobalAddr gaddr = group_addr(seg_offset, hash);

    uint64_t header = 0;
    uint64_t group[kSlotsPerGroup];
    {
      rdma::DoorbellBatch batch(endpoint_);
      batch.add_read(header_addr, &header, 8);
      batch.add_read(gaddr, group, sizeof(group));
      batch.execute();
    }
    if (hdr_locked(header)) {
      note_busy_segment(seg_offset, header);
      continue;
    }
    if (suffix_of(hash, hdr_ld(header)) != hdr_suffix(header)) {
      refresh_directory();
      continue;
    }
    int slot = -1;
    for (uint32_t i = 0; i < kSlotsPerGroup; ++i) {
      if (group[i] == old_entry) {
        slot = static_cast<int>(i);
        break;
      }
    }
    if (slot < 0) return false;

    uint64_t header_after = 0;
    rdma::DoorbellBatch batch(endpoint_);
    const size_t cas_idx = batch.add_cas(
        gaddr.plus(static_cast<uint64_t>(slot) * 8), old_entry, new_entry,
        rdma::FaultSite::kHashUpdate);
    batch.add_read(header_addr, &header_after, 8);
    batch.execute();
    if (!batch.cas_ok(cas_idx)) continue;
    if (hdr_version(header_after) == hdr_version(header) &&
        !hdr_locked(header_after)) {
      return true;
    }
    // Raced a split: confirm the new entry survived (version-bracketed).
    std::vector<uint64_t> found;
    refresh_directory();
    if (stable_search(hash, found)) {
      for (uint64_t p : found) {
        if (p == new_payload) return true;
      }
    }
  }
  stats_.recovery.retry_timeouts++;
  return false;
}

bool RaceClient::erase(uint64_t hash, uint64_t payload) {
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kInhtWrite);
  const uint64_t entry = make_entry(hash, payload);
  rdma::RetryPolicy policy(endpoint_, retry_cfg_, &stats_.backoff);
  for (uint32_t attempt = 0; attempt < retry_cfg_.max_attempts; ++attempt) {
    if (!policy.backoff(attempt)) break;
    if (dir_cache_.empty()) refresh_directory();
    const uint64_t seg_offset = dir_cache_[dir_index(hash)];
    const rdma::GlobalAddr header_addr(table_.mn, seg_offset);
    const rdma::GlobalAddr gaddr = group_addr(seg_offset, hash);

    uint64_t header = 0;
    uint64_t group[kSlotsPerGroup];
    {
      rdma::DoorbellBatch batch(endpoint_);
      batch.add_read(header_addr, &header, 8);
      batch.add_read(gaddr, group, sizeof(group));
      batch.execute();
    }
    if (hdr_locked(header)) {
      note_busy_segment(seg_offset, header);
      continue;
    }
    if (suffix_of(hash, hdr_ld(header)) != hdr_suffix(header)) {
      refresh_directory();
      continue;
    }
    int slot = -1;
    for (uint32_t i = 0; i < kSlotsPerGroup; ++i) {
      if (group[i] == entry) {
        slot = static_cast<int>(i);
        break;
      }
    }
    if (slot < 0) return false;

    uint64_t header_after = 0;
    rdma::DoorbellBatch batch(endpoint_);
    const size_t cas_idx = batch.add_cas(
        gaddr.plus(static_cast<uint64_t>(slot) * 8), entry, 0,
        rdma::FaultSite::kHashErase);
    batch.add_read(header_addr, &header_after, 8);
    batch.execute();
    if (!batch.cas_ok(cas_idx)) continue;
    if (hdr_version(header_after) == hdr_version(header) &&
        !hdr_locked(header_after)) {
      return true;
    }
    // Raced a split: if the entry is gone everywhere, the erase stands
    // (either our CAS landed before the relocation snapshot, or the
    // relocation copied it and we must erase again).
    std::vector<uint64_t> found;
    refresh_directory();
    if (stable_search(hash, found)) {
      bool still_there = false;
      for (uint64_t p : found) {
        if (p == payload) still_there = true;
      }
      if (!still_there) return true;
    }
  }
  stats_.recovery.retry_timeouts++;
  return false;
}

bool RaceClient::split_segment(uint64_t hash) {
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kInhtWrite);
  // Serialize splits (and directory doubling) behind the directory lock.
  // Splits are rare -- amortized once per kGroupsPerSegment*kSlotsPerGroup
  // inserts -- so coarse serialization costs little.
  if (!lock_directory()) return false;

  refresh_directory();
  const uint64_t seg_offset = dir_cache_[dir_index(hash)];
  const rdma::GlobalAddr header_addr(table_.mn, seg_offset);
  uint64_t header = endpoint_.read64(header_addr);

  // Segment locks are only ever taken while holding the dir lock, which we
  // now hold: a locked header here belongs to a crashed splitter. Recover
  // it, then let the caller's retry re-evaluate (the group may have room).
  if (hdr_locked(header)) {
    recover_segment(seg_offset, header);
    unlock_directory();
    return true;
  }
  const uint8_t ld = hdr_ld(header);
  const uint16_t suffix = hdr_suffix(header);

  if (ld >= kMaxGlobalDepth) {
    unlock_directory();
    return false;  // table at maximum size; group genuinely full
  }

  // Lock the segment (bump version so racing CAS writers detect us; the
  // version field's top bits carry our id while the lock is held).
  const uint8_t owner = static_cast<uint8_t>(endpoint_.fault_client_id());
  if (!endpoint_.cas(
          header_addr, header,
          pack_header(true, lease_version(owner, hdr_true_version(header) + 1),
                      suffix, ld),
          nullptr, rdma::FaultSite::kTableLock)) {
    unlock_directory();
    return true;  // raced; caller retries
  }

  if (ld == global_depth_) {
    if (!double_directory()) {
      // Out of MN memory for the doubled directory: unlock the (unmodified)
      // segment and surface the split as a failed insert. Version must still
      // advance so racing readers don't pair this unlock with a pre-lock
      // header read.
      endpoint_.write64(header_addr,
                        pack_header(false, hdr_true_version(header) + 2,
                                    suffix, ld),
                        rdma::FaultSite::kSplitPublish);
      unlock_directory();
      return false;
    }
  }

  // Snapshot the whole segment.
  std::vector<uint64_t> image(kSegmentBytes / 8);
  endpoint_.read(rdma::GlobalAddr(table_.mn, seg_offset), image.data(),
                 kSegmentBytes);

  const uint8_t new_ld = ld + 1;
  const uint16_t sibling_suffix =
      static_cast<uint16_t>(suffix | (1u << ld));
  std::vector<uint64_t> sibling(kSegmentBytes / 8, 0);

  for (uint64_t w = kSegmentHeaderBytes / 8; w < image.size(); ++w) {
    const uint64_t entry = image[w];
    if (!entry_valid(entry)) continue;
    const uint64_t h = rehasher_(entry_payload(entry));
    if (((h >> ld) & 1) != 0) {
      sibling[w] = entry;
      image[w] = 0;
    }
  }
  image[0] = pack_header(false, hdr_true_version(header) + 2, suffix, new_ld);
  sibling[0] = pack_header(false, 0, sibling_suffix, new_ld);

  const mem::AllocResult sibling_alloc =
      allocator_.try_alloc(table_.mn, kSegmentBytes, mem::AllocTag::kHashTable);
  if (!sibling_alloc.ok) {
    // No room for the sibling: nothing remote was modified yet (the image
    // edits are local), so unlock and report the group as genuinely full.
    endpoint_.write64(header_addr,
                      pack_header(false, hdr_true_version(header) + 2, suffix,
                                  ld),
                      rdma::FaultSite::kSplitPublish);
    unlock_directory();
    return false;
  }
  const rdma::GlobalAddr sibling_addr = sibling_alloc.addr;
  endpoint_.write(sibling_addr, sibling.data(), kSegmentBytes,
                  rdma::FaultSite::kSplitSibling);

  // Point the directory entries whose suffix selects the sibling at it.
  const uint64_t desc = endpoint_.read64(table_.descriptor);
  const uint8_t gd = desc_gd(desc);
  const uint64_t dir_base = desc_offset(desc);
  {
    rdma::DoorbellBatch batch(endpoint_);
    const uint64_t sib_off = sibling_addr.offset();
    for (uint64_t j = sibling_suffix; j < (1ULL << gd);
         j += (1ULL << new_ld)) {
      batch.add_write(rdma::GlobalAddr(table_.mn, dir_base + j * 8), &sib_off,
                      8, rdma::FaultSite::kSplitDir);
    }
    batch.execute();
  }

  // Publish the cleaned original segment (also unlocks it).
  endpoint_.write(rdma::GlobalAddr(table_.mn, seg_offset), image.data(),
                  kSegmentBytes, rdma::FaultSite::kSplitPublish);

  unlock_directory();
  refresh_directory();
  stats_.splits++;
  return true;
}

bool RaceClient::lock_directory() {
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kLock);
  rdma::RetryPolicy policy(endpoint_, retry_cfg_, &stats_.backoff);
  const uint8_t owner = static_cast<uint8_t>(endpoint_.fault_client_id());
  for (uint32_t attempt = 0;; ++attempt) {
    if (!policy.backoff(attempt)) {
      stats_.recovery.retry_timeouts++;
      return false;
    }
    const uint64_t mine =
        pack_dir_lease(owner, rdma::lease_stamp23(endpoint_.clock_ns()));
    uint64_t observed = 0;
    if (endpoint_.cas(table_.dir_lock, 0, mine, &observed,
                      rdma::FaultSite::kTableLock)) {
      dir_watch_.reset();
      return true;
    }
    if (observed == 0) continue;  // injected CAS failure; plain retry
    if (!dir_watch_.observe(endpoint_, table_.dir_lock, observed)) continue;
    // The identical lease word sat there for a full lease: the holder
    // crashed. Take the lock over by CASing the watched word out.
    stats_.recovery.lease_expiries_observed++;
    if (endpoint_.cas(table_.dir_lock, observed, mine, nullptr,
                      rdma::FaultSite::kTableLock)) {
      stats_.recovery.lock_reclaims++;
      dir_watch_.reset();
      return true;
    }
    dir_watch_.reset();  // the word moved under us: progress was made
  }
}

void RaceClient::unlock_directory() {
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kLock);
  endpoint_.write64(table_.dir_lock, 0, rdma::FaultSite::kLockRelease);
}

void RaceClient::note_busy_segment(uint64_t seg_offset, uint64_t header) {
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kRecovery);
  if (!hdr_locked(header)) return;
  const rdma::GlobalAddr header_addr(table_.mn, seg_offset);
  if (!seg_watch_.observe(endpoint_, header_addr, header)) return;
  // The identical locked word sat there for a full lease: the splitter
  // crashed. Recover under the dir lock -- a crashed splitter held that
  // too, in which case lock_directory() reclaims it first.
  stats_.recovery.lease_expiries_observed++;
  if (lock_directory()) {
    const uint64_t now = endpoint_.read64(header_addr);
    if (now == header) {
      recover_segment(seg_offset, now);
    }
    unlock_directory();
  }
  seg_watch_.reset();
}

void RaceClient::recover_segment(uint64_t seg_offset, uint64_t locked_header) {
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kRecovery);
  const rdma::GlobalAddr header_addr(table_.mn, seg_offset);
  const uint8_t ld = hdr_ld(locked_header);
  const uint16_t suffix = hdr_suffix(locked_header);
  const uint8_t new_ld = ld + 1;
  const uint16_t sibling_suffix = static_cast<uint16_t>(suffix | (1u << ld));
  const uint64_t true_v = hdr_true_version(locked_header);

  // How far did the crashed splitter get? The sibling segment is fully
  // written before any directory alias points at it, so an alias that no
  // longer targets this segment proves the sibling image is complete.
  const uint64_t desc = endpoint_.read64(table_.descriptor);
  const uint8_t gd = desc_gd(desc);
  const uint64_t dir_base = desc_offset(desc);
  bool sibling_visible = false;
  uint64_t sibling_off = 0;
  if (gd >= new_ld) {
    for (uint64_t j = sibling_suffix; j < (1ULL << gd); j += 1ULL << new_ld) {
      const uint64_t e =
          endpoint_.read64(rdma::GlobalAddr(table_.mn, dir_base + j * 8));
      if (e != seg_offset) {
        sibling_visible = true;
        sibling_off = e;
        break;
      }
    }
  }

  if (!sibling_visible) {
    // Roll back: no alias moved, so no reader ever reached the sibling
    // (the crashed splitter's half-written sibling, if any, is leaked).
    // Unlocking with a bumped version suffices -- every entry is still in
    // place, and writers whose CAS raced the crashed lock fail their
    // version check and re-verify through stable_search.
    endpoint_.write64(header_addr, pack_header(false, true_v + 1, suffix, ld),
                      rdma::FaultSite::kSplitPublish);
    stats_.recovery.lock_reclaims++;
    refresh_directory();
    return;
  }

  // Roll forward: finish the split against the *live* segment contents (the
  // crashed splitter's sibling image may predate entries CAS'd into the
  // original after its snapshot). Lock the sibling first so no raced insert
  // can be acknowledged between our snapshot and our full-segment publish.
  const rdma::GlobalAddr sibling_addr(table_.mn, sibling_off);
  const uint8_t owner = static_cast<uint8_t>(endpoint_.fault_client_id());
  uint64_t sib_hdr = endpoint_.read64(sibling_addr);
  for (int i = 0; i < 16 && !hdr_locked(sib_hdr); ++i) {
    // Headers only change under the dir lock (which we hold), so this CAS
    // can lose only to injected failures.
    const uint64_t locked =
        pack_header(true, lease_version(owner, hdr_true_version(sib_hdr) + 1),
                    hdr_suffix(sib_hdr), hdr_ld(sib_hdr));
    if (endpoint_.cas(sibling_addr, sib_hdr, locked, &sib_hdr,
                      rdma::FaultSite::kTableLock)) {
      sib_hdr = locked;
    }
  }
  if (!hdr_locked(sib_hdr)) {
    return;  // persistent injected CAS failure; the next recoverer retries
  }
  // (hdr_locked on entry means an earlier recoverer crashed mid
  // roll-forward while holding the sibling lock; under the dir lock that
  // holder is dead too, so we proceed over its lease.)

  std::vector<uint64_t> image(kSegmentBytes / 8);
  endpoint_.read(header_addr, image.data(), kSegmentBytes);
  std::vector<uint64_t> sibling(kSegmentBytes / 8);
  endpoint_.read(sibling_addr, sibling.data(), kSegmentBytes);

  for (uint64_t w = kSegmentHeaderBytes / 8; w < image.size(); ++w) {
    const uint64_t entry = image[w];
    if (!entry_valid(entry)) continue;
    const uint64_t h = rehasher_(entry_payload(entry));
    if (((h >> ld) & 1) == 0) continue;
    image[w] = 0;
    if (sibling[w] == entry) continue;  // the crashed splitter moved it
    if (sibling[w] == 0) {
      sibling[w] = entry;
      continue;
    }
    // Slot taken by an entry inserted directly into the sibling: use any
    // free slot in the same group. A full group (vanishingly rare during
    // recovery) keeps the entry in the original, where lookups miss it --
    // Sphinx treats INHT misses as cache misses, so this degrades, never
    // corrupts.
    const uint64_t g0 =
        kSegmentHeaderBytes / 8 +
        ((w - kSegmentHeaderBytes / 8) / kSlotsPerGroup) * kSlotsPerGroup;
    bool placed = false;
    for (uint64_t s = g0; s < g0 + kSlotsPerGroup; ++s) {
      if (sibling[s] == entry) {
        placed = true;
        break;
      }
      if (sibling[s] == 0) {
        sibling[s] = entry;
        placed = true;
        break;
      }
    }
    if (!placed) image[w] = entry;
  }
  sibling[0] = pack_header(false, hdr_true_version(sib_hdr) + 2,
                           hdr_suffix(sib_hdr), hdr_ld(sib_hdr));
  image[0] = pack_header(false, true_v + 1, suffix, new_ld);

  // Publish order mirrors the original split: sibling (its version bump
  // invalidates raced-in CAS acks), directory aliases (idempotent redo),
  // then the cleaned original -- which also unlocks it.
  endpoint_.write(sibling_addr, sibling.data(), kSegmentBytes,
                  rdma::FaultSite::kSplitSibling);
  {
    rdma::DoorbellBatch batch(endpoint_);
    for (uint64_t j = sibling_suffix; j < (1ULL << gd); j += 1ULL << new_ld) {
      batch.add_write(rdma::GlobalAddr(table_.mn, dir_base + j * 8),
                      &sibling_off, 8, rdma::FaultSite::kSplitDir);
    }
    batch.execute();
  }
  endpoint_.write(header_addr, image.data(), kSegmentBytes,
                  rdma::FaultSite::kSplitPublish);
  stats_.recovery.lock_reclaims++;
  stats_.recovery.lock_rollforwards++;
  refresh_directory();
}

bool RaceClient::stable_search(uint64_t hash,
                               std::vector<uint64_t>& payloads_out) {
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kInhtRead);
  rdma::RetryPolicy policy(endpoint_, retry_cfg_, &stats_.backoff);
  for (uint32_t attempt = 0;; ++attempt) {
    if (!policy.backoff(attempt)) {
      stats_.recovery.retry_timeouts++;
      return false;
    }
    if (dir_cache_.empty()) refresh_directory();
    const uint64_t seg_offset = dir_cache_[dir_index(hash)];
    uint64_t h1 = 0;
    uint64_t h2 = 0;
    uint64_t group[kSlotsPerGroup];
    rdma::DoorbellBatch batch(endpoint_);
    batch.add_read(rdma::GlobalAddr(table_.mn, seg_offset), &h1, 8);
    batch.add_read(group_addr(seg_offset, hash), group, sizeof(group));
    batch.add_read(rdma::GlobalAddr(table_.mn, seg_offset), &h2, 8);
    batch.execute();
    if (hdr_locked(h1) || hdr_locked(h2)) {
      note_busy_segment(seg_offset, hdr_locked(h1) ? h1 : h2);
      continue;
    }
    if (h1 != h2) continue;  // a split completed mid-bracket
    if (suffix_of(hash, hdr_ld(h1)) != hdr_suffix(h1)) {
      refresh_directory();
      continue;
    }
    // Both brackets unlocked with equal versions: versions move on every
    // unlock, so the group image was read in a split-free window.
    match_group(hash, group, payloads_out);
    return true;
  }
}

bool RaceClient::double_directory() {
  rdma::PhaseScope phase(endpoint_, rdma::Phase::kInhtWrite);
  // Caller holds the directory lock.
  const uint64_t desc = endpoint_.read64(table_.descriptor);
  const uint8_t gd = desc_gd(desc);
  if (gd >= kMaxGlobalDepth) {
    throw std::runtime_error("race table: directory at maximum depth");
  }
  const uint64_t n = 1ULL << gd;
  std::vector<uint64_t> dir(n);
  endpoint_.read(rdma::GlobalAddr(table_.mn, desc_offset(desc)), dir.data(),
                 n * 8);
  std::vector<uint64_t> doubled(n * 2);
  for (uint64_t j = 0; j < n * 2; ++j) doubled[j] = dir[j & (n - 1)];

  const mem::AllocResult new_dir_alloc =
      allocator_.try_alloc(table_.mn, n * 2 * 8, mem::AllocTag::kHashTable);
  if (!new_dir_alloc.ok) return false;
  const rdma::GlobalAddr new_dir = new_dir_alloc.addr;
  endpoint_.write(new_dir, doubled.data(), n * 2 * 8,
                  rdma::FaultSite::kSplitSibling);
  endpoint_.write64(table_.descriptor,
                    pack_descriptor(gd + 1, new_dir.offset()),
                    rdma::FaultSite::kSplitDir);
  // Readers caching the old descriptor may still probe through the old
  // directory array, so it goes into epoch quarantine rather than straight
  // to the freelist. A reader that loses the race and follows a recycled
  // entry lands on a segment whose suffix no longer matches its hash and
  // refreshes -- but epochs make that window end before recycling begins.
  allocator_.retire(rdma::GlobalAddr(table_.mn, desc_offset(desc)), n * 8,
                    mem::AllocTag::kHashTable);
  global_depth_ = gd + 1;
  dir_cache_ = std::move(doubled);
  stats_.dir_doublings++;
  return true;
}

}  // namespace sphinx::race
