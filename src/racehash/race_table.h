// One-sided extendible hash table in the spirit of RACE hashing (Zuo et al.,
// ATC'21), used as the Inner Node Hash Table substrate.
//
// MN-side layout:
//   descriptor word (bootstrap slot): global_depth:8 | directory offset:48
//   dir lock word   (bootstrap slot): 0 = free, else a lease
//                                     1<<63 | owner:8 << 23 | stamp:23
//   directory:  2^global_depth segment offsets (8 B each)
//   segment:    64 B header | kGroupsPerSegment groups
//   group:      kSlotsPerGroup 8-byte entries (128 B -> one RDMA READ)
//
// Client-side access costs (what the paper's analysis depends on):
//   search: 1 READ of one 128 B group            == 1 round trip
//   insert: 1 group READ + (CAS + header READ)   == 2 round trips
//   update/erase: piggybacks on a prior search; 1 CAS
//
// Concurrency: lock-free reads; segment splits take a per-segment lock and
// bump a version so in-flight inserts can detect displacement and retry.
// Readers racing a split can transiently miss an entry; callers (Sphinx)
// treat a miss as a cache-style miss and fall back, so this never affects
// index correctness.
//
// Crash tolerance: both locks are crash-recoverable. The dir lock carries
// an {owner, stamp} lease; a waiter that watches the identical lease word
// for a full lease period (rdma/retry_policy.h) CASes it over. Segment
// locks are only ever taken while holding the dir lock, so any locked
// segment header observed *under* the dir lock belongs to a crashed
// splitter; recover_segment() rolls the half-finished split back (sibling
// never became visible) or forward (redoes the sibling merge, directory
// writes and cleaned-segment publish from the live segment contents).
// Mutators confirm raced entries with a version-bracketed group read
// (stable_search) -- a plain search can observe an entry mid-split that
// the splitter's cleaned-segment write then clobbers.
//
// Hash-bit usage: directory index = low bits [0, gd) (gd <= 16 enforced);
// group index = bits [16, 16+log2(groups)); fingerprint = bits [52, 64).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "memnode/cluster.h"
#include "memnode/remote_allocator.h"
#include "racehash/race_entry.h"
#include "rdma/retry_policy.h"
#include "rdma/stats.h"

namespace sphinx::race {

constexpr uint32_t kSlotsPerGroup = 16;           // 128 B per group
constexpr uint32_t kGroupBytes = kSlotsPerGroup * 8;
constexpr uint32_t kGroupsPerSegment = 512;       // 64 KiB of groups
constexpr uint32_t kSegmentHeaderBytes = 64;
constexpr uint32_t kSegmentBytes =
    kSegmentHeaderBytes + kGroupsPerSegment * kGroupBytes;
constexpr uint32_t kMaxGlobalDepth = 16;

// Identifies one table instance (Sphinx creates one per MN).
struct TableRef {
  uint32_t mn = 0;
  rdma::GlobalAddr descriptor;  // gd:8 | dir offset:48
  rdma::GlobalAddr dir_lock;
};

// Recomputes the 64-bit placement hash of a stored payload; needed only
// during segment splits (mirrors RACE re-reading KV blocks). May issue
// verbs on the caller's endpoint.
using Rehasher = std::function<uint64_t(uint64_t payload)>;

// Creates an empty table on `mn` with 2^initial_depth segments and returns
// its ref. Uses an unmetered loader endpoint internally.
TableRef create_table(mem::Cluster& cluster, uint32_t mn,
                      uint8_t initial_depth = 1);

struct RaceStats {
  uint64_t searches = 0;
  uint64_t inserts = 0;
  uint64_t insert_retries = 0;
  uint64_t splits = 0;
  uint64_t dir_doublings = 0;
  uint64_t dir_refreshes = 0;
  rdma::RecoveryStats recovery;  // lease expiries / reclaims / timeouts
  rdma::BackoffHistogram backoff;
};

// Per-client handle. Not thread-safe (one per worker, like an Endpoint).
class RaceClient {
 public:
  RaceClient(mem::Cluster& cluster, rdma::Endpoint& endpoint,
             mem::RemoteAllocator& allocator, const TableRef& table,
             Rehasher rehasher);

  // Remote address + parse context for one probe; lets callers batch
  // several probes (possibly across tables) into a single doorbell batch.
  struct Probe {
    rdma::GlobalAddr group_addr;
    uint64_t hash = 0;
  };

  // Resolves the group address for `hash` from the cached directory.
  Probe plan_probe(uint64_t hash);

  // Extracts payloads whose fingerprint matches `hash` from a 128 B group
  // image fetched via a Probe.
  static void match_group(uint64_t hash, const uint64_t group[kSlotsPerGroup],
                          std::vector<uint64_t>& payloads_out);

  // Single-probe search: one READ round trip. Returns all fp-matching
  // payloads (usually 0 or 1).
  void search(uint64_t hash, std::vector<uint64_t>& payloads_out);

  // Inserts (hash -> payload). Returns false only if the table failed to
  // make room (pathological). Duplicate suppression is the caller's job.
  bool insert(uint64_t hash, uint64_t payload);

  // Replaces old_payload with new_payload for `hash`. Returns false when
  // no matching live entry was found.
  bool update(uint64_t hash, uint64_t old_payload, uint64_t new_payload);

  // Removes the entry (hash -> payload). Returns false when absent.
  bool erase(uint64_t hash, uint64_t payload);

  // Re-reads descriptor + directory from the MN (charged to the endpoint).
  void refresh_directory();

  const RaceStats& stats() const { return stats_; }

  // Approximate CN-side memory held by the cached directory (for the
  // paper's "directory cache is 2-5% of the filter cache" accounting).
  uint64_t directory_cache_bytes() const {
    return dir_cache_.size() * sizeof(uint64_t) + sizeof(*this);
  }

 private:
  uint64_t dir_index(uint64_t hash) const {
    return hash & ((1ULL << global_depth_) - 1);
  }
  static uint32_t group_index(uint64_t hash) {
    return static_cast<uint32_t>((hash >> 16) % kGroupsPerSegment);
  }
  rdma::GlobalAddr group_addr(uint64_t segment_offset, uint64_t hash) const {
    return rdma::GlobalAddr(
        table_.mn, segment_offset + kSegmentHeaderBytes +
                       static_cast<uint64_t>(group_index(hash)) * kGroupBytes);
  }

  // Splits the segment containing `hash`; returns true if the split
  // happened (or someone else's concurrent split was detected).
  bool split_segment(uint64_t hash);
  bool double_directory();

  // ---- crash-tolerant locking ----------------------------------------------

  // Acquires the directory lock, reclaiming an expired (crashed-holder)
  // lease. Returns false once the retry budget is exhausted.
  bool lock_directory();
  void unlock_directory();

  // Feeds one locked-segment-header observation into the lease watch; once
  // it expires, takes the dir lock and recovers the orphaned segment.
  void note_busy_segment(uint64_t seg_offset, uint64_t header);

  // Pre: caller holds the dir lock, `locked_header` was just read from the
  // segment at `seg_offset` and is locked -- which, under the dir lock,
  // proves its holder crashed. Rolls the split back or forward.
  void recover_segment(uint64_t seg_offset, uint64_t locked_header);

  // Presence/absence decided only from a group image bracketed by two
  // identical *unlocked* header reads in one doorbell batch, so an
  // in-flight split can never produce a false verdict. Used by mutators to
  // confirm entries after racing a split. Returns false when no stable
  // bracket was achieved within the retry budget.
  bool stable_search(uint64_t hash, std::vector<uint64_t>& payloads_out);

  mem::Cluster& cluster_;
  rdma::Endpoint& endpoint_;
  mem::RemoteAllocator& allocator_;
  TableRef table_;
  Rehasher rehasher_;

  // Client-side directory cache.
  uint8_t global_depth_ = 0;
  std::vector<uint64_t> dir_cache_;  // segment offsets
  RaceStats stats_;
  rdma::RetryPolicyConfig retry_cfg_;
  rdma::LockWatch dir_watch_;  // dir lock lease expiry
  rdma::LockWatch seg_watch_;  // segment lock lease expiry
};

}  // namespace sphinx::race
