#include "rdma/endpoint.h"

#include <algorithm>
#include <array>

namespace sphinx::rdma {

void DoorbellBatch::add_read(GlobalAddr addr, void* dst, size_t len) {
  Op op;
  op.type = OpType::kRead;
  op.addr = addr;
  op.dst = dst;
  op.len = len;
  ops_.push_back(op);
}

void DoorbellBatch::add_write(GlobalAddr addr, const void* src, size_t len) {
  Op op;
  op.type = OpType::kWrite;
  op.addr = addr;
  op.src = src;
  op.len = len;
  ops_.push_back(op);
}

size_t DoorbellBatch::add_cas(GlobalAddr addr, uint64_t expected,
                              uint64_t desired) {
  Op op;
  op.type = OpType::kCas;
  op.addr = addr;
  op.expected = expected;
  op.desired = desired;
  op.len = 8;
  ops_.push_back(op);
  return ops_.size() - 1;
}

size_t DoorbellBatch::add_faa(GlobalAddr addr, uint64_t delta) {
  Op op;
  op.type = OpType::kFaa;
  op.addr = addr;
  op.desired = delta;
  op.len = 8;
  ops_.push_back(op);
  return ops_.size() - 1;
}

bool DoorbellBatch::cas_ok(size_t op_index) const {
  assert(op_index < ops_.size() && ops_[op_index].type == OpType::kCas);
  return ops_[op_index].cas_ok;
}

uint64_t DoorbellBatch::old_value(size_t op_index) const {
  assert(op_index < ops_.size());
  return ops_[op_index].old_value;
}

void DoorbellBatch::execute() {
  if (ops_.empty()) return;
  Endpoint& ep = ep_;
  Fabric& fabric = ep.fabric_;
  const NetworkConfig& cfg = fabric.config();

  if (!ep.batching_enabled() && ops_.size() > 1) {
    // Ablation A2: no doorbell batching -- each verb is its own round trip,
    // issued sequentially (the client waits for each completion).
    for (Op& op : ops_) {
      apply_one(op);
      switch (op.type) {
        case OpType::kRead:
          ep.charge_single(op.addr.mn(), op.len, true);
          if (ep.metered_) ep.stats_.reads++;
          break;
        case OpType::kWrite:
          ep.charge_single(op.addr.mn(), op.len, false);
          if (ep.metered_) ep.stats_.writes++;
          break;
        case OpType::kCas:
          ep.charge_single(op.addr.mn(), 8, false);
          if (ep.metered_) ep.stats_.cas++;
          break;
        case OpType::kFaa:
          ep.charge_single(op.addr.mn(), 8, false);
          if (ep.metered_) ep.stats_.faa++;
          break;
      }
    }
    return;
  }

  // Memory effects apply in post order regardless of metering.
  for (Op& op : ops_) apply_one(op);

  if (!ep.metered_) return;

  // Statistics.
  for (const Op& op : ops_) {
    ep.stats_.messages++;
    switch (op.type) {
      case OpType::kRead:
        ep.stats_.reads++;
        ep.stats_.bytes_read += op.len;
        break;
      case OpType::kWrite:
        ep.stats_.writes++;
        ep.stats_.bytes_written += op.len;
        break;
      case OpType::kCas:
        ep.stats_.cas++;
        ep.stats_.bytes_written += 8;
        break;
      case OpType::kFaa:
        ep.stats_.faa++;
        ep.stats_.bytes_written += 8;
        break;
    }
  }
  ep.stats_.round_trips++;

  // Unloaded latency: posting CPU + CN NIC processing for every message,
  // then the batch completes when the slowest MN has served its share of
  // messages/bytes, plus one base round trip. Queueing under load is
  // applied analytically by the runner's NIC-capacity model.
  const uint64_t issue_ns =
      (cfg.post_verb_ns + cfg.cn_msg_ns) * static_cast<uint64_t>(ops_.size());

  // Group per MN (few MNs; linear passes are fine).
  struct PerMn {
    uint64_t msgs = 0;
    uint64_t bytes = 0;
  };
  std::array<PerMn, 256> per_mn{};
  uint32_t max_mn = 0;
  for (const Op& op : ops_) {
    const uint32_t mn = op.addr.mn();
    per_mn[mn].msgs++;
    per_mn[mn].bytes += op.len;
    if (mn < kMaxMnsTracked) {
      ep.stats_.msgs_per_mn[mn]++;
      ep.stats_.bytes_per_mn[mn] += op.len;
    }
    max_mn = std::max(max_mn, mn);
  }
  uint64_t slowest_service = 0;
  for (uint32_t mn = 0; mn <= max_mn; ++mn) {
    if (per_mn[mn].msgs == 0) continue;
    const uint64_t service =
        cfg.mn_msg_ns * per_mn[mn].msgs +
        static_cast<uint64_t>(static_cast<double>(per_mn[mn].bytes) /
                              cfg.bytes_per_ns);
    slowest_service = std::max(slowest_service, service);
  }
  ep.clock_ns_ += issue_ns + slowest_service + cfg.base_rtt_ns;
}

void DoorbellBatch::apply_one(Op& op) {
  MemoryRegion& region = ep_.fabric_.region(op.addr.mn());
  switch (op.type) {
    case OpType::kRead:
      region.read_bytes(op.addr.offset(), op.dst, op.len);
      break;
    case OpType::kWrite:
      region.write_bytes(op.addr.offset(), op.src, op.len);
      break;
    case OpType::kCas:
      op.cas_ok = region.cas64(op.addr.offset(), op.expected, op.desired,
                               &op.old_value);
      break;
    case OpType::kFaa:
      op.old_value = region.faa64(op.addr.offset(), op.desired);
      break;
  }
}

}  // namespace sphinx::rdma
