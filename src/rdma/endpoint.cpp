#include "rdma/endpoint.h"

#include <algorithm>
#include <array>
#include <thread>

namespace sphinx::rdma {

bool Endpoint::fault_gate(VerbKind kind, uint32_t mn, FaultSite site) {
  FaultInjector* injector = fabric_.fault_injector();
  if (injector == nullptr) return false;
  assert(!crashed_ && "a crashed endpoint issued a verb");
  for (uint32_t attempt = 0;; ++attempt) {
    const uint64_t seq = fault_verb_seq_++;
    const FaultDecision d = injector->on_verb(
        VerbDesc{kind, mn, fault_client_id_, seq, site});
    if (d.crash) {
      // The client dies *before* this verb reaches memory. Earlier verbs of
      // the same doorbell batch have already applied (a crash mid payload
      // write); whatever locks the client holds stay set until reclaimed.
      crashed_ = true;
      throw ClientCrashed{fault_client_id_, seq, site};
    }
    if (d.delay_ns > 0) clock_ns_ += d.delay_ns;
    if (d.stall_ns > 0) {
      // A stall widens real race windows too, not just virtual ones.
      clock_ns_ += d.stall_ns;
      std::this_thread::yield();
    }
    if (!d.reject) return d.fail_cas;
    // MN offline: the verb timed out without executing. Charge the
    // detection latency and reissue until the MN recovers; a sticky
    // offline past the cap degrades into a counted give-up (the verb then
    // executes) rather than a hang.
    clock_ns_ += fabric_.config().verb_timeout_ns;
    if (attempt >= kMaxOfflineRetries) {
      injector->note_offline_giveup();
      return d.fail_cas;
    }
    std::this_thread::yield();
  }
}

void DoorbellBatch::add_read(GlobalAddr addr, void* dst, size_t len) {
  Op op;
  op.type = OpType::kRead;
  op.addr = addr;
  op.dst = dst;
  op.len = len;
  ops_.push_back(op);
}

void DoorbellBatch::add_write(GlobalAddr addr, const void* src, size_t len,
                              FaultSite site) {
  Op op;
  op.type = OpType::kWrite;
  op.addr = addr;
  op.src = src;
  op.len = len;
  op.site = site;
  ops_.push_back(op);
}

size_t DoorbellBatch::add_cas(GlobalAddr addr, uint64_t expected,
                              uint64_t desired, FaultSite site) {
  Op op;
  op.type = OpType::kCas;
  op.addr = addr;
  op.expected = expected;
  op.desired = desired;
  op.len = 8;
  op.site = site;
  ops_.push_back(op);
  return ops_.size() - 1;
}

size_t DoorbellBatch::add_faa(GlobalAddr addr, uint64_t delta) {
  Op op;
  op.type = OpType::kFaa;
  op.addr = addr;
  op.desired = delta;
  op.len = 8;
  ops_.push_back(op);
  return ops_.size() - 1;
}

bool DoorbellBatch::cas_ok(size_t op_index) const {
  assert(op_index < ops_.size() && ops_[op_index].type == OpType::kCas);
  return ops_[op_index].cas_ok;
}

uint64_t DoorbellBatch::old_value(size_t op_index) const {
  assert(op_index < ops_.size());
  return ops_[op_index].old_value;
}

void DoorbellBatch::execute() {
  if (ops_.empty()) return;
  Endpoint& ep = ep_;
  Fabric& fabric = ep.fabric_;
  const NetworkConfig& cfg = fabric.config();

  if (!ep.batching_enabled() && ops_.size() > 1) {
    // Ablation A2: no doorbell batching -- each verb is its own round trip,
    // issued sequentially (the client waits for each completion).
    for (Op& op : ops_) {
      apply_one(op);
      switch (op.type) {
        case OpType::kRead:
          ep.charge_single(op.addr.mn(), op.len, true);
          if (ep.metered_) ep.stats_.reads++;
          break;
        case OpType::kWrite:
          ep.charge_single(op.addr.mn(), op.len, false);
          if (ep.metered_) ep.stats_.writes++;
          break;
        case OpType::kCas:
          ep.charge_single(op.addr.mn(), 8, false);
          if (ep.metered_) ep.stats_.cas++;
          break;
        case OpType::kFaa:
          ep.charge_single(op.addr.mn(), 8, false);
          if (ep.metered_) ep.stats_.faa++;
          break;
      }
    }
    return;
  }

  // Memory effects apply in post order regardless of metering.
  for (Op& op : ops_) apply_one(op);

  if (!ep.metered_) return;

  // Statistics.
  uint64_t batch_bytes = 0;
  for (const Op& op : ops_) {
    ep.stats_.messages++;
    batch_bytes += op.len;
    switch (op.type) {
      case OpType::kRead:
        ep.stats_.reads++;
        ep.stats_.bytes_read += op.len;
        break;
      case OpType::kWrite:
        ep.stats_.writes++;
        ep.stats_.bytes_written += op.len;
        break;
      case OpType::kCas:
        ep.stats_.cas++;
        ep.stats_.bytes_written += 8;
        break;
      case OpType::kFaa:
        ep.stats_.faa++;
        ep.stats_.bytes_written += 8;
        break;
    }
  }
  ep.stats_.round_trips++;
  // One batch == one round trip, attributed whole to the endpoint's current
  // phase (these are the only two bumps matching charge_single's pair, so
  // per-phase sums equal round_trips / bytes_total exactly).
  ep.stats_.rtts_by_phase[static_cast<size_t>(ep.phase_)]++;
  ep.stats_.bytes_by_phase[static_cast<size_t>(ep.phase_)] += batch_bytes;

  // Unloaded latency: posting CPU + CN NIC processing for every message,
  // then the batch completes when the slowest MN has served its share of
  // messages/bytes, plus one base round trip. Queueing under load is
  // applied analytically by the runner's NIC-capacity model.
  const uint64_t issue_ns =
      (cfg.post_verb_ns + cfg.cn_msg_ns) * static_cast<uint64_t>(ops_.size());

  // Group per MN (few MNs; linear passes are fine).
  struct PerMn {
    uint64_t msgs = 0;
    uint64_t bytes = 0;
  };
  std::array<PerMn, 256> per_mn{};
  uint32_t max_mn = 0;
  for (const Op& op : ops_) {
    const uint32_t mn = op.addr.mn();
    per_mn[mn].msgs++;
    per_mn[mn].bytes += op.len;
    ep.stats_.note_mn(mn, op.len);
    max_mn = std::max(max_mn, mn);
  }
  uint64_t slowest_service = 0;
  for (uint32_t mn = 0; mn <= max_mn; ++mn) {
    if (per_mn[mn].msgs == 0) continue;
    const uint64_t service =
        cfg.mn_msg_ns * per_mn[mn].msgs +
        static_cast<uint64_t>(static_cast<double>(per_mn[mn].bytes) /
                              cfg.bytes_per_ns);
    slowest_service = std::max(slowest_service, service);
  }
  const uint64_t start_ns = ep.clock_ns_;
  ep.clock_ns_ += issue_ns + slowest_service + cfg.base_rtt_ns;
  if (ep.trace_ != nullptr) {
    ep.trace_->record(phase_name(ep.phase_), start_ns,
                      ep.clock_ns_ - start_ns, ep.trace_tid_);
  }
}

void DoorbellBatch::apply_one(Op& op) {
  MemoryRegion& region = ep_.fabric_.region(op.addr.mn());
  bool inject_cas_fail = false;
  if (ep_.faulty()) {
    VerbKind kind = VerbKind::kRead;
    switch (op.type) {
      case OpType::kRead: kind = VerbKind::kRead; break;
      case OpType::kWrite: kind = VerbKind::kWrite; break;
      case OpType::kCas: kind = VerbKind::kCas; break;
      case OpType::kFaa: kind = VerbKind::kFaa; break;
    }
    inject_cas_fail = ep_.fault_gate(kind, op.addr.mn(), op.site);
  }
  switch (op.type) {
    case OpType::kRead:
      region.read_bytes(op.addr.offset(), op.dst, op.len);
      break;
    case OpType::kWrite:
      region.write_bytes(op.addr.offset(), op.src, op.len);
      break;
    case OpType::kCas:
      if (inject_cas_fail) {
        // Injected lost race: no swap; report the true current value, like
        // hardware CAS reporting the winner's word. Later ops in the batch
        // still execute unconditionally.
        op.cas_ok = false;
        op.old_value = region.load64(op.addr.offset());
        break;
      }
      op.cas_ok = region.cas64(op.addr.offset(), op.expected, op.desired,
                               &op.old_value);
      break;
    case OpType::kFaa:
      op.old_value = region.faa64(op.addr.offset(), op.desired);
      break;
  }
}

}  // namespace sphinx::rdma
