// A client-side RDMA endpoint (queue pair + completion queue abstraction).
// Each worker thread owns one Endpoint. Verbs mutate fabric memory
// immediately (with real atomics, so races between clients are real) and
// charge latency to the endpoint's *virtual clock* according to the
// NetworkConfig cost model.
//
// DoorbellBatch models the doorbell-batching optimization the paper relies
// on (Kalia et al., ATC'16): N verbs posted together cost one round trip;
// all of them execute unconditionally and report individual results, exactly
// like hardware (a failed CAS does not suppress a later WRITE in the batch).
//
// When a FaultInjector is installed on the fabric (fault_injector.h), every
// metered verb -- standalone or inside a batch -- consults it first and may
// be delayed, stalled, rejected (MN offline; the endpoint retries) or, for
// CAS verbs tagged with a FaultSite, forced to lose its race.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "rdma/fabric.h"
#include "rdma/fault_injector.h"
#include "rdma/phase.h"
#include "rdma/stats.h"
#include "rdma/trace.h"

namespace sphinx::rdma {

class Endpoint;

class DoorbellBatch {
 public:
  explicit DoorbellBatch(Endpoint& ep) : ep_(ep) {}

  // Destination/source buffers must stay alive until execute() returns,
  // matching real verbs semantics.
  void add_read(GlobalAddr addr, void* dst, size_t len);
  // `site` tags protocol steps for crash targeting (kPayloadWrite,
  // kLockRelease, ...); writes are never CAS-failed regardless of tag.
  void add_write(GlobalAddr addr, const void* src, size_t len,
                 FaultSite site = FaultSite::kNone);
  // Returns the op index used to query the CAS outcome after execute().
  // `site` tags retry-safe CAS call sites for fault injection (see
  // fault_injector.h); the default kNone marks the op as never injectable.
  size_t add_cas(GlobalAddr addr, uint64_t expected, uint64_t desired,
                 FaultSite site = FaultSite::kNone);
  size_t add_faa(GlobalAddr addr, uint64_t delta);

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  // Issues the batch: one round trip when doorbell batching is enabled,
  // otherwise one per verb. Memory effects apply in post order.
  void execute();

  // Post-execute result queries.
  bool cas_ok(size_t op_index) const;
  uint64_t old_value(size_t op_index) const;  // CAS observed / FAA previous

  void clear() { ops_.clear(); }

 private:
  friend class Endpoint;

  enum class OpType : uint8_t { kRead, kWrite, kCas, kFaa };

  struct Op {
    OpType type;
    GlobalAddr addr;
    void* dst = nullptr;        // read
    const void* src = nullptr;  // write
    size_t len = 0;
    uint64_t expected = 0;  // cas
    uint64_t desired = 0;   // cas / faa delta
    uint64_t old_value = 0;
    bool cas_ok = false;
    FaultSite site = FaultSite::kNone;  // cas/write: protocol-step tag
  };

  void apply_one(Op& op);

  Endpoint& ep_;
  std::vector<Op> ops_;
};

class Endpoint {
 public:
  // `cn` selects which compute-node NIC this endpoint's traffic shares.
  // Unmetered endpoints (bootstrap/loading) mutate memory without touching
  // clocks or statistics.
  Endpoint(Fabric& fabric, uint32_t cn, bool metered = true)
      : fabric_(fabric), cn_(cn), metered_(metered), fault_client_id_(cn) {
    assert(cn < fabric.config().num_cns);
    stats_.reserve_mns(fabric.config().num_mns);
  }

  // ---- one-sided verbs (each is one round trip) ---------------------------

  void read(GlobalAddr addr, void* dst, size_t len) {
    if (faulty()) fault_gate(VerbKind::kRead, addr.mn(), FaultSite::kNone);
    fabric_.region(addr.mn()).read_bytes(addr.offset(), dst, len);
    charge_single(addr.mn(), len, /*is_read=*/true);
    if (metered_) stats_.reads++;
  }

  // `site` tags protocol steps for crash targeting; writes are never
  // CAS-failed regardless of tag.
  void write(GlobalAddr addr, const void* src, size_t len,
             FaultSite site = FaultSite::kNone) {
    if (faulty()) fault_gate(VerbKind::kWrite, addr.mn(), site);
    fabric_.region(addr.mn()).write_bytes(addr.offset(), src, len);
    charge_single(addr.mn(), len, /*is_read=*/false);
    if (metered_) stats_.writes++;
  }

  uint64_t read64(GlobalAddr addr) {
    uint64_t v;
    read(addr, &v, sizeof(v));
    return v;
  }

  void write64(GlobalAddr addr, uint64_t v,
               FaultSite site = FaultSite::kNone) {
    write(addr, &v, sizeof(v), site);
  }

  // `site` tags retry-safe call sites for CAS fault injection (see
  // fault_injector.h). An injected failure performs no swap and reports
  // the word's true current value through *observed, indistinguishable
  // from losing the race to another client.
  bool cas(GlobalAddr addr, uint64_t expected, uint64_t desired,
           uint64_t* observed = nullptr, FaultSite site = FaultSite::kNone) {
    if (faulty() && fault_gate(VerbKind::kCas, addr.mn(), site)) {
      if (observed != nullptr) {
        *observed = fabric_.region(addr.mn()).load64(addr.offset());
      }
      charge_single(addr.mn(), 8, /*is_read=*/false);
      if (metered_) stats_.cas++;
      return false;
    }
    const bool ok =
        fabric_.region(addr.mn()).cas64(addr.offset(), expected, desired,
                                        observed);
    charge_single(addr.mn(), 8, /*is_read=*/false);
    if (metered_) stats_.cas++;
    return ok;
  }

  uint64_t faa(GlobalAddr addr, uint64_t delta) {
    if (faulty()) fault_gate(VerbKind::kFaa, addr.mn(), FaultSite::kNone);
    const uint64_t old = fabric_.region(addr.mn()).faa64(addr.offset(), delta);
    charge_single(addr.mn(), 8, /*is_read=*/false);
    if (metered_) stats_.faa++;
    return old;
  }

  // ---- virtual time -------------------------------------------------------

  // Charges local CPU work (hash computation, filter probes, ...).
  void advance_local(uint64_t ns) {
    if (metered_) clock_ns_ += ns;
  }

  uint64_t clock_ns() const { return clock_ns_; }
  void set_clock_ns(uint64_t ns) { clock_ns_ = ns; }

  // ---- introspection ------------------------------------------------------

  const EndpointStats& stats() const { return stats_; }
  EndpointStats& mutable_stats() { return stats_; }

  // ---- RTT attribution & tracing ------------------------------------------

  // The protocol phase charged for subsequent round trips; set via
  // PhaseScope (innermost scope wins), restored on scope exit.
  Phase phase() const { return phase_; }
  void set_phase(Phase p) { phase_ = p; }

  // Attaches (or detaches, with nullptr) a span recorder: every metered
  // round trip then records a phase-named span on the virtual clock under
  // thread id `tid`. Null-checked in the charge paths, so detached tracing
  // costs nothing and leaves clocks/stats untouched.
  void set_trace(TraceRecorder* recorder, uint32_t tid = 0) {
    trace_ = recorder;
    trace_tid_ = tid;
  }
  TraceRecorder* trace() const { return trace_; }


  Fabric& fabric() { return fabric_; }
  uint32_t cn() const { return cn_; }
  bool metered() const { return metered_; }
  bool batching_enabled() const {
    return fabric_.config().doorbell_batching;
  }

  // ---- fault injection ----------------------------------------------------

  // Identifies this endpoint in fault schedules (and per-client event
  // logs). Defaults to the CN id; stress harnesses set a unique id per
  // worker so probabilistic schedules are a pure function of the worker.
  void set_fault_client_id(uint32_t id) { fault_client_id_ = id; }
  uint32_t fault_client_id() const { return fault_client_id_; }
  uint64_t fault_verb_seq() const { return fault_verb_seq_; }

  // True once a kClientCrash rule killed this endpoint; it must never issue
  // another verb (workers abandon it and reincarnate with a fresh one).
  bool crashed() const { return crashed_; }

  // True when verbs from this endpoint are subject to fault injection.
  bool faulty() const {
    return metered_ && fabric_.fault_injector() != nullptr;
  }

  // Consults the installed injector for one verb. Applies delays/stalls to
  // the virtual clock, loops through MN-offline rejections (charging one
  // verb timeout per reissue), and returns whether a CAS at `site` must
  // report an injected failure. Defined in endpoint.cpp.
  bool fault_gate(VerbKind kind, uint32_t mn, FaultSite site);

 private:
  friend class DoorbellBatch;

  // Reissue cap while an MN is sticky-offline: enough real yields for a
  // controller thread to restore the MN, small enough that a forgotten
  // restore degrades into a counted give-up instead of a hang.
  static constexpr uint32_t kMaxOfflineRetries = 1u << 14;

  // Charges one verb of `payload` bytes to/from MN `mn` as a standalone
  // round trip. Unloaded cost model: posting CPU + CN NIC processing +
  // MN NIC service (per-message + per-byte) + base round trip. Queueing
  // under load is applied analytically afterwards (the fluid NIC-capacity
  // model in ycsb::YcsbRunner), keeping per-client virtual timelines
  // independent and results deterministic.
  void charge_single(uint32_t mn, size_t payload, bool is_read) {
    if (!metered_) return;
    const NetworkConfig& cfg = fabric_.config();
    stats_.messages++;
    stats_.round_trips++;
    stats_.rtts_by_phase[static_cast<size_t>(phase_)]++;
    stats_.bytes_by_phase[static_cast<size_t>(phase_)] += payload;
    if (is_read) {
      stats_.bytes_read += payload;
    } else {
      stats_.bytes_written += payload;
    }
    stats_.note_mn(mn, payload);
    const uint64_t service =
        cfg.mn_msg_ns + static_cast<uint64_t>(static_cast<double>(payload) /
                                              cfg.bytes_per_ns);
    const uint64_t start_ns = clock_ns_;
    clock_ns_ += cfg.post_verb_ns + cfg.cn_msg_ns + service + cfg.base_rtt_ns;
    if (trace_ != nullptr) {
      trace_->record(phase_name(phase_), start_ns, clock_ns_ - start_ns,
                     trace_tid_);
    }
  }

  Fabric& fabric_;
  uint32_t cn_;
  bool metered_;
  uint64_t clock_ns_ = 0;
  EndpointStats stats_;
  uint32_t fault_client_id_;
  uint64_t fault_verb_seq_ = 0;
  bool crashed_ = false;
  Phase phase_ = Phase::kUnattributed;
  TraceRecorder* trace_ = nullptr;
  uint32_t trace_tid_ = 0;
};

// RAII phase tag: round trips charged while the scope lives are attributed
// to `p`. Scopes nest; the innermost one wins (a recovery helper called
// from an INHT insert re-tags its verbs kRecovery), and the previous phase
// is restored on exit -- including exits by exception (ClientCrashed), so a
// crashed-and-reincarnated worker never leaks a stale phase.
class PhaseScope {
 public:
  PhaseScope(Endpoint& ep, Phase p) : ep_(ep), saved_(ep.phase()) {
    ep_.set_phase(p);
  }
  ~PhaseScope() { ep_.set_phase(saved_); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Endpoint& ep_;
  Phase saved_;
};

}  // namespace sphinx::rdma
