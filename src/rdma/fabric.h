// The simulated RDMA fabric: memory-node regions plus the shared NIC
// clocks. Endpoints (one per client/worker) issue one-sided verbs against
// it; see endpoint.h. An optional FaultInjector (fault_injector.h) can be
// installed to perturb every metered verb with deterministic faults.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "rdma/global_addr.h"
#include "rdma/memory_region.h"
#include "rdma/network_config.h"
#include "rdma/nic_clock.h"

namespace sphinx::rdma {

class FaultInjector;

class Fabric {
 public:
  // Creates `config.num_mns` memory regions of `mn_size_bytes` each.
  Fabric(const NetworkConfig& config, uint64_t mn_size_bytes)
      : config_(config) {
    regions_.reserve(config.num_mns);
    for (uint32_t i = 0; i < config.num_mns; ++i) {
      regions_.push_back(std::make_unique<MemoryRegion>(mn_size_bytes));
    }
    mn_nics_ = std::make_unique<NicClock[]>(config.num_mns);
    cn_nics_ = std::make_unique<NicClock[]>(config.num_cns);
  }

  const NetworkConfig& config() const { return config_; }
  uint32_t num_mns() const { return static_cast<uint32_t>(regions_.size()); }

  MemoryRegion& region(uint32_t mn) {
    assert(mn < regions_.size());
    return *regions_[mn];
  }
  const MemoryRegion& region(uint32_t mn) const {
    assert(mn < regions_.size());
    return *regions_[mn];
  }

  NicClock& mn_nic(uint32_t mn) {
    assert(mn < config_.num_mns);
    return mn_nics_[mn];
  }
  NicClock& cn_nic(uint32_t cn) {
    assert(cn < config_.num_cns);
    return cn_nics_[cn];
  }

  // Resets all NIC virtual clocks (between benchmark phases) without
  // touching memory contents.
  void reset_clocks() {
    for (uint32_t i = 0; i < config_.num_mns; ++i) mn_nics_[i].reset();
    for (uint32_t i = 0; i < config_.num_cns; ++i) cn_nics_[i].reset();
  }

  // Total MN-side bytes provisioned (for memory-usage reporting).
  uint64_t total_region_bytes() const {
    uint64_t total = 0;
    for (const auto& r : regions_) total += r->size();
    return total;
  }

  // Installs (or removes, with nullptr) a fault injector consulted by every
  // metered verb. Non-owning; the injector must outlive its installation.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return fault_injector_.load(std::memory_order_acquire);
  }

 private:
  NetworkConfig config_;
  std::vector<std::unique_ptr<MemoryRegion>> regions_;
  std::unique_ptr<NicClock[]> mn_nics_;
  std::unique_ptr<NicClock[]> cn_nics_;
  std::atomic<FaultInjector*> fault_injector_{nullptr};
};

}  // namespace sphinx::rdma
