#include "rdma/fault_injector.h"

#include <stdexcept>

#include "common/hash.h"

namespace sphinx::rdma {

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {
  for (auto& f : fires_left_) f.store(0, std::memory_order_relaxed);
  for (auto& o : offline_) o.store(0, std::memory_order_relaxed);
}

size_t FaultInjector::add_rule(const FaultRule& rule) {
  const uint32_t idx = num_rules_.load(std::memory_order_relaxed);
  if (idx >= kMaxRules) {
    throw std::length_error("FaultInjector: too many rules");
  }
  rules_[idx] = rule;
  fires_left_[idx].store(rule.max_fires, std::memory_order_relaxed);
  // Publish after the rule body is fully written: readers acquire
  // num_rules_ and only then touch rules_[i < n].
  num_rules_.store(idx + 1, std::memory_order_release);
  return idx;
}

void FaultInjector::disarm_rule(size_t id) {
  if (id < kMaxRules) fires_left_[id].store(0, std::memory_order_relaxed);
}

void FaultInjector::clear_rules() {
  const uint32_t n = num_rules_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < n; ++i) disarm_rule(i);
}

void FaultInjector::arm_mn_offline(uint32_t mn, uint64_t reject_count) {
  if (mn >= kMaxMns || reject_count == kOfflineSticky) return;
  offline_[mn].store(reject_count, std::memory_order_relaxed);
}

void FaultInjector::set_mn_offline(uint32_t mn, bool offline) {
  if (mn >= kMaxMns) return;
  offline_[mn].store(offline ? kOfflineSticky : 0, std::memory_order_relaxed);
}

bool FaultInjector::mn_offline(uint32_t mn) const {
  return mn < kMaxMns && offline_[mn].load(std::memory_order_relaxed) != 0;
}

bool FaultInjector::rule_fires(const FaultRule& rule, size_t rule_idx,
                               const VerbDesc& v) {
  if ((rule.verbs & verb_bit(v.kind)) == 0) return false;
  if (rule.mn >= 0 && static_cast<uint32_t>(rule.mn) != v.mn) return false;
  if (rule.client_id >= 0 &&
      static_cast<uint32_t>(rule.client_id) != v.client_id) {
    return false;
  }
  if (rule.kind == FaultKind::kCasFail) {
    if (v.kind != VerbKind::kCas) return false;
    // Only retry-safe tagged CAS sites may lose their race; releases and
    // payload writes are protected so CAS-fail cannot wedge a lock.
    if (!cas_fail_injectable(v.site)) return false;
    if (rule.site != FaultSite::kAny && rule.site != v.site) return false;
  }
  if (rule.kind == FaultKind::kClientCrash &&
      rule.site != FaultSite::kAny && rule.site != v.site) {
    return false;
  }
  if (rule.probability < 1.0) {
    if (rule.probability <= 0.0) return false;
    // Pure function of (seed, client, seq, rule): the same client replays
    // the same decision stream on every run.
    uint64_t x = seed_;
    x ^= static_cast<uint64_t>(v.client_id) * 0xff51afd7ed558ccdULL;
    x ^= v.seq * 0x9e3779b97f4a7c15ULL;
    x ^= (rule_idx + 1) * 0xc4ceb9fe1a85ec53ULL;
    const uint64_t h = splitmix64(x) >> 11;  // 53 random bits
    const uint64_t threshold = static_cast<uint64_t>(
        rule.probability * 9007199254740992.0);  // * 2^53
    if (h >= threshold) return false;
  }
  return consume_fire(rule_idx);
}

bool FaultInjector::consume_fire(size_t rule_idx) {
  std::atomic<uint64_t>& left = fires_left_[rule_idx];
  uint64_t cur = left.load(std::memory_order_relaxed);
  for (;;) {
    if (cur == 0) return false;
    if (cur == UINT64_MAX) return true;  // unlimited budget
    if (left.compare_exchange_weak(cur, cur - 1,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
}

void FaultInjector::record(FaultKind kind, const VerbDesc& v) {
  if (!recording_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(events_mu_);
  events_[v.client_id].push_back(FaultEvent{kind, v.kind, v.mn, v.seq});
}

FaultDecision FaultInjector::on_verb(const VerbDesc& v) {
  counters_.verbs_inspected.fetch_add(1, std::memory_order_relaxed);
  FaultDecision d;

  // Dedicated per-MN offline state (sticky or countdown).
  if (v.mn < kMaxMns) {
    uint64_t cur = offline_[v.mn].load(std::memory_order_relaxed);
    while (cur != 0) {
      if (cur == kOfflineSticky) {
        d.reject = true;
        break;
      }
      if (offline_[v.mn].compare_exchange_weak(cur, cur - 1,
                                               std::memory_order_relaxed)) {
        d.reject = true;
        break;
      }
    }
  }

  const uint32_t n = num_rules_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < n; ++i) {
    const FaultRule& rule = rules_[i];
    if (!rule_fires(rule, i, v)) continue;
    switch (rule.kind) {
      case FaultKind::kCasFail:
        d.fail_cas = true;
        counters_.cas_failures.fetch_add(1, std::memory_order_relaxed);
        record(FaultKind::kCasFail, v);
        break;
      case FaultKind::kDelay:
        d.delay_ns += rule.delay_ns;
        counters_.delays.fetch_add(1, std::memory_order_relaxed);
        record(FaultKind::kDelay, v);
        break;
      case FaultKind::kStall:
        d.stall_ns += rule.delay_ns;
        counters_.stalls.fetch_add(1, std::memory_order_relaxed);
        record(FaultKind::kStall, v);
        break;
      case FaultKind::kMnOffline:
        d.reject = true;
        break;
      case FaultKind::kClientCrash:
        d.crash = true;
        counters_.client_crashes.fetch_add(1, std::memory_order_relaxed);
        record(FaultKind::kClientCrash, v);
        break;
    }
  }

  if (d.reject) {
    counters_.offline_rejects.fetch_add(1, std::memory_order_relaxed);
    record(FaultKind::kMnOffline, v);
  }
  return d;
}

void FaultInjector::set_recording(bool on) {
  std::lock_guard<std::mutex> lock(events_mu_);
  recording_.store(on, std::memory_order_relaxed);
  if (on) events_.clear();
}

std::vector<FaultEvent> FaultInjector::events_for_client(
    uint32_t client_id) const {
  std::lock_guard<std::mutex> lock(events_mu_);
  auto it = events_.find(client_id);
  return it == events_.end() ? std::vector<FaultEvent>() : it->second;
}

}  // namespace sphinx::rdma
