// Deterministic fault injection for the simulated RDMA fabric.
//
// A FaultInjector is installed on a Fabric (see fabric.h); every *metered*
// verb an Endpoint or DoorbellBatch issues consults it first. Unmetered
// endpoints (bootstrap / bulk loading) bypass injection entirely, so setup
// code can never be faulted. Five fault classes are supported:
//
//   * kCasFail   -- a CAS verb "loses its race": nothing is swapped and the
//                   caller sees failure with the word's true current value,
//                   exactly as if another client's CAS landed first. Only
//                   CAS verbs tagged with a FaultSite by their call site are
//                   eligible; untagged CAS (e.g. lock *releases*, which can
//                   never lose a race under the locking protocol) are never
//                   failed, so injection cannot wedge a node lock.
//   * kDelay     -- the verb is charged extra virtual-clock nanoseconds
//                   (models congestion / retransmission).
//   * kStall     -- the endpoint stalls *between* the verbs of a logical
//                   operation: extra virtual time plus a real thread yield,
//                   widening race windows (e.g. between a lock-acquire CAS
//                   and the payload write that follows it).
//   * kMnOffline -- the target MN is unreachable: the verb is rejected with
//                   a retryable error. The endpoint charges a timeout and
//                   reissues until the MN comes back (or a retry cap trips,
//                   counted as offline_giveups).
//   * kClientCrash -- the endpoint dies *before* the matched verb executes:
//                   Endpoint::fault_gate throws ClientCrashed, the verb (and,
//                   in a doorbell batch, every later verb -- earlier ones
//                   have already applied, modelling a crash mid payload
//                   write) never reaches memory, and the client never acts
//                   again. Locks it held stay set until a waiter's lease
//                   watch expires and reclaims them. Target a protocol step
//                   by filtering on its FaultSite (crash rules may name any
//                   site, including the write-path tags below).
//
// Determinism: probabilistic rules decide from a pure hash of
// (seed, client_id, per-endpoint verb sequence, rule index), so a single
// client replays the exact same fault schedule on every run with the same
// seed. Budgeted rules (max_fires) and MN-offline countdowns are shared
// atomics: deterministic under one thread, first-come-first-served across
// threads. Counters are exported through rdma/stats.h (FaultStats).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "rdma/stats.h"

namespace sphinx::rdma {

enum class VerbKind : uint8_t { kRead = 0, kWrite = 1, kCas = 2, kFaa = 3 };

enum class FaultKind : uint8_t {
  kCasFail,
  kDelay,
  kStall,
  kMnOffline,
  kClientCrash,
};

// Call-site tag for verbs. For kCasFail only the retry-safe CAS sites (see
// cas_fail_injectable) may have failures injected; protocol steps whose CAS
// cannot fail in a correct execution (lock releases, best-effort cleanup)
// are never CAS-failed, so injection cannot wedge a node lock. kClientCrash
// rules, by contrast, may match *any* site -- including the write-path tags
// and kLockRelease -- because a crash is exactly the event the reclamation
// protocol must survive.
enum class FaultSite : uint8_t {
  kNone = 0,      // untagged
  kAny,           // rule filter only: matches every tagged site
  kLockAcquire,   // node/leaf lock acquisition (Idle -> Locked, and the
                  // delete linearization CAS Idle -> Invalid)
  kSlotInstall,   // slot CAS under a held lock (retry-safe)
  kHashInsert,    // RACE table: claim a free slot
  kHashUpdate,    // RACE table: replace an entry (INHT type switch)
  kHashErase,     // RACE table: clear an entry
  kTableLock,     // RACE table: directory / segment lock acquisition
  // Write-path tags (crash targeting only; never CAS-failed):
  kPayloadWrite,  // leaf / new-node body write under a held lock
  kLockRelease,   // lock release CAS or combined release+publish write
  kSplitSibling,  // RACE split: sibling segment body write
  kSplitDir,      // RACE split: directory entry redirection writes
  kSplitPublish,  // RACE split: cleaned original segment write (unlocks)
};

// The sites eligible for kCasFail injection: tagged *retry-safe* CAS steps.
constexpr bool cas_fail_injectable(FaultSite s) {
  return s == FaultSite::kLockAcquire || s == FaultSite::kSlotInstall ||
         s == FaultSite::kHashInsert || s == FaultSite::kHashUpdate ||
         s == FaultSite::kHashErase || s == FaultSite::kTableLock;
}

constexpr uint32_t verb_bit(VerbKind k) {
  return 1u << static_cast<uint32_t>(k);
}
constexpr uint32_t kAllVerbs = 0xF;

struct FaultRule {
  FaultKind kind = FaultKind::kDelay;
  // Chance a matching verb fires this rule; decided by a pure hash of
  // (seed, client_id, verb seq, rule index), so 1.0 means "always".
  double probability = 1.0;
  int32_t mn = -1;         // target MN filter; -1 = any
  int32_t client_id = -1;  // endpoint client-id filter; -1 = any
  uint32_t verbs = kAllVerbs;            // VerbKind bitmask (verb_bit)
  FaultSite site = FaultSite::kAny;      // kCasFail only: which tagged sites
  uint64_t delay_ns = 0;                 // kDelay / kStall magnitude
  uint64_t max_fires = UINT64_MAX;       // budget; UINT64_MAX = unlimited
};

// Everything the injector may condition a decision on.
struct VerbDesc {
  VerbKind kind = VerbKind::kRead;
  uint32_t mn = 0;
  uint32_t client_id = 0;
  uint64_t seq = 0;  // per-endpoint verb sequence number
  FaultSite site = FaultSite::kNone;
};

struct FaultDecision {
  bool fail_cas = false;  // CAS must report failure without swapping
  bool reject = false;    // MN offline: retryable error, verb not executed
  bool crash = false;     // client dies before this verb executes
  uint64_t delay_ns = 0;  // extra virtual latency to charge
  uint64_t stall_ns = 0;  // stall (virtual ns; endpoint also yields)
};

// Thrown by Endpoint::fault_gate when a kClientCrash rule fires: the verb
// never executes and the endpoint must not be used again. Callers at the
// worker level catch this, abandon the endpoint (its held locks stay set
// for lease reclamation), and optionally reincarnate as a new client.
struct ClientCrashed {
  uint32_t client_id = 0;
  uint64_t seq = 0;       // per-endpoint verb sequence of the fatal verb
  FaultSite site = FaultSite::kNone;
};

// One injected fault, for reproducibility checks (set_recording).
struct FaultEvent {
  FaultKind kind = FaultKind::kDelay;
  VerbKind verb = VerbKind::kRead;
  uint32_t mn = 0;
  uint64_t seq = 0;

  bool operator==(const FaultEvent& o) const {
    return kind == o.kind && verb == o.verb && mn == o.mn && seq == o.seq;
  }
};

class FaultInjector {
 public:
  static constexpr size_t kMaxRules = 64;
  static constexpr uint32_t kMaxMns = 64;
  // Sticky "offline until restored" marker for per-MN state.
  static constexpr uint64_t kOfflineSticky = UINT64_MAX;

  explicit FaultInjector(uint64_t seed);

  // Rules are append-only and immutable once added (lock-free reads on the
  // verb path); returns the rule id. Throws std::length_error beyond
  // kMaxRules.
  size_t add_rule(const FaultRule& rule);
  void disarm_rule(size_t id);
  // Disarms every rule (ids are not reused afterwards).
  void clear_rules();

  // Takes `mn` offline for the next `reject_count` verbs targeting it
  // (across all endpoints), then it recovers by itself. Deterministic and
  // self-terminating -- preferred for tests.
  void arm_mn_offline(uint32_t mn, uint64_t reject_count);
  // Sticky offline toggle; the MN stays down until restored. Endpoints
  // retry up to a cap (then give up and execute, counted) so a forgotten
  // restore degrades into noise instead of a hang.
  void set_mn_offline(uint32_t mn, bool offline);
  bool mn_offline(uint32_t mn) const;

  // The per-verb consultation (called from Endpoint::fault_gate).
  FaultDecision on_verb(const VerbDesc& v);
  void note_offline_giveup() {
    counters_.offline_giveups.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t seed() const { return seed_; }
  FaultStats stats() const { return counters_.snapshot(); }

  // Per-client fault event log (for bit-for-bit reproducibility tests).
  // Recording takes a mutex per injected fault; leave it off under load.
  void set_recording(bool on);
  std::vector<FaultEvent> events_for_client(uint32_t client_id) const;

 private:
  bool rule_fires(const FaultRule& rule, size_t rule_idx, const VerbDesc& v);
  bool consume_fire(size_t rule_idx);
  void record(FaultKind kind, const VerbDesc& v);

  const uint64_t seed_;
  std::array<FaultRule, kMaxRules> rules_{};
  std::array<std::atomic<uint64_t>, kMaxRules> fires_left_{};
  std::atomic<uint32_t> num_rules_{0};
  // Per-MN offline state: 0 = online, kOfflineSticky = until restored,
  // anything else = countdown of rejects left.
  std::array<std::atomic<uint64_t>, kMaxMns> offline_{};
  FaultCounters counters_;

  std::atomic<bool> recording_{false};
  mutable std::mutex events_mu_;
  std::map<uint32_t, std::vector<FaultEvent>> events_;
};

}  // namespace sphinx::rdma
