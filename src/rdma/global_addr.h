// 64-bit global addresses for disaggregated memory: a memory-node id packed
// with a 48-bit offset, mirroring the 48-bit address fields the paper's
// 8-byte hash entries and slots carry (Fig. 3).
#pragma once

#include <cassert>
#include <cstdint>

namespace sphinx::rdma {

// Layout: [63:56] reserved | [55:48] mn id | [47:0] offset within MN region.
// Offset 0 of every MN is never handed out by the allocator, so a raw value
// of 0 doubles as the null address.
class GlobalAddr {
 public:
  static constexpr uint64_t kOffsetBits = 48;
  static constexpr uint64_t kOffsetMask = (1ULL << kOffsetBits) - 1;

  constexpr GlobalAddr() : raw_(0) {}
  constexpr explicit GlobalAddr(uint64_t raw) : raw_(raw) {}
  GlobalAddr(uint32_t mn, uint64_t offset)
      : raw_((static_cast<uint64_t>(mn) << kOffsetBits) |
             (offset & kOffsetMask)) {
    assert(mn < 256);
    assert(offset <= kOffsetMask);
  }

  constexpr uint64_t raw() const { return raw_; }
  constexpr uint32_t mn() const {
    return static_cast<uint32_t>((raw_ >> kOffsetBits) & 0xff);
  }
  constexpr uint64_t offset() const { return raw_ & kOffsetMask; }
  constexpr bool is_null() const { return raw_ == 0; }

  GlobalAddr plus(uint64_t delta) const {
    return GlobalAddr(mn(), offset() + delta);
  }

  constexpr bool operator==(const GlobalAddr& o) const {
    return raw_ == o.raw_;
  }
  constexpr bool operator!=(const GlobalAddr& o) const {
    return raw_ != o.raw_;
  }

  // Compact 48-bit encoding (mn:4 | offset:44) used inside 8-byte slot and
  // hash-entry words, matching the paper's 48-bit address fields. Limits:
  // 16 MNs, 16 TiB per MN -- far beyond the simulated testbed.
  uint64_t to48() const {
    assert(mn() < 16 && offset() < (1ULL << 44));
    return (static_cast<uint64_t>(mn()) << 44) | offset();
  }
  static GlobalAddr from48(uint64_t compact) {
    return GlobalAddr(static_cast<uint32_t>((compact >> 44) & 0xf),
                      compact & ((1ULL << 44) - 1));
  }

 private:
  uint64_t raw_;
};

}  // namespace sphinx::rdma
