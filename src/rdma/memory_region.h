// Memory-node backing store. All remote memory is an array of 8-byte words
// accessed through std::atomic, so concurrent clients observe exactly the
// tearing granularity real RDMA NICs guarantee: reads and writes are atomic
// per 8-byte aligned word, CAS/FAA are fully atomic, and multi-word
// transfers may interleave (which is why leaf nodes carry checksums and
// nodes carry status words, per Sec. III-C of the paper).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>

namespace sphinx::rdma {

class MemoryRegion {
 public:
  explicit MemoryRegion(uint64_t size_bytes)
      : size_(round_up_words(size_bytes)),
        words_(std::make_unique<std::atomic<uint64_t>[]>(size_ / 8)) {
    // Zero-fill; std::atomic default-init is indeterminate pre-C++20 and
    // we rely on "all zeroes == empty" throughout.
    for (uint64_t i = 0; i < size_ / 8; ++i) {
      words_[i].store(0, std::memory_order_relaxed);
    }
  }

  uint64_t size() const { return size_; }

  // --- one-sided READ/WRITE payload transfer -------------------------------
  // Offsets must be 8-byte aligned (all Sphinx remote structures are);
  // lengths may be arbitrary, with the trailing partial word handled via a
  // read-modify-write that is safe under the index's locking protocol.

  void read_bytes(uint64_t offset, void* dst, size_t len) const {
    assert(offset % 8 == 0);
    assert(offset + len <= size_);
    auto* out = static_cast<uint8_t*>(dst);
    uint64_t idx = offset / 8;
    while (len >= 8) {
      const uint64_t w = words_[idx].load(std::memory_order_acquire);
      std::memcpy(out, &w, 8);
      out += 8;
      len -= 8;
      ++idx;
    }
    if (len > 0) {
      const uint64_t w = words_[idx].load(std::memory_order_acquire);
      std::memcpy(out, &w, len);
    }
  }

  void write_bytes(uint64_t offset, const void* src, size_t len) {
    assert(offset % 8 == 0);
    assert(offset + len <= size_);
    const auto* in = static_cast<const uint8_t*>(src);
    uint64_t idx = offset / 8;
    while (len >= 8) {
      uint64_t w;
      std::memcpy(&w, in, 8);
      words_[idx].store(w, std::memory_order_release);
      in += 8;
      len -= 8;
      ++idx;
    }
    if (len > 0) {
      uint64_t w = words_[idx].load(std::memory_order_relaxed);
      std::memcpy(&w, in, len);
      words_[idx].store(w, std::memory_order_release);
    }
  }

  // --- 8-byte atomics (RDMA READ/WRITE of a word, CAS, FAA) ----------------

  uint64_t load64(uint64_t offset) const {
    assert(offset % 8 == 0 && offset + 8 <= size_);
    return words_[offset / 8].load(std::memory_order_acquire);
  }

  void store64(uint64_t offset, uint64_t value) {
    assert(offset % 8 == 0 && offset + 8 <= size_);
    words_[offset / 8].store(value, std::memory_order_release);
  }

  // Returns true on success; *observed receives the pre-existing value
  // either way (matching RDMA CAS, which always returns the old value).
  bool cas64(uint64_t offset, uint64_t expected, uint64_t desired,
             uint64_t* observed) {
    assert(offset % 8 == 0 && offset + 8 <= size_);
    uint64_t exp = expected;
    const bool ok = words_[offset / 8].compare_exchange_strong(
        exp, desired, std::memory_order_acq_rel, std::memory_order_acquire);
    if (observed != nullptr) *observed = exp;
    return ok;
  }

  uint64_t faa64(uint64_t offset, uint64_t delta) {
    assert(offset % 8 == 0 && offset + 8 <= size_);
    return words_[offset / 8].fetch_add(delta, std::memory_order_acq_rel);
  }

 private:
  static uint64_t round_up_words(uint64_t n) { return (n + 7) & ~7ULL; }

  uint64_t size_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
};

}  // namespace sphinx::rdma
