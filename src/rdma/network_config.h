// Cost-model parameters for the simulated RDMA fabric.
//
// The paper's testbed: 3 machines, each hosting one CN and one MN, connected
// by 2x100 Gbps ConnectX-6 NICs with ~2 us one-sided latency. Our model
// charges every verb (a) a base round-trip latency, (b) per-byte time from
// link bandwidth, and (c) per-message NIC processing time that is *shared*
// across all clients targeting the same NIC -- this last term is what makes
// message-hungry indexes (tree traversal, multi-entry hash reads) saturate
// first, reproducing the paper's Fig. 5 shape.
#pragma once

#include <cstdint>

namespace sphinx::rdma {

struct NetworkConfig {
  // One-sided verb round-trip latency (client -> MN -> client), ns.
  uint64_t base_rtt_ns = 2000;

  // Usable bandwidth per MN in bytes/ns. The paper's dual-port 2x100 Gbps
  // ConnectX-6 sits on one PCIe 3.0 x16 slot, which caps host throughput
  // at ~126 Gbps (~15 GB/s) regardless of the two ports' line rate.
  double bytes_per_ns = 15.0;

  // Per-message processing time at an MN-side NIC, ns (~66 M msg/s,
  // conservative for per-QP ConnectX-6 small-verb rates).
  uint64_t mn_msg_ns = 15;

  // Per-message processing time at a CN-side NIC, ns (request issue +
  // completion handling).
  uint64_t cn_msg_ns = 8;

  // CPU time to post one verb to the NIC (doorbell write, WQE build), ns.
  uint64_t post_verb_ns = 80;

  // Number of compute-node NICs (paper: 3 CNs) and memory-node NICs
  // (paper: 3 MNs). Used to size the shared NIC clocks.
  uint32_t num_cns = 3;
  uint32_t num_mns = 3;

  // Virtual nodes per MN on the consistent-hash ring that places index
  // nodes across MNs (memnode/consistent_hash.h). More vnodes smooth the
  // per-MN share at ring-construction cost; bench_scalability sweeps this
  // to report placement-balance sensitivity.
  uint32_t vnodes_per_mn = 128;

  // Time for a client to decide a verb is lost (transport retry exhausted /
  // QP error surfaced) when its target MN is unreachable; charged per
  // rejected verb under fault injection before the endpoint reissues it.
  uint64_t verb_timeout_ns = 8000;

  // When false, every verb in a doorbell batch is issued as its own
  // round trip (ablation A2). The default mirrors the paper: one batch ==
  // one round trip.
  bool doorbell_batching = true;

  // When true, verbs are charged to virtual clocks. Setup/bootstrap code
  // runs with metering off so load phases don't distort measurements.
  bool metered = true;
};

}  // namespace sphinx::rdma
