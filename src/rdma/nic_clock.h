// A NIC modeled as a serially-reserved resource on a virtual timeline.
// Each message reserves a service window [start, start+service); start is
// the later of the client's current virtual time and the NIC's
// earliest-free time. Under light load start == client time (no queueing);
// as aggregate message rate approaches 1/msg_ns the reservation pushes
// start forward, which is exactly NIC saturation.
#pragma once

#include <atomic>
#include <cstdint>

namespace sphinx::rdma {

class NicClock {
 public:
  NicClock() : busy_until_(0) {}

  // Reserves `service_ns` of NIC time no earlier than `earliest_ns`.
  // Returns the start of the reserved window.
  uint64_t reserve(uint64_t earliest_ns, uint64_t service_ns) {
    uint64_t cur = busy_until_.load(std::memory_order_relaxed);
    uint64_t start;
    do {
      start = cur > earliest_ns ? cur : earliest_ns;
    } while (!busy_until_.compare_exchange_weak(cur, start + service_ns,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed));
    return start;
  }

  uint64_t busy_until() const {
    return busy_until_.load(std::memory_order_relaxed);
  }

  void reset() { busy_until_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> busy_until_;
};

}  // namespace sphinx::rdma
