// Protocol-phase taxonomy for RTT attribution. Every metered round trip is
// charged to the endpoint's *current phase* (set by the innermost live
// PhaseScope, see endpoint.h), so per-phase counters sum exactly to
// EndpointStats::round_trips by construction: the two counters increment at
// the same two sites (Endpoint::charge_single and the batched
// DoorbellBatch::execute path) and nowhere else.
//
// The taxonomy follows the paper's search-path decomposition (Sec. IV):
// filter probe -> PEC validation -> INHT entry read -> inner-node read ->
// leaf read, plus the write-side phases (leaf/inner writes, locks), the
// scan frontier, allocation, and crash recovery. Filter probes are CN-local
// (advance_local only), so kFilterProbe exists for trace spans but should
// never accumulate round trips.
//
// Charging rule under cross-op fusion: phases charge per ROUND TRIP, never
// per verb and never per op. When one doorbell round trip serves several
// operations (the pipelined client's shared speculative round, or a cold
// hit's leaf+inner hedge), the whole round trip -- its one RTT and all its
// bytes -- is charged once, to the phase of the innermost scope at execute
// time (kLacFusedRead for the pipelined batch). Nothing is split or
// prorated across the ops sharing the wire: splitting would require a
// per-op cost model the fabric doesn't have, and any rule that charges
// fractions re-opens rounding gaps between per-phase sums and totals. The
// invariant "sum over phases == round_trips, exactly" therefore survives
// arbitrary fusion, and tests/test_observability.cpp asserts it on
// pipelined runs.
#pragma once

#include <cstdint>

namespace sphinx::rdma {

enum class Phase : uint8_t {
  kUnattributed = 0,  // no scope active; should stay at zero RTTs
  kFilterProbe,       // SFC probe (CN-local; 0 RTTs by design)
  kPecValidate,       // PEC-hinted speculative node read + validation
  kInhtRead,          // INHT hash-entry / group reads
  kInhtWrite,         // INHT inserts/updates/erases/splits
  kInnerRead,         // ART/B+tree inner-node fetches
  kInnerWrite,        // inner-node installs, slot CASes, type switches
  kLeafRead,          // leaf fetches
  kLacFusedRead,      // LAC-hinted speculative leaf read (+ fused fallback)
  kLeafWrite,         // leaf payload writes / invalidations
  kLock,              // lock acquire/release words
  kScanFrontier,      // range-scan frontier batches
  kRecovery,          // orphan-lock reclaim, reachability probes
  kAlloc,             // remote allocator bump-pointer leases
  kCount,
};

inline constexpr uint32_t kNumPhases = static_cast<uint32_t>(Phase::kCount);

inline const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kUnattributed: return "unattributed";
    case Phase::kFilterProbe: return "filter_probe";
    case Phase::kPecValidate: return "pec_validate";
    case Phase::kInhtRead: return "inht_read";
    case Phase::kInhtWrite: return "inht_write";
    case Phase::kInnerRead: return "inner_read";
    case Phase::kInnerWrite: return "inner_write";
    case Phase::kLeafRead: return "leaf_read";
    case Phase::kLacFusedRead: return "lac_fused_read";
    case Phase::kLeafWrite: return "leaf_write";
    case Phase::kLock: return "lock";
    case Phase::kScanFrontier: return "scan_frontier";
    case Phase::kRecovery: return "recovery";
    case Phase::kAlloc: return "alloc";
    case Phase::kCount: break;
  }
  return "?";
}

}  // namespace sphinx::rdma
