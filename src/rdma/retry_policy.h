// Shared bounded-retry policy and lock-lease expiry watch.
//
// RetryPolicy replaces the bare retry spins that used to live in
// remote_tree.cpp and race_table.cpp: every retried operation charges an
// exponentially growing (small-capped) *virtual* backoff with deterministic
// jitter (a pure hash of the fault-injector seed, the client id, the op
// token and the attempt number, so a fixed seed replays the same waits),
// yields or sleeps an escalating slice of *real* time so contended peers
// actually get the CPU and lease floors are reachable, and gives up cleanly
// after a per-op attempt budget instead of spinning forever.
//
// LockWatch is how a waiter decides a lock lease has expired. There is no
// cross-client clock comparison -- per-endpoint virtual clocks are mutually
// unsynchronized, and a skewed comparison could forge an expiry on a live
// lock. Instead the waiter watches the lock *word*: only when the same
// bit-identical locked word is observed at the same address for a full
// lease of the waiter's own virtual clock AND a real-time floor (robust to
// sanitizer/scheduler slowdowns) is the lease deemed expired. The stamp
// inside the lock word guarantees two acquisitions never produce the same
// word, and the reclaim CAS expects the watched word -- so a stale
// observation can never reclaim a lock that has since moved.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/hash.h"
#include "rdma/endpoint.h"
#include "rdma/stats.h"

namespace sphinx::rdma {

struct RetryPolicyConfig {
  uint32_t max_attempts = 256;      // per-op budget; exhaustion = kTimedOut
  uint64_t base_backoff_ns = 4000;  // ~2 RTTs; doubles per attempt
  // Virtual cap per wait, a few RTTs. Kept small on purpose: the phase
  // makespan is the *max* worker clock, so a large virtual wait charged to
  // one hot-key convoy straggler would swing whole-run throughput by the
  // depth of that convoy (a real-scheduling accident). Waiting out an
  // orphaned lease is instead paced by the escalating *real* sleeps below.
  uint64_t max_backoff_ns = 8192;
};

// Lease length in the *waiter's* virtual time: well above a live holder's
// critical section (a handful of verbs for updates, tens of microseconds
// for a split, even with injected delays -- and NIC clock sharing keeps
// waiter and holder timelines comparable), small enough that a waiter
// accumulates it within its attempt budget.
constexpr uint64_t kLeaseVirtualNs = 500'000;  // 0.5 ms
// Real-time floor before declaring expiry: a live-but-descheduled holder
// (TSan, CI preemption) gets this long to move the word before a waiter
// may steal the lock.
constexpr std::chrono::milliseconds kLeaseRealFloor{10};

// 23-bit lease stamp ticking in ~1 us of the stamping endpoint's virtual
// clock. Every verb charges >= 2 us, so two lock words packed by the same
// owner around distinct verbs always differ -- the stamp is a uniquifier
// for the watch, never compared across clients.
constexpr uint32_t kLeaseStamp23Mask = (1u << 23) - 1;
inline uint32_t lease_stamp23(uint64_t clock_ns) {
  return static_cast<uint32_t>(clock_ns >> 10) & kLeaseStamp23Mask;
}

// Per-operation retry pacing. Construct one per logical op; call backoff()
// at the top of each retry iteration.
class RetryPolicy {
 public:
  RetryPolicy(Endpoint& ep, const RetryPolicyConfig& cfg,
              BackoffHistogram* hist)
      : ep_(ep), cfg_(cfg), hist_(hist), op_token_(ep.fault_verb_seq()) {}

  // Attempt 0 is free. Later attempts charge the jittered exponential
  // backoff to the endpoint's virtual clock and yield/sleep a mirrored
  // slice of real time. Returns false once the budget is exhausted (the op
  // must surface kTimedOut instead of retrying).
  bool backoff(uint32_t attempt) {
    if (attempt >= cfg_.max_attempts) return false;
    if (attempt == 0) return true;
    const uint32_t shift = std::min(attempt - 1, 31u);
    uint64_t cap = cfg_.base_backoff_ns << std::min(shift, 16u);
    cap = std::min(cap, cfg_.max_backoff_ns);
    // Deterministic jitter in [cap/2, cap): a pure function of (injector
    // seed, client, op token, attempt), so a fixed single-threaded seed
    // replays bit-identical waits.
    const FaultInjector* inj = ep_.fabric().fault_injector();
    uint64_t x = (inj != nullptr ? inj->seed() : 0);
    x ^= static_cast<uint64_t>(ep_.fault_client_id()) * 0xff51afd7ed558ccdULL;
    x ^= op_token_ * 0x9e3779b97f4a7c15ULL;
    x ^= (static_cast<uint64_t>(attempt) + 1) * 0xc4ceb9fe1a85ec53ULL;
    const uint64_t half = std::max<uint64_t>(cap / 2, 1);
    const uint64_t wait_ns = half + splitmix64(x) % half;
    ep_.advance_local(wait_ns);
    if (hist_ != nullptr) hist_->record(wait_ns);
    // Real-time pacing, deliberately decoupled from the virtual wait: real
    // time is harness mechanics, not part of the simulated timeline. Early
    // attempts yield (live contention -- let the holder run); persistent
    // waiting escalates to real sleeps, which is the only way a waiter can
    // reach the kLeaseRealFloor that guards lease expiry.
    if (attempt < 8) {
      std::this_thread::yield();
    } else {
      const uint64_t us =
          std::min<uint64_t>(1ull << std::min(attempt - 8, 31u), 400);
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
    return true;
  }

 private:
  Endpoint& ep_;
  const RetryPolicyConfig& cfg_;
  BackoffHistogram* hist_;
  const uint64_t op_token_;
};

// Single-slot lease-expiry watch (one per lock-taking client). observe()
// notes "this locked word sits at this address"; it returns true once the
// identical word has been watched for a full lease (virtual + real floor).
// Any change of address or word re-arms the watch.
class LockWatch {
 public:
  bool observe(const Endpoint& ep, GlobalAddr addr, uint64_t word) {
    if (!armed_ || addr.to48() != addr48_ || word != word_) {
      armed_ = true;
      addr48_ = addr.to48();
      word_ = word;
      since_virtual_ns_ = ep.clock_ns();
      since_real_ = std::chrono::steady_clock::now();
      return false;
    }
    if (ep.clock_ns() - since_virtual_ns_ < kLeaseVirtualNs) return false;
    return std::chrono::steady_clock::now() - since_real_ >= kLeaseRealFloor;
  }

  void reset() { armed_ = false; }

  uint64_t watched_word() const { return word_; }

 private:
  bool armed_ = false;
  uint64_t addr48_ = 0;
  uint64_t word_ = 0;
  uint64_t since_virtual_ns_ = 0;
  std::chrono::steady_clock::time_point since_real_;
};

}  // namespace sphinx::rdma
