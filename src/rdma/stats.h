// Per-endpoint traffic statistics. Everything the paper's analysis reasons
// about -- round trips, messages, bytes on the wire -- is counted here so
// benches can print RTT histograms (E6) and bandwidth figures directly.
// Per-MN breakdowns feed the NIC capacity model (see runner.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace sphinx::rdma {

constexpr uint32_t kMaxMnsTracked = 8;

struct EndpointStats {
  uint64_t reads = 0;        // READ verbs issued
  uint64_t writes = 0;       // WRITE verbs issued
  uint64_t cas = 0;          // CAS verbs issued
  uint64_t faa = 0;          // FAA verbs issued
  uint64_t round_trips = 0;  // network round trips (a doorbell batch == 1)
  uint64_t bytes_read = 0;   // payload bytes fetched from MNs
  uint64_t bytes_written = 0;
  uint64_t messages = 0;     // individual verbs on the wire
  std::array<uint64_t, kMaxMnsTracked> msgs_per_mn{};
  std::array<uint64_t, kMaxMnsTracked> bytes_per_mn{};

  uint64_t verbs() const { return reads + writes + cas + faa; }
  uint64_t bytes_total() const { return bytes_read + bytes_written; }

  // True when no counter has moved. Unmetered endpoints (bootstrap and
  // loading paths) must keep this true for their whole lifetime, even
  // under fault injection; test_fault_injection.cpp asserts it.
  bool all_zero() const {
    if (verbs() != 0 || round_trips != 0 || bytes_total() != 0 ||
        messages != 0) {
      return false;
    }
    for (uint32_t i = 0; i < kMaxMnsTracked; ++i) {
      if (msgs_per_mn[i] != 0 || bytes_per_mn[i] != 0) return false;
    }
    return true;
  }

  EndpointStats& operator+=(const EndpointStats& o) {
    reads += o.reads;
    writes += o.writes;
    cas += o.cas;
    faa += o.faa;
    round_trips += o.round_trips;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    messages += o.messages;
    for (uint32_t i = 0; i < kMaxMnsTracked; ++i) {
      msgs_per_mn[i] += o.msgs_per_mn[i];
      bytes_per_mn[i] += o.bytes_per_mn[i];
    }
    return *this;
  }

  EndpointStats operator-(const EndpointStats& o) const {
    EndpointStats r = *this;
    r.reads -= o.reads;
    r.writes -= o.writes;
    r.cas -= o.cas;
    r.faa -= o.faa;
    r.round_trips -= o.round_trips;
    r.bytes_read -= o.bytes_read;
    r.bytes_written -= o.bytes_written;
    r.messages -= o.messages;
    for (uint32_t i = 0; i < kMaxMnsTracked; ++i) {
      r.msgs_per_mn[i] -= o.msgs_per_mn[i];
      r.bytes_per_mn[i] -= o.bytes_per_mn[i];
    }
    return r;
  }
};

// Plain snapshot of the fault-injection counters (see fault_injector.h),
// safe to copy/compare in tests and bench reports.
struct FaultStats {
  uint64_t verbs_inspected = 0;  // verbs that consulted the injector
  uint64_t cas_failures = 0;     // CAS verbs forced to lose their race
  uint64_t delays = 0;           // verbs charged extra virtual latency
  uint64_t stalls = 0;           // verbs preceded by an endpoint stall
  uint64_t offline_rejects = 0;  // verbs rejected by an offline MN
  uint64_t offline_giveups = 0;  // endpoint retry cap hit while MN offline
  uint64_t client_crashes = 0;   // endpoints killed mid-protocol

  uint64_t total_faults() const {
    return cas_failures + delays + stalls + offline_rejects + client_crashes;
  }

  bool operator==(const FaultStats& o) const {
    return verbs_inspected == o.verbs_inspected &&
           cas_failures == o.cas_failures && delays == o.delays &&
           stalls == o.stalls && offline_rejects == o.offline_rejects &&
           offline_giveups == o.offline_giveups &&
           client_crashes == o.client_crashes;
  }
};

// Live fault counters, shared by every endpoint of a fabric (hence atomic;
// endpoints on different threads bump them concurrently).
struct FaultCounters {
  std::atomic<uint64_t> verbs_inspected{0};
  std::atomic<uint64_t> cas_failures{0};
  std::atomic<uint64_t> delays{0};
  std::atomic<uint64_t> stalls{0};
  std::atomic<uint64_t> offline_rejects{0};
  std::atomic<uint64_t> offline_giveups{0};
  std::atomic<uint64_t> client_crashes{0};

  FaultStats snapshot() const {
    FaultStats s;
    s.verbs_inspected = verbs_inspected.load(std::memory_order_relaxed);
    s.cas_failures = cas_failures.load(std::memory_order_relaxed);
    s.delays = delays.load(std::memory_order_relaxed);
    s.stalls = stalls.load(std::memory_order_relaxed);
    s.offline_rejects = offline_rejects.load(std::memory_order_relaxed);
    s.offline_giveups = offline_giveups.load(std::memory_order_relaxed);
    s.client_crashes = client_crashes.load(std::memory_order_relaxed);
    return s;
  }
};

// Crash-recovery counters kept by every lock-taking client (tree and RACE
// table alike); aggregated into bench JSON next to FaultStats.
struct RecoveryStats {
  uint64_t lease_expiries_observed = 0;  // watch saw a lease run out
  uint64_t lock_reclaims = 0;            // reclaim CAS won; node restored
  uint64_t lock_rollforwards = 0;        // reclaimed image rolled forward
  uint64_t retry_timeouts = 0;           // per-op retry budget exhausted

  RecoveryStats& operator+=(const RecoveryStats& o) {
    lease_expiries_observed += o.lease_expiries_observed;
    lock_reclaims += o.lock_reclaims;
    lock_rollforwards += o.lock_rollforwards;
    retry_timeouts += o.retry_timeouts;
    return *this;
  }
};

// Range-scan engine counters kept per tree client (remote_tree.cpp) and
// aggregated into bench JSON. The two "data loss" counters at the bottom
// must stay zero in any fault-free run; CI asserts this on YCSB-E.
struct ScanStats {
  uint64_t scans = 0;             // scan()/scan_range() calls
  uint64_t jump_starts = 0;       // entered below the root (find_scan_start)
  uint64_t root_starts = 0;       // entered at the root (cached or fetched)
  uint64_t widen_resumes = 0;     // count-scan spilled past its entry subtree
  uint64_t restarts = 0;          // frontier rebuilt after a stale path
  uint64_t frontier_batches = 0;  // doorbell batches issued by the frontier
  uint64_t frontier_nodes = 0;    // nodes fetched by those batches
  uint64_t root_refreshes = 0;    // cached root image found stale, reseeded
  uint64_t stale_retries = 0;     // stale child re-resolved via parent slot
  uint64_t subtree_skips = 0;     // inner child dropped, retries exhausted
  uint64_t leaf_drops = 0;        // leaf dropped, retries exhausted
  uint64_t truncated_scans = 0;   // scans that reported incompleteness

  ScanStats& operator+=(const ScanStats& o) {
    scans += o.scans;
    jump_starts += o.jump_starts;
    root_starts += o.root_starts;
    widen_resumes += o.widen_resumes;
    restarts += o.restarts;
    frontier_batches += o.frontier_batches;
    frontier_nodes += o.frontier_nodes;
    root_refreshes += o.root_refreshes;
    stale_retries += o.stale_retries;
    subtree_skips += o.subtree_skips;
    leaf_drops += o.leaf_drops;
    truncated_scans += o.truncated_scans;
    return *this;
  }
};

// Log2 histogram of the virtual backoff waits charged by RetryPolicy:
// bucket i counts waits in [2^i, 2^(i+1)) ns.
struct BackoffHistogram {
  static constexpr uint32_t kBuckets = 24;
  std::array<uint64_t, kBuckets> buckets{};
  uint64_t waits = 0;
  uint64_t wait_ns = 0;

  void record(uint64_t ns) {
    waits++;
    wait_ns += ns;
    uint32_t b = 0;
    while ((2ULL << b) <= ns && b + 1 < kBuckets) ++b;
    buckets[b]++;
  }

  BackoffHistogram& operator+=(const BackoffHistogram& o) {
    for (uint32_t i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
    waits += o.waits;
    wait_ns += o.wait_ns;
    return *this;
  }
};

}  // namespace sphinx::rdma
