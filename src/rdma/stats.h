// Per-endpoint traffic statistics. Everything the paper's analysis reasons
// about -- round trips, messages, bytes on the wire -- is counted here so
// benches can print RTT histograms (E6) and bandwidth figures directly.
// Per-MN breakdowns feed the NIC capacity model (see runner.cpp); per-phase
// breakdowns (phase.h) attribute every round trip to a protocol step.
// Scalar counters are registered in metrics::Field tables so merge/diff/
// JSON come from one list per struct instead of hand-rolled boilerplate.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "rdma/phase.h"

namespace sphinx::rdma {

struct EndpointStats {
  uint64_t reads = 0;        // READ verbs issued
  uint64_t writes = 0;       // WRITE verbs issued
  uint64_t cas = 0;          // CAS verbs issued
  uint64_t faa = 0;          // FAA verbs issued
  uint64_t round_trips = 0;  // network round trips (a doorbell batch == 1)
  uint64_t bytes_read = 0;   // payload bytes fetched from MNs
  uint64_t bytes_written = 0;
  uint64_t messages = 0;     // individual verbs on the wire
  // Round trips / wire bytes by protocol phase (the endpoint's phase at
  // charge time). Incremented at exactly the two sites that bump
  // round_trips / bytes_*, so the per-phase sums equal the totals.
  std::array<uint64_t, kNumPhases> rtts_by_phase{};
  std::array<uint64_t, kNumPhases> bytes_by_phase{};
  // Sized from the fabric by the Endpoint constructor (one slot per MN);
  // note_mn() grows them defensively so no MN's traffic is ever dropped.
  std::vector<uint64_t> msgs_per_mn;
  std::vector<uint64_t> bytes_per_mn;

  uint64_t verbs() const { return reads + writes + cas + faa; }
  uint64_t bytes_total() const { return bytes_read + bytes_written; }

  uint64_t rtts_sum_by_phase() const {
    uint64_t s = 0;
    for (uint64_t v : rtts_by_phase) s += v;
    return s;
  }
  uint64_t bytes_sum_by_phase() const {
    uint64_t s = 0;
    for (uint64_t v : bytes_by_phase) s += v;
    return s;
  }

  void reserve_mns(uint32_t num_mns) {
    if (msgs_per_mn.size() < num_mns) {
      msgs_per_mn.resize(num_mns, 0);
      bytes_per_mn.resize(num_mns, 0);
    }
  }

  void note_mn(uint32_t mn, uint64_t payload) {
    if (mn >= msgs_per_mn.size()) reserve_mns(mn + 1);
    msgs_per_mn[mn]++;
    bytes_per_mn[mn] += payload;
  }

  // True when no counter has moved. Unmetered endpoints (bootstrap and
  // loading paths) must keep this true for their whole lifetime, even
  // under fault injection; test_fault_injection.cpp asserts it.
  bool all_zero() const;

  EndpointStats& operator+=(const EndpointStats& o);
  EndpointStats operator-(const EndpointStats& o) const;
};

inline constexpr metrics::Field<EndpointStats> kEndpointStatsFields[] = {
    {"reads", &EndpointStats::reads},
    {"writes", &EndpointStats::writes},
    {"cas", &EndpointStats::cas},
    {"faa", &EndpointStats::faa},
    {"round_trips", &EndpointStats::round_trips},
    {"bytes_read", &EndpointStats::bytes_read},
    {"bytes_written", &EndpointStats::bytes_written},
    {"messages", &EndpointStats::messages},
};

inline bool EndpointStats::all_zero() const {
  if (!metrics::all_zero(*this, kEndpointStatsFields)) return false;
  for (uint64_t v : rtts_by_phase) {
    if (v != 0) return false;
  }
  for (uint64_t v : bytes_by_phase) {
    if (v != 0) return false;
  }
  for (uint64_t v : msgs_per_mn) {
    if (v != 0) return false;
  }
  for (uint64_t v : bytes_per_mn) {
    if (v != 0) return false;
  }
  return true;
}

inline EndpointStats& EndpointStats::operator+=(const EndpointStats& o) {
  metrics::add(*this, o, kEndpointStatsFields);
  for (uint32_t i = 0; i < kNumPhases; ++i) {
    rtts_by_phase[i] += o.rtts_by_phase[i];
    bytes_by_phase[i] += o.bytes_by_phase[i];
  }
  metrics::add_vec(msgs_per_mn, o.msgs_per_mn);
  metrics::add_vec(bytes_per_mn, o.bytes_per_mn);
  return *this;
}

inline EndpointStats EndpointStats::operator-(const EndpointStats& o) const {
  EndpointStats r = *this;
  metrics::sub(r, o, kEndpointStatsFields);
  for (uint32_t i = 0; i < kNumPhases; ++i) {
    r.rtts_by_phase[i] -= o.rtts_by_phase[i];
    r.bytes_by_phase[i] -= o.bytes_by_phase[i];
  }
  metrics::sub_vec(r.msgs_per_mn, o.msgs_per_mn);
  metrics::sub_vec(r.bytes_per_mn, o.bytes_per_mn);
  return r;
}

// Plain snapshot of the fault-injection counters (see fault_injector.h),
// safe to copy/compare in tests and bench reports.
struct FaultStats {
  uint64_t verbs_inspected = 0;  // verbs that consulted the injector
  uint64_t cas_failures = 0;     // CAS verbs forced to lose their race
  uint64_t delays = 0;           // verbs charged extra virtual latency
  uint64_t stalls = 0;           // verbs preceded by an endpoint stall
  uint64_t offline_rejects = 0;  // verbs rejected by an offline MN
  uint64_t offline_giveups = 0;  // endpoint retry cap hit while MN offline
  uint64_t client_crashes = 0;   // endpoints killed mid-protocol

  uint64_t total_faults() const {
    return cas_failures + delays + stalls + offline_rejects + client_crashes;
  }

  bool operator==(const FaultStats& o) const = default;
};

inline constexpr metrics::Field<FaultStats> kFaultStatsFields[] = {
    {"verbs_inspected", &FaultStats::verbs_inspected},
    {"cas_failures", &FaultStats::cas_failures},
    {"delays", &FaultStats::delays},
    {"stalls", &FaultStats::stalls},
    {"offline_rejects", &FaultStats::offline_rejects},
    {"offline_giveups", &FaultStats::offline_giveups},
    {"client_crashes", &FaultStats::client_crashes},
};

// Live fault counters, shared by every endpoint of a fabric (hence atomic;
// endpoints on different threads bump them concurrently).
struct FaultCounters {
  std::atomic<uint64_t> verbs_inspected{0};
  std::atomic<uint64_t> cas_failures{0};
  std::atomic<uint64_t> delays{0};
  std::atomic<uint64_t> stalls{0};
  std::atomic<uint64_t> offline_rejects{0};
  std::atomic<uint64_t> offline_giveups{0};
  std::atomic<uint64_t> client_crashes{0};

  FaultStats snapshot() const {
    FaultStats s;
    s.verbs_inspected = verbs_inspected.load(std::memory_order_relaxed);
    s.cas_failures = cas_failures.load(std::memory_order_relaxed);
    s.delays = delays.load(std::memory_order_relaxed);
    s.stalls = stalls.load(std::memory_order_relaxed);
    s.offline_rejects = offline_rejects.load(std::memory_order_relaxed);
    s.offline_giveups = offline_giveups.load(std::memory_order_relaxed);
    s.client_crashes = client_crashes.load(std::memory_order_relaxed);
    return s;
  }
};

// Crash-recovery counters kept by every lock-taking client (tree and RACE
// table alike); aggregated into bench JSON next to FaultStats.
struct RecoveryStats {
  uint64_t lease_expiries_observed = 0;  // watch saw a lease run out
  uint64_t lock_reclaims = 0;            // reclaim CAS won; node restored
  uint64_t lock_rollforwards = 0;        // reclaimed image rolled forward
  uint64_t retry_timeouts = 0;           // per-op retry budget exhausted

  RecoveryStats& operator+=(const RecoveryStats& o);
};

inline constexpr metrics::Field<RecoveryStats> kRecoveryStatsFields[] = {
    {"lease_expiries_observed", &RecoveryStats::lease_expiries_observed},
    {"lock_reclaims", &RecoveryStats::lock_reclaims},
    {"lock_rollforwards", &RecoveryStats::lock_rollforwards},
    {"retry_timeouts", &RecoveryStats::retry_timeouts},
};

inline RecoveryStats& RecoveryStats::operator+=(const RecoveryStats& o) {
  metrics::add(*this, o, kRecoveryStatsFields);
  return *this;
}

// Range-scan engine counters kept per tree client (remote_tree.cpp) and
// aggregated into bench JSON. The two "data loss" counters at the bottom
// must stay zero in any fault-free run; CI asserts this on YCSB-E.
struct ScanStats {
  uint64_t scans = 0;             // scan()/scan_range() calls
  uint64_t jump_starts = 0;       // entered below the root (find_scan_start)
  uint64_t root_starts = 0;       // entered at the root (cached or fetched)
  uint64_t widen_resumes = 0;     // count-scan spilled past its entry subtree
  uint64_t restarts = 0;          // frontier rebuilt after a stale path
  uint64_t frontier_batches = 0;  // doorbell batches issued by the frontier
  uint64_t frontier_nodes = 0;    // nodes fetched by those batches
  uint64_t root_refreshes = 0;    // cached root image found stale, reseeded
  uint64_t stale_retries = 0;     // stale child re-resolved via parent slot
  uint64_t subtree_skips = 0;     // inner child dropped, retries exhausted
  uint64_t leaf_drops = 0;        // leaf dropped, retries exhausted
  uint64_t truncated_scans = 0;   // scans that reported incompleteness

  ScanStats& operator+=(const ScanStats& o);
};

inline constexpr metrics::Field<ScanStats> kScanStatsFields[] = {
    {"scans", &ScanStats::scans},
    {"jump_starts", &ScanStats::jump_starts},
    {"root_starts", &ScanStats::root_starts},
    {"widen_resumes", &ScanStats::widen_resumes},
    {"restarts", &ScanStats::restarts},
    {"frontier_batches", &ScanStats::frontier_batches},
    {"frontier_nodes", &ScanStats::frontier_nodes},
    {"root_refreshes", &ScanStats::root_refreshes},
    {"stale_retries", &ScanStats::stale_retries},
    {"subtree_skips", &ScanStats::subtree_skips},
    {"leaf_drops", &ScanStats::leaf_drops},
    {"truncated_scans", &ScanStats::truncated_scans},
};

inline ScanStats& ScanStats::operator+=(const ScanStats& o) {
  metrics::add(*this, o, kScanStatsFields);
  return *this;
}

// Log2 histogram of the virtual backoff waits charged by RetryPolicy:
// bucket i counts waits in [2^i, 2^(i+1)) ns.
struct BackoffHistogram {
  static constexpr uint32_t kBuckets = 24;
  std::array<uint64_t, kBuckets> buckets{};
  uint64_t waits = 0;
  uint64_t wait_ns = 0;

  void record(uint64_t ns) {
    waits++;
    wait_ns += ns;
    uint32_t b = 0;
    while ((2ULL << b) <= ns && b + 1 < kBuckets) ++b;
    buckets[b]++;
  }

  BackoffHistogram& operator+=(const BackoffHistogram& o) {
    for (uint32_t i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
    waits += o.waits;
    wait_ns += o.wait_ns;
    return *this;
  }
};

}  // namespace sphinx::rdma
