#include "rdma/trace.h"

#include <ostream>

#include "common/metrics.h"

namespace sphinx::rdma {

// Chrome trace_event format (the JSON Object Format variant): complete
// events carry ph="X" with ts/dur in *microseconds*; metadata events name
// the processes. Virtual nanoseconds map to fractional microseconds so
// sub-microsecond verbs stay visible.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceProcess>& processes) {
  out << "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n ";
  };
  for (size_t pid = 0; pid < processes.size(); ++pid) {
    sep();
    out << "{\"ph\": \"M\", \"pid\": " << pid
        << ", \"name\": \"process_name\", \"args\": {\"name\": \""
        << metrics::JsonObjectWriter::escape(processes[pid].name) << "\"}}";
    for (const TraceEvent& e : processes[pid].recorder->events()) {
      sep();
      out << "{\"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << e.tid
          << ", \"ts\": " << static_cast<double>(e.ts_ns) / 1000.0
          << ", \"dur\": " << static_cast<double>(e.dur_ns) / 1000.0
          << ", \"name\": \"" << e.name << "\", \"cat\": \"rdma\"}";
    }
  }
  out << "\n]}\n";
}

}  // namespace sphinx::rdma
