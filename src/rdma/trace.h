// Per-op trace spans on the virtual clock. When a TraceRecorder is attached
// to an Endpoint (runner samples 1-in-N ops), every metered round trip
// records a complete span named after its protocol phase, and the runner
// adds an enclosing "op:*" span; write_chrome_trace() serializes recorders
// as Chrome trace_event JSON ("X" complete events, ts/dur in microseconds)
// loadable in chrome://tracing or Perfetto.
//
// The buffer is bounded: past `capacity` events the recorder counts drops
// instead of growing, so tracing a long run cannot exhaust memory. Span
// names must be static strings (phase names, op literals) -- the recorder
// stores the pointer, not a copy.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sphinx::rdma {

struct TraceEvent {
  const char* name;  // static string; not owned
  uint64_t ts_ns;    // virtual-clock start
  uint64_t dur_ns;   // span length on the virtual clock
  uint32_t tid;      // worker id
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 16;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  void record(const char* name, uint64_t ts_ns, uint64_t dur_ns,
              uint32_t tid) {
    if (events_.size() >= capacity_) {
      dropped_++;
      return;
    }
    events_.push_back(TraceEvent{name, ts_ns, dur_ns, tid});
  }

  // Appends another recorder's events (post-join merge of per-worker
  // buffers), still bounded by this recorder's capacity.
  void merge(const TraceRecorder& o) {
    for (const TraceEvent& e : o.events_) {
      record(e.name, e.ts_ns, e.dur_ns, e.tid);
    }
    dropped_ += o.dropped_;
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }

  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

// One Chrome-trace "process" per benchmark run (system/dataset/workload);
// worker ids become thread ids within it.
struct TraceProcess {
  std::string name;
  const TraceRecorder* recorder;
};

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceProcess>& processes);

}  // namespace sphinx::rdma
