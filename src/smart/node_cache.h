// SMART's CN-side node cache: an LRU cache of inner-node images keyed by
// remote address, bounded by a byte budget (the paper evaluates 20 MB and
// 200 MB budgets). Shared by all workers of one compute node; sharded to
// keep lock contention low.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "art/node_image.h"

namespace sphinx::smart {

struct NodeCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
};

class NodeCache {
 public:
  static constexpr uint32_t kShards = 8;

  // `budget_bytes` caps the summed size of cached node images (the
  // bookkeeping overhead is excluded, mirroring how cache sizes are
  // reported in the paper).
  explicit NodeCache(uint64_t budget_bytes)
      : shard_budget_(budget_bytes / kShards) {}

  bool get(uint64_t addr, art::InnerImage* out) {
    Shard& shard = shard_for(addr);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(addr);
    if (it == shard.map.end()) {
      shard.stats.misses++;
      return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    *out = it->second->image;
    shard.stats.hits++;
    return true;
  }

  void put(uint64_t addr, const art::InnerImage& image) {
    Shard& shard = shard_for(addr);
    const uint64_t bytes = image.size_bytes();
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(addr);
    if (it != shard.map.end()) {
      shard.bytes -= it->second->bytes;
      it->second->image = image;
      it->second->bytes = bytes;
      shard.bytes += bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{addr, image, bytes});
      shard.map[addr] = shard.lru.begin();
      shard.bytes += bytes;
    }
    while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      shard.map.erase(victim.addr);
      shard.lru.pop_back();
      shard.stats.evictions++;
    }
  }

  void erase(uint64_t addr) {
    Shard& shard = shard_for(addr);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(addr);
    if (it == shard.map.end()) return;
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
    shard.stats.invalidations++;
  }

  uint64_t bytes_used() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      total += s.bytes;
    }
    return total;
  }

  uint64_t budget_bytes() const { return shard_budget_ * kShards; }

  NodeCacheStats stats() const {
    NodeCacheStats total;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      total.hits += s.stats.hits;
      total.misses += s.stats.misses;
      total.evictions += s.stats.evictions;
      total.invalidations += s.stats.invalidations;
    }
    return total;
  }

  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.lru.clear();
      s.map.clear();
      s.bytes = 0;
    }
  }

 private:
  struct Entry {
    uint64_t addr;
    art::InnerImage image;
    uint64_t bytes;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
    uint64_t bytes = 0;
    NodeCacheStats stats;
  };

  Shard& shard_for(uint64_t addr) {
    return shards_[(addr >> 6) % kShards];
  }

  uint64_t shard_budget_;
  std::array<Shard, kShards> shards_;
};

}  // namespace sphinx::smart
