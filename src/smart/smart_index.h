// Reimplementation of the SMART baseline (Luo et al., OSDI'23) on our
// fabric: an ART on disaggregated memory with
//   * homogeneous inner nodes -- every node is allocated with the Node-256
//     layout, which removes node type switches but costs the paper's
//     2.1-3.0x MN-side memory blowup (Fig. 6);
//   * a CN-side node cache (20 MB or 200 MB in the paper's evaluation)
//     fronting remote reads, with reverse-check-style invalidation: any
//     inconsistency observed below a cached node evicts it and re-executes
//     the traversal against remote memory;
//   * doorbell-batched scans.
#pragma once

#include "art/remote_tree.h"
#include "smart/node_cache.h"

namespace sphinx::smart {

class SmartIndex final : public art::RemoteTree {
 public:
  SmartIndex(mem::Cluster& cluster, rdma::Endpoint& endpoint,
             mem::RemoteAllocator& allocator, const art::TreeRef& ref,
             NodeCache& cache, const char* label = "SMART")
      : RemoteTree(cluster, endpoint, allocator, ref, smart_config()),
        cache_(cache),
        label_(label) {}

  const char* name() const override { return label_; }

  NodeCache& cache() { return cache_; }

  static art::TreeConfig smart_config() {
    art::TreeConfig config;
    config.batched_scan = true;
    config.homogeneous_nodes = true;
    // SMART's NodeCache already fronts the root (fetch_inner interposes);
    // an extra CN-side root image would double-count a cache SMART lacks.
    config.cache_scan_root = false;
    // Replica-routed root reads would bypass the address-keyed NodeCache
    // (each replica address is a distinct cache line) -- the cache already
    // keeps the primary root off the fabric, so replicas could only hurt.
    config.replicate_root = false;
    return config;
  }

 protected:
  bool fetch_inner(rdma::GlobalAddr addr, art::NodeType type,
                   art::InnerImage* out) override {
    if (!bypass_active_ && cache_.get(addr.raw(), out)) {
      used_cache_ = true;
      return true;
    }
    if (!RemoteTree::fetch_inner(addr, type, out)) return false;
    // Only cache healthy images; Locked is transient and Invalid nodes are
    // about to be unreachable.
    if (out->status() == art::NodeStatus::kIdle) {
      cache_.put(addr.raw(), *out);
    }
    return true;
  }

  void note_inner_write(rdma::GlobalAddr addr,
                        const art::InnerImage& image) override {
    if (image.status() == art::NodeStatus::kIdle) {
      cache_.put(addr.raw(), image);
    } else {
      cache_.erase(addr.raw());
    }
  }

  void invalidate_inner(rdma::GlobalAddr addr) override {
    cache_.erase(addr.raw());
  }

  void begin_descend() override {
    used_cache_ = false;
    bypass_active_ = bypass_pending_;
    bypass_pending_ = false;
  }

  bool descent_used_cache() const override { return used_cache_; }

  void set_cache_bypass(bool bypass) override { bypass_pending_ = bypass; }

 private:
  NodeCache& cache_;
  const char* label_;
  bool used_cache_ = false;
  bool bypass_active_ = false;
  bool bypass_pending_ = false;
};

}  // namespace sphinx::smart
