#include "ycsb/dataset.h"

#include <unordered_set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/slice.h"

namespace sphinx::ycsb {

std::vector<std::string> generate_u64_keys(uint64_t count, uint64_t seed) {
  // splitmix64 is a bijection on u64, so seed+index yields `count` distinct
  // uniform-looking integers with no dedup pass.
  std::vector<std::string> keys;
  keys.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    keys.push_back(encode_u64_key(splitmix64(seed * 0x9e3779b97f4a7c15ULL + i)));
  }
  return keys;
}

namespace {

const char* const kFirstNames[] = {
    "james", "mary",   "robert", "patricia", "john",   "jennifer", "michael",
    "linda", "david",  "liz",    "william",  "barb",   "richard",  "susan",
    "joe",   "jessica", "tom",   "sarah",    "chris",  "karen",    "charles",
    "lisa",  "daniel", "nancy",  "matt",     "betty",  "anthony",  "peggy",
    "mark",  "sandra", "donald", "ashley",   "steven", "kim",      "paul",
    "donna", "andrew", "emily",  "joshua",   "helen",  "ken",      "carol",
    "kevin", "amanda", "brian",  "dot",      "george", "melissa",  "ed",
    "deb"};

const char* const kLastNames[] = {
    "smith",  "johnson",  "williams", "brown",    "jones",    "garcia",
    "miller", "davis",    "lopez",    "wilson",   "anderson", "thomas",
    "taylor", "moore",    "jackson",  "martin",   "lee",      "perez",
    "white",  "harris",   "clark",    "lewis",    "robinson", "walker",
    "young",  "allen",    "king",     "wright",   "scott",    "torres",
    "nguyen", "hill",     "flores",   "green",    "adams",    "nelson",
    "baker",  "hall",     "rivera",   "campbell", "li",       "zhang",
    "wang",   "chen",     "liu",      "yang",     "huang",    "zhao",
    "wu",     "zhou"};

const char* const kDomains[] = {
    "gmail.com",  "yahoo.com",   "hotmail.com", "outlook.com", "aol.com",
    "icloud.com", "qq.com",      "163.com",     "126.com",     "mail.ru",
    "gmx.de",     "web.de",      "live.com",    "msn.com",     "att.net",
    "proton.me",  "yandex.ru",   "sina.com",    "sohu.com",    "inbox.com"};

constexpr uint64_t kNumFirst = sizeof(kFirstNames) / sizeof(kFirstNames[0]);
constexpr uint64_t kNumLast = sizeof(kLastNames) / sizeof(kLastNames[0]);
constexpr uint64_t kNumDomains = sizeof(kDomains) / sizeof(kDomains[0]);

std::string make_email(Rng& rng) {
  const char* first = kFirstNames[rng.next_below(kNumFirst)];
  const char* last = kLastNames[rng.next_below(kNumLast)];
  const char* domain = kDomains[rng.next_below(kNumDomains)];
  std::string local;
  switch (rng.next_below(6)) {
    case 0:
      local = std::string(first) + "." + last;
      break;
    case 1:
      local = std::string(first) + std::to_string(rng.next_below(10000));
      break;
    case 2:
      local = std::string(1, first[0]) + last;
      break;
    case 3:
      local = std::string(first) + "_" + last +
              std::to_string(rng.next_below(100));
      break;
    case 4:
      local = std::string(last) + std::to_string(rng.next_below(1000));
      break;
    default:
      local = std::string(first) + last;
      break;
  }
  std::string email = local + "@" + domain;
  // Clip to the paper's 2..32 byte range (truncation keeps the '@' rare
  // overflow cases as plain strings; uniqueness is restored by the caller).
  if (email.size() > 32) email.resize(32);
  return email;
}

}  // namespace

std::vector<std::string> generate_email_keys(uint64_t count, uint64_t seed) {
  Rng rng(seed ^ 0xe4a11ULL);
  std::vector<std::string> keys;
  keys.reserve(count);
  std::unordered_set<std::string> seen;
  seen.reserve(count * 2);
  uint64_t disambiguator = 0;
  while (keys.size() < count) {
    std::string email = make_email(rng);
    if (!seen.insert(email).second) {
      // Collision: splice a disambiguating number before the '@'.
      const size_t at = email.find('@');
      std::string retry = email.substr(0, at) +
                          std::to_string(disambiguator++) + email.substr(at);
      if (retry.size() > 32) {
        const size_t over = retry.size() - 32;
        retry = retry.substr(0, at > over ? at - over : 1) +
                retry.substr(at);  // shrink the local part, keep the domain
        if (retry.size() > 32) retry.resize(32);
      }
      if (!seen.insert(retry).second) continue;
      email = std::move(retry);
    }
    keys.push_back(std::move(email));
  }
  return keys;
}

double mean_key_length(const std::vector<std::string>& keys) {
  if (keys.empty()) return 0.0;
  uint64_t total = 0;
  for (const auto& k : keys) total += k.size();
  return static_cast<double>(total) / static_cast<double>(keys.size());
}

}  // namespace sphinx::ycsb
