// Key datasets matching the paper's evaluation (Sec. V-A):
//   * u64   -- 8-byte fixed-length integers from a uniform distribution,
//              encoded big-endian so byte order == numeric order;
//   * email -- variable-length email addresses, 2..32 bytes, mean ~18.9
//              bytes. The paper uses a public email dump; we synthesize
//              addresses with realistic shared-prefix structure (name/word
//              local parts over a small domain pool) and matching length
//              statistics, which is what drives tree depth and traversal
//              cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sphinx::ycsb {

enum class DatasetKind { kU64, kEmail };

inline const char* dataset_name(DatasetKind kind) {
  return kind == DatasetKind::kU64 ? "u64" : "email";
}

// Generates `count` distinct keys, deterministically from `seed`.
std::vector<std::string> generate_u64_keys(uint64_t count, uint64_t seed = 1);
std::vector<std::string> generate_email_keys(uint64_t count,
                                             uint64_t seed = 1);

inline std::vector<std::string> generate_keys(DatasetKind kind, uint64_t count,
                                              uint64_t seed = 1) {
  return kind == DatasetKind::kU64 ? generate_u64_keys(count, seed)
                                   : generate_email_keys(count, seed);
}

// Mean key length in bytes (for reporting).
double mean_key_length(const std::vector<std::string>& keys);

}  // namespace sphinx::ycsb
