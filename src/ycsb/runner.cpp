#include "ycsb/runner.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/dist.h"
#include "common/rng.h"

namespace sphinx::ycsb {

YcsbRunner::YcsbRunner(mem::Cluster& cluster, IndexFactory factory,
                       std::vector<std::string> keys)
    : cluster_(cluster), factory_(std::move(factory)), keys_(std::move(keys)) {}

void YcsbRunner::load(uint64_t count, uint32_t value_size, uint32_t workers) {
  count = std::min<uint64_t>(count, keys_.size());
  std::vector<std::thread> threads;
  std::atomic<uint64_t> failures{0};
  const uint32_t num_cns = cluster_.config().num_cns;
  for (uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      rdma::Endpoint endpoint(cluster_.fabric(), w % num_cns,
                              /*metered=*/false);
      mem::RemoteAllocator allocator(cluster_, endpoint);
      std::unique_ptr<KvIndex> index =
          factory_(w, w % num_cns, endpoint, allocator);
      std::string value(value_size, 'v');
      const uint64_t lo = count * w / workers;
      const uint64_t hi = count * (w + 1) / workers;
      for (uint64_t i = lo; i < hi; ++i) {
        std::memcpy(value.data(), &i, std::min<size_t>(8, value.size()));
        if (!index->insert(keys_[i], value)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (hook_) hook_(*index, w);
    });
  }
  for (auto& t : threads) t.join();
  visible_.store(count, std::memory_order_relaxed);
  insert_cursor_.store(count, std::memory_order_relaxed);
  if (failures.load() != 0) {
    // Duplicate keys in the pool would show up here; the generators
    // guarantee distinctness, so this indicates a bug.
    throw std::runtime_error("bulk load: " + std::to_string(failures.load()) +
                             " inserts failed");
  }
}

RunResult YcsbRunner::run(const WorkloadSpec& spec, const RunOptions& options) {
  RunResult result;
  result.workload = spec.name;
  cluster_.fabric().reset_clocks();

  const uint64_t n0 = visible_.load(std::memory_order_relaxed);
  const uint32_t num_cns = cluster_.config().num_cns;

  // Request distribution, shared across workers (stateless draws; the
  // latest-distribution frontier is atomic).
  std::shared_ptr<IndexDistribution> dist;
  std::shared_ptr<LatestDistribution> latest;
  switch (spec.dist) {
    case RequestDist::kZipfian:
      dist = std::make_shared<ScrambledZipfianDistribution>(
          std::max<uint64_t>(n0, 1), spec.zipf_theta);
      break;
    case RequestDist::kUniform:
      dist = std::make_shared<UniformDistribution>(std::max<uint64_t>(n0, 1));
      break;
    case RequestDist::kLatest:
      latest = std::make_shared<LatestDistribution>(std::max<uint64_t>(n0, 1));
      dist = latest;
      break;
  }

  const double p_read = spec.read / spec.total();
  const double p_update = p_read + spec.update / spec.total();
  const double p_insert = p_update + spec.insert / spec.total();
  const double p_remove = p_insert + spec.remove / spec.total();
  const double p_rmw = p_remove + spec.rmw / spec.total();

  // Reclamation / degraded-mode counters are cluster-global; snapshot them
  // so the result reports this phase's flow as deltas.
  mem::AllocStats& astats = cluster_.alloc_stats();
  mem::EpochManager& epochs = cluster_.epochs();
  const uint64_t alloc_failures0 = astats.alloc_failures();
  const uint64_t degraded0 = astats.alloc_degraded_ops();
  const uint64_t reclaimed0 = astats.reclaimed_blocks();
  const uint64_t retired_total0 = astats.retired_bytes_total();
  const uint64_t advances0 = epochs.advances();
  const uint64_t expired0 = epochs.expired_slots();

  struct WorkerOut {
    LatencyHistogram latency;
    rdma::EndpointStats net;
    uint64_t misses = 0;
    uint64_t insert_overflow = 0;
    uint64_t insert_failures = 0;
    uint64_t client_crashes = 0;
    uint64_t end_clock_ns = 0;
    uint64_t scan_ops = 0;
    uint64_t scan_keys = 0;
    uint64_t scan_truncated = 0;
    uint64_t scan_round_trips = 0;
    uint64_t remove_ops = 0;
    uint64_t remove_misses = 0;
    uint64_t remove_underflow = 0;
    uint64_t reused_key_inserts = 0;
    uint64_t rmw_ops = 0;
    uint64_t rmw_misses = 0;
  };
  std::vector<WorkerOut> outs(options.workers);
  // Per-worker span buffers (merged into options.trace after the join, so
  // recording is contention-free). Sized 0 when tracing is off.
  std::vector<rdma::TraceRecorder> traces(
      options.trace != nullptr ? options.workers : 0);
  std::vector<std::thread> threads;

  for (uint32_t w = 0; w < options.workers; ++w) {
    threads.emplace_back([&, w] {
      WorkerOut& out = outs[w];
      const uint32_t cn = w % num_cns;
      // Endpoint/allocator/index live behind pointers so an injected client
      // crash can reincarnate the worker: the dead endpoint is discarded
      // (its held locks stay orphaned on the MN until survivors reclaim
      // them) and a successor with a fresh fault client id and the same
      // virtual clock takes over the remaining ops.
      std::unique_ptr<rdma::Endpoint> endpoint;
      std::unique_ptr<mem::RemoteAllocator> allocator;
      std::unique_ptr<KvIndex> index;
      uint32_t generation = 0;
      uint64_t clock_carry = 0;
      auto incarnate = [&] {
        index.reset();
        allocator.reset();
        endpoint = std::make_unique<rdma::Endpoint>(cluster_.fabric(), cn,
                                                    /*metered=*/true);
        // Distinct per worker (not per CN) so probabilistic fault schedules
        // are a pure function of the worker, independent of thread timing.
        // Reincarnations shift by 1000 per generation so the successor's
        // fault schedule is distinct from its dead predecessor's.
        endpoint->set_fault_client_id(w + 1000u * generation);
        endpoint->set_clock_ns(clock_carry);
        allocator = std::make_unique<mem::RemoteAllocator>(cluster_, *endpoint);
        index = factory_(w, cn, *endpoint, *allocator);
      };
      incarnate();
      Rng rng(options.seed * 7919 + w);
      std::string value(spec.value_size, 'v');
      std::string read_buf;
      std::vector<std::pair<std::string, std::string>> scan_buf;
      // Churn-key lifecycle, worker-local so no two workers ever contend on
      // the same key's presence: `owned` holds pool indexes this worker
      // inserted and believes live, `freed` holds indexes its removes freed
      // (inserts prefer reusing those, cycling blocks through the epoch
      // quarantine). Both survive crash reincarnation -- key presence is
      // index state, not client state -- but a key whose op the crash
      // caught mid-flight is dropped from tracking (its fate is unknown).
      std::vector<uint64_t> owned;
      std::vector<uint64_t> freed;

      rdma::TraceRecorder* wrec = traces.empty() ? nullptr : &traces[w];

      if (options.pipeline_depth <= 1) {
      for (uint64_t op = 0; op < options.ops_per_worker; ++op) {
        const bool traced =
            wrec != nullptr && (op % options.trace_sample) == 0;
        endpoint->set_trace(traced ? wrec : nullptr, w);
        const char* op_name = "op";
        const uint64_t t0 = endpoint->clock_ns();
        try {
          const double roll = rng.next_double();
          if (roll < p_read) {
            op_name = "op:read";
            const uint64_t idx = dist->next(rng);
            if (!index->search(keys_[idx], &read_buf)) out.misses++;
          } else if (roll < p_update) {
            op_name = "op:update";
            const uint64_t idx = dist->next(rng);
            std::memcpy(value.data(), &op, std::min<size_t>(8, value.size()));
            if (!index->update(keys_[idx], value)) out.misses++;
          } else if (roll < p_insert) {
            op_name = "op:insert";
            bool reused = false;
            uint64_t idx;
            if (!freed.empty()) {
              // Reinsert a key this worker removed earlier instead of
              // claiming fresh pool space: the allocation lands on the
              // freelists the removes fed, exercising recycle end to end.
              idx = freed.back();
              freed.pop_back();
              reused = true;
              out.reused_key_inserts++;
            } else {
              idx = insert_cursor_.fetch_add(1, std::memory_order_relaxed);
            }
            if (idx >= keys_.size()) {
              // Key pool exhausted: degrade to an update so the op mix keeps
              // its write share (counted so benches can size the pool); a
              // failed fallback update is a miss like any other update's.
              out.insert_overflow++;
              const uint64_t j = dist->next(rng);
              std::memcpy(value.data(), &op, std::min<size_t>(8, value.size()));
              if (!index->update(keys_[j], value)) out.misses++;
            } else {
              std::memcpy(value.data(), &op, std::min<size_t>(8, value.size()));
              if (index->insert(keys_[idx], value)) {
                owned.push_back(idx);
                // Only successful fresh inserts become visible / advance
                // the latest-distribution frontier (a reinsert is already
                // below it). A failed fresh insert leaves keys_[idx] a
                // permanent hole: once later successes move `visible_` past
                // idx, reads drawing it miss -- honestly.
                if (!reused) {
                  visible_.fetch_add(1, std::memory_order_relaxed);
                  if (latest) latest->advance_frontier();
                }
              } else {
                out.insert_failures++;
                // A reused key is still absent; let a later insert retry it.
                if (reused) freed.push_back(idx);
              }
            }
          } else if (roll < p_remove) {
            if (owned.empty()) {
              // Nothing of ours to remove yet; keep the op count honest
              // with a read (counted, so benches can see the warmup share).
              out.remove_underflow++;
              op_name = "op:read";
              const uint64_t idx = dist->next(rng);
              if (!index->search(keys_[idx], &read_buf)) out.misses++;
            } else {
              op_name = "op:remove";
              const size_t pos = rng.next_below(owned.size());
              const uint64_t idx = owned[pos];
              owned[pos] = owned.back();
              owned.pop_back();
              out.remove_ops++;
              if (index->remove(keys_[idx])) {
                freed.push_back(idx);
              } else {
                // We believed the key live; a miss here is loss (or a
                // degraded op under memory pressure) -- the gate trips on
                // it in fault-free runs.
                out.remove_misses++;
              }
            }
          } else if (roll < p_rmw) {
            op_name = "op:rmw";
            const uint64_t idx = dist->next(rng);
            out.rmw_ops++;
            if (index->search(keys_[idx], &read_buf)) {
              std::memcpy(value.data(), &op, std::min<size_t>(8, value.size()));
              // The written value depends on the read one -- the
              // "modify" in read-modify-write.
              if (!read_buf.empty()) value[value.size() - 1] = read_buf[0];
              if (!index->update(keys_[idx], value)) out.rmw_misses++;
            } else {
              out.rmw_misses++;
            }
          } else {
            op_name = "op:scan";
            const uint64_t idx = dist->next(rng);
            const size_t len = 1 + rng.next_below(spec.max_scan_len);
            const uint64_t rtts_before = endpoint->stats().round_trips;
            out.scan_keys += index->scan(keys_[idx], len, &scan_buf);
            out.scan_round_trips +=
                endpoint->stats().round_trips - rtts_before;
            out.scan_ops++;
            if (index->last_scan_truncated()) out.scan_truncated++;
          }
        } catch (const rdma::ClientCrashed&) {
          out.client_crashes++;
          out.net += endpoint->stats();
          clock_carry = endpoint->clock_ns();
          if (hook_) hook_(*index, w);  // salvage the dead client's stats
          ++generation;
          incarnate();
          continue;  // the crashed op is abandoned, not retried
        }
        if (traced) {
          wrec->record(op_name, t0, endpoint->clock_ns() - t0, w);
        }
        out.latency.record(endpoint->clock_ns() - t0);
      }
      } else {
        // Pipelined mode: plan up to `pipeline_depth` point ops -- drawing
        // rolls, key indexes and insert-cursor claims in exactly the serial
        // order -- submit them as one execute_batch call, then resolve
        // outcomes in plan order. A scan draw closes the current batch and
        // runs serially after it (scans have no batch form). Each op's
        // latency sample spans batch submit to that op's own completion
        // stamp, so in-batch queueing is measured per op.
        const uint32_t depth = options.pipeline_depth;
        struct Planned {
          BatchOp::Kind kind = BatchOp::Kind::kSearch;
          uint64_t key_idx = 0;
          bool reused = false;  // insert of a key freed by an earlier remove
        };
        std::vector<Planned> plan(depth);
        std::vector<BatchOp> batch(depth);
        // Per-slot buffers: BatchOps hold Slices, so payloads must stay put
        // until the batch resolves (the serial loop's single reused buffer
        // would alias every op in flight).
        std::vector<std::string> values(depth);
        std::vector<std::string> read_bufs(depth);
        for (auto& v : values) v.assign(spec.value_size, 'v');
        uint64_t op = 0;
        while (op < options.ops_per_worker) {
          const uint64_t budget = options.ops_per_worker - op;
          uint32_t planned = 0;
          bool have_scan = false;
          uint64_t scan_idx = 0;
          size_t scan_len = 0;
          bool have_rmw = false;
          uint64_t rmw_idx = 0;
          while (planned < depth && planned < budget) {
            const double roll = rng.next_double();
            if (roll >= p_rmw) {
              // Scan: no batch form; closes the current batch.
              scan_idx = dist->next(rng);
              scan_len = 1 + rng.next_below(spec.max_scan_len);
              have_scan = true;
              break;
            }
            if (roll >= p_remove) {
              // RMW: the write leg depends on the read leg's result, so it
              // cannot ride a fused batch either -- closes the batch and
              // runs serially after it, like a scan.
              rmw_idx = dist->next(rng);
              have_rmw = true;
              break;
            }
            Planned& p = plan[planned];
            p.reused = false;
            const uint64_t opno = op + planned;
            if (roll < p_read) {
              p.kind = BatchOp::Kind::kSearch;
              p.key_idx = dist->next(rng);
            } else if (roll < p_update) {
              p.kind = BatchOp::Kind::kUpdate;
              p.key_idx = dist->next(rng);
              std::memcpy(values[planned].data(), &opno,
                          std::min<size_t>(8, values[planned].size()));
            } else if (roll < p_insert) {
              uint64_t idx;
              if (!freed.empty()) {
                idx = freed.back();
                freed.pop_back();
                p.reused = true;
                out.reused_key_inserts++;
              } else {
                idx = insert_cursor_.fetch_add(1, std::memory_order_relaxed);
              }
              std::memcpy(values[planned].data(), &opno,
                          std::min<size_t>(8, values[planned].size()));
              if (idx >= keys_.size()) {
                out.insert_overflow++;
                p.kind = BatchOp::Kind::kUpdate;
                p.key_idx = dist->next(rng);
                p.reused = false;
              } else {
                p.kind = BatchOp::Kind::kInsert;
                p.key_idx = idx;
              }
            } else {
              // Remove: claim one of this worker's live keys at plan time
              // (exactly the serial draw order); with none to remove,
              // degrade to a read, as the serial loop does.
              if (owned.empty()) {
                out.remove_underflow++;
                p.kind = BatchOp::Kind::kSearch;
                p.key_idx = dist->next(rng);
              } else {
                const size_t pos = rng.next_below(owned.size());
                p.kind = BatchOp::Kind::kRemove;
                p.key_idx = owned[pos];
                owned[pos] = owned.back();
                owned.pop_back();
              }
            }
            planned++;
          }
          if (planned > 0) {
            for (uint32_t i = 0; i < planned; ++i) {
              BatchOp& b = batch[i];
              b.kind = plan[i].kind;
              b.key = Slice(keys_[plan[i].key_idx]);
              b.value = Slice(values[i]);
              b.value_out = b.kind == BatchOp::Kind::kSearch
                                ? &read_bufs[i]
                                : nullptr;
              b.ok = false;
              b.done = false;
              b.done_clock_ns = 0;
            }
            const bool traced =
                wrec != nullptr && (op % options.trace_sample) == 0;
            endpoint->set_trace(traced ? wrec : nullptr, w);
            const uint64_t t0 = endpoint->clock_ns();
            bool crashed = false;
            try {
              index->execute_batch(batch.data(), planned);
            } catch (const rdma::ClientCrashed&) {
              crashed = true;
              out.client_crashes++;
              out.net += endpoint->stats();
              clock_carry = endpoint->clock_ns();
              if (hook_) hook_(*index, w);
              ++generation;
              incarnate();
            }
            for (uint32_t i = 0; i < planned; ++i) {
              const BatchOp& b = batch[i];
              // Ops the crash caught mid-flight are abandoned exactly like
              // a crashed serial op: no outcome, no latency sample (their
              // fate is decided by the survivors' lock reclamation).
              if (!b.done) continue;
              switch (b.kind) {
                case BatchOp::Kind::kSearch:
                case BatchOp::Kind::kUpdate:
                  if (!b.ok) out.misses++;
                  break;
                case BatchOp::Kind::kInsert:
                  if (b.ok) {
                    owned.push_back(plan[i].key_idx);
                    if (!plan[i].reused) {
                      visible_.fetch_add(1, std::memory_order_relaxed);
                      if (latest) latest->advance_frontier();
                    }
                  } else {
                    out.insert_failures++;
                    if (plan[i].reused) freed.push_back(plan[i].key_idx);
                  }
                  break;
                case BatchOp::Kind::kRemove:
                  out.remove_ops++;
                  if (b.ok) {
                    freed.push_back(plan[i].key_idx);
                  } else {
                    out.remove_misses++;
                  }
                  break;
              }
              // Indexes without a virtual clock stamp 0; degrade those
              // samples to end-of-batch (the serial-equivalent bound).
              const uint64_t done_ns =
                  b.done_clock_ns >= t0 ? b.done_clock_ns
                                        : endpoint->clock_ns();
              out.latency.record(done_ns - t0);
            }
            if (traced && !crashed) {
              wrec->record("op:batch", t0, endpoint->clock_ns() - t0, w);
            }
            op += planned;
          }
          if (have_rmw) {
            endpoint->set_trace(nullptr, w);
            const uint64_t t0 = endpoint->clock_ns();
            try {
              out.rmw_ops++;
              if (index->search(keys_[rmw_idx], &read_buf)) {
                std::memcpy(value.data(), &op,
                            std::min<size_t>(8, value.size()));
                if (!read_buf.empty()) value[value.size() - 1] = read_buf[0];
                if (!index->update(keys_[rmw_idx], value)) out.rmw_misses++;
              } else {
                out.rmw_misses++;
              }
              out.latency.record(endpoint->clock_ns() - t0);
            } catch (const rdma::ClientCrashed&) {
              out.client_crashes++;
              out.net += endpoint->stats();
              clock_carry = endpoint->clock_ns();
              if (hook_) hook_(*index, w);
              ++generation;
              incarnate();
            }
            op += 1;
          }
          if (have_scan) {
            endpoint->set_trace(nullptr, w);
            const uint64_t t0 = endpoint->clock_ns();
            try {
              const uint64_t rtts_before = endpoint->stats().round_trips;
              out.scan_keys += index->scan(keys_[scan_idx], scan_len,
                                           &scan_buf);
              out.scan_round_trips +=
                  endpoint->stats().round_trips - rtts_before;
              out.scan_ops++;
              if (index->last_scan_truncated()) out.scan_truncated++;
              out.latency.record(endpoint->clock_ns() - t0);
            } catch (const rdma::ClientCrashed&) {
              out.client_crashes++;
              out.net += endpoint->stats();
              clock_carry = endpoint->clock_ns();
              if (hook_) hook_(*index, w);
              ++generation;
              incarnate();
            }
            op += 1;
          }
        }
      }
      out.net += endpoint->stats();
      out.end_clock_ns = endpoint->clock_ns();
      if (hook_) hook_(*index, w);
    });
  }
  for (auto& t : threads) t.join();

  uint64_t max_clock = 0;
  std::vector<uint64_t> cn_msgs(num_cns, 0);
  std::vector<uint64_t> cn_bytes(num_cns, 0);
  for (uint32_t w = 0; w < options.workers; ++w) {
    const WorkerOut& out = outs[w];
    result.latency.merge(out.latency);
    result.net += out.net;
    result.misses += out.misses;
    result.insert_overflow += out.insert_overflow;
    result.insert_failures += out.insert_failures;
    result.client_crashes += out.client_crashes;
    result.scan_ops += out.scan_ops;
    result.scan_keys += out.scan_keys;
    result.scan_truncated += out.scan_truncated;
    result.scan_round_trips += out.scan_round_trips;
    result.remove_ops += out.remove_ops;
    result.remove_misses += out.remove_misses;
    result.remove_underflow += out.remove_underflow;
    result.reused_key_inserts += out.reused_key_inserts;
    result.rmw_ops += out.rmw_ops;
    result.rmw_misses += out.rmw_misses;
    cn_msgs[w % num_cns] += out.net.messages;
    cn_bytes[w % num_cns] += out.net.bytes_total();
    max_clock = std::max(max_clock, out.end_clock_ns);
  }
  if (options.trace != nullptr) {
    for (const rdma::TraceRecorder& rec : traces) options.trace->merge(rec);
  }
  result.total_ops = options.ops_per_worker * options.workers;

  // Fluid NIC-capacity model: each NIC supplies one second of service time
  // per second. Per-NIC utilization = the phase's aggregate service demand
  // on that NIC over the unloaded makespan. The *busiest* NIC gates when
  // the phase can finish (makespan stretch, below); per-op latency is
  // charged per NIC actually touched (per-worker stretch, further below).
  const rdma::NetworkConfig& cfg = cluster_.config();
  const double t_unloaded = static_cast<double>(max_clock);
  // The per-MN vectors are sized from the fabric (and grown on demand), so
  // every MN's traffic enters the capacity model -- nothing escapes on
  // clusters wider than the old fixed-size tracking arrays.
  const uint32_t tracked_mns = std::max<uint32_t>(
      cluster_.num_mns(),
      static_cast<uint32_t>(result.net.msgs_per_mn.size()));
  result.mn_utilization.assign(tracked_mns, 0.0);
  result.cn_utilization.assign(num_cns, 0.0);
  // An MN verb costs the NIC per-message processing plus wire time for its
  // payload. The same two terms apply CN-side: every message a CN's
  // workers put on the wire crosses the CN NIC, payload included (the old
  // model charged CN messages but not CN bytes, so a CN could never
  // byte-saturate no matter how large the transfers).
  for (uint32_t mn = 0; mn < result.net.msgs_per_mn.size(); ++mn) {
    const double demand =
        static_cast<double>(result.net.msgs_per_mn[mn]) *
            static_cast<double>(cfg.mn_msg_ns) +
        static_cast<double>(result.net.bytes_per_mn[mn]) / cfg.bytes_per_ns;
    if (t_unloaded > 0) result.mn_utilization[mn] = demand / t_unloaded;
  }
  for (uint32_t cn = 0; cn < num_cns; ++cn) {
    const double demand =
        static_cast<double>(cn_msgs[cn]) *
            static_cast<double>(cfg.cn_msg_ns) +
        static_cast<double>(cn_bytes[cn]) / cfg.bytes_per_ns;
    if (t_unloaded > 0) result.cn_utilization[cn] = demand / t_unloaded;
  }
  double u_max = 0.0;
  for (double u : result.mn_utilization) u_max = std::max(u_max, u);
  for (double u : result.cn_utilization) u_max = std::max(u_max, u);
  result.nic_utilization = u_max;
  result.latency_stretch = std::max(1.0, u_max);
  const double t_eff = t_unloaded * result.latency_stretch;

  // Placement balance: busiest MN's messages over the per-MN mean across
  // the whole cluster (idle provisioned MNs count in the mean -- an MN the
  // placement never uses IS imbalance).
  {
    uint64_t total_mn_msgs = 0;
    uint64_t max_mn_msgs = 0;
    for (uint64_t m : result.net.msgs_per_mn) {
      total_mn_msgs += m;
      max_mn_msgs = std::max(max_mn_msgs, m);
    }
    result.mn_msg_balance =
        total_mn_msgs > 0
            ? static_cast<double>(max_mn_msgs) * tracked_mns /
                  static_cast<double>(total_mn_msgs)
            : 1.0;
  }

  // Per-worker latency stretch: a worker's timeline inflates by the
  // congestion of the NICs its verbs crossed -- the demand-weighted mean
  // of max(1, u_mn) over its per-MN traffic mix, floored by its own CN
  // NIC's stretch (every one of its messages crosses that CN). On a
  // balanced cluster every worker gets ~latency_stretch; under skew only
  // the workers feeding the hot NIC stretch. The scaled per-worker
  // histograms merge into latency_effective.
  for (uint32_t w = 0; w < options.workers; ++w) {
    const rdma::EndpointStats& n = outs[w].net;
    double demand_total = 0.0;
    double weighted = 0.0;
    for (uint32_t mn = 0; mn < n.msgs_per_mn.size(); ++mn) {
      const double d =
          static_cast<double>(n.msgs_per_mn[mn]) *
              static_cast<double>(cfg.mn_msg_ns) +
          static_cast<double>(n.bytes_per_mn[mn]) / cfg.bytes_per_ns;
      demand_total += d;
      const double u =
          mn < result.mn_utilization.size() ? result.mn_utilization[mn] : 0.0;
      weighted += d * std::max(1.0, u);
    }
    double stretch_w = demand_total > 0 ? weighted / demand_total : 1.0;
    stretch_w =
        std::max(stretch_w, std::max(1.0, result.cn_utilization[w % num_cns]));
    result.latency_effective.merge_scaled(outs[w].latency, stretch_w);
  }

  result.sim_seconds = t_eff / 1e9;
  result.ops_per_sec =
      result.sim_seconds > 0
          ? static_cast<double>(result.total_ops) / result.sim_seconds
          : 0;
  // Effective mean (Little's law with L = the ops actually in flight,
  // consistent with ops_per_sec); the unloaded mean comes from the same
  // histogram the percentiles do, so both latency views are internally
  // consistent. At depth 1 with ops >> workers this reduces exactly to
  // the pre-pipelining workers-only formula. L is clamped to total_ops:
  // a phase with fewer ops than the nominal workers x depth window (tiny
  // warmups) never has the full window in flight, and charging the
  // phantom occupancy overstated the mean by workers x depth / total.
  const double in_flight = std::min(
      static_cast<double>(options.workers) *
          static_cast<double>(std::max<uint32_t>(1, options.pipeline_depth)),
      static_cast<double>(result.total_ops));
  result.mean_latency_ns =
      result.total_ops > 0
          ? in_flight * t_eff / static_cast<double>(result.total_ops)
          : 0;
  result.mean_unloaded_latency_ns = result.latency.mean_ns();
  result.rtts_per_op = static_cast<double>(result.net.round_trips) /
                       static_cast<double>(result.total_ops);
  result.read_bytes_per_op = static_cast<double>(result.net.bytes_read) /
                             static_cast<double>(result.total_ops);
  result.scan_rtts_per_op =
      result.scan_ops > 0 ? static_cast<double>(result.scan_round_trips) /
                                static_cast<double>(result.scan_ops)
                          : 0;
  result.alloc_failures = astats.alloc_failures() - alloc_failures0;
  result.alloc_degraded_ops = astats.alloc_degraded_ops() - degraded0;
  result.reclaimed_blocks = astats.reclaimed_blocks() - reclaimed0;
  result.retired_bytes_total = astats.retired_bytes_total() - retired_total0;
  result.retired_bytes_outstanding = astats.retired_bytes_outstanding();
  result.leaked_bytes = astats.leaked_bytes();
  result.alloc_underflows = astats.underflows();
  result.epoch_advances = epochs.advances() - advances0;
  result.expired_epoch_slots = epochs.expired_slots() - expired0;
  return result;
}

}  // namespace sphinx::ycsb
