// Multi-worker YCSB runner over the simulated DM cluster.
//
// Worker model: the paper drives each system with coroutine workers spread
// over 3 CNs; here every worker is an OS thread owning one Endpoint (its
// virtual clock plays the coroutine's timeline) and one index client
// produced by the caller's factory. Shared NIC clocks couple the workers'
// virtual timelines, so adding workers saturates the fabric exactly like
// adding coroutines saturates the real NICs.
//
// Reported throughput = total ops / max worker virtual time; latency
// histograms aggregate per-op virtual durations.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/kv_index.h"
#include "memnode/cluster.h"
#include "memnode/remote_allocator.h"
#include "rdma/endpoint.h"
#include "ycsb/workload.h"

namespace sphinx::ycsb {

// Builds a per-worker index client bound to the worker's endpoint and
// allocator. `cn` identifies the compute node the worker lives on, so the
// factory can hand out per-CN shared state (filter cache, node cache).
using IndexFactory = std::function<std::unique_ptr<KvIndex>(
    uint32_t worker_id, uint32_t cn, rdma::Endpoint& endpoint,
    mem::RemoteAllocator& allocator)>;

// Called per worker after its ops complete, before the index client is
// destroyed (e.g. to aggregate system-internal statistics).
using PerWorkerHook = std::function<void(KvIndex&, uint32_t worker_id)>;

struct RunOptions {
  uint32_t workers = 6;
  uint64_t ops_per_worker = 10000;
  uint64_t seed = 42;
  // When non-null, 1-in-`trace_sample` ops record trace spans (an enclosing
  // "op:*" span plus one phase-named span per round trip) into per-worker
  // bounded buffers that are merged into `trace` after the join. Null (the
  // default) leaves the endpoints' trace hook detached: virtual clocks and
  // stats are bit-identical to an untraced run.
  rdma::TraceRecorder* trace = nullptr;
  uint32_t trace_sample = 32;
  // Point ops kept in flight per worker. Each worker plans up to this many
  // ops ahead -- drawing the workload stream (roll, then key index) in
  // exactly the serial order -- and submits them as one
  // KvIndex::execute_batch call, letting pipelined clients fuse round
  // trips across ops. 1 (the default) runs the pre-batching serial loop,
  // bit-identical to releases before pipelining existed. Scans never
  // batch: a scan draw closes the current batch and runs serially after
  // it. With tracing on, depth > 1 records one "op:batch" span per batch
  // instead of per-op spans.
  uint32_t pipeline_depth = 1;
};

struct RunResult {
  std::string workload;
  uint64_t total_ops = 0;
  uint64_t misses = 0;        // reads/updates of not-yet-visible keys
  uint64_t insert_overflow = 0;  // insert pool exhausted (fell back to update)
  // Run-phase inserts whose index->insert() returned false. Failed inserts
  // do NOT advance the visible set or the latest-distribution frontier;
  // the claimed key stays a hole in the pool and later reads of it count
  // as misses. Zero in any fault-free run.
  uint64_t insert_failures = 0;
  // Injected client crashes (kClientCrash faults). Each kills one worker
  // mid-op; the runner reincarnates it with a fresh endpoint + index client
  // and carries its virtual clock forward. The in-flight op is abandoned
  // (its fate, like a real crashed client's, is decided by the survivors'
  // lock reclamation).
  uint64_t client_crashes = 0;
  // Effective wall time of the phase on the simulated cluster: the longest
  // worker timeline, stretched by the NIC-capacity model when the phase
  // demands more NIC service time than the fabric can supply (fluid
  // queueing approximation -- this is what makes message-hungry systems
  // saturate first, reproducing the paper's Fig. 5 shape).
  double sim_seconds = 0;
  double ops_per_sec = 0;
  // Busiest-NIC utilization at unloaded pacing; > 1 means saturated. This
  // is the max over the per-NIC vectors below.
  double nic_utilization = 0;
  // Per-NIC utilization at unloaded pacing (service demand placed on that
  // NIC divided by the unloaded makespan). MN entries charge both the
  // per-message processing time and the byte/bandwidth term; CN entries
  // charge the same two terms for everything the CN's workers put on the
  // wire (a CN NIC byte-saturates on large transfers exactly like an MN
  // NIC -- the old model forgot the CN byte term).
  std::vector<double> mn_utilization;
  std::vector<double> cn_utilization;
  // Placement-balance figure: busiest-MN messages over mean-per-MN
  // messages. 1.0 is a perfectly balanced cluster; a hot MN pushes it
  // toward num_mns. The knee study reports this next to every curve so
  // placement skew is never mistaken for capacity exhaustion.
  double mn_msg_balance = 1.0;
  // Latency is dual-reported and the two views differ exactly by the
  // NIC-capacity stretch factor `latency_stretch` = max(1, nic_utilization):
  //  * `latency` (and mean_unloaded_latency_ns) is the per-op distribution
  //    at unloaded pacing -- no NIC queueing applied, what each op cost on
  //    its own virtual timeline. Under pipelining (pipeline_depth > 1) an
  //    op's sample spans batch submit to *that op's* completion stamp
  //    (BatchOp::done_clock_ns), so in-batch queueing is measured per op
  //    -- ops finished by an early fused round trip record less than ops
  //    serialized behind them in the same batch -- rather than dividing
  //    the batch's wall time evenly by its depth;
  //  * `mean_latency_ns` and effective_percentile_ns() are *effective*
  //    (queueing-adjusted) figures consistent with the reported throughput
  //    via Little's law with L = min(workers x pipeline_depth, total_ops)
  //    ops in flight (clamped: a phase with fewer ops than the nominal
  //    window never has the full window in flight).
  //    On an unsaturated fabric at depth 1 the two views coincide.
  double mean_latency_ns = 0;
  double mean_unloaded_latency_ns = 0;
  // Makespan stretch: max(1, nic_utilization). The *busiest* NIC gates
  // when the whole phase can finish, so throughput is always derated by
  // this factor; per-op latency is NOT (see latency_effective).
  double latency_stretch = 1.0;
  // Per-op latency distribution at unloaded pacing (no queueing applied).
  LatencyHistogram latency;
  // Per-op latency with *per-NIC* queueing applied: each worker's unloaded
  // samples scaled by that worker's own stretch -- the traffic-weighted
  // mean of max(1, utilization) over the NICs its verbs actually crossed
  // (its CN NIC plus its per-MN demand mix). On a balanced cluster this
  // coincides with the uniform latency_stretch scaling; under skew the
  // workers hammering the hot MN stretch while the rest stay fast, so a
  // hot MN is visible as a fat tail here instead of being flattened into
  // one global factor.
  LatencyHistogram latency_effective;

  // Queueing-adjusted percentile from the per-NIC-stretched distribution.
  // Falls back to the uniform-stretch scaling for hand-built results that
  // never populated latency_effective.
  double effective_percentile_ns(double p) const {
    if (latency_effective.count() > 0) {
      return static_cast<double>(latency_effective.percentile_ns(p));
    }
    return static_cast<double>(latency.percentile_ns(p)) * latency_stretch;
  }
  rdma::EndpointStats net;
  double rtts_per_op = 0;
  double read_bytes_per_op = 0;
  // Scan-op breakdown (E-style workloads; all zero elsewhere).
  uint64_t scan_ops = 0;
  uint64_t scan_keys = 0;         // pairs returned across all scans
  uint64_t scan_truncated = 0;    // scans reporting possible missing keys
  uint64_t scan_round_trips = 0;  // RTTs spent inside scan calls
  double scan_rtts_per_op = 0;    // scan_round_trips / scan_ops
  // Churn/RMW breakdown (workloads with remove/rmw shares; zero elsewhere).
  uint64_t remove_ops = 0;     // removes actually issued
  uint64_t remove_misses = 0;  // removes of a key the worker believed live
  uint64_t remove_underflow = 0;  // remove drawn with nothing left to remove
  uint64_t reused_key_inserts = 0;  // inserts that recycled a removed key
  uint64_t rmw_ops = 0;
  uint64_t rmw_misses = 0;  // RMW whose read or write leg failed
  // Reclamation + degraded-mode counters, measured as deltas of the
  // cluster-wide AllocStats / EpochManager across this phase (absolute for
  // *_outstanding, which is a level, not a flow).
  uint64_t alloc_failures = 0;
  uint64_t alloc_degraded_ops = 0;
  uint64_t reclaimed_blocks = 0;
  uint64_t retired_bytes_total = 0;
  uint64_t retired_bytes_outstanding = 0;
  uint64_t leaked_bytes = 0;
  uint64_t alloc_underflows = 0;  // accounting drift tripwire; 0 when sane
  uint64_t epoch_advances = 0;
  uint64_t expired_epoch_slots = 0;
};

class YcsbRunner {
 public:
  // `keys` is the full key pool: the first `load()`ed prefix becomes the
  // dataset; the remainder feeds insert operations of workloads D/E/LOAD.
  YcsbRunner(mem::Cluster& cluster, IndexFactory factory,
             std::vector<std::string> keys);

  // Bulk-loads keys[0, count) with `workers` parallel unmetered clients.
  void load(uint64_t count, uint32_t value_size, uint32_t workers = 8);

  // Runs one workload phase. NIC clocks are reset at phase start.
  RunResult run(const WorkloadSpec& spec, const RunOptions& options);

  void set_per_worker_hook(PerWorkerHook hook) { hook_ = std::move(hook); }

  uint64_t visible_keys() const {
    return visible_.load(std::memory_order_relaxed);
  }
  const std::vector<std::string>& keys() const { return keys_; }
  mem::Cluster& cluster() { return cluster_; }

 private:
  mem::Cluster& cluster_;
  IndexFactory factory_;
  std::vector<std::string> keys_;
  PerWorkerHook hook_;
  std::atomic<uint64_t> visible_{0};
  std::atomic<uint64_t> insert_cursor_{0};
};

}  // namespace sphinx::ycsb
