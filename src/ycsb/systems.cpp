#include "ycsb/systems.h"

#include "art/art_index.h"
#include "smart/smart_index.h"

namespace sphinx::ycsb {

const char* system_kind_name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kSphinx:
      return "Sphinx";
    case SystemKind::kSphinxNoFilter:
      return "Sphinx-NoSFC";
    case SystemKind::kSmart:
      return "SMART";
    case SystemKind::kSmartC:
      return "SMART+C";
    case SystemKind::kArt:
      return "ART";
    case SystemKind::kBpTree:
      return "B+tree";
  }
  return "?";
}

SystemSetup::SystemSetup(SystemKind kind, mem::Cluster& cluster,
                         uint64_t cache_budget_bytes,
                         uint64_t pec_budget_bytes,
                         uint64_t lac_budget_bytes)
    : kind_(kind), cluster_(cluster), name_(system_kind_name(kind)) {
  const uint32_t num_cns = cluster.config().num_cns;
  switch (kind) {
    case SystemKind::kSphinx: {
      sphinx_refs_ = std::make_unique<core::SphinxRefs>(
          core::create_sphinx(cluster));
      tree_ref_ = sphinx_refs_->tree;
      // Split one CN cache budget across the three tiers: by default the
      // filter keeps 45%, the prefix entry cache takes 25%, the leaf
      // address cache takes 25%, and ~5% stays reserved for the INHT
      // directory caches (the paper sizes those at 2-5% of the filter
      // budget). Each cache's slice returns to the filter when that tier
      // is disabled, so --no-lac reproduces the pre-LAC 70/25 split (and
      // --no-lac --no-pec the seed's 95%) bit for bit.
      const uint64_t pec_bytes = pec_budget_bytes == kAutoPecBudget
                                     ? cache_budget_bytes * 25 / 100
                                     : pec_budget_bytes;
      const uint64_t lac_bytes = lac_budget_bytes == kAutoLacBudget
                                     ? cache_budget_bytes * 25 / 100
                                     : lac_budget_bytes;
      const uint64_t filter_share =
          95 - (pec_bytes > 0 ? 25 : 0) - (lac_bytes > 0 ? 25 : 0);
      const uint64_t filter_bytes = cache_budget_bytes * filter_share / 100;
      for (uint32_t cn = 0; cn < num_cns; ++cn) {
        filters_.push_back(filter::CuckooFilter::with_budget(filter_bytes));
        if (pec_bytes > 0) {
          pecs_.push_back(filter::PrefixEntryCache::with_budget(pec_bytes));
        }
        if (lac_bytes > 0) {
          lacs_.push_back(filter::LeafAddressCache::with_budget(lac_bytes));
        }
      }
      break;
    }
    case SystemKind::kSphinxNoFilter: {
      sphinx_refs_ = std::make_unique<core::SphinxRefs>(
          core::create_sphinx(cluster));
      tree_ref_ = sphinx_refs_->tree;
      // Auto means "pure INHT" here (the A1 ablation baseline); an explicit
      // budget yields the PEC-only (or PEC+LAC) variant of the ablation.
      const uint64_t pec_bytes =
          pec_budget_bytes == kAutoPecBudget ? 0 : pec_budget_bytes;
      const uint64_t lac_bytes =
          lac_budget_bytes == kAutoLacBudget ? 0 : lac_budget_bytes;
      for (uint32_t cn = 0; cn < num_cns && pec_bytes > 0; ++cn) {
        pecs_.push_back(filter::PrefixEntryCache::with_budget(pec_bytes));
      }
      for (uint32_t cn = 0; cn < num_cns && lac_bytes > 0; ++cn) {
        lacs_.push_back(filter::LeafAddressCache::with_budget(lac_bytes));
      }
      break;
    }
    case SystemKind::kSmart:
    case SystemKind::kSmartC:
      tree_ref_ = art::create_tree(cluster);
      for (uint32_t cn = 0; cn < num_cns; ++cn) {
        caches_.push_back(
            std::make_unique<smart::NodeCache>(cache_budget_bytes));
      }
      break;
    case SystemKind::kArt:
      tree_ref_ = art::create_tree(cluster);
      break;
    case SystemKind::kBpTree:
      bptree_ref_ = bptree::create_bptree(cluster);
      break;
  }
}

// Pipelining honesty note: only Sphinx overrides KvIndex::execute_batch
// (cross-op doorbell fusion of the LAC fast path). SMART, SMART+C, ART and
// the B+ tree deliberately keep the inherited naive serial loop -- one op
// at a time, zero overlap -- so --pipeline-depth > 1 changes *their*
// numbers only through batch-boundary effects (none on the virtual clock),
// and the 4-system comparison measures Sphinx's pipelined client against
// unpipelined baselines explicitly, not against accidental stubs.
std::unique_ptr<KvIndex> SystemSetup::make_client(
    uint32_t cn, rdma::Endpoint& endpoint, mem::RemoteAllocator& allocator) {
  switch (kind_) {
    case SystemKind::kSphinx: {
      core::SphinxConfig config;
      config.tree.scan_jump = scan_jump_;
      config.tree.replicate_root = root_replicas_;
      return std::make_unique<core::SphinxIndex>(
          cluster_, endpoint, allocator, *sphinx_refs_, filters_[cn].get(),
          pec(cn), lac(cn), config);
    }
    case SystemKind::kSphinxNoFilter: {
      core::SphinxConfig config;
      config.use_filter = false;
      config.tree.scan_jump = scan_jump_;
      config.tree.replicate_root = root_replicas_;
      return std::make_unique<core::SphinxIndex>(
          cluster_, endpoint, allocator, *sphinx_refs_, nullptr, pec(cn),
          lac(cn), config);
    }
    case SystemKind::kSmart:
    case SystemKind::kSmartC:
      return std::make_unique<smart::SmartIndex>(
          cluster_, endpoint, allocator, tree_ref_, *caches_[cn],
          kind_ == SystemKind::kSmartC ? "SMART+C" : "SMART");
    case SystemKind::kArt: {
      art::TreeConfig config = art::ArtIndex::baseline_config();
      config.replicate_root = root_replicas_;
      return std::make_unique<art::ArtIndex>(cluster_, endpoint, allocator,
                                             tree_ref_, config);
    }
    case SystemKind::kBpTree:
      return std::make_unique<bptree::BpTreeIndex>(cluster_, endpoint,
                                                   allocator, bptree_ref_);
  }
  return nullptr;
}

IndexFactory SystemSetup::factory() {
  return [this](uint32_t worker_id, uint32_t cn, rdma::Endpoint& endpoint,
                mem::RemoteAllocator& allocator) {
    (void)worker_id;
    return make_client(cn, endpoint, allocator);
  };
}

uint64_t SystemSetup::cn_cache_bytes(uint32_t cn) const {
  uint64_t total = 0;
  if (cn < filters_.size() && filters_[cn]) {
    total += filters_[cn]->memory_bytes();
  }
  if (cn < pecs_.size() && pecs_[cn]) {
    total += pecs_[cn]->memory_bytes();
  }
  if (cn < lacs_.size() && lacs_[cn]) {
    total += lacs_[cn]->memory_bytes();
  }
  if (cn < caches_.size() && caches_[cn]) {
    total += caches_[cn]->bytes_used();
  }
  return total;
}

}  // namespace sphinx::ycsb
