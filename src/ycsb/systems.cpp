#include "ycsb/systems.h"

#include "art/art_index.h"
#include "smart/smart_index.h"

namespace sphinx::ycsb {

const char* system_kind_name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kSphinx:
      return "Sphinx";
    case SystemKind::kSphinxNoFilter:
      return "Sphinx-NoSFC";
    case SystemKind::kSmart:
      return "SMART";
    case SystemKind::kSmartC:
      return "SMART+C";
    case SystemKind::kArt:
      return "ART";
    case SystemKind::kBpTree:
      return "B+tree";
  }
  return "?";
}

SystemSetup::SystemSetup(SystemKind kind, mem::Cluster& cluster,
                         uint64_t cache_budget_bytes)
    : kind_(kind), cluster_(cluster), name_(system_kind_name(kind)) {
  const uint32_t num_cns = cluster.config().num_cns;
  switch (kind) {
    case SystemKind::kSphinx:
      sphinx_refs_ = std::make_unique<core::SphinxRefs>(
          core::create_sphinx(cluster));
      tree_ref_ = sphinx_refs_->tree;
      for (uint32_t cn = 0; cn < num_cns; ++cn) {
        // The directory caches of the INHT clients live beside the filter;
        // the paper sizes them at 2-5% of the filter budget, so the filter
        // gets the budget minus that reserve.
        filters_.push_back(
            filter::CuckooFilter::with_budget(cache_budget_bytes * 95 / 100));
      }
      break;
    case SystemKind::kSphinxNoFilter:
      sphinx_refs_ = std::make_unique<core::SphinxRefs>(
          core::create_sphinx(cluster));
      tree_ref_ = sphinx_refs_->tree;
      break;
    case SystemKind::kSmart:
    case SystemKind::kSmartC:
      tree_ref_ = art::create_tree(cluster);
      for (uint32_t cn = 0; cn < num_cns; ++cn) {
        caches_.push_back(
            std::make_unique<smart::NodeCache>(cache_budget_bytes));
      }
      break;
    case SystemKind::kArt:
      tree_ref_ = art::create_tree(cluster);
      break;
    case SystemKind::kBpTree:
      bptree_ref_ = bptree::create_bptree(cluster);
      break;
  }
}

std::unique_ptr<KvIndex> SystemSetup::make_client(
    uint32_t cn, rdma::Endpoint& endpoint, mem::RemoteAllocator& allocator) {
  switch (kind_) {
    case SystemKind::kSphinx:
      return std::make_unique<core::SphinxIndex>(
          cluster_, endpoint, allocator, *sphinx_refs_, filters_[cn].get());
    case SystemKind::kSphinxNoFilter: {
      core::SphinxConfig config;
      config.use_filter = false;
      return std::make_unique<core::SphinxIndex>(
          cluster_, endpoint, allocator, *sphinx_refs_, nullptr, config);
    }
    case SystemKind::kSmart:
    case SystemKind::kSmartC:
      return std::make_unique<smart::SmartIndex>(
          cluster_, endpoint, allocator, tree_ref_, *caches_[cn],
          kind_ == SystemKind::kSmartC ? "SMART+C" : "SMART");
    case SystemKind::kArt:
      return std::make_unique<art::ArtIndex>(cluster_, endpoint, allocator,
                                             tree_ref_);
    case SystemKind::kBpTree:
      return std::make_unique<bptree::BpTreeIndex>(cluster_, endpoint,
                                                   allocator, bptree_ref_);
  }
  return nullptr;
}

IndexFactory SystemSetup::factory() {
  return [this](uint32_t worker_id, uint32_t cn, rdma::Endpoint& endpoint,
                mem::RemoteAllocator& allocator) {
    (void)worker_id;
    return make_client(cn, endpoint, allocator);
  };
}

uint64_t SystemSetup::cn_cache_bytes(uint32_t cn) const {
  if (cn < filters_.size() && filters_[cn]) {
    return filters_[cn]->memory_bytes();
  }
  if (cn < caches_.size() && caches_[cn]) {
    return caches_[cn]->bytes_used();
  }
  return 0;
}

}  // namespace sphinx::ycsb
