// Constructs the four evaluated systems (Sphinx, SMART, SMART+C, ART) plus
// ablation variants behind a uniform factory interface, owning the shared
// CN-side state (succinct filter caches, node caches) each system needs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "art/remote_tree.h"
#include "bptree/bptree.h"
#include "core/sphinx_index.h"
#include "filter/cuckoo_filter.h"
#include "filter/leaf_addr_cache.h"
#include "filter/prefix_entry_cache.h"
#include "smart/node_cache.h"
#include "ycsb/runner.h"

namespace sphinx::ycsb {

enum class SystemKind {
  kSphinx,          // INHT + succinct filter cache
  kSphinxNoFilter,  // ablation A1: INHT only (parallel multi-entry reads)
  kSmart,           // ART + CN node cache (paper: 20 MB)
  kSmartC,          // SMART with the large cache (paper: 200 MB)
  kArt,             // plain ART ported to DM
  kBpTree,          // extra baseline: Sherman-style B+ tree (8 B keys only)
};

const char* system_kind_name(SystemKind kind);

// Per-CN cache budgets from the paper's setup (Sec. V-A).
constexpr uint64_t kDefaultCacheBudget = 20ull << 20;   // 20 MB
constexpr uint64_t kLargeCacheBudget = 200ull << 20;    // 200 MB (SMART+C)
constexpr uint64_t kPaperDatasetKeys = 60'000'000;      // paper: 60 M keys

// Sentinel for SystemSetup's pec_budget_bytes: carve the default prefix
// entry cache share out of the overall CN cache budget (Sphinx only).
constexpr uint64_t kAutoPecBudget = ~0ull;

// Same idiom for lac_budget_bytes: carve the default leaf address cache
// share out of the overall CN cache budget (Sphinx only; the NoFilter
// ablation keeps auto = off so A1 stays a pure INHT baseline).
constexpr uint64_t kAutoLacBudget = ~0ull;

// Scales the paper's absolute CN-side cache budget to a scaled-down
// dataset. The paper pairs 20 MB caches with 60 M keys (4.2% of the u64
// key bytes, 1.8% of email); keeping that *ratio* preserves the regime the
// figures measure -- a cache far smaller than the index's hot working set.
inline uint64_t scaled_cache_budget(uint64_t budget_at_paper_scale,
                                    uint64_t keys) {
  const uint64_t scaled =
      budget_at_paper_scale * keys / kPaperDatasetKeys;
  return scaled < (96ull << 10) ? (96ull << 10) : scaled;
}

class SystemSetup {
 public:
  // Creates the remote structures for `kind` on `cluster` and the per-CN
  // shared caches sized to `cache_budget_bytes`. `pec_budget_bytes`
  // controls the Sphinx prefix entry cache: kAutoPecBudget takes the
  // default 25% slice of the overall budget (5% stays reserved for INHT
  // directory caches), 0 disables the PEC (the seed SFC-only
  // configuration), and any other value is an absolute byte budget --
  // e.g. the PEC-only ablation passes the whole cache budget here with
  // kind = kSphinxNoFilter. `lac_budget_bytes` controls the leaf address
  // cache the same way: kAutoLacBudget takes a 25% slice, 0 disables the
  // LAC (pre-LAC behavior bit for bit), any other value is absolute. The
  // filter keeps whatever the enabled tiers leave (45% with all three,
  // 70% pre-LAC, 95% seed).
  SystemSetup(SystemKind kind, mem::Cluster& cluster,
              uint64_t cache_budget_bytes = kDefaultCacheBudget,
              uint64_t pec_budget_bytes = kAutoPecBudget,
              uint64_t lac_budget_bytes = kAutoLacBudget);

  const std::string& name() const { return name_; }
  SystemKind kind() const { return kind_; }
  IndexFactory factory();

  // Builds a standalone client (e.g. for examples/tests outside the
  // runner); caller keeps endpoint/allocator alive.
  std::unique_ptr<KvIndex> make_client(uint32_t cn, rdma::Endpoint& endpoint,
                                       mem::RemoteAllocator& allocator);

  // CN-side cache memory actually in use (filter slots / cached nodes).
  uint64_t cn_cache_bytes(uint32_t cn) const;

  // A/B switch for bench_ycsb --no-scan-jump: when false, Sphinx clients
  // enter scans at the root like the baselines (SFC/PEC still serve point
  // ops). No effect on non-Sphinx systems.
  void set_scan_jump(bool enabled) { scan_jump_ = enabled; }

  // A/B switch for bench_scalability --root-replicas: when false, ART and
  // Sphinx clients read only the primary root (pre-replication routing),
  // exposing the root MN's NIC as the saturation bottleneck. SMART always
  // runs with replicas off (its NodeCache fronts the primary root).
  void set_root_replicas(bool enabled) { root_replicas_ = enabled; }

  filter::CuckooFilter* filter(uint32_t cn) {
    return cn < filters_.size() ? filters_[cn].get() : nullptr;
  }
  filter::PrefixEntryCache* pec(uint32_t cn) {
    return cn < pecs_.size() ? pecs_[cn].get() : nullptr;
  }
  filter::LeafAddressCache* lac(uint32_t cn) {
    return cn < lacs_.size() ? lacs_[cn].get() : nullptr;
  }
  smart::NodeCache* node_cache(uint32_t cn) {
    return cn < caches_.size() ? caches_[cn].get() : nullptr;
  }
  const core::SphinxRefs* sphinx_refs() const {
    return sphinx_refs_ ? sphinx_refs_.get() : nullptr;
  }
  const art::TreeRef& tree_ref() const { return tree_ref_; }
  const bptree::BpTreeRef& bptree_ref() const { return bptree_ref_; }

 private:
  SystemKind kind_;
  mem::Cluster& cluster_;
  std::string name_;
  bool scan_jump_ = true;
  bool root_replicas_ = true;
  art::TreeRef tree_ref_;
  bptree::BpTreeRef bptree_ref_;
  std::unique_ptr<core::SphinxRefs> sphinx_refs_;
  std::vector<std::unique_ptr<filter::CuckooFilter>> filters_;      // per CN
  std::vector<std::unique_ptr<filter::PrefixEntryCache>> pecs_;     // per CN
  std::vector<std::unique_ptr<filter::LeafAddressCache>> lacs_;     // per CN
  std::vector<std::unique_ptr<smart::NodeCache>> caches_;           // per CN
};

}  // namespace sphinx::ycsb
