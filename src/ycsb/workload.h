// YCSB workload mixes used in the paper's evaluation (Sec. V-A):
//   A: 50% read / 50% update          (zipfian 0.99)
//   B: 95% read /  5% update          (zipfian 0.99)
//   C: 100% read                      (zipfian 0.99)
//   D: 95% read of latest / 5% insert (latest)
//   E: 95% scan / 5% insert           (zipfian start key, scan len 1..100)
//   F: 50% read / 50% read-modify-write (zipfian 0.99)
//   LOAD: 100% insert
// plus the reclamation-stress mix (not a standard YCSB letter):
//   CHURN: 20% read / 40% insert / 40% remove (uniform). Inserts prefer
//   reusing keys freed by this worker's earlier removes, so a long run
//   cycles blocks through retire -> quarantine -> recycle many times over
//   while the live key count stays roughly flat.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

namespace sphinx::ycsb {

enum class RequestDist { kZipfian, kUniform, kLatest };

struct WorkloadSpec {
  std::string name;
  double read = 0;
  double update = 0;
  double insert = 0;
  double scan = 0;
  double remove = 0;
  double rmw = 0;  // read-modify-write (YCSB-F)
  RequestDist dist = RequestDist::kZipfian;
  double zipf_theta = 0.99;
  uint32_t max_scan_len = 100;
  uint32_t value_size = 64;  // paper default: 64-byte values

  double total() const {
    return read + update + insert + scan + remove + rmw;
  }
};

inline WorkloadSpec standard_workload(char id) {
  WorkloadSpec w;
  switch (id) {
    case 'A':
    case 'a':
      w = {"YCSB-A", 0.50, 0.50, 0.0, 0.0};
      break;
    case 'B':
    case 'b':
      w = {"YCSB-B", 0.95, 0.05, 0.0, 0.0};
      break;
    case 'C':
    case 'c':
      w = {"YCSB-C", 1.00, 0.00, 0.0, 0.0};
      break;
    case 'D':
    case 'd':
      w = {"YCSB-D", 0.95, 0.00, 0.05, 0.0};
      w.dist = RequestDist::kLatest;
      break;
    case 'E':
    case 'e':
      w = {"YCSB-E", 0.00, 0.00, 0.05, 0.95};
      break;
    case 'F':
    case 'f':
      w = {"YCSB-F", 0.50, 0.00, 0.0, 0.0};
      w.rmw = 0.50;
      break;
    case 'L':
    case 'l':
      w = {"LOAD", 0.00, 0.00, 1.00, 0.0};
      break;
    default:
      assert(false && "unknown YCSB workload id");
      w = {"YCSB-C", 1.0, 0.0, 0.0, 0.0};
  }
  return w;
}

// Sustained insert+delete mix that drives the epoch-reclamation pipeline;
// uniform draws so the churn spreads across the tree instead of hammering
// the zipfian head.
inline WorkloadSpec churn_workload() {
  WorkloadSpec w;
  w.name = "CHURN";
  w.read = 0.20;
  w.insert = 0.40;
  w.remove = 0.40;
  w.dist = RequestDist::kUniform;
  return w;
}

}  // namespace sphinx::ycsb
