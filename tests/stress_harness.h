// Multi-threaded stress harness with per-key linearizability checking.
//
// N client threads run a mixed insert/update/lookup/scan workload against
// one index (any ycsb::SystemKind), optionally under a randomized fault
// schedule (fault_injector.h). Correctness is judged two ways:
//
//   * Linearizability keys ("lin" keys, one writer each): the writer
//     publishes started[k] = v before attempting to install version v and
//     completed[k] = v after the install returns. Any reader brackets its
//     search with lo = completed[k] (before) and hi = started[k] (after);
//     a linearizable register must return a version in [lo, hi], and the
//     key -- inserted during load, never removed -- must always be found.
//   * Churn keys (one owner each, inserted/updated/removed at random): the
//     owner tracks the expected final state in a private oracle map, which
//     is checked exactly after all threads quiesce.
//
// Scans additionally assert strict ascending key order. With a fixed seed
// and one thread, a run is bit-for-bit reproducible (verified by
// test_stress.cpp by comparing fault event logs, clocks and reports).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/slice.h"
#include "core/sphinx_index.h"
#include "memnode/cluster.h"
#include "rdma/fault_injector.h"
#include "rdma/stats.h"
#include "test_util.h"
#include "ycsb/systems.h"

namespace sphinx::testing {

struct StressOptions {
  ycsb::SystemKind kind = ycsb::SystemKind::kSphinx;
  int threads = 4;
  int lin_keys_per_thread = 8;
  int churn_keys_per_thread = 64;
  int ops_per_thread = 2000;
  uint64_t seed = 42;
  // When true, installs a randomized background fault schedule (delays,
  // stalls, CAS race losses) derived from `seed`.
  bool faults = false;
  // Number of deterministic MN-outage bursts injected mid-run (rotating
  // target MN, fixed reject budget each).
  int offline_bursts = 0;
  // Probability that any tagged protocol verb kills its client. The worker
  // reincarnates with a fresh endpoint + index client (orphaned locks stay
  // set until survivors' lease watches reclaim them) and resolves the
  // crashed op's outcome by reading the key back before continuing.
  double crash_rate = 0.0;
  // Restricts crash injection to one protocol step (kAny = every tagged
  // site), so each crash window can be stressed in isolation.
  rdma::FaultSite crash_site = rdma::FaultSite::kAny;
  // Sphinx prefix entry cache budget (kAutoPecBudget = default 25% carve,
  // 0 = disabled); see ycsb::SystemSetup.
  uint64_t pec_budget = ycsb::kAutoPecBudget;
  // Sphinx leaf address cache budget (kAutoLacBudget = default 25% carve,
  // 0 = disabled). The default keeps the LAC in every Sphinx stress mix so
  // the speculative-read path soaks under the same schedules as the rest.
  uint64_t lac_budget = ycsb::kAutoLacBudget;
  // Point ops kept in flight per worker (KvIndex::execute_batch). 1 runs
  // the serial op loop; deeper values plan a batch of ops up front and
  // resolve every outcome -- bracket checks, oracle updates, crash
  // resolution -- against the BatchOp done/ok contract. A second mutation
  // of a key already mutated in the current batch is demoted to an
  // unchecked read (batch-internal order is unspecified, so chaining two
  // mutations of one key inside a batch has no serial oracle); scans close
  // the batch and run serially.
  int pipeline_depth = 1;
};

struct StressReport {
  uint64_t lin_violations = 0;         // version outside [lo, hi] / lost key
  uint64_t scan_order_violations = 0;  // scan output not strictly ascending
  uint64_t oracle_mismatches = 0;      // quiesced state != churn oracle
  uint64_t failed_ops = 0;             // op the oracle says must succeed
  uint64_t total_ops = 0;
  uint64_t final_clock_ns = 0;  // sum of worker virtual clocks
  rdma::FaultStats fault_stats;
  // Prefix-entry-cache traffic summed over Sphinx workers (zero for other
  // systems or with the PEC disabled).
  uint64_t pec_hits = 0;
  uint64_t pec_stale = 0;
  uint64_t speculative_wins = 0;
  uint64_t speculative_losses = 0;
  // Staleness observed by verify_quiesced's *second* pass: the first pass
  // purged or refreshed every entry it touched, so a coherent PEC yields 0
  // here -- stale entries self-heal instead of festering.
  uint64_t pec_second_pass_stale = 0;
  // Leaf-address-cache traffic, same discipline as the PEC counters.
  // lac_wrong_value is the tripwire: a speculative leaf read that passed
  // validation but would have returned bytes for the wrong key. Any
  // nonzero count is a coherence bug (clean() fails on it).
  uint64_t lac_hits = 0;
  uint64_t lac_stale = 0;
  uint64_t lac_wrong_value = 0;
  uint64_t lac_second_pass_stale = 0;
  // Pipelined-client traffic (pipeline_depth > 1, Sphinx only): point ops
  // whose leaf reads were merged into shared doorbell rounds, and the
  // number of those fused rounds. Zero in serial runs.
  uint64_t batch_fused_ops = 0;
  uint64_t batch_fused_rounds = 0;
  // Crash-tolerance accounting: injected client deaths, post-crash reads
  // that observed a state outside the crashed op's acceptable set (old xor
  // new -- a torn or lost-ack outcome), mutations that honestly exhausted
  // their retry budget while a dead client's lease ran out (verified
  // no-torn-effect, not counted as failures), and lock-recovery counters
  // summed over every worker incarnation (tree + INHT).
  uint64_t client_crashes = 0;
  uint64_t crash_resolve_violations = 0;
  uint64_t crash_timeouts = 0;
  rdma::RecoveryStats recovery;
  // Epoch-based reclamation pipeline, read off the shared cluster after
  // the run quiesces (memnode/epoch.h): blocks recycled through the
  // freelists, quarantine level vs total flow (a stuck epoch shows as
  // outstanding ~= total), accounting-drift tripwire, epoch progress, and
  // crashed-slot expiries (a dead worker must not pin the epoch forever).
  uint64_t reclaimed_blocks = 0;
  uint64_t retired_bytes_total = 0;
  uint64_t retired_bytes_outstanding = 0;
  uint64_t alloc_underflows = 0;
  uint64_t epoch_advances = 0;
  uint64_t expired_epoch_slots = 0;

  bool clean() const {
    return lin_violations == 0 && scan_order_violations == 0 &&
           oracle_mismatches == 0 && failed_ops == 0 &&
           crash_resolve_violations == 0 && lac_wrong_value == 0;
  }
};

class StressHarness {
 public:
  explicit StressHarness(const StressOptions& options)
      : options_(options),
        cluster_(make_test_cluster()),
        setup_(options.kind, *cluster_, ycsb::kDefaultCacheBudget,
               options.pec_budget, options.lac_budget),
        injector_(options.seed),
        lin_count_(static_cast<size_t>(options.threads) *
                   static_cast<size_t>(options.lin_keys_per_thread)),
        started_(lin_count_),
        completed_(lin_count_) {}

  StressReport run() {
    StressReport report;
    load_lin_keys();

    if (options_.faults) arm_background_schedule();
    if (options_.crash_rate > 0.0) {
      rdma::FaultRule crash;
      crash.kind = rdma::FaultKind::kClientCrash;
      crash.probability = options_.crash_rate;
      crash.site = options_.crash_site;
      injector_.add_rule(crash);
    }
    if (options_.faults || options_.offline_bursts > 0 ||
        options_.crash_rate > 0.0) {
      cluster_->fabric().set_fault_injector(&injector_);
    }

    std::vector<std::map<std::string, std::string>> oracles(
        static_cast<size_t>(options_.threads));
    std::atomic<uint64_t> lin_violations{0};
    std::atomic<uint64_t> scan_violations{0};
    std::atomic<uint64_t> failed_ops{0};
    std::atomic<uint64_t> clock_sum{0};

    std::vector<std::thread> workers;
    for (int t = 0; t < options_.threads; ++t) {
      workers.emplace_back([&, t] {
        worker(t, &oracles[static_cast<size_t>(t)], &lin_violations,
               &scan_violations, &failed_ops, &clock_sum);
      });
    }
    if (options_.offline_bursts > 0) run_outage_controller();
    for (auto& w : workers) w.join();

    // Quiesce: verification happens on a pristine fabric.
    cluster_->fabric().set_fault_injector(nullptr);

    report.lin_violations = lin_violations.load();
    report.scan_order_violations = scan_violations.load();
    report.failed_ops = failed_ops.load();
    report.total_ops = static_cast<uint64_t>(options_.threads) *
                       static_cast<uint64_t>(options_.ops_per_thread);
    report.final_clock_ns = clock_sum.load();
    report.fault_stats = injector_.stats();
    report.pec_hits = pec_hits_.load();
    report.pec_stale = pec_stale_.load();
    report.speculative_wins = spec_wins_.load();
    report.speculative_losses = spec_losses_.load();
    report.lac_hits = lac_hits_.load();
    report.lac_stale = lac_stale_.load();
    report.batch_fused_ops = batch_fused_ops_.load();
    report.batch_fused_rounds = batch_fused_rounds_.load();
    report.client_crashes = crashes_.load();
    report.crash_timeouts = crash_timeouts_.load();
    verify_quiesced(oracles, &report);
    // After verification: crashes near the end of the run leave orphan
    // locks that only the verifier's reads reclaim, and its client stats
    // are salvaged into recovery_ like any other incarnation's.
    report.crash_resolve_violations = crash_resolve_violations_.load();
    // After verify_quiesced so the verifier's own reads are audited too.
    report.lac_wrong_value = lac_wrong_value_.load();
    {
      std::lock_guard<std::mutex> lock(recovery_mu_);
      report.recovery = recovery_;
    }
    // After verification every worker incarnation's allocator has been
    // destroyed (flushing or donating its quarantine), so these are the
    // run's settled reclamation totals.
    report.reclaimed_blocks = cluster_->alloc_stats().reclaimed_blocks();
    report.retired_bytes_total = cluster_->alloc_stats().retired_bytes_total();
    report.retired_bytes_outstanding =
        cluster_->alloc_stats().retired_bytes_outstanding();
    report.alloc_underflows = cluster_->alloc_stats().underflows();
    report.epoch_advances = cluster_->epochs().advances();
    report.expired_epoch_slots = cluster_->epochs().expired_slots();
    return report;
  }

  rdma::FaultInjector& injector() { return injector_; }

 private:
  // Key naming. BpTree only supports fixed 8-byte keys, so every key is the
  // big-endian encoding of a unique id; other systems get readable strings
  // (varied lengths exercise ART path compression).
  bool fixed_keys() const { return options_.kind == ycsb::SystemKind::kBpTree; }

  std::string lin_key(int t, int i) const {
    const uint64_t id =
        static_cast<uint64_t>(t) * 1000000 + static_cast<uint64_t>(i);
    if (fixed_keys()) return encode_u64_key(id);
    return "lin:" + std::to_string(t) + ":" + std::to_string(i);
  }

  std::string churn_key(int t, int i) const {
    const uint64_t id = static_cast<uint64_t>(t) * 1000000 + 500000 +
                        static_cast<uint64_t>(i);
    if (fixed_keys()) return encode_u64_key(id);
    return "churn:" + std::to_string(t) + ":" + std::to_string(i);
  }

  size_t lin_slot(int t, int i) const {
    return static_cast<size_t>(t) *
               static_cast<size_t>(options_.lin_keys_per_thread) +
           static_cast<size_t>(i);
  }

  static std::string lin_value(int64_t version) {
    return "v:" + std::to_string(version);
  }

  static int64_t parse_lin_version(const std::string& value) {
    if (value.size() < 3 || value[0] != 'v' || value[1] != ':') return -1;
    return std::atoll(value.c_str() + 2);
  }

  void load_lin_keys() {
    // Loading happens before the injector is installed; version 0 of every
    // lin key is durably in place when the clock starts.
    rdma::Endpoint ep(cluster_->fabric(), 0, /*metered=*/false);
    mem::RemoteAllocator alloc(*cluster_, ep);
    auto loader = setup_.make_client(0, ep, alloc);
    for (int t = 0; t < options_.threads; ++t) {
      for (int i = 0; i < options_.lin_keys_per_thread; ++i) {
        loader->insert(lin_key(t, i), lin_value(0));
        started_[lin_slot(t, i)].store(0);
        completed_[lin_slot(t, i)].store(0);
      }
    }
  }

  void arm_background_schedule() {
    rdma::FaultRule delay;
    delay.kind = rdma::FaultKind::kDelay;
    delay.probability = 0.05;
    delay.delay_ns = 400;
    injector_.add_rule(delay);

    rdma::FaultRule stall;
    stall.kind = rdma::FaultKind::kStall;
    stall.probability = 0.01;
    stall.delay_ns = 2000;
    injector_.add_rule(stall);

    rdma::FaultRule casfail;
    casfail.kind = rdma::FaultKind::kCasFail;
    casfail.probability = 0.03;
    casfail.site = rdma::FaultSite::kAny;
    injector_.add_rule(casfail);
  }

  void run_outage_controller() {
    // Deterministic self-terminating bursts (countdown rejects), spaced by
    // real sleeps so they land at varied points of the run.
    const uint32_t num_mns = cluster_->config().num_mns;
    for (int b = 0; b < options_.offline_bursts; ++b) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      injector_.arm_mn_offline(static_cast<uint32_t>(b) % num_mns, 250);
    }
  }

  // Identifies the mutation whose outcome became unknown (crash or retry
  // timeout), so the resolution read knows the acceptable state set.
  enum class OpKind { kNone, kLinWrite, kChurnInsert, kChurnUpdate,
                      kChurnRemove };

  // Folds one retiring index client's internal counters into the harness
  // totals (called for every incarnation, including ones that crashed).
  void salvage_client_stats(KvIndex* index) {
    if (index == nullptr) return;
    if (const auto* sx = dynamic_cast<core::SphinxIndex*>(index)) {
      pec_hits_.fetch_add(sx->sphinx_stats().pec_hits);
      pec_stale_.fetch_add(sx->sphinx_stats().pec_stale);
      spec_wins_.fetch_add(sx->sphinx_stats().speculative_wins);
      spec_losses_.fetch_add(sx->sphinx_stats().speculative_losses);
      lac_hits_.fetch_add(sx->sphinx_stats().lac_hits);
      lac_stale_.fetch_add(sx->sphinx_stats().lac_stale);
      lac_wrong_value_.fetch_add(sx->sphinx_stats().lac_wrong_value);
      batch_fused_ops_.fetch_add(sx->sphinx_stats().batch_fused_ops);
      batch_fused_rounds_.fetch_add(sx->sphinx_stats().batch_fused_rounds);
    }
    std::lock_guard<std::mutex> lock(recovery_mu_);
    if (const auto* tree = dynamic_cast<art::RemoteTree*>(index)) {
      recovery_ += tree->tree_stats().recovery;
    }
    if (auto* sx = dynamic_cast<core::SphinxIndex*>(index)) {
      recovery_ += sx->inht().aggregated_stats().recovery;
    }
  }

  void worker(int t, std::map<std::string, std::string>* oracle,
              std::atomic<uint64_t>* lin_violations,
              std::atomic<uint64_t>* scan_violations,
              std::atomic<uint64_t>* failed_ops,
              std::atomic<uint64_t>* clock_sum) {
    // The client triple lives behind pointers so an injected crash can kill
    // it: the dead endpoint is abandoned (locks it held stay orphaned until
    // another client's lease watch expires) and a successor with a distinct
    // fault id and the same virtual clock takes over.
    std::unique_ptr<rdma::Endpoint> ep;
    std::unique_ptr<mem::RemoteAllocator> alloc;
    std::unique_ptr<KvIndex> index;
    uint32_t generation = 0;
    uint64_t clock_carry = 0;
    auto incarnate = [&] {
      if (ep) clock_carry = ep->clock_ns();
      salvage_client_stats(index.get());
      index.reset();
      alloc.reset();
      ep = std::make_unique<rdma::Endpoint>(cluster_->fabric(),
                                            static_cast<uint32_t>(t) % 3, true);
      ep->set_fault_client_id(static_cast<uint32_t>(t) + 1000u * generation);
      ep->set_clock_ns(clock_carry);
      alloc = std::make_unique<mem::RemoteAllocator>(*cluster_, *ep);
      index = setup_.make_client(static_cast<uint32_t>(t) % 3, *ep, *alloc);
    };
    incarnate();
    // Runs `fn` to completion, reincarnating on every injected crash, for
    // the post-crash resolution reads that must eventually succeed.
    auto run_resilient = [&](const std::function<void()>& fn) {
      for (;;) {
        try {
          fn();
          return;
        } catch (const rdma::ClientCrashed&) {
          crashes_.fetch_add(1);
          ++generation;
          incarnate();
        }
      }
    };
    // A crashed op's outcome is frozen at the crash point: either it
    // linearized or it did not, and nothing retries it. Reading the key
    // back (which reclaims any lock the dead client orphaned on that path)
    // must therefore observe exactly the old or the new state.
    auto resolve_lin_write = [&](size_t slot, const std::string& key,
                                 int64_t ver) {
      std::string cur;
      bool found = false;
      run_resilient([&] { found = index->search(key, &cur); });
      if (!found) {
        (*lin_violations)++;  // lin keys are never removed
        return;
      }
      const int64_t got = parse_lin_version(cur);
      if (got == ver) {
        completed_[slot].store(ver);  // the write linearized before the crash
      } else if (got != completed_[slot].load()) {
        crash_resolve_violations_.fetch_add(1);
      }
    };
    // Same resolution for a churn mutation: the observed state must be the
    // old one or the attempted one, and the oracle is re-pointed at it so
    // the quiesced check stays exact.
    auto resolve_churn = [&](OpKind kind, const std::string& key,
                             const std::string& value, const std::string& old) {
      std::string cur;
      bool found = false;
      run_resilient([&] { found = index->search(key, &cur); });
      bool ok = false;
      switch (kind) {
        case OpKind::kChurnInsert:
          ok = !found || cur == value;
          break;
        case OpKind::kChurnUpdate:
          ok = found && (cur == value || cur == old);
          break;
        case OpKind::kChurnRemove:
          ok = !found || cur == old;
          break;
        default:
          break;
      }
      if (!ok) crash_resolve_violations_.fetch_add(1);
      if (found) {
        (*oracle)[key] = cur;
      } else {
        oracle->erase(key);
      }
    };

    Rng rng(options_.seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(t));

    std::vector<int64_t> my_version(
        static_cast<size_t>(options_.lin_keys_per_thread), 0);
    std::string v;
    std::vector<std::pair<std::string, std::string>> scan_out;

    if (options_.pipeline_depth <= 1) {
    for (int op = 0; op < options_.ops_per_thread; ++op) {
      const uint64_t r = rng.next_below(100);
      OpKind op_kind = OpKind::kNone;
      size_t op_slot = 0;
      std::string op_key;
      int64_t op_ver = 0;
      std::string op_value;  // attempted value (insert/update)
      std::string op_old;    // previous oracle value (update/remove)
      try {
      if (r < 35) {
        // Lin read of anyone's key, with the bracket check.
        const int ot = static_cast<int>(rng.next_below(
            static_cast<uint64_t>(options_.threads)));
        const int oi = static_cast<int>(rng.next_below(
            static_cast<uint64_t>(options_.lin_keys_per_thread)));
        const size_t slot = lin_slot(ot, oi);
        const int64_t lo = completed_[slot].load();
        const bool found = index->search(lin_key(ot, oi), &v);
        const int64_t hi = started_[slot].load();
        if (!found) {
          (*lin_violations)++;  // lin keys are never removed
        } else {
          const int64_t ver = parse_lin_version(v);
          if (ver < lo || ver > hi) (*lin_violations)++;
        }
      } else if (r < 50) {
        // Lin write: bump the version of one of my keys.
        const int i = static_cast<int>(rng.next_below(
            static_cast<uint64_t>(options_.lin_keys_per_thread)));
        const size_t slot = lin_slot(t, i);
        const int64_t ver = ++my_version[static_cast<size_t>(i)];
        op_kind = OpKind::kLinWrite;
        op_slot = slot;
        op_key = lin_key(t, i);
        op_ver = ver;
        started_[slot].store(ver);
        if (index->update(lin_key(t, i), lin_value(ver))) {
          completed_[slot].store(ver);
        } else if (options_.crash_rate > 0.0) {
          // Bounded retries may honestly give up while a dead client's
          // lease runs out; like a crash, the outcome is unknown and must
          // resolve to exactly the old or the new state.
          crash_timeouts_.fetch_add(1);
          resolve_lin_write(slot, op_key, ver);
        } else {
          (*failed_ops)++;  // the key exists; update must succeed
        }
      } else if (r < 80) {
        // Churn on my own stripe, mirrored in the oracle.
        const int i = static_cast<int>(rng.next_below(
            static_cast<uint64_t>(options_.churn_keys_per_thread)));
        const std::string k = churn_key(t, i);
        auto it = oracle->find(k);
        op_key = k;
        if (it == oracle->end()) {
          const std::string value = "c:" + std::to_string(op);
          op_kind = OpKind::kChurnInsert;
          op_value = value;
          if (index->insert(k, value)) {
            (*oracle)[k] = value;
          } else if (options_.crash_rate > 0.0) {
            crash_timeouts_.fetch_add(1);
            resolve_churn(op_kind, k, op_value, op_old);
          } else {
            (*failed_ops)++;
          }
        } else if (rng.next_below(3) == 0) {
          op_kind = OpKind::kChurnRemove;
          op_old = it->second;
          if (index->remove(k)) {
            oracle->erase(it);
          } else if (options_.crash_rate > 0.0) {
            crash_timeouts_.fetch_add(1);
            resolve_churn(op_kind, k, op_value, op_old);
          } else {
            (*failed_ops)++;
          }
        } else {
          const std::string value = "c:" + std::to_string(op);
          op_kind = OpKind::kChurnUpdate;
          op_value = value;
          op_old = it->second;
          if (index->update(k, value)) {
            it->second = value;
          } else if (options_.crash_rate > 0.0) {
            crash_timeouts_.fetch_add(1);
            resolve_churn(op_kind, k, op_value, op_old);
          } else {
            (*failed_ops)++;
          }
        }
      } else if (r < 90) {
        // Cross-stripe read: result races with the owner; no assertion.
        const int ot = static_cast<int>(rng.next_below(
            static_cast<uint64_t>(options_.threads)));
        const int oi = static_cast<int>(rng.next_below(
            static_cast<uint64_t>(options_.churn_keys_per_thread)));
        index->search(churn_key(ot, oi), &v);
      } else {
        // Scan from a random lin key: keys must come back strictly
        // ascending no matter what is in flight.
        const int ot = static_cast<int>(rng.next_below(
            static_cast<uint64_t>(options_.threads)));
        scan_out.clear();
        index->scan(lin_key(ot, 0), 16, &scan_out);
        for (size_t j = 1; j < scan_out.size(); ++j) {
          if (scan_out[j - 1].first >= scan_out[j].first) {
            (*scan_violations)++;
          }
        }
      }
      } catch (const rdma::ClientCrashed&) {
        crashes_.fetch_add(1);
        ++generation;
        incarnate();
        // The crashed op is never retried; its fate was sealed at the crash
        // point. Reads carry no state, but a crashed mutation must have
        // either fully linearized or not happened at all -- read the key
        // back (reclaiming any lock the dead client orphaned on it) and
        // check the observed state against the acceptable set.
        if (op_kind == OpKind::kLinWrite) {
          resolve_lin_write(op_slot, op_key, op_ver);
        } else if (op_kind != OpKind::kNone) {
          resolve_churn(op_kind, op_key, op_value, op_old);
        }
      }
    }
    } else {
      // Pipelined mode: plan a batch of point ops locally (publishing
      // started_ for lin writes at plan time -- the bracket [lo-at-plan,
      // hi-after-batch] is a superset of the serial interval, so the
      // linearizability check stays sound), submit one execute_batch call,
      // then resolve every outcome in plan order. Ops the crash left with
      // done == false resolve through the same read-back machinery as a
      // crashed serial op.
      struct Planned {
        BatchOp::Kind bkind = BatchOp::Kind::kSearch;
        OpKind kind = OpKind::kNone;  // mutation class, for resolution
        bool lin_checked = false;     // lin read with bracket check
        size_t slot = 0;
        int64_t lo = 0;    // lin read: completed_ observed at plan time
        int64_t ver = 0;   // lin write version
        std::string key;
        std::string value;  // attempted value (insert/update)
        std::string old;    // previous oracle value (update/remove)
      };
      const size_t depth = static_cast<size_t>(options_.pipeline_depth);
      std::vector<Planned> plan(depth);
      std::vector<BatchOp> batch(depth);
      std::vector<std::string> read_bufs(depth);
      std::set<std::string> batch_muts;  // keys already mutated this batch
      int op = 0;
      while (op < options_.ops_per_thread) {
        size_t planned = 0;
        bool have_scan = false;
        int scan_t = 0;
        batch_muts.clear();
        while (planned < depth &&
               op + static_cast<int>(planned) < options_.ops_per_thread) {
          const uint64_t r = rng.next_below(100);
          Planned& p = plan[planned];
          p = Planned{};
          if (r >= 90) {
            scan_t = static_cast<int>(rng.next_below(
                static_cast<uint64_t>(options_.threads)));
            have_scan = true;
            break;  // scans have no batch form: close and run serially
          }
          if (r < 35) {
            const int ot = static_cast<int>(rng.next_below(
                static_cast<uint64_t>(options_.threads)));
            const int oi = static_cast<int>(rng.next_below(
                static_cast<uint64_t>(options_.lin_keys_per_thread)));
            p.lin_checked = true;
            p.slot = lin_slot(ot, oi);
            p.lo = completed_[p.slot].load();
            p.key = lin_key(ot, oi);
          } else if (r < 50) {
            const int i = static_cast<int>(rng.next_below(
                static_cast<uint64_t>(options_.lin_keys_per_thread)));
            p.key = lin_key(t, i);
            if (batch_muts.count(p.key) != 0) {
              // demoted: already mutated in this batch (unchecked read)
            } else {
              batch_muts.insert(p.key);
              const int64_t ver = ++my_version[static_cast<size_t>(i)];
              p.bkind = BatchOp::Kind::kUpdate;
              p.kind = OpKind::kLinWrite;
              p.slot = lin_slot(t, i);
              p.ver = ver;
              p.value = lin_value(ver);
              started_[p.slot].store(ver);
            }
          } else if (r < 80) {
            const int i = static_cast<int>(rng.next_below(
                static_cast<uint64_t>(options_.churn_keys_per_thread)));
            p.key = churn_key(t, i);
            if (batch_muts.count(p.key) != 0) {
              // demoted: already mutated in this batch (unchecked read)
            } else {
              auto it = oracle->find(p.key);
              if (it == oracle->end()) {
                p.bkind = BatchOp::Kind::kInsert;
                p.kind = OpKind::kChurnInsert;
                p.value = "c:" + std::to_string(op + static_cast<int>(planned));
              } else if (rng.next_below(3) == 0) {
                p.bkind = BatchOp::Kind::kRemove;
                p.kind = OpKind::kChurnRemove;
                p.old = it->second;
              } else {
                p.bkind = BatchOp::Kind::kUpdate;
                p.kind = OpKind::kChurnUpdate;
                p.value = "c:" + std::to_string(op + static_cast<int>(planned));
                p.old = it->second;
              }
              batch_muts.insert(p.key);
            }
          } else {
            const int ot = static_cast<int>(rng.next_below(
                static_cast<uint64_t>(options_.threads)));
            const int oi = static_cast<int>(rng.next_below(
                static_cast<uint64_t>(options_.churn_keys_per_thread)));
            p.key = churn_key(ot, oi);  // cross-stripe unchecked read
          }
          planned++;
        }
        if (planned > 0) {
          // BatchOps carry Slices: build them only now, with every planned
          // key/value string in its final resting place.
          for (size_t i = 0; i < planned; ++i) {
            BatchOp& b = batch[i];
            b.kind = plan[i].bkind;
            b.key = Slice(plan[i].key);
            b.value = Slice(plan[i].value);
            b.value_out = b.kind == BatchOp::Kind::kSearch
                              ? &read_bufs[i]
                              : nullptr;
            b.ok = false;
            b.done = false;
            b.done_clock_ns = 0;
          }
          try {
            index->execute_batch(batch.data(), planned);
          } catch (const rdma::ClientCrashed&) {
            crashes_.fetch_add(1);
            ++generation;
            incarnate();
          }
          for (size_t i = 0; i < planned; ++i) {
            const Planned& p = plan[i];
            const BatchOp& b = batch[i];
            if (p.kind == OpKind::kNone) {
              // Reads abandoned by a crash carry no state to resolve.
              if (b.done && p.lin_checked) {
                const int64_t hi = started_[p.slot].load();
                if (!b.ok) {
                  (*lin_violations)++;  // lin keys are never removed
                } else {
                  const int64_t ver = parse_lin_version(read_bufs[i]);
                  if (ver < p.lo || ver > hi) (*lin_violations)++;
                }
              }
            } else if (p.kind == OpKind::kLinWrite) {
              if (!b.done) {
                resolve_lin_write(p.slot, p.key, p.ver);
              } else if (b.ok) {
                completed_[p.slot].store(p.ver);
              } else if (options_.crash_rate > 0.0) {
                crash_timeouts_.fetch_add(1);
                resolve_lin_write(p.slot, p.key, p.ver);
              } else {
                (*failed_ops)++;  // the key exists; update must succeed
              }
            } else {
              if (!b.done) {
                resolve_churn(p.kind, p.key, p.value, p.old);
              } else if (b.ok) {
                if (p.kind == OpKind::kChurnRemove) {
                  oracle->erase(p.key);
                } else {
                  (*oracle)[p.key] = p.value;
                }
              } else if (options_.crash_rate > 0.0) {
                crash_timeouts_.fetch_add(1);
                resolve_churn(p.kind, p.key, p.value, p.old);
              } else {
                (*failed_ops)++;
              }
            }
          }
          op += static_cast<int>(planned);
        }
        if (have_scan) {
          try {
            scan_out.clear();
            index->scan(lin_key(scan_t, 0), 16, &scan_out);
            for (size_t j = 1; j < scan_out.size(); ++j) {
              if (scan_out[j - 1].first >= scan_out[j].first) {
                (*scan_violations)++;
              }
            }
          } catch (const rdma::ClientCrashed&) {
            crashes_.fetch_add(1);
            ++generation;
            incarnate();
          }
          op += 1;
        }
      }
    }
    clock_sum->fetch_add(ep->clock_ns());
    salvage_client_stats(index.get());
  }

  void verify_quiesced(
      const std::vector<std::map<std::string, std::string>>& oracles,
      StressReport* report) {
    rdma::Endpoint ep(cluster_->fabric(), 0, true);
    mem::RemoteAllocator alloc(*cluster_, ep);
    auto verifier = setup_.make_client(0, ep, alloc);
    std::string v;

    // Every lin key ends at exactly its writer's last completed version.
    for (int t = 0; t < options_.threads; ++t) {
      for (int i = 0; i < options_.lin_keys_per_thread; ++i) {
        if (!verifier->search(lin_key(t, i), &v)) {
          report->lin_violations++;
          continue;
        }
        const int64_t want = completed_[lin_slot(t, i)].load();
        if (parse_lin_version(v) != want) report->lin_violations++;
      }
    }

    // Churn stripes must match their oracles exactly (both directions).
    for (int t = 0; t < options_.threads; ++t) {
      const auto& oracle = oracles[static_cast<size_t>(t)];
      for (int i = 0; i < options_.churn_keys_per_thread; ++i) {
        const std::string k = churn_key(t, i);
        const bool found = verifier->search(k, &v);
        auto it = oracle.find(k);
        if (it == oracle.end()) {
          if (found) report->oracle_mismatches++;
        } else if (!found || v != it->second) {
          report->oracle_mismatches++;
        }
      }
    }

    // Cache self-heal: the pass above purged or refreshed every stale PEC
    // and LAC entry it touched (validation failure -> invalidate_if ->
    // re-adopt / repopulate), so re-reading the same keys must observe
    // zero new staleness in either tier.
    if (auto* sx = dynamic_cast<core::SphinxIndex*>(verifier.get())) {
      const uint64_t pec_stale_before = sx->sphinx_stats().pec_stale;
      const uint64_t lac_stale_before = sx->sphinx_stats().lac_stale;
      for (int t = 0; t < options_.threads; ++t) {
        for (int i = 0; i < options_.lin_keys_per_thread; ++i) {
          verifier->search(lin_key(t, i), &v);
        }
        for (int i = 0; i < options_.churn_keys_per_thread; ++i) {
          verifier->search(churn_key(t, i), &v);
        }
      }
      report->pec_second_pass_stale =
          sx->sphinx_stats().pec_stale - pec_stale_before;
      report->lac_second_pass_stale =
          sx->sphinx_stats().lac_stale - lac_stale_before;
    }
    salvage_client_stats(verifier.get());
  }

  StressOptions options_;
  std::unique_ptr<mem::Cluster> cluster_;
  ycsb::SystemSetup setup_;
  rdma::FaultInjector injector_;

  size_t lin_count_;
  // Indexed by lin_slot(); written by each key's single owner, read by all.
  std::vector<std::atomic<int64_t>> started_;
  std::vector<std::atomic<int64_t>> completed_;
  // Per-worker Sphinx PEC/LAC stats, summed as each worker retires.
  std::atomic<uint64_t> pec_hits_{0};
  std::atomic<uint64_t> pec_stale_{0};
  std::atomic<uint64_t> spec_wins_{0};
  std::atomic<uint64_t> spec_losses_{0};
  std::atomic<uint64_t> lac_hits_{0};
  std::atomic<uint64_t> lac_stale_{0};
  std::atomic<uint64_t> lac_wrong_value_{0};
  std::atomic<uint64_t> batch_fused_ops_{0};
  std::atomic<uint64_t> batch_fused_rounds_{0};
  // Crash-tolerance accounting (see StressReport).
  std::atomic<uint64_t> crashes_{0};
  std::atomic<uint64_t> crash_resolve_violations_{0};
  std::atomic<uint64_t> crash_timeouts_{0};
  std::mutex recovery_mu_;
  rdma::RecoveryStats recovery_;  // summed over all retired incarnations
};

inline StressReport run_stress(const StressOptions& options) {
  return StressHarness(options).run();
}

}  // namespace sphinx::testing
