// Tests for the shared remote-tree engine, exercised through the ART
// baseline: node layout packing, image helpers, and full index semantics
// against a std::map oracle (inserts, searches, updates, deletes, scans,
// path compression, node type switches).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <set>

#include "art/art_index.h"
#include "art/node_image.h"
#include "art/node_layout.h"
#include "common/rng.h"
#include "test_util.h"
#include "ycsb/dataset.h"

namespace sphinx::art {
namespace {

// ---- layout packing -----------------------------------------------------------

TEST(NodeLayout, HeaderPackUnpack) {
  const uint64_t h = pack_inner_header(NodeStatus::kLocked, NodeType::kN48,
                                       123, 0x2ffffffffffULL);
  EXPECT_EQ(header_status(h), NodeStatus::kLocked);
  EXPECT_EQ(header_type(h), NodeType::kN48);
  EXPECT_EQ(header_depth(h), 123);
  EXPECT_EQ(header_prefix_hash42(h), 0x2ffffffffffULL);
  const uint64_t idle = with_status(h, NodeStatus::kIdle);
  EXPECT_EQ(header_status(idle), NodeStatus::kIdle);
  EXPECT_EQ(header_type(idle), NodeType::kN48);
}

TEST(NodeLayout, SlotPackUnpack) {
  const rdma::GlobalAddr addr(2, 0x7fffffc0);
  const uint64_t inner = pack_inner_slot(0xab, NodeType::kN16, addr);
  EXPECT_TRUE(slot_valid(inner));
  EXPECT_FALSE(slot_is_leaf(inner));
  EXPECT_EQ(slot_pkey(inner), 0xab);
  EXPECT_EQ(slot_child_type(inner), NodeType::kN16);
  EXPECT_EQ(slot_addr(inner), addr);

  const uint64_t leaf = pack_leaf_slot(0x01, 63, addr);
  EXPECT_TRUE(slot_is_leaf(leaf));
  EXPECT_EQ(slot_leaf_units(leaf), 63u);
  EXPECT_EQ(slot_addr(leaf), addr);
}

TEST(NodeLayout, LeafHeaderPackUnpack) {
  const uint64_t h = pack_leaf_header(NodeStatus::kIdle, 3, 21, 64);
  EXPECT_EQ(leaf_units(h), 3u);
  EXPECT_EQ(leaf_key_len(h), 21u);
  EXPECT_EQ(leaf_val_len(h), 64u);
}

TEST(NodeLayout, NodeSizes) {
  EXPECT_EQ(inner_node_bytes(NodeType::kN4), 24u + 32u);
  EXPECT_EQ(inner_node_bytes(NodeType::kN256), 24u + 2048u);
  EXPECT_EQ(next_node_type(NodeType::kN4), NodeType::kN16);
  EXPECT_EQ(next_node_type(NodeType::kN48), NodeType::kN256);
  EXPECT_EQ(next_node_type(NodeType::kN256), NodeType::kN256);
  EXPECT_EQ(leaf_units_for(9, 64), 2u);   // 8 + 16 + 64 + 8 = 96 -> 2x64
  EXPECT_EQ(leaf_units_for(33, 64), 2u);  // 8 + 40 + 64 + 8 = 120 -> 2x64
}

// ---- images -------------------------------------------------------------------

TEST(InnerImage, CreateAndFindSlots) {
  InnerImage img = InnerImage::create(NodeType::kN4, Slice("abc"));
  EXPECT_EQ(img.depth(), 3u);
  EXPECT_EQ(img.status(), NodeStatus::kIdle);
  EXPECT_EQ(img.prefix_hash_full(), prefix_hash(Slice("abc")));
  EXPECT_EQ(img.find_pkey('x'), -1);
  EXPECT_EQ(img.find_free('x'), 0);
  img.set_slot(0, pack_leaf_slot('x', 1, rdma::GlobalAddr(0, 64)));
  EXPECT_EQ(img.find_pkey('x'), 0);
  EXPECT_EQ(img.find_free('y'), 1);
  EXPECT_EQ(img.valid_slot_count(), 1u);
}

TEST(InnerImage, N256DirectIndex) {
  InnerImage img = InnerImage::create(NodeType::kN256, Slice("q"));
  img.set_slot(200, pack_leaf_slot(200, 1, rdma::GlobalAddr(0, 64)));
  EXPECT_EQ(img.find_pkey(200), 200);
  EXPECT_EQ(img.find_free(200), -1);
  EXPECT_EQ(img.find_free(100), 100);
}

TEST(InnerImage, FragConsistency) {
  // depth 10, fragment stores the last 6 prefix bytes: "efghij".
  const std::string prefix = "abcdefghij";
  InnerImage img = InnerImage::create(NodeType::kN4, Slice(prefix));
  TerminatedKey good(Slice("abcdefghijXYZ"));
  TerminatedKey bad(Slice("abcdefghiZXYZ"));
  TerminatedKey unverifiable(Slice("ZZcdefghijXYZ"));  // differs before frag
  EXPECT_TRUE(img.frag_consistent(good, 3));
  EXPECT_FALSE(img.frag_consistent(bad, 3));
  // The divergence is before the fragment window: optimistically accepted.
  EXPECT_TRUE(img.frag_consistent(unverifiable, 3));
}

TEST(InnerImage, GrownCopyPreservesSlots) {
  InnerImage img = InnerImage::create(NodeType::kN4, Slice("pq"));
  for (uint8_t i = 0; i < 4; ++i) {
    img.set_slot(i, pack_leaf_slot(static_cast<uint8_t>('a' + i), 1,
                                   rdma::GlobalAddr(0, 64 * (i + 1))));
  }
  InnerImage big = img.grown_copy(NodeType::kN16);
  EXPECT_EQ(big.type(), NodeType::kN16);
  EXPECT_EQ(big.depth(), img.depth());
  EXPECT_EQ(big.valid_slot_count(), 4u);
  for (uint8_t i = 0; i < 4; ++i) {
    EXPECT_GE(big.find_pkey(static_cast<uint8_t>('a' + i)), 0);
  }
  InnerImage huge = big.grown_copy(NodeType::kN256);
  EXPECT_EQ(huge.find_pkey('c'), 'c');
}

TEST(LeafImage, BuildVerifyUpdate) {
  LeafImage leaf = LeafImage::build(Slice("hello\0", 6), Slice("world"), 1);
  EXPECT_TRUE(leaf.checksum_ok());
  EXPECT_EQ(leaf.key().size(), 6u);
  EXPECT_EQ(leaf.value().to_string(), "world");
  leaf.replace_value(Slice("mars!"));
  EXPECT_TRUE(leaf.checksum_ok());
  EXPECT_EQ(leaf.value().to_string(), "mars!");
  // Corruption is detected.
  leaf.buf()[10] ^= 0xff;
  EXPECT_FALSE(leaf.checksum_ok());
}

TEST(LeafImage, ChecksumIgnoresStatusBits) {
  LeafImage leaf = LeafImage::build(Slice("k\0", 2), Slice("v"), 1);
  uint64_t h = leaf.header();
  h = with_status(h, NodeStatus::kLocked);
  std::memcpy(leaf.buf().data(), &h, 8);
  EXPECT_TRUE(leaf.checksum_ok());
  EXPECT_EQ(leaf.status(), NodeStatus::kLocked);
}

// ---- full index semantics vs oracle --------------------------------------------

class ArtIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = testing::make_test_cluster();
    ref_ = create_tree(*cluster_);
    endpoint_ = std::make_unique<rdma::Endpoint>(cluster_->fabric(), 0, true);
    allocator_ = std::make_unique<mem::RemoteAllocator>(*cluster_, *endpoint_);
    index_ = std::make_unique<ArtIndex>(*cluster_, *endpoint_, *allocator_,
                                        ref_);
  }

  std::unique_ptr<mem::Cluster> cluster_;
  TreeRef ref_;
  std::unique_ptr<rdma::Endpoint> endpoint_;
  std::unique_ptr<mem::RemoteAllocator> allocator_;
  std::unique_ptr<ArtIndex> index_;
};

TEST_F(ArtIndexTest, InsertSearchSingle) {
  EXPECT_TRUE(index_->insert("hello", "world"));
  std::string v;
  EXPECT_TRUE(index_->search("hello", &v));
  EXPECT_EQ(v, "world");
  EXPECT_FALSE(index_->search("hell", &v));
  EXPECT_FALSE(index_->search("helloo", &v));
  EXPECT_FALSE(index_->search("x", &v));
}

TEST_F(ArtIndexTest, DuplicateInsertRejected) {
  EXPECT_TRUE(index_->insert("k", "v1"));
  EXPECT_FALSE(index_->insert("k", "v2"));
  std::string v;
  EXPECT_TRUE(index_->search("k", &v));
  EXPECT_EQ(v, "v1");
}

TEST_F(ArtIndexTest, PrefixKeysCoexist) {
  // Keys that are prefixes of each other exercise the terminator logic.
  const std::vector<std::string> keys = {"a",   "ab",   "abc", "abcd",
                                         "abd", "abde", "b"};
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->insert(k, "v:" + k)) << k;
  }
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v)) << k;
    EXPECT_EQ(v, "v:" + k);
  }
  EXPECT_FALSE(index_->search("abcde", &v));
}

TEST_F(ArtIndexTest, UpdateChangesValue) {
  ASSERT_TRUE(index_->insert("key", "old"));
  EXPECT_TRUE(index_->update("key", "new"));
  std::string v;
  ASSERT_TRUE(index_->search("key", &v));
  EXPECT_EQ(v, "new");
  EXPECT_FALSE(index_->update("missing", "x"));
}

TEST_F(ArtIndexTest, UpdateGrowingValueGoesOutOfPlace) {
  ASSERT_TRUE(index_->insert("key", "small"));
  const std::string big(300, 'B');  // forces a bigger leaf
  EXPECT_TRUE(index_->update("key", big));
  std::string v;
  ASSERT_TRUE(index_->search("key", &v));
  EXPECT_EQ(v, big);
  // And back down (in-place within the bigger leaf).
  EXPECT_TRUE(index_->update("key", "tiny"));
  ASSERT_TRUE(index_->search("key", &v));
  EXPECT_EQ(v, "tiny");
}

TEST_F(ArtIndexTest, RemoveThenReinsert) {
  ASSERT_TRUE(index_->insert("key", "v1"));
  EXPECT_TRUE(index_->remove("key"));
  std::string v;
  EXPECT_FALSE(index_->search("key", &v));
  EXPECT_FALSE(index_->remove("key"));
  EXPECT_FALSE(index_->update("key", "x"));
  EXPECT_TRUE(index_->insert("key", "v2"));
  ASSERT_TRUE(index_->search("key", &v));
  EXPECT_EQ(v, "v2");
}

TEST_F(ArtIndexTest, TypeSwitchesUnderFanout) {
  // 200 distinct first bytes under a shared prefix force N4->N16->N48->N256.
  for (int i = 0; i < 200; ++i) {
    std::string k = "p";
    k.push_back(static_cast<char>(i + 1));
    k += "suffix";
    ASSERT_TRUE(index_->insert(k, std::to_string(i))) << i;
  }
  EXPECT_GE(index_->tree_stats().type_switches, 3u);
  std::string v;
  for (int i = 0; i < 200; ++i) {
    std::string k = "p";
    k.push_back(static_cast<char>(i + 1));
    k += "suffix";
    ASSERT_TRUE(index_->search(k, &v)) << i;
    EXPECT_EQ(v, std::to_string(i));
  }
}

TEST_F(ArtIndexTest, OracleRandomMixedOps) {
  std::map<std::string, std::string> oracle;
  Rng rng(2024);
  const std::vector<std::string> keys = testing::mixed_keys(800);
  for (int op = 0; op < 8000; ++op) {
    const std::string& k = keys[rng.next_below(keys.size())];
    switch (rng.next_below(4)) {
      case 0: {  // insert
        const std::string v = "v" + std::to_string(op);
        const bool expect = oracle.emplace(k, v).second;
        EXPECT_EQ(index_->insert(k, v), expect) << k;
        break;
      }
      case 1: {  // update
        const std::string v = "u" + std::to_string(op);
        const bool expect = oracle.count(k) > 0;
        EXPECT_EQ(index_->update(k, v), expect) << k;
        if (expect) oracle[k] = v;
        break;
      }
      case 2: {  // remove
        const bool expect = oracle.erase(k) > 0;
        EXPECT_EQ(index_->remove(k), expect) << k;
        break;
      }
      default: {  // search
        std::string v;
        const bool expect = oracle.count(k) > 0;
        ASSERT_EQ(index_->search(k, &v), expect) << k;
        if (expect) {
          EXPECT_EQ(v, oracle[k]);
        }
        break;
      }
    }
  }
  EXPECT_EQ(index_->tree_stats().ops_failed, 0u);
  // Full verification pass.
  std::string v;
  for (const auto& [k, val] : oracle) {
    ASSERT_TRUE(index_->search(k, &v)) << k;
    EXPECT_EQ(v, val);
  }
}

TEST_F(ArtIndexTest, ScanReturnsSortedRange) {
  std::map<std::string, std::string> oracle;
  const std::vector<std::string> keys = testing::mixed_keys(500);
  for (const auto& k : keys) {
    index_->insert(k, "v:" + k);
    oracle[k] = "v:" + k;
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& start : {std::string("order/"), std::string("user:"),
                            std::string("a"), keys[42]}) {
    const size_t n = index_->scan(start, 25, &out);
    auto it = oracle.lower_bound(start);
    size_t expected = 0;
    for (; it != oracle.end() && expected < 25; ++it, ++expected) {
      ASSERT_GT(out.size(), expected);
      EXPECT_EQ(out[expected].first, it->first);
      EXPECT_EQ(out[expected].second, it->second);
    }
    EXPECT_EQ(n, expected);
  }
}

TEST_F(ArtIndexTest, ScanPastEndReturnsShort) {
  index_->insert("aaa", "1");
  index_->insert("zzz", "2");
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_EQ(index_->scan("zzz", 10, &out), 1u);
  EXPECT_EQ(out[0].first, "zzz");
  EXPECT_EQ(index_->scan("zzzz", 10, &out), 0u);
}

TEST_F(ArtIndexTest, ScanSkipsDeleted) {
  for (char c = 'a'; c <= 'j'; ++c) {
    index_->insert(std::string(1, c), "v");
  }
  index_->remove("c");
  index_->remove("f");
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_EQ(index_->scan("a", 100, &out), 8u);
  for (const auto& [k, v] : out) {
    EXPECT_NE(k, "c");
    EXPECT_NE(k, "f");
  }
}

TEST_F(ArtIndexTest, U64KeysScanInNumericOrder) {
  std::set<uint64_t> values;
  Rng rng(7);
  while (values.size() < 300) values.insert(rng.next_u64());
  for (uint64_t v : values) {
    ASSERT_TRUE(index_->insert(encode_u64_key(v), std::to_string(v)));
  }
  std::vector<std::pair<std::string, std::string>> out;
  const uint64_t mid = *std::next(values.begin(), 150);
  index_->scan(encode_u64_key(mid), 50, &out);
  ASSERT_EQ(out.size(), 50u);
  auto it = values.find(mid);
  for (const auto& [k, v] : out) {
    EXPECT_EQ(decode_u64_key(Slice(k)), *it);
    ++it;
  }
}

TEST_F(ArtIndexTest, EmailDatasetRoundTrip) {
  const auto keys = ycsb::generate_email_keys(2000, 3);
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->insert(k, "mail")) << k;
  }
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v)) << k;
  }
  EXPECT_EQ(index_->tree_stats().ops_failed, 0u);
}

TEST_F(ArtIndexTest, SearchCostsOneRttPerLevel) {
  // The ART-on-DM cost model: root read + one read per level + leaf read.
  ASSERT_TRUE(index_->insert("abcdef", "v"));
  const uint64_t before = endpoint_->stats().round_trips;
  std::string v;
  ASSERT_TRUE(index_->search("abcdef", &v));
  // Single key under the root: root + leaf = 2 round trips.
  EXPECT_EQ(endpoint_->stats().round_trips - before, 2u);
}

TEST_F(ArtIndexTest, MemoryAccountingGrowsAndShrinks) {
  mem::AllocStats& stats = cluster_->alloc_stats();
  const uint64_t inner0 = stats.requested_bytes(mem::AllocTag::kInnerNode);
  const uint64_t leaf0 = stats.requested_bytes(mem::AllocTag::kLeaf);
  for (int i = 0; i < 100; ++i) {
    index_->insert("mem" + std::to_string(i), "v");
  }
  EXPECT_GT(stats.requested_bytes(mem::AllocTag::kLeaf), leaf0);
  EXPECT_GT(stats.requested_bytes(mem::AllocTag::kInnerNode), inner0);
  const uint64_t leaf_after = stats.requested_bytes(mem::AllocTag::kLeaf);
  for (int i = 0; i < 100; ++i) {
    index_->remove("mem" + std::to_string(i));
  }
  EXPECT_LT(stats.requested_bytes(mem::AllocTag::kLeaf), leaf_after);
}

// ---- root replication (DESIGN.md Sec. 15) -----------------------------------

TEST_F(ArtIndexTest, RootReplicasCreatedOnEveryMn) {
  ASSERT_EQ(ref_.root_replicas.size(), 3u);
  std::set<uint32_t> mns;
  for (const rdma::GlobalAddr& rep : ref_.root_replicas) mns.insert(rep.mn());
  EXPECT_EQ(mns.size(), 3u);
  // The vector is indexed by MN id; the primary's entry is the primary.
  EXPECT_EQ(ref_.root_replicas[ref_.root.mn()], ref_.root);
  // All copies start byte-identical (the empty Node-256 root).
  rdma::Endpoint loader = cluster_->make_loader_endpoint();
  InnerImage primary = InnerImage::create(NodeType::kN256, Slice());
  loader.read(ref_.root, primary.raw(), inner_node_bytes(NodeType::kN256));
  for (const rdma::GlobalAddr& rep_addr : ref_.root_replicas) {
    if (rep_addr == ref_.root) continue;
    InnerImage rep = InnerImage::create(NodeType::kN256, Slice());
    loader.read(rep_addr, rep.raw(), inner_node_bytes(NodeType::kN256));
    EXPECT_EQ(std::memcmp(rep.raw(), primary.raw(),
                          inner_node_bytes(NodeType::kN256)),
              0);
  }
}

TEST_F(ArtIndexTest, RootSlotInstallsPropagateToReplicas) {
  // Distinct first bytes populate distinct root slots: each install (and
  // each later leaf -> inner replacement) must reach every replica.
  for (int i = 0; i < 40; ++i) {
    const std::string k = std::string(1, static_cast<char>('0' + i)) + "key";
    ASSERT_TRUE(index_->insert(k, "v:" + k)) << k;
    ASSERT_TRUE(index_->insert(k + "2", "w:" + k)) << k;  // forces a split
  }
  EXPECT_GT(index_->tree_stats().root_replica_propagations, 0u);
  rdma::Endpoint loader = cluster_->make_loader_endpoint();
  InnerImage primary = InnerImage::create(NodeType::kN256, Slice());
  loader.read(ref_.root, primary.raw(), inner_node_bytes(NodeType::kN256));
  for (const rdma::GlobalAddr& rep_addr : ref_.root_replicas) {
    if (rep_addr == ref_.root) continue;
    InnerImage rep = InnerImage::create(NodeType::kN256, Slice());
    loader.read(rep_addr, rep.raw(), inner_node_bytes(NodeType::kN256));
    for (uint32_t s = 0; s < 256; ++s) {
      EXPECT_EQ(rep.slot(s), primary.slot(s)) << "slot " << s;
    }
  }
}

TEST_F(ArtIndexTest, ReplicaRoutedSearchesSpreadAndStayCorrect) {
  const auto keys = testing::mixed_keys(300);
  for (const auto& k : keys) ASSERT_TRUE(index_->insert(k, "v:" + k));
  std::string v;
  for (int round = 0; round < 3; ++round) {
    for (const auto& k : keys) {
      ASSERT_TRUE(index_->search(k, &v)) << k;
      EXPECT_EQ(v, "v:" + k);
    }
  }
  EXPECT_FALSE(index_->search("not-a-key-anywhere", &v));
  const TreeStats& st = index_->tree_stats();
  // Round-robin over 3 MNs: roughly 2/3 of root-entry descents go through
  // a replica, the rest through the primary.
  EXPECT_GT(st.root_replica_reads, 0u);
  EXPECT_GT(st.root_primary_reads, 0u);
  // A single client's propagations complete under the root lock before its
  // next descent, so its replicas never lag itself: no rechecks.
  EXPECT_EQ(st.root_replica_rechecks, 0u);
}

TEST_F(ArtIndexTest, StaleReplicaNeverYieldsFalseVerdicts) {
  ASSERT_TRUE(index_->insert("stale-key", "stale-val"));
  // Forge the failure mode replication must absorb: a propagation that
  // never landed (e.g. the installer crashed after its slot CAS). Clear
  // the key's root slot in every replica, leaving only the primary truthful.
  rdma::Endpoint loader = cluster_->make_loader_endpoint();
  const uint64_t zero = 0;
  for (const rdma::GlobalAddr& rep : ref_.root_replicas) {
    if (rep == ref_.root) continue;
    loader.write(rep.plus(kInnerHeaderBytes + uint64_t{'s'} * 8), &zero,
                 sizeof(zero));
  }
  // Round-robin sends most entries through a stale replica; its kNoSlot
  // verdict must be re-verified through the primary, never reported.
  std::string v;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(index_->search("stale-key", &v)) << "attempt " << i;
    EXPECT_EQ(v, "stale-val");
  }
  EXPECT_GT(index_->tree_stats().root_replica_rechecks, 0u);
  // Mutations route the same way: the update and remove land on the
  // primary regardless of which root image the first attempt read.
  EXPECT_TRUE(index_->update("stale-key", "v2"));
  ASSERT_TRUE(index_->search("stale-key", &v));
  EXPECT_EQ(v, "v2");
  EXPECT_TRUE(index_->remove("stale-key"));
  EXPECT_FALSE(index_->search("stale-key", &v));
}

}  // namespace
}  // namespace sphinx::art
