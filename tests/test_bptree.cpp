// Tests for the Sherman-style B+ tree baseline: node splits up the tree,
// leaf-chain scans, fence-guided retries, concurrent clients, and oracle
// semantics over u64 keys.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "bptree/bptree.h"
#include "common/rng.h"
#include "test_util.h"
#include "ycsb/dataset.h"

namespace sphinx::bptree {
namespace {

class BpTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = testing::make_test_cluster();
    ref_ = create_bptree(*cluster_);
    endpoint_ = std::make_unique<rdma::Endpoint>(cluster_->fabric(), 0, true);
    allocator_ = std::make_unique<mem::RemoteAllocator>(*cluster_, *endpoint_);
    index_ = std::make_unique<BpTreeIndex>(*cluster_, *endpoint_, *allocator_,
                                           ref_);
  }

  std::string key(uint64_t v) const { return encode_u64_key(v); }

  std::unique_ptr<mem::Cluster> cluster_;
  BpTreeRef ref_;
  std::unique_ptr<rdma::Endpoint> endpoint_;
  std::unique_ptr<mem::RemoteAllocator> allocator_;
  std::unique_ptr<BpTreeIndex> index_;
};

TEST_F(BpTreeTest, EmptyTreeBehaves) {
  std::string v;
  EXPECT_FALSE(index_->search(key(1), &v));
  EXPECT_FALSE(index_->remove(key(1)));
  EXPECT_FALSE(index_->update(key(1), "x"));
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_EQ(index_->scan(key(0), 10, &out), 0u);
}

TEST_F(BpTreeTest, SingleLeafOps) {
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(index_->insert(key(i * 7), "v" + std::to_string(i)));
  }
  EXPECT_FALSE(index_->insert(key(7), "dup"));
  std::string v;
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(index_->search(key(i * 7), &v));
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
  EXPECT_FALSE(index_->search(key(1), &v));
  EXPECT_TRUE(index_->update(key(21), "updated"));
  ASSERT_TRUE(index_->search(key(21), &v));
  EXPECT_EQ(v, "updated");
  EXPECT_TRUE(index_->remove(key(21)));
  EXPECT_FALSE(index_->search(key(21), &v));
  EXPECT_EQ(index_->stats().leaf_splits, 0u);
}

TEST_F(BpTreeTest, LeafAndRootSplits) {
  // > 12 keys forces a leaf split and a root split (leaf was root).
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(index_->insert(key(i), std::to_string(i))) << i;
  }
  EXPECT_GT(index_->stats().leaf_splits, 0u);
  EXPECT_GE(index_->stats().root_splits, 1u);
  std::string v;
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(index_->search(key(i), &v)) << i;
    EXPECT_EQ(v, std::to_string(i));
  }
}

TEST_F(BpTreeTest, MultiLevelGrowth) {
  // 12 * 61 = 732 entries per two-level tree; 20K keys forces three+
  // levels and internal splits.
  Rng rng(5);
  std::set<uint64_t> inserted;
  while (inserted.size() < 20000) {
    const uint64_t k = rng.next_u64() >> 1;
    if (inserted.insert(k).second) {
      ASSERT_TRUE(index_->insert(key(k), "v"));
    }
  }
  EXPECT_GT(index_->stats().internal_splits, 0u);
  EXPECT_EQ(index_->stats().ops_failed, 0u);
  std::string v;
  uint64_t checked = 0;
  for (uint64_t k : inserted) {
    ASSERT_TRUE(index_->search(key(k), &v)) << k;
    if (++checked >= 5000) break;  // spot check
  }
}

TEST_F(BpTreeTest, OracleMixedOps) {
  std::map<uint64_t, std::string> oracle;
  Rng rng(77);
  for (int op = 0; op < 12000; ++op) {
    const uint64_t k = rng.next_below(3000);
    switch (rng.next_below(4)) {
      case 0: {
        const std::string v = "v" + std::to_string(op);
        EXPECT_EQ(index_->insert(key(k), v), oracle.emplace(k, v).second);
        break;
      }
      case 1: {
        const std::string v = "u" + std::to_string(op);
        const bool expect = oracle.count(k) > 0;
        EXPECT_EQ(index_->update(key(k), v), expect);
        if (expect) oracle[k] = v;
        break;
      }
      case 2:
        EXPECT_EQ(index_->remove(key(k)), oracle.erase(k) > 0);
        break;
      default: {
        std::string v;
        const bool expect = oracle.count(k) > 0;
        ASSERT_EQ(index_->search(key(k), &v), expect) << k;
        if (expect) {
          EXPECT_EQ(v, oracle[k]);
        }
        break;
      }
    }
  }
  EXPECT_EQ(index_->stats().ops_failed, 0u);
}

TEST_F(BpTreeTest, ScanWalksLeafChainInOrder) {
  std::set<uint64_t> keys;
  Rng rng(9);
  while (keys.size() < 2000) keys.insert(rng.next_u64() >> 4);
  for (uint64_t k : keys) {
    ASSERT_TRUE(index_->insert(key(k), std::to_string(k)));
  }
  std::vector<std::pair<std::string, std::string>> out;
  const uint64_t mid = *std::next(keys.begin(), 1000);
  EXPECT_EQ(index_->scan(key(mid), 100, &out), 100u);
  auto it = keys.find(mid);
  for (const auto& [k, v] : out) {
    EXPECT_EQ(decode_u64_key(Slice(k)), *it);
    ++it;
  }
  // Range scan inclusive on both ends.
  auto lo_it = keys.begin();
  std::advance(lo_it, 100);
  auto hi_it = keys.begin();
  std::advance(hi_it, 150);
  EXPECT_EQ(index_->scan_range(key(*lo_it), key(*hi_it), 1000, &out), 51u);
}

TEST_F(BpTreeTest, ScanIsRttCheap) {
  // Leaf chaining: a 100-entry scan should cost ~(100/12 + depth) reads,
  // far fewer than one round trip per entry.
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(index_->insert(key(i), "v"));
  }
  std::vector<std::pair<std::string, std::string>> out;
  const uint64_t before = endpoint_->stats().round_trips;
  EXPECT_EQ(index_->scan(key(1000), 100, &out), 100u);
  EXPECT_LT(endpoint_->stats().round_trips - before, 25u);
}

TEST_F(BpTreeTest, InternalCacheCutsRoundTrips) {
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(index_->insert(key(i), "v"));
  }
  std::string v;
  for (uint64_t i = 0; i < 1000; ++i) {  // warm the internal cache
    ASSERT_TRUE(index_->search(key(i), &v));
  }
  const uint64_t before = endpoint_->stats().round_trips;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(index_->search(key(i), &v));
  }
  // With internal nodes cached a search is ~1 leaf read.
  const double rtts =
      static_cast<double>(endpoint_->stats().round_trips - before) / 1000.0;
  EXPECT_LT(rtts, 1.6);
}

TEST_F(BpTreeTest, StaleCacheHealsAfterRemoteSplits) {
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(index_->insert(key(i * 1000), "v"));
  }
  std::string v;
  ASSERT_TRUE(index_->search(key(0), &v));  // warm cache

  // A second client grows the tree massively.
  rdma::Endpoint ep2(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  BpTreeIndex peer(*cluster_, ep2, alloc2, ref_);
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(peer.insert(key(i * 1000 + 1), "p"));
  }
  // The first client's cached routing is stale; fence checks must heal it.
  for (uint64_t i = 0; i < 5000; i += 97) {
    ASSERT_TRUE(index_->search(key(i * 1000 + 1), &v)) << i;
  }
}

TEST_F(BpTreeTest, ConcurrentInsertersAllLand) {
  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 3000;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rdma::Endpoint ep(cluster_->fabric(), t % 3, true);
      mem::RemoteAllocator alloc(*cluster_, ep);
      BpTreeIndex idx(*cluster_, ep, alloc, ref_);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t k = static_cast<uint64_t>(t) * 1'000'000 + i;
        if (!idx.insert(encode_u64_key(k), "v")) failures++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  std::string v;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; i += 13) {
      const uint64_t k = static_cast<uint64_t>(t) * 1'000'000 + i;
      ASSERT_TRUE(index_->search(encode_u64_key(k), &v)) << t << ":" << i;
    }
  }
}

TEST_F(BpTreeTest, ConcurrentMixedChurn) {
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rdma::Endpoint ep(cluster_->fabric(), t % 3, true);
      mem::RemoteAllocator alloc(*cluster_, ep);
      BpTreeIndex idx(*cluster_, ep, alloc, ref_);
      Rng rng(t);
      const uint64_t base = static_cast<uint64_t>(t) << 32;
      for (int i = 0; i < 1500; ++i) {
        const uint64_t k = base + rng.next_below(500);
        switch (rng.next_below(4)) {
          case 0:
            idx.insert(encode_u64_key(k), "v");
            break;
          case 1:
            idx.update(encode_u64_key(k), "u");
            break;
          case 2:
            idx.remove(encode_u64_key(k));
            break;
          default: {
            std::string v;
            idx.search(encode_u64_key(k), &v);
            break;
          }
        }
      }
      if (idx.stats().ops_failed != 0) failures++;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace sphinx::bptree
