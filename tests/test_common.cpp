// Unit tests for src/common: hashing, slices, distributions, histograms,
// table printing, flags.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/dist.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/slice.h"
#include "common/table_printer.h"

namespace sphinx {
namespace {

// ---- xxhash64 ----------------------------------------------------------------

TEST(XxHash, KnownVectors) {
  // Reference values from the canonical XXH64 implementation.
  EXPECT_EQ(xxhash64("", 0, 0), 0xef46db3751d8e999ULL);
  EXPECT_EQ(xxhash64("a", 1, 0), 0xd24ec4f1a98c6e5bULL);
  EXPECT_EQ(xxhash64("abc", 3, 0), 0x44bc2cf5ad770999ULL);
}

TEST(XxHash, SeedChangesValue) {
  const char* data = "hello world";
  EXPECT_NE(xxhash64(data, 11, 0), xxhash64(data, 11, 1));
}

TEST(XxHash, LongInputsStable) {
  std::string data(1024, 'x');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  const uint64_t h1 = xxhash64(data.data(), data.size(), 7);
  const uint64_t h2 = xxhash64(data.data(), data.size(), 7);
  EXPECT_EQ(h1, h2);
  // Different lengths must differ (catches tail-handling bugs).
  std::set<uint64_t> hashes;
  for (size_t len = 0; len <= 64; ++len) {
    hashes.insert(xxhash64(data.data(), len, 7));
  }
  EXPECT_EQ(hashes.size(), 65u);
}

// ---- crc32c ------------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  // "123456789" -> 0xe3069283 (standard CRC32C check value).
  EXPECT_EQ(crc32c("123456789", 9), 0xe3069283u);
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::string data = "The quick brown fox jumps over the lazy dog";
  const uint32_t base = crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte += 5) {
    std::string mutated = data;
    mutated[byte] ^= 0x10;
    EXPECT_NE(crc32c(mutated.data(), mutated.size()), base)
        << "flip at byte " << byte;
  }
}

TEST(Crc32c, SeedChaining) {
  const char* data = "abcdefgh12345678";
  const uint32_t whole = crc32c(data, 16);
  const uint32_t part = crc32c(data + 8, 8, crc32c(data, 8));
  EXPECT_EQ(whole, part);
}

// ---- slices ------------------------------------------------------------------

TEST(Slice, CompareAndPrefix) {
  Slice a("abc"), b("abd"), c("abcde");
  EXPECT_LT(a.compare(b), 0);
  EXPECT_LT(a.compare(c), 0);
  EXPECT_EQ(a.compare(Slice("abc")), 0);
  EXPECT_TRUE(c.starts_with(a));
  EXPECT_FALSE(a.starts_with(c));
  EXPECT_EQ(a.common_prefix_len(b), 2u);
  EXPECT_EQ(a.common_prefix_len(c), 3u);
  EXPECT_EQ(Slice().common_prefix_len(a), 0u);
}

TEST(Slice, U64KeyEncodingPreservesOrder) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.next_u64();
    const uint64_t y = rng.next_u64();
    const std::string kx = encode_u64_key(x);
    const std::string ky = encode_u64_key(y);
    EXPECT_EQ(x < y, Slice(kx).compare(Slice(ky)) < 0);
    EXPECT_EQ(decode_u64_key(Slice(kx)), x);
  }
}

// ---- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
  }
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(1);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// ---- distributions -----------------------------------------------------------

TEST(Zipfian, SkewConcentratesOnHotItems) {
  const uint64_t n = 100000;
  ZipfianDistribution dist(n, 0.99);
  Rng rng(5);
  uint64_t hot = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    if (dist.next(rng) < n / 100) hot++;  // hottest 1%
  }
  // With theta=0.99 the hottest 1% should absorb a large share of draws.
  EXPECT_GT(static_cast<double>(hot) / draws, 0.4);
}

TEST(Zipfian, AllIndexesInRange) {
  const uint64_t n = 1000;
  ZipfianDistribution dist(n, 0.99);
  Rng rng(6);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_LT(dist.next(rng), n);
  }
}

TEST(ScrambledZipfian, SpreadsHotItems) {
  const uint64_t n = 100000;
  ScrambledZipfianDistribution dist(n, 0.99);
  Rng rng(7);
  // The most frequent item should no longer be index 0.
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[dist.next(rng)]++;
  uint64_t argmax = 0;
  int best = 0;
  for (auto& [idx, c] : counts) {
    if (c > best) {
      best = c;
      argmax = idx;
    }
  }
  EXPECT_NE(argmax, 0u);
  EXPECT_GT(best, 50);  // skew survives scrambling
}

TEST(Latest, PrefersRecentlyInserted) {
  LatestDistribution dist(1000);
  Rng rng(8);
  uint64_t recent = 0;
  for (int i = 0; i < 20000; ++i) {
    if (dist.next(rng) >= 990) recent++;  // newest 1%
  }
  EXPECT_GT(static_cast<double>(recent) / 20000, 0.3);
  // Advancing the frontier makes new indexes reachable.
  for (int i = 0; i < 100; ++i) dist.advance_frontier();
  bool saw_new = false;
  for (int i = 0; i < 20000 && !saw_new; ++i) {
    saw_new = dist.next(rng) >= 1000;
  }
  EXPECT_TRUE(saw_new);
}

TEST(Uniform, CoversRange) {
  UniformDistribution dist(100);
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(dist.next(rng));
  EXPECT_EQ(seen.size(), 100u);
}

// ---- histogram ---------------------------------------------------------------

TEST(Histogram, PercentilesBracketData) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.min_ns(), 1u);
  EXPECT_EQ(h.max_ns(), 10000u);
  // Log-bucket error is <= 12.5%.
  EXPECT_NEAR(static_cast<double>(h.percentile_ns(50)), 5000, 700);
  EXPECT_NEAR(static_cast<double>(h.percentile_ns(99)), 9900, 1300);
  EXPECT_NEAR(h.mean_ns(), 5000.5, 1.0);
}

TEST(Histogram, MergeMatchesCombined) {
  LatencyHistogram a, b, combined;
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.next_below(1 << 20);
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max_ns(), combined.max_ns());
  EXPECT_EQ(a.percentile_ns(50), combined.percentile_ns(50));
  EXPECT_EQ(a.percentile_ns(99.9), combined.percentile_ns(99.9));
}

TEST(Histogram, EmptyIsSane) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_ns(50), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
}

// ---- table printer -----------------------------------------------------------

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"sys", "tput"});
  t.add_row({"Sphinx", "3.41 Mops/s"});
  t.add_row({"ART", "0.9"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Sphinx "), std::string::npos);
  EXPECT_NE(out.find("| sys "), std::string::npos);
  // Every line has equal length.
  size_t prev = std::string::npos;
  size_t start = 0;
  while (start < out.size()) {
    const size_t end = out.find('\n', start);
    const size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(TablePrinter, Formatters) {
  EXPECT_EQ(TablePrinter::fmt_mops(3'410'000), "3.41 Mops/s");
  EXPECT_EQ(TablePrinter::fmt_bytes(1ull << 30), "1.00 GiB");
  EXPECT_EQ(TablePrinter::fmt_bytes(512), "512 B");
  EXPECT_EQ(TablePrinter::fmt_us(2130), "2.13 us");
  EXPECT_EQ(TablePrinter::fmt_ratio(2.4), "2.40x");
  EXPECT_EQ(TablePrinter::fmt_percent(0.033), "3.30%");
}

}  // namespace
}  // namespace sphinx
