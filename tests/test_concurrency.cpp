// Multi-threaded stress tests: concurrent clients hammer each index with
// mixed operations under genuine thread interleavings (the simulated fabric
// mutates real shared memory with real atomics), then the final state is
// verified against a per-key-space oracle.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "art/art_index.h"
#include "common/rng.h"
#include "core/sphinx_index.h"
#include "smart/smart_index.h"
#include "test_util.h"
#include "ycsb/systems.h"

namespace sphinx {
namespace {

using testing::make_test_cluster;

// Each thread owns a disjoint key stripe for writes (so final state is
// deterministic per stripe) but reads/scans the whole key space, which is
// where stale pointers, torn leaves and mid-flight structure changes bite.
void stress_system(ycsb::SystemKind kind, int threads, int keys_per_thread,
                   int rounds) {
  auto cluster = make_test_cluster();
  ycsb::SystemSetup setup(kind, *cluster);

  auto key_of = [](int t, int i) {
    return "stress:" + std::to_string(t) + ":" + std::to_string(i * 977 % 7919);
  };

  std::atomic<uint64_t> failed_ops{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      rdma::Endpoint ep(cluster->fabric(), t % 3, true);
      mem::RemoteAllocator alloc(*cluster, ep);
      auto index = setup.make_client(t % 3, ep, alloc);
      Rng rng(1000 + t);
      std::string v;

      for (int round = 0; round < rounds; ++round) {
        // Write phase over own stripe.
        for (int i = 0; i < keys_per_thread; ++i) {
          const std::string k = key_of(t, i);
          if (round == 0) {
            if (!index->insert(k, "r0")) failed_ops++;
          } else if (i % 3 == 0) {
            if (!index->update(k, "r" + std::to_string(round))) failed_ops++;
          } else if (i % 3 == 1) {
            if (!index->remove(k)) failed_ops++;
            if (!index->insert(k, "r" + std::to_string(round))) failed_ops++;
          } else {
            index->update(k, "r" + std::to_string(round));
          }
          // Interleave reads over everyone's stripes.
          const int ot = static_cast<int>(rng.next_below(threads));
          const int oi = static_cast<int>(rng.next_below(keys_per_thread));
          index->search(key_of(ot, oi), &v);  // result may race; no assert
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failed_ops.load(), 0u);

  // Quiesced verification: every stripe's final state must be exact.
  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  auto verifier = setup.make_client(0, ep, alloc);
  std::string v;
  const std::string expected = "r" + std::to_string(rounds - 1);
  for (int t = 0; t < threads; ++t) {
    for (int i = 0; i < keys_per_thread; ++i) {
      const std::string k = key_of(t, i);
      ASSERT_TRUE(verifier->search(k, &v)) << k;
      if (rounds > 1 && i % 3 != 2) {
        EXPECT_EQ(v, expected) << k;
      }
    }
  }
}

TEST(ConcurrencyStress, Art) {
  stress_system(ycsb::SystemKind::kArt, 6, 150, 3);
}

TEST(ConcurrencyStress, Smart) {
  stress_system(ycsb::SystemKind::kSmart, 6, 150, 3);
}

TEST(ConcurrencyStress, Sphinx) {
  stress_system(ycsb::SystemKind::kSphinx, 6, 150, 3);
}

TEST(ConcurrencyStress, SphinxNoFilter) {
  stress_system(ycsb::SystemKind::kSphinxNoFilter, 4, 100, 2);
}

TEST(ConcurrencyStress, ConcurrentInsertsSameHotPrefix) {
  // All threads insert under one shared prefix: maximal lock contention,
  // type switches racing slot installs.
  auto cluster = make_test_cluster();
  ycsb::SystemSetup setup(ycsb::SystemKind::kSphinx, *cluster);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      rdma::Endpoint ep(cluster->fabric(), t % 3, true);
      mem::RemoteAllocator alloc(*cluster, ep);
      auto index = setup.make_client(t % 3, ep, alloc);
      for (int i = 0; i < kPerThread; ++i) {
        const std::string k =
            "hot/" + std::to_string(t) + "-" + std::to_string(i);
        if (!index->insert(k, "v")) failures++;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0u);

  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  auto verifier = setup.make_client(0, ep, alloc);
  std::string v;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string k =
          "hot/" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_TRUE(verifier->search(k, &v)) << k;
    }
  }
}

TEST(ConcurrencyStress, ConcurrentInPlaceUpdatesStayTornFree) {
  // Many writers update the same leaf in place while readers verify they
  // only ever observe complete values (the checksum protocol at work).
  auto cluster = make_test_cluster();
  ycsb::SystemSetup setup(ycsb::SystemKind::kSphinx, *cluster);
  {
    rdma::Endpoint ep(cluster->fabric(), 0, true);
    mem::RemoteAllocator alloc(*cluster, ep);
    auto index = setup.make_client(0, ep, alloc);
    ASSERT_TRUE(index->insert("contended", std::string(64, 'A')));
    ASSERT_TRUE(index->insert("contended2", std::string(64, 'A')));
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_reads{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {  // writers
      rdma::Endpoint ep(cluster->fabric(), t % 3, true);
      mem::RemoteAllocator alloc(*cluster, ep);
      auto index = setup.make_client(t % 3, ep, alloc);
      for (int i = 0; i < 500; ++i) {
        index->update("contended", std::string(64, static_cast<char>('A' + (i % 26))));
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {  // readers
      rdma::Endpoint ep(cluster->fabric(), t % 3, true);
      mem::RemoteAllocator alloc(*cluster, ep);
      auto index = setup.make_client(t % 3, ep, alloc);
      std::string v;
      while (!stop.load(std::memory_order_relaxed)) {
        if (index->search("contended", &v)) {
          // A complete value is 64 identical letters.
          if (v.size() != 64 ||
              v.find_first_not_of(v[0]) != std::string::npos) {
            bad_reads++;
          }
        } else {
          bad_reads++;  // the key never disappears
        }
      }
    });
  }
  for (int t = 0; t < 4; ++t) workers[t].join();
  stop.store(true);
  for (size_t t = 4; t < workers.size(); ++t) workers[t].join();
  EXPECT_EQ(bad_reads.load(), 0u);
}

TEST(ConcurrencyStress, InsertDeleteChurnKeepsTreeConsistent) {
  auto cluster = make_test_cluster();
  ycsb::SystemSetup setup(ycsb::SystemKind::kArt, *cluster);
  constexpr int kThreads = 6;
  std::vector<std::thread> workers;
  std::atomic<uint64_t> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      rdma::Endpoint ep(cluster->fabric(), t % 3, true);
      mem::RemoteAllocator alloc(*cluster, ep);
      auto index = setup.make_client(t % 3, ep, alloc);
      const std::string k = "churn:" + std::to_string(t);
      for (int i = 0; i < 300; ++i) {
        if (!index->insert(k, std::to_string(i))) failures++;
        std::string v;
        if (!index->search(k, &v)) failures++;
        if (!index->remove(k)) failures++;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace sphinx
