// Crash-tolerant locking, deterministically: lease word encodings
// round-trip; a lock orphaned by an injected client crash is reclaimed by
// exactly one of two concurrent waiters; and a RACE segment lock orphaned
// mid-split is recovered by rollback (sibling not yet visible) or
// roll-forward (directory already redirected), with no stored payload lost
// either way. The probabilistic end-to-end coverage lives in
// test_stress.cpp; these tests pin each recovery mechanism in isolation.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "art/art_index.h"
#include "art/node_layout.h"
#include "common/hash.h"
#include "memnode/remote_allocator.h"
#include "racehash/race_table.h"
#include "rdma/fault_injector.h"
#include "rdma/retry_policy.h"
#include "test_util.h"

namespace sphinx {
namespace {

// ---- lease word encodings --------------------------------------------------

TEST(CrashRecovery, LeaseStampRoundTrip) {
  // Stamps tick in ~1 us of virtual time and wrap in 23 bits; every verb
  // charges >= 2 us, so clocks straddling a verb always stamp differently.
  EXPECT_EQ(rdma::lease_stamp23(0), 0u);
  EXPECT_NE(rdma::lease_stamp23(10'000), rdma::lease_stamp23(12'500));
  EXPECT_LE(rdma::lease_stamp23(~0ull), rdma::kLeaseStamp23Mask);
  // Same tick, same stamp: the stamp is a uniquifier, not a clock.
  EXPECT_EQ(rdma::lease_stamp23(2048), rdma::lease_stamp23(2049));
}

TEST(CrashRecovery, InnerLeaseRoundTrip) {
  const uint64_t header = art::pack_inner_header(
      art::NodeStatus::kIdle, art::NodeType::kN48, /*depth=*/9,
      /*prefix_hash=*/0x2a5'1234'5678ull);
  for (const art::NodeStatus s :
       {art::NodeStatus::kLocked, art::NodeStatus::kReclaiming}) {
    const uint64_t locked = art::pack_inner_lease(header, s, /*owner=*/201,
                                                  /*stamp=*/0x65432);
    EXPECT_EQ(art::header_status(locked), s);
    EXPECT_EQ(art::header_type(locked), art::NodeType::kN48);
    EXPECT_EQ(art::header_depth(locked), 9);
    EXPECT_EQ(art::inner_lease_owner(locked), 201);
    EXPECT_EQ(art::inner_lease_stamp(locked), 0x65432u);
  }
  // Two acquisitions by different owners (or stamps) never produce the
  // same word -- the watch relies on word identity.
  EXPECT_NE(art::pack_inner_lease(header, art::NodeStatus::kLocked, 1, 7),
            art::pack_inner_lease(header, art::NodeStatus::kLocked, 2, 7));
  EXPECT_NE(art::pack_inner_lease(header, art::NodeStatus::kLocked, 1, 7),
            art::pack_inner_lease(header, art::NodeStatus::kLocked, 1, 8));
}

TEST(CrashRecovery, LeafLeaseRoundTrip) {
  const uint64_t header = art::pack_leaf_header(art::NodeStatus::kIdle,
                                                /*units=*/3, /*key_len=*/21,
                                                /*val_len=*/100);
  const uint64_t locked = art::pack_leaf_lease(
      header, art::NodeStatus::kLocked, /*owner=*/77, /*stamp=*/0x101);
  EXPECT_EQ(art::header_status(locked), art::NodeStatus::kLocked);
  EXPECT_EQ(art::leaf_units(locked), 3u);
  EXPECT_EQ(art::leaf_key_len(locked), 21u);
  EXPECT_EQ(art::leaf_val_len(locked), 100u);
  EXPECT_EQ(art::leaf_lease_owner(locked), 77);
  EXPECT_EQ(art::leaf_lease_stamp(locked), 0x101u);
  // The checksum input is lease- and status-neutral: a reader validates an
  // image identically whether it caught the leaf idle, locked or mid-
  // reclamation.
  EXPECT_EQ(art::leaf_crc_neutral(locked), art::leaf_crc_neutral(header));
}

TEST(CrashRecovery, LeafTrailerRoundTrip) {
  const uint64_t w = art::pack_leaf_trailer(0xdeadbeef, 21, 100);
  EXPECT_EQ(art::leaf_trailer_crc(w), 0xdeadbeefu);
  EXPECT_EQ(art::leaf_trailer_key_len(w), 21u);
  EXPECT_EQ(art::leaf_trailer_val_len(w), 100u);
  // Fixed offset in the last unit, independent of the lengths.
  EXPECT_EQ(art::leaf_trailer_offset(1), 56u);
  EXPECT_EQ(art::leaf_trailer_offset(4), 4u * 64 - 8);
}

// ---- orphan-lock reclamation (ART leaf) ------------------------------------

// Arms `injector` to kill `client_id` at its next verb tagged `site`
// (once), leaving whatever locks it held orphaned.
void arm_assassin(rdma::FaultInjector& injector, uint32_t client_id,
                  rdma::FaultSite site) {
  rdma::FaultRule crash;
  crash.kind = rdma::FaultKind::kClientCrash;
  crash.probability = 1.0;
  crash.client_id = static_cast<int32_t>(client_id);
  crash.site = site;
  crash.max_fires = 1;
  injector.add_rule(crash);
}

TEST(CrashRecovery, TwoWaitersExactlyOneReclaims) {
  auto cluster = testing::make_test_cluster();
  const art::TreeRef ref = art::create_tree(*cluster);

  // Victim: insert a key, then die on the release verb of an update --
  // i.e. with the leaf lock held and the new image fully written.
  rdma::Endpoint victim_ep(cluster->fabric(), 0, /*metered=*/true);
  victim_ep.set_fault_client_id(77);
  mem::RemoteAllocator victim_alloc(*cluster, victim_ep);
  art::ArtIndex victim(*cluster, victim_ep, victim_alloc, ref);
  ASSERT_TRUE(victim.insert("key", "v0"));

  rdma::FaultInjector injector(/*seed=*/7);
  arm_assassin(injector, 77, rdma::FaultSite::kLockRelease);
  cluster->fabric().set_fault_injector(&injector);
  EXPECT_THROW(victim.update("key", "victim"), rdma::ClientCrashed);

  // Two concurrent waiters. Both must complete their update; the reclaim
  // CAS (expected value = the watched lease word) admits exactly one.
  uint64_t reclaims[2] = {0, 0};
  std::vector<std::thread> waiters;
  for (int w = 0; w < 2; ++w) {
    waiters.emplace_back([&, w] {
      rdma::Endpoint ep(cluster->fabric(), static_cast<uint32_t>(w), true);
      ep.set_fault_client_id(static_cast<uint32_t>(1 + w));
      mem::RemoteAllocator alloc(*cluster, ep);
      art::ArtIndex waiter(*cluster, ep, alloc, ref);
      EXPECT_TRUE(waiter.update("key", "w" + std::to_string(w)));
      reclaims[w] = waiter.tree_stats().recovery.lock_reclaims;
    });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(reclaims[0] + reclaims[1], 1u);

  // The node is healthy again: the last completed update is readable and
  // further writes need no recovery.
  cluster->fabric().set_fault_injector(nullptr);
  rdma::Endpoint ep(cluster->fabric(), 2, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  art::ArtIndex reader(*cluster, ep, alloc, ref);
  std::string v;
  ASSERT_TRUE(reader.search("key", &v));
  EXPECT_TRUE(v == "w0" || v == "w1") << v;
  EXPECT_EQ(reader.tree_stats().recovery.lock_reclaims, 0u);
}

// ---- orphaned RACE segment lock --------------------------------------------

struct RaceRig {
  RaceRig(mem::Cluster& cluster, const race::TableRef& table,
          std::map<uint64_t, uint64_t>* payload_to_hash, uint32_t client_id)
      : endpoint(cluster.fabric(), 0, /*metered=*/true),
        allocator(cluster, endpoint),
        client(cluster, endpoint, allocator, table,
               [payload_to_hash](uint64_t payload) {
                 return payload_to_hash->at(payload);
               }) {
    endpoint.set_fault_client_id(client_id);
  }

  rdma::Endpoint endpoint;
  mem::RemoteAllocator allocator;
  race::RaceClient client;
};

// Fills the table through `victim` until its first verb tagged `site`
// kills it (the first split reaches every tagged split step), then has a
// survivor finish the fill and verify every payload is still reachable.
// Returns the survivor's recovery counters.
rdma::RecoveryStats crash_splitter_at(rdma::FaultSite site) {
  auto cluster = testing::make_test_cluster(256 << 20);
  const race::TableRef table = race::create_table(*cluster, 0,
                                                  /*initial_depth=*/1);
  std::map<uint64_t, uint64_t> payload_to_hash;
  rdma::FaultInjector injector(/*seed=*/7);
  arm_assassin(injector, 77, site);
  cluster->fabric().set_fault_injector(&injector);

  RaceRig victim(*cluster, table, &payload_to_hash, /*client_id=*/77);
  const uint64_t kMax = 40000;
  uint64_t crashed_at = kMax;
  for (uint64_t i = 0; i < kMax; ++i) {
    payload_to_hash[i] = splitmix64(i);
    try {
      if (!victim.client.insert(payload_to_hash[i], i)) {
        ADD_FAILURE() << "victim insert failed at " << i;
        break;
      }
    } catch (const rdma::ClientCrashed&) {
      crashed_at = i;
      break;
    }
  }
  // The crash fired during the first split, with the victim holding the
  // directory lock and the overflowing segment's lock.
  EXPECT_LT(crashed_at, kMax);
  EXPECT_EQ(victim.client.stats().splits, 0u);

  // A survivor hitting the orphaned locks must wait out the lease, reclaim
  // and recover; afterwards the fill completes and nothing is lost.
  RaceRig survivor(*cluster, table, &payload_to_hash, /*client_id=*/1);
  const uint64_t n = crashed_at + 2000;
  for (uint64_t i = crashed_at; i < n; ++i) {
    payload_to_hash[i] = splitmix64(i);
    EXPECT_TRUE(survivor.client.insert(payload_to_hash[i], i)) << i;
  }
  std::vector<uint64_t> found;
  uint64_t missing = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (i == crashed_at) continue;  // redone by the survivor above
    found.clear();
    survivor.client.search(payload_to_hash[i], found);
    if (std::find(found.begin(), found.end(), i) == found.end()) missing++;
  }
  EXPECT_EQ(missing, 0u);
  EXPECT_GE(survivor.client.stats().recovery.lock_reclaims, 1u);
  return survivor.client.stats().recovery;
}

TEST(CrashRecovery, SegmentCrashBeforeSiblingVisibleRollsBack) {
  // Death at the sibling body write: no directory entry points at the
  // sibling yet, so recovery must roll the split back (header-only write;
  // the stored entries were never touched).
  const rdma::RecoveryStats recovery =
      crash_splitter_at(rdma::FaultSite::kSplitSibling);
  EXPECT_EQ(recovery.lock_rollforwards, 0u);
}

TEST(CrashRecovery, SegmentCrashAfterDirRedirectRollsForward) {
  // Death at the cleaned-original publish: the sibling is live and the
  // directory already points at it, so recovery must finish the split
  // (merge any straggler entries, republish both segments).
  const rdma::RecoveryStats recovery =
      crash_splitter_at(rdma::FaultSite::kSplitPublish);
  EXPECT_GE(recovery.lock_rollforwards, 1u);
}

}  // namespace
}  // namespace sphinx
