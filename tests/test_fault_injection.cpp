// Fault-injection layer tests: each fault class fires and is observable,
// injection is deterministic under a fixed seed, untagged CAS sites are
// protected, and injected faults drive the real retry paths of the Sphinx
// core (INHT insert/update misses, filter false-positive rejects).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/sphinx_index.h"
#include "rdma/endpoint.h"
#include "rdma/fabric.h"
#include "rdma/fault_injector.h"
#include "test_util.h"
#include "ycsb/systems.h"

namespace sphinx {
namespace {

using rdma::FaultInjector;
using rdma::FaultKind;
using rdma::FaultRule;
using rdma::FaultSite;
using rdma::GlobalAddr;
using rdma::VerbKind;
using rdma::verb_bit;

rdma::NetworkConfig small_config() {
  rdma::NetworkConfig config;
  config.num_cns = 2;
  config.num_mns = 2;
  return config;
}

TEST(FaultInjection, DelayAddsExactVirtualTime) {
  rdma::Fabric fabric(small_config(), 1 << 20);
  rdma::Endpoint ep(fabric, 0);

  const GlobalAddr addr(0, 64);
  ep.write64(addr, 42);
  const uint64_t before = ep.clock_ns();
  ep.read64(addr);
  const uint64_t plain_read_ns = ep.clock_ns() - before;

  FaultInjector injector(1);
  FaultRule rule;
  rule.kind = FaultKind::kDelay;
  rule.delay_ns = 12345;
  rule.verbs = verb_bit(VerbKind::kRead);
  injector.add_rule(rule);
  fabric.set_fault_injector(&injector);

  const uint64_t t0 = ep.clock_ns();
  EXPECT_EQ(ep.read64(addr), 42u);
  EXPECT_EQ(ep.clock_ns() - t0, plain_read_ns + 12345u);
  EXPECT_EQ(injector.stats().delays, 1u);

  // Writes do not match the read-only rule.
  const uint64_t t1 = ep.clock_ns();
  ep.write64(addr, 43);
  const uint64_t write_ns = ep.clock_ns() - t1;
  fabric.set_fault_injector(nullptr);
  const uint64_t t2 = ep.clock_ns();
  ep.write64(addr, 44);
  EXPECT_EQ(write_ns, ep.clock_ns() - t2);
  EXPECT_EQ(injector.stats().delays, 1u);
}

TEST(FaultInjection, InjectedCasFailureLosesRaceOnce) {
  rdma::Fabric fabric(small_config(), 1 << 20);
  rdma::Endpoint ep(fabric, 0);
  const GlobalAddr addr(0, 128);
  ep.write64(addr, 5);

  FaultInjector injector(2);
  FaultRule rule;
  rule.kind = FaultKind::kCasFail;
  rule.site = FaultSite::kAny;
  rule.max_fires = 1;
  injector.add_rule(rule);
  fabric.set_fault_injector(&injector);

  // First tagged CAS loses: no swap, truthful observed value.
  uint64_t observed = 0;
  EXPECT_FALSE(ep.cas(addr, 5, 9, &observed, FaultSite::kLockAcquire));
  EXPECT_EQ(observed, 5u);
  EXPECT_EQ(ep.read64(addr), 5u);
  EXPECT_EQ(injector.stats().cas_failures, 1u);

  // Budget exhausted: the retry goes through.
  EXPECT_TRUE(ep.cas(addr, 5, 9, &observed, FaultSite::kLockAcquire));
  EXPECT_EQ(ep.read64(addr), 9u);
  EXPECT_EQ(injector.stats().cas_failures, 1u);
  fabric.set_fault_injector(nullptr);
}

TEST(FaultInjection, UntaggedCasIsNeverFailed) {
  rdma::Fabric fabric(small_config(), 1 << 20);
  rdma::Endpoint ep(fabric, 0);
  const GlobalAddr addr(0, 256);

  FaultInjector injector(3);
  FaultRule rule;
  rule.kind = FaultKind::kCasFail;
  rule.site = FaultSite::kAny;  // matches every *tagged* site
  injector.add_rule(rule);
  fabric.set_fault_injector(&injector);

  // A lock-release-style CAS (default site kNone) is protected even under
  // an unlimited always-fire rule.
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(ep.cas(addr, i, i + 1));
  }
  EXPECT_EQ(injector.stats().cas_failures, 0u);
  fabric.set_fault_injector(nullptr);
}

TEST(FaultInjection, SiteFilterSelectsTaggedSites) {
  rdma::Fabric fabric(small_config(), 1 << 20);
  rdma::Endpoint ep(fabric, 0);
  const GlobalAddr addr(0, 320);

  FaultInjector injector(4);
  FaultRule rule;
  rule.kind = FaultKind::kCasFail;
  rule.site = FaultSite::kHashInsert;
  injector.add_rule(rule);
  fabric.set_fault_injector(&injector);

  EXPECT_TRUE(ep.cas(addr, 0, 1, nullptr, FaultSite::kLockAcquire));
  EXPECT_FALSE(ep.cas(addr, 1, 2, nullptr, FaultSite::kHashInsert));
  EXPECT_EQ(injector.stats().cas_failures, 1u);
  fabric.set_fault_injector(nullptr);
}

TEST(FaultInjection, StallChargesTimeAndCounts) {
  rdma::Fabric fabric(small_config(), 1 << 20);
  rdma::Endpoint ep(fabric, 0);
  const GlobalAddr addr(0, 64);

  FaultInjector injector(5);
  FaultRule rule;
  rule.kind = FaultKind::kStall;
  rule.delay_ns = 2000;
  rule.verbs = verb_bit(VerbKind::kWrite);
  rule.max_fires = 3;
  injector.add_rule(rule);
  fabric.set_fault_injector(&injector);

  const uint64_t t0 = ep.clock_ns();
  ep.write64(addr, 1);
  const uint64_t stalled_ns = ep.clock_ns() - t0;
  for (int i = 0; i < 10; ++i) ep.write64(addr, 2);
  fabric.set_fault_injector(nullptr);
  const uint64_t t1 = ep.clock_ns();
  ep.write64(addr, 3);
  EXPECT_EQ(stalled_ns, (ep.clock_ns() - t1) + 2000u);
  EXPECT_EQ(injector.stats().stalls, 3u);
}

TEST(FaultInjection, MnOfflineCountdownRejectsThenRecovers) {
  rdma::Fabric fabric(small_config(), 1 << 20);
  rdma::Endpoint ep(fabric, 0);
  const GlobalAddr addr(1, 512);
  ep.write64(addr, 77);

  FaultInjector injector(6);
  fabric.set_fault_injector(&injector);
  injector.arm_mn_offline(1, 10);
  EXPECT_TRUE(injector.mn_offline(1));

  // The read still completes (the endpoint reissues through the outage)
  // and no data is lost; each rejected verb charged one timeout.
  const uint64_t t0 = ep.clock_ns();
  EXPECT_EQ(ep.read64(addr), 77u);
  const uint64_t elapsed = ep.clock_ns() - t0;
  EXPECT_GE(elapsed, 10 * fabric.config().verb_timeout_ns);
  EXPECT_EQ(injector.stats().offline_rejects, 10u);
  EXPECT_EQ(injector.stats().offline_giveups, 0u);
  EXPECT_FALSE(injector.mn_offline(1));

  // Back to normal afterwards.
  EXPECT_EQ(ep.read64(addr), 77u);
  EXPECT_EQ(injector.stats().offline_rejects, 10u);
  fabric.set_fault_injector(nullptr);
}

TEST(FaultInjection, StickyOfflineTripsGiveUpCap) {
  rdma::Fabric fabric(small_config(), 1 << 20);
  rdma::Endpoint ep(fabric, 0);
  const GlobalAddr addr(0, 512);
  ep.write64(addr, 99);

  FaultInjector injector(7);
  fabric.set_fault_injector(&injector);
  injector.set_mn_offline(0, true);

  // Nobody restores the MN: the endpoint gives up after the retry cap and
  // the verb executes anyway (counted), instead of hanging the test.
  EXPECT_EQ(ep.read64(addr), 99u);
  EXPECT_EQ(injector.stats().offline_giveups, 1u);
  EXPECT_GT(injector.stats().offline_rejects, 1000u);

  injector.set_mn_offline(0, false);
  EXPECT_EQ(ep.read64(addr), 99u);
  EXPECT_EQ(injector.stats().offline_giveups, 1u);
  fabric.set_fault_injector(nullptr);
}

TEST(FaultInjection, MnFilterScopesRulesToOneMn) {
  rdma::Fabric fabric(small_config(), 1 << 20);
  rdma::Endpoint ep(fabric, 0);

  FaultInjector injector(8);
  FaultRule rule;
  rule.kind = FaultKind::kDelay;
  rule.delay_ns = 500;
  rule.mn = 1;
  injector.add_rule(rule);
  fabric.set_fault_injector(&injector);

  ep.write64(GlobalAddr(0, 64), 1);
  EXPECT_EQ(injector.stats().delays, 0u);
  ep.write64(GlobalAddr(1, 64), 1);
  EXPECT_EQ(injector.stats().delays, 1u);
  fabric.set_fault_injector(nullptr);
}

TEST(FaultInjection, DisarmAndMaxFiresBudget) {
  rdma::Fabric fabric(small_config(), 1 << 20);
  rdma::Endpoint ep(fabric, 0);
  const GlobalAddr addr(0, 64);

  FaultInjector injector(9);
  FaultRule rule;
  rule.kind = FaultKind::kDelay;
  rule.delay_ns = 100;
  rule.max_fires = 5;
  const size_t id = injector.add_rule(rule);
  fabric.set_fault_injector(&injector);

  for (int i = 0; i < 3; ++i) ep.write64(addr, 1);
  EXPECT_EQ(injector.stats().delays, 3u);
  injector.disarm_rule(id);
  for (int i = 0; i < 3; ++i) ep.write64(addr, 1);
  EXPECT_EQ(injector.stats().delays, 3u);
  fabric.set_fault_injector(nullptr);
}

TEST(FaultInjection, UnmeteredEndpointsBypassInjection) {
  rdma::Fabric fabric(small_config(), 1 << 20);
  rdma::Endpoint loader(fabric, 0, /*metered=*/false);
  const GlobalAddr addr(0, 64);

  FaultInjector injector(10);
  FaultRule rule;
  rule.kind = FaultKind::kDelay;
  rule.delay_ns = 100;
  injector.add_rule(rule);
  fabric.set_fault_injector(&injector);
  injector.set_mn_offline(0, true);  // would reject every metered verb

  loader.write64(addr, 1);
  EXPECT_EQ(loader.read64(addr), 1u);
  EXPECT_EQ(injector.stats().verbs_inspected, 0u);
  fabric.set_fault_injector(nullptr);
}

TEST(FaultInjection, BatchCasFailureDoesNotSuppressLaterWrite) {
  rdma::Fabric fabric(small_config(), 1 << 20);
  rdma::Endpoint ep(fabric, 0);
  const GlobalAddr lock_addr(0, 64);
  const GlobalAddr data_addr(0, 128);
  ep.write64(lock_addr, 0);

  FaultInjector injector(11);
  FaultRule rule;
  rule.kind = FaultKind::kCasFail;
  rule.site = FaultSite::kAny;
  rule.max_fires = 1;
  injector.add_rule(rule);
  fabric.set_fault_injector(&injector);

  const uint64_t payload = 0xfeedfacecafebeefULL;
  rdma::DoorbellBatch batch(ep);
  const size_t cas_idx =
      batch.add_cas(lock_addr, 0, 1, FaultSite::kLockAcquire);
  batch.add_write(data_addr, &payload, sizeof(payload));
  batch.execute();

  // Hardware semantics: the failed CAS reports per-op failure with the
  // true old value, and the batched WRITE after it still lands.
  EXPECT_FALSE(batch.cas_ok(cas_idx));
  EXPECT_EQ(batch.old_value(cas_idx), 0u);
  EXPECT_EQ(ep.read64(lock_addr), 0u);
  EXPECT_EQ(ep.read64(data_addr), payload);
  EXPECT_EQ(injector.stats().cas_failures, 1u);
  fabric.set_fault_injector(nullptr);
}

// Replays an op mix against a fresh fabric and returns (event log, clock).
std::pair<std::vector<rdma::FaultEvent>, uint64_t> replay_schedule(
    uint64_t seed) {
  rdma::Fabric fabric(small_config(), 1 << 20);
  FaultInjector injector(seed);
  FaultRule delay;
  delay.kind = FaultKind::kDelay;
  delay.probability = 0.25;
  delay.delay_ns = 300;
  injector.add_rule(delay);
  FaultRule casfail;
  casfail.kind = FaultKind::kCasFail;
  casfail.probability = 0.4;
  casfail.site = FaultSite::kAny;
  injector.add_rule(casfail);
  FaultRule stall;
  stall.kind = FaultKind::kStall;
  stall.probability = 0.1;
  stall.delay_ns = 1500;
  stall.verbs = verb_bit(VerbKind::kWrite);
  injector.add_rule(stall);
  injector.set_recording(true);
  fabric.set_fault_injector(&injector);

  rdma::Endpoint ep(fabric, 0);
  ep.set_fault_client_id(17);
  uint64_t word = 0;
  for (int i = 0; i < 400; ++i) {
    const GlobalAddr addr(static_cast<uint32_t>(i % 2),
                          64 + static_cast<uint64_t>(i % 8) * 8);
    switch (i % 3) {
      case 0:
        ep.write64(addr, static_cast<uint64_t>(i));
        break;
      case 1:
        word += ep.read64(addr);
        break;
      default:
        if (ep.cas(addr, static_cast<uint64_t>(i - 2),
                   static_cast<uint64_t>(i), nullptr,
                   FaultSite::kSlotInstall)) {
          word ^= static_cast<uint64_t>(i);
        }
        break;
    }
  }
  fabric.set_fault_injector(nullptr);
  return {injector.events_for_client(17), ep.clock_ns() + (word & 1)};
}

TEST(FaultInjection, FixedSeedIsBitForBitReproducible) {
  const auto run1 = replay_schedule(0xabcdef12345ULL);
  const auto run2 = replay_schedule(0xabcdef12345ULL);
  ASSERT_FALSE(run1.first.empty());
  ASSERT_EQ(run1.first.size(), run2.first.size());
  for (size_t i = 0; i < run1.first.size(); ++i) {
    EXPECT_TRUE(run1.first[i] == run2.first[i]) << "event " << i;
  }
  EXPECT_EQ(run1.second, run2.second);

  // A different seed produces a different schedule.
  const auto run3 = replay_schedule(0x1111ULL);
  const bool same_len = run3.first.size() == run1.first.size();
  bool identical = same_len;
  if (same_len) {
    for (size_t i = 0; i < run1.first.size(); ++i) {
      if (!(run1.first[i] == run3.first[i])) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(FaultInjection, UnmeteredEndpointsStayInvisibleUnderFaults) {
  // Bootstrap/loading endpoints (metered = false) must never accumulate
  // traffic statistics, consume the injector's random stream, or charge
  // virtual time -- even with an aggressive injector installed. A metered
  // sibling on the same fabric confirms the injector itself is live.
  rdma::Fabric fabric(small_config(), 1 << 20);
  FaultInjector injector(7);
  FaultRule delay;
  delay.kind = FaultKind::kDelay;
  delay.probability = 1.0;
  delay.delay_ns = 500;
  injector.add_rule(delay);
  FaultRule casfail;
  casfail.kind = FaultKind::kCasFail;
  casfail.probability = 1.0;
  casfail.site = FaultSite::kAny;
  injector.add_rule(casfail);
  fabric.set_fault_injector(&injector);

  rdma::Endpoint quiet(fabric, 0, /*metered=*/false);
  uint64_t buf = 0;
  quiet.write64(GlobalAddr(0, 64), 42);
  quiet.read(GlobalAddr(0, 64), &buf, sizeof(buf));
  EXPECT_EQ(buf, 42u);
  // Unmetered CAS bypasses injection entirely: it must succeed and stay
  // uncounted (the regression here was the injected-failure branch bumping
  // stats_.cas on unmetered endpoints).
  EXPECT_TRUE(quiet.cas(GlobalAddr(0, 64), 42, 43, nullptr,
                        FaultSite::kHashInsert));
  quiet.faa(GlobalAddr(0, 64), 1);
  EXPECT_TRUE(quiet.stats().all_zero());
  EXPECT_EQ(quiet.clock_ns(), 0u);
  EXPECT_EQ(injector.stats().verbs_inspected, 0u);

  rdma::Endpoint loud(fabric, 0, /*metered=*/true);
  EXPECT_FALSE(loud.cas(GlobalAddr(0, 64), 44, 45, nullptr,
                        FaultSite::kHashInsert));
  EXPECT_EQ(loud.stats().cas, 1u);
  EXPECT_FALSE(loud.stats().all_zero());
  EXPECT_GT(injector.stats().verbs_inspected, 0u);
  fabric.set_fault_injector(nullptr);
}

// ---- integration: injected faults drive the Sphinx core's retry paths ----

TEST(FaultInjection, InjectedInhtFailuresDriveSphinxRetryPaths) {
  auto cluster = testing::make_test_cluster();
  ycsb::SystemSetup setup(ycsb::SystemKind::kSphinx, *cluster);

  rdma::FaultInjector injector(99);
  FaultRule rule;
  rule.kind = FaultKind::kCasFail;
  rule.site = FaultSite::kHashInsert;  // every INHT slot claim loses
  const size_t rule_id = injector.add_rule(rule);
  cluster->fabric().set_fault_injector(&injector);

  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  auto index = setup.make_client(0, ep, alloc);
  auto* sphinx = dynamic_cast<core::SphinxIndex*>(index.get());
  ASSERT_NE(sphinx, nullptr);

  // Grow one hot prefix past Node4 -> Node16 -> Node48 so inner nodes are
  // created *and* type-switched while every INHT insert is being failed.
  std::vector<std::string> keys;
  for (int c = 0; c < 26; ++c) {
    for (int i = 0; i < 8; ++i) {
      keys.push_back("tsw/" + std::string(1, static_cast<char>('a' + c)) +
                     std::to_string(i));
    }
  }
  std::string v;
  for (const std::string& k : keys) {
    ASSERT_TRUE(index->insert(k, "v:" + k)) << k;
  }

  const core::SphinxStats& stats = sphinx->sphinx_stats();
  EXPECT_GT(stats.inht_insert_fails, 0u);
  EXPECT_GT(stats.inht_update_misses, 0u);
  EXPECT_GT(injector.stats().cas_failures, 0u);

  // No data was lost: with injection disarmed every key is still found.
  // The prefix entry cache rescues the prefixes whose INHT entries never
  // landed (on_inner_created seeded it locally), so these searches resolve
  // as PEC hits instead of filter false positives.
  injector.disarm_rule(rule_id);
  for (const std::string& k : keys) {
    ASSERT_TRUE(index->search(k, &v)) << k;
    EXPECT_EQ(v, "v:" + k);
  }
  EXPECT_GT(stats.pec_hits, 0u);
  EXPECT_EQ(stats.fp_rejects, 0u);

  // A PEC-less client sharing the same (stale) filter still exercises the
  // false-positive reject path: the filter admits the prefixes, the INHT
  // has no entries for them, and the search falls back cleanly.
  core::SphinxConfig no_pec;
  no_pec.use_pec = false;
  rdma::Endpoint ep2(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc2(*cluster, ep2);
  core::SphinxIndex bare(*cluster, ep2, alloc2, *setup.sphinx_refs(),
                         setup.filter(0), nullptr, nullptr, no_pec);
  for (const std::string& k : keys) {
    ASSERT_TRUE(bare.search(k, &v)) << k;
    EXPECT_EQ(v, "v:" + k);
  }
  EXPECT_GT(bare.sphinx_stats().fp_rejects, 0u);
  cluster->fabric().set_fault_injector(nullptr);
}

TEST(FaultInjection, MnOutageDuringInsertsLosesNoData) {
  auto cluster = testing::make_test_cluster();
  ycsb::SystemSetup setup(ycsb::SystemKind::kSphinx, *cluster);

  rdma::FaultInjector injector(123);
  cluster->fabric().set_fault_injector(&injector);

  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  auto index = setup.make_client(0, ep, alloc);

  std::string v;
  for (int i = 0; i < 300; ++i) {
    if (i % 50 == 10) {
      // Periodic outage bursts on rotating MNs mid-workload.
      injector.arm_mn_offline(static_cast<uint32_t>(i / 50) % 3, 200);
    }
    ASSERT_TRUE(index->insert("out:" + std::to_string(i), std::to_string(i)));
  }
  EXPECT_GT(injector.stats().offline_rejects, 0u);
  EXPECT_EQ(injector.stats().offline_giveups, 0u);

  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(index->search("out:" + std::to_string(i), &v)) << i;
    EXPECT_EQ(v, std::to_string(i));
  }
  cluster->fabric().set_fault_injector(nullptr);
}

}  // namespace
}  // namespace sphinx
