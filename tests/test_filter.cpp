// Unit tests for the succinct filter cache substrate (cuckoo filter with
// hotness-bit second-chance eviction).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/hash.h"
#include "filter/cuckoo_filter.h"

namespace sphinx::filter {
namespace {

TEST(CuckooFilter, InsertedItemsAreFound) {
  CuckooFilter f(1 << 12);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(f.insert(splitmix64(i)));
  }
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(f.contains(splitmix64(i))) << i;
  }
}

TEST(CuckooFilter, FalsePositiveRateBelowOnePercent) {
  // Paper Sec. III-B: a ~12-bit fingerprint keeps the fp rate < 1%.
  CuckooFilter f(1 << 14);  // 64K slots
  const uint64_t n = 50000;  // ~76% load
  for (uint64_t i = 0; i < n; ++i) f.insert(splitmix64(i));
  uint64_t fp = 0;
  const uint64_t probes = 200000;
  for (uint64_t i = 0; i < probes; ++i) {
    if (f.contains_cold(splitmix64(1'000'000'000 + i))) fp++;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.01);
}

TEST(CuckooFilter, EraseRemoves) {
  CuckooFilter f(1 << 10);
  const uint64_t h = splitmix64(1234);
  EXPECT_TRUE(f.insert(h));
  EXPECT_TRUE(f.contains_cold(h));
  EXPECT_TRUE(f.erase(h));
  EXPECT_FALSE(f.contains_cold(h));
  EXPECT_FALSE(f.erase(h));
}

TEST(CuckooFilter, DuplicateInsertIsIdempotent) {
  CuckooFilter f(1 << 10);
  const uint64_t h = splitmix64(99);
  EXPECT_TRUE(f.insert(h));
  EXPECT_TRUE(f.insert(h));
  EXPECT_EQ(f.stats().insert_dupes, 1u);
  EXPECT_TRUE(f.erase(h));
  EXPECT_FALSE(f.contains_cold(h));  // one erase removes the only copy
}

TEST(CuckooFilter, SecondChanceEvictsColdEntriesFirst) {
  // Fill a tiny filter, touch half the entries (making them hot), then
  // insert fresh items under pressure: evictions should hit cold entries,
  // so hot entries survive at a much higher rate.
  CuckooFilter f(64);  // 256 slots
  std::vector<uint64_t> hot, cold;
  for (uint64_t i = 0; hot.size() + cold.size() < 220; ++i) {
    const uint64_t h = splitmix64(i);
    if (!f.insert(h)) continue;
    if (i % 2 == 0) {
      hot.push_back(h);
    } else {
      cold.push_back(h);
    }
  }
  for (uint64_t h : hot) f.contains(h);  // sets hotness bits

  for (uint64_t i = 0; i < 200; ++i) {
    f.insert(splitmix64(0xdead0000 + i));
  }

  auto survivors = [&](const std::vector<uint64_t>& v) {
    uint64_t alive = 0;
    for (uint64_t h : v) {
      if (f.contains_cold(h)) alive++;
    }
    return static_cast<double>(alive) / static_cast<double>(v.size());
  };
  EXPECT_GT(survivors(hot), survivors(cold) + 0.15);
}

TEST(CuckooFilter, HotWorkingSetSurvivesOverCapacityChurn) {
  // Fill far past capacity with a one-shot cold stream while a small hot
  // working set is periodically re-touched. The second-chance policy must
  // keep (almost) all of the hot set resident and displace the cold
  // stream instead, even though the stream is several times the filter.
  CuckooFilter f(64);  // 256 slots
  std::vector<uint64_t> hot;
  for (uint64_t i = 0; hot.size() < 32; ++i) {
    const uint64_t h = splitmix64(0x50f7 + i);
    if (f.insert(h)) hot.push_back(h);
  }

  // 4x capacity of cold one-timers, interleaved with hot re-touches (each
  // contains() re-arms the hotness bit, like repeated index lookups on a
  // hot prefix).
  for (uint64_t i = 0; i < 1024; ++i) {
    f.insert(splitmix64(0xc01d0000 + i));
    if (i % 8 == 0) {
      for (uint64_t h : hot) f.contains(h);
    }
  }

  uint64_t hot_alive = 0;
  for (uint64_t h : hot) {
    if (f.contains_cold(h)) hot_alive++;
  }
  EXPECT_GE(hot_alive, hot.size() - 2) << "hot prefixes were displaced";

  // The cold stream did not accumulate: most one-timers are gone again.
  uint64_t cold_alive = 0;
  for (uint64_t i = 0; i < 1024; ++i) {
    if (f.contains_cold(splitmix64(0xc01d0000 + i))) cold_alive++;
  }
  EXPECT_LT(cold_alive, 256u);
  EXPECT_GT(f.stats().evictions, 0u);
}

TEST(CuckooFilter, RelocationMakesRoomWhenAllHot) {
  CuckooFilter f(32);  // 128 slots
  std::vector<uint64_t> items;
  for (uint64_t i = 0; items.size() < 100; ++i) {
    const uint64_t h = splitmix64(0xabc + i);
    if (f.insert(h)) items.push_back(h);
  }
  for (uint64_t h : items) f.contains(h);  // everything hot
  // New inserts must still succeed (relocation path).
  uint64_t inserted = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    if (f.insert(splitmix64(0xffff0000 + i))) inserted++;
  }
  EXPECT_GT(inserted, 40u);
  EXPECT_GT(f.stats().relocations + f.stats().evictions, 0u);
}

TEST(CuckooFilter, WithBudgetRespectsBytes) {
  auto f = CuckooFilter::with_budget(1 << 20);
  EXPECT_LE(f->memory_bytes(), 1u << 20);
  EXPECT_GE(f->memory_bytes(), 1u << 19);  // at least half the budget
}

TEST(CuckooFilter, SizeCountsLiveEntries) {
  CuckooFilter f(1 << 10);
  EXPECT_EQ(f.size(), 0u);
  for (uint64_t i = 0; i < 100; ++i) f.insert(splitmix64(i));
  EXPECT_EQ(f.size(), 100u);
}

TEST(CuckooFilter, ConcurrentInsertAndLookup) {
  CuckooFilter f(1 << 14);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t h = splitmix64(t * kPerThread + i);
        f.insert(h);
        f.contains(h);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Low pressure (61% load): nearly everything must be present.
  uint64_t present = 0;
  for (uint64_t i = 0; i < kThreads * kPerThread; ++i) {
    if (f.contains_cold(splitmix64(i))) present++;
  }
  EXPECT_GT(present, kThreads * kPerThread * 98 / 100);
}

TEST(CuckooFilter, StatsReset) {
  CuckooFilter f(64);
  f.insert(splitmix64(1));
  f.insert(splitmix64(1));
  EXPECT_GT(f.stats().inserts, 0u);
  f.reset_stats();
  EXPECT_EQ(f.stats().inserts, 0u);
  EXPECT_EQ(f.stats().insert_dupes, 0u);
}

}  // namespace
}  // namespace sphinx::filter
