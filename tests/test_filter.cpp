// Unit tests for the succinct filter cache substrate (cuckoo filter with
// hotness-bit second-chance eviction) and the prefix entry cache (the
// second, location tier of the CN cache).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/hash.h"
#include "filter/cuckoo_filter.h"
#include "filter/prefix_entry_cache.h"

namespace sphinx::filter {
namespace {

TEST(CuckooFilter, InsertedItemsAreFound) {
  CuckooFilter f(1 << 12);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(f.insert(splitmix64(i)));
  }
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(f.contains(splitmix64(i))) << i;
  }
}

TEST(CuckooFilter, FalsePositiveRateBelowOnePercent) {
  // Paper Sec. III-B: a ~12-bit fingerprint keeps the fp rate < 1%.
  CuckooFilter f(1 << 14);  // 64K slots
  const uint64_t n = 50000;  // ~76% load
  for (uint64_t i = 0; i < n; ++i) f.insert(splitmix64(i));
  uint64_t fp = 0;
  const uint64_t probes = 200000;
  for (uint64_t i = 0; i < probes; ++i) {
    if (f.contains_cold(splitmix64(1'000'000'000 + i))) fp++;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.01);
}

TEST(CuckooFilter, EraseRemoves) {
  CuckooFilter f(1 << 10);
  const uint64_t h = splitmix64(1234);
  EXPECT_TRUE(f.insert(h));
  EXPECT_TRUE(f.contains_cold(h));
  EXPECT_TRUE(f.erase(h));
  EXPECT_FALSE(f.contains_cold(h));
  EXPECT_FALSE(f.erase(h));
}

TEST(CuckooFilter, DuplicateInsertIsIdempotent) {
  CuckooFilter f(1 << 10);
  const uint64_t h = splitmix64(99);
  EXPECT_TRUE(f.insert(h));
  EXPECT_TRUE(f.insert(h));
  EXPECT_EQ(f.stats().insert_dupes, 1u);
  EXPECT_TRUE(f.erase(h));
  EXPECT_FALSE(f.contains_cold(h));  // one erase removes the only copy
}

TEST(CuckooFilter, SecondChanceEvictsColdEntriesFirst) {
  // Fill a tiny filter, touch half the entries (making them hot), then
  // insert fresh items under pressure: evictions should hit cold entries,
  // so hot entries survive at a much higher rate.
  CuckooFilter f(64);  // 256 slots
  std::vector<uint64_t> hot, cold;
  for (uint64_t i = 0; hot.size() + cold.size() < 220; ++i) {
    const uint64_t h = splitmix64(i);
    if (!f.insert(h)) continue;
    if (i % 2 == 0) {
      hot.push_back(h);
    } else {
      cold.push_back(h);
    }
  }
  for (uint64_t h : hot) f.contains(h);  // sets hotness bits

  for (uint64_t i = 0; i < 200; ++i) {
    f.insert(splitmix64(0xdead0000 + i));
  }

  auto survivors = [&](const std::vector<uint64_t>& v) {
    uint64_t alive = 0;
    for (uint64_t h : v) {
      if (f.contains_cold(h)) alive++;
    }
    return static_cast<double>(alive) / static_cast<double>(v.size());
  };
  EXPECT_GT(survivors(hot), survivors(cold) + 0.15);
}

TEST(CuckooFilter, HotWorkingSetSurvivesOverCapacityChurn) {
  // Fill far past capacity with a one-shot cold stream while a small hot
  // working set is periodically re-touched. The second-chance policy must
  // keep (almost) all of the hot set resident and displace the cold
  // stream instead, even though the stream is several times the filter.
  CuckooFilter f(64);  // 256 slots
  std::vector<uint64_t> hot;
  for (uint64_t i = 0; hot.size() < 32; ++i) {
    const uint64_t h = splitmix64(0x50f7 + i);
    if (f.insert(h)) hot.push_back(h);
  }

  // 4x capacity of cold one-timers, interleaved with hot re-touches (each
  // contains() re-arms the hotness bit, like repeated index lookups on a
  // hot prefix).
  for (uint64_t i = 0; i < 1024; ++i) {
    f.insert(splitmix64(0xc01d0000 + i));
    if (i % 8 == 0) {
      for (uint64_t h : hot) f.contains(h);
    }
  }

  uint64_t hot_alive = 0;
  for (uint64_t h : hot) {
    if (f.contains_cold(h)) hot_alive++;
  }
  EXPECT_GE(hot_alive, hot.size() - 2) << "hot prefixes were displaced";

  // The cold stream did not accumulate: most one-timers are gone again.
  uint64_t cold_alive = 0;
  for (uint64_t i = 0; i < 1024; ++i) {
    if (f.contains_cold(splitmix64(0xc01d0000 + i))) cold_alive++;
  }
  EXPECT_LT(cold_alive, 256u);
  EXPECT_GT(f.stats().evictions, 0u);
}

TEST(CuckooFilter, RelocationMakesRoomWhenAllHot) {
  CuckooFilter f(32);  // 128 slots
  std::vector<uint64_t> items;
  for (uint64_t i = 0; items.size() < 100; ++i) {
    const uint64_t h = splitmix64(0xabc + i);
    if (f.insert(h)) items.push_back(h);
  }
  for (uint64_t h : items) f.contains(h);  // everything hot
  // New inserts must still succeed (relocation path).
  uint64_t inserted = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    if (f.insert(splitmix64(0xffff0000 + i))) inserted++;
  }
  EXPECT_GT(inserted, 40u);
  EXPECT_GT(f.stats().relocations + f.stats().evictions, 0u);
}

TEST(CuckooFilter, WithBudgetRespectsBytes) {
  auto f = CuckooFilter::with_budget(1 << 20);
  EXPECT_LE(f->memory_bytes(), 1u << 20);
  EXPECT_GE(f->memory_bytes(), 1u << 19);  // at least half the budget
}

TEST(CuckooFilter, SizeCountsLiveEntries) {
  CuckooFilter f(1 << 10);
  EXPECT_EQ(f.size(), 0u);
  for (uint64_t i = 0; i < 100; ++i) f.insert(splitmix64(i));
  EXPECT_EQ(f.size(), 100u);
}

TEST(CuckooFilter, ConcurrentInsertAndLookup) {
  CuckooFilter f(1 << 14);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t h = splitmix64(t * kPerThread + i);
        f.insert(h);
        f.contains(h);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Low pressure (61% load): nearly everything must be present.
  uint64_t present = 0;
  for (uint64_t i = 0; i < kThreads * kPerThread; ++i) {
    if (f.contains_cold(splitmix64(i))) present++;
  }
  EXPECT_GT(present, kThreads * kPerThread * 98 / 100);
}

TEST(CuckooFilter, StatsReset) {
  CuckooFilter f(64);
  f.insert(splitmix64(1));
  f.insert(splitmix64(1));
  EXPECT_GT(f.stats().inserts, 0u);
  f.reset_stats();
  EXPECT_EQ(f.stats().inserts, 0u);
  EXPECT_EQ(f.stats().insert_dupes, 0u);
}

// ---- prefix entry cache -----------------------------------------------

TEST(PrefixEntryCache, InsertLookupRoundTrip) {
  PrefixEntryCache pec(1 << 8);
  uint64_t payload = 0;
  bool was_hot = true;
  EXPECT_FALSE(pec.lookup(splitmix64(7), &payload, &was_hot));
  pec.insert(splitmix64(7), 0x1234);
  ASSERT_TRUE(pec.lookup(splitmix64(7), &payload, &was_hot));
  EXPECT_EQ(payload, 0x1234u);
  EXPECT_FALSE(was_hot);  // new entries start cold
  // The first lookup marked it hot.
  ASSERT_TRUE(pec.lookup(splitmix64(7), &payload, &was_hot));
  EXPECT_TRUE(was_hot);
  EXPECT_EQ(pec.stats().hits, 2u);
  EXPECT_EQ(pec.stats().misses, 1u);
}

TEST(PrefixEntryCache, HashZeroIsUsable) {
  // Hash 0 collides with the empty-tag sentinel and must be remapped, not
  // lost (the remap trick shared with the cuckoo filter's fingerprint 0).
  PrefixEntryCache pec(1 << 4);
  uint64_t payload = 0;
  bool was_hot = false;
  pec.insert(0, 0x77);
  ASSERT_TRUE(pec.lookup(0, &payload, &was_hot));
  EXPECT_EQ(payload, 0x77u);
}

TEST(PrefixEntryCache, InPlaceRefreshKeepsHotness) {
  PrefixEntryCache pec(1 << 4);
  uint64_t payload = 0;
  bool was_hot = false;
  pec.insert(splitmix64(1), 0xaa);
  ASSERT_TRUE(pec.lookup(splitmix64(1), &payload, &was_hot));  // now hot
  pec.insert(splitmix64(1), 0xbb);  // refresh (e.g. after a type switch)
  ASSERT_TRUE(pec.lookup(splitmix64(1), &payload, &was_hot));
  EXPECT_EQ(payload, 0xbbu);
  EXPECT_TRUE(was_hot);  // refresh must not demote a validated-hot entry
  EXPECT_EQ(pec.size(), 1u);
}

TEST(PrefixEntryCache, InvalidateIfRequiresMatchingAddress) {
  PrefixEntryCache pec(1 << 4);
  uint64_t payload = 0;
  bool was_hot = false;
  pec.insert(splitmix64(2), 0x500);
  // Wrong address: a concurrent refresh already replaced the entry, the
  // late invalidation must not drop the newer mapping.
  EXPECT_FALSE(pec.invalidate_if(splitmix64(2), 0x999));
  ASSERT_TRUE(pec.lookup(splitmix64(2), &payload, &was_hot));
  // Matching address purges.
  EXPECT_TRUE(pec.invalidate_if(splitmix64(2), 0x500));
  EXPECT_FALSE(pec.lookup(splitmix64(2), &payload, &was_hot));
  EXPECT_EQ(pec.stats().invalidations, 1u);
}

// Hashes that all land in the same set of `pec` (mirrors set_index()).
std::vector<uint64_t> same_set_hashes(const PrefixEntryCache& pec, size_t n) {
  std::vector<uint64_t> out;
  for (uint64_t i = 1; out.size() < n; ++i) {
    const uint64_t h = splitmix64(i);
    if ((splitmix64(h) & (pec.num_sets() - 1)) == 0) out.push_back(h);
  }
  return out;
}

TEST(PrefixEntryCache, SecondChanceEvictsColdEntriesFirst) {
  PrefixEntryCache pec(2);
  const auto keys = same_set_hashes(pec, PrefixEntryCache::kWays + 1);
  uint64_t payload = 0;
  bool was_hot = false;
  // Fill one set, then touch all but one entry so exactly one stays cold.
  for (uint64_t i = 0; i < PrefixEntryCache::kWays; ++i) {
    pec.insert(keys[i], 0x100 + i);
  }
  for (uint64_t i = 1; i < PrefixEntryCache::kWays; ++i) {
    ASSERT_TRUE(pec.lookup(keys[i], &payload, &was_hot));
  }
  // Overflow insert must displace the cold entry, never a hot one.
  pec.insert(keys[PrefixEntryCache::kWays], 0x999);
  for (uint64_t i = 1; i < PrefixEntryCache::kWays; ++i) {
    EXPECT_TRUE(pec.lookup(keys[i], &payload, &was_hot)) << i;
  }
  EXPECT_FALSE(pec.lookup(keys[0], &payload, &was_hot));
  EXPECT_GT(pec.stats().evictions, 0u);
}

TEST(PrefixEntryCache, AllHotSetStillAcceptsInserts) {
  PrefixEntryCache pec(2);
  const auto keys = same_set_hashes(pec, PrefixEntryCache::kWays + 1);
  uint64_t payload = 0;
  bool was_hot = false;
  for (uint64_t i = 0; i < PrefixEntryCache::kWays; ++i) {
    pec.insert(keys[i], i + 1);
    ASSERT_TRUE(pec.lookup(keys[i], &payload, &was_hot));  // all hot
  }
  pec.insert(keys[PrefixEntryCache::kWays], 0x42);
  ASSERT_TRUE(
      pec.lookup(keys[PrefixEntryCache::kWays], &payload, &was_hot));
  EXPECT_EQ(payload, 0x42u);
  EXPECT_EQ(pec.size(), PrefixEntryCache::kWays);
}

TEST(PrefixEntryCache, WithBudgetRespectsBytes) {
  for (uint64_t budget : {4096ull, 64ull << 10, 1ull << 20}) {
    auto pec = PrefixEntryCache::with_budget(budget);
    EXPECT_LE(pec->memory_bytes(), budget);
    EXPECT_GE(pec->memory_bytes(), budget / 4);
  }
}

TEST(PrefixEntryCache, ConcurrentMixedOpsStayCoherent) {
  // Hammer one small cache from several threads mixing inserts, lookups
  // and invalidations. The assertion is the torn-pair safety contract: a
  // successful lookup never returns payload 0, never leaks the hot bit,
  // and never returns a value no thread wrote. (A tag transiently paired
  // with *another* key's payload is allowed -- remote validation catches
  // it -- so the check is membership in the written set, not per-key
  // equality.)
  PrefixEntryCache pec(1 << 4);
  constexpr int kThreads = 4;
  constexpr uint64_t kKeys = 64;
  std::atomic<uint64_t> bogus{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t round = 0; round < 4000; ++round) {
        const uint64_t k = splitmix64(t * 4000 + round) % kKeys;
        const uint64_t payload = 0x1000 + k;  // per-key canonical payload
        switch ((t + round) % 3) {
          case 0:
            pec.insert(k, payload);
            break;
          case 1: {
            uint64_t got = 0;
            bool hot = false;
            if (pec.lookup(k, &got, &hot) &&
                (got < 0x1000 || got >= 0x1000 + kKeys)) {
              bogus.fetch_add(1);
            }
            break;
          }
          default:
            pec.invalidate_if(k, payload & PrefixEntryCache::kAddrMask);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bogus.load(), 0u);
}

}  // namespace
}  // namespace sphinx::filter
