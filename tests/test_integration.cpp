// Cross-system integration tests: every index implementation must give
// byte-identical answers to the same deterministic operation stream, and
// the YCSB runner must drive them to equivalent logical states.
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <memory>

#include "common/rng.h"
#include "test_util.h"
#include "ycsb/dataset.h"
#include "ycsb/runner.h"
#include "ycsb/systems.h"

namespace sphinx {
namespace {

using ycsb::SystemKind;

struct Op {
  int kind;  // 0=insert 1=update 2=remove 3=search 4=scan 5=scan_range
  std::string a, b;
  std::string value;
};

std::vector<Op> make_op_stream(const std::vector<std::string>& keys,
                               size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Op op;
    op.kind = static_cast<int>(rng.next_below(6));
    op.a = keys[rng.next_below(keys.size())];
    op.b = keys[rng.next_below(keys.size())];
    if (op.b < op.a) std::swap(op.a, op.b);
    op.value = "v" + std::to_string(i);
    ops.push_back(std::move(op));
  }
  return ops;
}

// Applies the stream and returns a digest of every result.
std::string run_stream(KvIndex& index, const std::vector<Op>& ops) {
  std::string digest;
  std::string v;
  std::vector<std::pair<std::string, std::string>> out;
  for (const Op& op : ops) {
    switch (op.kind) {
      case 0:
        digest += index.insert(op.a, op.value) ? 'I' : 'i';
        break;
      case 1:
        digest += index.update(op.a, op.value) ? 'U' : 'u';
        break;
      case 2:
        digest += index.remove(op.a) ? 'R' : 'r';
        break;
      case 3:
        if (index.search(op.a, &v)) {
          digest += 'S';
          digest += v;
        } else {
          digest += 's';
        }
        break;
      case 4: {
        index.scan(op.a, 10, &out);
        digest += 'C';
        for (const auto& [k, val] : out) digest += k + "=" + val + ";";
        break;
      }
      default: {
        index.scan_range(op.a, op.b, 20, &out);
        digest += 'G';
        for (const auto& [k, val] : out) digest += k + "=" + val + ";";
        break;
      }
    }
  }
  return digest;
}

TEST(CrossSystem, IdenticalResultsOnMixedKeyStream) {
  const auto keys = testing::mixed_keys(300);
  const auto ops = make_op_stream(keys, 4000, 1234);

  std::string reference;
  for (SystemKind kind :
       {SystemKind::kSphinx, SystemKind::kSphinxNoFilter, SystemKind::kSmart,
        SystemKind::kSmartC, SystemKind::kArt}) {
    auto cluster = testing::make_test_cluster();
    ycsb::SystemSetup setup(kind, *cluster);
    rdma::Endpoint ep(cluster->fabric(), 0, true);
    mem::RemoteAllocator alloc(*cluster, ep);
    auto index = setup.make_client(0, ep, alloc);
    const std::string digest = run_stream(*index, ops);
    if (reference.empty()) {
      reference = digest;
    } else {
      EXPECT_EQ(digest, reference) << ycsb::system_kind_name(kind);
    }
  }
  ASSERT_FALSE(reference.empty());
}

TEST(CrossSystem, BpTreeMatchesOnU64Stream) {
  const auto raw = ycsb::generate_u64_keys(300, 5);
  const auto ops = make_op_stream(raw, 4000, 77);

  std::string reference;
  for (SystemKind kind : {SystemKind::kSphinx, SystemKind::kBpTree}) {
    auto cluster = testing::make_test_cluster();
    ycsb::SystemSetup setup(kind, *cluster);
    rdma::Endpoint ep(cluster->fabric(), 0, true);
    mem::RemoteAllocator alloc(*cluster, ep);
    auto index = setup.make_client(0, ep, alloc);
    const std::string digest = run_stream(*index, ops);
    if (reference.empty()) {
      reference = digest;
    } else {
      EXPECT_EQ(digest, reference);
    }
  }
}

TEST(CrossSystem, RunnerDrivesEquivalentLogicalState) {
  // Same seed, single worker: after a YCSB-D phase (latest reads + inserts)
  // both systems must have inserted exactly the same keys.
  auto run_d = [](SystemKind kind) {
    auto cluster = testing::make_test_cluster();
    ycsb::SystemSetup setup(kind, *cluster);
    ycsb::YcsbRunner runner(*cluster, setup.factory(),
                            ycsb::generate_u64_keys(8000, 3));
    runner.load(4000, 64, /*workers=*/1);
    ycsb::RunOptions options;
    options.workers = 1;
    options.ops_per_worker = 2000;
    options.seed = 9;
    runner.run(ycsb::standard_workload('D'), options);
    return runner.visible_keys();
  };
  EXPECT_EQ(run_d(SystemKind::kSphinx), run_d(SystemKind::kArt));
}

TEST(CrossSystem, YcsbRunnerWorksWithBpTreeOnU64) {
  auto cluster = testing::make_test_cluster();
  ycsb::SystemSetup setup(SystemKind::kBpTree, *cluster);
  ycsb::YcsbRunner runner(*cluster, setup.factory(),
                          ycsb::generate_u64_keys(20000, 3));
  runner.load(15000, 64);
  for (char w : {'A', 'C', 'E', 'L'}) {
    ycsb::RunOptions options;
    options.workers = 6;
    options.ops_per_worker = w == 'E' ? 50 : 300;
    const ycsb::RunResult r = runner.run(ycsb::standard_workload(w),
                                         options);
    EXPECT_EQ(r.misses, 0u) << w;
    EXPECT_GT(r.ops_per_sec, 0.0) << w;
  }
}

TEST(CrossSystem, SphinxAndArtAgreeAfterConcurrentChurn) {
  // Concurrency smoke: run the same multi-threaded churn on Sphinx, then
  // verify the final state key-by-key with a second Sphinx client AND an
  // oracle reconstruction (writes are deterministic per stripe).
  auto cluster = testing::make_test_cluster();
  ycsb::SystemSetup setup(SystemKind::kSphinx, *cluster);
  constexpr int kThreads = 6;
  constexpr int kKeys = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      rdma::Endpoint ep(cluster->fabric(), t % 3, true);
      mem::RemoteAllocator alloc(*cluster, ep);
      auto index = setup.make_client(t % 3, ep, alloc);
      for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < kKeys; ++i) {
          const std::string k =
              "agree:" + std::to_string(t) + ":" + std::to_string(i);
          if (round == 0) {
            index->insert(k, "r0");
          } else if (i % 2 == 0) {
            index->update(k, "r" + std::to_string(round));
          } else {
            index->remove(k);
            index->insert(k, "r" + std::to_string(round));
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  auto verifier = setup.make_client(0, ep, alloc);
  std::string v;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeys; ++i) {
      const std::string k =
          "agree:" + std::to_string(t) + ":" + std::to_string(i);
      ASSERT_TRUE(verifier->search(k, &v)) << k;
      EXPECT_EQ(v, "r2") << k;
    }
  }
}

}  // namespace
}  // namespace sphinx
