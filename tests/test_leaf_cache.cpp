// Tests for the leaf address cache (LAC), the third CN cache tier: payload
// packing, the cache structure itself, the one-round-trip warm read, and
// the deterministic staleness oracles -- every way a cached leaf binding
// can go stale is forced here and must be caught by the fused validate,
// with the fallback descent returning the correct value and the cache
// self-healing on the next access.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/sphinx_index.h"
#include "filter/leaf_addr_cache.h"
#include "rdma/fault_injector.h"
#include "test_util.h"

namespace sphinx::core {
namespace {

TEST(LacPayload, PackUnpack) {
  const uint64_t addr48 = (0x2ull << 40) | 0xdeadb00;
  const uint64_t p = filter::pack_lac_payload(5, addr48);
  EXPECT_EQ(filter::lac_payload_units(p), 5u);
  EXPECT_EQ(filter::lac_payload_addr48(p), addr48);
  EXPECT_EQ(p & (1ull << 63), 0u);  // bit 63 stays free for the hot bit
}

TEST(LeafAddrCache, InsertLookupInvalidate) {
  filter::LeafAddressCache lac(64);
  const uint64_t h = 0x1234567890abcdefull;
  const uint64_t payload = filter::pack_lac_payload(3, 0xabc000);

  uint64_t got = 0;
  bool hot = true;
  EXPECT_FALSE(lac.lookup(h, &got, &hot));

  lac.insert(h, payload);
  ASSERT_TRUE(lac.lookup(h, &got, &hot));
  EXPECT_EQ(got, payload);
  EXPECT_FALSE(hot);  // first touch: second-chance bit not yet set
  ASSERT_TRUE(lac.lookup(h, &got, &hot));
  EXPECT_TRUE(hot);  // the first lookup promoted it

  // Address-keyed invalidation: the wrong address is a no-op (a concurrent
  // refresh must survive a stale purge), the right one removes the entry.
  lac.invalidate_if(h, 0xdef000);
  EXPECT_TRUE(lac.lookup(h, &got, &hot));
  lac.invalidate_if(h, 0xabc000);
  EXPECT_FALSE(lac.lookup(h, &got, &hot));
  EXPECT_EQ(lac.stats().invalidations, 1u);
}

TEST(LeafAddrCache, BudgetSizingRoundsDown) {
  // 100 slots of budget must not allocate 128: the budget is a cap.
  auto lac = filter::LeafAddressCache::with_budget(
      100 * filter::LeafAddressCache::kSlotBytes);
  EXPECT_LE(lac->memory_bytes(), 100 * filter::LeafAddressCache::kSlotBytes);
  EXPECT_GE(lac->capacity(), 1u);
}

// Two clients against one Sphinx instance: `reader_` owns the LAC under
// test; `mutator_` (separate endpoint, no LAC) changes the tree behind the
// reader's back to manufacture every staleness scenario deterministically.
class LeafCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = testing::make_test_cluster();
    refs_ = create_sphinx(*cluster_);
    filter_ = filter::CuckooFilter::with_budget(1 << 20);
    pec_ = filter::PrefixEntryCache::with_budget(1 << 16);
    lac_ = filter::LeafAddressCache::with_budget(1 << 16);

    reader_ep_ = std::make_unique<rdma::Endpoint>(cluster_->fabric(), 0, true);
    reader_alloc_ =
        std::make_unique<mem::RemoteAllocator>(*cluster_, *reader_ep_);
    reader_ = std::make_unique<SphinxIndex>(*cluster_, *reader_ep_,
                                            *reader_alloc_, refs_,
                                            filter_.get(), pec_.get(),
                                            lac_.get());

    mutator_ep_ = std::make_unique<rdma::Endpoint>(cluster_->fabric(), 1, true);
    mutator_alloc_ =
        std::make_unique<mem::RemoteAllocator>(*cluster_, *mutator_ep_);
    mutator_ = std::make_unique<SphinxIndex>(*cluster_, *mutator_ep_,
                                             *mutator_alloc_, refs_,
                                             filter_.get());
  }

  uint64_t reader_rtts() const { return reader_ep_->stats().round_trips; }

  std::unique_ptr<mem::Cluster> cluster_;
  SphinxRefs refs_;
  std::unique_ptr<filter::CuckooFilter> filter_;
  std::unique_ptr<filter::PrefixEntryCache> pec_;
  std::unique_ptr<filter::LeafAddressCache> lac_;
  std::unique_ptr<rdma::Endpoint> reader_ep_;
  std::unique_ptr<mem::RemoteAllocator> reader_alloc_;
  std::unique_ptr<SphinxIndex> reader_;
  std::unique_ptr<rdma::Endpoint> mutator_ep_;
  std::unique_ptr<mem::RemoteAllocator> mutator_alloc_;
  std::unique_ptr<SphinxIndex> mutator_;
};

TEST_F(LeafCacheTest, WarmHitCostsOneRoundTrip) {
  ASSERT_TRUE(reader_->insert("alpha/key-1", "v1"));
  std::string v;

  // Insert populated the LAC, so even the first search is a warm (cold-
  // confidence) hit; the second is a hot hit reading the leaf alone.
  ASSERT_TRUE(reader_->search("alpha/key-1", &v));
  EXPECT_EQ(v, "v1");
  EXPECT_EQ(reader_->sphinx_stats().lac_hits, 1u);
  EXPECT_EQ(reader_->sphinx_stats().lac_stale, 0u);

  const uint64_t before = reader_rtts();
  ASSERT_TRUE(reader_->search("alpha/key-1", &v));
  EXPECT_EQ(v, "v1");
  EXPECT_EQ(reader_rtts() - before, 1u);  // the whole point of the tier
  EXPECT_EQ(reader_->sphinx_stats().lac_hits, 2u);
  EXPECT_EQ(reader_->sphinx_stats().lac_wrong_value, 0u);

  // The round trip is attributed to the LAC phase, nothing unattributed.
  EXPECT_GE(reader_ep_->stats()
                .rtts_by_phase[static_cast<size_t>(
                    rdma::Phase::kLacFusedRead)],
            1u);
  EXPECT_EQ(reader_ep_->stats().rtts_sum_by_phase(),
            reader_ep_->stats().round_trips);
}

TEST_F(LeafCacheTest, SplitDoesNotDisturbCachedBindings) {
  // Splits relink leaves into new inner nodes without moving the leaf
  // blocks, so a split must NOT stale any LAC binding -- this pins down
  // the invariant the coherence argument rests on.
  ASSERT_TRUE(reader_->insert("split/aaaa", "v-a"));
  std::string v;
  ASSERT_TRUE(reader_->search("split/aaaa", &v));
  const uint64_t hits_before = reader_->sphinx_stats().lac_hits;

  // Force splits and inner-node growth (N4 -> N16 -> N48) around the
  // cached leaf's path from the *other* client.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(mutator_->insert("split/aa" + std::string(1, 'b' + i % 20) +
                                     std::to_string(i),
                                 "sib" + std::to_string(i)));
  }

  ASSERT_TRUE(reader_->search("split/aaaa", &v));
  EXPECT_EQ(v, "v-a");
  EXPECT_EQ(reader_->sphinx_stats().lac_hits, hits_before + 1);
  EXPECT_EQ(reader_->sphinx_stats().lac_stale, 0u);
  EXPECT_EQ(reader_->sphinx_stats().lac_wrong_value, 0u);
}

TEST_F(LeafCacheTest, RemoveReinsertIsCaughtAndSelfHeals) {
  ASSERT_TRUE(reader_->insert("stale/key", "old"));
  std::string v;
  ASSERT_TRUE(reader_->search("stale/key", &v));
  ASSERT_GE(reader_->sphinx_stats().lac_hits, 1u);

  // The mutator deletes and reinserts: the old leaf is retired (Invalid,
  // never recycled) and the new one lives at a different address. The
  // reader's cached binding now points at a tombstone.
  ASSERT_TRUE(mutator_->remove("stale/key"));
  ASSERT_TRUE(mutator_->insert("stale/key", "new"));

  const uint64_t stale_before = reader_->sphinx_stats().lac_stale;
  ASSERT_TRUE(reader_->search("stale/key", &v));
  EXPECT_EQ(v, "new");  // never the old value: fused validate caught it
  EXPECT_EQ(reader_->sphinx_stats().lac_stale, stale_before + 1);
  EXPECT_EQ(reader_->sphinx_stats().lac_wrong_value, 0u);

  // Self-heal: the fallback repopulated the binding, so the next read is a
  // clean warm hit again.
  ASSERT_TRUE(reader_->search("stale/key", &v));
  EXPECT_EQ(v, "new");
  EXPECT_EQ(reader_->sphinx_stats().lac_stale, stale_before + 1);
}

TEST_F(LeafCacheTest, OutOfPlaceUpdateIsCaughtAndSelfHeals) {
  ASSERT_TRUE(reader_->insert("move/key", "tiny"));
  std::string v;
  ASSERT_TRUE(reader_->search("move/key", &v));

  // A value too large for the old leaf's unit count forces an out-of-place
  // update: the leaf moves to a fresh allocation, the old block is retired.
  const std::string big(900, 'X');
  ASSERT_TRUE(mutator_->update("move/key", big));

  const uint64_t stale_before = reader_->sphinx_stats().lac_stale;
  ASSERT_TRUE(reader_->search("move/key", &v));
  EXPECT_EQ(v, big);
  EXPECT_EQ(reader_->sphinx_stats().lac_stale, stale_before + 1);
  EXPECT_EQ(reader_->sphinx_stats().lac_wrong_value, 0u);

  ASSERT_TRUE(reader_->search("move/key", &v));
  EXPECT_EQ(v, big);
  EXPECT_EQ(reader_->sphinx_stats().lac_stale, stale_before + 1);
}

TEST_F(LeafCacheTest, InPlaceUpdateKeepsBindingFreshAndVisible) {
  // An in-place update (same-size value) keeps the leaf address, so the
  // reader's binding stays valid AND the fused read must observe the new
  // bytes -- the leaf read is the validation, not a cache of the value.
  ASSERT_TRUE(reader_->insert("inplace/key", "aaaa"));
  std::string v;
  ASSERT_TRUE(reader_->search("inplace/key", &v));

  ASSERT_TRUE(mutator_->update("inplace/key", "bbbb"));

  const uint64_t stale_before = reader_->sphinx_stats().lac_stale;
  ASSERT_TRUE(reader_->search("inplace/key", &v));
  EXPECT_EQ(v, "bbbb");
  EXPECT_EQ(reader_->sphinx_stats().lac_stale, stale_before);
  EXPECT_EQ(reader_->sphinx_stats().lac_wrong_value, 0u);
}

TEST_F(LeafCacheTest, StaleFallbackFusesDescentStart) {
  // Warm the PEC so the cold-confidence rescue path has a fusion partner,
  // then stale the leaf binding: the fallback must consume the fused inner
  // read (start_successes via pending start) instead of re-descending from
  // the root, and the loss is counted.
  ASSERT_TRUE(reader_->insert("fuse/deep/key-77", "before"));
  std::string v;
  ASSERT_TRUE(reader_->search("fuse/deep/key-77", &v));

  ASSERT_TRUE(mutator_->remove("fuse/deep/key-77"));
  ASSERT_TRUE(mutator_->insert("fuse/deep/key-77", "after"));

  // Make the cached entry cold again so the next hit hedges with fusion:
  // insert enough conflicting traffic that the hot bit is the reader's
  // only signal -- simplest is to re-populate via a fresh search miss. A
  // direct route: drop the hot bit by re-inserting the same payload.
  const uint64_t losses_before = reader_->sphinx_stats().lac_fused_losses;
  const uint64_t starts_before = reader_->sphinx_stats().start_successes;
  ASSERT_TRUE(reader_->search("fuse/deep/key-77", &v));
  EXPECT_EQ(v, "after");
  EXPECT_EQ(reader_->sphinx_stats().lac_wrong_value, 0u);
  // Either the fused rescue fired (cold hit) or the root descent ran (hot
  // hit); both must report the stale and return the fresh value. When the
  // rescue fired, it consumed the pending start.
  if (reader_->sphinx_stats().lac_fused_losses > losses_before) {
    EXPECT_EQ(reader_->sphinx_stats().start_successes, starts_before + 1);
  }
}

TEST_F(LeafCacheTest, MnOfflineBetweenPopulateAndReadRecovers) {
  ASSERT_TRUE(reader_->insert("offline/key", "v"));
  std::string v;
  ASSERT_TRUE(reader_->search("offline/key", &v));

  // Every MN rejects the next few verbs: the fused read's first issue is
  // rejected, the endpoint charges a timeout and retries until the MN
  // recovers. The op must still return the correct value and count the
  // rejects -- an offline MN may not produce a wrong answer or a hang.
  rdma::FaultInjector injector(7);
  for (uint32_t mn = 0; mn < 3; ++mn) injector.arm_mn_offline(mn, 2);
  cluster_->fabric().set_fault_injector(&injector);

  ASSERT_TRUE(reader_->search("offline/key", &v));
  EXPECT_EQ(v, "v");
  EXPECT_EQ(reader_->sphinx_stats().lac_wrong_value, 0u);
  EXPECT_GT(injector.stats().offline_rejects, 0u);

  cluster_->fabric().set_fault_injector(nullptr);
  ASSERT_TRUE(reader_->search("offline/key", &v));
  EXPECT_EQ(v, "v");
}

TEST_F(LeafCacheTest, DisabledLacTakesBaselinePath) {
  core::SphinxConfig config;
  config.use_lac = false;
  rdma::Endpoint ep(cluster_->fabric(), 2, true);
  mem::RemoteAllocator alloc(*cluster_, ep);
  SphinxIndex plain(*cluster_, ep, alloc, refs_, filter_.get(), pec_.get(),
                    lac_.get(), config);

  ASSERT_TRUE(plain.insert("nolac/key", "v"));
  std::string v;
  ASSERT_TRUE(plain.search("nolac/key", &v));
  EXPECT_EQ(v, "v");
  EXPECT_EQ(plain.sphinx_stats().lac_hits, 0u);
  EXPECT_EQ(ep.stats()
                .rtts_by_phase[static_cast<size_t>(rdma::Phase::kLacFusedRead)],
            0u);
}

}  // namespace
}  // namespace sphinx::core
