// Unit tests for the memory-node layer: remote allocator, consistent-hash
// ring, cluster bootstrap, allocation accounting.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/hash.h"
#include "memnode/cluster.h"
#include "memnode/consistent_hash.h"
#include "memnode/remote_allocator.h"
#include "test_util.h"

namespace sphinx::mem {
namespace {

TEST(ConsistentHash, CoversAllMnsEvenly) {
  ConsistentHashRing ring(3);
  std::array<uint64_t, 3> counts{};
  for (uint64_t i = 0; i < 300000; ++i) {
    counts[ring.mn_for(splitmix64(i))]++;
  }
  for (uint64_t c : counts) {
    EXPECT_GT(c, 60000u);  // within ~2x of fair share
    EXPECT_LT(c, 160000u);
  }
}

TEST(ConsistentHash, Deterministic) {
  ConsistentHashRing a(3), b(3);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.mn_for(splitmix64(i)), b.mn_for(splitmix64(i)));
  }
}

TEST(ConsistentHash, SingleMn) {
  ConsistentHashRing ring(1);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.mn_for(splitmix64(i)), 0u);
  }
}

// Busiest-MN share over the fair share for `items` uniform hashes.
double ring_imbalance(uint32_t num_mns, uint32_t vnodes, uint64_t items) {
  ConsistentHashRing ring(num_mns, vnodes);
  std::vector<uint64_t> counts(num_mns, 0);
  for (uint64_t i = 0; i < items; ++i) {
    counts[ring.mn_for(splitmix64(i))]++;
  }
  uint64_t max_count = 0;
  for (uint64_t c : counts) max_count = std::max(max_count, c);
  return static_cast<double>(max_count) * num_mns /
         static_cast<double>(items);
}

TEST(ConsistentHash, BalancedAtDefaultVnodesAcrossClusterWidths) {
  // The knee study sweeps clusters from 2 to 16 MNs; at the default 128
  // vnodes/MN the busiest MN's *placement* share must stay within 30% of
  // fair for every width, or "hot MN" findings in the curves could be
  // ring artifacts rather than workload structure.
  for (uint32_t mns : {2u, 3u, 4u, 8u, 12u, 16u}) {
    const double imb = ring_imbalance(mns, 128, 200000);
    EXPECT_LT(imb, 1.30) << "mns=" << mns;
    EXPECT_GE(imb, 1.0) << "mns=" << mns;
  }
}

TEST(ConsistentHash, VnodeCountTightensBalance) {
  // Sensitivity sweep: more vnodes must not make placement worse, and 512
  // vnodes should pin the busiest MN within ~15% of fair even at 16 MNs.
  // (8 vnodes is legitimately lumpy -- up to ~70% over fair at 16 MNs --
  // which is why vnodes_per_mn is now a swept NetworkConfig knob.)
  for (uint32_t mns : {4u, 8u, 16u}) {
    const double coarse = ring_imbalance(mns, 8, 200000);
    const double fine = ring_imbalance(mns, 512, 200000);
    EXPECT_LE(fine, coarse + 0.02) << "mns=" << mns;
    EXPECT_LT(fine, 1.15) << "mns=" << mns;
  }
}

TEST(ConsistentHash, PlacementGoldenFingerprint) {
  // Placement determinism across *releases*, not just within one process:
  // nodes already laid out on MNs by a previous run's ring must map
  // identically forever (a silent ring change would strand every existing
  // remote structure). The fingerprint folds the first 4096 placements at
  // the paper's 3-MN default; if an intentional ring change ever lands,
  // this constant must be bumped consciously alongside a migration story.
  ConsistentHashRing ring(3, 128);
  uint64_t fp = 0xcbf29ce484222325ULL;  // FNV-1a
  for (uint64_t i = 0; i < 4096; ++i) {
    fp ^= ring.mn_for(splitmix64(i));
    fp *= 0x100000001b3ULL;
  }
  EXPECT_EQ(fp, 0x70021d8c1ad66737ULL);
}

TEST(Cluster, BootstrapSlotsDistinct) {
  auto cluster = testing::make_test_cluster(1 << 20);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10; ++i) {
    rdma::GlobalAddr a = cluster->reserve_bootstrap_slot(i % 3);
    EXPECT_TRUE(seen.insert(a.raw()).second);
    EXPECT_GE(a.offset(), kBootstrapBase);
    EXPECT_LT(a.offset(), kHeapBase);
  }
}

TEST(Allocator, AlignmentAndDistinctness) {
  auto cluster = testing::make_test_cluster(8 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep);
  std::set<uint64_t> addrs;
  for (int i = 0; i < 1000; ++i) {
    rdma::GlobalAddr a = alloc.alloc(0, 1 + (i % 200), AllocTag::kOther);
    EXPECT_EQ(a.offset() % 64, 0u);
    EXPECT_GE(a.offset(), kHeapBase);
    EXPECT_TRUE(addrs.insert(a.raw()).second);
  }
}

TEST(Allocator, FreeListReuse) {
  auto cluster = testing::make_test_cluster(8 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep);
  rdma::GlobalAddr a = alloc.alloc(1, 100, AllocTag::kLeaf);
  alloc.free(a, 100, AllocTag::kLeaf);
  rdma::GlobalAddr b = alloc.alloc(1, 100, AllocTag::kLeaf);
  EXPECT_EQ(a, b);  // same size class comes back from the freelist
}

TEST(Allocator, LeasesChunksViaFaa) {
  auto cluster = testing::make_test_cluster(32 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep, /*chunk_bytes=*/1 << 20);
  EXPECT_EQ(alloc.leased_bytes(), 0u);
  alloc.alloc(0, 64, AllocTag::kOther);
  EXPECT_EQ(alloc.leased_bytes(), 1ull << 20);
  // Filling the chunk triggers another lease.
  for (int i = 0; i < (1 << 20) / 64; ++i) {
    alloc.alloc(0, 64, AllocTag::kOther);
  }
  EXPECT_EQ(alloc.leased_bytes(), 2ull << 20);
}

TEST(Allocator, OversizedAllocationGetsOwnChunk) {
  auto cluster = testing::make_test_cluster(64 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep, /*chunk_bytes=*/1 << 20);
  rdma::GlobalAddr a = alloc.alloc(0, 8 << 20, AllocTag::kOther);
  EXPECT_FALSE(a.is_null());
  EXPECT_GE(alloc.leased_bytes(), 8ull << 20);
}

TEST(Allocator, ThrowsWhenMnExhausted) {
  auto cluster = testing::make_test_cluster(2 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep, /*chunk_bytes=*/1 << 20);
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) {
          alloc.alloc(0, 1 << 20, AllocTag::kOther);
        }
      },
      std::bad_alloc);
}

TEST(Allocator, TryAllocFailsRecoverablyThenRecyclesRetiredBlocks) {
  // Exhaustion through try_alloc is a degraded mode: ok=false and a counted
  // alloc_failure, never a throw. Retiring live blocks then makes the very
  // next try_alloc succeed again -- its internal reclaim pass ripens the
  // epoch and drains the quarantine back into the freelists.
  auto cluster = testing::make_test_cluster(2 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep, /*chunk_bytes=*/1 << 20);
  std::vector<rdma::GlobalAddr> live;
  bool failed = false;
  for (int i = 0; i < 64; ++i) {
    AllocResult r = alloc.try_alloc(0, 256 << 10, AllocTag::kLeaf);
    if (!r.ok) {
      failed = true;
      break;
    }
    live.push_back(r.addr);
  }
  ASSERT_TRUE(failed) << "heap never exhausted; test is vacuous";
  ASSERT_FALSE(live.empty());
  EXPECT_GT(cluster->alloc_stats().alloc_failures(), 0u);
  for (rdma::GlobalAddr a : live) {
    alloc.retire(a, 256 << 10, AllocTag::kLeaf);
  }
  AllocResult again = alloc.try_alloc(0, 256 << 10, AllocTag::kLeaf);
  EXPECT_TRUE(again.ok);
  EXPECT_GT(cluster->alloc_stats().reclaimed_blocks(), 0u);
  EXPECT_EQ(cluster->alloc_stats().underflows(), 0u);
}

TEST(Allocator, QuarantineIsNotRecycledBeforeStampPlusTwo) {
  auto cluster = testing::make_test_cluster(8 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep);
  rdma::GlobalAddr a = alloc.alloc(0, 100, AllocTag::kLeaf);
  alloc.retire(a, 100, AllocTag::kLeaf);
  // Not ripe yet: flushing recycles nothing and a fresh alloc must carve
  // new space rather than resurrect the possibly-still-referenced block.
  EXPECT_EQ(alloc.flush_quarantine(), 0u);
  rdma::GlobalAddr b = alloc.alloc(0, 100, AllocTag::kLeaf);
  EXPECT_NE(a, b);
  EXPECT_EQ(alloc.quarantined_blocks(), 1u);
}

TEST(Allocator, RetireRecycleRoundTripKeepsAccountingExact) {
  // Tagged live bytes keep counting a quarantined block until it actually
  // recycles (the memory is still unavailable), then drop by exactly the
  // alloc-time sizes: the tag travels with the block, so the round trip
  // can never drift the per-tag counters or trip the underflow tripwire.
  auto cluster = testing::make_test_cluster(8 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep);
  AllocStats& stats = cluster->alloc_stats();
  std::vector<rdma::GlobalAddr> blocks;
  for (int i = 0; i < 3; ++i) {
    blocks.push_back(alloc.alloc(0, 100, AllocTag::kLeaf));
  }
  EXPECT_EQ(stats.requested_bytes(AllocTag::kLeaf), 300u);
  for (rdma::GlobalAddr a : blocks) {
    alloc.retire(a, 100, AllocTag::kLeaf);
  }
  EXPECT_EQ(stats.requested_bytes(AllocTag::kLeaf), 300u);  // still live
  EXPECT_EQ(stats.retired_bytes_outstanding(), 3 * 128u);
  cluster->epochs().try_advance();
  cluster->epochs().try_advance();
  EXPECT_EQ(alloc.flush_quarantine(), 3u);
  EXPECT_EQ(stats.requested_bytes(AllocTag::kLeaf), 0u);
  EXPECT_EQ(stats.count(AllocTag::kLeaf), 0u);
  EXPECT_EQ(stats.retired_bytes_outstanding(), 0u);
  EXPECT_EQ(stats.reclaimed_blocks(), 3u);
  EXPECT_EQ(stats.underflows(), 0u);
}

TEST(Allocator, RecycledBlocksServeTheWholePaddedSizeClass) {
  // Freelists are keyed by padded size: a block retired from a 100-byte
  // request (padded 128) must satisfy a later 110-byte request (also 128).
  auto cluster = testing::make_test_cluster(8 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep);
  rdma::GlobalAddr a = alloc.alloc(1, 100, AllocTag::kLeaf);
  alloc.retire(a, 100, AllocTag::kLeaf);
  cluster->epochs().try_advance();
  cluster->epochs().try_advance();
  ASSERT_EQ(alloc.flush_quarantine(), 1u);
  AllocResult r = alloc.try_alloc(1, 110, AllocTag::kLeaf);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.addr, a);
  EXPECT_EQ(cluster->alloc_stats().underflows(), 0u);
}

TEST(Allocator, ChurnRecyclesWithoutGrowingTheLease) {
  // Sustained alloc/retire churn far beyond the chunk size must be served
  // from recycled blocks: leased bytes stay at the first chunk while the
  // cumulative turnover is ~8x larger. This is the memory-boundedness
  // property the churn workload gates in CI, reduced to the allocator.
  auto cluster = testing::make_test_cluster(8 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep);  // default 256 KiB chunks
  constexpr uint64_t kBlock = 1024;
  constexpr int kIters = 2048;  // 2 MiB of turnover
  for (int i = 0; i < kIters; ++i) {
    AllocResult r = alloc.try_alloc(0, kBlock, AllocTag::kLeaf);
    ASSERT_TRUE(r.ok) << "iteration " << i;
    alloc.retire(r.addr, kBlock, AllocTag::kLeaf);
    cluster->epochs().try_advance();
    alloc.flush_quarantine();
  }
  EXPECT_EQ(alloc.leased_bytes(), RemoteAllocator::kDefaultChunkBytes);
  EXPECT_GT(cluster->alloc_stats().reclaimed_blocks(),
            static_cast<uint64_t>(kIters) - 8);
  // Only the not-yet-ripe tail (stamp+2 lag) may remain outstanding.
  EXPECT_LE(cluster->alloc_stats().retired_bytes_outstanding(), 4 * kBlock);
  EXPECT_EQ(cluster->alloc_stats().underflows(), 0u);
}

TEST(AllocStats, UnderflowTripwireCountsMismatchedFree) {
  // Freeing with sizes the block was never allocated with must be counted,
  // not silently wrapped: the counter is the accounting-drift tripwire the
  // bench gate and stress battery assert on.
  auto cluster = testing::make_test_cluster(8 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep);
  rdma::GlobalAddr a = alloc.alloc(0, 100, AllocTag::kLeaf);
  EXPECT_EQ(cluster->alloc_stats().underflows(), 0u);
  alloc.free(a, 200, AllocTag::kLeaf);  // wrong size: requested 200 > 100
  EXPECT_GE(cluster->alloc_stats().underflows(), 1u);
}

TEST(Allocator, OrphanedQuarantineRescuesALaterClient) {
  // A client that retires blocks and shuts down before they ripen donates
  // them to the shared orphan list. A later client facing an exhausted
  // bump pointer must adopt those orphans in its reclaim pass and serve
  // the allocation from them -- MN offsets are global, so the freelist
  // hand-off crosses client lifetimes.
  auto cluster = testing::make_test_cluster(2 << 20);
  {
    rdma::Endpoint ep = cluster->make_loader_endpoint();
    RemoteAllocator first(*cluster, ep, /*chunk_bytes=*/1 << 20);
    std::vector<rdma::GlobalAddr> live;
    for (int i = 0; i < 64; ++i) {
      AllocResult r = first.try_alloc(0, 256 << 10, AllocTag::kOther);
      if (!r.ok) break;
      live.push_back(r.addr);
    }
    ASSERT_FALSE(live.empty());
    for (rdma::GlobalAddr a : live) {
      first.retire(a, 256 << 10, AllocTag::kOther);
    }
  }  // destructor: quarantine not ripe -> donated as orphans
  EXPECT_GT(cluster->epochs().orphan_count(), 0u);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator second(*cluster, ep, /*chunk_bytes=*/1 << 20);
  AllocResult r = second.try_alloc(0, 256 << 10, AllocTag::kOther);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(cluster->alloc_stats().reclaimed_blocks(), 0u);
}

TEST(Allocator, ConcurrentClientsGetDisjointChunks) {
  auto cluster = testing::make_test_cluster(64 << 20);
  constexpr int kThreads = 8;
  std::array<std::vector<uint64_t>, kThreads> per_thread;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rdma::Endpoint ep(cluster->fabric(), 0, /*metered=*/false);
      RemoteAllocator alloc(*cluster, ep, 1 << 18);
      for (int i = 0; i < 2000; ++i) {
        per_thread[t].push_back(alloc.alloc(2, 128, AllocTag::kOther).raw());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<uint64_t> all;
  for (const auto& v : per_thread) {
    for (uint64_t a : v) {
      EXPECT_TRUE(all.insert(a).second) << "address handed out twice";
    }
  }
}

TEST(AllocStats, TracksByTag) {
  auto cluster = testing::make_test_cluster(8 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep);
  AllocStats& stats = cluster->alloc_stats();
  alloc.alloc(0, 100, AllocTag::kLeaf);
  alloc.alloc(0, 50, AllocTag::kLeaf);
  alloc.alloc(1, 2000, AllocTag::kInnerNode);
  EXPECT_EQ(stats.requested_bytes(AllocTag::kLeaf), 150u);
  EXPECT_EQ(stats.padded_bytes(AllocTag::kLeaf), 128u + 64u);
  EXPECT_EQ(stats.count(AllocTag::kLeaf), 2u);
  EXPECT_EQ(stats.requested_bytes(AllocTag::kInnerNode), 2000u);
  EXPECT_EQ(stats.total_requested(), 2150u);
  rdma::GlobalAddr a = alloc.alloc(0, 100, AllocTag::kLeaf);
  alloc.free(a, 100, AllocTag::kLeaf);
  EXPECT_EQ(stats.requested_bytes(AllocTag::kLeaf), 150u);
}

}  // namespace
}  // namespace sphinx::mem
