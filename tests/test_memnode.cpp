// Unit tests for the memory-node layer: remote allocator, consistent-hash
// ring, cluster bootstrap, allocation accounting.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/hash.h"
#include "memnode/cluster.h"
#include "memnode/consistent_hash.h"
#include "memnode/remote_allocator.h"
#include "test_util.h"

namespace sphinx::mem {
namespace {

TEST(ConsistentHash, CoversAllMnsEvenly) {
  ConsistentHashRing ring(3);
  std::array<uint64_t, 3> counts{};
  for (uint64_t i = 0; i < 300000; ++i) {
    counts[ring.mn_for(splitmix64(i))]++;
  }
  for (uint64_t c : counts) {
    EXPECT_GT(c, 60000u);  // within ~2x of fair share
    EXPECT_LT(c, 160000u);
  }
}

TEST(ConsistentHash, Deterministic) {
  ConsistentHashRing a(3), b(3);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.mn_for(splitmix64(i)), b.mn_for(splitmix64(i)));
  }
}

TEST(ConsistentHash, SingleMn) {
  ConsistentHashRing ring(1);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.mn_for(splitmix64(i)), 0u);
  }
}

TEST(Cluster, BootstrapSlotsDistinct) {
  auto cluster = testing::make_test_cluster(1 << 20);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10; ++i) {
    rdma::GlobalAddr a = cluster->reserve_bootstrap_slot(i % 3);
    EXPECT_TRUE(seen.insert(a.raw()).second);
    EXPECT_GE(a.offset(), kBootstrapBase);
    EXPECT_LT(a.offset(), kHeapBase);
  }
}

TEST(Allocator, AlignmentAndDistinctness) {
  auto cluster = testing::make_test_cluster(8 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep);
  std::set<uint64_t> addrs;
  for (int i = 0; i < 1000; ++i) {
    rdma::GlobalAddr a = alloc.alloc(0, 1 + (i % 200), AllocTag::kOther);
    EXPECT_EQ(a.offset() % 64, 0u);
    EXPECT_GE(a.offset(), kHeapBase);
    EXPECT_TRUE(addrs.insert(a.raw()).second);
  }
}

TEST(Allocator, FreeListReuse) {
  auto cluster = testing::make_test_cluster(8 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep);
  rdma::GlobalAddr a = alloc.alloc(1, 100, AllocTag::kLeaf);
  alloc.free(a, 100, AllocTag::kLeaf);
  rdma::GlobalAddr b = alloc.alloc(1, 100, AllocTag::kLeaf);
  EXPECT_EQ(a, b);  // same size class comes back from the freelist
}

TEST(Allocator, LeasesChunksViaFaa) {
  auto cluster = testing::make_test_cluster(32 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep, /*chunk_bytes=*/1 << 20);
  EXPECT_EQ(alloc.leased_bytes(), 0u);
  alloc.alloc(0, 64, AllocTag::kOther);
  EXPECT_EQ(alloc.leased_bytes(), 1ull << 20);
  // Filling the chunk triggers another lease.
  for (int i = 0; i < (1 << 20) / 64; ++i) {
    alloc.alloc(0, 64, AllocTag::kOther);
  }
  EXPECT_EQ(alloc.leased_bytes(), 2ull << 20);
}

TEST(Allocator, OversizedAllocationGetsOwnChunk) {
  auto cluster = testing::make_test_cluster(64 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep, /*chunk_bytes=*/1 << 20);
  rdma::GlobalAddr a = alloc.alloc(0, 8 << 20, AllocTag::kOther);
  EXPECT_FALSE(a.is_null());
  EXPECT_GE(alloc.leased_bytes(), 8ull << 20);
}

TEST(Allocator, ThrowsWhenMnExhausted) {
  auto cluster = testing::make_test_cluster(2 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep, /*chunk_bytes=*/1 << 20);
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) {
          alloc.alloc(0, 1 << 20, AllocTag::kOther);
        }
      },
      std::bad_alloc);
}

TEST(Allocator, ConcurrentClientsGetDisjointChunks) {
  auto cluster = testing::make_test_cluster(64 << 20);
  constexpr int kThreads = 8;
  std::array<std::vector<uint64_t>, kThreads> per_thread;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rdma::Endpoint ep(cluster->fabric(), 0, /*metered=*/false);
      RemoteAllocator alloc(*cluster, ep, 1 << 18);
      for (int i = 0; i < 2000; ++i) {
        per_thread[t].push_back(alloc.alloc(2, 128, AllocTag::kOther).raw());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<uint64_t> all;
  for (const auto& v : per_thread) {
    for (uint64_t a : v) {
      EXPECT_TRUE(all.insert(a).second) << "address handed out twice";
    }
  }
}

TEST(AllocStats, TracksByTag) {
  auto cluster = testing::make_test_cluster(8 << 20);
  rdma::Endpoint ep = cluster->make_loader_endpoint();
  RemoteAllocator alloc(*cluster, ep);
  AllocStats& stats = cluster->alloc_stats();
  alloc.alloc(0, 100, AllocTag::kLeaf);
  alloc.alloc(0, 50, AllocTag::kLeaf);
  alloc.alloc(1, 2000, AllocTag::kInnerNode);
  EXPECT_EQ(stats.requested_bytes(AllocTag::kLeaf), 150u);
  EXPECT_EQ(stats.padded_bytes(AllocTag::kLeaf), 128u + 64u);
  EXPECT_EQ(stats.count(AllocTag::kLeaf), 2u);
  EXPECT_EQ(stats.requested_bytes(AllocTag::kInnerNode), 2000u);
  EXPECT_EQ(stats.total_requested(), 2150u);
  rdma::GlobalAddr a = alloc.alloc(0, 100, AllocTag::kLeaf);
  alloc.free(a, 100, AllocTag::kLeaf);
  EXPECT_EQ(stats.requested_bytes(AllocTag::kLeaf), 150u);
}

}  // namespace
}  // namespace sphinx::mem
