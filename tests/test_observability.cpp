// Tests for the observability layer: phase-tagged RTT attribution, per-MN
// traffic accounting on wide clusters, trace spans, the metrics registry,
// and the runner's honesty fixes (insert failures, overflow-update misses,
// saturated-NIC latency consistency).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/metrics.h"
#include "core/sphinx_index.h"
#include "memnode/cluster.h"
#include "memnode/remote_allocator.h"
#include "rdma/endpoint.h"
#include "rdma/trace.h"
#include "test_util.h"
#include "ycsb/dataset.h"
#include "ycsb/runner.h"
#include "ycsb/systems.h"
#include "ycsb/workload.h"

namespace sphinx {
namespace {

// ---- phase scopes ---------------------------------------------------------------

TEST(Phase, ScopeRestoresAndInnermostWins) {
  rdma::NetworkConfig cfg;
  cfg.num_cns = 1;
  cfg.num_mns = 2;
  rdma::Fabric fabric(cfg, 1 << 20);
  rdma::Endpoint ep(fabric, 0);
  EXPECT_EQ(ep.phase(), rdma::Phase::kUnattributed);
  {
    rdma::PhaseScope outer(ep, rdma::Phase::kInnerRead);
    EXPECT_EQ(ep.phase(), rdma::Phase::kInnerRead);
    ep.read64(rdma::GlobalAddr(0, 64));
    {
      rdma::PhaseScope inner(ep, rdma::Phase::kLeafRead);
      EXPECT_EQ(ep.phase(), rdma::Phase::kLeafRead);
      ep.read64(rdma::GlobalAddr(0, 64));
    }
    EXPECT_EQ(ep.phase(), rdma::Phase::kInnerRead);
  }
  EXPECT_EQ(ep.phase(), rdma::Phase::kUnattributed);
  const auto& s = ep.stats();
  EXPECT_EQ(s.rtts_by_phase[static_cast<size_t>(rdma::Phase::kInnerRead)], 1u);
  EXPECT_EQ(s.rtts_by_phase[static_cast<size_t>(rdma::Phase::kLeafRead)], 1u);
  EXPECT_EQ(s.rtts_sum_by_phase(), s.round_trips);
}

TEST(Phase, BatchAttributedWholeToCurrentPhase) {
  rdma::NetworkConfig cfg;
  cfg.num_cns = 1;
  cfg.num_mns = 2;
  rdma::Fabric fabric(cfg, 1 << 20);
  rdma::Endpoint ep(fabric, 0);
  uint64_t buf[4] = {};
  {
    rdma::PhaseScope scope(ep, rdma::Phase::kScanFrontier);
    rdma::DoorbellBatch batch(ep);
    batch.add_read(rdma::GlobalAddr(0, 64), &buf[0], 8);
    batch.add_read(rdma::GlobalAddr(1, 64), &buf[1], 8);
    batch.add_write(rdma::GlobalAddr(0, 128), &buf[2], 16);
    batch.execute();
  }
  const auto& s = ep.stats();
  EXPECT_EQ(s.round_trips, 1u);
  EXPECT_EQ(s.rtts_by_phase[static_cast<size_t>(rdma::Phase::kScanFrontier)],
            1u);
  // The whole batch's bytes land on the batch's phase.
  EXPECT_EQ(s.bytes_by_phase[static_cast<size_t>(rdma::Phase::kScanFrontier)],
            8u + 8u + 16u);
  EXPECT_EQ(s.bytes_sum_by_phase(), s.bytes_total());
}

TEST(Phase, NamesCoverEveryPhase) {
  for (uint32_t p = 0; p < rdma::kNumPhases; ++p) {
    const char* name = rdma::phase_name(static_cast<rdma::Phase>(p));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "phase " << p << " has no name";
  }
}

// ---- per-MN accounting on wide clusters -----------------------------------------

TEST(EndpointStats, ManyMnsFullyAccounted) {
  // 12 MNs: more than the old fixed-size tracking arrays (8) held. Traffic
  // to every MN must appear in the per-MN breakdown, so the NIC capacity
  // model sees all of it.
  rdma::NetworkConfig cfg;
  cfg.num_cns = 1;
  cfg.num_mns = 12;
  rdma::Fabric fabric(cfg, 1 << 20);
  rdma::Endpoint ep(fabric, 0);
  ASSERT_EQ(ep.stats().msgs_per_mn.size(), 12u);
  for (uint32_t mn = 0; mn < 12; ++mn) {
    ep.read64(rdma::GlobalAddr(mn, 64));
    ep.read64(rdma::GlobalAddr(mn, 64));
  }
  const auto& s = ep.stats();
  uint64_t msg_sum = 0;
  uint64_t byte_sum = 0;
  for (uint32_t mn = 0; mn < 12; ++mn) {
    EXPECT_EQ(s.msgs_per_mn[mn], 2u) << mn;
    msg_sum += s.msgs_per_mn[mn];
    byte_sum += s.bytes_per_mn[mn];
  }
  EXPECT_EQ(msg_sum, s.messages);
  EXPECT_EQ(byte_sum, s.bytes_total());

  // Merge/diff keep the vectors element-wise consistent (the merged stats
  // start with empty vectors and must grow to cover all 12 slots).
  rdma::EndpointStats sum;
  sum += s;
  sum += s;
  ASSERT_EQ(sum.msgs_per_mn.size(), 12u);
  EXPECT_EQ(sum.msgs_per_mn[11], 4u);
  const rdma::EndpointStats diff = sum - s;
  EXPECT_EQ(diff.msgs_per_mn[11], 2u);
  EXPECT_EQ(diff.round_trips, s.round_trips);
}

TEST(Runner, WideClusterNicModelSeesEveryMn) {
  // On a 12-MN cluster the capacity model must account traffic to MNs
  // beyond index 8; node placement is consistent-hashed over all MNs, so a
  // modest run touches well more than 8 of them and their message counts
  // must sum exactly to the total.
  rdma::NetworkConfig cfg;
  cfg.num_cns = 3;
  cfg.num_mns = 12;
  auto cluster = std::make_unique<mem::Cluster>(cfg, 64ull << 20);
  ycsb::SystemSetup setup(ycsb::SystemKind::kArt, *cluster, 1 << 20);
  const auto keys = ycsb::generate_u64_keys(2000, 1);
  ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
  runner.load(1500, 64, 4);
  ycsb::RunOptions options;
  options.workers = 6;
  options.ops_per_worker = 100;
  const ycsb::RunResult r = runner.run(ycsb::standard_workload('C'), options);
  ASSERT_EQ(r.net.msgs_per_mn.size(), 12u);
  uint64_t per_mn_sum = 0;
  uint32_t mns_touched = 0;
  for (uint64_t m : r.net.msgs_per_mn) {
    per_mn_sum += m;
    if (m > 0) mns_touched++;
  }
  EXPECT_EQ(per_mn_sum, r.net.messages);
  EXPECT_GT(mns_touched, 8u);  // traffic really spreads past the old cap
  EXPECT_GT(r.nic_utilization, 0.0);
}

// ---- attribution across systems and workloads -----------------------------------

TEST(Attribution, SumsToRoundTripsForEverySystemAndWorkload) {
  const auto keys = ycsb::generate_u64_keys(3000, 1);
  for (const ycsb::SystemKind kind :
       {ycsb::SystemKind::kSphinx, ycsb::SystemKind::kSmart,
        ycsb::SystemKind::kSmartC, ycsb::SystemKind::kArt,
        ycsb::SystemKind::kBpTree}) {
    auto cluster = testing::make_test_cluster(64ull << 20);
    ycsb::SystemSetup setup(kind, *cluster, 1 << 20);
    ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
    runner.load(2000, 64, 4);
    for (char w : {'A', 'B', 'C', 'E'}) {
      ycsb::RunOptions options;
      options.workers = 6;
      options.ops_per_worker = w == 'E' ? 30 : 80;
      const ycsb::RunResult r =
          runner.run(ycsb::standard_workload(w), options);
      const auto& s = r.net;
      ASSERT_GT(s.round_trips, 0u) << setup.name() << " " << w;
      // Every round trip and every byte carries exactly one phase tag.
      EXPECT_EQ(s.rtts_sum_by_phase(), s.round_trips)
          << setup.name() << " " << w;
      EXPECT_EQ(s.bytes_sum_by_phase(), s.bytes_total())
          << setup.name() << " " << w;
      // And none of them leaked past the protocol code untagged.
      EXPECT_EQ(
          s.rtts_by_phase[static_cast<size_t>(rdma::Phase::kUnattributed)],
          0u)
          << setup.name() << " " << w;
    }
  }
}

// ---- LAC off == pre-LAC behavior ------------------------------------------------

TEST(Attribution, NoLacRunIsPreLacBitForBit) {
  // With the leaf address cache disabled (--no-lac), Sphinx must behave
  // exactly as it did before the LAC existed: the filter gets its pre-LAC
  // 70% budget share back, no round trip is ever tagged with the LAC's
  // fused-read phase, and a fixed-seed single-worker run is deterministic.
  const uint64_t budget = 1 << 20;
  const auto keys = ycsb::generate_u64_keys(2000, 1);
  auto run_once = [&](uint64_t lac_budget) {
    auto cluster = testing::make_test_cluster(64ull << 20);
    ycsb::SystemSetup setup(ycsb::SystemKind::kSphinx, *cluster, budget,
                            ycsb::kAutoPecBudget, lac_budget);
    if (lac_budget == 0) {
      EXPECT_EQ(setup.lac(0), nullptr);
      // The LAC's 25% slice returns to the filter: same sizing as the
      // pre-LAC 70/25 split, byte for byte.
      const auto pre_lac_filter =
          filter::CuckooFilter::with_budget(budget * 70 / 100);
      EXPECT_EQ(setup.filter(0)->memory_bytes(),
                pre_lac_filter->memory_bytes());
    } else {
      EXPECT_NE(setup.lac(0), nullptr);
    }
    ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
    runner.load(1500, 64, /*workers=*/1);
    ycsb::RunOptions options;
    options.workers = 1;
    options.ops_per_worker = 200;
    options.seed = 23;
    return runner.run(ycsb::standard_workload('C'), options);
  };

  const ycsb::RunResult off_a = run_once(0);
  const ycsb::RunResult off_b = run_once(0);
  EXPECT_EQ(off_a.net.round_trips, off_b.net.round_trips);
  EXPECT_EQ(off_a.net.bytes_total(), off_b.net.bytes_total());
  EXPECT_EQ(off_a.net.messages, off_b.net.messages);
  EXPECT_DOUBLE_EQ(off_a.ops_per_sec, off_b.ops_per_sec);
  EXPECT_DOUBLE_EQ(off_a.sim_seconds, off_b.sim_seconds);
  // Not one round trip or byte on the LAC phase: the fast path is
  // compiled out of the run, not merely losing its lookups.
  const auto lac_phase = static_cast<size_t>(rdma::Phase::kLacFusedRead);
  EXPECT_EQ(off_a.net.rtts_by_phase[lac_phase], 0u);
  EXPECT_EQ(off_a.net.bytes_by_phase[lac_phase], 0u);

  // The zero check is not vacuous: the same run with the LAC enabled does
  // route warm reads through the fused phase, and saves round trips.
  const ycsb::RunResult on = run_once(ycsb::kAutoLacBudget);
  EXPECT_GT(on.net.rtts_by_phase[lac_phase], 0u);
  EXPECT_LT(on.net.round_trips, off_a.net.round_trips);
}

// ---- phase attribution under cross-op fusion ------------------------------------

TEST(Attribution, PipelinedFusionSumsExactlyAndSharesRounds) {
  // One doorbell round trip serving several ops is still charged to
  // exactly one phase -- the whole round to kLacFusedRead, nothing split
  // or prorated across the ops sharing the wire (the charging rule in
  // rdma/phase.h) -- so per-phase RTT/byte sums equal totals under
  // arbitrary cross-op fusion. And the shared round must actually be
  // shared: warm read-heavy batches at depth 8 complete several ops per
  // cross-op round trip.
  const auto keys = ycsb::generate_u64_keys(3000, 1);
  auto cluster = testing::make_test_cluster(64ull << 20);
  ycsb::SystemSetup setup(ycsb::SystemKind::kSphinx, *cluster, 1 << 20);
  ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
  runner.load(2000, 64, 4);
  core::SphinxStats agg;
  std::mutex agg_mu;
  runner.set_per_worker_hook([&](KvIndex& index, uint32_t) {
    if (auto* s = dynamic_cast<core::SphinxIndex*>(&index)) {
      std::lock_guard<std::mutex> lock(agg_mu);
      agg += s->sphinx_stats();
    }
  });
  for (char w : {'C', 'A', 'D'}) {
    ycsb::RunOptions options;
    options.workers = 6;
    options.ops_per_worker = 200;
    options.pipeline_depth = 8;
    const ycsb::RunResult r = runner.run(ycsb::standard_workload(w), options);
    const auto& s = r.net;
    ASSERT_GT(s.round_trips, 0u) << w;
    EXPECT_EQ(s.rtts_sum_by_phase(), s.round_trips) << w;
    EXPECT_EQ(s.bytes_sum_by_phase(), s.bytes_total()) << w;
    EXPECT_EQ(
        s.rtts_by_phase[static_cast<size_t>(rdma::Phase::kUnattributed)], 0u)
        << w;
  }
  // More ops completed by fused rounds than rounds issued: the doorbell
  // batches really carried multiple ops each.
  EXPECT_GT(agg.batch_fused_rounds, 0u);
  EXPECT_GT(agg.batch_fused_ops, 2 * agg.batch_fused_rounds);
  EXPECT_EQ(agg.lac_wrong_value, 0u);
}

// ---- runner honesty: insert failures --------------------------------------------

// Wraps a real index client and, once `armed` is set, vetoes a
// deterministic subset of inserts (and optionally all updates) without
// touching remote memory, so the runner's failure accounting can be
// observed exactly. Disarmed during bulk load (the loader treats insert
// failures as fatal).
class FlakyIndex final : public KvIndex {
 public:
  FlakyIndex(std::unique_ptr<KvIndex> inner, uint32_t veto_every,
             bool fail_updates, const std::atomic<bool>* armed,
             std::atomic<uint64_t>* vetoed)
      : inner_(std::move(inner)),
        veto_every_(veto_every),
        fail_updates_(fail_updates),
        armed_(armed),
        vetoed_(vetoed) {}

  bool search(Slice key, std::string* value_out) override {
    return inner_->search(key, value_out);
  }
  bool insert(Slice key, Slice value) override {
    if (armed_->load(std::memory_order_relaxed) && veto_every_ > 0 &&
        ++insert_calls_ % veto_every_ == 0) {
      vetoed_->fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return inner_->insert(key, value);
  }
  bool update(Slice key, Slice value) override {
    if (armed_->load(std::memory_order_relaxed) && fail_updates_) return false;
    return inner_->update(key, value);
  }
  bool remove(Slice key) override { return inner_->remove(key); }
  size_t scan(Slice start_key, size_t count,
              std::vector<std::pair<std::string, std::string>>* out) override {
    return inner_->scan(start_key, count, out);
  }
  size_t scan_range(
      Slice low_key, Slice high_key, size_t max_results,
      std::vector<std::pair<std::string, std::string>>* out) override {
    return inner_->scan_range(low_key, high_key, max_results, out);
  }
  bool last_scan_truncated() const override {
    return inner_->last_scan_truncated();
  }
  const char* name() const override { return "Flaky"; }

 private:
  std::unique_ptr<KvIndex> inner_;
  uint32_t veto_every_;
  bool fail_updates_;
  const std::atomic<bool>* armed_;
  std::atomic<uint64_t>* vetoed_;
  uint64_t insert_calls_ = 0;
};

TEST(Runner, FailedInsertsDoNotAdvanceVisibleSet) {
  auto cluster = testing::make_test_cluster(64ull << 20);
  ycsb::SystemSetup setup(ycsb::SystemKind::kArt, *cluster, 1 << 20);
  const auto keys = ycsb::generate_u64_keys(4000, 1);
  std::atomic<bool> armed{false};
  std::atomic<uint64_t> vetoed{0};
  auto base = setup.factory();
  ycsb::IndexFactory flaky_factory =
      [&](uint32_t worker_id, uint32_t cn, rdma::Endpoint& endpoint,
          mem::RemoteAllocator& allocator) -> std::unique_ptr<KvIndex> {
    return std::make_unique<FlakyIndex>(
        base(worker_id, cn, endpoint, allocator), /*veto_every=*/3,
        /*fail_updates=*/false, &armed, &vetoed);
  };
  ycsb::YcsbRunner runner(*cluster, flaky_factory, keys);
  runner.load(1000, 64, 4);
  const uint64_t n0 = runner.visible_keys();
  ASSERT_EQ(n0, 1000u);
  armed = true;

  // 100%-insert phase: every third insert per worker is vetoed.
  ycsb::RunOptions options;
  options.workers = 4;
  options.ops_per_worker = 200;
  const ycsb::RunResult r = runner.run(ycsb::standard_workload('L'), options);

  EXPECT_GT(vetoed.load(), 0u);
  EXPECT_EQ(r.insert_failures, vetoed.load());
  EXPECT_EQ(r.insert_overflow, 0u);  // pool is big enough
  // Only successful inserts became visible; failed ones left holes.
  EXPECT_EQ(runner.visible_keys(), n0 + r.total_ops - r.insert_failures);

  // Later reads draw from [0, visible); holes inside that range are honest
  // misses, not phantom hits.
  armed = false;
  ycsb::RunOptions read_options;
  read_options.workers = 4;
  read_options.ops_per_worker = 300;
  const ycsb::RunResult rd =
      runner.run(ycsb::standard_workload('C'), read_options);
  EXPECT_GT(rd.misses, 0u);
}

TEST(Runner, OverflowFallbackUpdateFailureCountsAsMiss) {
  auto cluster = testing::make_test_cluster(64ull << 20);
  ycsb::SystemSetup setup(ycsb::SystemKind::kArt, *cluster, 1 << 20);
  // Pool exactly equals the loaded prefix: every run-phase insert
  // overflows into the update fallback, which the wrapper always fails.
  const auto keys = ycsb::generate_u64_keys(500, 1);
  std::atomic<bool> armed{false};
  std::atomic<uint64_t> vetoed{0};
  auto base = setup.factory();
  ycsb::IndexFactory failing_updates =
      [&](uint32_t worker_id, uint32_t cn, rdma::Endpoint& endpoint,
          mem::RemoteAllocator& allocator) -> std::unique_ptr<KvIndex> {
    return std::make_unique<FlakyIndex>(
        base(worker_id, cn, endpoint, allocator), /*veto_every=*/0,
        /*fail_updates=*/true, &armed, &vetoed);
  };
  ycsb::YcsbRunner runner(*cluster, failing_updates, keys);
  runner.load(500, 64, 4);
  armed = true;

  ycsb::RunOptions options;
  options.workers = 4;
  options.ops_per_worker = 50;
  const ycsb::RunResult r = runner.run(ycsb::standard_workload('L'), options);
  EXPECT_EQ(r.insert_overflow, r.total_ops);
  // Every failed fallback update is a miss, not silent success.
  EXPECT_EQ(r.misses, r.total_ops);
  EXPECT_EQ(r.insert_failures, 0u);
  EXPECT_EQ(runner.visible_keys(), 500u);
}

// ---- saturated-NIC latency consistency ------------------------------------------

TEST(Runner, SaturatedNicStretchesPercentilesWithMean) {
  // One MN, many workers: aggregate demand on the single NIC exceeds the
  // unloaded makespan, so the stretch factor must exceed 1 and both the
  // mean and the percentiles must report the same queueing adjustment.
  rdma::NetworkConfig cfg;
  cfg.num_cns = 1;
  cfg.num_mns = 1;
  cfg.mn_msg_ns = 400;  // make MN service dominate each round trip
  auto cluster = std::make_unique<mem::Cluster>(cfg, 64ull << 20);
  ycsb::SystemSetup setup(ycsb::SystemKind::kArt, *cluster, 1 << 20);
  const auto keys = ycsb::generate_u64_keys(2000, 1);
  ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
  runner.load(1500, 64, 4);
  ycsb::RunOptions options;
  options.workers = 12;
  options.ops_per_worker = 100;
  const ycsb::RunResult r = runner.run(ycsb::standard_workload('C'), options);

  ASSERT_GT(r.latency_stretch, 1.0);
  EXPECT_DOUBLE_EQ(r.latency_stretch, r.nic_utilization);
  // The effective mean exceeds the unloaded mean by the stretch's worth of
  // queueing.
  EXPECT_GT(r.mean_latency_ns, r.mean_unloaded_latency_ns);
  // On a one-CN one-MN fabric the per-NIC stretch collapses to the global
  // factor: every worker's traffic crosses the same two NICs, so the
  // effective percentiles equal the unloaded ones scaled by the stretch
  // (up to the histogram's <= 12.5% re-bucketing error). The old bug
  // stretched only the mean, letting reported p99 sit below the mean.
  ASSERT_EQ(r.latency_effective.count(), r.latency.count());
  // Two bucketings (record, then scaled re-record) compound to at most
  // ~27% upward and ~12.5% downward quantization.
  const double uniform_p50 =
      static_cast<double>(r.latency.percentile_ns(50)) * r.latency_stretch;
  EXPECT_GE(r.effective_percentile_ns(50), 0.85 * uniform_p50);
  EXPECT_LE(r.effective_percentile_ns(50), 1.30 * uniform_p50);
  EXPECT_GE(r.effective_percentile_ns(99), r.effective_percentile_ns(50));
  EXPECT_GE(r.effective_percentile_ns(99), r.mean_latency_ns * 0.5);
  // The per-NIC vectors cover the whole fabric and the scalar utilization
  // is their max.
  ASSERT_EQ(r.mn_utilization.size(), 1u);
  ASSERT_EQ(r.cn_utilization.size(), 1u);
  EXPECT_DOUBLE_EQ(
      r.nic_utilization,
      std::max(r.mn_utilization[0], r.cn_utilization[0]));
}

TEST(Runner, CnNicByteDemandCharged) {
  // Byte-heavy regime: message processing is free (mn_msg_ns = cn_msg_ns =
  // 0) and bandwidth is scarce, so NIC demand is bytes alone. The cluster
  // has one CN fanning out to three MNs: each MN serves ~a third of the
  // bytes, but every byte crosses the single CN NIC, so the CN must
  // byte-saturate ~3x harder than the busiest MN. The old model charged CN
  // NICs per message only -- under these parameters it reported zero CN
  // demand and let the capacity model undercount the binding NIC 3x.
  rdma::NetworkConfig cfg;
  cfg.num_cns = 1;
  cfg.num_mns = 3;
  cfg.mn_msg_ns = 0;
  cfg.cn_msg_ns = 0;
  cfg.bytes_per_ns = 0.001;  // 1 MB/s-ish: bytes dominate utterly
  auto cluster = std::make_unique<mem::Cluster>(cfg, 64ull << 20);
  ycsb::SystemSetup setup(ycsb::SystemKind::kArt, *cluster, 1 << 20);
  const auto keys = ycsb::generate_u64_keys(3000, 1);
  ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
  runner.load(2000, 64, 4);
  ycsb::RunOptions options;
  options.workers = 6;
  options.ops_per_worker = 100;
  const ycsb::RunResult r = runner.run(ycsb::standard_workload('C'), options);

  ASSERT_EQ(r.cn_utilization.size(), 1u);
  ASSERT_EQ(r.mn_utilization.size(), 3u);
  double mn_max = 0;
  double mn_sum = 0;
  for (double u : r.mn_utilization) {
    mn_max = std::max(mn_max, u);
    mn_sum += u;
  }
  ASSERT_GT(mn_max, 0.0);
  // The CN NIC carries every byte the three MNs carry between them -- its
  // demand is exactly the per-MN sum, and strictly above the busiest MN
  // whenever more than one MN sees traffic. (The split is NOT even thirds:
  // node placement concentrates hot top-of-tree reads, which is precisely
  // what the knee study's balance figure tracks.)
  EXPECT_GT(r.cn_utilization[0], mn_max);
  EXPECT_NEAR(r.cn_utilization[0] / mn_sum, 1.0, 1e-9);
  // And the headline utilization is the CN's, not the busiest MN's.
  EXPECT_DOUBLE_EQ(r.nic_utilization, r.cn_utilization[0]);
  // Exact charge: bytes / bandwidth over the unloaded makespan (recovered
  // from the effective makespan by undoing the stretch).
  const double t_unloaded = r.sim_seconds * 1e9 / r.latency_stretch;
  const double expected =
      static_cast<double>(r.net.bytes_total()) / cfg.bytes_per_ns / t_unloaded;
  EXPECT_NEAR(r.cn_utilization[0] / expected, 1.0, 1e-9);
}

// Amplifies every search into `factor` real searches, so one worker can be
// given a deliberately heavier NIC footprint than its peers.
class AmplifiedIndex final : public KvIndex {
 public:
  AmplifiedIndex(std::unique_ptr<KvIndex> inner, uint32_t factor)
      : inner_(std::move(inner)), factor_(factor) {}
  bool search(Slice key, std::string* value_out) override {
    bool ok = false;
    for (uint32_t i = 0; i < factor_; ++i) {
      ok = inner_->search(key, value_out);
    }
    return ok;
  }
  bool insert(Slice key, Slice value) override {
    return inner_->insert(key, value);
  }
  bool update(Slice key, Slice value) override {
    return inner_->update(key, value);
  }
  bool remove(Slice key) override { return inner_->remove(key); }
  size_t scan(Slice start_key, size_t count,
              std::vector<std::pair<std::string, std::string>>* out) override {
    return inner_->scan(start_key, count, out);
  }
  size_t scan_range(
      Slice low_key, Slice high_key, size_t max_results,
      std::vector<std::pair<std::string, std::string>>* out) override {
    return inner_->scan_range(low_key, high_key, max_results, out);
  }
  bool last_scan_truncated() const override {
    return inner_->last_scan_truncated();
  }
  const char* name() const override { return "Amplified"; }

 private:
  std::unique_ptr<KvIndex> inner_;
  uint32_t factor_;
};

TEST(Runner, PerNicStretchDoesNotFlattenSkewIntoOneFactor) {
  // Two CNs, six workers each; CN0's workers issue 6x the traffic. The CN
  // NICs dominate (mn_msg_ns = 0, bytes negligible, cn_msg_ns huge), so
  // CN0 saturates (6 workers sharing it each keep it ~half busy) while
  // CN1 stays under 1. Under the old single global stretch, BOTH CNs'
  // workers' latencies were scaled by CN0's utilization; per-NIC stretch
  // must keep the cool workers' samples (the lower half of the effective
  // distribution) well below that uniform scaling.
  rdma::NetworkConfig cfg;
  cfg.num_cns = 2;
  cfg.num_mns = 1;
  cfg.mn_msg_ns = 0;
  cfg.cn_msg_ns = 2000;
  cfg.bytes_per_ns = 1e9;  // byte term negligible
  auto cluster = std::make_unique<mem::Cluster>(cfg, 64ull << 20);
  ycsb::SystemSetup setup(ycsb::SystemKind::kArt, *cluster, 1 << 20);
  const auto keys = ycsb::generate_u64_keys(3000, 1);
  auto base = setup.factory();
  ycsb::IndexFactory skewed =
      [&](uint32_t worker_id, uint32_t cn, rdma::Endpoint& endpoint,
          mem::RemoteAllocator& allocator) -> std::unique_ptr<KvIndex> {
    auto inner = base(worker_id, cn, endpoint, allocator);
    if (cn == 0) {
      return std::make_unique<AmplifiedIndex>(std::move(inner), 6);
    }
    return inner;
  };
  ycsb::YcsbRunner runner(*cluster, skewed, keys);
  runner.load(2000, 64, 4);
  ycsb::RunOptions options;
  options.workers = 12;  // even workers -> CN0 (hot), odd -> CN1 (cool)
  options.ops_per_worker = 150;
  const ycsb::RunResult r = runner.run(ycsb::standard_workload('C'), options);

  ASSERT_EQ(r.cn_utilization.size(), 2u);
  ASSERT_GT(r.cn_utilization[0], 1.5) << "hot CN never saturated";
  EXPECT_GT(r.cn_utilization[0], 4.0 * std::max(r.cn_utilization[1], 0.01));
  // Worker 1 contributes half the samples, all cheaper AND barely
  // stretched; the effective p25 must sit far below the uniform global
  // scaling the old model applied to every sample.
  const double uniform_p25 =
      static_cast<double>(r.latency.percentile_ns(25)) * r.latency_stretch;
  EXPECT_LT(r.effective_percentile_ns(25), 0.75 * uniform_p25);
  // The hot worker's tail still carries the full stretch.
  EXPECT_GE(r.effective_percentile_ns(99),
            0.8 * static_cast<double>(r.latency.percentile_ns(99)));
}

TEST(Runner, LittlesLawInFlightClampedToTotalOps) {
  // 6 workers x depth 8 nominally keeps 48 ops in flight, but the phase
  // only runs 12 ops total -- the old formula charged the phantom 48-op
  // window and overstated the mean 4x. With L clamped to total_ops the
  // mean equals the effective makespan exactly (every op "in flight" for
  // the whole phase is the most Little's law can honestly claim).
  auto cluster = testing::make_test_cluster(64ull << 20);
  ycsb::SystemSetup setup(ycsb::SystemKind::kArt, *cluster, 1 << 20);
  const auto keys = ycsb::generate_u64_keys(3000, 1);
  ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
  runner.load(2000, 64, 4);
  ycsb::RunOptions options;
  options.workers = 6;
  options.pipeline_depth = 8;
  options.ops_per_worker = 2;
  const ycsb::RunResult r = runner.run(ycsb::standard_workload('C'), options);
  ASSERT_EQ(r.total_ops, 12u);
  const double t_eff = r.sim_seconds * 1e9;
  EXPECT_NEAR(r.mean_latency_ns / t_eff, 1.0, 1e-9);
  // Regression guard: the unclamped formula would report 4x the makespan.
  EXPECT_LT(r.mean_latency_ns, 2.0 * t_eff);
}

TEST(Runner, RootReplicationEvensMnTrafficForArt) {
  // Cache-less ART descends from the root on every op, so with replicas
  // off the primary root's MN is the whole tree's front door and the
  // per-MN message balance skews toward it (the knee-study hotspot,
  // DESIGN.md Sec. 15). The same deterministic workload with replica
  // routing on must spread those root reads and strictly improve the
  // balance ratio.
  auto balance_for = [](bool replicas) {
    auto cluster = testing::make_test_cluster(128ull << 20);
    ycsb::SystemSetup setup(ycsb::SystemKind::kArt, *cluster, 1 << 20);
    setup.set_root_replicas(replicas);
    const auto keys = ycsb::generate_u64_keys(6000, 1);
    ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
    runner.load(4000, 64, 4);
    ycsb::RunOptions options;
    options.workers = 12;
    options.ops_per_worker = 150;
    const ycsb::RunResult r =
        runner.run(ycsb::standard_workload('C'), options);
    EXPECT_EQ(r.misses, 0u) << "replicas=" << replicas;
    return r.mn_msg_balance;
  };
  const double off = balance_for(false);
  const double on = balance_for(true);
  EXPECT_GT(off, 1.25) << "hot root MN no longer visible with replicas off";
  EXPECT_LT(on, off - 0.1);
  EXPECT_LT(on, 1.25);
}

// ---- tracing --------------------------------------------------------------------

TEST(Trace, RecorderBoundsBufferAndCountsDrops) {
  rdma::TraceRecorder rec(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    rec.record("span", static_cast<uint64_t>(i) * 100, 50, 0);
  }
  EXPECT_EQ(rec.events().size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  rdma::TraceRecorder other(4);
  other.record("other", 0, 10, 1);
  rdma::TraceRecorder merged;
  merged.merge(rec);
  merged.merge(other);
  EXPECT_EQ(merged.events().size(), 5u);
  EXPECT_EQ(merged.dropped(), 6u);  // drop counts carry through merges
}

TEST(Trace, ChromeTraceJsonShape) {
  rdma::TraceRecorder rec;
  rec.record("leaf_read", 1000, 2000, 3);
  rec.record("op:read", 500, 4000, 3);
  std::ostringstream os;
  rdma::write_chrome_trace(os, {{"Sphinx/u64/YCSB-C", &rec}});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"leaf_read\""), std::string::npos);
  EXPECT_NE(json.find("Sphinx/u64/YCSB-C"), std::string::npos);
  // ts/dur are microseconds (ns / 1000).
  EXPECT_NE(json.find("\"ts\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2"), std::string::npos);
}

TEST(Trace, TracingChangesNoStatsOrClocks) {
  // Single worker, single load worker: the run is exactly deterministic
  // (see Runner.DeterministicAcrossRuns), so a traced and an untraced run
  // must agree bit for bit -- the trace hook is null-checked in the charge
  // paths and costs no virtual time either way.
  const auto keys = ycsb::generate_u64_keys(2000, 1);
  auto run_once = [&](rdma::TraceRecorder* rec) {
    auto cluster = testing::make_test_cluster(64ull << 20);
    ycsb::SystemSetup setup(ycsb::SystemKind::kSphinx, *cluster, 1 << 20);
    ycsb::YcsbRunner runner(*cluster, setup.factory(), keys);
    runner.load(1500, 64, /*workers=*/1);
    ycsb::RunOptions options;
    options.workers = 1;
    options.ops_per_worker = 200;
    options.trace = rec;
    return runner.run(ycsb::standard_workload('C'), options);
  };
  rdma::TraceRecorder rec;
  const ycsb::RunResult untraced = run_once(nullptr);
  const ycsb::RunResult traced = run_once(&rec);

  EXPECT_EQ(traced.net.round_trips, untraced.net.round_trips);
  EXPECT_EQ(traced.net.bytes_total(), untraced.net.bytes_total());
  EXPECT_EQ(traced.net.messages, untraced.net.messages);
  EXPECT_DOUBLE_EQ(traced.ops_per_sec, untraced.ops_per_sec);
  EXPECT_DOUBLE_EQ(traced.sim_seconds, untraced.sim_seconds);

  // The traced run actually recorded spans: enclosing op spans plus
  // phase-named round-trip spans nested within them.
  ASSERT_FALSE(rec.events().empty());
  EXPECT_EQ(rec.dropped(), 0u);
  bool saw_op = false;
  bool saw_phase = false;
  for (const rdma::TraceEvent& e : rec.events()) {
    const std::string name(e.name);
    if (name.rfind("op:", 0) == 0) saw_op = true;
    if (name == "pec_validate" || name == "leaf_read" || name == "inht_read" ||
        name == "lac_fused_read") {
      saw_phase = true;
    }
    EXPECT_NE(name, "unattributed");
  }
  EXPECT_TRUE(saw_op);
  EXPECT_TRUE(saw_phase);
}

// ---- metrics registry -----------------------------------------------------------

struct ToyStats {
  uint64_t alpha = 0;
  uint64_t beta = 0;
};
constexpr metrics::Field<ToyStats> kToyFields[] = {
    {"alpha", &ToyStats::alpha},
    {"beta", &ToyStats::beta},
};

TEST(Metrics, RegistryAddSubAllZero) {
  ToyStats a;
  EXPECT_TRUE(metrics::all_zero(a, kToyFields));
  a.alpha = 5;
  a.beta = 7;
  ToyStats b;
  b.alpha = 1;
  metrics::add(b, a, kToyFields);
  EXPECT_EQ(b.alpha, 6u);
  EXPECT_EQ(b.beta, 7u);
  metrics::sub(b, a, kToyFields);
  EXPECT_EQ(b.alpha, 1u);
  EXPECT_EQ(b.beta, 0u);
  EXPECT_FALSE(metrics::all_zero(b, kToyFields));
}

TEST(Metrics, JsonObjectWriterCommasAndEscapes) {
  std::ostringstream os;
  metrics::JsonObjectWriter w(os);
  w.field("s", std::string("a\"b\\c"));
  w.field("n", static_cast<uint64_t>(42));
  w.raw_field("o", "{\"x\": 1}");
  ToyStats t;
  t.alpha = 3;
  metrics::write_fields(w, t, kToyFields, "toy_");
  w.close();
  EXPECT_EQ(os.str(),
            "{\"s\": \"a\\\"b\\\\c\", \"n\": 42, \"o\": {\"x\": 1}, "
            "\"toy_alpha\": 3, \"toy_beta\": 0}");
}

TEST(Metrics, StatsStructsUseRegistry) {
  rdma::ScanStats s;
  s.scans = 2;
  s.leaf_drops = 1;
  rdma::ScanStats t;
  t += s;
  t += s;
  EXPECT_EQ(t.scans, 4u);
  EXPECT_EQ(t.leaf_drops, 2u);
  rdma::RecoveryStats r;
  r.lock_reclaims = 3;
  rdma::RecoveryStats r2;
  r2 += r;
  EXPECT_EQ(r2.lock_reclaims, 3u);
  core::SphinxStats sx;
  sx.pec_hits = 9;
  core::SphinxStats sx2;
  sx2 += sx;
  sx2 += sx;
  EXPECT_EQ(sx2.pec_hits, 18u);
}

}  // namespace
}  // namespace sphinx
