// Property-style parameterized sweeps and failure-injection tests:
// value-size and key-length sweeps across the update paths, Scan(K1,K2)
// oracle equivalence on every system, filter occupancy properties, the
// runner's NIC-capacity model, and corrupted-memory behaviour.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "art/art_index.h"
#include "common/rng.h"
#include "core/sphinx_index.h"
#include "filter/cuckoo_filter.h"
#include "test_util.h"
#include "ycsb/dataset.h"
#include "ycsb/runner.h"
#include "ycsb/systems.h"

namespace sphinx {
namespace {

// ---- value-size sweep: leaf sizing, in-place vs out-of-place updates --------

class ValueSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ValueSizeSweep, InsertSearchUpdateRoundTrip) {
  const size_t value_size = GetParam();
  auto cluster = testing::make_test_cluster();
  ycsb::SystemSetup setup(ycsb::SystemKind::kSphinx, *cluster);
  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  auto index = setup.make_client(0, ep, alloc);

  const std::string value(value_size, 'x');
  ASSERT_TRUE(index->insert("sweep-key", value));
  std::string got;
  ASSERT_TRUE(index->search("sweep-key", &got));
  EXPECT_EQ(got, value);

  // Shrink (in place) then grow (likely out of place) then shrink again.
  const std::string small(1, 's');
  ASSERT_TRUE(index->update("sweep-key", small));
  ASSERT_TRUE(index->search("sweep-key", &got));
  EXPECT_EQ(got, small);

  const std::string big(value_size * 2 + 7, 'B');
  ASSERT_TRUE(index->update("sweep-key", big));
  ASSERT_TRUE(index->search("sweep-key", &got));
  EXPECT_EQ(got, big);

  ASSERT_TRUE(index->remove("sweep-key"));
  EXPECT_FALSE(index->search("sweep-key", &got));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ValueSizeSweep,
                         ::testing::Values(1, 8, 63, 64, 65, 200, 512, 1500),
                         ::testing::PrintToStringParamName());

// ---- key-length sweep: fragments, depth field, terminator handling ----------

class KeyLengthSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(KeyLengthSweep, LongSharedPrefixKeys) {
  const size_t key_len = GetParam();
  auto cluster = testing::make_test_cluster();
  ycsb::SystemSetup setup(ycsb::SystemKind::kSphinx, *cluster);
  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  auto index = setup.make_client(0, ep, alloc);

  // Keys share a long prefix and differ only at the end: worst case for
  // path compression + the 6-byte fragment window.
  std::vector<std::string> keys;
  for (int i = 0; i < 20; ++i) {
    std::string k(key_len, 'p');
    k.back() = static_cast<char>('a' + i);
    keys.push_back(std::move(k));
  }
  for (const auto& k : keys) {
    ASSERT_TRUE(index->insert(k, "v:" + k.substr(k.size() - 1)));
  }
  std::string got;
  for (const auto& k : keys) {
    ASSERT_TRUE(index->search(k, &got)) << key_len;
    EXPECT_EQ(got, "v:" + k.substr(k.size() - 1));
  }
  // A key one byte longer/shorter must be absent.
  EXPECT_FALSE(index->search(keys[0] + "x", &got));
  EXPECT_FALSE(index->search(Slice(keys[0].data(), keys[0].size() - 1),
                             &got));
}

INSTANTIATE_TEST_SUITE_P(Lengths, KeyLengthSweep,
                         ::testing::Values(1, 2, 5, 6, 7, 8, 13, 31, 32, 64,
                                           128, 250),
                         ::testing::PrintToStringParamName());

// ---- Scan(K1, K2) oracle equivalence across all systems ---------------------

class ScanRangeOnSystem
    : public ::testing::TestWithParam<ycsb::SystemKind> {};

TEST_P(ScanRangeOnSystem, MatchesOracle) {
  auto cluster = testing::make_test_cluster();
  ycsb::SystemSetup setup(GetParam(), *cluster);
  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  auto index = setup.make_client(0, ep, alloc);

  std::map<std::string, std::string> oracle;
  const auto keys = testing::mixed_keys(400);
  for (const auto& k : keys) {
    ASSERT_TRUE(index->insert(k, "v:" + k));
    oracle[k] = "v:" + k;
  }

  Rng rng(31);
  std::vector<std::pair<std::string, std::string>> out;
  for (int trial = 0; trial < 20; ++trial) {
    std::string lo = keys[rng.next_below(keys.size())];
    std::string hi = keys[rng.next_below(keys.size())];
    if (hi < lo) std::swap(lo, hi);
    const size_t n = index->scan_range(lo, hi, 1000, &out);

    auto it = oracle.lower_bound(lo);
    size_t i = 0;
    for (; it != oracle.end() && it->first <= hi; ++it, ++i) {
      ASSERT_LT(i, n) << "missing " << it->first;
      EXPECT_EQ(out[i].first, it->first);
      EXPECT_EQ(out[i].second, it->second);
    }
    EXPECT_EQ(i, n);
  }

  // Degenerate ranges.
  EXPECT_EQ(index->scan_range("zzz", "aaa", 100, &out), 0u);
  EXPECT_EQ(index->scan_range(keys[0], keys[0], 100, &out), 1u);
  EXPECT_EQ(out[0].first, keys[0]);
  // max_results caps the result.
  EXPECT_EQ(index->scan_range("", "\x7f", 7, &out), 7u);
}

INSTANTIATE_TEST_SUITE_P(
    Systems, ScanRangeOnSystem,
    ::testing::Values(ycsb::SystemKind::kSphinx, ycsb::SystemKind::kSmart,
                      ycsb::SystemKind::kArt),
    [](const ::testing::TestParamInfo<ycsb::SystemKind>& info) {
      std::string n = ycsb::system_kind_name(info.param);
      n.erase(std::remove_if(n.begin(), n.end(),
                             [](char c) { return !isalnum(c); }),
              n.end());
      return n;
    });

// ---- filter occupancy property sweep ----------------------------------------

class FilterOccupancy : public ::testing::TestWithParam<int> {};

TEST_P(FilterOccupancy, FalsePositivesStayUnderOnePercent) {
  const double occupancy = GetParam() / 100.0;
  filter::CuckooFilter filter(1 << 13);
  const uint64_t n =
      static_cast<uint64_t>(static_cast<double>(filter.capacity()) *
                            occupancy);
  for (uint64_t i = 0; i < n; ++i) filter.insert(splitmix64(i));
  // The SFC is a *cache*: when both candidate buckets fill up, insertion
  // evicts a cold entry (paper Sec. III-B) rather than failing, so some
  // earlier cold items may be gone at higher occupancy. Presence must
  // still be near-total, and perfect at low occupancy.
  uint64_t present = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (filter.contains_cold(splitmix64(i))) present++;
  }
  const double present_rate =
      static_cast<double>(present) / static_cast<double>(n);
  if (occupancy <= 0.3) {
    EXPECT_EQ(present, n);
  } else {
    EXPECT_GT(present_rate, 0.9);
  }
  uint64_t fp = 0;
  const uint64_t probes = 100000;
  for (uint64_t i = 0; i < probes; ++i) {
    if (filter.contains_cold(splitmix64(0xabcd00000000ull + i))) fp++;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Occupancies, FilterOccupancy,
                         ::testing::Values(10, 30, 50, 70, 90),
                         ::testing::PrintToStringParamName());

// ---- NIC capacity model -------------------------------------------------------

TEST(CapacityModel, ThroughputCapsAndLatencyInflates) {
  auto cluster = testing::make_test_cluster();
  ycsb::SystemSetup setup(ycsb::SystemKind::kArt, *cluster);
  ycsb::YcsbRunner runner(*cluster, setup.factory(),
                          ycsb::generate_u64_keys(20000, 5));
  runner.load(20000, 64);

  auto run_with = [&](uint32_t workers) {
    ycsb::RunOptions options;
    options.workers = workers;
    options.ops_per_worker = 300;
    return runner.run(ycsb::standard_workload('C'), options);
  };
  const ycsb::RunResult small = run_with(6);
  const ycsb::RunResult big = run_with(192);

  // Utilization grows with workers; once saturated, throughput stops
  // scaling linearly and latency inflates.
  EXPECT_GT(big.nic_utilization, small.nic_utilization * 8);
  EXPECT_LT(big.ops_per_sec, small.ops_per_sec * 32 * 1.1);
  if (big.nic_utilization > 1.2) {
    EXPECT_GT(big.mean_latency_ns, small.mean_latency_ns * 1.1);
  }
  // Little's law self-consistency: throughput * mean latency == workers.
  EXPECT_NEAR(big.ops_per_sec * big.mean_latency_ns / 1e9, 192.0, 1.0);
  EXPECT_NEAR(small.ops_per_sec * small.mean_latency_ns / 1e9, 6.0, 0.1);
}

TEST(CapacityModel, UnsaturatedPhaseScalesLinearly) {
  auto cluster = testing::make_test_cluster();
  ycsb::SystemSetup setup(ycsb::SystemKind::kSphinx, *cluster);
  ycsb::YcsbRunner runner(*cluster, setup.factory(),
                          ycsb::generate_u64_keys(20000, 5));
  runner.load(20000, 64);
  auto run_with = [&](uint32_t workers) {
    ycsb::RunOptions options;
    options.workers = workers;
    options.ops_per_worker = 300;
    return runner.run(ycsb::standard_workload('C'), options);
  };
  // Warm the CN caches first: the runs share the CN-wide SFC/PEC/LAC, so
  // without a warmup the first measured run pays the cold-cache round
  // trips and the second rides warm bindings, skewing the ratio above the
  // pure worker-count scaling this test is about.
  run_with(12);
  const ycsb::RunResult a = run_with(3);
  const ycsb::RunResult b = run_with(12);
  ASSERT_LT(b.nic_utilization, 0.9);
  EXPECT_NEAR(b.ops_per_sec / a.ops_per_sec, 4.0, 0.5);
}

// ---- failure injection ---------------------------------------------------------

TEST(FailureInjection, CorruptedLeafNeverReturnsGarbage) {
  auto cluster = testing::make_test_cluster();
  art::TreeRef ref = art::create_tree(*cluster);
  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  art::ArtIndex index(*cluster, ep, alloc, ref);
  art::TreeConfig config;  // default retry budget would make this test slow

  ASSERT_TRUE(index.insert("victim", "precious-data"));
  ASSERT_TRUE(index.insert("bystander", "fine"));

  // Flip bits inside the victim leaf's value region by scanning MN memory
  // for the value bytes (test-only back door into the fabric).
  bool corrupted = false;
  for (uint32_t mn = 0; mn < cluster->num_mns() && !corrupted; ++mn) {
    rdma::MemoryRegion& region = cluster->fabric().region(mn);
    std::vector<uint8_t> image(1 << 20);
    region.read_bytes(0, image.data(), image.size());
    const std::string needle = "precious-data";
    for (size_t off = 0; off + needle.size() < image.size(); off += 8) {
      if (std::memcmp(image.data() + off, needle.data(), needle.size()) ==
          0) {
        uint8_t garbage[8] = {0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef};
        region.write_bytes(off, garbage, 8);
        corrupted = true;
        break;
      }
    }
  }
  ASSERT_TRUE(corrupted);

  // The checksum must reject the torn leaf: search fails cleanly rather
  // than returning corrupted bytes. Other keys are unaffected.
  std::string got;
  EXPECT_FALSE(index.search("victim", &got));
  EXPECT_GT(index.tree_stats().torn_leaf_rereads, 0u);
  ASSERT_TRUE(index.search("bystander", &got));
  EXPECT_EQ(got, "fine");
}

TEST(FailureInjection, PermanentlyInvalidNodeFailsGracefully) {
  auto cluster = testing::make_test_cluster();
  art::TreeRef ref = art::create_tree(*cluster);
  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  art::TreeConfig config;
  config.max_op_retries = 8;  // keep the test fast
  // The forged Invalid header below is a protocol-impossible state (the
  // root is never invalidated); replica-routed descents would legitimately
  // sail past it, so pin every descent to the primary under test.
  config.replicate_root = false;
  struct SmallRetryArt : art::RemoteTree {
    SmallRetryArt(mem::Cluster& c, rdma::Endpoint& e,
                  mem::RemoteAllocator& a, const art::TreeRef& r,
                  const art::TreeConfig& cfg)
        : RemoteTree(c, e, a, r, cfg) {}
  } index(*cluster, ep, alloc, ref, config);

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(index.insert("inv" + std::to_string(i), "v"));
  }
  // Mark the root Invalid directly: every descent now retries and the
  // operation must give up without crashing or looping forever.
  rdma::MemoryRegion& region = cluster->fabric().region(ref.root.mn());
  const uint64_t header = region.load64(ref.root.offset());
  region.store64(ref.root.offset(),
                 art::with_status(header, art::NodeStatus::kInvalid));
  std::string got;
  EXPECT_FALSE(index.search("inv1", &got));
  EXPECT_GT(index.tree_stats().ops_failed, 0u);
  // Restore and confirm recovery.
  region.store64(ref.root.offset(), header);
  EXPECT_TRUE(index.search("inv1", &got));
}

// ---- second-chance behaviour under sustained pressure -------------------------

TEST(FilterPressure, HotWorkingSetSurvivesChurn) {
  filter::CuckooFilter filter(256);  // 1024 slots
  // A hot working set that is repeatedly touched...
  std::vector<uint64_t> hot;
  for (uint64_t i = 0; i < 400; ++i) {
    const uint64_t h = splitmix64(i);
    filter.insert(h);
    hot.push_back(h);
  }
  // ...churned against a long stream of cold inserts.
  for (uint64_t i = 0; i < 20000; ++i) {
    for (uint64_t h : hot) filter.contains(h);  // keep them hot
    filter.insert(splitmix64(0xc0ffee00000ull + i));
  }
  uint64_t alive = 0;
  for (uint64_t h : hot) {
    if (filter.contains_cold(h)) alive++;
  }
  EXPECT_GT(alive, hot.size() * 80 / 100);
}

}  // namespace
}  // namespace sphinx
