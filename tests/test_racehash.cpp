// Unit tests for the one-sided extendible hash table (INHT substrate):
// lookups, inserts, updates, deletes, segment splits, directory doubling,
// and concurrent access.
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "memnode/remote_allocator.h"
#include "racehash/race_table.h"
#include "test_util.h"

namespace sphinx::race {
namespace {

// A test rig with its own endpoint, allocator and client. The rehasher maps
// payload -> hash through a shared table the tests maintain (standing in
// for reading the node header, as Sphinx does).
struct Rig {
  explicit Rig(mem::Cluster& cluster, const TableRef& table,
               std::map<uint64_t, uint64_t>* payload_to_hash = nullptr)
      : endpoint(cluster.fabric(), 0, /*metered=*/true),
        allocator(cluster, endpoint),
        client(cluster, endpoint, allocator, table,
               [payload_to_hash](uint64_t payload) {
                 if (payload_to_hash == nullptr) return payload;
                 return payload_to_hash->at(payload);
               }) {}

  rdma::Endpoint endpoint;
  mem::RemoteAllocator allocator;
  RaceClient client;
};

TEST(RaceEntry, PackUnpack) {
  const uint64_t h = splitmix64(77);
  const uint64_t e = make_entry(h, 0x123456789ab);
  EXPECT_TRUE(entry_valid(e));
  EXPECT_TRUE(entry_matches(e, h));
  EXPECT_EQ(entry_payload(e), 0x123456789abull);
  EXPECT_EQ(entry_stored_fp(e), entry_fp(h));
  EXPECT_FALSE(entry_valid(0));
}

TEST(RaceEntry, FingerprintNeverZero) {
  for (uint64_t i = 0; i < 100000; ++i) {
    EXPECT_NE(entry_fp(i << 52), 0);
  }
}

TEST(RaceTable, InsertAndSearch) {
  auto cluster = testing::make_test_cluster(64 << 20);
  TableRef table = create_table(*cluster, 0);
  Rig rig(*cluster, table);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(rig.client.insert(splitmix64(i), i));
  }
  std::vector<uint64_t> found;
  for (uint64_t i = 0; i < 1000; ++i) {
    found.clear();
    rig.client.search(splitmix64(i), found);
    ASSERT_FALSE(found.empty()) << i;
    EXPECT_NE(std::find(found.begin(), found.end(), i), found.end());
  }
}

TEST(RaceTable, MissReturnsNothingMostly) {
  auto cluster = testing::make_test_cluster(64 << 20);
  TableRef table = create_table(*cluster, 0);
  Rig rig(*cluster, table);
  for (uint64_t i = 0; i < 1000; ++i) rig.client.insert(splitmix64(i), i);
  uint64_t false_hits = 0;
  std::vector<uint64_t> found;
  for (uint64_t i = 0; i < 10000; ++i) {
    found.clear();
    rig.client.search(splitmix64(0xbeef0000 + i), found);
    false_hits += found.size();
  }
  // 12-bit fingerprints: collisions must stay well under 1%.
  EXPECT_LT(false_hits, 100u);
}

TEST(RaceTable, UpdateReplacesPayload) {
  auto cluster = testing::make_test_cluster(64 << 20);
  TableRef table = create_table(*cluster, 1);
  Rig rig(*cluster, table);
  const uint64_t h = splitmix64(5);
  ASSERT_TRUE(rig.client.insert(h, 111));
  ASSERT_TRUE(rig.client.update(h, 111, 222));
  std::vector<uint64_t> found;
  rig.client.search(h, found);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 222u);
  EXPECT_FALSE(rig.client.update(h, 111, 333));  // old payload gone
}

TEST(RaceTable, EraseRemoves) {
  auto cluster = testing::make_test_cluster(64 << 20);
  TableRef table = create_table(*cluster, 2);
  Rig rig(*cluster, table);
  const uint64_t h = splitmix64(9);
  ASSERT_TRUE(rig.client.insert(h, 42));
  ASSERT_TRUE(rig.client.erase(h, 42));
  std::vector<uint64_t> found;
  rig.client.search(h, found);
  EXPECT_TRUE(found.empty());
  EXPECT_FALSE(rig.client.erase(h, 42));
}

TEST(RaceTable, SearchCostsOneRoundTrip) {
  auto cluster = testing::make_test_cluster(64 << 20);
  TableRef table = create_table(*cluster, 0);
  Rig rig(*cluster, table);
  rig.client.insert(splitmix64(1), 7);
  const uint64_t before = rig.endpoint.stats().round_trips;
  std::vector<uint64_t> found;
  rig.client.search(splitmix64(1), found);
  EXPECT_EQ(rig.endpoint.stats().round_trips - before, 1u);
}

TEST(RaceTable, SplitsGrowTheTable) {
  auto cluster = testing::make_test_cluster(256 << 20);
  TableRef table = create_table(*cluster, 0, /*initial_depth=*/1);
  std::map<uint64_t, uint64_t> payload_to_hash;
  Rig rig(*cluster, table, &payload_to_hash);
  // Far more than 2 segments hold: forces splits + directory doubling.
  const uint64_t n = 40000;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t h = splitmix64(i);
    payload_to_hash[i] = h;
    ASSERT_TRUE(rig.client.insert(h, i)) << i;
  }
  EXPECT_GT(rig.client.stats().splits, 0u);
  std::vector<uint64_t> found;
  uint64_t missing = 0;
  for (uint64_t i = 0; i < n; ++i) {
    found.clear();
    rig.client.search(splitmix64(i), found);
    if (std::find(found.begin(), found.end(), i) == found.end()) missing++;
  }
  EXPECT_EQ(missing, 0u);
}

TEST(RaceTable, StaleDirectoryCacheRecovers) {
  auto cluster = testing::make_test_cluster(256 << 20);
  TableRef table = create_table(*cluster, 0, 1);
  std::map<uint64_t, uint64_t> payload_to_hash;
  Rig writer(*cluster, table, &payload_to_hash);
  Rig reader(*cluster, table, &payload_to_hash);

  // Prime the reader's directory cache, then grow the table via the writer.
  writer.client.insert(splitmix64(0), 0);
  payload_to_hash[0] = splitmix64(0);
  std::vector<uint64_t> found;
  reader.client.search(splitmix64(0), found);

  for (uint64_t i = 1; i < 30000; ++i) {
    const uint64_t h = splitmix64(i);
    payload_to_hash[i] = h;
    ASSERT_TRUE(writer.client.insert(h, i));
  }
  ASSERT_GT(writer.client.stats().splits, 0u);

  // The reader's stale cache must self-heal via the suffix check.
  uint64_t missing = 0;
  for (uint64_t i = 0; i < 30000; ++i) {
    found.clear();
    reader.client.search(splitmix64(i), found);
    if (std::find(found.begin(), found.end(), i) == found.end()) missing++;
  }
  EXPECT_EQ(missing, 0u);
  EXPECT_GT(reader.client.stats().dir_refreshes, 1u);
}

TEST(RaceTable, ConcurrentInsertersAllLand) {
  auto cluster = testing::make_test_cluster(256 << 20);
  TableRef table = create_table(*cluster, 0, 2);
  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 5000;
  // payload -> hash is pure arithmetic here so threads need no shared map.
  auto rehash = [](uint64_t payload) { return splitmix64(payload); };

  std::vector<std::thread> threads;
  std::atomic<uint64_t> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rdma::Endpoint ep(cluster->fabric(), t % 3, true);
      mem::RemoteAllocator alloc(*cluster, ep);
      RaceClient client(*cluster, ep, alloc, table, rehash);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t payload = t * kPerThread + i;
        if (!client.insert(splitmix64(payload), payload)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);

  Rig verifier(*cluster, table, nullptr);
  std::vector<uint64_t> found;
  uint64_t missing = 0;
  for (uint64_t p = 0; p < kThreads * kPerThread; ++p) {
    found.clear();
    verifier.client.search(splitmix64(p), found);
    if (std::find(found.begin(), found.end(), p) == found.end()) missing++;
  }
  EXPECT_EQ(missing, 0u);
}

TEST(RaceTable, HashTableMemoryIsAccounted) {
  auto cluster = testing::make_test_cluster(64 << 20);
  const uint64_t before =
      cluster->alloc_stats().requested_bytes(mem::AllocTag::kHashTable);
  create_table(*cluster, 0, 3);
  const uint64_t after =
      cluster->alloc_stats().requested_bytes(mem::AllocTag::kHashTable);
  EXPECT_GE(after - before, 8u * kSegmentBytes);
}

}  // namespace
}  // namespace sphinx::race
