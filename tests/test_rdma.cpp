// Unit tests for the simulated RDMA fabric: verb semantics, doorbell
// batching, the virtual-clock cost model and NIC saturation behaviour.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "rdma/endpoint.h"
#include "rdma/fabric.h"

namespace sphinx::rdma {
namespace {

NetworkConfig small_config() {
  NetworkConfig c;
  c.num_cns = 2;
  c.num_mns = 2;
  return c;
}

TEST(GlobalAddr, PackUnpack) {
  GlobalAddr a(3, 0x123456789a);
  EXPECT_EQ(a.mn(), 3u);
  EXPECT_EQ(a.offset(), 0x123456789aull);
  EXPECT_FALSE(a.is_null());
  EXPECT_TRUE(GlobalAddr().is_null());
  EXPECT_EQ(a.plus(0x10).offset(), 0x12345678aaull);
  // Compact 48-bit round trip.
  const GlobalAddr b = GlobalAddr::from48(a.to48());
  EXPECT_EQ(b, a);
}

TEST(MemoryRegion, ReadWriteRoundTrip) {
  MemoryRegion region(4096);
  std::vector<uint8_t> data(100);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  region.write_bytes(64, data.data(), data.size());
  std::vector<uint8_t> back(100, 0);
  region.read_bytes(64, back.data(), back.size());
  EXPECT_EQ(data, back);
}

TEST(MemoryRegion, UnalignedLengths) {
  MemoryRegion region(4096);
  for (size_t len : {1, 3, 7, 9, 15, 63, 65}) {
    std::vector<uint8_t> data(len, static_cast<uint8_t>(len));
    region.write_bytes(128, data.data(), len);
    std::vector<uint8_t> back(len, 0);
    region.read_bytes(128, back.data(), len);
    EXPECT_EQ(data, back) << len;
  }
}

TEST(MemoryRegion, CasSemantics) {
  MemoryRegion region(64);
  region.store64(8, 100);
  uint64_t observed = 0;
  EXPECT_FALSE(region.cas64(8, 99, 200, &observed));
  EXPECT_EQ(observed, 100u);
  EXPECT_TRUE(region.cas64(8, 100, 200, &observed));
  EXPECT_EQ(observed, 100u);
  EXPECT_EQ(region.load64(8), 200u);
}

TEST(MemoryRegion, FaaReturnsPrevious) {
  MemoryRegion region(64);
  region.store64(16, 5);
  EXPECT_EQ(region.faa64(16, 10), 5u);
  EXPECT_EQ(region.faa64(16, 10), 15u);
  EXPECT_EQ(region.load64(16), 25u);
}

TEST(Endpoint, VerbsChargeLatency) {
  Fabric fabric(small_config(), 1 << 20);
  Endpoint ep(fabric, 0);
  EXPECT_EQ(ep.clock_ns(), 0u);
  uint64_t v = 42;
  ep.write(GlobalAddr(0, 1024), &v, 8);
  const uint64_t after_one = ep.clock_ns();
  EXPECT_GE(after_one, fabric.config().base_rtt_ns);
  uint64_t r = ep.read64(GlobalAddr(0, 1024));
  EXPECT_EQ(r, 42u);
  EXPECT_GT(ep.clock_ns(), after_one);
  EXPECT_EQ(ep.stats().round_trips, 2u);
  EXPECT_EQ(ep.stats().reads, 1u);
  EXPECT_EQ(ep.stats().writes, 1u);
}

TEST(Endpoint, UnmeteredChargesNothing) {
  Fabric fabric(small_config(), 1 << 20);
  Endpoint ep(fabric, 0, /*metered=*/false);
  uint64_t v = 7;
  ep.write(GlobalAddr(1, 512), &v, 8);
  EXPECT_EQ(ep.read64(GlobalAddr(1, 512)), 7u);
  EXPECT_EQ(ep.clock_ns(), 0u);
  EXPECT_EQ(ep.stats().round_trips, 0u);
}

TEST(Endpoint, LargePayloadCostsMore) {
  Fabric fabric(small_config(), 8 << 20);
  Endpoint small_ep(fabric, 0), large_ep(fabric, 1);
  std::vector<uint8_t> buf(1 << 20);
  small_ep.read(GlobalAddr(0, 0), buf.data(), 64);
  large_ep.read(GlobalAddr(1, 0), buf.data(), 1 << 20);
  EXPECT_GT(large_ep.clock_ns(), small_ep.clock_ns() + 50000);
}

TEST(DoorbellBatch, OneRoundTripForManyVerbs) {
  Fabric fabric(small_config(), 1 << 20);
  Endpoint ep(fabric, 0);
  std::vector<uint64_t> out(16, 0);
  std::vector<uint64_t> in(16);
  for (size_t i = 0; i < in.size(); ++i) in[i] = i * 3;
  {
    DoorbellBatch batch(ep);
    for (size_t i = 0; i < in.size(); ++i) {
      batch.add_write(GlobalAddr(0, 4096 + i * 8), &in[i], 8);
    }
    batch.execute();
  }
  EXPECT_EQ(ep.stats().round_trips, 1u);
  EXPECT_EQ(ep.stats().messages, 16u);
  {
    DoorbellBatch batch(ep);
    for (size_t i = 0; i < out.size(); ++i) {
      batch.add_read(GlobalAddr(0, 4096 + i * 8), &out[i], 8);
    }
    batch.execute();
  }
  EXPECT_EQ(out, in);
  EXPECT_EQ(ep.stats().round_trips, 2u);
}

TEST(DoorbellBatch, CasAndWriteAllExecute) {
  // A failed CAS must not suppress later verbs in the batch (hardware
  // semantics the index protocols rely on).
  Fabric fabric(small_config(), 1 << 20);
  Endpoint ep(fabric, 0);
  ep.write64(GlobalAddr(0, 256), 1);
  DoorbellBatch batch(ep);
  const size_t cas_idx = batch.add_cas(GlobalAddr(0, 256), 999, 2);  // fails
  uint64_t v = 77;
  batch.add_write(GlobalAddr(0, 264), &v, 8);  // still executes
  batch.execute();
  EXPECT_FALSE(batch.cas_ok(cas_idx));
  EXPECT_EQ(batch.old_value(cas_idx), 1u);
  EXPECT_EQ(ep.read64(GlobalAddr(0, 264)), 77u);
}

TEST(DoorbellBatch, PerOpResultsAreIndependent) {
  // Mixed outcomes in one batch: every op reports its own cas_ok /
  // old_value, and memory effects apply in post order.
  Fabric fabric(small_config(), 1 << 20);
  Endpoint ep(fabric, 0);
  ep.write64(GlobalAddr(0, 256), 10);
  ep.write64(GlobalAddr(0, 264), 20);
  ep.write64(GlobalAddr(0, 272), 30);

  DoorbellBatch batch(ep);
  const size_t ok_idx = batch.add_cas(GlobalAddr(0, 256), 10, 11);
  const size_t fail_idx = batch.add_cas(GlobalAddr(0, 264), 999, 21);
  const size_t faa_idx = batch.add_faa(GlobalAddr(0, 272), 5);
  // Post-order: this CAS sees the value installed by ok_idx above.
  const size_t chain_idx = batch.add_cas(GlobalAddr(0, 256), 11, 12);
  batch.execute();
  EXPECT_EQ(ep.stats().round_trips, 4u);  // 3 setup writes + 1 batch

  EXPECT_TRUE(batch.cas_ok(ok_idx));
  EXPECT_EQ(batch.old_value(ok_idx), 10u);
  EXPECT_FALSE(batch.cas_ok(fail_idx));
  EXPECT_EQ(batch.old_value(fail_idx), 20u);
  EXPECT_EQ(batch.old_value(faa_idx), 30u);
  EXPECT_TRUE(batch.cas_ok(chain_idx));
  EXPECT_EQ(batch.old_value(chain_idx), 11u);

  EXPECT_EQ(ep.read64(GlobalAddr(0, 256)), 12u);
  EXPECT_EQ(ep.read64(GlobalAddr(0, 264)), 20u);  // failed CAS: untouched
  EXPECT_EQ(ep.read64(GlobalAddr(0, 272)), 35u);
}

TEST(DoorbellBatch, FailedCasDoesNotSuppressWriteWithoutBatching) {
  // The per-verb fallback path (ablation A2) must keep the same hardware
  // semantics as the batched path.
  NetworkConfig config = small_config();
  config.doorbell_batching = false;
  Fabric fabric(config, 1 << 20);
  Endpoint ep(fabric, 0);
  ep.write64(GlobalAddr(0, 256), 1);

  DoorbellBatch batch(ep);
  const size_t cas_idx = batch.add_cas(GlobalAddr(0, 256), 999, 2);
  uint64_t v = 55;
  batch.add_write(GlobalAddr(0, 264), &v, 8);
  batch.execute();

  EXPECT_FALSE(batch.cas_ok(cas_idx));
  EXPECT_EQ(batch.old_value(cas_idx), 1u);
  EXPECT_EQ(ep.read64(GlobalAddr(0, 256)), 1u);
  EXPECT_EQ(ep.read64(GlobalAddr(0, 264)), 55u);
}

TEST(DoorbellBatch, DisabledBatchingCostsPerVerb) {
  NetworkConfig config = small_config();
  config.doorbell_batching = false;
  Fabric fabric(config, 1 << 20);
  Endpoint ep(fabric, 0);
  uint64_t vals[8] = {};
  DoorbellBatch batch(ep);
  for (int i = 0; i < 8; ++i) {
    batch.add_read(GlobalAddr(0, 512 + i * 8), &vals[i], 8);
  }
  batch.execute();
  EXPECT_EQ(ep.stats().round_trips, 8u);
}

TEST(NicClock, SerializesConcurrentReservations) {
  NicClock nic;
  const uint64_t s1 = nic.reserve(0, 100);
  const uint64_t s2 = nic.reserve(0, 100);
  EXPECT_EQ(s1, 0u);
  EXPECT_EQ(s2, 100u);
  // A reservation in the future starts at its earliest time.
  const uint64_t s3 = nic.reserve(10000, 50);
  EXPECT_EQ(s3, 10000u);
}

TEST(Endpoint, TimelinesIndependentAndDeterministic) {
  // Unloaded virtual clocks must not couple across endpoints (queueing is
  // applied analytically by the runner), so concurrent clients report
  // exactly the same per-client time as a solo client -- regardless of
  // host thread scheduling.
  Fabric fabric(small_config(), 1 << 20);
  auto run_client = [&](uint32_t cn) {
    Endpoint ep(fabric, cn);
    for (int i = 0; i < 100; ++i) ep.read64(GlobalAddr(0, 128));
    return ep.clock_ns();
  };
  const uint64_t solo = run_client(0);
  uint64_t t1 = 0, t2 = 0;
  std::thread a([&] { t1 = run_client(0); });
  std::thread b([&] { t2 = run_client(1); });
  a.join();
  b.join();
  EXPECT_EQ(t1, solo);
  EXPECT_EQ(t2, solo);
  // The per-MN traffic breakdown feeds the capacity model.
  Endpoint ep(fabric, 0);
  ep.read64(GlobalAddr(1, 64));
  EXPECT_EQ(ep.stats().msgs_per_mn[1], 1u);
  EXPECT_EQ(ep.stats().bytes_per_mn[1], 8u);
}

TEST(Fabric, ClockResetDoesNotTouchMemory) {
  Fabric fabric(small_config(), 1 << 20);
  Endpoint ep(fabric, 0);
  ep.write64(GlobalAddr(0, 888), 31337);
  fabric.reset_clocks();
  EXPECT_EQ(fabric.mn_nic(0).busy_until(), 0u);
  EXPECT_EQ(ep.read64(GlobalAddr(0, 888)), 31337u);
}

TEST(EndpointStats, ArithmeticWorks) {
  EndpointStats a;
  a.reads = 10;
  a.bytes_read = 100;
  a.round_trips = 5;
  EndpointStats b = a;
  b.reads = 25;
  b.bytes_read = 300;
  b.round_trips = 9;
  const EndpointStats d = b - a;
  EXPECT_EQ(d.reads, 15u);
  EXPECT_EQ(d.bytes_read, 200u);
  EXPECT_EQ(d.round_trips, 4u);
  EndpointStats sum = a;
  sum += d;
  EXPECT_EQ(sum.reads, b.reads);
}

}  // namespace
}  // namespace sphinx::rdma
