// Epoch-based remote-memory reclamation: EpochManager protocol units
// (stamp+2 ripeness, advance gating, crashed-slot expiry under the
// double-observation lease), the deterministic ABA-resurrection oracle
// (a recycled leaf block must never be served for its old key), the
// churn shadow-model oracle across the index families, and degraded-mode
// recovery (exhaustion -> removes -> inserts succeed again).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "art/key.h"
#include "core/sphinx_index.h"
#include "filter/leaf_addr_cache.h"
#include "memnode/cluster.h"
#include "memnode/epoch.h"
#include "memnode/remote_allocator.h"
#include "rdma/retry_policy.h"
#include "test_util.h"
#include "ycsb/systems.h"

namespace sphinx {
namespace {

// ---- EpochManager protocol units -------------------------------------------

TEST(Reclaim, StampPlusTwoRule) {
  mem::EpochManager em;
  const uint64_t stamp = em.current();
  EXPECT_FALSE(em.reclaimable(stamp));
  EXPECT_TRUE(em.try_advance());
  // One advance proves current ops quiesced, but an op pinned concurrently
  // with the retire may have landed at stamp+1; only the second advance
  // puts every possible holder behind the block.
  EXPECT_FALSE(em.reclaimable(stamp));
  EXPECT_TRUE(em.try_advance());
  EXPECT_TRUE(em.reclaimable(stamp));
}

TEST(Reclaim, AdvanceWaitsForLaggingPins) {
  mem::EpochManager em;
  const uint32_t slot = em.acquire_slot();
  ASSERT_NE(slot, mem::EpochManager::kNoSlot);
  em.pin(slot, /*beat_ns=*/100);
  // Pinned at the current epoch: the pinner started after any retire in
  // this epoch was published, so the advance may proceed...
  EXPECT_TRUE(em.try_advance());
  // ...but now the slot lags the new epoch and gates further progress.
  EXPECT_FALSE(em.try_advance());
  em.unpin(slot);
  EXPECT_TRUE(em.try_advance());
  em.release_slot(slot);
}

TEST(Reclaim, CrashedSlotExpiresOnlyAfterDoubleObservation) {
  mem::EpochManager em;
  const uint32_t dead = em.acquire_slot();
  ASSERT_NE(dead, mem::EpochManager::kNoSlot);
  em.pin(dead, /*beat_ns=*/1000);  // the owner "crashes" here: never unpins
  ASSERT_TRUE(em.try_advance());
  ASSERT_FALSE(em.try_advance());  // wedged behind the dead slot

  // First observation only arms the watch.
  EXPECT_EQ(em.expire_stalled(/*observer_clock_ns=*/0), 0u);
  // Virtual lease elapsed but the real-time floor has not: still protected
  // (a sanitizer- or scheduler-stalled live owner must not be expired
  // just because virtual clocks raced ahead).
  EXPECT_EQ(em.expire_stalled(rdma::kLeaseVirtualNs + 1), 0u);
  std::this_thread::sleep_for(rdma::kLeaseRealFloor +
                              std::chrono::milliseconds(2));
  EXPECT_EQ(em.expire_stalled(rdma::kLeaseVirtualNs + 1), 1u);
  EXPECT_EQ(em.expired_slots(), 1u);
  EXPECT_FALSE(em.slot_pinned(dead));
  // The epoch is unwedged.
  EXPECT_TRUE(em.try_advance());
}

TEST(Reclaim, LiveOwnerBeatDisarmsTheExpiryWatch) {
  mem::EpochManager em;
  const uint32_t slot = em.acquire_slot();
  ASSERT_NE(slot, mem::EpochManager::kNoSlot);
  em.pin(slot, /*beat_ns=*/1);
  ASSERT_TRUE(em.try_advance());
  EXPECT_EQ(em.expire_stalled(0), 0u);  // arms the watch
  std::this_thread::sleep_for(rdma::kLeaseRealFloor +
                              std::chrono::milliseconds(2));
  // The owner is alive after all: a fresh pin (new epoch, new beat) must
  // reset the watch instead of being expired by the matured window.
  em.pin(slot, /*beat_ns=*/2);
  EXPECT_EQ(em.expire_stalled(rdma::kLeaseVirtualNs + 1), 0u);
  EXPECT_TRUE(em.slot_pinned(slot));
  em.unpin(slot);
  em.release_slot(slot);
}

TEST(Reclaim, OrphansRipenBeforeAdoptionAndDrainInBatches) {
  mem::EpochManager em;
  std::vector<mem::RetiredBlock> blocks(3);
  for (size_t i = 0; i < blocks.size(); ++i) {
    blocks[i].offset = 0x1000 + i * 0x100;
    blocks[i].requested = 64;
    blocks[i].padded = 64;
    blocks[i].stamp = em.current();
  }
  em.donate_orphans(std::move(blocks));
  EXPECT_EQ(em.orphan_count(), 3u);
  EXPECT_TRUE(em.take_reclaimable_orphans(8).empty());  // not ripe
  em.try_advance();
  em.try_advance();
  EXPECT_EQ(em.take_reclaimable_orphans(2).size(), 2u);  // bounded batch
  EXPECT_EQ(em.orphan_count(), 1u);
  EXPECT_EQ(em.take_reclaimable_orphans(8).size(), 1u);
  EXPECT_EQ(em.orphan_count(), 0u);
}

TEST(Reclaim, ConcurrentPinRetireRecycleKeepsAccountingExact) {
  // Threads hammer the full pipeline concurrently -- pin, alloc, retire,
  // unpin (which advances the epoch and flushes ripe quarantine). Under
  // TSan this is the data-race probe for the slot array, the orphan list
  // and the stats; on any build the settled counters must balance.
  auto cluster = testing::make_test_cluster(64 << 20);
  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rdma::Endpoint ep(cluster->fabric(), static_cast<uint32_t>(t) % 3,
                        /*metered=*/true);
      mem::RemoteAllocator alloc(*cluster, ep, 1 << 18);
      for (int i = 0; i < kIters; ++i) {
        mem::EpochPin pin(alloc);
        const mem::AllocResult r = alloc.try_alloc(
            static_cast<uint32_t>(i) % 3, 128, mem::AllocTag::kLeaf);
        ASSERT_TRUE(r.ok);
        alloc.retire(r.addr, 128, mem::AllocTag::kLeaf);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(cluster->epochs().advances(), 0u);
  EXPECT_GT(cluster->alloc_stats().reclaimed_blocks(), 0u);
  EXPECT_EQ(cluster->alloc_stats().underflows(), 0u);
  // Clean shutdowns: every block was recycled or donated, none leaked.
  EXPECT_EQ(cluster->alloc_stats().leaked_bytes(), 0u);
}

// ---- Deterministic ABA-resurrection oracle ---------------------------------

TEST(Reclaim, RecycledLeafBlockIsNeverServedForItsOldKey) {
  // The exact resurrection scenario the epoch machinery makes possible:
  // CN0's reader caches a leaf address for key A; CN1 removes A, the block
  // ripens through the quarantine, and CN1's next insert recycles the SAME
  // address for key B (forced: B is chosen to hash to A's MN and size
  // class, and the freelist is LIFO). CN0's next read of A speculatively
  // reads B's bytes -- the validate gate must reject them, fall back to a
  // descent, and return an honest miss. lac_wrong_value is the audit that
  // the 1-RTT path never leaked the wrong bytes.
  auto cluster = testing::make_test_cluster();
  core::SphinxRefs refs = core::create_sphinx(*cluster);
  auto filter = filter::CuckooFilter::with_budget(1 << 20);
  auto pec = filter::PrefixEntryCache::with_budget(1 << 16);
  auto lac = filter::LeafAddressCache::with_budget(1 << 16);

  rdma::Endpoint reader_ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator reader_alloc(*cluster, reader_ep);
  core::SphinxIndex reader(*cluster, reader_ep, reader_alloc, refs,
                           filter.get(), pec.get(), lac.get());

  rdma::Endpoint mutator_ep(cluster->fabric(), 1, true);
  mem::RemoteAllocator mutator_alloc(*cluster, mutator_ep);
  core::SphinxIndex mutator(*cluster, mutator_ep, mutator_alloc, refs,
                            filter.get());

  // Key B must land on A's MN with A's leaf size class so the recycled
  // block is deterministically the one B's insert pops.
  const std::string a = "aba:victim:000";
  const uint32_t mn_a = cluster->ring().mn_for(
      art::prefix_hash(art::TerminatedKey(Slice(a)).full()));
  std::string b;
  for (int i = 1; i < 200; ++i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "aba:victim:%03d", i);
    if (cluster->ring().mn_for(art::prefix_hash(
            art::TerminatedKey(Slice(buf)).full())) == mn_a) {
      b = buf;
      break;
    }
  }
  ASSERT_FALSE(b.empty()) << "no same-MN sibling key found";

  ASSERT_TRUE(reader.insert(a, "v1"));
  std::string v;
  ASSERT_TRUE(reader.search(a, &v));
  EXPECT_EQ(v, "v1");
  ASSERT_GT(reader.sphinx_stats().lac_hits, 0u);
  // Capture A's cached leaf address straight from the LAC.
  const uint64_t hash_a = art::prefix_hash(art::TerminatedKey(Slice(a)).full());
  uint64_t payload = 0;
  bool hot = false;
  ASSERT_TRUE(lac->lookup(hash_a, &payload, &hot));
  const uint64_t addr_a = filter::lac_payload_addr48(payload);

  // CN1 unlinks A; the leaf enters CN1's quarantine. Ripen it (stamp+2)
  // and drain it back to the freelist.
  ASSERT_TRUE(mutator.remove(a));
  cluster->epochs().try_advance();
  cluster->epochs().try_advance();
  ASSERT_GE(mutator_alloc.flush_quarantine(), 1u);

  // CN1 recycles the block for B.
  ASSERT_TRUE(mutator.insert(b, "v2"));

  // CN0 still holds the A -> addr binding. The speculative read now lands
  // on B's leaf: reject, fall back, honest miss -- and never wrong bytes.
  const uint64_t stale_before = reader.sphinx_stats().lac_stale;
  EXPECT_FALSE(reader.search(a, &v));
  EXPECT_GT(reader.sphinx_stats().lac_stale, stale_before);
  EXPECT_EQ(reader.sphinx_stats().lac_wrong_value, 0u);

  // B reads correctly through the same machinery, and its leaf really is
  // A's recycled block -- the ABA was genuinely constructed, not skipped.
  ASSERT_TRUE(reader.search(b, &v));
  EXPECT_EQ(v, "v2");
  const uint64_t hash_b = art::prefix_hash(art::TerminatedKey(Slice(b)).full());
  ASSERT_TRUE(lac->lookup(hash_b, &payload, &hot));
  EXPECT_EQ(filter::lac_payload_addr48(payload), addr_a);
  EXPECT_GT(cluster->alloc_stats().reclaimed_blocks(), 0u);
  EXPECT_EQ(cluster->alloc_stats().underflows(), 0u);
}

// ---- Churn shadow-model oracle across the index families -------------------

TEST(Reclaim, ChurnOracleAcrossSystems) {
  // Ten full insert/remove turnover rounds over a 64-key live set (20x the
  // live keys in alloc/retire traffic), verified against a shadow map
  // after every round: values exact while live, honest misses while
  // removed, and the reclamation pipeline visibly recycling with the
  // quarantine drained to a tail by the end.
  for (const auto kind :
       {ycsb::SystemKind::kSphinx, ycsb::SystemKind::kSphinxNoFilter,
        ycsb::SystemKind::kSmart, ycsb::SystemKind::kArt}) {
    SCOPED_TRACE("system " + std::to_string(static_cast<int>(kind)));
    auto cluster = testing::make_test_cluster();
    ycsb::SystemSetup setup(kind, *cluster);
    rdma::Endpoint ep(cluster->fabric(), 0, true);
    mem::RemoteAllocator alloc(*cluster, ep);
    auto index = setup.make_client(0, ep, alloc);

    constexpr int kLive = 64;
    constexpr int kRounds = 10;
    auto key = [](int i) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "churn:%04d", i);
      return std::string(buf);
    };
    std::map<std::string, std::string> shadow;
    std::string v;
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kLive; ++i) {
        const std::string val = "r" + std::to_string(round) + ":v";
        ASSERT_TRUE(index->insert(key(i), val)) << key(i);
        shadow[key(i)] = val;
      }
      for (int i = 0; i < kLive; ++i) {
        ASSERT_TRUE(index->search(key(i), &v)) << key(i);
        EXPECT_EQ(v, shadow[key(i)]) << key(i);
      }
      for (int i = 0; i < kLive; ++i) {
        ASSERT_TRUE(index->remove(key(i))) << key(i);
        shadow.erase(key(i));
      }
      for (int i = 0; i < kLive; ++i) {
        EXPECT_FALSE(index->search(key(i), &v)) << key(i);
      }
    }
    EXPECT_GT(cluster->alloc_stats().reclaimed_blocks(), 0u);
    EXPECT_EQ(cluster->alloc_stats().underflows(), 0u);
    const uint64_t total = cluster->alloc_stats().retired_bytes_total();
    const uint64_t outstanding =
        cluster->alloc_stats().retired_bytes_outstanding();
    EXPECT_TRUE(outstanding * 2 <= total || outstanding <= (64u << 10))
        << "quarantine not draining: " << outstanding << " of " << total;
  }
}

// ---- Degraded mode: exhaustion is recoverable ------------------------------

TEST(Reclaim, DegradedModeRecoversOnceRemovesFreeMemory) {
  // A deliberately tiny heap: inserts run until the allocator honestly
  // fails (ok=false, counted, no throw, no torn state). Removing half the
  // live keys then feeds the quarantine, and re-inserting those same keys
  // must succeed again from recycled blocks -- memory pressure is a phase,
  // not a terminal state.
  auto cluster = testing::make_test_cluster(512 << 10);
  ycsb::SystemSetup setup(ycsb::SystemKind::kArt, *cluster);
  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep, /*chunk_bytes=*/64 << 10);
  auto index = setup.make_client(0, ep, alloc);

  auto key = [](int i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "degrade:%06d", i);
    return std::string(buf);
  };
  std::vector<std::string> live;
  for (int i = 0; i < 20000; ++i) {
    if (!index->insert(key(i), "value-01")) break;
    live.push_back(key(i));
  }
  ASSERT_LT(live.size(), 20000u) << "heap never exhausted; test is vacuous";
  ASSERT_GT(live.size(), 64u);
  EXPECT_GT(cluster->alloc_stats().alloc_failures(), 0u);

  // Degraded, not corrupted: the keys that made it in still read exactly.
  std::string v;
  for (size_t i = 0; i < live.size(); i += live.size() / 32) {
    ASSERT_TRUE(index->search(live[i], &v)) << live[i];
    EXPECT_EQ(v, "value-01");
  }

  // Free memory by removing the newest half, then re-insert the same keys
  // (same parents, same size class: recovery needs only recycled leaves).
  const size_t cut = live.size() / 2;
  for (size_t i = cut; i < live.size(); ++i) {
    ASSERT_TRUE(index->remove(live[i])) << live[i];
  }
  for (size_t i = cut; i < live.size(); ++i) {
    bool done = false;
    for (int attempt = 0; attempt < 8 && !done; ++attempt) {
      done = index->insert(live[i], "value-02");
    }
    ASSERT_TRUE(done) << "insert never recovered for " << live[i];
  }
  for (size_t i = cut; i < live.size(); i += (live.size() - cut) / 32 + 1) {
    ASSERT_TRUE(index->search(live[i], &v)) << live[i];
    EXPECT_EQ(v, "value-02");
  }
  EXPECT_GT(cluster->alloc_stats().reclaimed_blocks(), 0u);
  EXPECT_EQ(cluster->alloc_stats().underflows(), 0u);
}

}  // namespace
}  // namespace sphinx
