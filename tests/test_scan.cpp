// Tests for the frontier-batched scan engine: oracle semantics, the
// concurrent-mutation recovery paths (stale frontier pointers chased, not
// dropped; genuine deletes skipped; exhausted budgets reported as
// truncation instead of silent success), the validated cached-root entry,
// and the Sphinx cache-aware entry (SFC/PEC jump + widen-and-resume).
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "art/art_index.h"
#include "art/node_layout.h"
#include "common/rng.h"
#include "core/sphinx_index.h"
#include "test_util.h"
#include "ycsb/systems.h"

namespace sphinx::art {
namespace {

using KvList = std::vector<std::pair<std::string, std::string>>;

// A RemoteTree whose on_scan_inner hook is a test-installable callback:
// the hook fires when the frontier expands a fetched inner node, which is
// exactly the window in which a concurrent mutator can invalidate sibling
// slots the scan has already snapshotted.
class HookedTree : public RemoteTree {
 public:
  HookedTree(mem::Cluster& cluster, rdma::Endpoint& endpoint,
             mem::RemoteAllocator& allocator, const TreeRef& ref,
             const TreeConfig& config)
      : RemoteTree(cluster, endpoint, allocator, ref, config) {}

  std::function<void(rdma::GlobalAddr, const InnerImage&)> hook;

 protected:
  void on_scan_inner(rdma::GlobalAddr addr, const InnerImage& image) override {
    if (hook) hook(addr, image);
  }
};

// Fixture with two independent clients on one tree: a hooked scanner and a
// plain ART mutator whose writes race the scanner's frontier.
class ScanRaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = testing::make_test_cluster();
    ref_ = create_tree(*cluster_);
    scan_ep_ = std::make_unique<rdma::Endpoint>(cluster_->fabric(), 0, true);
    scan_alloc_ =
        std::make_unique<mem::RemoteAllocator>(*cluster_, *scan_ep_);
    mut_ep_ = std::make_unique<rdma::Endpoint>(cluster_->fabric(), 1, true);
    mut_alloc_ = std::make_unique<mem::RemoteAllocator>(*cluster_, *mut_ep_);
    mutator_ =
        std::make_unique<ArtIndex>(*cluster_, *mut_ep_, *mut_alloc_, ref_);
  }

  void make_scanner(const TreeConfig& config) {
    scanner_ = std::make_unique<HookedTree>(*cluster_, *scan_ep_,
                                            *scan_alloc_, ref_, config);
  }

  // root -> "a" (inner, depth 1) -> { "aa" (full Node-4: aa1..aa4),
  // "ab" (leaf), "ac" (leaf) }, plus "b" so the root has a sibling.
  void load_two_level_tree() {
    for (const char* k : {"aa1", "aa2", "aa3", "aa4", "ab", "ac", "b"}) {
      ASSERT_TRUE(mutator_->insert(k, std::string("v:") + k));
    }
  }

  std::vector<std::string> keys_of(const KvList& out) {
    std::vector<std::string> keys;
    for (const auto& [k, v] : out) keys.push_back(k);
    return keys;
  }

  std::unique_ptr<mem::Cluster> cluster_;
  TreeRef ref_;
  std::unique_ptr<rdma::Endpoint> scan_ep_;
  std::unique_ptr<mem::RemoteAllocator> scan_alloc_;
  std::unique_ptr<rdma::Endpoint> mut_ep_;
  std::unique_ptr<mem::RemoteAllocator> mut_alloc_;
  std::unique_ptr<ArtIndex> mutator_;
  std::unique_ptr<HookedTree> scanner_;
};

// Regression for the silent-subtree-skip bug: a frontier slot that goes
// stale because its child type-switched out of place (Node-4 "aa" grows to
// Node-16 at a new address) must be re-resolved through the live parent
// slot and the fresh subtree scanned -- not dropped.
TEST_F(ScanRaceTest, StaleFrontierPointerIsChasedNotDropped) {
  make_scanner(TreeConfig());
  load_two_level_tree();
  bool mutated = false;
  scanner_->hook = [&](rdma::GlobalAddr, const InnerImage& image) {
    if (mutated || image.depth() != 1) return;
    mutated = true;
    // The scanner has expanded "a" from an already-fetched image; growing
    // "aa" now invalidates the old node *after* its slot was snapshotted.
    ASSERT_TRUE(mutator_->insert("aa5", "v:aa5"));
  };
  KvList out;
  scanner_->scan("a", 100, &out);
  ASSERT_TRUE(mutated);

  const auto keys = keys_of(out);
  const std::vector<std::string> want = {"aa1", "aa2", "aa3", "aa4",
                                         "aa5", "ab",  "ac",  "b"};
  EXPECT_EQ(keys, want);
  const rdma::ScanStats& scan = scanner_->tree_stats().scan;
  EXPECT_GE(scan.stale_retries, 1u);
  EXPECT_EQ(scan.subtree_skips, 0u);
  EXPECT_EQ(scan.leaf_drops, 0u);
  EXPECT_FALSE(scanner_->last_scan_truncated());
}

// A leaf removed mid-scan (Invalid status, slot possibly still linked) is
// a genuine delete: skipped with no counters tripped and no truncation.
TEST_F(ScanRaceTest, ConcurrentlyRemovedLeafIsSkippedCleanly) {
  make_scanner(TreeConfig());
  load_two_level_tree();
  bool mutated = false;
  scanner_->hook = [&](rdma::GlobalAddr, const InnerImage& image) {
    if (mutated || image.depth() != 1) return;
    mutated = true;
    ASSERT_TRUE(mutator_->remove("ab"));
  };
  KvList out;
  scanner_->scan("a", 100, &out);
  ASSERT_TRUE(mutated);

  const auto keys = keys_of(out);
  // "ab" may legitimately appear (scan linearized before the remove) only
  // if its leaf was fetched before the hook ran; the frontier fetches
  // children after the expansion that fires the hook, so it must be gone.
  const std::vector<std::string> want = {"aa1", "aa2", "aa3", "aa4", "ac",
                                         "b"};
  EXPECT_EQ(keys, want);
  const rdma::ScanStats& scan = scanner_->tree_stats().scan;
  EXPECT_EQ(scan.subtree_skips, 0u);
  EXPECT_EQ(scan.leaf_drops, 0u);
  EXPECT_FALSE(scanner_->last_scan_truncated());
}

// Regression for truncation-reported-as-success: when the retry budget
// exhausts on a subtree that never resolves, the scan must say so --
// last_scan_truncated() true, the skip counted -- while the rest of the
// range is still returned in order.
TEST_F(ScanRaceTest, ExhaustedRetryBudgetReportsSubtreeTruncation) {
  TreeConfig config;
  config.retry.max_attempts = 4;  // small budget so the drop is reached
  make_scanner(config);
  load_two_level_tree();

  // Locate the "aa" node (depth 2) via a clean scan, then corrupt its
  // header to a permanently-Invalid state with the parent slot unchanged:
  // re-resolution keeps returning the same dead pointer.
  rdma::GlobalAddr aa_addr;
  bool found = false;
  scanner_->hook = [&](rdma::GlobalAddr addr, const InnerImage& image) {
    if (image.depth() == 2) {
      aa_addr = addr;
      found = true;
    }
  };
  KvList warm;
  scanner_->scan("a", 100, &warm);
  ASSERT_TRUE(found);
  ASSERT_EQ(warm.size(), 7u);
  scanner_->hook = nullptr;

  rdma::Endpoint raw(cluster_->fabric(), 2, /*metered=*/false);
  raw.write64(aa_addr,
              with_status(raw.read64(aa_addr), NodeStatus::kInvalid));

  KvList out;
  scanner_->scan("a", 100, &out);
  const auto keys = keys_of(out);
  const std::vector<std::string> want = {"ab", "ac", "b"};
  EXPECT_EQ(keys, want);
  EXPECT_TRUE(scanner_->last_scan_truncated());
  const rdma::ScanStats& scan = scanner_->tree_stats().scan;
  EXPECT_GE(scan.subtree_skips, 1u);
  EXPECT_GE(scan.truncated_scans, 1u);

  // And the flag is per-scan: an unaffected range scans clean again.
  out.clear();
  scanner_->scan("b", 10, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_FALSE(scanner_->last_scan_truncated());
}

// Same, for a single leaf whose image never passes the checksum: the drop
// is counted as a leaf loss and the scan reports incompleteness.
TEST_F(ScanRaceTest, ExhaustedLeafRereadsReportTruncation) {
  TreeConfig config;
  config.retry.max_attempts = 4;
  make_scanner(config);
  load_two_level_tree();

  // Grab the "ab" leaf address from the expansion of "a" (depth 1).
  rdma::GlobalAddr ab_addr;
  bool found = false;
  scanner_->hook = [&](rdma::GlobalAddr, const InnerImage& image) {
    if (image.depth() != 1) return;
    for (uint32_t i = 0; i < image.capacity(); ++i) {
      const uint64_t w = image.slot(i);
      if (slot_valid(w) && slot_is_leaf(w) && slot_pkey(w) == 'b') {
        ab_addr = slot_addr(w);
        found = true;
      }
    }
  };
  KvList warm;
  scanner_->scan("a", 100, &warm);
  ASSERT_TRUE(found);
  scanner_->hook = nullptr;

  // Flip a byte in the key/value body: the CRC fails against both the
  // header and the trailer lengths, so every reread looks torn.
  rdma::Endpoint raw(cluster_->fabric(), 2, /*metered=*/false);
  raw.write64(ab_addr.plus(16), raw.read64(ab_addr.plus(16)) ^ 0xff);

  KvList out;
  scanner_->scan("a", 100, &out);
  const auto keys = keys_of(out);
  const std::vector<std::string> want = {"aa1", "aa2", "aa3", "aa4", "ac",
                                         "b"};
  EXPECT_EQ(keys, want);
  EXPECT_TRUE(scanner_->last_scan_truncated());
  EXPECT_GE(scanner_->tree_stats().scan.leaf_drops, 1u);
}

// The cached-root entry must stay coherent: a subtree that appears under a
// brand-new first byte between two scans is caught by the piggybacked
// revalidation read, not missed.
TEST_F(ScanRaceTest, CachedRootRevalidationSeesNewSubtree) {
  make_scanner(TreeConfig());  // cache_scan_root defaults on
  load_two_level_tree();
  KvList out;
  scanner_->scan("a", 100, &out);  // warms the root cache
  EXPECT_EQ(out.size(), 7u);

  ASSERT_TRUE(mutator_->insert("zebra", "v:zebra"));
  out.clear();
  scanner_->scan("a", 100, &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().first, "zebra");
  EXPECT_GE(scanner_->tree_stats().scan.root_refreshes, 1u);
}

// Satellite of the redundant-root-RTT fix: once the root image is cached,
// a root-entry scan pays no standalone root round trip (the revalidation
// rides the first frontier batch).
TEST_F(ScanRaceTest, CachedRootSavesTheStandaloneRootRtt) {
  make_scanner(TreeConfig());
  load_two_level_tree();
  KvList out;
  scanner_->scan("a", 100, &out);
  const uint64_t cold = scan_ep_->stats().round_trips;
  out.clear();
  scanner_->scan("a", 100, &out);
  const uint64_t warm = scan_ep_->stats().round_trips - cold;
  EXPECT_EQ(out.size(), 7u);
  // Cold: root fetch + frontier batches. Warm: frontier batches only.
  EXPECT_LT(warm, cold);
  EXPECT_GE(scanner_->tree_stats().scan.root_starts, 2u);
}

// ---- oracle semantics ---------------------------------------------------------

TEST(ScanOracle, ArtScanAndScanRangeMatchStdMap) {
  auto cluster = testing::make_test_cluster();
  const TreeRef ref = create_tree(*cluster);
  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  ArtIndex index(*cluster, ep, alloc, ref);

  std::map<std::string, std::string> oracle;
  const auto keys = testing::mixed_keys(1200);
  for (const auto& k : keys) {
    const std::string v = "v:" + k;
    index.insert(k, v);
    oracle.emplace(k, v);
  }

  Rng rng(0xd1ce);
  KvList out;
  for (int q = 0; q < 60; ++q) {
    const std::string& start = keys[rng.next_below(keys.size())];
    const size_t count = 1 + rng.next_below(64);
    out.clear();
    index.scan(start, count, &out);
    auto it = oracle.lower_bound(start);
    for (const auto& [k, v] : out) {
      ASSERT_NE(it, oracle.end());
      EXPECT_EQ(k, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
    }
    const size_t avail =
        static_cast<size_t>(std::distance(oracle.lower_bound(start),
                                          oracle.end()));
    EXPECT_EQ(out.size(), std::min(count, avail));
    EXPECT_FALSE(index.last_scan_truncated());
  }
  for (int q = 0; q < 40; ++q) {
    std::string lo = keys[rng.next_below(keys.size())];
    std::string hi = keys[rng.next_below(keys.size())];
    if (hi < lo) std::swap(lo, hi);
    out.clear();
    index.scan_range(lo, hi, 1 << 20, &out);
    auto it = oracle.lower_bound(lo);
    const auto end = oracle.upper_bound(hi);
    for (const auto& [k, v] : out) {
      ASSERT_NE(it, end);
      EXPECT_EQ(k, it->first);
      ++it;
    }
    EXPECT_EQ(it, end);
  }
  const rdma::ScanStats& scan = index.tree_stats().scan;
  EXPECT_EQ(scan.subtree_skips, 0u);
  EXPECT_EQ(scan.leaf_drops, 0u);
  EXPECT_EQ(scan.truncated_scans, 0u);
}

// ---- Sphinx cache-aware entry -------------------------------------------------

class SphinxScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = testing::make_test_cluster();
    refs_ = core::create_sphinx(*cluster_);
    filter_ = filter::CuckooFilter::with_budget(1 << 20);
    endpoint_ = std::make_unique<rdma::Endpoint>(cluster_->fabric(), 0, true);
    allocator_ = std::make_unique<mem::RemoteAllocator>(*cluster_, *endpoint_);
    index_ = std::make_unique<core::SphinxIndex>(
        *cluster_, *endpoint_, *allocator_, refs_, filter_.get());
  }

  std::unique_ptr<mem::Cluster> cluster_;
  core::SphinxRefs refs_;
  std::unique_ptr<filter::CuckooFilter> filter_;
  std::unique_ptr<rdma::Endpoint> endpoint_;
  std::unique_ptr<mem::RemoteAllocator> allocator_;
  std::unique_ptr<core::SphinxIndex> index_;
};

// Count scans from deep keys enter below the root via the filter cache and
// widen-and-resume upward, and still return exactly the oracle's answer.
TEST_F(SphinxScanTest, JumpEntryAndWidenResumeMatchOracle) {
  std::map<std::string, std::string> oracle;
  const auto keys = testing::mixed_keys(1500);
  for (const auto& k : keys) {
    index_->insert(k, "v:" + k);
    oracle.emplace(k, "v:" + k);
  }

  Rng rng(0x5ca9);
  KvList out;
  for (int q = 0; q < 80; ++q) {
    const std::string& start = keys[rng.next_below(keys.size())];
    const size_t count = 1 + rng.next_below(48);
    out.clear();
    index_->scan(start, count, &out);
    auto it = oracle.lower_bound(start);
    for (const auto& [k, v] : out) {
      ASSERT_NE(it, oracle.end()) << start;
      EXPECT_EQ(k, it->first);
      ++it;
    }
    const size_t avail =
        static_cast<size_t>(std::distance(oracle.lower_bound(start),
                                          oracle.end()));
    EXPECT_EQ(out.size(), std::min(count, avail)) << start;
  }

  const rdma::ScanStats& scan = index_->tree_stats().scan;
  EXPECT_GT(scan.jump_starts, 0u);
  EXPECT_GT(scan.widen_resumes, 0u);
  EXPECT_GT(index_->sphinx_stats().scan_start_successes, 0u);
  EXPECT_EQ(scan.subtree_skips, 0u);
  EXPECT_EQ(scan.leaf_drops, 0u);
  EXPECT_EQ(scan.truncated_scans, 0u);
}

// The A/B switch: jump-entry on and off produce byte-identical results
// (the off path is the bench_ycsb --no-scan-jump baseline).
TEST_F(SphinxScanTest, JumpOnAndOffProduceIdenticalResults) {
  const auto keys = testing::mixed_keys(900, 11);
  for (const auto& k : keys) index_->insert(k, "v:" + k);

  core::SphinxConfig no_jump;
  no_jump.tree.scan_jump = false;
  rdma::Endpoint ep2(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  core::SphinxIndex plain(*cluster_, ep2, alloc2, refs_, filter_.get(),
                          nullptr, nullptr, no_jump);

  Rng rng(0xab);
  KvList a, b;
  for (int q = 0; q < 40; ++q) {
    const std::string& start = keys[rng.next_below(keys.size())];
    const size_t count = 1 + rng.next_below(40);
    a.clear();
    b.clear();
    index_->scan(start, count, &a);
    plain.scan(start, count, &b);
    EXPECT_EQ(a, b) << start;
  }
  EXPECT_GT(index_->tree_stats().scan.jump_starts, 0u);
  EXPECT_EQ(plain.tree_stats().scan.jump_starts, 0u);
  EXPECT_GT(plain.tree_stats().scan.root_starts, 0u);
}

// Range scans may jump as deep as the low/high common prefix; equality
// with the oracle exercises the hi-bounded frontier pruning.
TEST_F(SphinxScanTest, RangeScanJumpMatchesOracle) {
  std::map<std::string, std::string> oracle;
  const auto keys = testing::mixed_keys(1000, 5);
  for (const auto& k : keys) {
    index_->insert(k, "r:" + k);
    oracle.emplace(k, "r:" + k);
  }
  Rng rng(0xfeed);
  KvList out;
  for (int q = 0; q < 40; ++q) {
    std::string lo = keys[rng.next_below(keys.size())];
    std::string hi = keys[rng.next_below(keys.size())];
    if (hi < lo) std::swap(lo, hi);
    out.clear();
    index_->scan_range(lo, hi, 1 << 20, &out);
    auto it = oracle.lower_bound(lo);
    const auto end = oracle.upper_bound(hi);
    for (const auto& [k, v] : out) {
      ASSERT_NE(it, end);
      EXPECT_EQ(k, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
    }
    EXPECT_EQ(it, end);
  }
  EXPECT_EQ(index_->tree_stats().scan.truncated_scans, 0u);
}

// ---- cross-system agreement ---------------------------------------------------

// Every evaluated system must return the same scan answers for the same
// data; only their round-trip/caching profiles differ.
TEST(ScanOracle, SystemsAgreeOnScansAndRanges) {
  auto cluster = testing::make_test_cluster();
  const auto keys = testing::mixed_keys(800, 21);

  struct Sys {
    std::unique_ptr<ycsb::SystemSetup> setup;
    std::unique_ptr<rdma::Endpoint> ep;
    std::unique_ptr<mem::RemoteAllocator> alloc;
    std::unique_ptr<KvIndex> index;
  };
  std::vector<Sys> systems;
  for (const auto kind : {ycsb::SystemKind::kSphinx, ycsb::SystemKind::kSmart,
                          ycsb::SystemKind::kArt}) {
    Sys s;
    s.setup = std::make_unique<ycsb::SystemSetup>(kind, *cluster);
    s.ep = std::make_unique<rdma::Endpoint>(cluster->fabric(), 0, true);
    s.alloc = std::make_unique<mem::RemoteAllocator>(*cluster, *s.ep);
    s.index = s.setup->make_client(0, *s.ep, *s.alloc);
    for (const auto& k : keys) {
      ASSERT_TRUE(s.index->insert(k, "x:" + k)) << k;
    }
    systems.push_back(std::move(s));
  }

  Rng rng(0xc0ffee);
  for (int q = 0; q < 30; ++q) {
    const std::string& start = keys[rng.next_below(keys.size())];
    const size_t count = 1 + rng.next_below(32);
    KvList base;
    systems[0].index->scan(start, count, &base);
    for (size_t s = 1; s < systems.size(); ++s) {
      KvList other;
      systems[s].index->scan(start, count, &other);
      EXPECT_EQ(base, other) << systems[s].index->name() << " @ " << start;
    }
    EXPECT_FALSE(systems[0].index->last_scan_truncated());
  }
}

}  // namespace
}  // namespace sphinx::art
