// Tests for the SMART baseline: node cache behaviour (hits, LRU eviction,
// invalidation, budget), homogeneous Node-256 allocation, cache-coherence
// across clients, and oracle semantics.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "art/art_index.h"
#include "common/rng.h"
#include "smart/smart_index.h"
#include "test_util.h"
#include "ycsb/dataset.h"

namespace sphinx::smart {
namespace {

TEST(NodeCache, PutGetEvict) {
  NodeCache cache(NodeCache::kShards * 3000);  // ~3 KB per shard
  art::InnerImage img = art::InnerImage::create(art::NodeType::kN4,
                                                Slice("ab"));
  cache.put(64, img);
  art::InnerImage out;
  EXPECT_TRUE(cache.get(64, &out));
  EXPECT_EQ(out.depth(), img.depth());
  EXPECT_FALSE(cache.get(128, &out));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(NodeCache, BudgetEnforced) {
  NodeCache cache(NodeCache::kShards * 4096);
  // Insert far more N256 images (2072 B) than fit.
  for (uint64_t i = 0; i < 1000; ++i) {
    cache.put(i * 64,
              art::InnerImage::create(art::NodeType::kN256, Slice("xy")));
  }
  EXPECT_LE(cache.bytes_used(), cache.budget_bytes());
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(NodeCache, LruKeepsRecentlyUsed) {
  // Single-shard-sized budget games are fragile; instead verify that a
  // repeatedly-touched entry survives pressure that evicts most others.
  NodeCache cache(NodeCache::kShards * 8192);
  art::InnerImage img = art::InnerImage::create(art::NodeType::kN256,
                                                Slice("q"));
  cache.put(0, img);
  art::InnerImage out;
  for (uint64_t i = 1; i < 500; ++i) {
    cache.put(i * 64, img);
    cache.get(0, &out);  // keep it hot
  }
  EXPECT_TRUE(cache.get(0, &out));
}

TEST(NodeCache, EraseInvalidates) {
  NodeCache cache(1 << 20);
  cache.put(64, art::InnerImage::create(art::NodeType::kN4, Slice("a")));
  cache.erase(64);
  art::InnerImage out;
  EXPECT_FALSE(cache.get(64, &out));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  cache.erase(64);  // idempotent
}

class SmartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = testing::make_test_cluster();
    ref_ = art::create_tree(*cluster_);
    cache_ = std::make_unique<NodeCache>(20ull << 20);
    endpoint_ = std::make_unique<rdma::Endpoint>(cluster_->fabric(), 0, true);
    allocator_ = std::make_unique<mem::RemoteAllocator>(*cluster_, *endpoint_);
    index_ = std::make_unique<SmartIndex>(*cluster_, *endpoint_, *allocator_,
                                          ref_, *cache_);
  }

  std::unique_ptr<mem::Cluster> cluster_;
  art::TreeRef ref_;
  std::unique_ptr<NodeCache> cache_;
  std::unique_ptr<rdma::Endpoint> endpoint_;
  std::unique_ptr<mem::RemoteAllocator> allocator_;
  std::unique_ptr<SmartIndex> index_;
};

TEST_F(SmartTest, OracleRandomMixedOps) {
  std::map<std::string, std::string> oracle;
  Rng rng(4242);
  const auto keys = testing::mixed_keys(800);
  for (int op = 0; op < 8000; ++op) {
    const std::string& k = keys[rng.next_below(keys.size())];
    switch (rng.next_below(4)) {
      case 0: {
        const std::string v = "v" + std::to_string(op);
        EXPECT_EQ(index_->insert(k, v), oracle.emplace(k, v).second) << k;
        break;
      }
      case 1: {
        const std::string v = "u" + std::to_string(op);
        const bool expect = oracle.count(k) > 0;
        EXPECT_EQ(index_->update(k, v), expect) << k;
        if (expect) oracle[k] = v;
        break;
      }
      case 2:
        EXPECT_EQ(index_->remove(k), oracle.erase(k) > 0) << k;
        break;
      default: {
        std::string v;
        const bool expect = oracle.count(k) > 0;
        ASSERT_EQ(index_->search(k, &v), expect) << k;
        if (expect) {
          EXPECT_EQ(v, oracle[k]);
        }
        break;
      }
    }
  }
  EXPECT_EQ(index_->tree_stats().ops_failed, 0u);
}

TEST_F(SmartTest, HomogeneousNodesNeverTypeSwitch) {
  for (int i = 0; i < 300; ++i) {
    std::string k = "h";
    k.push_back(static_cast<char>(1 + (i % 250)));
    k += std::to_string(i);
    index_->insert(k, "v");
  }
  EXPECT_EQ(index_->tree_stats().type_switches, 0u);
}

TEST_F(SmartTest, HomogeneousNodesInflateMnMemory) {
  // Fig. 6: SMART's preallocated Node-256 layout costs 2-3x the adaptive
  // ART's inner-node memory for the same keys.
  const auto keys = ycsb::generate_email_keys(5000, 31);
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->insert(k, std::string(64, 'v')));
  }
  const uint64_t smart_inner =
      cluster_->alloc_stats().requested_bytes(mem::AllocTag::kInnerNode);

  auto cluster2 = testing::make_test_cluster();
  art::TreeRef ref2 = art::create_tree(*cluster2);
  rdma::Endpoint ep2(cluster2->fabric(), 0, true);
  mem::RemoteAllocator alloc2(*cluster2, ep2);
  art::ArtIndex art_index(*cluster2, ep2, alloc2, ref2);
  for (const auto& k : keys) {
    ASSERT_TRUE(art_index.insert(k, std::string(64, 'v')));
  }
  const uint64_t art_inner =
      cluster2->alloc_stats().requested_bytes(mem::AllocTag::kInnerNode);
  EXPECT_GT(static_cast<double>(smart_inner),
            1.8 * static_cast<double>(art_inner));
}

TEST_F(SmartTest, CacheCutsRoundTrips) {
  const auto keys = ycsb::generate_u64_keys(2000, 3);
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->insert(k, "v"));
  }
  // Warm pass.
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v));
  }
  const auto cache_stats0 = cache_->stats();
  const uint64_t rtt0 = endpoint_->stats().round_trips;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v));
  }
  const double rtts_per_op =
      static_cast<double>(endpoint_->stats().round_trips - rtt0) / 2000.0;
  EXPECT_GT(cache_->stats().hits, cache_stats0.hits);
  // With all inner nodes cached, a search costs ~1 RTT (the leaf read).
  EXPECT_LT(rtts_per_op, 1.7);
}

TEST_F(SmartTest, StaleCacheHealsAfterRemoteChange) {
  ASSERT_TRUE(index_->insert("alpha", "1"));
  ASSERT_TRUE(index_->insert("beta", "2"));
  std::string v;
  ASSERT_TRUE(index_->search("alpha", &v));  // populates our cache

  // A second client (own cache) deletes alpha and inserts gamma.
  NodeCache cache2(20ull << 20);
  rdma::Endpoint ep2(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  SmartIndex peer(*cluster_, ep2, alloc2, ref_, cache2);
  ASSERT_TRUE(peer.remove("alpha"));
  ASSERT_TRUE(peer.insert("gamma", "3"));

  // Our cached root is stale; the reverse check must still give correct
  // answers.
  EXPECT_FALSE(index_->search("alpha", &v));
  ASSERT_TRUE(index_->search("gamma", &v));
  EXPECT_EQ(v, "3");
}

TEST_F(SmartTest, ReinsertVisibleDespiteCachedParent) {
  ASSERT_TRUE(index_->insert("key1", "a"));
  ASSERT_TRUE(index_->insert("key2", "b"));
  std::string v;
  ASSERT_TRUE(index_->search("key1", &v));

  NodeCache cache2(20ull << 20);
  rdma::Endpoint ep2(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  SmartIndex peer(*cluster_, ep2, alloc2, ref_, cache2);
  ASSERT_TRUE(peer.search("key1", &v));  // cache the path
  ASSERT_TRUE(index_->remove("key1"));
  ASSERT_TRUE(index_->insert("key1", "a2"));
  // Peer's cached pointers lead to the dead leaf; the bypass retry must
  // find the reinserted value.
  ASSERT_TRUE(peer.search("key1", &v));
  EXPECT_EQ(v, "a2");
}

TEST_F(SmartTest, ScanWorksWithCache) {
  std::map<std::string, std::string> oracle;
  const auto keys = testing::mixed_keys(300);
  for (const auto& k : keys) {
    index_->insert(k, "v:" + k);
    oracle[k] = "v:" + k;
  }
  std::vector<std::pair<std::string, std::string>> out;
  const size_t n = index_->scan("user:", 20, &out);
  auto it = oracle.lower_bound("user:");
  for (size_t i = 0; i < n; ++i, ++it) {
    EXPECT_EQ(out[i].first, it->first);
  }
}

}  // namespace
}  // namespace sphinx::smart
