// Tests for the Sphinx index: INHT payload packing, the filter-guided
// search path and its round-trip budget, false-positive recovery, fallback
// paths, type-switch coherence, and oracle semantics.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "art/art_index.h"
#include "common/rng.h"
#include "core/sphinx_index.h"
#include "test_util.h"
#include "ycsb/dataset.h"

namespace sphinx::core {
namespace {

TEST(InhtPayload, PackUnpack) {
  const rdma::GlobalAddr addr(3, 0xdeadbc0);
  const uint64_t p = pack_inht_payload(art::NodeType::kN48, addr);
  EXPECT_EQ(inht_payload_type(p), art::NodeType::kN48);
  EXPECT_EQ(inht_payload_addr(p), addr);
  EXPECT_LT(p, 1ULL << 51);  // fits the RACE payload field
}

class SphinxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = testing::make_test_cluster();
    refs_ = create_sphinx(*cluster_);
    filter_ = filter::CuckooFilter::with_budget(1 << 20);
    endpoint_ = std::make_unique<rdma::Endpoint>(cluster_->fabric(), 0, true);
    allocator_ = std::make_unique<mem::RemoteAllocator>(*cluster_, *endpoint_);
    index_ = std::make_unique<SphinxIndex>(*cluster_, *endpoint_, *allocator_,
                                           refs_, filter_.get());
  }

  std::unique_ptr<mem::Cluster> cluster_;
  SphinxRefs refs_;
  std::unique_ptr<filter::CuckooFilter> filter_;
  std::unique_ptr<rdma::Endpoint> endpoint_;
  std::unique_ptr<mem::RemoteAllocator> allocator_;
  std::unique_ptr<SphinxIndex> index_;
};

TEST_F(SphinxTest, BasicRoundTrip) {
  EXPECT_TRUE(index_->insert("LYRICS", "music"));
  EXPECT_TRUE(index_->insert("LYRE", "harp"));
  EXPECT_TRUE(index_->insert("LOYAL", "dog"));
  std::string v;
  ASSERT_TRUE(index_->search("LYRICS", &v));
  EXPECT_EQ(v, "music");
  ASSERT_TRUE(index_->search("LYRE", &v));
  EXPECT_EQ(v, "harp");
  EXPECT_FALSE(index_->search("LYRIC", &v));
  EXPECT_FALSE(index_->search("L", &v));
}

TEST_F(SphinxTest, OracleRandomMixedOps) {
  std::map<std::string, std::string> oracle;
  Rng rng(99);
  const auto keys = testing::mixed_keys(800);
  for (int op = 0; op < 8000; ++op) {
    const std::string& k = keys[rng.next_below(keys.size())];
    switch (rng.next_below(4)) {
      case 0: {
        const std::string v = "v" + std::to_string(op);
        EXPECT_EQ(index_->insert(k, v), oracle.emplace(k, v).second) << k;
        break;
      }
      case 1: {
        const std::string v = "u" + std::to_string(op);
        const bool expect = oracle.count(k) > 0;
        EXPECT_EQ(index_->update(k, v), expect) << k;
        if (expect) oracle[k] = v;
        break;
      }
      case 2:
        EXPECT_EQ(index_->remove(k), oracle.erase(k) > 0) << k;
        break;
      default: {
        std::string v;
        const bool expect = oracle.count(k) > 0;
        ASSERT_EQ(index_->search(k, &v), expect) << k;
        if (expect) {
          EXPECT_EQ(v, oracle[k]);
        }
        break;
      }
    }
  }
  EXPECT_EQ(index_->tree_stats().ops_failed, 0u);
  std::string v;
  for (const auto& [k, val] : oracle) {
    ASSERT_TRUE(index_->search(k, &v)) << k;
    EXPECT_EQ(v, val);
  }
}

TEST_F(SphinxTest, WarmSearchTakesThreeRoundTrips) {
  // Paper Sec. III-B: with a warm filter cache an index operation needs
  // three round trips: hash entry, inner node, leaf.
  const auto keys = ycsb::generate_email_keys(500, 11);
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->insert(k, "v"));
  }
  // Warm: one pass over all keys (fills the filter from visited paths).
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v));
  }
  // Measure.
  const uint64_t rtt0 = endpoint_->stats().round_trips;
  uint64_t ops = 0;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v));
    ++ops;
  }
  const double rtts_per_op =
      static_cast<double>(endpoint_->stats().round_trips - rtt0) /
      static_cast<double>(ops);
  EXPECT_LE(rtts_per_op, 3.3);
  EXPECT_GE(rtts_per_op, 2.0);
}

TEST_F(SphinxTest, WarmSearchTakesTwoRoundTripsWithPec) {
  // With the prefix entry cache warm, the hash-entry read disappears: a
  // search is node read + leaf read, two round trips.
  auto pec = filter::PrefixEntryCache::with_budget(1 << 20);
  rdma::Endpoint ep(cluster_->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster_, ep);
  SphinxIndex warm(*cluster_, ep, alloc, refs_, filter_.get(), pec.get());
  const auto keys = ycsb::generate_email_keys(500, 11);
  for (const auto& k : keys) {
    ASSERT_TRUE(warm.insert(k, "v"));
  }
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(warm.search(k, &v));  // warm filter + PEC
  }
  const uint64_t rtt0 = ep.stats().round_trips;
  const uint64_t hits0 = warm.sphinx_stats().pec_hits;
  uint64_t ops = 0;
  for (const auto& k : keys) {
    ASSERT_TRUE(warm.search(k, &v));
    ++ops;
  }
  const double rtts_per_op =
      static_cast<double>(ep.stats().round_trips - rtt0) /
      static_cast<double>(ops);
  EXPECT_LE(rtts_per_op, 2.4);
  EXPECT_GE(rtts_per_op, 1.9);
  EXPECT_GT(warm.sphinx_stats().pec_hits, hits0);
}

TEST_F(SphinxTest, ColdPecHitFusesSpeculativeReadIntoTwoRoundTrips) {
  // A PEC entry seeded by node creation (never looked up -> cold) is
  // hedged: node read + INHT group read go out in one doorbell batch.
  // When the entry is fresh the search still completes in two round trips.
  auto pec = filter::PrefixEntryCache::with_budget(1 << 18);
  rdma::Endpoint ep_a(cluster_->fabric(), 0, true);
  mem::RemoteAllocator alloc_a(*cluster_, ep_a);
  SphinxIndex writer(*cluster_, ep_a, alloc_a, refs_, filter_.get(),
                     pec.get());
  // Two keys diverging at byte 8 create one inner node at depth 8; its PEC
  // entry is seeded by on_inner_created and never looked up afterwards.
  ASSERT_TRUE(writer.insert("specpfx:Arest", "va"));
  ASSERT_TRUE(writer.insert("specpfx:Brest", "vb"));

  rdma::Endpoint ep_b(cluster_->fabric(), 0, true);
  mem::RemoteAllocator alloc_b(*cluster_, ep_b);
  SphinxIndex reader(*cluster_, ep_b, alloc_b, refs_, filter_.get(),
                     pec.get());
  // Pre-warm the reader's INHT directory cache for the prefix's MN (a
  // fresh client pays that once); this INHT probe does not touch the PEC,
  // so the entry stays cold.
  std::vector<uint64_t> scratch;
  reader.inht().search(art::prefix_hash(Slice("specpfx:")), scratch);
  const uint64_t rtt0 = ep_b.stats().round_trips;
  std::string v;
  ASSERT_TRUE(reader.search("specpfx:Arest", &v));
  EXPECT_EQ(v, "va");
  EXPECT_EQ(ep_b.stats().round_trips - rtt0, 2u);
  EXPECT_EQ(reader.sphinx_stats().speculative_wins, 1u);
  EXPECT_EQ(reader.sphinx_stats().pec_stale, 0u);
}

TEST_F(SphinxTest, StaleColdPecEntryCostsNoExtraRoundTrip) {
  // The fusion hedge pays off when the cold entry *is* stale: the fused
  // INHT group already holds the fresh payload, so recovery needs no
  // additional INHT round trip -- total three RTTs, the same as a search
  // with no PEC at all.
  auto pec = filter::PrefixEntryCache::with_budget(1 << 18);
  rdma::Endpoint ep_a(cluster_->fabric(), 0, true);
  mem::RemoteAllocator alloc_a(*cluster_, ep_a);
  SphinxIndex writer(*cluster_, ep_a, alloc_a, refs_, filter_.get(),
                     pec.get());
  ASSERT_TRUE(writer.insert("fusepfx:Arest", "va"));
  ASSERT_TRUE(writer.insert("fusepfx:Brest", "vb"));

  // A PEC-less client grows the node past Node4 so it is copied to a new
  // address and the old one is marked invalid. The shared PEC entry (cold,
  // nobody ever looked it up) now points at a dead node.
  SphinxConfig bare_config;
  bare_config.use_filter = false;
  rdma::Endpoint ep_c(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc_c(*cluster_, ep_c);
  SphinxIndex grower(*cluster_, ep_c, alloc_c, refs_, nullptr, nullptr, nullptr,
                     bare_config);
  for (char c = 'C'; c <= 'J'; ++c) {
    ASSERT_TRUE(grower.insert(std::string("fusepfx:") + c + "rest", "vg"));
  }
  ASSERT_GT(grower.tree_stats().type_switches, 0u);

  rdma::Endpoint ep_b(cluster_->fabric(), 0, true);
  mem::RemoteAllocator alloc_b(*cluster_, ep_b);
  SphinxIndex reader(*cluster_, ep_b, alloc_b, refs_, filter_.get(),
                     pec.get());
  // Warm the INHT directory cache outside the measured window (see
  // ColdPecHitFusesSpeculativeReadIntoTwoRoundTrips).
  std::vector<uint64_t> scratch;
  reader.inht().search(art::prefix_hash(Slice("fusepfx:")), scratch);
  const uint64_t rtt0 = ep_b.stats().round_trips;
  std::string v;
  ASSERT_TRUE(reader.search("fusepfx:Arest", &v));
  EXPECT_EQ(v, "va");
  // Fused (stale node + group) + fresh node + leaf = 3 RTTs.
  EXPECT_EQ(ep_b.stats().round_trips - rtt0, 3u);
  EXPECT_EQ(reader.sphinx_stats().speculative_losses, 1u);
  EXPECT_EQ(reader.sphinx_stats().pec_stale, 1u);
  // The loss purged and re-seeded the shared entry: the next cold search
  // validates on the first try.
  rdma::Endpoint ep_d(cluster_->fabric(), 0, true);
  mem::RemoteAllocator alloc_d(*cluster_, ep_d);
  SphinxIndex reader2(*cluster_, ep_d, alloc_d, refs_, filter_.get(),
                      pec.get());
  ASSERT_TRUE(reader2.search("fusepfx:Brest", &v));
  EXPECT_EQ(v, "vb");
  EXPECT_EQ(reader2.sphinx_stats().pec_stale, 0u);
}

TEST_F(SphinxTest, PecStaleEntriesSelfHealAfterTypeSwitches) {
  // Warm a client's PEC, let a second client churn the same prefixes
  // through type switches, then verify the first client's searches (a)
  // stay correct and (b) purge-and-refresh each stale entry exactly once:
  // a second pass over the same keys finds no new staleness.
  auto pec = filter::PrefixEntryCache::with_budget(1 << 20);
  rdma::Endpoint ep_a(cluster_->fabric(), 0, true);
  mem::RemoteAllocator alloc_a(*cluster_, ep_a);
  SphinxIndex client(*cluster_, ep_a, alloc_a, refs_, filter_.get(),
                     pec.get());
  std::vector<std::string> keys;
  for (int p = 0; p < 20; ++p) {
    keys.push_back("heal" + std::to_string(p) + ":a1");
    keys.push_back("heal" + std::to_string(p) + ":b2");
  }
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(client.insert(k, "v:" + k));
  }
  for (const auto& k : keys) {
    ASSERT_TRUE(client.search(k, &v));  // warm + mark entries hot
  }

  SphinxConfig bare_config;
  bare_config.use_filter = false;
  rdma::Endpoint ep_c(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc_c(*cluster_, ep_c);
  SphinxIndex churner(*cluster_, ep_c, alloc_c, refs_, nullptr, nullptr, nullptr,
                      bare_config);
  for (int p = 0; p < 20; ++p) {
    for (char c = 'c'; c <= 'j'; ++c) {
      const std::string k =
          "heal" + std::to_string(p) + ":" + std::string(1, c) + "x";
      ASSERT_TRUE(churner.insert(k, "v:" + k));
      keys.push_back(k);
    }
  }
  ASSERT_GT(churner.tree_stats().type_switches, 0u);

  for (const auto& k : keys) {
    ASSERT_TRUE(client.search(k, &v)) << k;
    EXPECT_EQ(v, "v:" + k);
  }
  const uint64_t stale_after_first = client.sphinx_stats().pec_stale;
  EXPECT_GT(stale_after_first, 0u);
  for (const auto& k : keys) {
    ASSERT_TRUE(client.search(k, &v)) << k;
  }
  EXPECT_EQ(client.sphinx_stats().pec_stale, stale_after_first);
}

TEST_F(SphinxTest, SearchIsCheaperThanArtForDeepKeys) {
  // The headline claim: Sphinx's hash-based jump beats level-by-level
  // traversal for long keys / deep trees.
  const auto keys = ycsb::generate_email_keys(2000, 5);
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->insert(k, "v"));
  }
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v));  // warm the filter
  }
  const uint64_t sphinx_rtt0 = endpoint_->stats().round_trips;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v));
  }
  const uint64_t sphinx_rtts = endpoint_->stats().round_trips - sphinx_rtt0;

  // Same data in a fresh ART on a fresh cluster.
  auto cluster2 = testing::make_test_cluster();
  art::TreeRef art_ref = art::create_tree(*cluster2);
  rdma::Endpoint ep2(cluster2->fabric(), 0, true);
  mem::RemoteAllocator alloc2(*cluster2, ep2);
  art::ArtIndex art_index(*cluster2, ep2, alloc2, art_ref);
  for (const auto& k : keys) {
    ASSERT_TRUE(art_index.insert(k, "v"));
  }
  const uint64_t art_rtt0 = ep2.stats().round_trips;
  for (const auto& k : keys) {
    ASSERT_TRUE(art_index.search(k, &v));
  }
  const uint64_t art_rtts = ep2.stats().round_trips - art_rtt0;
  EXPECT_LT(sphinx_rtts, art_rtts);
}

TEST_F(SphinxTest, FilterMissFallsBackToParallelRead) {
  // Two keys sharing a prefix, so an inner node exists at depth 7.
  ASSERT_TRUE(index_->insert("somekey123", "v1"));
  ASSERT_TRUE(index_->insert("somekey456", "v2"));
  // A second client with a cold (empty) filter must still find the keys.
  auto cold_filter = filter::CuckooFilter::with_budget(1 << 16);
  rdma::Endpoint ep2(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  SphinxIndex cold(*cluster_, ep2, alloc2, refs_, cold_filter.get());
  std::string v;
  ASSERT_TRUE(cold.search("somekey123", &v));
  EXPECT_EQ(v, "v1");
  EXPECT_GT(cold.sphinx_stats().parallel_fallbacks, 0u);
  // The first search learned the inner-node prefix: the next search must
  // go straight through the filter, with no parallel fallback.
  const uint64_t fallbacks = cold.sphinx_stats().parallel_fallbacks;
  ASSERT_TRUE(cold.search("somekey123", &v));
  EXPECT_EQ(cold.sphinx_stats().parallel_fallbacks, fallbacks);
  EXPECT_GT(cold.sphinx_stats().filter_hits, 0u);
}

TEST_F(SphinxTest, NoFilterModeWorks) {
  SphinxConfig config;
  config.use_filter = false;
  rdma::Endpoint ep2(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  SphinxIndex nofilter(*cluster_, ep2, alloc2, refs_, nullptr, nullptr, nullptr,
                       config);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(nofilter.insert("nf" + std::to_string(i), "v"));
  }
  std::string v;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(nofilter.search("nf" + std::to_string(i), &v));
  }
  EXPECT_GT(nofilter.sphinx_stats().parallel_fallbacks, 0u);
  EXPECT_EQ(nofilter.sphinx_stats().filter_hits, 0u);
}

TEST_F(SphinxTest, InhtTracksCreatedInnerNodes) {
  const auto keys = testing::mixed_keys(500);
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->insert(k, "v"));
  }
  EXPECT_GT(index_->inht().aggregated_stats().inserts, 0u);
  // Another client relying purely on the INHT (filter disabled) can find
  // every key without root traversals once entries exist.
  SphinxConfig config;
  config.use_filter = false;
  rdma::Endpoint ep2(cluster_->fabric(), 2, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  SphinxIndex peer(*cluster_, ep2, alloc2, refs_, nullptr, nullptr, nullptr, config);
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(peer.search(k, &v)) << k;
  }
}

TEST_F(SphinxTest, TypeSwitchKeepsInhtCoherent) {
  // Force type switches under a common prefix, then verify a fresh client
  // can still jump through the INHT to the switched node.
  for (int i = 0; i < 200; ++i) {
    std::string k = "tsw:";
    k.push_back(static_cast<char>(1 + i));
    k += "rest";
    ASSERT_TRUE(index_->insert(k, std::to_string(i)));
  }
  EXPECT_GT(index_->tree_stats().type_switches, 0u);

  rdma::Endpoint ep2(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  auto filter2 = filter::CuckooFilter::with_budget(1 << 20);
  SphinxIndex peer(*cluster_, ep2, alloc2, refs_, filter2.get());
  std::string v;
  for (int i = 0; i < 200; ++i) {
    std::string k = "tsw:";
    k.push_back(static_cast<char>(1 + i));
    k += "rest";
    ASSERT_TRUE(peer.search(k, &v)) << i;
    EXPECT_EQ(v, std::to_string(i));
  }
}

TEST_F(SphinxTest, ScanMatchesOracle) {
  std::map<std::string, std::string> oracle;
  const auto keys = testing::mixed_keys(400);
  for (const auto& k : keys) {
    index_->insert(k, "v:" + k);
    oracle[k] = "v:" + k;
  }
  std::vector<std::pair<std::string, std::string>> out;
  const size_t n = index_->scan("user:", 30, &out);
  auto it = oracle.lower_bound("user:");
  size_t i = 0;
  for (; it != oracle.end() && i < n; ++it, ++i) {
    EXPECT_EQ(out[i].first, it->first);
  }
  EXPECT_EQ(n, std::min<size_t>(30, i));
}

TEST_F(SphinxTest, DeleteVisibleToOtherClients) {
  ASSERT_TRUE(index_->insert("shared-key", "v"));
  rdma::Endpoint ep2(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  auto filter2 = filter::CuckooFilter::with_budget(1 << 20);
  SphinxIndex peer(*cluster_, ep2, alloc2, refs_, filter2.get());
  std::string v;
  ASSERT_TRUE(peer.search("shared-key", &v));
  ASSERT_TRUE(index_->remove("shared-key"));
  EXPECT_FALSE(peer.search("shared-key", &v));
}

TEST_F(SphinxTest, FilterSharedAcrossClientsOfOneCn) {
  // Two workers on the same CN share the filter: the second benefits from
  // prefixes the first learned.
  const auto keys = ycsb::generate_email_keys(300, 17);
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->insert(k, "v"));
  }
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v));
  }
  rdma::Endpoint ep2(cluster_->fabric(), 0, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  SphinxIndex peer(*cluster_, ep2, alloc2, refs_, filter_.get());
  for (const auto& k : keys) {
    ASSERT_TRUE(peer.search(k, &v));
  }
  EXPECT_EQ(peer.sphinx_stats().parallel_fallbacks, 0u);
}

TEST_F(SphinxTest, InhtMemoryOverheadIsSmall) {
  // Paper Sec. III-A / Fig. 6: the INHT adds only a few percent of MN
  // memory on top of the ART itself. At unit-test scale the table's
  // segment granularity dominates, so start it at minimum size; the paper's
  // 3.3-4.9% figure is validated at full scale by bench_memory.
  auto cluster = testing::make_test_cluster();
  SphinxRefs refs = create_sphinx(*cluster, /*inht_initial_depth=*/1);
  auto filter = filter::CuckooFilter::with_budget(1 << 20);
  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  SphinxIndex index(*cluster, ep, alloc, refs, filter.get());
  const auto keys = ycsb::generate_u64_keys(20000, 23);
  for (const auto& k : keys) {
    ASSERT_TRUE(index.insert(k, std::string(64, 'v')));
  }
  mem::AllocStats& stats = cluster->alloc_stats();
  const uint64_t tree_bytes =
      stats.requested_bytes(mem::AllocTag::kInnerNode) +
      stats.requested_bytes(mem::AllocTag::kLeaf);
  const uint64_t table_bytes =
      stats.requested_bytes(mem::AllocTag::kHashTable);
  EXPECT_LT(static_cast<double>(table_bytes),
            0.25 * static_cast<double>(tree_bytes));
}

}  // namespace
}  // namespace sphinx::core
