// Tests for the Sphinx index: INHT payload packing, the filter-guided
// search path and its round-trip budget, false-positive recovery, fallback
// paths, type-switch coherence, and oracle semantics.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "art/art_index.h"
#include "common/rng.h"
#include "core/sphinx_index.h"
#include "test_util.h"
#include "ycsb/dataset.h"

namespace sphinx::core {
namespace {

TEST(InhtPayload, PackUnpack) {
  const rdma::GlobalAddr addr(3, 0xdeadbc0);
  const uint64_t p = pack_inht_payload(art::NodeType::kN48, addr);
  EXPECT_EQ(inht_payload_type(p), art::NodeType::kN48);
  EXPECT_EQ(inht_payload_addr(p), addr);
  EXPECT_LT(p, 1ULL << 51);  // fits the RACE payload field
}

class SphinxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = testing::make_test_cluster();
    refs_ = create_sphinx(*cluster_);
    filter_ = filter::CuckooFilter::with_budget(1 << 20);
    endpoint_ = std::make_unique<rdma::Endpoint>(cluster_->fabric(), 0, true);
    allocator_ = std::make_unique<mem::RemoteAllocator>(*cluster_, *endpoint_);
    index_ = std::make_unique<SphinxIndex>(*cluster_, *endpoint_, *allocator_,
                                           refs_, filter_.get());
  }

  std::unique_ptr<mem::Cluster> cluster_;
  SphinxRefs refs_;
  std::unique_ptr<filter::CuckooFilter> filter_;
  std::unique_ptr<rdma::Endpoint> endpoint_;
  std::unique_ptr<mem::RemoteAllocator> allocator_;
  std::unique_ptr<SphinxIndex> index_;
};

TEST_F(SphinxTest, BasicRoundTrip) {
  EXPECT_TRUE(index_->insert("LYRICS", "music"));
  EXPECT_TRUE(index_->insert("LYRE", "harp"));
  EXPECT_TRUE(index_->insert("LOYAL", "dog"));
  std::string v;
  ASSERT_TRUE(index_->search("LYRICS", &v));
  EXPECT_EQ(v, "music");
  ASSERT_TRUE(index_->search("LYRE", &v));
  EXPECT_EQ(v, "harp");
  EXPECT_FALSE(index_->search("LYRIC", &v));
  EXPECT_FALSE(index_->search("L", &v));
}

TEST_F(SphinxTest, OracleRandomMixedOps) {
  std::map<std::string, std::string> oracle;
  Rng rng(99);
  const auto keys = testing::mixed_keys(800);
  for (int op = 0; op < 8000; ++op) {
    const std::string& k = keys[rng.next_below(keys.size())];
    switch (rng.next_below(4)) {
      case 0: {
        const std::string v = "v" + std::to_string(op);
        EXPECT_EQ(index_->insert(k, v), oracle.emplace(k, v).second) << k;
        break;
      }
      case 1: {
        const std::string v = "u" + std::to_string(op);
        const bool expect = oracle.count(k) > 0;
        EXPECT_EQ(index_->update(k, v), expect) << k;
        if (expect) oracle[k] = v;
        break;
      }
      case 2:
        EXPECT_EQ(index_->remove(k), oracle.erase(k) > 0) << k;
        break;
      default: {
        std::string v;
        const bool expect = oracle.count(k) > 0;
        ASSERT_EQ(index_->search(k, &v), expect) << k;
        if (expect) {
          EXPECT_EQ(v, oracle[k]);
        }
        break;
      }
    }
  }
  EXPECT_EQ(index_->tree_stats().ops_failed, 0u);
  std::string v;
  for (const auto& [k, val] : oracle) {
    ASSERT_TRUE(index_->search(k, &v)) << k;
    EXPECT_EQ(v, val);
  }
}

TEST_F(SphinxTest, WarmSearchTakesThreeRoundTrips) {
  // Paper Sec. III-B: with a warm filter cache an index operation needs
  // three round trips: hash entry, inner node, leaf.
  const auto keys = ycsb::generate_email_keys(500, 11);
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->insert(k, "v"));
  }
  // Warm: one pass over all keys (fills the filter from visited paths).
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v));
  }
  // Measure.
  const uint64_t rtt0 = endpoint_->stats().round_trips;
  uint64_t ops = 0;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v));
    ++ops;
  }
  const double rtts_per_op =
      static_cast<double>(endpoint_->stats().round_trips - rtt0) /
      static_cast<double>(ops);
  EXPECT_LE(rtts_per_op, 3.3);
  EXPECT_GE(rtts_per_op, 2.0);
}

TEST_F(SphinxTest, SearchIsCheaperThanArtForDeepKeys) {
  // The headline claim: Sphinx's hash-based jump beats level-by-level
  // traversal for long keys / deep trees.
  const auto keys = ycsb::generate_email_keys(2000, 5);
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->insert(k, "v"));
  }
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v));  // warm the filter
  }
  const uint64_t sphinx_rtt0 = endpoint_->stats().round_trips;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v));
  }
  const uint64_t sphinx_rtts = endpoint_->stats().round_trips - sphinx_rtt0;

  // Same data in a fresh ART on a fresh cluster.
  auto cluster2 = testing::make_test_cluster();
  art::TreeRef art_ref = art::create_tree(*cluster2);
  rdma::Endpoint ep2(cluster2->fabric(), 0, true);
  mem::RemoteAllocator alloc2(*cluster2, ep2);
  art::ArtIndex art_index(*cluster2, ep2, alloc2, art_ref);
  for (const auto& k : keys) {
    ASSERT_TRUE(art_index.insert(k, "v"));
  }
  const uint64_t art_rtt0 = ep2.stats().round_trips;
  for (const auto& k : keys) {
    ASSERT_TRUE(art_index.search(k, &v));
  }
  const uint64_t art_rtts = ep2.stats().round_trips - art_rtt0;
  EXPECT_LT(sphinx_rtts, art_rtts);
}

TEST_F(SphinxTest, FilterMissFallsBackToParallelRead) {
  // Two keys sharing a prefix, so an inner node exists at depth 7.
  ASSERT_TRUE(index_->insert("somekey123", "v1"));
  ASSERT_TRUE(index_->insert("somekey456", "v2"));
  // A second client with a cold (empty) filter must still find the keys.
  auto cold_filter = filter::CuckooFilter::with_budget(1 << 16);
  rdma::Endpoint ep2(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  SphinxIndex cold(*cluster_, ep2, alloc2, refs_, cold_filter.get());
  std::string v;
  ASSERT_TRUE(cold.search("somekey123", &v));
  EXPECT_EQ(v, "v1");
  EXPECT_GT(cold.sphinx_stats().parallel_fallbacks, 0u);
  // The first search learned the inner-node prefix: the next search must
  // go straight through the filter, with no parallel fallback.
  const uint64_t fallbacks = cold.sphinx_stats().parallel_fallbacks;
  ASSERT_TRUE(cold.search("somekey123", &v));
  EXPECT_EQ(cold.sphinx_stats().parallel_fallbacks, fallbacks);
  EXPECT_GT(cold.sphinx_stats().filter_hits, 0u);
}

TEST_F(SphinxTest, NoFilterModeWorks) {
  SphinxConfig config;
  config.use_filter = false;
  rdma::Endpoint ep2(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  SphinxIndex nofilter(*cluster_, ep2, alloc2, refs_, nullptr, config);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(nofilter.insert("nf" + std::to_string(i), "v"));
  }
  std::string v;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(nofilter.search("nf" + std::to_string(i), &v));
  }
  EXPECT_GT(nofilter.sphinx_stats().parallel_fallbacks, 0u);
  EXPECT_EQ(nofilter.sphinx_stats().filter_hits, 0u);
}

TEST_F(SphinxTest, InhtTracksCreatedInnerNodes) {
  const auto keys = testing::mixed_keys(500);
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->insert(k, "v"));
  }
  EXPECT_GT(index_->inht().aggregated_stats().inserts, 0u);
  // Another client relying purely on the INHT (filter disabled) can find
  // every key without root traversals once entries exist.
  SphinxConfig config;
  config.use_filter = false;
  rdma::Endpoint ep2(cluster_->fabric(), 2, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  SphinxIndex peer(*cluster_, ep2, alloc2, refs_, nullptr, config);
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(peer.search(k, &v)) << k;
  }
}

TEST_F(SphinxTest, TypeSwitchKeepsInhtCoherent) {
  // Force type switches under a common prefix, then verify a fresh client
  // can still jump through the INHT to the switched node.
  for (int i = 0; i < 200; ++i) {
    std::string k = "tsw:";
    k.push_back(static_cast<char>(1 + i));
    k += "rest";
    ASSERT_TRUE(index_->insert(k, std::to_string(i)));
  }
  EXPECT_GT(index_->tree_stats().type_switches, 0u);

  rdma::Endpoint ep2(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  auto filter2 = filter::CuckooFilter::with_budget(1 << 20);
  SphinxIndex peer(*cluster_, ep2, alloc2, refs_, filter2.get());
  std::string v;
  for (int i = 0; i < 200; ++i) {
    std::string k = "tsw:";
    k.push_back(static_cast<char>(1 + i));
    k += "rest";
    ASSERT_TRUE(peer.search(k, &v)) << i;
    EXPECT_EQ(v, std::to_string(i));
  }
}

TEST_F(SphinxTest, ScanMatchesOracle) {
  std::map<std::string, std::string> oracle;
  const auto keys = testing::mixed_keys(400);
  for (const auto& k : keys) {
    index_->insert(k, "v:" + k);
    oracle[k] = "v:" + k;
  }
  std::vector<std::pair<std::string, std::string>> out;
  const size_t n = index_->scan("user:", 30, &out);
  auto it = oracle.lower_bound("user:");
  size_t i = 0;
  for (; it != oracle.end() && i < n; ++it, ++i) {
    EXPECT_EQ(out[i].first, it->first);
  }
  EXPECT_EQ(n, std::min<size_t>(30, i));
}

TEST_F(SphinxTest, DeleteVisibleToOtherClients) {
  ASSERT_TRUE(index_->insert("shared-key", "v"));
  rdma::Endpoint ep2(cluster_->fabric(), 1, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  auto filter2 = filter::CuckooFilter::with_budget(1 << 20);
  SphinxIndex peer(*cluster_, ep2, alloc2, refs_, filter2.get());
  std::string v;
  ASSERT_TRUE(peer.search("shared-key", &v));
  ASSERT_TRUE(index_->remove("shared-key"));
  EXPECT_FALSE(peer.search("shared-key", &v));
}

TEST_F(SphinxTest, FilterSharedAcrossClientsOfOneCn) {
  // Two workers on the same CN share the filter: the second benefits from
  // prefixes the first learned.
  const auto keys = ycsb::generate_email_keys(300, 17);
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->insert(k, "v"));
  }
  std::string v;
  for (const auto& k : keys) {
    ASSERT_TRUE(index_->search(k, &v));
  }
  rdma::Endpoint ep2(cluster_->fabric(), 0, true);
  mem::RemoteAllocator alloc2(*cluster_, ep2);
  SphinxIndex peer(*cluster_, ep2, alloc2, refs_, filter_.get());
  for (const auto& k : keys) {
    ASSERT_TRUE(peer.search(k, &v));
  }
  EXPECT_EQ(peer.sphinx_stats().parallel_fallbacks, 0u);
}

TEST_F(SphinxTest, InhtMemoryOverheadIsSmall) {
  // Paper Sec. III-A / Fig. 6: the INHT adds only a few percent of MN
  // memory on top of the ART itself. At unit-test scale the table's
  // segment granularity dominates, so start it at minimum size; the paper's
  // 3.3-4.9% figure is validated at full scale by bench_memory.
  auto cluster = testing::make_test_cluster();
  SphinxRefs refs = create_sphinx(*cluster, /*inht_initial_depth=*/1);
  auto filter = filter::CuckooFilter::with_budget(1 << 20);
  rdma::Endpoint ep(cluster->fabric(), 0, true);
  mem::RemoteAllocator alloc(*cluster, ep);
  SphinxIndex index(*cluster, ep, alloc, refs, filter.get());
  const auto keys = ycsb::generate_u64_keys(20000, 23);
  for (const auto& k : keys) {
    ASSERT_TRUE(index.insert(k, std::string(64, 'v')));
  }
  mem::AllocStats& stats = cluster->alloc_stats();
  const uint64_t tree_bytes =
      stats.requested_bytes(mem::AllocTag::kInnerNode) +
      stats.requested_bytes(mem::AllocTag::kLeaf);
  const uint64_t table_bytes =
      stats.requested_bytes(mem::AllocTag::kHashTable);
  EXPECT_LT(static_cast<double>(table_bytes),
            0.25 * static_cast<double>(tree_bytes));
}

}  // namespace
}  // namespace sphinx::core
